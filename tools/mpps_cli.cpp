// The `mpps` command-line tool: run OPS5 programs, record traces, and
// replay them on the simulated message-passing machine.
#include <iostream>
#include <string>
#include <vector>

#include "src/core/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return mpps::core::run_cli(args, std::cout, std::cerr);
}
