// Tournament scheduling: a real rule program that produces genuine
// cross-product joins — the phenomenon behind the paper's Tourney section.
// Pairing every team with every other team joins two condition elements
// with NO common variable, so the two-input node has no equality test, the
// hash cannot discriminate, and all its tokens land in one bucket.
//
// The example then applies the paper's copy-and-constraint fix at the
// SOURCE level and shows the hot bucket splitting.
#include <algorithm>
#include <iostream>

#include "src/common/table.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/xform.hpp"
#include "src/ops5/parser.hpp"

namespace {

std::string program_source(int teams) {
  std::string source = R"(
    (p pair-teams
      (round ^status open)
      (team ^name <home>)
      (team ^name <away> ^name <> <home>)
      -(pairing ^home <home> ^away <away>)
      -->
      (make pairing ^home <home> ^away <away>)))";
  source += "\n(make round ^status open)\n";
  for (int i = 0; i < teams; ++i) {
    source += "(make team ^name t" + std::to_string(i) + ")\n";
  }
  return source;
}

std::uint64_t hottest_bucket(const mpps::trace::Trace& trace) {
  std::uint64_t max = 0;
  auto activity = mpps::trace::bucket_activity(trace);
  for (auto a : activity) max = std::max(max, a);
  return max;
}

}  // namespace

int main() {
  using namespace mpps;
  constexpr int kTeams = 8;

  std::cout << "Scheduling a tournament of " << kTeams << " teams...\n";
  const ops5::Program original = ops5::parse_program(program_source(kTeams));
  const core::PipelineResult base =
      core::record_trace_from_source(program_source(kTeams), "tourney");

  std::cout << "  pairings generated : " << base.firings << " (expected "
            << kTeams * (kTeams - 1) << ")\n";
  const trace::TraceStats stats = trace::compute_stats(base.trace);
  std::cout << "  match activations  : " << stats.total() << " ("
            << static_cast<int>(stats.left_pct() + 0.5)
            << "% left — compare the paper's Tourney at 99%)\n";
  std::cout << "  hottest hash bucket: " << hottest_bucket(base.trace)
            << " activations (the cross-product concentration)\n\n";

  // Copy-and-constraint at the source level: split pair-teams into two
  // copies, each matching half of the home teams (condition element 2).
  std::vector<ops5::Value> first_half;
  std::vector<ops5::Value> second_half;
  for (int i = 0; i < kTeams; ++i) {
    (i < kTeams / 2 ? first_half : second_half)
        .push_back(ops5::Value::sym("t" + std::to_string(i)));
  }
  const ops5::Program split = core::copy_and_constraint(
      original, "pair-teams", 2, Symbol::intern("name"),
      {first_half, second_half});

  // Re-run: the initial wmes come from the source, so rebuild a program
  // text-free pipeline through record_trace directly.
  core::PipelineResult cc = core::record_trace(
      [&] {
        ops5::Program p = split;
        p.initial_wmes =
            ops5::parse_program(program_source(kTeams)).initial_wmes;
        return p;
      }(),
      "tourney+cc");

  std::cout << "After copy-and-constraint (2 copies of pair-teams):\n";
  std::cout << "  pairings generated : " << cc.firings << " (unchanged)\n";
  std::cout << "  hottest hash bucket: " << hottest_bucket(cc.trace)
            << " activations\n\n";

  TextTable table({"configuration", "speedup @8 procs (zero overhead)"});
  for (const auto& [label, piped] :
       {std::pair<const char*, const core::PipelineResult*>{"original",
                                                            &base},
        {"copy-and-constraint", &cc}}) {
    sim::SimConfig config;
    config.match_processors = 8;
    config.costs = sim::CostModel::zero_overhead();
    table.row().cell(label).cell(
        sim::speedup(piped->trace, config,
                     sim::Assignment::round_robin(piped->trace.num_buckets,
                                                  8)),
        2);
  }
  table.print(std::cout);
  return base.firings == kTeams * (kTeams - 1) &&
                 cc.firings == base.firings
             ? 0
             : 1;
}
