// A simplified Miss Manners — the classic production-system benchmark.
// Guests must be seated in a row so that neighbours share a hobby and
// alternate sex.  The rule program assigns seats greedily through the
// match network; the guest list is generated so a greedy order always
// succeeds.  This is a REAL rule workload with guest x guest joins, and
// the example pushes it through the whole stack: run -> trace -> MPC
// simulation.
#include <iostream>
#include <string>

#include "src/common/table.hpp"
#include "src/core/pipeline.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/interp.hpp"

namespace {

/// Builds the guest list + rules.  Guests alternate sex by construction
/// and everyone shares the hobby pool, so the greedy seater cannot dead
/// end; hobbies still force real join tests.
std::string manners_source(int guests) {
  std::string source = R"(
    (p seat-first-guest
      (context ^state start)
      (guest ^name <g>)
      -->
      (make seated ^name <g> ^seat 1)
      (make last ^name <g> ^seat 1)
      (modify 1 ^state assign))

    (p seat-next-guest
      (context ^state assign)
      (last ^name <n1> ^seat <s>)
      (guest ^name <n1> ^sex <sx> ^hobby <h>)
      (guest ^name { <n2> <> <n1> } ^sex <> <sx> ^hobby <h>)
      -(seated ^name <n2>)
      -->
      (make seated ^name <n2> ^seat (compute <s> + 1))
      (modify 2 ^name <n2> ^seat (compute <s> + 1)))

    (p everyone-seated
      (context ^state assign)
      (party ^guests <n>)
      (last ^seat <n>)
      -->
      (write all <n> guests seated (crlf))
      (halt)))";
  source += "\n(make context ^state start)\n";
  source += "(make party ^guests " + std::to_string(guests) + ")\n";
  for (int i = 0; i < guests; ++i) {
    const char* sex = i % 2 == 0 ? "m" : "f";
    // Three hobbies each from a pool of four; hobby h0 is universal so a
    // compatible partner always exists.
    source += "(make guest ^name g" + std::to_string(i) + " ^sex " + sex +
              " ^hobby h0)\n";
    source += "(make guest ^name g" + std::to_string(i) + " ^sex " + sex +
              " ^hobby h" + std::to_string(1 + i % 3) + ")\n";
    source += "(make guest ^name g" + std::to_string(i) + " ^sex " + sex +
              " ^hobby h" + std::to_string(1 + (i + 1) % 3) + ")\n";
  }
  return source;
}

}  // namespace

int main() {
  using namespace mpps;
  TextTable scaling({"guests", "rule firings", "MRA cycles",
                     "match activations", "tokens generated",
                     "speedup @16 procs (run 2)"});
  for (int guests : {8, 16, 32}) {
    const std::string source = manners_source(guests);
    const core::PipelineResult piped = core::record_trace_from_source(
        source, "manners-" + std::to_string(guests));
    const trace::TraceStats stats = trace::compute_stats(piped.trace);

    sim::SimConfig config;
    config.match_processors = 16;
    config.costs = sim::CostModel::paper_run(2);
    const double s = sim::speedup(
        piped.trace, config,
        sim::Assignment::round_robin(piped.trace.num_buckets, 16));

    scaling.row()
        .cell(static_cast<long>(guests))
        .cell(static_cast<unsigned long>(piped.firings))
        .cell(static_cast<unsigned long>(piped.trace.cycles.size()))
        .cell(static_cast<unsigned long>(stats.total()))
        .cell(static_cast<unsigned long>(stats.left + stats.right))
        .cell(s, 2);
  }
  std::cout << "Miss Manners (simplified): seating guests with alternating "
               "sex and shared hobbies\n\n";
  scaling.print(std::cout);

  // Show the seating order for the small party.
  std::cout << "\nSeating for 8 guests:\n";
  rete::InterpreterOptions options;
  options.out = &std::cout;
  rete::Interpreter interp(ops5::parse_program(manners_source(8)), options);
  interp.load_initial_wmes();
  interp.run();
  for (const auto* wme : interp.wm().all()) {
    if (wme->wme_class() == Symbol::intern("seated")) {
      std::cout << "  seat " << wme->get(Symbol::intern("seat")) << ": "
                << wme->get(Symbol::intern("name")) << "\n";
    }
  }
  return interp.halted() ? 0 : 1;
}
