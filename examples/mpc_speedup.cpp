// End-to-end pipeline: answers "how would MY rule program behave on a
// message-passing machine?" — compile an OPS5 program, run it under the
// tracing Rete engine, then replay the recorded hash-table activity on the
// simulated MPC at several machine configurations (the paper's method
// applied to a user program).
#include <iostream>

#include "src/common/strings.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"
#include "src/core/pipeline.hpp"

int main() {
  using namespace mpps;

  // A small assembly-line system: stations pass widgets through stages.
  // Multiple widgets in flight give the match phase real parallelism.
  std::string source = R"(
    (p start-widget
      (widget ^stage raw)
      (station ^kind cutter ^state idle)
      -->
      (modify 1 ^stage cut)
      (modify 2 ^state idle))
    (p polish-widget
      (widget ^stage cut)
      (station ^kind polisher ^state idle)
      -->
      (modify 1 ^stage polished)
      (modify 2 ^state idle))
    (p pack-widget
      (widget ^stage polished)
      (station ^kind packer ^state idle)
      -->
      (modify 1 ^stage packed)
      (modify 2 ^state idle))
    (p all-packed
      (widget ^stage packed)
      -(widget ^stage raw)
      -(widget ^stage cut)
      -(widget ^stage polished)
      -->
      (write all widgets packed (crlf))
      (halt)))";
  source += "(make station ^kind cutter ^state idle)\n";
  source += "(make station ^kind polisher ^state idle)\n";
  source += "(make station ^kind packer ^state idle)\n";
  for (int i = 0; i < 12; ++i) {
    source += "(make widget ^id w" + std::to_string(i) + " ^stage raw)\n";
  }

  std::cout << "Recording the match-phase trace of the assembly program...\n";
  const core::PipelineResult piped =
      core::record_trace_from_source(source, "assembly");
  const trace::TraceStats stats = trace::compute_stats(piped.trace);
  std::cout << "  cycles: " << piped.trace.cycles.size()
            << ", firings: " << piped.firings
            << ", activations: " << stats.total() << " (" << stats.left
            << " left / " << stats.right << " right)\n\n";

  std::cout << "Replaying the trace on the simulated message-passing "
               "machine:\n";
  TextTable table({"processors", "zero overhead", "run 2 (8 us)",
                   "run 4 (32 us)", "greedy + run 4"});
  for (std::uint32_t p : {1u, 2u, 4u, 8u, 16u}) {
    table.row().cell(static_cast<long>(p));
    for (int run : {0, 2, 4}) {
      sim::SimConfig config;
      config.match_processors = p;
      config.costs = run == 0 ? sim::CostModel::zero_overhead()
                              : sim::CostModel::paper_run(run);
      table.cell(sim::speedup(piped.trace, config,
                              sim::Assignment::round_robin(
                                  piped.trace.num_buckets, p)),
                 2);
    }
    sim::SimConfig config;
    config.match_processors = p;
    config.costs = sim::CostModel::paper_run(4);
    table.cell(sim::speedup(piped.trace, config,
                            core::greedy_assignment(piped.trace, p,
                                                    config.costs)),
               2);
  }
  table.print(std::cout);

  sim::SimConfig config;
  config.match_processors = 8;
  config.costs = sim::CostModel::paper_run(2);
  const auto result =
      sim::simulate(piped.trace, config,
                    sim::Assignment::round_robin(piped.trace.num_buckets, 8));
  std::cout << "\nAt 8 processors, run 2: " << result.messages
            << " messages, " << result.local_deliveries
            << " local deliveries, network "
            << mpps::format_fixed(100.0 * (1.0 - result.network_utilization()),
                                  1)
            << "% idle.\n";
  return 0;
}
