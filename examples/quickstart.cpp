// Quickstart: the smallest possible tour of the mpps API —
// parse an OPS5 program, run the match-resolve-act loop, inspect firings.
//
//   $ ./quickstart
#include <iostream>

#include "src/ops5/parser.hpp"
#include "src/rete/interp.hpp"

int main() {
  using namespace mpps;

  // A three-rule OPS5 program: classify animals by their properties.
  const char* source = R"(
    (make animal ^name rex   ^legs 4 ^sound bark)
    (make animal ^name tweety ^legs 2 ^sound chirp)
    (make animal ^name felix  ^legs 4 ^sound meow)

    (p dog
      (animal ^name <n> ^legs 4 ^sound bark)
      -->
      (write <n> is a dog (crlf))
      (make classified ^name <n> ^as dog))

    (p bird
      (animal ^name <n> ^legs 2)
      -->
      (write <n> is a bird (crlf))
      (make classified ^name <n> ^as bird))

    (p cat
      (animal ^name <n> ^sound meow)
      -->
      (write <n> is a cat (crlf))
      (make classified ^name <n> ^as cat))

    (p all-done
      (classified ^as dog)
      (classified ^as bird)
      (classified ^as cat)
      -->
      (write everyone classified (crlf))
      (halt)))";

  rete::InterpreterOptions options;
  options.out = &std::cout;  // where (write ...) goes

  rete::Interpreter interp(ops5::parse_program(source), options);
  interp.load_initial_wmes();
  const rete::RunResult result = interp.run();

  std::cout << "\nOutcome : "
            << (result.outcome == rete::RunResult::Outcome::Halted
                    ? "halted"
                    : "quiescent")
            << "\nCycles  : " << result.cycles
            << "\nFirings : " << result.firings << "\n\nFired productions:\n";
  for (const auto& firing : interp.firings()) {
    std::cout << "  cycle " << firing.cycle << ": " << firing.production
              << "\n";
  }

  std::cout << "\nFinal working memory:\n";
  for (const auto* wme : interp.wm().all()) {
    std::cout << "  " << *wme << "\n";
  }
  return 0;
}
