// Blocks world: the classic OPS5 domain (the paper's Figure 2-1 production
// is a blocks-world rule).  Exercises negated condition elements, variable
// joins, modify/remove actions and the LEX strategy.
//
// Initial state:  C on A,  A on table,  B on table.
// Goal: put A on B.  The planner must first move C out of the way.
#include <iostream>

#include "src/ops5/parser.hpp"
#include "src/rete/interp.hpp"

int main() {
  using namespace mpps;

  const char* source = R"(
    (make start)
    (make block ^name a ^on table)
    (make block ^name b ^on table)
    (make block ^name c ^on a)
    (make goal ^obj a ^dest b)

    ; A block sitting on the goal object must be cleared away first.
    ; The obstructor itself must be clear (nothing on it).
    (p move-obstructor-to-table
      (goal ^obj <o> ^dest <d>)
      (block ^name <x> ^on <o>)
      -(block ^on <x>)
      -->
      (write moving <x> from <o> to the table (crlf))
      (modify 2 ^on table))

    ; When both the object and the destination are clear, do the move.
    (p achieve-goal
      (goal ^obj <o> ^dest <d>)
      (block ^name <o> ^on <s>)
      -(block ^on <o>)
      -(block ^on <d>)
      -->
      (write moving <o> from <s> onto <d> (crlf))
      (modify 2 ^on <d>)
      (remove 1))

    (p plan-complete
      (start)
      -(goal ^obj <any>)
      -->
      (write plan complete (crlf))
      (halt)))";

  rete::InterpreterOptions options;
  options.out = &std::cout;
  options.strategy = rete::Strategy::Lex;

  rete::Interpreter interp(ops5::parse_program(source), options);
  interp.load_initial_wmes();
  const rete::RunResult result = interp.run();

  std::cout << "\nPlanner "
            << (result.outcome == rete::RunResult::Outcome::Halted
                    ? "halted normally"
                    : "did not reach the goal")
            << " after " << result.firings << " rule firings.\n";

  std::cout << "\nFinal state:\n";
  for (const auto* wme : interp.wm().all()) {
    if (wme->wme_class() == Symbol::intern("block")) {
      std::cout << "  " << *wme << "\n";
    }
  }
  // Sanity: A must now be on B.
  for (const auto* wme : interp.wm().all()) {
    if (wme->wme_class() == Symbol::intern("block") &&
        wme->get(Symbol::intern("name")).equals(ops5::Value::sym("a"))) {
      const bool on_b =
          wme->get(Symbol::intern("on")).equals(ops5::Value::sym("b"));
      std::cout << "\nGoal " << (on_b ? "achieved" : "NOT achieved") << ".\n";
      return on_b ? 0 : 1;
    }
  }
  return 1;
}
