# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/ops5_tests[1]_include.cmake")
include("/root/repo/build/tests/rete_tests[1]_include.cmake")
include("/root/repo/build/tests/rete_oracle_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_tests[1]_include.cmake")
include("/root/repo/build/tests/coverage_gap_tests[1]_include.cmake")
include("/root/repo/build/tests/fuzz_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
