file(REMOVE_RECURSE
  "CMakeFiles/rete_oracle_tests.dir/rete_oracle_test.cpp.o"
  "CMakeFiles/rete_oracle_tests.dir/rete_oracle_test.cpp.o.d"
  "CMakeFiles/rete_oracle_tests.dir/rete_treat_test.cpp.o"
  "CMakeFiles/rete_oracle_tests.dir/rete_treat_test.cpp.o.d"
  "rete_oracle_tests"
  "rete_oracle_tests.pdb"
  "rete_oracle_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rete_oracle_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
