# Empty dependencies file for rete_oracle_tests.
# This may be replaced when dependencies are built.
