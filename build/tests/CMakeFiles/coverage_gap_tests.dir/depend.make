# Empty dependencies file for coverage_gap_tests.
# This may be replaced when dependencies are built.
