file(REMOVE_RECURSE
  "CMakeFiles/coverage_gap_tests.dir/coverage_gaps_test.cpp.o"
  "CMakeFiles/coverage_gap_tests.dir/coverage_gaps_test.cpp.o.d"
  "coverage_gap_tests"
  "coverage_gap_tests.pdb"
  "coverage_gap_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_gap_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
