# Empty compiler generated dependencies file for rete_tests.
# This may be replaced when dependencies are built.
