file(REMOVE_RECURSE
  "CMakeFiles/rete_tests.dir/rete_conflict_test.cpp.o"
  "CMakeFiles/rete_tests.dir/rete_conflict_test.cpp.o.d"
  "CMakeFiles/rete_tests.dir/rete_engine_test.cpp.o"
  "CMakeFiles/rete_tests.dir/rete_engine_test.cpp.o.d"
  "CMakeFiles/rete_tests.dir/rete_footprint_test.cpp.o"
  "CMakeFiles/rete_tests.dir/rete_footprint_test.cpp.o.d"
  "CMakeFiles/rete_tests.dir/rete_interp_test.cpp.o"
  "CMakeFiles/rete_tests.dir/rete_interp_test.cpp.o.d"
  "CMakeFiles/rete_tests.dir/rete_network_test.cpp.o"
  "CMakeFiles/rete_tests.dir/rete_network_test.cpp.o.d"
  "rete_tests"
  "rete_tests.pdb"
  "rete_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rete_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
