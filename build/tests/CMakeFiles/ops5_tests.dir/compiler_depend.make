# Empty compiler generated dependencies file for ops5_tests.
# This may be replaced when dependencies are built.
