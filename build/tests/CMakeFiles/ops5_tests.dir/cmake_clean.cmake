file(REMOVE_RECURSE
  "CMakeFiles/ops5_tests.dir/ops5_compute_test.cpp.o"
  "CMakeFiles/ops5_tests.dir/ops5_compute_test.cpp.o.d"
  "CMakeFiles/ops5_tests.dir/ops5_lexer_test.cpp.o"
  "CMakeFiles/ops5_tests.dir/ops5_lexer_test.cpp.o.d"
  "CMakeFiles/ops5_tests.dir/ops5_parser_test.cpp.o"
  "CMakeFiles/ops5_tests.dir/ops5_parser_test.cpp.o.d"
  "CMakeFiles/ops5_tests.dir/ops5_value_test.cpp.o"
  "CMakeFiles/ops5_tests.dir/ops5_value_test.cpp.o.d"
  "CMakeFiles/ops5_tests.dir/ops5_wme_test.cpp.o"
  "CMakeFiles/ops5_tests.dir/ops5_wme_test.cpp.o.d"
  "ops5_tests"
  "ops5_tests.pdb"
  "ops5_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops5_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
