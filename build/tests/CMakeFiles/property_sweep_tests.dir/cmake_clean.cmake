file(REMOVE_RECURSE
  "CMakeFiles/property_sweep_tests.dir/property_sweep_test.cpp.o"
  "CMakeFiles/property_sweep_tests.dir/property_sweep_test.cpp.o.d"
  "property_sweep_tests"
  "property_sweep_tests.pdb"
  "property_sweep_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_sweep_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
