file(REMOVE_RECURSE
  "CMakeFiles/mpps.dir/mpps_cli.cpp.o"
  "CMakeFiles/mpps.dir/mpps_cli.cpp.o.d"
  "mpps"
  "mpps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
