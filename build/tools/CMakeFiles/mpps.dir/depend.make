# Empty dependencies file for mpps.
# This may be replaced when dependencies are built.
