file(REMOVE_RECURSE
  "CMakeFiles/table_memory_footprint.dir/table_memory_footprint.cpp.o"
  "CMakeFiles/table_memory_footprint.dir/table_memory_footprint.cpp.o.d"
  "table_memory_footprint"
  "table_memory_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
