file(REMOVE_RECURSE
  "CMakeFiles/ablation_bucket_count.dir/ablation_bucket_count.cpp.o"
  "CMakeFiles/ablation_bucket_count.dir/ablation_bucket_count.cpp.o.d"
  "ablation_bucket_count"
  "ablation_bucket_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bucket_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
