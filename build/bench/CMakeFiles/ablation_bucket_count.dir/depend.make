# Empty dependencies file for ablation_bucket_count.
# This may be replaced when dependencies are built.
