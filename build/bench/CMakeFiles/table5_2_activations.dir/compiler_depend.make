# Empty compiler generated dependencies file for table5_2_activations.
# This may be replaced when dependencies are built.
