file(REMOVE_RECURSE
  "CMakeFiles/table5_2_activations.dir/table5_2_activations.cpp.o"
  "CMakeFiles/table5_2_activations.dir/table5_2_activations.cpp.o.d"
  "table5_2_activations"
  "table5_2_activations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_2_activations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
