
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_2_activations.cpp" "bench/CMakeFiles/table5_2_activations.dir/table5_2_activations.cpp.o" "gcc" "bench/CMakeFiles/table5_2_activations.dir/table5_2_activations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mpps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/rete/CMakeFiles/mpps_rete.dir/DependInfo.cmake"
  "/root/repo/build/src/ops5/CMakeFiles/mpps_ops5.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
