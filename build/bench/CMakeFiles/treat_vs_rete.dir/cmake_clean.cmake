file(REMOVE_RECURSE
  "CMakeFiles/treat_vs_rete.dir/treat_vs_rete.cpp.o"
  "CMakeFiles/treat_vs_rete.dir/treat_vs_rete.cpp.o.d"
  "treat_vs_rete"
  "treat_vs_rete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treat_vs_rete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
