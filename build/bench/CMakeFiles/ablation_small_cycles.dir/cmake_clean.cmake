file(REMOVE_RECURSE
  "CMakeFiles/ablation_small_cycles.dir/ablation_small_cycles.cpp.o"
  "CMakeFiles/ablation_small_cycles.dir/ablation_small_cycles.cpp.o.d"
  "ablation_small_cycles"
  "ablation_small_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_small_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
