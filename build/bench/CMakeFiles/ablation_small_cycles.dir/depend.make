# Empty dependencies file for ablation_small_cycles.
# This may be replaced when dependencies are built.
