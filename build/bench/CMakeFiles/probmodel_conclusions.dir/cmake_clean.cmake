file(REMOVE_RECURSE
  "CMakeFiles/probmodel_conclusions.dir/probmodel_conclusions.cpp.o"
  "CMakeFiles/probmodel_conclusions.dir/probmodel_conclusions.cpp.o.d"
  "probmodel_conclusions"
  "probmodel_conclusions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probmodel_conclusions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
