# Empty dependencies file for probmodel_conclusions.
# This may be replaced when dependencies are built.
