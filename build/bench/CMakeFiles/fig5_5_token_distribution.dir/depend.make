# Empty dependencies file for fig5_5_token_distribution.
# This may be replaced when dependencies are built.
