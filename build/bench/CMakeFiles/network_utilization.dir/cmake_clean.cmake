file(REMOVE_RECURSE
  "CMakeFiles/network_utilization.dir/network_utilization.cpp.o"
  "CMakeFiles/network_utilization.dir/network_utilization.cpp.o.d"
  "network_utilization"
  "network_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
