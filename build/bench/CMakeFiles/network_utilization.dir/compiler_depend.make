# Empty compiler generated dependencies file for network_utilization.
# This may be replaced when dependencies are built.
