# Empty compiler generated dependencies file for fig5_3_unshare_demo.
# This may be replaced when dependencies are built.
