file(REMOVE_RECURSE
  "CMakeFiles/fig5_3_unshare_demo.dir/fig5_3_unshare_demo.cpp.o"
  "CMakeFiles/fig5_3_unshare_demo.dir/fig5_3_unshare_demo.cpp.o.d"
  "fig5_3_unshare_demo"
  "fig5_3_unshare_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_3_unshare_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
