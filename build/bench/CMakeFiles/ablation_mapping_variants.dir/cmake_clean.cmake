file(REMOVE_RECURSE
  "CMakeFiles/ablation_mapping_variants.dir/ablation_mapping_variants.cpp.o"
  "CMakeFiles/ablation_mapping_variants.dir/ablation_mapping_variants.cpp.o.d"
  "ablation_mapping_variants"
  "ablation_mapping_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mapping_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
