# Empty compiler generated dependencies file for ablation_mapping_variants.
# This may be replaced when dependencies are built.
