# Empty dependencies file for fig5_6_copy_constraint.
# This may be replaced when dependencies are built.
