file(REMOVE_RECURSE
  "CMakeFiles/fig5_6_copy_constraint.dir/fig5_6_copy_constraint.cpp.o"
  "CMakeFiles/fig5_6_copy_constraint.dir/fig5_6_copy_constraint.cpp.o.d"
  "fig5_6_copy_constraint"
  "fig5_6_copy_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_6_copy_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
