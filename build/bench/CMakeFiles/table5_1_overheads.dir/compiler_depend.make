# Empty compiler generated dependencies file for table5_1_overheads.
# This may be replaced when dependencies are built.
