file(REMOVE_RECURSE
  "CMakeFiles/table5_1_overheads.dir/table5_1_overheads.cpp.o"
  "CMakeFiles/table5_1_overheads.dir/table5_1_overheads.cpp.o.d"
  "table5_1_overheads"
  "table5_1_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_1_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
