# Empty dependencies file for fig5_1_zero_overhead.
# This may be replaced when dependencies are built.
