# Empty dependencies file for intra_cycle_analysis.
# This may be replaced when dependencies are built.
