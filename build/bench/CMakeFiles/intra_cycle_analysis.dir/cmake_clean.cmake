file(REMOVE_RECURSE
  "CMakeFiles/intra_cycle_analysis.dir/intra_cycle_analysis.cpp.o"
  "CMakeFiles/intra_cycle_analysis.dir/intra_cycle_analysis.cpp.o.d"
  "intra_cycle_analysis"
  "intra_cycle_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intra_cycle_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
