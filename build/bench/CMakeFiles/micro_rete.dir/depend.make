# Empty dependencies file for micro_rete.
# This may be replaced when dependencies are built.
