file(REMOVE_RECURSE
  "CMakeFiles/micro_rete.dir/micro_rete.cpp.o"
  "CMakeFiles/micro_rete.dir/micro_rete.cpp.o.d"
  "micro_rete"
  "micro_rete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
