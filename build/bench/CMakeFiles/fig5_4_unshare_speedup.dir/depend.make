# Empty dependencies file for fig5_4_unshare_speedup.
# This may be replaced when dependencies are built.
