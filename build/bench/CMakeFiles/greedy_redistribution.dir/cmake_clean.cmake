file(REMOVE_RECURSE
  "CMakeFiles/greedy_redistribution.dir/greedy_redistribution.cpp.o"
  "CMakeFiles/greedy_redistribution.dir/greedy_redistribution.cpp.o.d"
  "greedy_redistribution"
  "greedy_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
