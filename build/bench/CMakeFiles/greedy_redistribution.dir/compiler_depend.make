# Empty compiler generated dependencies file for greedy_redistribution.
# This may be replaced when dependencies are built.
