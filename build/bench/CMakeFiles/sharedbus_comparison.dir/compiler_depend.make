# Empty compiler generated dependencies file for sharedbus_comparison.
# This may be replaced when dependencies are built.
