file(REMOVE_RECURSE
  "CMakeFiles/sharedbus_comparison.dir/sharedbus_comparison.cpp.o"
  "CMakeFiles/sharedbus_comparison.dir/sharedbus_comparison.cpp.o.d"
  "sharedbus_comparison"
  "sharedbus_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharedbus_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
