# Empty compiler generated dependencies file for ablation_bucket_migration.
# This may be replaced when dependencies are built.
