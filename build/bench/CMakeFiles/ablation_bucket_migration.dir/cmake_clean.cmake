file(REMOVE_RECURSE
  "CMakeFiles/ablation_bucket_migration.dir/ablation_bucket_migration.cpp.o"
  "CMakeFiles/ablation_bucket_migration.dir/ablation_bucket_migration.cpp.o.d"
  "ablation_bucket_migration"
  "ablation_bucket_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bucket_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
