
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assignment.cpp" "src/sim/CMakeFiles/mpps_sim.dir/assignment.cpp.o" "gcc" "src/sim/CMakeFiles/mpps_sim.dir/assignment.cpp.o.d"
  "/root/repo/src/sim/sharedbus.cpp" "src/sim/CMakeFiles/mpps_sim.dir/sharedbus.cpp.o" "gcc" "src/sim/CMakeFiles/mpps_sim.dir/sharedbus.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/mpps_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mpps_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mpps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rete/CMakeFiles/mpps_rete.dir/DependInfo.cmake"
  "/root/repo/build/src/ops5/CMakeFiles/mpps_ops5.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
