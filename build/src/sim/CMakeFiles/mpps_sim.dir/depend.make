# Empty dependencies file for mpps_sim.
# This may be replaced when dependencies are built.
