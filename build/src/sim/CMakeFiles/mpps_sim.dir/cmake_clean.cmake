file(REMOVE_RECURSE
  "CMakeFiles/mpps_sim.dir/assignment.cpp.o"
  "CMakeFiles/mpps_sim.dir/assignment.cpp.o.d"
  "CMakeFiles/mpps_sim.dir/sharedbus.cpp.o"
  "CMakeFiles/mpps_sim.dir/sharedbus.cpp.o.d"
  "CMakeFiles/mpps_sim.dir/simulator.cpp.o"
  "CMakeFiles/mpps_sim.dir/simulator.cpp.o.d"
  "libmpps_sim.a"
  "libmpps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
