file(REMOVE_RECURSE
  "libmpps_sim.a"
)
