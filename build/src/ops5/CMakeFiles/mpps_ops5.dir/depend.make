# Empty dependencies file for mpps_ops5.
# This may be replaced when dependencies are built.
