file(REMOVE_RECURSE
  "libmpps_ops5.a"
)
