
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops5/ast.cpp" "src/ops5/CMakeFiles/mpps_ops5.dir/ast.cpp.o" "gcc" "src/ops5/CMakeFiles/mpps_ops5.dir/ast.cpp.o.d"
  "/root/repo/src/ops5/lexer.cpp" "src/ops5/CMakeFiles/mpps_ops5.dir/lexer.cpp.o" "gcc" "src/ops5/CMakeFiles/mpps_ops5.dir/lexer.cpp.o.d"
  "/root/repo/src/ops5/parser.cpp" "src/ops5/CMakeFiles/mpps_ops5.dir/parser.cpp.o" "gcc" "src/ops5/CMakeFiles/mpps_ops5.dir/parser.cpp.o.d"
  "/root/repo/src/ops5/value.cpp" "src/ops5/CMakeFiles/mpps_ops5.dir/value.cpp.o" "gcc" "src/ops5/CMakeFiles/mpps_ops5.dir/value.cpp.o.d"
  "/root/repo/src/ops5/wme.cpp" "src/ops5/CMakeFiles/mpps_ops5.dir/wme.cpp.o" "gcc" "src/ops5/CMakeFiles/mpps_ops5.dir/wme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mpps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
