file(REMOVE_RECURSE
  "CMakeFiles/mpps_ops5.dir/ast.cpp.o"
  "CMakeFiles/mpps_ops5.dir/ast.cpp.o.d"
  "CMakeFiles/mpps_ops5.dir/lexer.cpp.o"
  "CMakeFiles/mpps_ops5.dir/lexer.cpp.o.d"
  "CMakeFiles/mpps_ops5.dir/parser.cpp.o"
  "CMakeFiles/mpps_ops5.dir/parser.cpp.o.d"
  "CMakeFiles/mpps_ops5.dir/value.cpp.o"
  "CMakeFiles/mpps_ops5.dir/value.cpp.o.d"
  "CMakeFiles/mpps_ops5.dir/wme.cpp.o"
  "CMakeFiles/mpps_ops5.dir/wme.cpp.o.d"
  "libmpps_ops5.a"
  "libmpps_ops5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpps_ops5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
