
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rete/conflict.cpp" "src/rete/CMakeFiles/mpps_rete.dir/conflict.cpp.o" "gcc" "src/rete/CMakeFiles/mpps_rete.dir/conflict.cpp.o.d"
  "/root/repo/src/rete/engine.cpp" "src/rete/CMakeFiles/mpps_rete.dir/engine.cpp.o" "gcc" "src/rete/CMakeFiles/mpps_rete.dir/engine.cpp.o.d"
  "/root/repo/src/rete/footprint.cpp" "src/rete/CMakeFiles/mpps_rete.dir/footprint.cpp.o" "gcc" "src/rete/CMakeFiles/mpps_rete.dir/footprint.cpp.o.d"
  "/root/repo/src/rete/interp.cpp" "src/rete/CMakeFiles/mpps_rete.dir/interp.cpp.o" "gcc" "src/rete/CMakeFiles/mpps_rete.dir/interp.cpp.o.d"
  "/root/repo/src/rete/memory.cpp" "src/rete/CMakeFiles/mpps_rete.dir/memory.cpp.o" "gcc" "src/rete/CMakeFiles/mpps_rete.dir/memory.cpp.o.d"
  "/root/repo/src/rete/naive.cpp" "src/rete/CMakeFiles/mpps_rete.dir/naive.cpp.o" "gcc" "src/rete/CMakeFiles/mpps_rete.dir/naive.cpp.o.d"
  "/root/repo/src/rete/network.cpp" "src/rete/CMakeFiles/mpps_rete.dir/network.cpp.o" "gcc" "src/rete/CMakeFiles/mpps_rete.dir/network.cpp.o.d"
  "/root/repo/src/rete/treat.cpp" "src/rete/CMakeFiles/mpps_rete.dir/treat.cpp.o" "gcc" "src/rete/CMakeFiles/mpps_rete.dir/treat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops5/CMakeFiles/mpps_ops5.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mpps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
