# Empty dependencies file for mpps_rete.
# This may be replaced when dependencies are built.
