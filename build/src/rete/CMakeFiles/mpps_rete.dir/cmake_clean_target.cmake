file(REMOVE_RECURSE
  "libmpps_rete.a"
)
