file(REMOVE_RECURSE
  "CMakeFiles/mpps_rete.dir/conflict.cpp.o"
  "CMakeFiles/mpps_rete.dir/conflict.cpp.o.d"
  "CMakeFiles/mpps_rete.dir/engine.cpp.o"
  "CMakeFiles/mpps_rete.dir/engine.cpp.o.d"
  "CMakeFiles/mpps_rete.dir/footprint.cpp.o"
  "CMakeFiles/mpps_rete.dir/footprint.cpp.o.d"
  "CMakeFiles/mpps_rete.dir/interp.cpp.o"
  "CMakeFiles/mpps_rete.dir/interp.cpp.o.d"
  "CMakeFiles/mpps_rete.dir/memory.cpp.o"
  "CMakeFiles/mpps_rete.dir/memory.cpp.o.d"
  "CMakeFiles/mpps_rete.dir/naive.cpp.o"
  "CMakeFiles/mpps_rete.dir/naive.cpp.o.d"
  "CMakeFiles/mpps_rete.dir/network.cpp.o"
  "CMakeFiles/mpps_rete.dir/network.cpp.o.d"
  "CMakeFiles/mpps_rete.dir/treat.cpp.o"
  "CMakeFiles/mpps_rete.dir/treat.cpp.o.d"
  "libmpps_rete.a"
  "libmpps_rete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpps_rete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
