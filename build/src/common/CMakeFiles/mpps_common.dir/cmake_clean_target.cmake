file(REMOVE_RECURSE
  "libmpps_common.a"
)
