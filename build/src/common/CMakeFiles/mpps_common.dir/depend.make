# Empty dependencies file for mpps_common.
# This may be replaced when dependencies are built.
