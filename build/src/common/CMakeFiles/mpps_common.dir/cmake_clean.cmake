file(REMOVE_RECURSE
  "CMakeFiles/mpps_common.dir/strings.cpp.o"
  "CMakeFiles/mpps_common.dir/strings.cpp.o.d"
  "CMakeFiles/mpps_common.dir/symbol.cpp.o"
  "CMakeFiles/mpps_common.dir/symbol.cpp.o.d"
  "CMakeFiles/mpps_common.dir/table.cpp.o"
  "CMakeFiles/mpps_common.dir/table.cpp.o.d"
  "libmpps_common.a"
  "libmpps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
