# Empty dependencies file for mpps_core.
# This may be replaced when dependencies are built.
