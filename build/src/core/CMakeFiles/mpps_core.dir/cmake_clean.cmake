file(REMOVE_RECURSE
  "CMakeFiles/mpps_core.dir/cli.cpp.o"
  "CMakeFiles/mpps_core.dir/cli.cpp.o.d"
  "CMakeFiles/mpps_core.dir/distribution.cpp.o"
  "CMakeFiles/mpps_core.dir/distribution.cpp.o.d"
  "CMakeFiles/mpps_core.dir/experiments.cpp.o"
  "CMakeFiles/mpps_core.dir/experiments.cpp.o.d"
  "CMakeFiles/mpps_core.dir/pipeline.cpp.o"
  "CMakeFiles/mpps_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/mpps_core.dir/probmodel.cpp.o"
  "CMakeFiles/mpps_core.dir/probmodel.cpp.o.d"
  "CMakeFiles/mpps_core.dir/xform.cpp.o"
  "CMakeFiles/mpps_core.dir/xform.cpp.o.d"
  "libmpps_core.a"
  "libmpps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
