file(REMOVE_RECURSE
  "libmpps_core.a"
)
