file(REMOVE_RECURSE
  "libmpps_trace.a"
)
