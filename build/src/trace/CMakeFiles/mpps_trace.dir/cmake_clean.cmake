file(REMOVE_RECURSE
  "CMakeFiles/mpps_trace.dir/io.cpp.o"
  "CMakeFiles/mpps_trace.dir/io.cpp.o.d"
  "CMakeFiles/mpps_trace.dir/record.cpp.o"
  "CMakeFiles/mpps_trace.dir/record.cpp.o.d"
  "CMakeFiles/mpps_trace.dir/synth.cpp.o"
  "CMakeFiles/mpps_trace.dir/synth.cpp.o.d"
  "libmpps_trace.a"
  "libmpps_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpps_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
