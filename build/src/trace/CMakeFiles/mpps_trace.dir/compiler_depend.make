# Empty compiler generated dependencies file for mpps_trace.
# This may be replaced when dependencies are built.
