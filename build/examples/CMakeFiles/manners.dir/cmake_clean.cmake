file(REMOVE_RECURSE
  "CMakeFiles/manners.dir/manners.cpp.o"
  "CMakeFiles/manners.dir/manners.cpp.o.d"
  "manners"
  "manners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
