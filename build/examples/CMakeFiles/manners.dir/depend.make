# Empty dependencies file for manners.
# This may be replaced when dependencies are built.
