file(REMOVE_RECURSE
  "CMakeFiles/mpc_speedup.dir/mpc_speedup.cpp.o"
  "CMakeFiles/mpc_speedup.dir/mpc_speedup.cpp.o.d"
  "mpc_speedup"
  "mpc_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
