# Empty compiler generated dependencies file for mpc_speedup.
# This may be replaced when dependencies are built.
