#!/usr/bin/env bash
# Tier-1 verification gate: a plain build + full test suite + simulator
# self-check, then the same suite under AddressSanitizer/
# UndefinedBehaviorSanitizer, then the multi-threaded sweep-engine tests
# and the self-check under ThreadSanitizer, then a gcov line-coverage
# floor on the simulator and orchestration layers.  This is the check
# every change must pass; scripts/reproduce.sh is the heavier companion
# that also regenerates the paper tables and figures.
#
# Coverage thresholds (enforced by the coverage job below; measured as
# gcov line coverage across each directory's sources; the measured
# numbers behind each floor are recorded in docs/TESTING.md):
#   src/sim/   >= 90%  — the simulator is the subject of the paper; the
#                        differential + selfcheck suites should leave
#                        little of it unexecuted
#   src/core/  >= 80%  — CLI/sweep/selfcheck orchestration (some error
#                        plumbing and report formatting is cold)
#   src/trace/ >= 80%  — trace schema + IO (round-trip and truncation
#                        suites in tests/trace_io_test.cpp)
#   src/rete/  >= 75%  — match engine, TREAT rival and the naive oracle
#   src/pmatch/ >= 85% — BSP parallel matcher; the model checker drives
#                        every mailbox/merge ordering the seam exposes
#   src/serve/ >= 75%  — serving engine; the engine/isolation suites and
#                        the CLI smoke cover the hot paths, some shutdown
#                        and rejection plumbing is cold
# Raise them when coverage improves; never lower them to make a change
# pass — add tests instead (docs/TESTING.md).
#
# Every ctest invocation runs with --timeout 120 so a hung test (deadlock
# in the sweep pool, runaway shrinker) fails the gate instead of wedging
# it.
#
# Usage:
#   scripts/ci.sh            # plain + sanitizer + coverage passes
#   scripts/ci.sh --fast     # plain pass only (skip sanitizers + coverage)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== tier-1: configure + build + ctest (build/) ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)" --timeout 120

echo "=== tier-1: simulator differential self-check ==="
./build/tools/mpps selfcheck --rounds 50 --seed 1
# The oracle must also CATCH a planted cost-model bug (exit 1).
if ./build/tools/mpps selfcheck --rounds 5 --seed 1 \
    --fault left-token-undercharge > /dev/null 2>&1; then
  echo "selfcheck failed to catch an injected fault" >&2
  exit 1
fi
# Same discipline for the network layer: the free-remote-hop fault is
# invisible on the flat wire, so catching it proves the selfcheck really
# randomizes multi-hop topologies AND that the net-hop-latency law bites.
if ./build/tools/mpps selfcheck --rounds 5 --seed 1 \
    --fault free-remote-hop > /dev/null 2>&1; then
  echo "selfcheck failed to catch an injected free-remote-hop fault" >&2
  exit 1
fi

echo "=== tier-1: pmatch model checker (exhaustive corpus + planted fault) ==="
# Every distinguishable mailbox/merge ordering of every corpus scenario
# must agree with the serial engine (docs/TESTING.md, "Model checker").
./build/tools/mpps check --exhaustive
# The checker must also CATCH a planted merge-order fault (exit 1) — the
# same must-fail discipline the selfcheck gate uses above.  If this
# passes, the checker is blind and the gate has failed.
if ./build/tools/mpps check --exhaustive --fault merge-order \
    > /dev/null 2>&1; then
  echo "model checker failed to catch an injected merge-order fault" >&2
  exit 1
fi

echo "=== tier-1: simulator kernel throughput smoke (BENCH_simkernel.json) ==="
# Smoke mode (tiny traces, 2 timed iterations) exists to catch bit-rot in
# the bench harness and to keep a per-run perf artifact; the JSON it
# writes is the run artifact (docs/SIMULATOR.md explains how to read it).
# Absolute numbers from smoke mode are noise — run the bench without
# --smoke for comparable measurements.
./build/bench/simkernel_throughput --smoke -o BENCH_simkernel.json
test -s BENCH_simkernel.json

echo "=== tier-1: topology speedup smoke (BENCH_topology.json) ==="
# The speedup grid per interconnection topology (flat wire / mesh /
# torus / fat-tree); smoke mode trims the processor grid but runs every
# topology, so routing + contention + auto-geometry stay exercised on
# every build (docs/SIMULATOR.md, "Network models").
./build/bench/topology_speedup --smoke -o BENCH_topology.json
test -s BENCH_topology.json

echo "=== tier-1: parallel match throughput smoke (BENCH_pmatch.json) ==="
# Measured (wall-clock) counterpart of the simulated curves above; the
# JSON records hardware_concurrency — on a 1-CPU runner the speedup
# columns honestly stay <= 1 (docs/PARALLEL_MATCH.md).
./build/bench/pmatch_throughput --smoke -o BENCH_pmatch.json
test -s BENCH_pmatch.json

echo "=== tier-1: profiler smoke report (PROFILE_pmatch.json) ==="
# The wall-clock phase-attribution report on the fanout workload as a
# per-run artifact next to the bench JSONs (docs/OBSERVABILITY.md); the
# acceptance bound itself (>= 95% attributed) is asserted by
# tests/pmatch_profile_test.cpp, this smoke just keeps the end-to-end
# `run --profile --json` path exercised and archived.
./build/tools/mpps run examples/programs/bench_fanout.ops \
  --match-threads 2 --match-batch 16 --profile --json --quiet \
  > PROFILE_pmatch.json
test -s PROFILE_pmatch.json
grep -q '"min_attributed_pct"' PROFILE_pmatch.json

echo "=== tier-1: serve latency smoke (BENCH_serve.json) ==="
# Multi-tenant serving engine latency/fusion grid (docs/SERVING.md);
# smoke mode trims the per-session transaction count but still runs the
# full sessions x threads grid, so admission batching, phase fusion and
# cross-session isolation counters stay exercised on every build.
./build/bench/serve_latency --smoke -o BENCH_serve.json
test -s BENCH_serve.json

echo "=== tier-1: serve soak (bounded RSS, ~30s) ==="
# Closed-loop soak through the real CLI: 8 concurrent sessions replaying
# sliding-window transactions for 30 seconds with a hard peak-RSS
# ceiling — a leak in session eviction, the admission queue or the
# per-transaction promise plumbing shows up here as either a ceiling
# breach (exit 1) or unbounded queue depth.  The window keeps live wmes
# bounded, so memory must be flat.
./build/tools/mpps serve examples/programs/bench_fanout.ops \
  --sessions 8 --seconds 30 --wm-window 8 --match-threads 2 \
  --rss-ceiling-mb 512 --json > SOAK_serve.json
test -s SOAK_serve.json
grep -q '"cross_session_deltas": 0' SOAK_serve.json

echo "=== tier-1: attribution percentage + latency percentile gate ==="
# Every *_pct field any artifact emits must sit in [0, 100], every
# *_speedup field must be finite and positive, and every p50/p95/p99
# triple must be finite, non-negative and monotone; the >100%
# conflict_update_pct regression (wrong denominator) is exactly what this
# catches (scripts/check_pct.py).
python3 scripts/check_pct.py BENCH_pmatch.json PROFILE_pmatch.json \
  BENCH_topology.json BENCH_serve.json SOAK_serve.json

if [ "$FAST" -eq 1 ]; then
  echo "=== tier-1 passed (sanitizer + coverage passes skipped via --fast) ==="
  exit 0
fi

echo "=== sanitizers: ASan + UBSan rebuild + ctest (build-asan/) ==="
SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" --timeout 120
./build-asan/tools/mpps selfcheck --rounds 20 --seed 1

echo "=== sanitizers: TSan rebuild of the threaded code + its tests (build-tsan/) ==="
# TSan is incompatible with ASan/UBSan in one binary, so it gets its own
# tree; only the multi-threaded code (SweepRunner, BaselineCache, the
# pmatch worker pool) and its tests need the pass, so build and run just
# those targets.  pmatch_tests includes the differential oracle at
# 1/2/4/8 worker threads, the round-batched oracle and mailbox suites
# (pmatch_batch_test / pmatch_mailbox_test — fused phases stress the
# sharded mailbox and the cross-round merge paths hardest), plus the
# profiler integration and WorkerStats suites (pmatch_profile_test /
# pmatch_stats_test), so this is where engine races — including
# profiler-lane writes — would surface.  serve_tests adds the serving
# engine on top: concurrent client threads racing through the admission
# queue into fused phases, including the adversarial isolation suite at
# 1/2/4/8 match threads (tests/serve_isolation_test.cpp requires a
# TSan-clean run as part of its acceptance).
TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"
cmake --build build-tsan -j --target sweep_tests pmatch_tests network_tests \
  serve_tests mpps
./build-tsan/tests/sweep_tests
./build-tsan/tests/pmatch_tests
./build-tsan/tests/serve_tests
# The network layer itself is single-threaded, but the sweep engine
# replays topology configurations across worker threads (shared
# BaselineCache, per-run NetworkModel instances) — run the suite here so
# a future shared-state shortcut in a model surfaces as a race.
./build-tsan/tests/network_tests
./build-tsan/tools/mpps selfcheck --rounds 10 --seed 1

echo "=== coverage: gcov rebuild + line-coverage floors (build-cov/) ==="
# gcovr/lcov are not available in the container, so the job drives raw
# gcov: rebuild with --coverage, run the full suite plus a selfcheck,
# then aggregate "Lines executed" per source directory with a small
# python reader (scripts/coverage_gate.py documents the math).
COV_FLAGS="--coverage -O0"
cmake -B build-cov -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$COV_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="--coverage"
cmake --build build-cov -j
ctest --test-dir build-cov --output-on-failure -j "$(nproc)" --timeout 240
./build-cov/tools/mpps selfcheck --rounds 20 --seed 1
python3 scripts/coverage_gate.py build-cov \
  src/sim=90 src/core=80 src/trace=80 src/rete=75 src/pmatch=85 src/serve=75

echo "=== tier-1 + sanitizers + coverage passed ==="
