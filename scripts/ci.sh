#!/usr/bin/env bash
# Tier-1 verification gate: a plain build + full test suite, then the same
# suite again under AddressSanitizer/UndefinedBehaviorSanitizer, then the
# multi-threaded sweep-engine tests under ThreadSanitizer.  This is the
# check every change must pass; scripts/reproduce.sh is the heavier
# companion that also regenerates the paper tables and figures.
#
# Usage:
#   scripts/ci.sh            # plain + sanitizer passes
#   scripts/ci.sh --fast     # plain pass only (skip the sanitizer rebuilds)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "=== tier-1: configure + build + ctest (build/) ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [ "$FAST" -eq 1 ]; then
  echo "=== tier-1 passed (sanitizer pass skipped via --fast) ==="
  exit 0
fi

echo "=== sanitizers: ASan + UBSan rebuild + ctest (build-asan/) ==="
SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "=== sanitizers: TSan rebuild of the sweep engine + its tests (build-tsan/) ==="
# TSan is incompatible with ASan/UBSan in one binary, so it gets its own
# tree; only the multi-threaded code (SweepRunner, BaselineCache) and its
# tests need the pass, so build and run just that target.
TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"
cmake --build build-tsan -j --target sweep_tests
./build-tsan/tests/sweep_tests

echo "=== tier-1 + sanitizers passed ==="
