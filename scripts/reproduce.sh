#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite and regenerates every
# paper table/figure.  Outputs land in test_output.txt / bench_output.txt
# at the repository root.
#
# For the verification gate alone (build + tests, plus an ASan/UBSan
# pass), use scripts/ci.sh instead — it is faster and what changes are
# expected to pass before landing.
set -uo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo
      echo "########## $(basename "$b") ##########"
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done: test_output.txt, bench_output.txt"
