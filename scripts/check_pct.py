#!/usr/bin/env python3
"""Percentage-range gate for emitted JSON artifacts.

Walks every JSON file given on the command line and fails (exit 1) if any
field whose key ends in ``_pct`` — at any nesting depth, including inside
arrays — holds a value outside [0, 100] or a non-finite number.  This is
the smoke-level backstop for the profiler's clamped ``safe_pct`` plumbing:
tests/obs_profiler_test.cpp proves the property on synthetic lanes, and
this gate proves no emission path (bench attribution objects, the CLI's
``run --profile --json`` report) bypasses it — the conflict_update_pct
field once read 110.7 in BENCH_pmatch.json because the control thread's
merge time was divided by a worker-wall denominator.

Fields ending in ``_speedup`` get the analogous gate: finite and
strictly positive.  BENCH_topology.json reports the per-topology speedup
grid this way; a zero, negative, NaN or infinite speedup means the
simulated baseline or makespan went bad, never a legitimate data point.

Latency percentile triples get an ordering gate: whenever one dict holds
``p50<suffix>``, ``p95<suffix>`` and ``p99<suffix>`` keys with a shared
suffix (``p50_us``/``p95_us``/``p99_us`` in BENCH_serve.json and the
serve CLI's ``latency`` object), each value must be a finite number
>= 0 and the triple must be monotone: p50 <= p95 <= p99.  An inversion
means the histogram/rank math regressed, never a legitimate workload.

Usage: check_pct.py FILE.json [FILE.json ...]
"""
import json
import math
import sys


def check_percentile_triples(node, path, violations):
    """Gate p50*/p95*/p99* key triples sharing a suffix within one dict."""
    for key, p50 in node.items():
        if not key.startswith("p50"):
            continue
        suffix = key[len("p50"):]
        p95 = node.get("p95" + suffix)
        p99 = node.get("p99" + suffix)
        if p95 is None or p99 is None:
            continue
        where = f"{path}." if path else ""
        triple = [("p50" + suffix, p50), ("p95" + suffix, p95),
                  ("p99" + suffix, p99)]
        ok = True
        for name, value in triple:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                violations.append(f"{where}{name}: not a number ({value!r})")
                ok = False
            elif not math.isfinite(value):
                violations.append(f"{where}{name}: non-finite ({value!r})")
                ok = False
            elif value < 0.0:
                violations.append(f"{where}{name}: {value} negative")
                ok = False
        if ok and not p50 <= p95 <= p99:
            violations.append(
                f"{where}p50{suffix}: percentiles not monotone "
                f"({p50} / {p95} / {p99})")


def walk(node, path, violations):
    if isinstance(node, dict):
        check_percentile_triples(node, path, violations)
        for key, value in node.items():
            where = f"{path}.{key}" if path else key
            if key.endswith("_pct"):
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    violations.append(f"{where}: not a number ({value!r})")
                elif not math.isfinite(value):
                    violations.append(f"{where}: non-finite ({value!r})")
                elif not 0.0 <= value <= 100.0:
                    violations.append(f"{where}: {value} outside [0, 100]")
            elif key.endswith("_speedup"):
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    violations.append(f"{where}: not a number ({value!r})")
                elif not math.isfinite(value):
                    violations.append(f"{where}: non-finite ({value!r})")
                elif value <= 0.0:
                    violations.append(f"{where}: {value} not positive")
            walk(value, where, violations)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            walk(item, f"{path}[{i}]", violations)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for fname in argv[1:]:
        try:
            with open(fname, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"{fname}: cannot read/parse: {exc}", file=sys.stderr)
            failed = True
            continue
        violations = []
        walk(doc, "", violations)
        if violations:
            failed = True
            for v in violations:
                print(f"{fname}: {v}", file=sys.stderr)
        else:
            print(f"{fname}: all *_pct / *_speedup / percentile gates pass")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
