#!/usr/bin/env python3
"""Percentage-range gate for emitted JSON artifacts.

Walks every JSON file given on the command line and fails (exit 1) if any
field whose key ends in ``_pct`` — at any nesting depth, including inside
arrays — holds a value outside [0, 100] or a non-finite number.  This is
the smoke-level backstop for the profiler's clamped ``safe_pct`` plumbing:
tests/obs_profiler_test.cpp proves the property on synthetic lanes, and
this gate proves no emission path (bench attribution objects, the CLI's
``run --profile --json`` report) bypasses it — the conflict_update_pct
field once read 110.7 in BENCH_pmatch.json because the control thread's
merge time was divided by a worker-wall denominator.

Fields ending in ``_speedup`` get the analogous gate: finite and
strictly positive.  BENCH_topology.json reports the per-topology speedup
grid this way; a zero, negative, NaN or infinite speedup means the
simulated baseline or makespan went bad, never a legitimate data point.

Usage: check_pct.py FILE.json [FILE.json ...]
"""
import json
import math
import sys


def walk(node, path, violations):
    if isinstance(node, dict):
        for key, value in node.items():
            where = f"{path}.{key}" if path else key
            if key.endswith("_pct"):
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    violations.append(f"{where}: not a number ({value!r})")
                elif not math.isfinite(value):
                    violations.append(f"{where}: non-finite ({value!r})")
                elif not 0.0 <= value <= 100.0:
                    violations.append(f"{where}: {value} outside [0, 100]")
            elif key.endswith("_speedup"):
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    violations.append(f"{where}: not a number ({value!r})")
                elif not math.isfinite(value):
                    violations.append(f"{where}: non-finite ({value!r})")
                elif value <= 0.0:
                    violations.append(f"{where}: {value} not positive")
            walk(value, where, violations)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            walk(item, f"{path}[{i}]", violations)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for fname in argv[1:]:
        try:
            with open(fname, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"{fname}: cannot read/parse: {exc}", file=sys.stderr)
            failed = True
            continue
        violations = []
        walk(doc, "", violations)
        if violations:
            failed = True
            for v in violations:
                print(f"{fname}: {v}", file=sys.stderr)
        else:
            print(f"{fname}: all *_pct fields in [0, 100]")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
