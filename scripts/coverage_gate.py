#!/usr/bin/env python3
"""Line-coverage floor check driven by raw gcov.

The container has no gcovr/lcov, so this script does the aggregation
itself: it walks a --coverage build tree for .gcda note files, runs
`gcov` on each, and parses the

    File 'src/sim/simulator.cpp'
    Lines executed:95.31% of 448

summary pairs from stdout.  Only .cpp files are counted (headers show
up once per including translation unit with different counts, which
would skew a naive sum; the implementation files are compiled exactly
once into their library).  When the same source still appears under
several objects, the best-covered instance wins.

Usage:
    coverage_gate.py BUILD_DIR PREFIX=FLOOR [PREFIX=FLOOR ...]

e.g.

    coverage_gate.py build-cov src/sim=85 src/core=70

Exit status is 0 when every prefix meets its floor, 1 otherwise.
The per-directory percentage is total-executed-lines / total-lines
across the directory's sources, not an average of per-file ratios.
"""

import os
import re
import subprocess
import sys
import tempfile

FILE_RE = re.compile(r"^File '(.+)'$")
LINES_RE = re.compile(r"^Lines executed:([0-9.]+)% of (\d+)$")


def gcov_summaries(build_dir):
    """Yields (source_path, executed_lines, total_lines) per gcov report."""
    gcda = []
    for root, _dirs, files in os.walk(build_dir):
        gcda.extend(os.path.join(root, f) for f in files if f.endswith(".gcda"))
    if not gcda:
        sys.exit(f"coverage_gate: no .gcda files under {build_dir}; "
                 "was the tree built with --coverage and the tests run?")
    with tempfile.TemporaryDirectory() as scratch:
        for path in sorted(gcda):
            proc = subprocess.run(
                ["gcov", os.path.abspath(path)],
                cwd=scratch, capture_output=True, text=True, check=False)
            current = None
            for line in proc.stdout.splitlines():
                m = FILE_RE.match(line)
                if m:
                    current = m.group(1)
                    continue
                m = LINES_RE.match(line)
                if m and current is not None:
                    total = int(m.group(2))
                    executed = round(float(m.group(1)) * total / 100.0)
                    yield current, executed, total
                    current = None


def main(argv):
    if len(argv) < 3:
        sys.exit(__doc__)
    build_dir = argv[1]
    floors = {}
    for spec in argv[2:]:
        prefix, _, floor = spec.partition("=")
        floors[prefix.rstrip("/")] = float(floor)

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    # best (executed, total) seen per repo-relative source path
    best = {}
    for source, executed, total in gcov_summaries(build_dir):
        if not source.endswith(".cpp"):
            continue
        rel = os.path.relpath(os.path.abspath(os.path.join(repo, source)), repo) \
            if not os.path.isabs(source) else os.path.relpath(source, repo)
        if rel.startswith(".."):
            continue  # system / external source
        prev = best.get(rel)
        if prev is None or executed * prev[1] > prev[0] * total:
            best[rel] = (executed, total)

    failed = False
    for prefix in sorted(floors):
        floor = floors[prefix]
        executed = total = files = 0
        for rel, (e, t) in sorted(best.items()):
            if rel.startswith(prefix + "/"):
                executed += e
                total += t
                files += 1
        if total == 0:
            print(f"coverage_gate: FAIL {prefix}: no covered sources found")
            failed = True
            continue
        pct = 100.0 * executed / total
        verdict = "ok  " if pct >= floor else "FAIL"
        print(f"coverage_gate: {verdict} {prefix}: {pct:.1f}% "
              f"({executed}/{total} lines, {files} files, floor {floor:.0f}%)")
        if pct < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
