// Export-layer tests (src/obs/tracer.hpp, src/obs/timeline.hpp) and the
// CLI observability flags: byte-identical exports for identical runs, the
// Chrome trace JSON envelope, and the reconciliation the per-cycle CSV
// promises — busy + idle totals add up to span x processors, and the
// timeline's end equals the makespan the speedup is computed from.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/core/cli.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/summary.hpp"
#include "src/obs/timeline.hpp"
#include "src/obs/tracer.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/synth.hpp"

namespace mpps::obs {
namespace {

struct ObservedRun {
  sim::SimResult result;
  Registry registry;
  Tracer tracer;
};

ObservedRun observed_rubik(std::uint32_t procs) {
  ObservedRun run;
  const trace::Trace t = trace::make_rubik_section();
  sim::SimConfig config;
  config.match_processors = procs;
  config.costs = sim::CostModel::paper_run(4);
  config.metrics = &run.registry;
  config.tracer = &run.tracer;
  run.result = sim::simulate(
      t, config, sim::Assignment::round_robin(t.num_buckets, procs));
  return run;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, sep)) out.push_back(item);
  return out;
}

TEST(TraceExport, ChromeJsonIsByteIdenticalAcrossRuns) {
  auto a = observed_rubik(8);
  auto b = observed_rubik(8);
  std::ostringstream ja;
  std::ostringstream jb;
  a.tracer.write_chrome_json(ja);
  b.tracer.write_chrome_json(jb);
  EXPECT_FALSE(ja.str().empty());
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(TraceExport, ChromeJsonEnvelope) {
  auto run = observed_rubik(4);
  std::ostringstream os;
  run.tracer.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u) << json.substr(0, 40);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Metadata names every lane: the control processor and each match proc.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("control"), std::string::npos);
  EXPECT_NE(json.find("match 3"), std::string::npos);
  // Complete events carry both a timestamp and a duration.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Cycle spans appear on the control lane.
  EXPECT_NE(json.find("cycle 1"), std::string::npos);
  // The envelope closes properly.
  EXPECT_EQ(json.back() == '\n' ? json[json.size() - 2] : json.back(), '}');
}

TEST(TraceExport, MetricsCsvIsByteIdenticalAcrossRuns) {
  auto a = observed_rubik(8);
  auto b = observed_rubik(8);
  std::ostringstream ca;
  std::ostringstream cb;
  write_metrics_csv(ca, a.result, &a.registry);
  write_metrics_csv(cb, b.result, &b.registry);
  EXPECT_FALSE(ca.str().empty());
  EXPECT_EQ(ca.str(), cb.str());
  // Both sections present: the per-cycle table and the registry export.
  EXPECT_NE(ca.str().find("cycle,proc,cycle_start_ns"), std::string::npos);
  EXPECT_NE(ca.str().find("metric,type,field,value"), std::string::npos);
}

// The acceptance check: parse the CSV the way a consumer would and verify
// its busy/idle totals reconcile with the simulator's makespan — the
// quantity every reported speedup divides into.
TEST(TraceExport, CycleCsvBusyIdleReconcilesWithSpeedup) {
  const trace::Trace t = trace::make_rubik_section();
  constexpr std::uint32_t kProcs = 16;
  sim::SimConfig config;
  config.match_processors = kProcs;
  config.costs = sim::CostModel::paper_run(4);
  const auto assignment = sim::Assignment::round_robin(t.num_buckets, kProcs);
  const auto result = sim::simulate(t, config, assignment);

  std::ostringstream os;
  write_cycle_csv(os, result);
  const auto lines = split(os.str(), '\n');
  ASSERT_GT(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "cycle,proc,cycle_start_ns,cycle_end_ns,busy_ns,idle_ns,"
            "activations,left_activations,cycle_messages");

  // Per-cycle: sum over procs of (busy + idle) == span * P.
  std::map<long, long long> busy_plus_idle;
  std::map<long, long long> span_ns;
  long long timeline_end = 0;
  std::size_t rows = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto cols = split(lines[i], ',');
    ASSERT_EQ(cols.size(), 9u) << lines[i];
    const long cycle = std::stol(cols[0]);
    const long long start = std::stoll(cols[2]);
    const long long end = std::stoll(cols[3]);
    busy_plus_idle[cycle] += std::stoll(cols[4]) + std::stoll(cols[5]);
    span_ns[cycle] = end - start;
    timeline_end = std::max(timeline_end, end);
    ++rows;
  }
  EXPECT_EQ(rows, result.cycles.size() * kProcs);
  for (const auto& [cycle, total] : busy_plus_idle) {
    EXPECT_EQ(total, span_ns[cycle] * kProcs) << "cycle " << cycle;
  }

  // The timeline ends at the makespan, so the speedup derived from the CSV
  // equals the simulator's reported speedup.
  EXPECT_EQ(timeline_end, result.makespan.nanos());
  const double csv_speedup =
      static_cast<double>(sim::baseline_time(t).nanos()) /
      static_cast<double>(timeline_end);
  EXPECT_DOUBLE_EQ(csv_speedup, sim::speedup(t, config, assignment));
}

TEST(Summary, SkewAndUtilizationWithinBounds) {
  auto run = observed_rubik(16);
  const auto summary =
      summarize_run(trace::make_rubik_section(), run.result, 5);
  EXPECT_GE(summary.busy_skew.p50, 1.0);  // max/mean is always >= 1
  EXPECT_LE(summary.busy_skew.p50, summary.busy_skew.max);
  EXPECT_GT(summary.avg_processor_utilization_pct, 0.0);
  EXPECT_LE(summary.avg_processor_utilization_pct, 100.0);
  ASSERT_EQ(summary.hot_buckets.size(), 5u);
  // Heaviest-first ordering.
  for (std::size_t i = 1; i < summary.hot_buckets.size(); ++i) {
    EXPECT_GE(summary.hot_buckets[i - 1].activations,
              summary.hot_buckets[i].activations);
  }
  EXPECT_EQ(summary.messages, run.result.messages);
}

// ---------------------------------------------------------------------------
// CLI-level checks: the --trace-out/--metrics-out flags and `mpps stats`.

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = core::run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

class SectionTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    // Private per-process subdir: `sections` emits fixed filenames, and
    // other test processes sharing TempDir() race on them under ctest -j.
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        ("obs_sections." + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    dir_ = dir.string();
    ASSERT_EQ(cli({"sections", "-o", dir_}).code, 0);
    trace_path_ = dir_ + "/rubik.trace";
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
  std::string trace_path_;
};

TEST_F(SectionTrace, SimulateWritesTraceAndMetricsFiles) {
  const std::string json_path = dir_ + "/run.trace.json";
  const std::string csv_path = dir_ + "/run.metrics.csv";
  const CliRun r =
      cli({"simulate", trace_path_, "--procs", "8", "--run", "1",
           "--trace-out", json_path, "--metrics-out", csv_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote trace timeline to"), std::string::npos);
  EXPECT_NE(r.out.find("wrote metrics to"), std::string::npos);

  const std::string json = slurp(json_path);
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  const std::string csv = slurp(csv_path);
  EXPECT_NE(csv.find("cycle,proc,cycle_start_ns"), std::string::npos);
  EXPECT_NE(csv.find("sim.makespan_ns"), std::string::npos);

  // Re-running the identical command reproduces both files byte-for-byte.
  const std::string json_path2 = dir_ + "/run2.trace.json";
  const std::string csv_path2 = dir_ + "/run2.metrics.csv";
  ASSERT_EQ(cli({"simulate", trace_path_, "--procs", "8", "--run", "1",
                 "--trace-out", json_path2, "--metrics-out", csv_path2})
                .code,
            0);
  EXPECT_EQ(json, slurp(json_path2));
  EXPECT_EQ(csv, slurp(csv_path2));
  for (const auto& p : {json_path, csv_path, json_path2, csv_path2}) {
    std::remove(p.c_str());
  }
}

TEST_F(SectionTrace, StatsPrintsRunSummaryGolden) {
  const CliRun r = cli({"stats", trace_path_, "--procs", "16", "--top", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("simulated run summary (16 match processors)"),
            std::string::npos);
  EXPECT_NE(r.out.find("busy skew per cycle"), std::string::npos);
  EXPECT_NE(r.out.find("messages per cycle"), std::string::npos);
  EXPECT_NE(r.out.find("hottest buckets"), std::string::npos);
  // Deterministic: the whole report is a golden output.
  const CliRun again =
      cli({"stats", trace_path_, "--procs", "16", "--top", "3"});
  EXPECT_EQ(r.out, again.out);
}

}  // namespace
}  // namespace mpps::obs
