#include "src/rete/footprint.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"

namespace mpps::rete {
namespace {

/// A synthetic rule base: `n` productions, each a private 4-CE chain.
Network big_network(int n) {
  std::string source;
  for (int i = 0; i < n; ++i) {
    const std::string id = std::to_string(i);
    source += "(p rule" + id + " (a" + id + " ^v <x>) (b" + id +
              " ^v <x> ^w <y>) (c" + id + " ^w <y>) (d" + id +
              " ^v <x>) --> (halt))\n";
  }
  return Network::compile(ops5::parse_program(source));
}

TEST(Footprint, PackedIsMuchSmallerThanInline) {
  const Network net = big_network(100);
  const auto inline_fp = estimate_footprint(net, NodeEncoding::InlineExpanded);
  const auto packed_fp = estimate_footprint(net, NodeEncoding::Packed14Byte);
  EXPECT_GT(inline_fp.total(), 5 * packed_fp.total());
}

TEST(Footprint, ThousandProductionsLandInThePapersRange) {
  // "large OPS5 programs (with ~1000 productions) require about 1-2
  // Mbytes of memory" under in-line expansion.
  const Network net = big_network(1000);
  const auto fp = estimate_footprint(net, NodeEncoding::InlineExpanded);
  EXPECT_GE(fp.total(), 1u * 1024 * 1024);
  EXPECT_LE(fp.total(), 3u * 1024 * 1024);
}

TEST(Footprint, PackedBetaCostIs14BytesPerNode) {
  const Network net = big_network(10);
  const auto fp = estimate_footprint(net, NodeEncoding::Packed14Byte);
  EXPECT_EQ(fp.beta_bytes, net.betas().size() * 14);
}

TEST(Partition, EveryBetaPlacedExactlyOnce) {
  const Network net = big_network(20);
  const NodePartition partition = partition_nodes(net, 8);
  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (const auto& bucket : partition.beta_nodes) {
    for (NodeId node : bucket) {
      EXPECT_TRUE(seen.insert(node.value()).second)
          << "node placed twice: " << node.value();
      ++total;
    }
  }
  EXPECT_EQ(total, net.betas().size());
}

TEST(Partition, SameProductionNodesSpreadAcrossPartitions) {
  // 4-CE productions have 3-node chains; with k >= 3 partitions no two
  // nodes of one production may share a partition.
  const Network net = big_network(30);
  for (std::uint32_t k : {3u, 4u, 8u}) {
    const NodePartition partition = partition_nodes(net, k);
    EXPECT_EQ(max_production_collisions(net, partition), 1u) << "k=" << k;
  }
}

TEST(Partition, CollisionsOnlyWhenChainsExceedPartitions) {
  const Network net = big_network(30);
  const NodePartition partition = partition_nodes(net, 2);
  // 3-node chains over 2 partitions: at most ceil(3/2) = 2 per partition.
  EXPECT_EQ(max_production_collisions(net, partition), 2u);
}

TEST(Partition, FootprintsFitSmallLocalMemories) {
  // The paper's point: partitioned, packed nodes fit 10-20 KB local
  // memories even for large systems.
  const Network net = big_network(1000);
  const NodePartition partition = partition_nodes(net, 256);
  for (std::size_t bytes : partition_footprints(net, partition)) {
    EXPECT_LE(bytes, 20u * 1024);
  }
}

TEST(Partition, BalancedSizes) {
  const Network net = big_network(64);
  const NodePartition partition = partition_nodes(net, 8);
  std::size_t min = SIZE_MAX;
  std::size_t max = 0;
  for (const auto& bucket : partition.beta_nodes) {
    min = std::min(min, bucket.size());
    max = std::max(max, bucket.size());
  }
  EXPECT_LE(max - min, 4u);
}

TEST(Partition, ZeroPartitionsRejected) {
  const Network net = big_network(2);
  EXPECT_THROW(partition_nodes(net, 0), RuntimeError);
}

TEST(Partition, SharedChainsHandled) {
  // Productions sharing a prefix: the shared node is placed once.
  const Network net = Network::compile(ops5::parse_program(R"(
    (p p1 (a ^v <x>) (b ^v <x>) (c ^k 1) --> (halt))
    (p p2 (a ^v <x>) (b ^v <x>) (d ^k 2) --> (halt)))"));
  const NodePartition partition = partition_nodes(net, 4);
  std::size_t total = 0;
  for (const auto& bucket : partition.beta_nodes) total += bucket.size();
  EXPECT_EQ(total, net.betas().size());
}

}  // namespace
}  // namespace mpps::rete
