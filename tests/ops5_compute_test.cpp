// The `(compute ...)` RHS arithmetic: OPS5 semantics — right-to-left
// evaluation, no operator precedence; integer arithmetic stays integral.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"
#include "src/ops5/ast.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/interp.hpp"

namespace mpps::ops5 {
namespace {

Value compute(std::vector<Value> operands, std::vector<ArithOp> ops) {
  return eval_compute(operands, ops);
}

TEST(EvalCompute, BasicIntegerOps) {
  EXPECT_TRUE(compute({Value(2L), Value(3L)}, {ArithOp::Add}).equals(Value(5L)));
  EXPECT_TRUE(compute({Value(7L), Value(3L)}, {ArithOp::Sub}).equals(Value(4L)));
  EXPECT_TRUE(compute({Value(6L), Value(3L)}, {ArithOp::Mul}).equals(Value(18L)));
  EXPECT_TRUE(compute({Value(7L), Value(2L)}, {ArithOp::Div}).equals(Value(3L)));
  EXPECT_TRUE(compute({Value(7L), Value(3L)}, {ArithOp::Mod}).equals(Value(1L)));
}

TEST(EvalCompute, RightToLeftNoPrecedence) {
  // 2 * 3 + 1 evaluates as 2 * (3 + 1) = 8, not 7.
  EXPECT_TRUE(compute({Value(2L), Value(3L), Value(1L)},
                      {ArithOp::Mul, ArithOp::Add})
                  .equals(Value(8L)));
  // 10 - 2 - 3 = 10 - (2 - 3) = 11.
  EXPECT_TRUE(compute({Value(10L), Value(2L), Value(3L)},
                      {ArithOp::Sub, ArithOp::Sub})
                  .equals(Value(11L)));
}

TEST(EvalCompute, FloatPromotion) {
  const Value result = compute({Value(3L), Value(0.5)}, {ArithOp::Mul});
  EXPECT_TRUE(result.equals(Value(1.5)));
  EXPECT_TRUE(compute({Value(7.0), Value(2L)}, {ArithOp::Div})
                  .equals(Value(3.5)));
}

TEST(EvalCompute, Errors) {
  EXPECT_THROW(compute({Value::sym("x"), Value(1L)}, {ArithOp::Add}),
               RuntimeError);
  EXPECT_THROW(compute({Value(1L), Value(0L)}, {ArithOp::Div}), RuntimeError);
  EXPECT_THROW(compute({Value(1L), Value(0L)}, {ArithOp::Mod}), RuntimeError);
  EXPECT_THROW(compute({Value(1.5), Value(2L)}, {ArithOp::Mod}), RuntimeError);
  EXPECT_THROW(compute({}, {}), RuntimeError);
  EXPECT_THROW(compute({Value(1L), Value(2L)}, {}), RuntimeError);
}

TEST(ComputeParser, ParsesExpression) {
  const Program prog = parse_program(R"(
    (p inc (counter ^value <v>) --> (modify 1 ^value (compute <v> + 1))))");
  const auto& mo = std::get<ModifyAction>(prog.productions[0].rhs[0]);
  const Term& term = mo.slots[0].second;
  ASSERT_TRUE(term.is_compute());
  ASSERT_EQ(term.compute_operands.size(), 2u);
  EXPECT_TRUE(term.compute_operands[0].is_var());
  ASSERT_EQ(term.compute_ops.size(), 1u);
  EXPECT_EQ(term.compute_ops[0], ArithOp::Add);
}

TEST(ComputeParser, AllOperatorsAndNesting) {
  const Program prog = parse_program(R"(
    (p x (n ^v <v>)
      -->
      (bind <a> (compute <v> * 2))
      (bind <b> (compute <v> - 1))
      (bind <c> (compute <v> // 2))
      (bind <d> (compute <v> \ 3))
      (bind <e> (compute 1 + (compute <v> * <v>)))))");
  EXPECT_EQ(prog.productions[0].rhs.size(), 5u);
}

TEST(ComputeParser, RejectedInLhs) {
  EXPECT_THROW(parse_program("(p x (a ^v (compute 1 + 1)) --> (halt))"),
               ParseError);
}

TEST(ComputeParser, UnknownOperatorFails) {
  EXPECT_THROW(parse_program(R"(
    (p x (a ^v <v>) --> (make b ^v (compute <v> ** 2))))"),
               ParseError);
}

TEST(ComputeParser, UnterminatedFails) {
  EXPECT_THROW(parse_program(R"(
    (p x (a ^v <v>) --> (make b ^v (compute <v> + ))"),
               ParseError);
}

TEST(ComputeNetwork, UnboundVariableInsideComputeRejected) {
  EXPECT_THROW(rete::Network::compile(parse_program(R"(
    (p x (a ^v 1) --> (make b ^v (compute <nope> + 1))))")),
               mpps::RuntimeError);
}

TEST(ComputeInterpreter, CounterCountsToFive) {
  rete::Interpreter interp(parse_program(R"(
    (make counter ^value 0)
    (p count
      (counter ^value <v> ^value < 5)
      -->
      (modify 1 ^value (compute <v> + 1)))
    (p done
      (counter ^value 5)
      -->
      (halt)))"),
                           {});
  interp.load_initial_wmes();
  const auto result = interp.run();
  EXPECT_EQ(result.outcome, rete::RunResult::Outcome::Halted);
  EXPECT_EQ(result.firings, 6u);  // five increments + done
  const auto all = interp.wm().all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0]->get(Symbol::intern("value")).equals(Value(5L)));
}

TEST(ComputeInterpreter, FibonacciViaBind) {
  rete::Interpreter interp(parse_program(R"(
    (make fib ^a 0 ^b 1 ^n 10)
    (p step
      (fib ^a <a> ^b <b> ^n <n> ^n > 0)
      -->
      (bind <next> (compute <a> + <b>))
      (modify 1 ^a <b> ^b <next> ^n (compute <n> - 1)))
    (p done
      (fib ^n 0)
      -->
      (halt)))"),
                           {});
  interp.load_initial_wmes();
  const auto result = interp.run();
  EXPECT_EQ(result.outcome, rete::RunResult::Outcome::Halted);
  const auto all = interp.wm().all();
  ASSERT_EQ(all.size(), 1u);
  // After 10 steps: a = fib(10) = 55.
  EXPECT_TRUE(all[0]->get(Symbol::intern("a")).equals(Value(55L)));
}

TEST(ComputeInterpreter, TopLevelMakeWithConstantCompute) {
  rete::Interpreter interp(parse_program(R"(
    (make settings ^threshold (compute 8 * 8))
    (p check (settings ^threshold 64) --> (halt)))"),
                           {});
  interp.load_initial_wmes();
  EXPECT_EQ(interp.run().outcome, rete::RunResult::Outcome::Halted);
}

TEST(ComputeInterpreter, WriteWithCompute) {
  std::ostringstream out;
  rete::InterpreterOptions opts;
  opts.out = &out;
  rete::Interpreter interp(parse_program(R"(
    (make n ^v 6)
    (p show (n ^v <v>) --> (write (compute <v> * 7) (crlf)) (halt)))"),
                           opts);
  interp.load_initial_wmes();
  interp.run();
  EXPECT_NE(out.str().find("42"), std::string::npos);
}

}  // namespace
}  // namespace mpps::ops5
