// Property tests for the offline greedy (LPT) assignment
// (sim::Assignment::greedy), over randomized traces shaped like the ones
// the `mpps selfcheck` generator emits (src/core/selfcheck.cpp draws its
// RandomTraceSpec from the same ranges mirrored here).
//
// Two laws:
//   * Balance: per cycle, the greedy assignment's makespan (the maximum
//     per-processor sum of bucket costs) never exceeds the fixed
//     round-robin or fixed random assignment's makespan.  LPT carries no
//     such worst-case guarantee in general — a 4/3-approximation can in
//     principle lose to a lucky fixed deal — so this is an empirical
//     property pinned over the seeds below; a failure means the greedy
//     implementation regressed, not that scheduling theory broke.
//   * Validity: the result is a total bucket -> processor map for every
//     generated shape — one map per trace cycle, one in-range entry per
//     bucket — and is deterministic in its inputs.
#include "src/sim/assignment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/distribution.hpp"
#include "src/sim/costs.hpp"
#include "src/trace/record.hpp"
#include "src/trace/synth.hpp"

namespace mpps::sim {
namespace {

using trace::Trace;

/// The selfcheck generator's trace-shape distribution (keep in sync with
/// src/core/selfcheck.cpp).
trace::RandomTraceSpec random_spec(Rng& rng) {
  trace::RandomTraceSpec spec;
  spec.cycles = 2 + static_cast<std::uint32_t>(rng.below(4));
  spec.num_buckets = 16u << rng.below(3);
  spec.nodes = 8 + static_cast<std::uint32_t>(rng.below(17));
  spec.roots_per_cycle = 4 + static_cast<std::uint32_t>(rng.below(37));
  spec.right_fraction = 0.3 + 0.6 * rng.uniform();
  spec.fanout = 0.5 + 2.0 * rng.uniform();
  spec.chain_prob = 0.5 * rng.uniform();
  spec.instantiation_prob = 0.1 * rng.uniform();
  spec.key_classes = 8 + static_cast<std::uint32_t>(rng.below(57));
  return spec;
}

constexpr std::uint32_t kProcChoices[] = {1, 2, 3, 4, 8, 16};

/// Scheduling makespan of one cycle under `assignment`: the largest total
/// bucket cost any single processor was handed.
std::uint64_t cycle_makespan(const Trace& trace, std::size_t cycle,
                             const Assignment& assignment,
                             const CostModel& costs) {
  const std::vector<std::uint64_t> weight =
      core::bucket_costs(trace, cycle, costs);
  std::vector<std::uint64_t> load(assignment.num_procs(), 0);
  for (std::uint32_t b = 0; b < trace.num_buckets; ++b) {
    load[assignment.proc_of(cycle, b)] += weight[b];
  }
  return *std::max_element(load.begin(), load.end());
}

TEST(GreedyProperty, MakespanNeverExceedsFixedAssignments) {
  const CostModel costs = CostModel::paper_run(2);
  Rng rng(2026);
  for (int round = 0; round < 40; ++round) {
    const Trace trace = trace::make_random_trace(random_spec(rng), rng());
    const std::uint32_t procs = kProcChoices[rng.below(6)];
    const Assignment greedy = Assignment::greedy(trace, procs, costs);
    const Assignment rr = Assignment::round_robin(trace.num_buckets, procs);
    const Assignment rnd =
        Assignment::random(trace.num_buckets, procs, rng());
    for (std::size_t c = 0; c < trace.cycles.size(); ++c) {
      const std::uint64_t g = cycle_makespan(trace, c, greedy, costs);
      EXPECT_LE(g, cycle_makespan(trace, c, rr, costs))
          << "round " << round << " cycle " << c << " @" << procs
          << " procs: greedy lost to round-robin";
      EXPECT_LE(g, cycle_makespan(trace, c, rnd, costs))
          << "round " << round << " cycle " << c << " @" << procs
          << " procs: greedy lost to a random fixed map";
    }
  }
}

TEST(GreedyProperty, ProducesValidTotalMapForEveryShape) {
  const CostModel costs = CostModel::paper_run(3);
  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    const Trace trace = trace::make_random_trace(random_spec(rng), rng());
    const std::uint32_t procs = kProcChoices[rng.below(6)];
    const Assignment greedy = Assignment::greedy(trace, procs, costs);
    EXPECT_EQ(greedy.num_procs(), procs);
    EXPECT_EQ(greedy.num_buckets(), trace.num_buckets);
    for (std::size_t c = 0; c < trace.cycles.size(); ++c) {
      const std::vector<std::uint32_t>& map = greedy.map_for(c);
      ASSERT_EQ(map.size(), trace.num_buckets);
      for (std::uint32_t b = 0; b < trace.num_buckets; ++b) {
        EXPECT_LT(map[b], procs) << "cycle " << c << " bucket " << b;
        EXPECT_EQ(map[b], greedy.proc_of(c, b));
      }
    }
    // One map per cycle: indexing past the last cycle wraps, it never
    // reads out of bounds.
    EXPECT_EQ(&greedy.map_for(trace.cycles.size()), &greedy.map_for(0));
  }
}

TEST(GreedyProperty, DeterministicInItsInputs) {
  Rng rng(99);
  const Trace trace = trace::make_random_trace(random_spec(rng), 4242);
  const CostModel costs = CostModel::paper_run(4);
  const Assignment a = Assignment::greedy(trace, 8, costs);
  const Assignment b = Assignment::greedy(trace, 8, costs);
  for (std::size_t c = 0; c < trace.cycles.size(); ++c) {
    EXPECT_EQ(a.map_for(c), b.map_for(c)) << "cycle " << c;
  }
}

TEST(GreedyProperty, SingleProcessorMapsEverythingToZero) {
  Rng rng(11);
  const Trace trace = trace::make_random_trace(random_spec(rng), 1);
  const Assignment greedy =
      Assignment::greedy(trace, 1, CostModel::paper_run(1));
  for (std::size_t c = 0; c < trace.cycles.size(); ++c) {
    for (std::uint32_t b = 0; b < trace.num_buckets; ++b) {
      EXPECT_EQ(greedy.proc_of(c, b), 0u);
    }
  }
}

}  // namespace
}  // namespace mpps::sim
