#include "src/ops5/value.hpp"

#include <gtest/gtest.h>

namespace mpps::ops5 {
namespace {

TEST(Value, SymbolEquality) {
  EXPECT_TRUE(Value::sym("blue").equals(Value::sym("blue")));
  EXPECT_FALSE(Value::sym("blue").equals(Value::sym("red")));
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(2L).equals(Value(2.0)));
  EXPECT_TRUE(Value(2.0).equals(Value(2L)));
  EXPECT_FALSE(Value(2L).equals(Value(2.5)));
}

TEST(Value, SymbolNeverEqualsNumber) {
  EXPECT_FALSE(Value::sym("2").equals(Value(2L)));
}

TEST(Value, AbsentEqualsNothing) {
  Value absent;
  EXPECT_FALSE(absent.equals(absent));
  EXPECT_FALSE(absent.equals(Value(1L)));
  EXPECT_FALSE(Value(1L).equals(absent));
}

TEST(Value, OrderingPredicatesOnInts) {
  EXPECT_TRUE(Value(1L).test(Predicate::Lt, Value(2L)));
  EXPECT_TRUE(Value(2L).test(Predicate::Le, Value(2L)));
  EXPECT_TRUE(Value(3L).test(Predicate::Gt, Value(2L)));
  EXPECT_TRUE(Value(2L).test(Predicate::Ge, Value(2L)));
  EXPECT_FALSE(Value(2L).test(Predicate::Lt, Value(2L)));
}

TEST(Value, OrderingPredicatesMixedIntFloat) {
  EXPECT_TRUE(Value(1L).test(Predicate::Lt, Value(1.5)));
  EXPECT_TRUE(Value(1.5).test(Predicate::Gt, Value(1L)));
}

TEST(Value, OrderingOnSymbolsFails) {
  EXPECT_FALSE(Value::sym("a").test(Predicate::Lt, Value::sym("b")));
  EXPECT_FALSE(Value::sym("a").test(Predicate::Gt, Value(1L)));
}

TEST(Value, NotEqualRequiresBothPresent) {
  EXPECT_TRUE(Value(1L).test(Predicate::Ne, Value(2L)));
  EXPECT_TRUE(Value::sym("a").test(Predicate::Ne, Value(1L)));
  EXPECT_FALSE(Value(1L).test(Predicate::Ne, Value(1L)));
  EXPECT_FALSE(Value().test(Predicate::Ne, Value(1L)));
  EXPECT_FALSE(Value(1L).test(Predicate::Ne, Value()));
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(2L).hash(), Value(2.0).hash());
  EXPECT_EQ(Value::sym("x").hash(), Value::sym("x").hash());
}

TEST(Value, ToStringRoundTrip) {
  EXPECT_EQ(Value::sym("blue").to_string(), "blue");
  EXPECT_EQ(Value(42L).to_string(), "42");
  EXPECT_EQ(Value(2.5).to_string(), "2.5");
}

TEST(Value, PredicateNames) {
  EXPECT_EQ(to_string(Predicate::Eq), "=");
  EXPECT_EQ(to_string(Predicate::Ne), "<>");
  EXPECT_EQ(to_string(Predicate::Le), "<=");
}

}  // namespace
}  // namespace mpps::ops5
