// Property tests for the topology layer: the hop count of every network
// model must be a metric (identity, symmetry, triangle inequality) with
// the model-specific bounds on top, and — the load-bearing property —
// the optimized engine and the naive reference engine must agree
// bit-for-bit on randomized workloads across the whole topology grid,
// with every invariant law holding.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/selfcheck.hpp"
#include "src/sim/invariants.hpp"
#include "src/sim/network.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"
#include "src/trace/synth.hpp"

namespace mpps::sim {
namespace {

std::vector<std::uint32_t> random_dims(Rng& rng) {
  const std::size_t ndims = 1 + rng.below(3);
  std::vector<std::uint32_t> dims(ndims);
  for (auto& d : dims) d = 2 + static_cast<std::uint32_t>(rng.below(4));
  return dims;
}

std::uint32_t node_count(const std::vector<std::uint32_t>& dims) {
  std::uint32_t n = 1;
  for (const std::uint32_t d : dims) n *= d;
  return n;
}

TEST(NetworkProperty, GridHopCountIsAMetric) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const NetKind kind = rng.below(2) == 0 ? NetKind::Mesh : NetKind::Torus;
    NetworkConfig net;
    net.kind = kind;
    net.dims = random_dims(rng);
    net.hop_latency = SimTime::ns(100);
    const std::uint32_t nodes = node_count(net.dims);
    const auto model = make_network(net, CostModel{}, nodes);

    // Diameter bound: full extent per dimension (mesh), half (torus).
    std::uint32_t diameter = 0;
    for (const std::uint32_t d : net.dims) {
      diameter += kind == NetKind::Mesh ? d - 1 : d / 2;
    }
    const std::string label = net.describe();
    for (std::uint32_t p = 0; p < nodes; ++p) {
      EXPECT_EQ(model->hops(p, p), 0u) << label;
    }
    for (int sample = 0; sample < 24; ++sample) {
      const auto a = static_cast<std::uint32_t>(rng.below(nodes));
      const auto b = static_cast<std::uint32_t>(rng.below(nodes));
      const auto c = static_cast<std::uint32_t>(rng.below(nodes));
      EXPECT_EQ(model->hops(a, b), model->hops(b, a)) << label;
      EXPECT_LE(model->hops(a, b), diameter) << label;
      EXPECT_LE(model->hops(a, b), model->hops(a, c) + model->hops(c, b))
          << label << " " << a << " " << b << " via " << c;
      if (a != b) {
        EXPECT_GE(model->hops(a, b), 1u) << label;
      }
      // Latency is exactly hops x hop_latency on every grid.
      EXPECT_EQ(model->latency(a, b).nanos(),
                static_cast<std::int64_t>(model->hops(a, b)) * 100)
          << label;
    }
  }
}

TEST(NetworkProperty, TorusIsNeverFartherThanMesh) {
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    NetworkConfig net;
    net.dims = random_dims(rng);
    const std::uint32_t nodes = node_count(net.dims);
    net.kind = NetKind::Mesh;
    const auto mesh = make_network(net, CostModel{}, nodes);
    net.kind = NetKind::Torus;
    const auto torus = make_network(net, CostModel{}, nodes);
    for (std::uint32_t a = 0; a < nodes; ++a) {
      for (std::uint32_t b = 0; b < nodes; ++b) {
        EXPECT_LE(torus->hops(a, b), mesh->hops(a, b))
            << net.describe() << " " << a << "->" << b;
      }
    }
  }
}

TEST(NetworkProperty, FatTreeHopCountIsAnEvenTreeMetric) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    NetworkConfig net;
    net.kind = NetKind::FatTree;
    net.arity = 2 + static_cast<std::uint32_t>(rng.below(3));
    net.hop_latency = SimTime::ns(100);
    const auto nodes = static_cast<std::uint32_t>(2 + rng.below(30));
    const std::uint32_t levels = resolved_levels(net, nodes);
    const auto model = make_network(net, CostModel{}, nodes);
    for (int sample = 0; sample < 32; ++sample) {
      const auto a = static_cast<std::uint32_t>(rng.below(nodes));
      const auto b = static_cast<std::uint32_t>(rng.below(nodes));
      const auto c = static_cast<std::uint32_t>(rng.below(nodes));
      const std::uint32_t d = model->hops(a, b);
      EXPECT_EQ(d % 2, 0u);                      // up then down, same count
      EXPECT_LE(d, 2 * levels);                  // at worst via the root
      EXPECT_EQ(d, model->hops(b, a));
      EXPECT_EQ(a == b, d == 0);
      EXPECT_LE(d, model->hops(a, c) + model->hops(c, b));
    }
  }
}

TEST(NetworkProperty, AutoGeometryIsAlwaysValid) {
  // Whatever machine size the sweep asks for, the auto-derived geometry
  // must pass validation — this is what lets the CLI default to "mesh"
  // without the user counting nodes.
  for (const NetKind kind : {NetKind::Mesh, NetKind::Torus, NetKind::FatTree}) {
    for (std::uint32_t nodes = 2; nodes <= 70; ++nodes) {
      NetworkConfig net;
      net.kind = kind;
      EXPECT_NO_THROW(make_network(net, CostModel{}, nodes))
          << net.describe() << " nodes=" << nodes;
    }
  }
}

core::Scenario random_scenario(Rng& rng) {
  trace::RandomTraceSpec spec;
  spec.cycles = 2 + static_cast<std::uint32_t>(rng.below(3));
  spec.num_buckets = 32;
  spec.nodes = 12;
  spec.roots_per_cycle = 10 + static_cast<std::uint32_t>(rng.below(12));
  spec.instantiation_prob = 0.05;

  core::Scenario scenario;
  scenario.trace = trace::make_random_trace(spec, 100 + rng.below(1000));
  scenario.config.match_processors =
      static_cast<std::uint32_t>(2 + rng.below(7));
  scenario.config.costs =
      CostModel::paper_run(1 + static_cast<int>(rng.below(4)));
  scenario.config.costs.hardware_broadcast = rng.below(2) == 0;
  if (rng.below(3) == 0) {
    scenario.config.constant_test_processors =
        static_cast<std::uint32_t>(1 + rng.below(2));
  }
  if (rng.below(3) == 0) {
    scenario.config.conflict_set_processors = 1;
  }
  scenario.assign =
      rng.below(2) == 0 ? core::AssignKind::RoundRobin : core::AssignKind::Random;
  scenario.assign_seed = rng.below(1u << 20);
  return scenario;
}

NetworkConfig random_topology(Rng& rng) {
  NetworkConfig net;
  switch (rng.below(4)) {
    case 0:
      net.kind = NetKind::Mesh;  // auto geometry
      break;
    case 1:
      net.kind = NetKind::Torus;
      net.dims = {3, 4};  // 12 >= 1 + 7 + 2 + 1 worst case
      break;
    case 2:
      net.kind = NetKind::FatTree;
      net.arity = 2 + static_cast<std::uint32_t>(rng.below(2));
      break;
    default:
      break;  // constant
  }
  if (net.kind != NetKind::Constant && rng.below(2) == 0) {
    net.hop_latency = SimTime::ns(250);
  }
  return net;
}

TEST(NetworkProperty, EnginesAgreeAcrossRandomTopologyScenarioGrid) {
  // The tentpole property: for random workloads x machine shapes x
  // topologies, the optimized engine, the reference engine and the
  // invariant laws all agree.  check_scenario returns the first
  // divergence or violated law as a one-line diagnosis.
  Rng rng(2026);
  for (int round = 0; round < 24; ++round) {
    core::Scenario scenario = random_scenario(rng);
    scenario.config.network = random_topology(rng);
    const std::string verdict = core::check_scenario(scenario);
    EXPECT_TRUE(verdict.empty())
        << scenario.describe() << ": " << verdict;
  }
}

TEST(NetworkProperty, FlatWireIsTheFloorOfEveryTopology) {
  // Hop monotonicity, end to end: with the same per-hop latency, a
  // multi-hop topology can only charge MORE wire time than the flat
  // wire, never less, and the cross-run checker accepts the pair.
  Rng rng(31);
  for (int round = 0; round < 8; ++round) {
    const core::Scenario base = random_scenario(rng);
    const Assignment assignment = core::make_assignment(base);

    SimConfig flat = base.config;
    flat.network = NetworkConfig{};
    const SimResult flat_result = simulate(base.trace, flat, assignment);

    for (const NetKind kind :
         {NetKind::Mesh, NetKind::Torus, NetKind::FatTree}) {
      SimConfig topo = base.config;
      topo.network.kind = kind;
      topo.network.hop_latency = topo.costs.wire_latency;
      const SimResult topo_result = simulate(base.trace, topo, assignment);

      EXPECT_EQ(topo_result.net.messages, flat_result.net.messages)
          << topo.network.describe();
      EXPECT_GE(topo_result.network_busy.nanos(),
                flat_result.network_busy.nanos())
          << topo.network.describe();
      // Routing never changes the event stream, only its timing.
      EXPECT_EQ(topo_result.events, flat_result.events)
          << topo.network.describe();

      const InvariantReport cross = check_cross_run_invariants(
          base.trace, {{flat, &flat_result}, {topo, &topo_result}});
      EXPECT_TRUE(cross.ok())
          << topo.network.describe() << ": " << cross.summary();
    }
  }
}

TEST(NetworkProperty, SingleRunLawsHoldOnRandomTopologies) {
  Rng rng(47);
  for (int round = 0; round < 16; ++round) {
    core::Scenario scenario = random_scenario(rng);
    scenario.config.network = random_topology(rng);
    const SimResult result = simulate(scenario.trace, scenario.config,
                                      core::make_assignment(scenario));
    const InvariantReport report =
        check_run_invariants(scenario.trace, scenario.config, result);
    EXPECT_TRUE(report.ok())
        << scenario.describe() << ": " << report.summary();
    EXPECT_GT(report.checked, 0u);
  }
}

}  // namespace
}  // namespace mpps::sim
