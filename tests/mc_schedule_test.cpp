// Unit tests for the model checker's schedule identities and decision
// sources: ScheduleId parse/print round trips, full-tree DFS enumeration
// (including trees whose shape depends on earlier choices), seeded random
// determinism, and the replay rules (lenient on exhaustion — DFS IDs are
// prefixes — strict on out-of-range choices).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/mc/schedule.hpp"

namespace mpps::mc {
namespace {

TEST(ScheduleId, PrintsCanonicalAsDash) {
  EXPECT_EQ(ScheduleId{}.to_string(), "-");
}

TEST(ScheduleId, RoundTripsThroughText) {
  const ScheduleId id{{0, 2, 1, 10}};
  EXPECT_EQ(id.to_string(), "0.2.1.10");
  EXPECT_EQ(ScheduleId::parse("0.2.1.10"), id);
  EXPECT_EQ(ScheduleId::parse("-"), ScheduleId{});
}

TEST(ScheduleId, RejectsJunk) {
  EXPECT_THROW(ScheduleId::parse(""), RuntimeError);
  EXPECT_THROW(ScheduleId::parse("1..2"), RuntimeError);
  EXPECT_THROW(ScheduleId::parse("1.x"), RuntimeError);
  EXPECT_THROW(ScheduleId::parse("1.2."), RuntimeError);
  EXPECT_THROW(ScheduleId::parse("-1"), RuntimeError);
}

/// A synthetic schedule tree: fixed site arities consumed in order.
std::vector<std::uint32_t> run_tree(Chooser& chooser,
                                    const std::vector<std::uint32_t>& arities) {
  std::vector<std::uint32_t> taken;
  taken.reserve(arities.size());
  for (std::uint32_t n : arities) taken.push_back(chooser.choose(n));
  return taken;
}

TEST(DfsChooser, EnumeratesEverySchedule) {
  DfsChooser dfs;
  std::set<std::vector<std::uint32_t>> seen;
  std::uint64_t runs = 0;
  do {
    seen.insert(run_tree(dfs, {2, 1, 3}));
    ++runs;
    ASSERT_LE(runs, 7u) << "DFS failed to terminate";
  } while (dfs.advance());
  EXPECT_EQ(runs, 6u);  // 2 * 1 * 3
  EXPECT_EQ(seen.size(), 6u);
  for (const auto& schedule : seen) {
    EXPECT_LT(schedule[0], 2u);
    EXPECT_EQ(schedule[1], 0u);
    EXPECT_LT(schedule[2], 3u);
  }
}

TEST(DfsChooser, HandlesShapeDependentTrees) {
  // Choosing 1 at the root opens an extra site — the tree is not a grid.
  DfsChooser dfs;
  std::set<std::string> seen;
  do {
    std::string path;
    const std::uint32_t first = dfs.choose(2);
    path += std::to_string(first);
    if (first == 1) path += "." + std::to_string(dfs.choose(2));
    seen.insert(path);
  } while (dfs.advance());
  EXPECT_EQ(seen, (std::set<std::string>{"0", "1.0", "1.1"}));
}

TEST(DfsChooser, IdRecordsBranchSitesOnly) {
  DfsChooser dfs;
  run_tree(dfs, {1, 3, 1, 2});
  EXPECT_EQ(dfs.id().to_string(), "0.0");
  ASSERT_TRUE(dfs.advance());
  run_tree(dfs, {1, 3, 1, 2});
  EXPECT_EQ(dfs.id().to_string(), "0.1");
}

TEST(DfsChooser, DetectsNondeterministicTrees) {
  DfsChooser dfs;
  run_tree(dfs, {2, 2});
  ASSERT_TRUE(dfs.advance());
  // Replaying the prefix against a different arity is a structural bug in
  // the caller, not a schedule to silently mangle.
  EXPECT_THROW(dfs.choose(3), RuntimeError);
}

TEST(RandomChooser, SameSeedSameSchedule) {
  RandomChooser a(42);
  RandomChooser b(42);
  EXPECT_EQ(run_tree(a, {4, 4, 4, 4}), run_tree(b, {4, 4, 4, 4}));
  EXPECT_EQ(a.id(), b.id());
}

TEST(RandomChooser, IdIsReplayable) {
  RandomChooser random(7);
  const auto taken = run_tree(random, {3, 1, 5, 2});
  ReplayChooser replay(random.id());
  EXPECT_EQ(run_tree(replay, {3, 1, 5, 2}), taken);
  EXPECT_EQ(replay.id(), random.id());
}

TEST(ReplayChooser, ContinuesCanonicallyPastRecordedChoices) {
  ReplayChooser replay(ScheduleId{{1}});
  EXPECT_EQ(replay.choose(2), 1u);
  EXPECT_EQ(replay.choose(5), 0u);  // exhausted: canonical choice
  EXPECT_EQ(replay.id().to_string(), "1.0");
}

TEST(ReplayChooser, RejectsOutOfRangeChoices) {
  ReplayChooser replay(ScheduleId{{3}});
  EXPECT_THROW(replay.choose(2), RuntimeError);
}

TEST(ReplayChooser, SingleAlternativeSitesAreFree) {
  // n == 1 sites consume nothing from the recorded ID.
  ReplayChooser replay(ScheduleId{{1, 1}});
  EXPECT_EQ(replay.choose(1), 0u);
  EXPECT_EQ(replay.choose(2), 1u);
  EXPECT_EQ(replay.choose(1), 0u);
  EXPECT_EQ(replay.choose(2), 1u);
  EXPECT_EQ(replay.id().to_string(), "1.1");
}

}  // namespace
}  // namespace mpps::mc
