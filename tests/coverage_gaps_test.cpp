// Focused tests for behaviours the module suites touch only indirectly:
// activation records at negative nodes, memory bookkeeping, assignment
// construction edge cases, and configuration interactions.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/network.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/collector.hpp"
#include "src/trace/synth.hpp"

namespace mpps {
namespace {

using ops5::WorkingMemory;

struct Recorder : rete::ActivationListener {
  std::vector<rete::ActivationRecord> records;
  void on_activation(const rete::ActivationRecord& r) override {
    records.push_back(r);
  }
};

struct EngineRig {
  ops5::Program program;
  rete::Network net;
  rete::Engine engine;
  WorkingMemory wm;
  Recorder recorder;

  explicit EngineRig(std::string_view src)
      : program(ops5::parse_program(src)),
        net(rete::Network::compile(program)),
        engine(net) {
    engine.set_listener(&recorder);
  }
  WmeId add(std::string_view text) {
    const WmeId id = wm.add(ops5::parse_wme(text));
    flush();
    return id;
  }
  void remove(WmeId id) {
    wm.remove(id);
    flush();
  }
  void flush() {
    for (const auto& change : wm.drain_changes()) {
      engine.process_change(change);
    }
  }
};

TEST(NegativeNodeRecords, RightActivationsCarryMinusPropagation) {
  EngineRig rig("(p lonely (a ^v <x>) -(b ^v <x>) --> (halt))");
  rig.add("(a ^v 1)");
  ASSERT_EQ(rig.recorder.records.size(), 1u);
  // The left activation at the negative node propagated an instantiation.
  EXPECT_EQ(rig.recorder.records[0].side, rete::Side::Left);
  EXPECT_EQ(rig.recorder.records[0].instantiations, 1u);

  rig.add("(b ^v 1)");  // right activation: retracts via a minus token
  ASSERT_EQ(rig.recorder.records.size(), 2u);
  const auto& blocker = rig.recorder.records[1];
  EXPECT_EQ(blocker.side, rete::Side::Right);
  EXPECT_EQ(blocker.tag, rete::Tag::Plus);  // wme added...
  EXPECT_EQ(blocker.instantiations, 1u);    // ...one retraction emitted
  EXPECT_EQ(rig.engine.conflict_set().size(), 0u);
}

TEST(NegativeNodeRecords, DeletingBlockerEmitsPlus) {
  EngineRig rig("(p lonely (a ^v <x>) -(b ^v <x>) --> (halt))");
  rig.add("(a ^v 1)");
  const WmeId blocker = rig.add("(b ^v 1)");
  rig.remove(blocker);
  const auto& record = rig.recorder.records.back();
  EXPECT_EQ(record.side, rete::Side::Right);
  EXPECT_EQ(record.tag, rete::Tag::Minus);
  EXPECT_EQ(record.instantiations, 1u);  // re-assertion
  EXPECT_EQ(rig.engine.conflict_set().size(), 1u);
}

TEST(HashedMemoryBookkeeping, CellsAndTotalsTrackContents) {
  rete::HashedMemory memory(16);
  std::vector<ops5::Value> key1{ops5::Value(1L)};
  std::vector<ops5::Value> key2{ops5::Value(2L)};
  memory.insert(NodeId{1}, rete::Token{{WmeId{1}}}, key1);
  memory.insert(NodeId{1}, rete::Token{{WmeId{2}}}, key2);
  memory.insert(NodeId{2}, rete::Token{{WmeId{3}}}, key1);
  EXPECT_EQ(memory.total_tokens(), 3u);
  EXPECT_GE(memory.occupied_cells(), 2u);
  EXPECT_TRUE(memory.erase(NodeId{1}, rete::Token{{WmeId{1}}}, key1));
  EXPECT_FALSE(memory.erase(NodeId{1}, rete::Token{{WmeId{1}}}, key1));
  EXPECT_EQ(memory.total_tokens(), 2u);
}

TEST(HashedMemoryBookkeeping, FindFiltersByExactKey) {
  rete::HashedMemory memory(1);  // force every key into one bucket
  std::vector<ops5::Value> key1{ops5::Value::sym("a")};
  std::vector<ops5::Value> key2{ops5::Value::sym("b")};
  memory.insert(NodeId{1}, rete::Token{{WmeId{1}}}, key1);
  memory.insert(NodeId{1}, rete::Token{{WmeId{2}}}, key2);
  EXPECT_EQ(memory.find(NodeId{1}, key1).size(), 1u);
  EXPECT_EQ(memory.find(NodeId{1}, key2).size(), 1u);
  // Same bucket index, different node: invisible.
  EXPECT_TRUE(memory.find(NodeId{9}, key1).empty());
}

TEST(CollectorBehaviour, AutoOpensCycleOnActivity) {
  trace::Collector collector(32);
  rete::ActivationRecord record;
  record.id = ActivationId{1};
  record.node = NodeId{1};
  record.bucket = 3;
  collector.on_activation(record);  // no begin_cycle called
  const trace::Trace t = collector.take("auto");
  ASSERT_EQ(t.cycles.size(), 1u);
  EXPECT_EQ(t.cycles[0].activations.size(), 1u);
}

TEST(CollectorBehaviour, TakeResetsForReuse) {
  trace::Collector collector(32);
  collector.begin_cycle();
  const trace::Trace first = collector.take("one");
  collector.begin_cycle();
  const trace::Trace second = collector.take("two");
  EXPECT_EQ(first.cycles.size(), 1u);
  EXPECT_EQ(second.cycles.size(), 1u);
  EXPECT_EQ(second.num_buckets, 32u);
}

TEST(AssignmentEdges, FixedMapIsStaticAcrossCycles) {
  const auto a = sim::Assignment::fixed({3u, 1u, 2u, 0u}, 4);
  for (std::size_t cycle : {0u, 5u, 99u}) {
    EXPECT_EQ(a.proc_of(cycle, 0), 3u);
    EXPECT_EQ(a.proc_of(cycle, 3), 0u);
  }
  EXPECT_EQ(a.num_buckets(), 4u);
}

TEST(ConfigInteractions, CsProcsWithChargingDisabledAreInert) {
  trace::SectionBuilder b("inert", 8);
  b.begin_cycle(1);
  const auto r = b.root_at(trace::Side::Right, NodeId{1}, 0, 0);
  b.add_instantiations(r, 3);
  const trace::Trace t = b.take();
  sim::SimConfig config;
  config.match_processors = 2;
  config.conflict_set_processors = 2;
  config.charge_instantiation_messages = false;
  config.costs = sim::CostModel::paper_run(4);
  const auto result = sim::simulate(t, config, sim::Assignment::round_robin(8, 2));
  EXPECT_EQ(result.messages, 0u);
}

TEST(ConfigInteractions, PairsWithCtProcessors) {
  // Constant-test processors feed root tokens into processor pairs; the
  // combination must schedule cleanly and conserve activations.
  const trace::Trace t = trace::make_weaver_section(64, 71);
  sim::SimConfig config;
  config.match_processors = 8;
  config.mapping = sim::MappingMode::ProcessorPairs;
  config.constant_test_processors = 2;
  config.costs = sim::CostModel::paper_run(2);
  const auto result =
      sim::simulate(t, config, sim::Assignment::round_robin(64, 4));
  std::uint64_t counted = 0;
  for (const auto& cycle : result.cycles) {
    for (const auto& proc : cycle.procs) counted += proc.activations;
  }
  EXPECT_EQ(counted, t.total_activations());
  EXPECT_GT(result.makespan, SimTime::us(0));
}

TEST(NetworkDiagnostics, SharedBetaCountSeesFanout) {
  const auto net = rete::Network::compile(ops5::parse_program(R"(
    (p p1 (a ^v <x>) (b ^v <x>) (c ^k 1) --> (halt))
    (p p2 (a ^v <x>) (b ^v <x>) (d ^k 2) --> (halt))
    (p p3 (a ^v <x>) (b ^v <x>) (e ^k 3) --> (halt)))"));
  EXPECT_EQ(net.shared_beta_count(), 1u);  // the shared a-b join
  EXPECT_EQ(net.betas().size(), 4u);
}

TEST(EngineWmeAccess, ExposesLiveWmes) {
  EngineRig rig("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  const WmeId a = rig.add("(a ^v 7)");
  EXPECT_TRUE(rig.engine.wme(a).get(Symbol::intern("v")).equals(
      ops5::Value(7L)));
}

}  // namespace
}  // namespace mpps
