// WorkerStats accounting invariants for the parallel match engine, run
// over the committed profiling workloads (examples/programs/bench_*.ops):
// per-worker busy+idle must equal the profiler's measured phase wall,
// mailbox depth can never exceed the configured capacity unless an
// overflow was counted, per-worker activation counts must sum to the
// engine totals, and all deterministic counters must merge bit-identically
// across thread counts and across repeated runs.  scripts/ci.sh runs this
// suite under TSan (it is part of pmatch_tests).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/profiler.hpp"
#include "src/ops5/parser.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/interp.hpp"
#include "tests/pmatch_test_util.hpp"

namespace mpps {
namespace {

using pmatch_test::load_program;

struct RunOutcome {
  rete::RunResult result;
  rete::EngineStats stats;
  std::vector<pmatch::WorkerStats> workers;
  obs::ProfileReport profile;  // empty unless `profiled`
};

RunOutcome run_parallel(const std::string& source, std::uint32_t threads,
                        obs::Profiler* profiler = nullptr,
                        std::size_t mailbox_capacity = 1024) {
  rete::InterpreterOptions options;
  options.max_cycles = 2000;
  pmatch::ParallelOptions popts;
  popts.threads = threads;
  popts.mailbox_capacity = mailbox_capacity;
  popts.profiler = profiler;
  options.engine_factory = pmatch::parallel_engine_factory(popts);
  rete::Interpreter interp(ops5::parse_program(source), options);
  interp.load_initial_wmes();
  RunOutcome out;
  out.result = interp.run();
  const auto& engine =
      dynamic_cast<const pmatch::ParallelEngine&>(interp.match_engine());
  out.stats = engine.stats();
  out.workers = engine.worker_stats();
  if (profiler != nullptr) out.profile = profiler->report();
  return out;
}

class WorkerStatsInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkerStatsInvariants, BusyPlusIdleEqualsMeasuredWall) {
  const std::string source = load_program(GetParam());
  ASSERT_FALSE(source.empty());
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    obs::Profiler profiler;
    const RunOutcome run = run_parallel(source, threads, &profiler);
    ASSERT_EQ(run.workers.size(), threads);
    ASSERT_EQ(run.profile.workers.size(), threads);
    for (std::uint32_t w = 0; w < threads; ++w) {
      // busy is defined as phase wall minus idle, and the profiler's
      // per-worker wall is the sum of the same phase spans — so the
      // engine's split must tile the measured wall exactly.
      EXPECT_EQ(run.workers[w].busy_ns + run.workers[w].idle_ns,
                run.profile.workers[w].wall_ns)
          << "worker " << w << " at " << threads << " threads";
    }
  }
}

TEST_P(WorkerStatsInvariants, MailboxDepthBoundedByCapacity) {
  const std::string source = load_program(GetParam());
  ASSERT_FALSE(source.empty());
  const std::size_t capacity = 64;
  for (const std::uint32_t threads : {2u, 4u}) {
    const RunOutcome run =
        run_parallel(source, threads, nullptr, capacity);
    for (const pmatch::WorkerStats& w : run.workers) {
      if (w.mailbox_overflows == 0) {
        EXPECT_LE(w.max_mailbox_depth, capacity);
      }
    }
  }
}

TEST_P(WorkerStatsInvariants, PerWorkerActivationsSumToEngineTotals) {
  const std::string source = load_program(GetParam());
  ASSERT_FALSE(source.empty());
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    const RunOutcome run = run_parallel(source, threads);
    std::uint64_t activations = 0;
    for (const pmatch::WorkerStats& w : run.workers) {
      activations += w.activations;
    }
    EXPECT_EQ(activations,
              run.stats.left_activations + run.stats.right_activations)
        << threads << " threads";
  }
}

TEST_P(WorkerStatsInvariants, CountersMergeIdenticallyAcrossThreadCounts) {
  const std::string source = load_program(GetParam());
  ASSERT_FALSE(source.empty());
  const RunOutcome base = run_parallel(source, 1);
  for (const std::uint32_t threads : {2u, 4u}) {
    const RunOutcome run = run_parallel(source, threads);
    EXPECT_EQ(run.result.cycles, base.result.cycles);
    EXPECT_EQ(run.result.firings, base.result.firings);
    // The deterministic counters: the same match work happens no matter
    // how the buckets are partitioned, so the merged totals are
    // bit-identical (times and message routing of course are not).
    EXPECT_EQ(run.stats.left_activations, base.stats.left_activations);
    EXPECT_EQ(run.stats.right_activations, base.stats.right_activations);
    EXPECT_EQ(run.stats.tokens_generated, base.stats.tokens_generated);
    EXPECT_EQ(run.stats.comparisons, base.stats.comparisons);
    EXPECT_EQ(run.stats.stale_deletes, base.stats.stale_deletes);
  }
}

TEST_P(WorkerStatsInvariants, CountersStableAcrossRepeatedRuns) {
  const std::string source = load_program(GetParam());
  ASSERT_FALSE(source.empty());
  const RunOutcome first = run_parallel(source, 2);
  const RunOutcome second = run_parallel(source, 2);
  ASSERT_EQ(first.workers.size(), second.workers.size());
  for (std::size_t w = 0; w < first.workers.size(); ++w) {
    EXPECT_EQ(first.workers[w].activations, second.workers[w].activations);
    EXPECT_EQ(first.workers[w].messages_sent,
              second.workers[w].messages_sent);
    EXPECT_EQ(first.workers[w].local_deliveries,
              second.workers[w].local_deliveries);
  }
}

INSTANTIATE_TEST_SUITE_P(BenchWorkloads, WorkerStatsInvariants,
                         ::testing::Values("bench_fanout.ops",
                                           "bench_chain.ops"));

}  // namespace
}  // namespace mpps
