#include "src/core/xform.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/interp.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/synth.hpp"

namespace mpps::core {
namespace {

using trace::Side;
using trace::Trace;

// ---- trace-level unsharing ----------------------------------------------

TEST(UnshareTrace, SplitsBottleneckByOutput) {
  const Trace before = trace::make_weaver_section();
  const Trace after = unshare_node(before, trace::weaver_bottleneck_node());
  // 3 bottleneck activations × 4 outputs replace the 3 originals.
  EXPECT_EQ(after.total_activations(), before.total_activations() + 9);
  // No activation remains at the original node.
  for (const auto& cycle : after.cycles) {
    for (const auto& act : cycle.activations) {
      EXPECT_NE(act.node, trace::weaver_bottleneck_node());
    }
  }
}

TEST(UnshareTrace, MaxSuccessorsDrops) {
  const Trace before = trace::make_weaver_section();
  const Trace after = unshare_node(before, trace::weaver_bottleneck_node());
  auto max_succ = [](const Trace& t) {
    std::uint32_t m = 0;
    for (const auto& cycle : t.cycles) {
      for (const auto& act : cycle.activations) {
        m = std::max(m, act.successors);
      }
    }
    return m;
  };
  EXPECT_EQ(max_succ(before), 40u);
  EXPECT_EQ(max_succ(after), 10u);
}

TEST(UnshareTrace, CopiesLandInDistinctBuckets) {
  const Trace after =
      unshare_node(trace::make_weaver_section(), trace::weaver_bottleneck_node());
  // The three split activations with key_class 0 produce 4 copies each, at
  // fresh node ids (above the section's maximum, 104); at 256 buckets the 4
  // copy nodes almost surely hash apart.
  std::set<std::uint32_t> buckets;
  for (const auto& act : after.cycles.back().activations) {
    if (act.key_class == 0 && act.parent == ActivationId::invalid() &&
        act.side == Side::Left && act.node.value() >= 105) {
      buckets.insert(act.bucket);
    }
  }
  EXPECT_GE(buckets.size(), 3u);
}

TEST(UnshareTrace, NoOpWhenNodeGeneratesNothing) {
  const Trace t = trace::make_weaver_section();
  const Trace same = unshare_node(t, NodeId{9999});
  EXPECT_EQ(same.total_activations(), t.total_activations());
}

TEST(UnshareTrace, ImprovesWeaverSpeedup) {
  // Figure 5-4's effect: substantial improvement on the small-cycle trace.
  const Trace before = trace::make_weaver_section();
  const Trace after = unshare_node(before, trace::weaver_bottleneck_node());
  sim::SimConfig config;
  config.match_processors = 16;
  config.costs = sim::CostModel::zero_overhead();
  const double base = sim::speedup(
      before, config, sim::Assignment::round_robin(before.num_buckets, 16));
  // NOTE: speedups are computed against each trace's own serial baseline;
  // unsharing adds duplicated work, so compare absolute simulated times.
  const auto t_before =
      simulate(before, config, sim::Assignment::round_robin(256, 16)).makespan;
  const auto t_after =
      simulate(after, config, sim::Assignment::round_robin(256, 16)).makespan;
  EXPECT_LT(t_after, t_before);
  EXPECT_GT(base, 1.0);
}

// ---- trace-level copy-and-constraint -------------------------------------

TEST(CopyConstrainTrace, SpreadsCrossProductBuckets) {
  const Trace before = trace::make_tourney_section();
  const Trace after = copy_constrain_node(before, trace::tourney_cross_node(), 8);
  std::set<std::uint32_t> before_buckets;
  std::set<std::uint32_t> after_buckets;
  for (const auto& act : before.cycles[2].activations) {
    if (act.node == trace::tourney_cross_node()) {
      before_buckets.insert(act.bucket);
    }
  }
  std::uint32_t max_node = 0;
  for (const auto& cycle : before.cycles) {
    for (const auto& act : cycle.activations) {
      max_node = std::max(max_node, act.node.value());
    }
  }
  for (const auto& act : after.cycles[2].activations) {
    if (act.node.value() > max_node) after_buckets.insert(act.bucket);
  }
  EXPECT_EQ(before_buckets.size(), 1u);
  EXPECT_GE(after_buckets.size(), 6u);  // 8 copies, possible collisions
}

TEST(CopyConstrainTrace, PreservesLeftActivationCount) {
  const Trace before = trace::make_tourney_section();
  const Trace after = copy_constrain_node(before, trace::tourney_cross_node(), 8);
  // No right activations exist at the cross node in this section, so the
  // totals are unchanged.
  EXPECT_EQ(trace::compute_stats(after).left,
            trace::compute_stats(before).left);
  EXPECT_EQ(trace::compute_stats(after).right,
            trace::compute_stats(before).right);
}

TEST(CopyConstrainTrace, ReplicatesRightActivations) {
  trace::SectionBuilder b("rights", 64);
  b.begin_cycle(1);
  const auto r = b.root_at(Side::Right, NodeId{5}, 3, 0);
  b.child_at(r, NodeId{6}, 4, 0);
  b.child_at(r, NodeId{6}, 4, 1);
  const Trace before = b.take();
  const Trace after = copy_constrain_node(before, NodeId{5}, 2);
  // The right root is replicated into both copies; each keeps the children
  // whose key class belongs to it.
  const auto stats = trace::compute_stats(after);
  EXPECT_EQ(stats.right, 2u);
  EXPECT_EQ(stats.left, 2u);
  for (const auto& act : after.cycles[0].activations) {
    if (act.side == Side::Right) {
      EXPECT_EQ(act.successors, 1u);
    }
  }
}

TEST(CopyConstrainTrace, ImprovesTourneySpeedup) {
  const Trace before = trace::make_tourney_section();
  const Trace after = copy_constrain_node(before, trace::tourney_cross_node(), 8);
  sim::SimConfig config;
  config.match_processors = 32;
  config.costs = sim::CostModel::zero_overhead();
  const auto t_before =
      simulate(before, config, sim::Assignment::round_robin(256, 32)).makespan;
  const auto t_after =
      simulate(after, config, sim::Assignment::round_robin(256, 32)).makespan;
  EXPECT_LT(t_after, t_before);
}

TEST(CopyConstrainTrace, ZeroCopiesRejected) {
  EXPECT_THROW(
      copy_constrain_node(trace::make_tourney_section(), NodeId{300}, 0),
      TraceFormatError);
}

// ---- dummy nodes ----------------------------------------------------------

TEST(DummyNodes, SplitsLargeGenerators) {
  const Trace before = trace::make_weaver_section();
  const Trace after =
      insert_dummy_nodes(before, trace::weaver_bottleneck_node(), 4, 8);
  // 3 bottleneck activations gain 4 dummies each.
  EXPECT_EQ(after.total_activations(), before.total_activations() + 12);
  std::uint32_t max_succ_at_bottleneck = 0;
  for (const auto& act : after.cycles.back().activations) {
    if (act.node == trace::weaver_bottleneck_node()) {
      max_succ_at_bottleneck = std::max(max_succ_at_bottleneck, act.successors);
    }
  }
  EXPECT_EQ(max_succ_at_bottleneck, 4u);  // only the dummies
}

TEST(DummyNodes, LeavesSmallGeneratorsAlone) {
  const Trace before = trace::make_weaver_section();
  const Trace after =
      insert_dummy_nodes(before, trace::weaver_bottleneck_node(), 4, 1000);
  EXPECT_EQ(after.total_activations(), before.total_activations());
}

// ---- source-level copy-and-constraint -------------------------------------

constexpr const char* kCcProgram = R"(
  (make item ^cat a ^v 1)
  (make item ^cat b ^v 2)
  (make item ^cat c ^v 3)
  (make probe ^on yes)
  (p hit (probe ^on yes) (item ^cat <c> ^v <v>) --> (make out ^cat <c>)))";

std::multiset<std::string> out_cats(const ops5::Program& prog) {
  rete::Interpreter interp(prog, {});
  interp.load_initial_wmes();
  interp.run();
  std::multiset<std::string> cats;
  for (const auto* w : interp.wm().all()) {
    if (w->wme_class() == Symbol::intern("out")) {
      cats.insert(std::string(
          w->get(Symbol::intern("cat")).as_symbol().text()));
    }
  }
  return cats;
}

TEST(CopyAndConstraintSource, PreservesFirings) {
  const ops5::Program original = ops5::parse_program(kCcProgram);
  const ops5::Program split = copy_and_constraint(
      original, "hit", 2, Symbol::intern("cat"),
      {{ops5::Value::sym("a")},
       {ops5::Value::sym("b"), ops5::Value::sym("c")}});
  ASSERT_EQ(split.productions.size(), 2u);
  EXPECT_EQ(out_cats(original), out_cats(split));
}

TEST(CopyAndConstraintSource, CopiesGetDistinctNames) {
  const ops5::Program split = copy_and_constraint(
      ops5::parse_program(kCcProgram), "hit", 2, Symbol::intern("cat"),
      {{ops5::Value::sym("a")}, {ops5::Value::sym("b")}});
  EXPECT_NE(split.productions[0].name, split.productions[1].name);
}

TEST(CopyAndConstraintSource, UnknownProductionThrows) {
  EXPECT_THROW(copy_and_constraint(ops5::parse_program(kCcProgram), "nope", 1,
                                   Symbol::intern("cat"), {{}}),
               RuntimeError);
}

TEST(CopyAndConstraintSource, CeOutOfRangeThrows) {
  EXPECT_THROW(copy_and_constraint(ops5::parse_program(kCcProgram), "hit", 9,
                                   Symbol::intern("cat"), {{}}),
               RuntimeError);
}

// ---- network-level unsharing (compile option) -----------------------------

TEST(UnshareNetwork, SameConflictSetWithAndWithoutSharing) {
  const char* src = R"(
    (make a ^v 1)
    (make b ^v 1)
    (make c ^k 1)
    (make d ^k 2)
    (p p1 (a ^v <x>) (b ^v <x>) (c ^k 1) --> (write one))
    (p p2 (a ^v <x>) (b ^v <x>) (d ^k 2) --> (write two)))";
  rete::InterpreterOptions shared;
  rete::InterpreterOptions unshared;
  unshared.compile.share_beta_nodes = false;
  for (auto* opts : {&shared, &unshared}) {
    rete::Interpreter interp(ops5::parse_program(src), *opts);
    interp.load_initial_wmes();
    const auto result = interp.run();
    EXPECT_EQ(result.firings, 2u);
  }
}

}  // namespace
}  // namespace mpps::core
