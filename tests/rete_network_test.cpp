#include "src/rete/network.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"

namespace mpps::rete {
namespace {

Network compile(std::string_view src, CompileOptions opts = {}) {
  return Network::compile(ops5::parse_program(src), opts);
}

TEST(Network, SingleJoinStructure) {
  const Network net = compile(R"(
    (p pair (a ^v <x>) (b ^v <x>) --> (halt)))");
  EXPECT_EQ(net.alphas().size(), 2u);
  ASSERT_EQ(net.betas().size(), 1u);
  const BetaNode& join = net.betas()[0];
  EXPECT_EQ(join.kind, BetaNode::Kind::Join);
  ASSERT_EQ(join.tests.size(), 1u);
  EXPECT_EQ(join.tests[0].pred, ops5::Predicate::Eq);
  EXPECT_EQ(join.n_eq_tests, 1u);
  EXPECT_EQ(join.left_arity, 1u);
  ASSERT_EQ(join.successors.size(), 1u);
  EXPECT_EQ(join.successors[0].kind, BetaSuccessor::Kind::Production);
}

TEST(Network, AlphaTestsFromConstants) {
  const Network net = compile(R"(
    (p x (block ^color blue ^size > 2) --> (halt)))");
  ASSERT_EQ(net.alphas().size(), 1u);
  const AlphaNode& alpha = net.alphas()[0];
  EXPECT_EQ(alpha.wme_class, Symbol::intern("block"));
  ASSERT_EQ(alpha.tests.size(), 2u);
  EXPECT_EQ(alpha.tests[0].kind, AlphaTest::Kind::Constant);
  EXPECT_EQ(alpha.tests[1].pred, ops5::Predicate::Gt);
}

TEST(Network, IntraCeVariableBecomesAttrCompare) {
  const Network net = compile(R"(
    (p same (pair ^first <x> ^second <x>) --> (halt)))");
  const AlphaNode& alpha = net.alphas()[0];
  ASSERT_EQ(alpha.tests.size(), 1u);
  EXPECT_EQ(alpha.tests[0].kind, AlphaTest::Kind::AttrCompare);
  EXPECT_EQ(alpha.tests[0].attr, Symbol::intern("second"));
  EXPECT_EQ(alpha.tests[0].other_attr, Symbol::intern("first"));
}

TEST(Network, SingleCeProductionLinksAlphaDirectly) {
  const Network net = compile("(p one (a ^v 1) --> (halt))");
  EXPECT_TRUE(net.betas().empty());
  ASSERT_EQ(net.alphas().size(), 1u);
  ASSERT_EQ(net.alphas()[0].direct_productions.size(), 1u);
}

TEST(Network, NegatedCeBecomesNegativeNode) {
  const Network net = compile(R"(
    (p no-b (a ^v <x>) -(b ^v <x>) --> (halt)))");
  ASSERT_EQ(net.betas().size(), 1u);
  EXPECT_EQ(net.betas()[0].kind, BetaNode::Kind::Negative);
}

TEST(Network, AlphaSharingAcrossProductions) {
  const Network net = compile(R"(
    (p p1 (a ^v 1) (b ^w 2) --> (halt))
    (p p2 (a ^v 1) (c ^u 3) --> (halt)))");
  // (a ^v 1) shared: alphas are {a^v1, b^w2, c^u3}.
  EXPECT_EQ(net.alphas().size(), 3u);
}

TEST(Network, AlphaSharingCanBeDisabled) {
  CompileOptions opts;
  opts.share_alpha_nodes = false;
  const Network net = compile(R"(
    (p p1 (a ^v 1) (b ^w 2) --> (halt))
    (p p2 (a ^v 1) (c ^u 3) --> (halt)))",
                              opts);
  EXPECT_EQ(net.alphas().size(), 4u);
}

TEST(Network, BetaChainSharing) {
  // Identical two-CE prefixes share the join node.
  const Network net = compile(R"(
    (p p1 (a ^v <x>) (b ^v <x>) (c ^k 1) --> (halt))
    (p p2 (a ^v <x>) (b ^v <x>) (d ^k 2) --> (halt)))");
  // Joins: shared a-b join + c join + d join = 3 (not 4).
  EXPECT_EQ(net.betas().size(), 3u);
  EXPECT_EQ(net.shared_beta_count(), 1u);
}

TEST(Network, UnsharingGivesPrivateChains) {
  CompileOptions opts;
  opts.share_beta_nodes = false;
  const Network net = compile(R"(
    (p p1 (a ^v <x>) (b ^v <x>) (c ^k 1) --> (halt))
    (p p2 (a ^v <x>) (b ^v <x>) (d ^k 2) --> (halt)))",
                              opts);
  EXPECT_EQ(net.betas().size(), 4u);
  EXPECT_EQ(net.shared_beta_count(), 0u);
}

TEST(Network, JoinTestPositionsTrackPositiveCes) {
  const Network net = compile(R"(
    (p x (a ^v <x>) -(b ^v <x>) (c ^v <x> ^w <y>) (d ^w <y>) --> (halt)))");
  // Nodes: neg(b), join(c), join(d).
  ASSERT_EQ(net.betas().size(), 3u);
  const BetaNode& join_d = net.betas()[2];
  ASSERT_EQ(join_d.tests.size(), 1u);
  // <y> was bound in CE 'c', which is token position 1 (a=0, c=1).
  EXPECT_EQ(join_d.tests[0].left_pos, 1u);
  EXPECT_EQ(join_d.left_arity, 2u);
}

TEST(Network, EqTestsOrderedFirstForHashing) {
  const Network net = compile(R"(
    (p x (a ^v <x> ^s <m>) (b ^w > <m> ^v <x>) --> (halt)))");
  const BetaNode& join = net.betas()[0];
  ASSERT_EQ(join.tests.size(), 2u);
  EXPECT_EQ(join.n_eq_tests, 1u);
  EXPECT_EQ(join.tests[0].pred, ops5::Predicate::Eq);
  EXPECT_EQ(join.tests[1].pred, ops5::Predicate::Gt);
}

TEST(Network, BindingsRecordedPerProduction) {
  const Network net = compile(R"(
    (p x (a ^v <x>) (b ^v <x> ^w <y>) --> (make c ^v <x> ^w <y>)))");
  const auto& bindings = net.bindings(ProductionId{0});
  ASSERT_EQ(bindings.size(), 2u);  // <x>, <y>
}

TEST(NetworkErrors, PredicateOnUnboundVariable) {
  EXPECT_THROW(compile("(p x (a ^v > <nope>) --> (halt))"), RuntimeError);
}

TEST(NetworkErrors, RhsVariableNotBound) {
  EXPECT_THROW(compile("(p x (a ^v 1) --> (make b ^v <nope>))"),
               RuntimeError);
}

TEST(NetworkErrors, RhsVariableBoundOnlyInNegatedCe) {
  EXPECT_THROW(compile(R"(
    (p x (a ^v 1) -(b ^w <y>) --> (make c ^v <y>)))"),
               RuntimeError);
}

TEST(NetworkErrors, RemoveOutOfRange) {
  EXPECT_THROW(compile("(p x (a ^v 1) --> (remove 3))"), RuntimeError);
}

TEST(NetworkErrors, RemoveNegatedCe) {
  EXPECT_THROW(compile(R"(
    (p x (a ^v 1) -(b ^w 2) --> (remove 2)))"),
               RuntimeError);
}

TEST(NetworkErrors, ModifyNegatedCe) {
  EXPECT_THROW(compile(R"(
    (p x (a ^v 1) -(b ^w 2) --> (modify 2 ^w 3)))"),
               RuntimeError);
}

TEST(Network, BindMakesVariableUsable) {
  EXPECT_NO_THROW(compile(R"(
    (p x (a ^v 1) --> (bind <t> 5) (make b ^v <t>)))"));
}

TEST(Network, PaperFigure22Network) {
  // The production shape of the paper's Figure 2-2: three CEs → two
  // two-input nodes, constant tests in alphas.
  const Network net = compile(R"(
    (p fig22
      (c1 ^a 1 ^b <x>)
      (c2 ^c <x> ^d <y>)
      (c3 ^e <y>)
      -->
      (halt)))");
  EXPECT_EQ(net.alphas().size(), 3u);
  ASSERT_EQ(net.betas().size(), 2u);
  EXPECT_EQ(net.betas()[0].left_arity, 1u);
  EXPECT_EQ(net.betas()[1].left_arity, 2u);
}

}  // namespace
}  // namespace mpps::rete
