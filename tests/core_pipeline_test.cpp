#include "src/core/pipeline.hpp"

#include <gtest/gtest.h>

#include "src/core/experiments.hpp"
#include "src/trace/io.hpp"

namespace mpps::core {
namespace {

constexpr const char* kProgram = R"(
  (make machine ^state s1)
  (make widget ^owner m ^stage raw)
  (p advance1 (machine ^state s1) (widget ^stage raw)
    --> (modify 2 ^stage cut) (modify 1 ^state s2))
  (p advance2 (machine ^state s2) (widget ^stage cut)
    --> (modify 2 ^stage done) (modify 1 ^state s3))
  (p finish (machine ^state s3) (widget ^stage done) --> (halt)))";

TEST(Pipeline, RecordsOneCyclePerStep) {
  const PipelineResult result = record_trace_from_source(kProgram, "factory");
  EXPECT_EQ(result.run.outcome, rete::RunResult::Outcome::Halted);
  EXPECT_EQ(result.firings, 3u);
  // Cycles: one per interpreter step (the last one fires halt).
  EXPECT_EQ(result.trace.cycles.size(), 3u);
  EXPECT_GT(result.trace.total_activations(), 0u);
}

TEST(Pipeline, TraceIsValidAndSerializable) {
  const PipelineResult result = record_trace_from_source(kProgram, "factory");
  EXPECT_NO_THROW(trace::validate(result.trace));
  const trace::Trace round = trace::from_string(trace::to_string(result.trace));
  EXPECT_EQ(round.total_activations(), result.trace.total_activations());
}

TEST(Pipeline, WmeChangesRecordedPerCycle) {
  const PipelineResult result = record_trace_from_source(kProgram, "factory");
  // Cycle 1 matches the two initial wmes.
  EXPECT_EQ(result.trace.cycles[0].wme_changes, 2u);
  // Cycle 2 matches the two modifies (= 2 deletes + 2 adds).
  EXPECT_EQ(result.trace.cycles[1].wme_changes, 4u);
}

TEST(Pipeline, RecordedTraceSimulates) {
  const PipelineResult result = record_trace_from_source(kProgram, "factory");
  const auto points = speedup_curve(result.trace, {1, 2, 4}, {0, 4});
  ASSERT_EQ(points.size(), 6u);
  for (const auto& p : points) {
    EXPECT_GT(p.speedup, 0.0);
    EXPECT_LE(p.speedup, static_cast<double>(p.procs) + 1e-9);
  }
  // One processor with zero overheads IS the baseline.
  EXPECT_DOUBLE_EQ(points[0].speedup, 1.0);
}

TEST(Pipeline, MaxTraceCyclesTruncates) {
  PipelineOptions opts;
  opts.max_trace_cycles = 1;
  const PipelineResult result =
      record_trace_from_source(kProgram, "factory", opts);
  EXPECT_EQ(result.trace.cycles.size(), 1u);
}

TEST(Experiments, StandardSectionsInPaperOrder) {
  const auto sections = standard_sections(64, 5);
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(sections[0].label, "Rubik");
  EXPECT_EQ(sections[1].label, "Tourney");
  EXPECT_EQ(sections[2].label, "Weaver");
  EXPECT_EQ(sections[0].trace.num_buckets, 64u);
}

TEST(Experiments, RubikHasBestZeroOverheadSpeedup) {
  // Figure 5-1's headline: Rubik has the largest overall speedup.
  const auto sections = standard_sections();
  const double rubik = zero_overhead_speedup(sections[0].trace, 32);
  const double tourney = zero_overhead_speedup(sections[1].trace, 32);
  const double weaver = zero_overhead_speedup(sections[2].trace, 32);
  EXPECT_GT(rubik, tourney);
  EXPECT_GT(rubik, weaver);
  EXPECT_GT(rubik, 5.0);  // "good speedups"
}

TEST(Experiments, OverheadLossOrderingFollowsLeftShare) {
  // Figure 5-2: Rubik (28% left) loses least; Tourney and Weaver
  // (99%/81% left) lose much more.
  const auto sections = standard_sections();
  auto loss = [&](const trace::Trace& t) {
    const double zero = run_speedup(t, 1, 16);
    const double heavy = run_speedup(t, 4, 16);
    return 1.0 - heavy / zero;
  };
  const double rubik_loss = loss(sections[0].trace);
  const double tourney_loss = loss(sections[1].trace);
  const double weaver_loss = loss(sections[2].trace);
  EXPECT_LT(rubik_loss, tourney_loss);
  EXPECT_LT(rubik_loss, weaver_loss);
}

}  // namespace
}  // namespace mpps::core
