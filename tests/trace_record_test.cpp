#include "src/trace/record.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/trace/synth.hpp"

namespace mpps::trace {
namespace {

Trace tiny_trace() {
  SectionBuilder b("tiny", 16);
  b.begin_cycle(1);
  const auto root = b.root(Side::Right, NodeId{1}, 0);
  const auto child = b.child(root, NodeId{2}, 3);
  b.add_instantiations(child);
  return b.take();
}

TEST(TraceValidate, AcceptsWellFormed) {
  EXPECT_NO_THROW(validate(tiny_trace()));
}

TEST(TraceValidate, RejectsDanglingParent) {
  Trace t = tiny_trace();
  t.cycles[0].activations[1].parent = ActivationId{999};
  EXPECT_THROW(validate(t), TraceFormatError);
}

TEST(TraceValidate, RejectsWrongSuccessorCount) {
  Trace t = tiny_trace();
  t.cycles[0].activations[0].successors = 5;
  EXPECT_THROW(validate(t), TraceFormatError);
}

TEST(TraceValidate, RejectsOutOfRangeBucket) {
  Trace t = tiny_trace();
  t.cycles[0].activations[0].bucket = 16;
  EXPECT_THROW(validate(t), TraceFormatError);
}

TEST(TraceValidate, RejectsDuplicateIds) {
  Trace t = tiny_trace();
  t.cycles[0].activations[1].id = t.cycles[0].activations[0].id;
  EXPECT_THROW(validate(t), TraceFormatError);
}

TEST(TraceValidate, RejectsRightChild) {
  Trace t = tiny_trace();
  t.cycles[0].activations[1].side = Side::Right;
  EXPECT_THROW(validate(t), TraceFormatError);
}

TEST(TraceValidate, ParentMustPrecedeChild) {
  Trace t = tiny_trace();
  std::swap(t.cycles[0].activations[0], t.cycles[0].activations[1]);
  EXPECT_THROW(validate(t), TraceFormatError);
}

TEST(TraceStats, CountsSidesAndRoots) {
  const TraceStats s = compute_stats(tiny_trace());
  EXPECT_EQ(s.left, 1u);
  EXPECT_EQ(s.right, 1u);
  EXPECT_EQ(s.total(), 2u);
  EXPECT_EQ(s.root_activations, 1u);
  EXPECT_EQ(s.instantiations, 1u);
  EXPECT_DOUBLE_EQ(s.left_pct(), 50.0);
}

TEST(TraceStats, BucketActivity) {
  const Trace t = tiny_trace();
  const auto act = bucket_activity(t);
  ASSERT_EQ(act.size(), 16u);
  std::uint64_t total = 0;
  for (auto a : act) total += a;
  EXPECT_EQ(total, 2u);
}

TEST(SectionBuilder, ChildOfUnknownParentThrows) {
  SectionBuilder b("bad", 8);
  b.begin_cycle(1);
  EXPECT_THROW(b.child(ActivationId{42}, NodeId{1}, 0), TraceFormatError);
}

TEST(SectionBuilder, ParentLookupCrossCycleFails) {
  SectionBuilder b("bad", 8);
  b.begin_cycle(1);
  const auto root = b.root(Side::Right, NodeId{1}, 0);
  b.begin_cycle(1);
  EXPECT_THROW(b.child(root, NodeId{2}, 0), TraceFormatError);
}

TEST(TraceTotals, TotalActivations) {
  EXPECT_EQ(tiny_trace().total_activations(), 2u);
}

TEST(TraceSlice, ExtractsConsecutiveCycles) {
  const Trace t = make_weaver_section();
  const Trace section = slice(t, 1, 2);
  ASSERT_EQ(section.cycles.size(), 2u);
  EXPECT_EQ(section.cycles[0].activations.size(),
            t.cycles[1].activations.size());
  EXPECT_EQ(section.num_buckets, t.num_buckets);
  EXPECT_NE(section.name.find("[1..3)"), std::string::npos);
}

TEST(TraceSlice, SliceIsValidAndSimulable) {
  const Trace section = slice(make_rubik_section(), 2, 2);
  EXPECT_NO_THROW(validate(section));
  const TraceStats s = compute_stats(section);
  EXPECT_GT(s.total(), 0u);
}

TEST(TraceSlice, WholeTraceSliceEqualsOriginalStats) {
  const Trace t = make_tourney_section();
  const Trace whole = slice(t, 0, t.cycles.size());
  EXPECT_EQ(compute_stats(whole).total(), compute_stats(t).total());
}

TEST(TraceSlice, RejectsOutOfRange) {
  const Trace t = make_weaver_section();
  EXPECT_THROW(slice(t, 4, 1), TraceFormatError);
  EXPECT_THROW(slice(t, 0, 5), TraceFormatError);
  EXPECT_THROW(slice(t, 2, 0), TraceFormatError);
}

}  // namespace
}  // namespace mpps::trace
