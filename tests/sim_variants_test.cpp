// The Section 3.1/3.2 mapping variations: processor pairs, dedicated
// constant-test processors, conflict-set processors — plus the termination
// detection models the paper leaves as future work.
#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/synth.hpp"

namespace mpps::sim {
namespace {

using trace::SectionBuilder;
using trace::Side;
using trace::Trace;

Trace chain_trace() {
  SectionBuilder b("chain", 4);
  b.begin_cycle(1);
  const auto root = b.root_at(Side::Right, NodeId{1}, 0, 0);
  const auto child = b.child_at(root, NodeId{2}, 1, 0);
  b.add_instantiations(child);
  return b.take();
}

// ---- processor pairs -----------------------------------------------------

TEST(ProcessorPairs, OverlapBeatsMergedOnTheChain) {
  // Pair mapping, zero overheads, 2 partitions (4 processors):
  //   t=30  constant tests done everywhere
  //   part0: left proc generates the child (16) while right proc stores the
  //          right token (16) — in parallel.
  //   t=46  child arrives at part1's left proc; forward + store-left (32)
  //          ends at 78; partner generates the instantiation (16) by 62.
  SimConfig config;
  config.match_processors = 4;
  config.mapping = MappingMode::ProcessorPairs;
  config.costs = CostModel::zero_overhead();
  const auto result =
      simulate(chain_trace(), config, Assignment::round_robin(4, 2));
  EXPECT_EQ(result.makespan, SimTime::us(78));
  // Merged mapping needs 110 us for the same chain (store and generate
  // serialize); the pair overlaps them.
  EXPECT_LT(result.makespan, SimTime::us(110));
}

TEST(ProcessorPairs, RequiresEvenProcessorCount) {
  SimConfig config;
  config.match_processors = 3;
  config.mapping = MappingMode::ProcessorPairs;
  EXPECT_THROW(
      simulate(chain_trace(), config, Assignment::round_robin(4, 1)),
      RuntimeError);
}

TEST(ProcessorPairs, AssignmentMustTargetPartitions) {
  SimConfig config;
  config.match_processors = 4;
  config.mapping = MappingMode::ProcessorPairs;
  EXPECT_EQ(config.partitions(), 2u);
  EXPECT_THROW(
      simulate(chain_trace(), config, Assignment::round_robin(4, 4)),
      RuntimeError);
}

TEST(ProcessorPairs, IntraPairForwardingCountsAsMessage) {
  SimConfig config;
  config.match_processors = 2;  // one partition pair
  config.mapping = MappingMode::ProcessorPairs;
  config.costs = CostModel::zero_overhead();
  config.charge_instantiation_messages = false;
  const auto result =
      simulate(chain_trace(), config, Assignment::round_robin(4, 1));
  // The child token is local to the single partition, but the pair still
  // exchanges one forward message for it.
  EXPECT_EQ(result.messages, 1u);
  EXPECT_EQ(result.local_deliveries, 1u);
}

TEST(ProcessorPairs, SameSectionsStillBounded) {
  const Trace t = trace::make_rubik_section(128, 41);
  SimConfig config;
  config.match_processors = 16;
  config.mapping = MappingMode::ProcessorPairs;
  config.costs = CostModel::zero_overhead();
  const double s = speedup(t, config, Assignment::round_robin(128, 8));
  EXPECT_GT(s, 1.0);
  EXPECT_LE(s, 16.0 + 1e-9);
}

TEST(ProcessorPairs, PairUtilizationLowerThanMergedAtSameProcCount) {
  // The paper's rationale for merging on small machines: a pair burns two
  // processors per partition, so at a fixed processor budget the merged
  // mapping usually wins on utilization-bound workloads.
  const Trace t = trace::make_rubik_section(128, 43);
  SimConfig merged;
  merged.match_processors = 16;
  merged.costs = CostModel::zero_overhead();
  SimConfig paired = merged;
  paired.mapping = MappingMode::ProcessorPairs;
  const double s_merged =
      speedup(t, merged, Assignment::round_robin(128, 16));
  const double s_paired =
      speedup(t, paired, Assignment::round_robin(128, 8));
  EXPECT_GT(s_merged, s_paired);
}

// ---- dedicated constant-test processors -----------------------------------

TEST(ConstantTestProcs, ZeroOverheadChainUnchanged) {
  // With free messages the CT detour costs nothing on this chain: CT proc
  // finishes constant tests at 30, ships the root; processing proceeds as
  // in the merged broadcast case (110 us total).
  SimConfig config;
  config.match_processors = 2;
  config.constant_test_processors = 1;
  config.costs = CostModel::zero_overhead();
  const auto result =
      simulate(chain_trace(), config, Assignment::round_robin(4, 2));
  EXPECT_EQ(result.makespan, SimTime::us(110));
  // The root travelled as a message.
  EXPECT_EQ(result.messages, 3u);  // root + child + instantiation
}

TEST(ConstantTestProcs, MatchProcsSkipConstantTests) {
  // Many match processors, no roots owned by most of them: without the
  // broadcast they stay idle instead of paying 30 us each.
  SectionBuilder b("lone", 16);
  b.begin_cycle(1);
  b.root_at(Side::Right, NodeId{1}, 0, 0);
  const Trace t = b.take();
  SimConfig config;
  config.match_processors = 8;
  config.constant_test_processors = 1;
  config.costs = CostModel::zero_overhead();
  const auto result = simulate(t, config, Assignment::round_robin(16, 8));
  for (std::uint32_t p = 1; p < 8; ++p) {
    EXPECT_EQ(result.cycles[0].procs[p].busy, SimTime::us(0));
  }
}

TEST(ConstantTestProcs, SerializedSendsBottleneckUnderHighOverheads) {
  // The paper's warning: with comparatively high communication overheads
  // the constant-test processors become bottlenecks.  400 roots behind one
  // CT processor serialize 400 sends.
  SectionBuilder b("many-roots", 64);
  b.begin_cycle(4);
  for (std::uint32_t i = 0; i < 400; ++i) {
    b.root_at(Side::Right, NodeId{i % 8}, i % 64, i);
  }
  const Trace t = b.take();
  SimConfig broadcast;
  broadcast.match_processors = 16;
  broadcast.costs = CostModel::paper_run(4);
  SimConfig ct = broadcast;
  ct.constant_test_processors = 1;
  const auto a = simulate(t, broadcast, Assignment::round_robin(64, 16));
  const auto c = simulate(t, ct, Assignment::round_robin(64, 16));
  EXPECT_GT(c.makespan, a.makespan);
  // But with more CT processors the bottleneck splits.
  SimConfig ct4 = ct;
  ct4.constant_test_processors = 4;
  const auto c4 = simulate(t, ct4, Assignment::round_robin(64, 16));
  EXPECT_LT(c4.makespan, c.makespan);
}

TEST(ConstantTestProcs, ShareOfConstantTestsSplit) {
  // 2 CT processors each pay half the 30 us constant-test time.
  SectionBuilder b("empty", 4);
  b.begin_cycle(1);
  const Trace t = b.take();
  SimConfig config;
  config.match_processors = 2;
  config.constant_test_processors = 2;
  config.costs = CostModel::zero_overhead();
  const auto result = simulate(t, config, Assignment::round_robin(4, 2));
  EXPECT_EQ(result.makespan, SimTime::us(15));
}

// ---- conflict-set processors ----------------------------------------------

TEST(ConflictSetProcs, OffloadControlSerialization) {
  // 64 instantiations through the control processor serialize 64 receive
  // overheads; 4 CS processors absorb them and send control 4 messages.
  SectionBuilder b("insts", 64);
  b.begin_cycle(1);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto r = b.root_at(Side::Right, NodeId{1}, i, i);
    b.add_instantiations(r);
  }
  const Trace t = b.take();
  SimConfig direct;
  direct.match_processors = 16;
  direct.costs = CostModel::paper_run(4);
  SimConfig offload = direct;
  offload.conflict_set_processors = 4;
  const auto a = simulate(t, direct, Assignment::round_robin(64, 16));
  const auto c = simulate(t, offload, Assignment::round_robin(64, 16));
  EXPECT_LT(c.makespan, a.makespan);
}

TEST(ConflictSetProcs, SelectCostCharged) {
  SectionBuilder b("one-inst", 4);
  b.begin_cycle(1);
  const auto r = b.root_at(Side::Right, NodeId{1}, 0, 0);
  b.add_instantiations(r);
  const Trace t = b.take();
  SimConfig config;
  config.match_processors = 1;
  config.conflict_set_processors = 1;
  config.costs = CostModel::zero_overhead();
  const auto base = simulate(t, config, Assignment::round_robin(4, 1));
  config.conflict_select_cost = SimTime::us(50);
  const auto charged = simulate(t, config, Assignment::round_robin(4, 1));
  EXPECT_EQ(charged.makespan - base.makespan, SimTime::us(50));
}

// ---- termination detection --------------------------------------------------

TEST(Termination, NoneIsFree) {
  const Trace t = trace::make_weaver_section(64, 47);
  SimConfig config;
  config.match_processors = 8;
  config.costs = CostModel::paper_run(2);
  const auto result = simulate(t, config, Assignment::round_robin(64, 8));
  EXPECT_EQ(result.termination_overhead, SimTime::us(0));
}

TEST(Termination, ModelsChargeEveryCycle) {
  const Trace t = trace::make_weaver_section(64, 47);
  SimConfig config;
  config.match_processors = 8;
  config.costs = CostModel::paper_run(2);
  const auto none = simulate(t, config, Assignment::round_robin(64, 8));
  config.termination = TerminationModel::BarrierPoll;
  const auto poll = simulate(t, config, Assignment::round_robin(64, 8));
  config.termination = TerminationModel::AckCounting;
  const auto ack = simulate(t, config, Assignment::round_robin(64, 8));
  EXPECT_GT(poll.makespan, none.makespan);
  EXPECT_GT(ack.makespan, none.makespan);
  EXPECT_EQ(poll.makespan - none.makespan, poll.termination_overhead);
  EXPECT_EQ(ack.makespan - none.makespan, ack.termination_overhead);
  // BarrierPoll under run 2: per cycle 8*(5+3) + 2*0.5 = 65 us, 4 cycles.
  EXPECT_EQ(poll.termination_overhead, SimTime::us(260));
}

TEST(Termination, BarrierCostGrowsWithProcessors) {
  const Trace t = trace::make_weaver_section(64, 47);
  SimConfig small;
  small.match_processors = 4;
  small.costs = CostModel::paper_run(4);
  small.termination = TerminationModel::BarrierPoll;
  SimConfig big = small;
  big.match_processors = 32;
  const auto a = simulate(t, small, Assignment::round_robin(64, 4));
  const auto b = simulate(t, big, Assignment::round_robin(64, 32));
  EXPECT_GT(b.termination_overhead, a.termination_overhead);
}

TEST(Termination, AckCostScalesWithMessages) {
  const Trace rubik = trace::make_rubik_section(128, 49);
  const Trace weaver = trace::make_weaver_section(128, 49);
  SimConfig config;
  config.match_processors = 8;
  config.costs = CostModel::paper_run(4);
  config.termination = TerminationModel::AckCounting;
  const auto a = simulate(rubik, config, Assignment::round_robin(128, 8));
  const auto b = simulate(weaver, config, Assignment::round_robin(128, 8));
  // Rubik exchanges far more messages than Weaver.
  EXPECT_GT(a.messages, b.messages);
  EXPECT_GT(a.termination_overhead, b.termination_overhead);
}

}  // namespace
}  // namespace mpps::sim
