// The phase-attribution profiler in isolation: lane lifecycle errors,
// the report() arithmetic (category sums, the Match→MailboxEnqueue aux
// re-attribution, the unattributed remainder, skew, merge and hot-bucket
// accounting) over synthetic spans with hand-checkable numbers, and the
// wall-clock Chrome-trace export.  The engine-integration side (real
// ParallelEngine runs) lives in tests/pmatch_profile_test.cpp.
#include "src/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

#include "src/common/error.hpp"
#include "src/obs/tracer.hpp"

namespace mpps::obs {
namespace {

TEST(Profiler, CategoryNamesAreStable) {
  EXPECT_STREQ(prof_category_name(ProfCategory::Match), "match");
  EXPECT_STREQ(prof_category_name(ProfCategory::MailboxEnqueue),
               "mailbox_enqueue");
  EXPECT_STREQ(prof_category_name(ProfCategory::MailboxDequeue),
               "mailbox_dequeue");
  EXPECT_STREQ(prof_category_name(ProfCategory::BarrierWait), "barrier_wait");
  EXPECT_STREQ(prof_category_name(ProfCategory::RoundMerge), "round_merge");
  EXPECT_STREQ(prof_category_name(ProfCategory::ConflictUpdate),
               "conflict_update");
}

TEST(Profiler, AttachLifecycleErrors) {
  Profiler profiler;
  EXPECT_FALSE(profiler.attached());
  EXPECT_THROW(static_cast<void>(profiler.control_lane()), RuntimeError);
  EXPECT_THROW(static_cast<void>(profiler.lane(0)), RuntimeError);
  EXPECT_THROW(profiler.attach(0, 8), RuntimeError);

  profiler.attach(2, 8);
  EXPECT_TRUE(profiler.attached());
  EXPECT_EQ(profiler.workers(), 2u);
  EXPECT_NE(profiler.lane(0), nullptr);
  EXPECT_NE(profiler.lane(1), nullptr);
  EXPECT_NE(profiler.control_lane(), nullptr);
  EXPECT_NE(profiler.lane(0), profiler.lane(1));
  // The control lane is not addressable as a worker lane.
  EXPECT_THROW(static_cast<void>(profiler.lane(2)), RuntimeError);
  // One profiler profiles one engine.
  EXPECT_THROW(profiler.attach(2, 8), RuntimeError);
}

TEST(Profiler, EmptyReport) {
  const Profiler profiler;
  const ProfileReport report = profiler.report();
  EXPECT_TRUE(report.workers.empty());
  EXPECT_EQ(report.total_wall_ns, 0u);
  EXPECT_DOUBLE_EQ(report.min_attributed_pct(), 100.0);
  EXPECT_DOUBLE_EQ(report.rounds_per_phase(), 0.0);
}

TEST(Profiler, ReportArithmetic) {
  Profiler profiler;
  profiler.attach(2, 8);

  // Worker 0: a 1000 ns phase — 600 ns match (of which 100 ns were nested
  // mailbox pushes), 300 ns barrier, 100 ns unexplained.
  ProfLane* w0 = profiler.lane(0);
  w0->phase_span(0, 1000);
  w0->span(ProfCategory::Match, 0, 0, 600, /*aux=*/100);
  w0->span(ProfCategory::BarrierWait, 0, 600, 900);

  // Worker 1: a 2000 ns phase fully attributed to match.
  ProfLane* w1 = profiler.lane(1);
  w1->phase_span(0, 2000);
  w1->span(ProfCategory::Match, 0, 0, 2000);

  // Control: one merge of 7 records.
  profiler.control_lane()->span(ProfCategory::ConflictUpdate, 0, 1000, 1050,
                                /*aux=*/7);
  profiler.add_phase(3);

  const ProfileReport report = profiler.report();
  ASSERT_EQ(report.workers.size(), 2u);
  const auto cat = [](const ProfileReport::Worker& w, ProfCategory c) {
    return w.category_ns[static_cast<std::size_t>(c)];
  };

  EXPECT_EQ(report.workers[0].wall_ns, 1000u);
  // aux re-attribution: match keeps 500, enqueue gets the nested 100.
  EXPECT_EQ(cat(report.workers[0], ProfCategory::Match), 500u);
  EXPECT_EQ(cat(report.workers[0], ProfCategory::MailboxEnqueue), 100u);
  EXPECT_EQ(cat(report.workers[0], ProfCategory::BarrierWait), 300u);
  EXPECT_EQ(report.workers[0].unattributed_ns, 100u);
  EXPECT_DOUBLE_EQ(report.workers[0].attributed_pct(), 90.0);

  EXPECT_EQ(report.workers[1].wall_ns, 2000u);
  EXPECT_EQ(cat(report.workers[1], ProfCategory::Match), 2000u);
  EXPECT_EQ(report.workers[1].unattributed_ns, 0u);
  EXPECT_DOUBLE_EQ(report.workers[1].attributed_pct(), 100.0);

  EXPECT_DOUBLE_EQ(report.min_attributed_pct(), 90.0);
  EXPECT_EQ(report.total_wall_ns, 3000u);
  EXPECT_EQ(report.total_unattributed_ns, 100u);
  EXPECT_EQ(report.conflict_update_ns, 50u);
  EXPECT_EQ(
      report.total_ns[static_cast<std::size_t>(ProfCategory::ConflictUpdate)],
      50u);

  // Skew: match times 500 and 2000 → max/mean = 2000/1250.
  EXPECT_DOUBLE_EQ(report.match_skew, 1.6);

  EXPECT_EQ(report.phases, 1u);
  EXPECT_EQ(report.rounds, 3u);
  EXPECT_DOUBLE_EQ(report.rounds_per_phase(), 3.0);
}

TEST(SafePct, ClampsToValidRange) {
  EXPECT_DOUBLE_EQ(safe_pct(0, 0), 0.0);     // no denominator → 0, not NaN
  EXPECT_DOUBLE_EQ(safe_pct(50, 0), 0.0);
  EXPECT_DOUBLE_EQ(safe_pct(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(safe_pct(25, 100), 25.0);
  EXPECT_DOUBLE_EQ(safe_pct(100, 100), 100.0);
  // part > whole (the old >100% bug shape) clamps instead of overflowing.
  EXPECT_DOUBLE_EQ(safe_pct(1107, 1000), 100.0);
}

TEST(Profiler, BatchedPhaseAccounting) {
  Profiler profiler;
  profiler.attach(1, 4);
  profiler.add_phase(/*rounds_in_phase=*/3, /*changes_in_phase=*/4);
  profiler.add_phase(/*rounds_in_phase=*/1);  // defaults to one change
  const ProfileReport report = profiler.report();
  EXPECT_EQ(report.phases, 2u);
  EXPECT_EQ(report.rounds, 4u);
  EXPECT_EQ(report.changes, 5u);
  EXPECT_DOUBLE_EQ(report.rounds_per_phase(), 2.0);
  EXPECT_DOUBLE_EQ(report.rounds_per_change(), 0.8);
}

TEST(Profiler, ConflictUpdatePctUsesEngineWall) {
  // The regression shape behind the >100% bug: a tiny worker wall (the
  // workers parked almost instantly) but a control thread that spent
  // longer merging than any worker was ever awake.  Normalized against
  // the control lane's own phase spans (the engine wall), the share is
  // well-defined and <= 100 by construction.
  Profiler profiler;
  profiler.attach(1, 4);
  profiler.lane(0)->phase_span(0, 100);  // worker awake 100 ns
  profiler.lane(0)->span(ProfCategory::Match, 0, 0, 100);
  // Engine phase span 0..1000, merge 400..950 inside it.
  profiler.control_lane()->phase_span(0, 1000);
  profiler.control_lane()->span(ProfCategory::ConflictUpdate, 0, 400, 950);
  profiler.add_phase(1);

  const ProfileReport report = profiler.report();
  EXPECT_EQ(report.engine_wall_ns, 1000u);
  EXPECT_EQ(report.conflict_update_ns, 550u);
  // Against the worker wall this would have read 550%.
  EXPECT_DOUBLE_EQ(report.conflict_update_pct(), 55.0);
}

TEST(Profiler, ConflictUpdatePctClampsOnAdversarialSpans) {
  // Hand-built lanes can violate the containment invariant; the report
  // must still never print an impossible percentage.
  Profiler profiler;
  profiler.attach(1, 4);
  profiler.control_lane()->phase_span(0, 100);
  profiler.control_lane()->span(ProfCategory::ConflictUpdate, 0, 0, 500);
  const ProfileReport report = profiler.report();
  EXPECT_DOUBLE_EQ(report.conflict_update_pct(), 100.0);
}

TEST(Profiler, AllReportPercentagesInRangeOnRandomLanes) {
  // Property: whatever spans the lanes hold — including spans that
  // overlap, exceed their phase, or sit outside any phase — every
  // percentage the report exposes lands in [0, 100].
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 50; ++trial) {
    Profiler profiler;
    const std::uint32_t workers = 1 + static_cast<std::uint32_t>(rng() % 4);
    profiler.attach(workers, 8);
    auto fill_lane = [&](ProfLane* lane) {
      const int phases = static_cast<int>(rng() % 4);
      for (int p = 0; p < phases; ++p) {
        const std::uint64_t start = rng() % 1000;
        lane->phase_span(start, start + rng() % 2000);
      }
      const int spans = static_cast<int>(rng() % 12);
      for (int s = 0; s < spans; ++s) {
        const auto category =
            static_cast<ProfCategory>(rng() % kProfCategories);
        const std::uint64_t start = rng() % 3000;
        lane->span(category, static_cast<std::uint32_t>(rng() % 4), start,
                   start + rng() % 4000, rng() % 100);
      }
    };
    for (std::uint32_t w = 0; w < workers; ++w) {
      fill_lane(profiler.lane(w));
      for (int b = 0; b < 3; ++b) {
        profiler.lane(w)->bucket_load(static_cast<std::uint32_t>(rng() % 8),
                                      rng() % 10);
      }
    }
    fill_lane(profiler.control_lane());
    profiler.add_phase(rng() % 5, 1 + rng() % 8);

    const ProfileReport report = profiler.report();
    const auto in_range = [&](double pct, const char* what) {
      EXPECT_GE(pct, 0.0) << what << " trial " << trial;
      EXPECT_LE(pct, 100.0) << what << " trial " << trial;
    };
    in_range(report.min_attributed_pct(), "min_attributed_pct");
    in_range(report.conflict_update_pct(), "conflict_update_pct");
    for (const ProfileReport::Worker& w : report.workers) {
      in_range(w.attributed_pct(), "attributed_pct");
      for (std::size_t c = 0; c < kProfCategories; ++c) {
        in_range(safe_pct(w.category_ns[c], w.wall_ns), "category pct");
      }
      in_range(safe_pct(w.unattributed_ns, w.wall_ns), "unattributed pct");
    }
    for (std::size_t c = 0; c < kProfCategories; ++c) {
      in_range(safe_pct(report.total_ns[c], report.total_wall_ns),
               "total category pct");
    }
    for (const ProfileReport::HotBucket& b : report.hot_buckets) {
      in_range(b.share_pct, "hot bucket share");
    }
  }
}

TEST(Profiler, MergeAndHotBucketAccounting) {
  Profiler profiler;
  profiler.attach(2, 8);

  ProfLane* w0 = profiler.lane(0);
  w0->phase_span(0, 100);
  w0->span(ProfCategory::RoundMerge, 0, 0, 10, /*aux=*/4);
  w0->span(ProfCategory::RoundMerge, 1, 10, 20, /*aux=*/6);
  w0->bucket_load(3, 5);
  w0->bucket_load(3, 5);
  w0->bucket_load(0, 1);

  ProfLane* w1 = profiler.lane(1);
  w1->phase_span(0, 100);
  w1->bucket_load(1, 2);

  const ProfileReport report = profiler.report(/*top_k_buckets=*/2);
  EXPECT_EQ(report.merge_rounds, 2u);
  EXPECT_EQ(report.merged_items, 10u);
  EXPECT_EQ(report.max_merge_items, 6u);

  EXPECT_EQ(report.workers[0].activations, 3u);
  EXPECT_EQ(report.workers[1].activations, 1u);

  // Top-2 of three loaded buckets, ordered by activations descending.
  ASSERT_EQ(report.hot_buckets.size(), 2u);
  EXPECT_EQ(report.hot_buckets[0].bucket, 3u);
  EXPECT_EQ(report.hot_buckets[0].worker, 0u);
  EXPECT_EQ(report.hot_buckets[0].activations, 2u);
  EXPECT_EQ(report.hot_buckets[0].tokens_touched, 10u);
  EXPECT_DOUBLE_EQ(report.hot_buckets[0].share_pct, 50.0);
  EXPECT_EQ(report.hot_buckets[1].activations, 1u);
  // Equal activation counts break ties on bucket index: 0 before 1.
  EXPECT_EQ(report.hot_buckets[1].bucket, 0u);
}

TEST(Profiler, ChromeTraceExport) {
  Profiler profiler;
  profiler.attach(1, 4);
  profiler.lane(0)->phase_span(0, 1000);
  profiler.lane(0)->span(ProfCategory::Match, 0, 0, 600);
  profiler.control_lane()->span(ProfCategory::ConflictUpdate, 0, 1000, 1100);

  Tracer tracer;
  profiler.export_chrome_trace(tracer);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("measured worker 0"), std::string::npos);
  EXPECT_NE(json.find("measured control"), std::string::npos);
  EXPECT_NE(json.find("\"match\""), std::string::npos);
  EXPECT_NE(json.find("\"conflict_update\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\""), std::string::npos);
}

TEST(Profiler, PrintReportRendersTables) {
  Profiler profiler;
  profiler.attach(1, 4);
  profiler.lane(0)->phase_span(0, 1000);
  profiler.lane(0)->span(ProfCategory::Match, 0, 0, 600);
  profiler.lane(0)->bucket_load(2, 3);
  profiler.add_phase(1);

  std::ostringstream os;
  print_profile_report(os, profiler.report());
  const std::string text = os.str();
  EXPECT_NE(text.find("wall-clock phase attribution"), std::string::npos);
  EXPECT_NE(text.find("match %"), std::string::npos);
  EXPECT_NE(text.find("hottest buckets"), std::string::npos);
}

}  // namespace
}  // namespace mpps::obs
