// Shared helpers for the parallel-match differential tests: program
// loading, a normalized conflict-set view, and a seeded random-program
// generator (the match-level analogue of the simulator's selfcheck
// corpus — rules join 2-3 CEs, some negated, and only consume wmes so
// every generated system quiesces).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/rete/conflict.hpp"
#include "src/rete/interp.hpp"

#ifndef MPPS_PROGRAMS_DIR
#define MPPS_PROGRAMS_DIR "examples/programs"
#endif

namespace mpps::pmatch_test {

inline std::string load_program(const std::string& name) {
  const std::string path = std::string(MPPS_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "cannot open " << path;
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Order-free view of a conflict set: (production, wme ids), sorted.
using FlatConflictSet =
    std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>>;

inline FlatConflictSet flatten(const rete::ConflictSet& cs) {
  FlatConflictSet out;
  for (const rete::Instantiation& inst : cs.all()) {
    std::vector<std::uint64_t> wmes;
    wmes.reserve(inst.token.wmes.size());
    for (WmeId w : inst.token.wmes) wmes.push_back(w.value());
    out.emplace_back(inst.production.value(), std::move(wmes));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// A random consumable production system over classes c0..c2 plus an
/// inert `out` class.  Every rule removes its first matched wme, so WM
/// shrinks monotonically and the run quiesces.
inline std::string random_program(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](std::uint64_t n) {
    return static_cast<long>(rng() % n);
  };
  std::ostringstream src;
  const int rules = 4 + static_cast<int>(pick(4));
  for (int r = 0; r < rules; ++r) {
    src << "(p rule" << r << "\n";
    const int ces = 2 + static_cast<int>(pick(2));
    const bool negate_last = pick(10) < 3;
    for (int c = 0; c < ces; ++c) {
      const bool neg = negate_last && c == ces - 1;
      const long cls = pick(3);
      src << "  " << (neg ? "- " : "") << "(c" << cls << " ^k <x>";
      if (pick(2) == 0) src << " ^v " << pick(3);
      src << ")\n";
    }
    src << "  -->\n  (remove 1)\n";
    if (pick(2) == 0) src << "  (make out ^v <x>)\n";
    src << ")\n";
  }
  const int wmes = 18 + static_cast<int>(pick(12));
  for (int i = 0; i < wmes; ++i) {
    src << "(make c" << pick(3) << " ^k " << pick(5) << " ^v " << pick(3)
        << ")\n";
  }
  return src.str();
}

}  // namespace mpps::pmatch_test
