// The model checker's own test suite: the built-in race corpus passes
// exhaustively with 100% conflict-set equality, the partial-order
// reduction demonstrably prunes schedules on at least one entry, both
// planted engine faults are caught with replayable schedule IDs, and the
// shrinker is deterministic and actually removes noise.  Plus unit tests
// for the PorController's dependence/sleep-set machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/mc/checker.hpp"
#include "src/mc/controller.hpp"
#include "src/mc/scenario.hpp"
#include "src/mc/schedule.hpp"
#include "src/obs/metrics.hpp"
#include "src/ops5/value.hpp"
#include "src/ops5/wme.hpp"

namespace mpps::mc {
namespace {

CheckOptions exhaustive_options(Fault fault = Fault::None) {
  CheckOptions options;
  options.mode = CheckOptions::Mode::Exhaustive;
  options.fault = fault;
  return options;
}

const ScenarioReport* find_report(const CheckReport& report,
                                  const std::string& name) {
  for (const ScenarioReport& s : report.scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(Checker, ExhaustiveCorpusMatchesSerialOracle) {
  const std::vector<Scenario> corpus = builtin_corpus();
  const CheckReport report = check_corpus(corpus, exhaustive_options());
  ASSERT_EQ(report.scenarios.size(), corpus.size());
  bool any_multi_schedule = false;
  bool any_pruned = false;
  for (const ScenarioReport& s : report.scenarios) {
    EXPECT_TRUE(s.ok()) << s.name;
    EXPECT_FALSE(s.truncated) << s.name;
    EXPECT_GE(s.explored, 1u) << s.name;
    if (s.explored > 1) any_multi_schedule = true;
    if (s.pruned() > 0) any_pruned = true;
  }
  // The corpus genuinely exercises scheduler freedom, and the reduction
  // explores strictly fewer schedules than the naive interleaving count
  // on at least one entry (an ISSUE acceptance criterion).
  EXPECT_TRUE(any_multi_schedule);
  EXPECT_TRUE(any_pruned);
  EXPECT_TRUE(report.ok());
}

TEST(Checker, MergeOrderFaultIsDetected) {
  const std::vector<Scenario> corpus = builtin_corpus();
  const CheckReport report =
      check_corpus(corpus, exhaustive_options(Fault::MergeOrder));
  EXPECT_FALSE(report.ok());
  const ScenarioReport* fused = find_report(report, "fused-add-delete");
  ASSERT_NE(fused, nullptr);
  ASSERT_FALSE(fused->failures.empty());
  ASSERT_TRUE(fused->minimized.has_value());
  const Scenario* original = find_scenario(corpus, "fused-add-delete");
  ASSERT_NE(original, nullptr);
  EXPECT_LE(fused->minimized->change_count(), original->change_count());
}

TEST(Checker, DrainFifoFaultIsDetected) {
  const std::vector<Scenario> corpus = builtin_corpus();
  const CheckReport report =
      check_corpus(corpus, exhaustive_options(Fault::DrainFifo));
  EXPECT_FALSE(report.ok());
  const ScenarioReport* fused = find_report(report, "fused-add-delete");
  ASSERT_NE(fused, nullptr);
  EXPECT_FALSE(fused->failures.empty());
}

TEST(Checker, FailingScheduleReplays) {
  const std::vector<Scenario> corpus = builtin_corpus();
  const Scenario* fused = find_scenario(corpus, "fused-add-delete");
  ASSERT_NE(fused, nullptr);
  CheckOptions options = exhaustive_options(Fault::MergeOrder);
  options.shrink = false;
  const ScenarioReport report = check_scenario(*fused, options);
  ASSERT_FALSE(report.failures.empty());
  const ScheduleId failing = report.failures.front().schedule;
  // The recorded ID reproduces the mismatch under the same fault, and the
  // same schedule is clean on the unbroken engine.
  EXPECT_TRUE(run_schedule(*fused, failing, Fault::MergeOrder).has_value());
  EXPECT_FALSE(run_schedule(*fused, failing, Fault::None).has_value());
}

TEST(Checker, RandomModeExploresRequestedCount) {
  const std::vector<Scenario> corpus = builtin_corpus();
  const Scenario* scenario = find_scenario(corpus, "send-send");
  ASSERT_NE(scenario, nullptr);
  CheckOptions options;
  options.mode = CheckOptions::Mode::Random;
  options.schedules = 5;
  options.seed = 3;
  const ScenarioReport report = check_scenario(*scenario, options);
  EXPECT_EQ(report.explored, 5u);
  EXPECT_TRUE(report.ok());
}

TEST(Checker, RandomModeFailureIdIsReplayable) {
  const std::vector<Scenario> corpus = builtin_corpus();
  const Scenario* fused = find_scenario(corpus, "fused-add-delete");
  ASSERT_NE(fused, nullptr);
  CheckOptions options;
  options.mode = CheckOptions::Mode::Random;
  options.schedules = 4;
  options.fault = Fault::DrainFifo;
  options.shrink = false;
  const ScenarioReport report = check_scenario(*fused, options);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_TRUE(run_schedule(*fused, report.failures.front().schedule,
                           Fault::DrainFifo)
                  .has_value());
}

TEST(Checker, ReplayModeFollowsRecordedSchedule) {
  const std::vector<Scenario> corpus = builtin_corpus();
  const Scenario* scenario = find_scenario(corpus, "send-send");
  ASSERT_NE(scenario, nullptr);
  CheckOptions options;
  options.mode = CheckOptions::Mode::Replay;
  options.replay = ScheduleId{};  // canonical
  const ScenarioReport report = check_scenario(*scenario, options);
  EXPECT_EQ(report.explored, 1u);
  EXPECT_TRUE(report.ok());
  // An ID from a different scenario's (bigger) tree is rejected loudly.
  CheckOptions bad = options;
  bad.replay = ScheduleId{{9}};
  EXPECT_THROW(check_scenario(*scenario, bad), RuntimeError);
}

/// A fused-add-delete race padded with wmes no rule matches: the shrinker
/// must strip the noise and keep the race.
Scenario noisy_fused_scenario() {
  Scenario s;
  s.name = "noisy-fused";
  s.program =
      "(p pair (a ^k <x>) (b ^k <x>) (ctx ^tag on) --> (remove 1))\n";
  ops5::WorkingMemory wm;
  auto add = [&](const char* cls, const char* attr, long v) {
    return wm.add(ops5::Wme(Symbol::intern(cls),
                            {{Symbol::intern(attr), ops5::Value(v)}}));
  };
  wm.add(ops5::Wme(Symbol::intern("ctx"),
                   {{Symbol::intern("tag"), ops5::Value::sym("on")}}));
  add("noise", "n", 1);
  s.phases.push_back(wm.drain_changes());
  const WmeId a = add("a", "k", 1);
  add("noise", "n", 2);
  add("b", "k", 1);
  add("noise", "n", 3);
  wm.remove(a);
  s.phases.push_back(wm.drain_changes());
  add("noise", "n", 4);
  s.phases.push_back(wm.drain_changes());
  return s;
}

std::vector<std::string> dump(const Scenario& s) {
  std::vector<std::string> out;
  for (const auto& phase : s.phases) {
    out.emplace_back("--phase--");
    for (const ops5::WmeChange& change : phase) {
      out.push_back(
          std::string(change.kind == ops5::WmeChange::Kind::Add ? "+" : "-") +
          std::to_string(change.wme.id().value()) + " " +
          change.wme.to_string());
    }
  }
  out.push_back("threads=" + std::to_string(s.threads));
  return out;
}

TEST(Checker, ShrinkIsDeterministicAndRemovesNoise) {
  const Scenario noisy = noisy_fused_scenario();
  CheckOptions options = exhaustive_options(Fault::MergeOrder);
  options.shrink = false;
  ASSERT_FALSE(check_scenario(noisy, options).failures.empty());

  std::uint64_t steps_a = 0;
  std::uint64_t steps_b = 0;
  const Scenario min_a = shrink(noisy, options, &steps_a);
  const Scenario min_b = shrink(noisy, options, &steps_b);
  EXPECT_EQ(dump(min_a), dump(min_b));
  EXPECT_EQ(steps_a, steps_b);

  // All four noise wmes and the noise-only trailing phase are gone, and
  // the minimized scenario still fails.
  EXPECT_LT(min_a.change_count(), noisy.change_count());
  EXPECT_LE(min_a.change_count(), 4u);
  EXPECT_LT(min_a.phases.size(), noisy.phases.size());
  EXPECT_FALSE(check_scenario(min_a, options).failures.empty());
}

TEST(Checker, CountersLandInRegistry) {
  obs::Registry registry;
  CheckOptions options = exhaustive_options();
  options.metrics = &registry;
  const CheckReport report = check_corpus(builtin_corpus(), options);
  std::uint64_t explored = 0;
  for (const ScenarioReport& s : report.scenarios) explored += s.explored;
  EXPECT_EQ(registry.counter("mc.scenarios").value(),
            report.scenarios.size());
  EXPECT_EQ(registry.counter("mc.schedules_explored").value(), explored);
  EXPECT_GT(registry.counter("mc.schedules_pruned").value(), 0u);
  EXPECT_EQ(registry.counter("mc.failures").value(), 0u);
}

TEST(ParseFault, NamesRoundTrip) {
  EXPECT_EQ(parse_fault("none"), Fault::None);
  EXPECT_EQ(parse_fault("merge-order"), Fault::MergeOrder);
  EXPECT_EQ(parse_fault("drain-fifo"), Fault::DrainFifo);
  EXPECT_STREQ(to_string(Fault::MergeOrder), "merge-order");
  EXPECT_THROW(parse_fault("typo"), RuntimeError);
}

// --- PorController unit tests ---------------------------------------------

std::vector<pmatch::ScheduledOp> two_senders_two_buckets() {
  // Sender 0 and sender 1 each target their own bucket: the ops commute,
  // so the controller must not branch.
  return {
      {0, 0, 10, 111},
      {0, 1, 10, 112},
      {1, 0, 20, 221},
      {1, 1, 20, 222},
  };
}

TEST(PorController, DistinctBucketsDoNotBranch) {
  DfsChooser dfs;
  PorController controller(dfs);
  std::vector<std::uint32_t> order;
  controller.order_round(0, 1, two_senders_two_buckets(), order);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(controller.stats().branch_sites, 0u);
  EXPECT_FALSE(dfs.advance());  // one schedule total
  // The naive baseline counts the cross-bucket interleavings anyway:
  // C(4,2) = 6 FIFO-respecting orders of two 2-item streams.
  EXPECT_EQ(controller.stats().naive_schedules, 6u);
}

TEST(PorController, SharedBucketEnumeratesFifoInterleavings) {
  const std::vector<pmatch::ScheduledOp> ops = {
      {0, 0, 7, 111},
      {0, 1, 7, 112},
      {1, 0, 7, 221},
      {1, 1, 7, 222},
  };
  DfsChooser dfs;
  std::set<std::vector<std::uint32_t>> orders;
  do {
    PorController controller(dfs);
    std::vector<std::uint32_t> order;
    controller.order_round(0, 1, ops, order);
    // Per-sender FIFO always holds: index 0 before 1, index 2 before 3.
    auto pos = [&](std::uint32_t idx) {
      return std::find(order.begin(), order.end(), idx) - order.begin();
    };
    EXPECT_LT(pos(0), pos(1));
    EXPECT_LT(pos(2), pos(3));
    orders.insert(order);
  } while (dfs.advance());
  EXPECT_EQ(orders.size(), 6u);  // C(4,2): all FIFO-respecting orders
}

TEST(PorController, IdenticalHeadsAreSleptNotBranched) {
  // Same bucket, two senders, identical op content: picking either first
  // reaches the same state, so there is exactly one schedule.
  const std::vector<pmatch::ScheduledOp> ops = {
      {0, 0, 7, 999},
      {1, 0, 7, 999},
  };
  DfsChooser dfs;
  PorController controller(dfs);
  std::vector<std::uint32_t> order;
  controller.order_round(0, 1, ops, order);
  EXPECT_EQ(controller.stats().branch_sites, 0u);
  EXPECT_GE(controller.stats().sleep_skips, 1u);
  EXPECT_FALSE(dfs.advance());
}

TEST(PorController, MergeFaultReversesDeltaStreams) {
  const std::vector<pmatch::ScheduledOp> ops = {
      {0, 0, 7, 1},
      {0, 1, 7, 2},
  };
  DfsChooser dfs;
  PorController broken(dfs, Fault::MergeOrder);
  std::vector<std::uint32_t> order;
  broken.order_merge(1, ops, order);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 0}));
  // order_round is unaffected by the merge fault.
  DfsChooser dfs2;
  PorController round_side(dfs2, Fault::MergeOrder);
  round_side.order_round(0, 1, ops, order);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1}));
}

}  // namespace
}  // namespace mpps::mc
