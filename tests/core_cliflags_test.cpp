// The CLI's usage text is generated from the flag table in cli.cpp, and
// this suite closes the loop the old hand-maintained usage blob could
// not: every command/flag pair the table documents is actually invoked
// once and must not be rejected as unknown, and undeclared flags must be
// usage errors (exit 2) on every command.
#include "src/core/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

namespace mpps::core {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun cli(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

/// Shared fixture: a tiny program file and a trace recorded from it, in
/// a per-process scratch directory (ctest runs suites concurrently).
class CliFlags : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(
        (std::filesystem::path(::testing::TempDir()) /
         ("cli_flags." + std::to_string(::getpid())))
            .string());
    std::filesystem::create_directories(*dir_);
    program_ = new std::string(*dir_ + "/flags.ops");
    std::ofstream ops(*program_);
    ops << "(make machine ^state s1)\n"
           "(p step1 (machine ^state s1) --> (modify 1 ^state s2))\n"
           "(p step2 (machine ^state s2) --> (halt))\n";
    ops.close();
    trace_ = new std::string(*dir_ + "/flags.trace");
    const CliRun r = cli({"trace", *program_, "-o", *trace_});
    ASSERT_EQ(r.code, 0) << r.err;
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    delete program_;
    delete trace_;
    dir_ = program_ = trace_ = nullptr;
  }

  /// The operand a command needs, plus flags that keep it fast.
  static std::vector<std::string> base_invocation(const CliCommand& cmd) {
    std::vector<std::string> args{cmd.name};
    if (cmd.operand.find(".ops") != std::string::npos) {
      args.push_back(*program_);
    } else if (cmd.operand.find(".trace") != std::string::npos) {
      args.push_back(*trace_);
    }
    if (cmd.name == "selfcheck") {
      args.insert(args.end(), {"--rounds", "2"});
    }
    if (cmd.name == "slice") {
      // The fixture trace has 2 cycles; the default --cycles 4 would be
      // out of range, which is a runtime error rather than a flag issue.
      args.insert(args.end(), {"--cycles", "1"});
    }
    return args;
  }

  /// Output-path samples must not collide across parallel test runs, so
  /// path-valued flags get per-fixture scratch paths instead of their
  /// table samples.
  static std::string sample_for(const CliCommand& cmd, const CliFlag& flag) {
    if (flag.name == "-o") {
      return cmd.name == "sections" ? *dir_ : *dir_ + "/o_" + cmd.name;
    }
    if (flag.name == "--trace-out") return *dir_ + "/" + cmd.name + ".t.json";
    if (flag.name == "--metrics-out") return *dir_ + "/" + cmd.name + ".m.csv";
    return flag.sample;
  }

  static std::string* dir_;
  static std::string* program_;
  static std::string* trace_;
};

std::string* CliFlags::dir_ = nullptr;
std::string* CliFlags::program_ = nullptr;
std::string* CliFlags::trace_ = nullptr;

TEST_F(CliFlags, EveryDocumentedFlagIsAccepted) {
  for (const CliCommand& cmd : cli_commands()) {
    for (const CliFlag& flag : cmd.flags) {
      std::vector<std::string> args = base_invocation(cmd);
      args.push_back(flag.name);
      if (!flag.value_name.empty()) {
        ASSERT_FALSE(flag.sample.empty())
            << cmd.name << " " << flag.name << ": value flag needs a sample";
        args.push_back(sample_for(cmd, flag));
      }
      if (flag.name == "--profile" || flag.name == "--match-batch" ||
          flag.name == "--match-mailbox") {
        // These configure the parallel engine, so each is a usage error
        // without --match-threads.
        args.insert(args.end(), {"--match-threads", "2"});
      }
      if (flag.name == "--replay") {
        // A schedule ID only means something relative to one scenario.
        args.insert(args.end(), {"--scenario", "fused-add-delete"});
      }
      if (flag.name == "--net-dims") {
        // Geometry flags are usage errors on a non-matching topology.
        args.insert(args.end(), {"--net", "mesh"});
      }
      if (flag.name == "--net-arity" || flag.name == "--net-levels") {
        args.insert(args.end(), {"--net", "fattree"});
      }
      const CliRun r = cli(args);
      EXPECT_EQ(r.err.find("unknown flag"), std::string::npos)
          << cmd.name << " rejected documented flag " << flag.name << ": "
          << r.err;
      EXPECT_EQ(r.code, 0) << cmd.name << " " << flag.name << " failed: "
                           << r.err;
    }
  }
}

TEST_F(CliFlags, EveryDocumentedFlagAppearsInUsage) {
  const std::string usage = cli_usage();
  for (const CliCommand& cmd : cli_commands()) {
    EXPECT_NE(usage.find("  " + cmd.name), std::string::npos) << cmd.name;
    for (const CliFlag& flag : cmd.flags) {
      EXPECT_NE(usage.find(flag.name), std::string::npos)
          << cmd.name << " " << flag.name;
    }
  }
}

TEST_F(CliFlags, UnknownFlagIsUsageErrorOnEveryCommand) {
  for (const CliCommand& cmd : cli_commands()) {
    std::vector<std::string> args = base_invocation(cmd);
    args.push_back("--no-such-flag");
    const CliRun r = cli(args);
    EXPECT_EQ(r.code, 2) << cmd.name << ": " << r.err;
    EXPECT_NE(r.err.find("unknown flag"), std::string::npos)
        << cmd.name << ": " << r.err;
  }
}

TEST_F(CliFlags, MissingFlagValueIsUsageError) {
  const CliRun r = cli({"simulate", *trace_, "--procs"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--procs"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("needs a value"), std::string::npos) << r.err;
}

TEST_F(CliFlags, StrayPositionalIsUsageError) {
  const CliRun extra = cli({"simulate", *trace_, "another.trace"});
  EXPECT_EQ(extra.code, 2);
  EXPECT_NE(extra.err.find("unexpected argument"), std::string::npos)
      << extra.err;
  const CliRun operandless = cli({"selfcheck", "file.trace"});
  EXPECT_EQ(operandless.code, 2);
}

TEST_F(CliFlags, UniformConventionsAcrossSubcommands) {
  // The unification contract: run/stats/simulate/sweep all accept the
  // same --procs comma-list, --jobs, and --trace-out/--metrics-out pair.
  for (const char* name : {"run", "stats", "simulate", "sweep"}) {
    const auto cmds = cli_commands();
    const auto it = std::find_if(
        cmds.begin(), cmds.end(),
        [&](const CliCommand& c) { return c.name == name; });
    ASSERT_NE(it, cmds.end()) << name;
    for (const char* flag :
         {"--procs", "--jobs", "--trace-out", "--metrics-out"}) {
      const bool found = std::any_of(
          it->flags.begin(), it->flags.end(),
          [&](const CliFlag& f) { return f.name == flag; });
      EXPECT_TRUE(found) << name << " is missing " << flag;
    }
  }
}

TEST_F(CliFlags, StatsAcceptsProcsListAndJobs) {
  const CliRun r = cli({"stats", *trace_, "--procs", "2,4", "--jobs", "2",
                        "--top", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("simulated run summary (2 match processors)"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("simulated run summary (4 match processors)"),
            std::string::npos)
      << r.out;
}

TEST_F(CliFlags, RunMatchThreadsPrintsMeasuredSkew) {
  const CliRun r = cli({"run", *program_, "--match-threads", "2", "--quiet"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("parallel match: 2 workers"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("measured busy skew:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("outcome: halted"), std::string::npos) << r.out;
}

TEST_F(CliFlags, RunMatchThreadsWithSimulatedReplay) {
  // Measured skew (live parallel engine) and simulated skew (trace
  // replay) side by side in one invocation.
  const CliRun r = cli({"run", *program_, "--quiet", "--match-threads", "2",
                        "--match-assign", "random", "--seed", "3",
                        "--procs", "2,4", "--jobs", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("measured busy skew:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("simulated 2 match processors"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("simulated 4 match processors"), std::string::npos)
      << r.out;
}

TEST_F(CliFlags, RunMatchBatchFusesPhases) {
  const CliRun r = cli({"run", *program_, "--quiet", "--match-threads", "2",
                        "--match-batch", "8", "--match-mailbox", "64"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("parallel match: 2 workers"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("BSP phases covering"), std::string::npos) << r.out;
}

TEST_F(CliFlags, MatchBatchRequiresMatchThreads) {
  for (const char* flag : {"--match-batch", "--match-mailbox"}) {
    const CliRun r = cli({"run", *program_, flag, "4"});
    EXPECT_EQ(r.code, 2) << flag << ": " << r.err;
    EXPECT_NE(r.err.find("requires --match-threads"), std::string::npos)
        << flag << ": " << r.err;
  }
}

TEST_F(CliFlags, MatchBatchRejectsNonPositiveValues) {
  // Zero used to be silently coerced downstream (the Mailbox(0) bug);
  // now every invalid size is a usage error at the CLI boundary.
  for (const char* flag : {"--match-batch", "--match-mailbox"}) {
    for (const char* bad : {"0", "-3", "abc", "4x"}) {
      const CliRun r =
          cli({"run", *program_, "--match-threads", "2", flag, bad});
      EXPECT_EQ(r.code, 2) << flag << "=" << bad << ": " << r.err;
      EXPECT_NE(r.err.find("not a positive integer"), std::string::npos)
          << flag << "=" << bad << ": " << r.err;
    }
  }
}

TEST_F(CliFlags, SweepAcceptsTraceOut) {
  const std::string timeline = *dir_ + "/sweep_timeline.json";
  const CliRun r = cli({"sweep", *trace_, "--procs", "2", "--runs", "1",
                        "--trace-out", timeline});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(timeline);
  EXPECT_TRUE(f.good()) << timeline;
}

}  // namespace
}  // namespace mpps::core
