// The topology-aware network models: hand-computed hop counts, routing
// attribution, fat-tree uplink contention, the broadcast single-flood
// charge, geometry validation, and proof that the planted
// free-remote-hop fault is caught by the net-hop-latency invariant law
// and by the reference engine.
#include "src/sim/network.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "src/common/error.hpp"
#include "src/sim/invariants.hpp"
#include "src/sim/refsim.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"
#include "src/trace/synth.hpp"

namespace mpps::sim {
namespace {

NetworkConfig grid(NetKind kind, std::vector<std::uint32_t> dims) {
  NetworkConfig net;
  net.kind = kind;
  net.dims = std::move(dims);
  net.hop_latency = SimTime::ns(100);
  return net;
}

TEST(Network, ConstantIsOneHopForEveryRemotePair) {
  CostModel costs;  // wire_latency 0.5 us
  NetworkConfig net;  // constant, hop_latency 0 => wire latency
  const auto model = make_network(net, costs, 9);
  EXPECT_EQ(model->hops(3, 3), 0u);
  EXPECT_EQ(model->hops(0, 8), 1u);
  EXPECT_EQ(model->latency(3, 3), SimTime{});
  EXPECT_EQ(model->latency(0, 8), SimTime::half_us(1));
  const NetCharge charge = model->cost(0, 8, SimTime::us(7));
  EXPECT_EQ(charge.departure_delay, SimTime{});
  EXPECT_EQ(charge.latency, SimTime::half_us(1));
  ASSERT_EQ(model->stats().links.size(), 1u);  // the single shared wire
  EXPECT_EQ(model->stats().links[0].messages, 1u);
}

TEST(Network, MeshHopCountIsManhattanOverMixedRadixCoords) {
  const auto model = make_network(grid(NetKind::Mesh, {3, 3}), CostModel{}, 9);
  // Node n has coords (n % 3, n / 3): 0=(0,0), 4=(1,1), 8=(2,2).
  EXPECT_EQ(model->hops(0, 8), 4u);
  EXPECT_EQ(model->hops(0, 4), 2u);
  EXPECT_EQ(model->hops(1, 5), 2u);  // (1,0) -> (2,1)
  EXPECT_EQ(model->hops(6, 2), 4u);  // (0,2) -> (2,0)
  EXPECT_EQ(model->hops(8, 0), model->hops(0, 8));  // symmetric
  EXPECT_EQ(model->hops(5, 5), 0u);
  EXPECT_EQ(model->latency(0, 8), SimTime::ns(400));
}

TEST(Network, TorusWrapsEachDimension) {
  const auto ring = make_network(grid(NetKind::Torus, {4}), CostModel{}, 4);
  EXPECT_EQ(ring->hops(0, 3), 1u);  // around the back
  EXPECT_EQ(ring->hops(0, 2), 2u);  // tie: both ways are 2
  const auto torus =
      make_network(grid(NetKind::Torus, {3, 3}), CostModel{}, 9);
  EXPECT_EQ(torus->hops(0, 2), 1u);  // (0,0) -> (2,0) wraps
  EXPECT_EQ(torus->hops(0, 8), 2u);  // (0,0) -> (2,2) wraps both dims
}

TEST(Network, TorusNeverExceedsMeshOnTheSameGeometry) {
  const auto mesh =
      make_network(grid(NetKind::Mesh, {3, 4}), CostModel{}, 12);
  const auto torus =
      make_network(grid(NetKind::Torus, {3, 4}), CostModel{}, 12);
  for (std::uint32_t a = 0; a < 12; ++a) {
    for (std::uint32_t b = 0; b < 12; ++b) {
      EXPECT_LE(torus->hops(a, b), mesh->hops(a, b)) << a << "->" << b;
    }
  }
}

TEST(Network, MeshRoutingAttributesEachDirectedLinkOnce) {
  const auto model = make_network(grid(NetKind::Mesh, {3, 3}), CostModel{}, 9);
  model->cost(0, 8, SimTime{});
  // Dimension-order: 0 -> 1 -> 2 (dim 0), then 2 -> 5 -> 8 (dim 1).
  // Link id = (node * ndims + dim) * 2 + direction (0 = increasing).
  const NetStats& stats = model->stats();
  EXPECT_EQ(stats.links[(0 * 2 + 0) * 2 + 0].messages, 1u);  // n0+d0
  EXPECT_EQ(stats.links[(1 * 2 + 0) * 2 + 0].messages, 1u);  // n1+d0
  EXPECT_EQ(stats.links[(2 * 2 + 1) * 2 + 0].messages, 1u);  // n2+d1
  EXPECT_EQ(stats.links[(5 * 2 + 1) * 2 + 0].messages, 1u);  // n5+d1
  std::uint64_t crossed = 0;
  for (const NetLinkStats& link : stats.links) crossed += link.messages;
  EXPECT_EQ(crossed, 4u);  // exactly the route, nothing else
  EXPECT_EQ(net_link_name(stats, (1 * 2 + 0) * 2 + 0), "n1+d0");
  EXPECT_EQ(net_link_name(stats, (2 * 2 + 1) * 2 + 1), "n2-d1");
}

TEST(Network, FatTreeDistanceIsTwiceTheCommonAncestorLevel) {
  NetworkConfig net;
  net.kind = NetKind::FatTree;
  net.arity = 2;
  net.levels = 2;
  net.hop_latency = SimTime::ns(100);
  const auto model = make_network(net, CostModel{}, 4);
  EXPECT_EQ(model->hops(0, 0), 0u);
  EXPECT_EQ(model->hops(0, 1), 2u);  // siblings: one switch up, one down
  EXPECT_EQ(model->hops(2, 3), 2u);
  EXPECT_EQ(model->hops(0, 2), 4u);  // across the root
  EXPECT_EQ(model->hops(1, 3), 4u);
  EXPECT_EQ(model->latency(0, 2), SimTime::ns(400));
}

TEST(Network, FatTreeUplinkSerializesSameSourceInjections) {
  NetworkConfig net;
  net.kind = NetKind::FatTree;
  net.arity = 2;
  net.hop_latency = SimTime::ns(100);
  const auto model = make_network(net, CostModel{}, 4);
  const SimTime t = SimTime::us(1);
  const NetCharge first = model->cost(1, 2, t);
  EXPECT_EQ(first.departure_delay, SimTime{});
  EXPECT_EQ(first.latency, SimTime::ns(400));
  // Same source, same ready time: waits one hop for the uplink.
  const NetCharge second = model->cost(1, 3, t);
  EXPECT_EQ(second.departure_delay, SimTime::ns(100));
  // A different source is unaffected.
  const NetCharge other = model->cost(2, 1, t);
  EXPECT_EQ(other.departure_delay, SimTime{});
  EXPECT_EQ(model->stats().total_delay, SimTime::ns(100));
  EXPECT_EQ(model->stats().links[1].messages, 2u);  // leaf 1's uplink
}

TEST(Network, FloodChargesTheFarthestRouteOnce) {
  const auto model = make_network(grid(NetKind::Mesh, {3, 3}), CostModel{}, 9);
  const SimTime charged = model->charge_flood(0, 8);
  EXPECT_EQ(charged, SimTime::ns(400));
  EXPECT_EQ(model->stats().messages, 1u);
  EXPECT_EQ(model->stats().total_latency, SimTime::ns(400));
}

TEST(Network, HardwareBroadcastIsChargedOncePerCycle) {
  // Weaver, 8 processors, run 1: 263 routed messages over 4 cycles.
  // Hardware broadcast charges ONE 0.5 us flood per cycle:
  //   (263 + 4) x 500 ns = 133500 ns.
  // Serialized broadcast sends 8 unicasts per cycle instead:
  //   (263 + 32) x 500 ns = 147500 ns.
  const trace::Trace trace = trace::make_weaver_section();
  SimConfig config;
  config.match_processors = 8;
  config.costs = CostModel::paper_run(1);
  const Assignment assignment =
      Assignment::round_robin(trace.num_buckets, config.partitions());

  config.costs.hardware_broadcast = true;
  const SimResult hw = simulate(trace, config, assignment);
  EXPECT_EQ(hw.network_busy.nanos(), 133500);
  EXPECT_EQ(hw.net.messages, 267u);

  config.costs.hardware_broadcast = false;
  const SimResult serial = simulate(trace, config, assignment);
  EXPECT_EQ(serial.network_busy.nanos(), 147500);
  EXPECT_EQ(serial.net.messages, 295u);
}

TEST(Network, AutoGeometryCoversTheMachine) {
  NetworkConfig net;
  net.kind = NetKind::Mesh;
  const std::vector<std::uint32_t> nine = resolved_dims(net, 9);
  ASSERT_EQ(nine.size(), 2u);
  EXPECT_GE(nine[0] * nine[1], 9u);
  EXPECT_LE(nine[0] * nine[1], 16u);  // near-square, not degenerate
  const std::vector<std::uint32_t> twenty_one = resolved_dims(net, 21);
  EXPECT_GE(twenty_one[0] * twenty_one[1], 21u);

  NetworkConfig tree;
  tree.kind = NetKind::FatTree;
  tree.arity = 2;
  EXPECT_EQ(resolved_levels(tree, 9), 4u);   // 2^4 = 16 >= 9
  EXPECT_EQ(resolved_levels(tree, 16), 4u);
  EXPECT_EQ(resolved_levels(tree, 17), 5u);
  tree.arity = 3;
  EXPECT_EQ(resolved_levels(tree, 9), 2u);
}

TEST(Network, InvalidGeometryThrows) {
  CostModel costs;
  EXPECT_THROW(make_network(grid(NetKind::Mesh, {2, 2}), costs, 9),
               RuntimeError);
  EXPECT_THROW(make_network(grid(NetKind::Torus, {0, 4}), costs, 2),
               RuntimeError);
  NetworkConfig tree;
  tree.kind = NetKind::FatTree;
  tree.arity = 1;
  EXPECT_THROW(make_network(tree, costs, 4), RuntimeError);
  tree.arity = 2;
  tree.levels = 2;  // 4 leaves < 5 nodes
  EXPECT_THROW(make_network(tree, costs, 5), RuntimeError);
}

TEST(Network, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_net_kind("constant"), NetKind::Constant);
  EXPECT_EQ(parse_net_kind("mesh"), NetKind::Mesh);
  EXPECT_EQ(parse_net_kind("torus"), NetKind::Torus);
  EXPECT_EQ(parse_net_kind("fattree"), NetKind::FatTree);
  EXPECT_EQ(parse_net_kind("fat-tree"), NetKind::FatTree);
  EXPECT_THROW(parse_net_kind("hypercube"), RuntimeError);
  for (const NetKind kind : {NetKind::Constant, NetKind::Mesh, NetKind::Torus,
                             NetKind::FatTree}) {
    EXPECT_EQ(parse_net_kind(net_kind_name(kind)), kind);
  }
}

TEST(Network, StatsAggregatesAreConsistent) {
  const auto model = make_network(grid(NetKind::Mesh, {3, 3}), CostModel{}, 9);
  model->cost(0, 8, SimTime{});  // 4 hops
  model->cost(0, 1, SimTime{});  // 1 hop
  model->cost(4, 4, SimTime{});  // local, 0 hops
  const NetStats& stats = model->stats();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_hops(), 5.0 / 3.0);
  EXPECT_EQ(stats.max_hops(), 4u);
  EXPECT_EQ(stats.total_latency, SimTime::ns(500));
  const std::size_t hot = stats.hottest_link();
  ASSERT_LT(hot, stats.links.size());
  EXPECT_EQ(hot, (0 * 2 + 0) * 2 + 0u);  // n0+d0 carried both messages
  EXPECT_EQ(stats.links[hot].messages, 2u);
}

TEST(Network, FreeRemoteHopFaultIsCaughtByTheHopLatencyLaw) {
  const trace::Trace trace = trace::make_weaver_section();
  SimConfig config;
  config.match_processors = 4;
  config.costs = CostModel::paper_run(2);
  config.network = grid(NetKind::Mesh, {3, 2});
  const Assignment assignment =
      Assignment::round_robin(trace.num_buckets, config.partitions());

  const InvariantReport clean = check_run_invariants(
      trace, config, simulate(trace, config, assignment));
  EXPECT_TRUE(clean.ok()) << clean.summary();

  config.network.free_remote_hop_fault = true;
  const SimResult faulted = simulate(trace, config, assignment);
  const InvariantReport report =
      check_run_invariants(trace, config, faulted);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("net-hop-latency"), std::string::npos)
      << report.summary();

  // The reference engine (which keeps the true model) disagrees too.
  config.network.free_remote_hop_fault = false;
  const SimResult ref = ref_simulate(trace, config, assignment);
  EXPECT_FALSE(describe_divergence(faulted, ref).empty());
}

TEST(Network, DescribeNamesTheGeometry) {
  NetworkConfig net;
  EXPECT_EQ(net.describe(), "constant");
  net.kind = NetKind::Mesh;
  EXPECT_EQ(net.describe(), "mesh auto");
  net.dims = {4, 4};
  EXPECT_EQ(net.describe(), "mesh 4x4");
  net.kind = NetKind::Torus;
  net.dims = {3, 3, 4};
  EXPECT_EQ(net.describe(), "torus 3x3x4");
  net.kind = NetKind::FatTree;
  net.arity = 2;
  net.levels = 3;
  EXPECT_EQ(net.describe(), "fat-tree a2 l3");
}

TEST(Network, ConfigEqualityDistinguishesEveryTopologyField) {
  const NetworkConfig base;
  NetworkConfig other = base;
  EXPECT_TRUE(base == other);
  other.kind = NetKind::Mesh;
  EXPECT_FALSE(base == other);
  other = base;
  other.dims = {4, 4};
  EXPECT_FALSE(base == other);
  other = base;
  other.arity = 3;
  EXPECT_FALSE(base == other);
  other = base;
  other.levels = 2;
  EXPECT_FALSE(base == other);
  other = base;
  other.hop_latency = SimTime::ns(100);
  EXPECT_FALSE(base == other);
  other = base;
  other.free_remote_hop_fault = true;
  EXPECT_FALSE(base == other);
}

TEST(Network, IdleStatsHaveNoHotLinkAndZeroAverages) {
  const auto model = make_network(grid(NetKind::Mesh, {3, 3}), CostModel{}, 9);
  const NetStats& stats = model->stats();
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.hottest_link(), SIZE_MAX);
  EXPECT_DOUBLE_EQ(stats.avg_hops(), 0.0);
  EXPECT_EQ(stats.max_hops(), 0u);
}

TEST(Network, ThreeDimensionalMeshRoutes) {
  // Node n in a 2x3x2 mesh has coords (n % 2, (n / 2) % 3, n / 6).
  const auto model =
      make_network(grid(NetKind::Mesh, {2, 3, 2}), CostModel{}, 12);
  EXPECT_EQ(model->hops(0, 11), 1u + 2u + 1u);  // (0,0,0) -> (1,2,1)
  EXPECT_EQ(model->hops(5, 6), 1u + 2u + 1u);   // (1,2,0) -> (0,0,1)
  EXPECT_EQ(model->latency(0, 11), SimTime::ns(400));
  model->cost(0, 11, SimTime{});
  std::uint64_t crossed = 0;
  for (const NetLinkStats& link : model->stats().links)
    crossed += link.messages;
  EXPECT_EQ(crossed, 4u);  // one traversal per hop of the route
}

TEST(Network, TorusWrapRouteUsesTheBackLink) {
  const auto ring = make_network(grid(NetKind::Torus, {4}), CostModel{}, 4);
  ring->cost(0, 3, SimTime{});
  // The shorter way from 0 to 3 is the decreasing direction: one hop
  // over node 0's down link (id = (0*1+0)*2 + 1).
  EXPECT_EQ(ring->stats().links[1].messages, 1u);
  // A tie (distance 2 both ways) goes the increasing direction, matching
  // hops(): 0 -> 1 -> 2 over the up links of nodes 0 and 1.
  ring->cost(0, 2, SimTime{});
  EXPECT_EQ(ring->stats().links[0].messages, 1u);
  EXPECT_EQ(ring->stats().links[2].messages, 1u);
}

TEST(Network, SerializedBroadcastRoutesPerDestinationOnAMesh) {
  const trace::Trace trace = trace::make_weaver_section();
  SimConfig config;
  config.match_processors = 8;
  config.costs = CostModel::paper_run(1);
  config.network = grid(NetKind::Mesh, {3, 3});
  const Assignment assignment =
      Assignment::round_robin(trace.num_buckets, config.partitions());

  config.costs.hardware_broadcast = true;
  const SimResult hw = simulate(trace, config, assignment);
  config.costs.hardware_broadcast = false;
  const SimResult serial = simulate(trace, config, assignment);

  // Hardware mode floods once per cycle; serialized mode routes one
  // unicast per match processor per cycle.
  const std::uint64_t cycles = trace.cycles.size();
  EXPECT_EQ(serial.net.messages, hw.net.messages + (8 - 1) * cycles);
  EXPECT_GE(serial.network_busy.nanos(), hw.network_busy.nanos());
  EXPECT_GE(serial.makespan.nanos(), hw.makespan.nanos());
}

TEST(Network, FatTreeSpacedInjectionsDoNotContend) {
  NetworkConfig net;
  net.kind = NetKind::FatTree;
  net.arity = 2;
  net.hop_latency = SimTime::ns(100);
  const auto model = make_network(net, CostModel{}, 4);
  // Injections spaced by at least one hop time find the uplink free.
  EXPECT_EQ(model->cost(1, 2, SimTime::us(1)).departure_delay, SimTime{});
  EXPECT_EQ(model->cost(1, 3, SimTime::us(2)).departure_delay, SimTime{});
  EXPECT_EQ(model->cost(1, 0, SimTime::us(3)).departure_delay, SimTime{});
  EXPECT_EQ(model->stats().total_delay, SimTime{});
}

TEST(Network, FaultIsInvisibleOnTheFlatWire) {
  // Every constant-network route is at most one hop, so capping the
  // charge at one hop changes nothing — the fault only exists on
  // multi-hop topologies, which is why the selfcheck must randomize them.
  const trace::Trace trace = trace::make_weaver_section();
  SimConfig config;
  config.match_processors = 4;
  config.costs = CostModel::paper_run(2);
  const Assignment assignment =
      Assignment::round_robin(trace.num_buckets, config.partitions());
  const SimResult clean = simulate(trace, config, assignment);
  config.network.free_remote_hop_fault = true;
  const SimResult faulted = simulate(trace, config, assignment);
  EXPECT_TRUE(describe_divergence(faulted, clean).empty());
}

}  // namespace
}  // namespace mpps::sim
