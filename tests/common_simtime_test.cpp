#include "src/common/simtime.hpp"

#include <gtest/gtest.h>

namespace mpps {
namespace {

TEST(SimTime, MicrosecondConstruction) {
  EXPECT_EQ(SimTime::us(32).nanos(), 32000);
  EXPECT_DOUBLE_EQ(SimTime::us(32).micros(), 32.0);
}

TEST(SimTime, HalfMicrosecondIsExact) {
  EXPECT_EQ(SimTime::half_us(1).nanos(), 500);
  EXPECT_DOUBLE_EQ(SimTime::half_us(1).micros(), 0.5);
  EXPECT_EQ(SimTime::half_us(2), SimTime::us(1));
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::us(30);
  const SimTime b = SimTime::us(16);
  EXPECT_EQ((a + b).nanos(), 46000);
  EXPECT_EQ((a - b).nanos(), 14000);
  EXPECT_EQ((b * 3).nanos(), 48000);
  EXPECT_EQ((3 * b), b * 3);
}

TEST(SimTime, CompoundAdd) {
  SimTime t;
  t += SimTime::us(5);
  t += SimTime::half_us(1);
  EXPECT_EQ(t.nanos(), 5500);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::us(1), SimTime::us(2));
  EXPECT_LE(SimTime::us(2), SimTime::us(2));
  EXPECT_GT(SimTime::us(3), SimTime::half_us(5));
}

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t, kZeroTime);
  EXPECT_EQ(t.nanos(), 0);
}

TEST(SimTime, PaperCostModelSumsExactly) {
  // One left activation generating 3 successors: 32 + 3*16 = 80 us.
  const SimTime t = SimTime::us(32) + 3 * SimTime::us(16);
  EXPECT_EQ(t, SimTime::us(80));
}

}  // namespace
}  // namespace mpps
