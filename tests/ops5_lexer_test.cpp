#include "src/ops5/lexer.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace mpps::ops5 {
namespace {

std::vector<TokenKind> kinds(std::string_view src) {
  std::vector<TokenKind> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, Parens) {
  EXPECT_EQ(kinds("()"),
            (std::vector<TokenKind>{TokenKind::LParen, TokenKind::RParen,
                                    TokenKind::End}));
}

TEST(Lexer, AtomsAndNumbers) {
  const auto toks = lex("block 42 -7 3.5 b1");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, TokenKind::Atom);
  EXPECT_EQ(toks[0].text, "block");
  EXPECT_EQ(toks[1].kind, TokenKind::Integer);
  EXPECT_EQ(toks[1].int_value, 42);
  EXPECT_EQ(toks[2].kind, TokenKind::Integer);
  EXPECT_EQ(toks[2].int_value, -7);
  EXPECT_EQ(toks[3].kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 3.5);
  EXPECT_EQ(toks[4].kind, TokenKind::Atom);
}

TEST(Lexer, Variables) {
  const auto toks = lex("<x> <block2>");
  EXPECT_EQ(toks[0].kind, TokenKind::Variable);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].kind, TokenKind::Variable);
  EXPECT_EQ(toks[1].text, "block2");
}

TEST(Lexer, AttributeMarkersStayInAtom) {
  const auto toks = lex("^color blue");
  EXPECT_EQ(toks[0].kind, TokenKind::Atom);
  EXPECT_EQ(toks[0].text, "^color");
}

TEST(Lexer, Predicates) {
  const auto toks = lex("= <> < <= > >=");
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(toks[static_cast<std::size_t>(i)].kind, TokenKind::Pred)
        << "token " << i;
  }
  EXPECT_EQ(toks[1].text, "<>");
  EXPECT_EQ(toks[3].text, "<=");
}

TEST(Lexer, ArrowAndMinus) {
  const auto toks = lex("--> -");
  EXPECT_EQ(toks[0].kind, TokenKind::Arrow);
  EXPECT_EQ(toks[1].kind, TokenKind::Minus);
}

TEST(Lexer, MinusBeforeParenIsNegation) {
  const auto toks = lex("-(block)");
  EXPECT_EQ(toks[0].kind, TokenKind::Minus);
  EXPECT_EQ(toks[1].kind, TokenKind::LParen);
  EXPECT_EQ(toks[2].kind, TokenKind::Atom);
}

TEST(Lexer, DisjunctionMarkers) {
  const auto toks = lex("<< red blue >>");
  EXPECT_EQ(toks[0].kind, TokenKind::DoubleLt);
  EXPECT_EQ(toks[3].kind, TokenKind::DoubleGt);
}

TEST(Lexer, BracesForConjunctiveTests) {
  const auto toks = lex("{ > 2 < 10 }");
  EXPECT_EQ(toks[0].kind, TokenKind::LBrace);
  EXPECT_EQ(toks.back().kind, TokenKind::End);
  EXPECT_EQ(toks[toks.size() - 2].kind, TokenKind::RBrace);
}

TEST(Lexer, CommentsIgnored) {
  const auto toks = lex("a ; this is a comment\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, QuotedAtoms) {
  const auto toks = lex("|hello world| x");
  EXPECT_EQ(toks[0].kind, TokenKind::Atom);
  EXPECT_EQ(toks[0].text, "hello world");
}

TEST(Lexer, UnterminatedQuoteThrows) {
  EXPECT_THROW(lex("|oops"), ParseError);
}

TEST(Lexer, LineAndColumnTracking) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, HyphenatedAtoms) {
  const auto toks = lex("clear-the-blue-block");
  EXPECT_EQ(toks[0].kind, TokenKind::Atom);
  EXPECT_EQ(toks[0].text, "clear-the-blue-block");
}

}  // namespace
}  // namespace mpps::ops5
