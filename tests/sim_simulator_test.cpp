#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "src/common/error.hpp"
#include "src/trace/record.hpp"
#include "src/trace/synth.hpp"

namespace mpps::sim {
namespace {

using trace::SectionBuilder;
using trace::Side;
using trace::Trace;

/// One right root (bucket 0) generating one left child (bucket 1) that
/// produces one instantiation.
Trace chain_trace() {
  SectionBuilder b("chain", 4);
  b.begin_cycle(1);
  const auto root = b.root_at(Side::Right, NodeId{1}, 0, 0);
  const auto child = b.child_at(root, NodeId{2}, 1, 0);
  b.add_instantiations(child);
  return b.take();
}

TEST(Simulator, BaselineMatchesHandComputation) {
  // 30 (constant tests) + [16 + 16] (right root + one successor)
  //                     + [32 + 16] (left child + one instantiation token)
  EXPECT_EQ(baseline_time(chain_trace()), SimTime::us(110));
}

TEST(Simulator, ZeroOverheadChainIsSerialAcrossTwoProcs) {
  SimConfig config;
  config.match_processors = 2;
  config.costs = CostModel::zero_overhead();
  const auto result = simulate(chain_trace(), config,
                               Assignment::round_robin(4, 2));
  // The chain has no parallelism: same 110 us even on two processors.
  EXPECT_EQ(result.makespan, SimTime::us(110));
  EXPECT_DOUBLE_EQ(speedup(chain_trace(), config,
                           Assignment::round_robin(4, 2)),
                   1.0);
}

TEST(Simulator, OverheadScheduleMatchesHandComputation) {
  // Run 2 (send 5, recv 3, latency 0.5), 2 processors, hardware broadcast:
  //  t=5.0   broadcast departs;   t=5.5 arrival at both procs
  //  t=8.5   recv done;           t=38.5 constant tests done
  //  proc0: root 16 → 54.5; successor 16 → 70.5; send 5 → 75.5
  //  wire:   arrival at proc1 at 76.0; recv 3 → 79.0
  //  proc1: left add 32 → 111.0; instantiation token 16 → 127.0;
  //         send 5 → 132.0; control receives at 132.5, recv 3 → 135.5
  SimConfig config;
  config.match_processors = 2;
  config.costs = CostModel::paper_run(2);
  const auto result =
      simulate(chain_trace(), config, Assignment::round_robin(4, 2));
  EXPECT_EQ(result.makespan, SimTime::half_us(271));  // 135.5 us
  EXPECT_EQ(result.messages, 2u);  // child + instantiation
}

TEST(Simulator, LocalBucketExchangesNoMessage) {
  SimConfig config;
  config.match_processors = 1;
  config.costs = CostModel::paper_run(4);
  config.charge_instantiation_messages = false;
  const auto result =
      simulate(chain_trace(), config, Assignment::round_robin(4, 1));
  EXPECT_EQ(result.messages, 0u);
  EXPECT_EQ(result.local_deliveries, 1u);
}

TEST(Simulator, OverheadNeverSpeedsThingsUp) {
  const Trace t = trace::make_weaver_section(64, 5);
  for (std::uint32_t procs : {2u, 8u, 32u}) {
    SimTime prev{};
    for (int run = 1; run <= 4; ++run) {
      SimConfig config;
      config.match_processors = procs;
      config.costs = CostModel::paper_run(run);
      const auto result =
          simulate(t, config, Assignment::round_robin(64, procs));
      EXPECT_GE(result.makespan, prev)
          << "procs " << procs << " run " << run;
      prev = result.makespan;
    }
  }
}

TEST(Simulator, SpeedupBoundedByProcessorCount) {
  const Trace t = trace::make_rubik_section(128, 9);
  for (std::uint32_t procs : {2u, 4u, 16u}) {
    SimConfig config;
    config.match_processors = procs;
    config.costs = CostModel::zero_overhead();
    const double s =
        speedup(t, config, Assignment::round_robin(128, procs));
    EXPECT_GT(s, 1.0);
    EXPECT_LE(s, static_cast<double>(procs) + 1e-9);
  }
}

TEST(Simulator, OneProcZeroOverheadEqualsActivationCostSum) {
  const Trace t = trace::make_weaver_section(64, 11);
  // Independent accounting of the serial time.
  std::int64_t expected_us = 0;
  for (const auto& cycle : t.cycles) {
    expected_us += 30;
    for (const auto& act : cycle.activations) {
      expected_us += act.side == Side::Left ? 32 : 16;
      expected_us += 16 * (act.successors + act.instantiations);
    }
  }
  EXPECT_EQ(baseline_time(t), SimTime::us(expected_us));
}

TEST(Simulator, DeterministicAcrossRuns) {
  const Trace t = trace::make_rubik_section(128, 13);
  SimConfig config;
  config.match_processors = 8;
  config.costs = CostModel::paper_run(3);
  const auto a = simulate(t, config, Assignment::round_robin(128, 8));
  const auto b = simulate(t, config, Assignment::round_robin(128, 8));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Simulator, PrecedenceRespected) {
  // A 3-deep chain across three processors cannot finish faster than the
  // sum of its stage costs, whatever the assignment.
  SectionBuilder b("deep", 8);
  b.begin_cycle(1);
  const auto r = b.root_at(Side::Right, NodeId{1}, 0, 0);
  const auto c1 = b.child_at(r, NodeId{2}, 1, 0);
  const auto c2 = b.child_at(c1, NodeId{3}, 2, 0);
  (void)c2;
  const Trace t = b.take();
  SimConfig config;
  config.match_processors = 3;
  config.costs = CostModel::zero_overhead();
  const auto result = simulate(t, config, Assignment::round_robin(8, 3));
  // 30 + (16+16) + (32+16) + 32 = 142 us of strictly ordered work.
  EXPECT_GE(result.makespan, SimTime::us(142));
}

TEST(Simulator, CyclesAreBarriers) {
  // Two one-activation cycles: the second cannot start before the first
  // ends, so the makespan is the sum of the cycle spans.
  SectionBuilder b("two", 8);
  b.begin_cycle(1);
  b.root_at(Side::Right, NodeId{1}, 0, 0);
  b.begin_cycle(1);
  b.root_at(Side::Right, NodeId{1}, 1, 0);
  const Trace t = b.take();
  SimConfig config;
  config.match_processors = 2;
  config.costs = CostModel::zero_overhead();
  const auto result = simulate(t, config, Assignment::round_robin(8, 2));
  EXPECT_EQ(result.makespan, SimTime::us(92));  // 2 × (30 + 16)
  ASSERT_EQ(result.cycles.size(), 2u);
  EXPECT_EQ(result.cycles[0].end, result.cycles[1].start);
}

TEST(Simulator, SerialBroadcastChargesControl) {
  // With enough processors, the serialized per-processor sends (20 us each
  // under Run 4) push the last processor's constant-test phase past the
  // hardware-broadcast critical path.
  SimConfig hw;
  hw.match_processors = 16;
  hw.costs = CostModel::paper_run(4);
  SimConfig serial = hw;
  serial.costs.hardware_broadcast = false;
  const Trace t = chain_trace();
  const auto a = simulate(t, hw, Assignment::round_robin(4, 16));
  const auto b = simulate(t, serial, Assignment::round_robin(4, 16));
  // 16 serialized 20 us sends (320 us) exceed the ~207.5 us critical path.
  EXPECT_GT(b.makespan, a.makespan);
}

TEST(Simulator, ResolveCostExtendsEveryCycle) {
  SimConfig config;
  config.match_processors = 1;
  config.costs = CostModel::zero_overhead();
  config.costs.resolve_cost = SimTime::us(100);
  const Trace t = trace::make_weaver_section(64, 17);
  const auto with = simulate(t, config, Assignment::round_robin(64, 1));
  EXPECT_EQ(with.makespan,
            baseline_time(t) +
                SimTime::us(100) * static_cast<std::int64_t>(t.cycles.size()));
}

TEST(Simulator, PerProcMetricsCoverAllActivations) {
  const Trace t = trace::make_rubik_section(128, 19);
  SimConfig config;
  config.match_processors = 16;
  config.costs = CostModel::zero_overhead();
  const auto result = simulate(t, config, Assignment::round_robin(128, 16));
  std::uint64_t acts = 0;
  std::uint64_t lefts = 0;
  for (const auto& cycle : result.cycles) {
    for (const auto& proc : cycle.procs) {
      acts += proc.activations;
      lefts += proc.left_activations;
    }
  }
  const auto stats = trace::compute_stats(t);
  EXPECT_EQ(acts, stats.total());
  EXPECT_EQ(lefts, stats.left);
}

TEST(Simulator, NetworkMostlyIdleAtNectarLatency) {
  // Section 5.1: at 0.5 us latency the network was 97-98% idle.
  const Trace t = trace::make_rubik_section(256, 21);
  SimConfig config;
  config.match_processors = 32;
  config.costs = CostModel::paper_run(1);  // 0.5 us latency, no overheads
  const auto result = simulate(t, config, Assignment::round_robin(256, 32));
  EXPECT_LT(result.network_utilization(), 0.05);
  EXPECT_GT(result.messages, 0u);
}

TEST(Simulator, UtilizationFractionsSane) {
  const Trace t = trace::make_weaver_section(64, 23);
  SimConfig config;
  config.match_processors = 8;
  config.costs = CostModel::paper_run(2);
  const auto result = simulate(t, config, Assignment::round_robin(64, 8));
  EXPECT_GT(result.avg_processor_utilization(), 0.0);
  EXPECT_LE(result.avg_processor_utilization(), 1.0);
}

TEST(Assignment, RoundRobinCoversAllProcs) {
  const auto a = Assignment::round_robin(16, 4);
  std::vector<int> counts(4, 0);
  for (std::uint32_t b = 0; b < 16; ++b) ++counts[a.proc_of(0, b)];
  for (int c : counts) EXPECT_EQ(c, 4);
}

TEST(Assignment, RandomIsDeterministicPerSeed) {
  const auto a = Assignment::random(64, 8, 5);
  const auto b = Assignment::random(64, 8, 5);
  const auto c = Assignment::random(64, 8, 6);
  bool same_ab = true;
  bool same_ac = true;
  for (std::uint32_t i = 0; i < 64; ++i) {
    same_ab &= a.proc_of(0, i) == b.proc_of(0, i);
    same_ac &= a.proc_of(0, i) == c.proc_of(0, i);
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(Assignment, PerCycleMapsSelectedByCycle) {
  const auto a = Assignment::per_cycle({{0u, 1u}, {1u, 0u}}, 2);
  EXPECT_EQ(a.proc_of(0, 0), 0u);
  EXPECT_EQ(a.proc_of(1, 0), 1u);
  EXPECT_EQ(a.proc_of(0, 1), 1u);
}

// Regression: a map entry >= num_procs used to slip through construction
// and index past the processor array inside the simulator (UB).  Both
// factories must reject it up front, naming the cycle, bucket and
// processor.
TEST(Assignment, FixedRejectsOutOfRangeProcessor) {
  try {
    Assignment::fixed({0u, 1u, 7u, 1u}, 2);
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bucket 2"), std::string::npos) << what;
    EXPECT_NE(what.find("processor 7"), std::string::npos) << what;
    EXPECT_NE(what.find("2 processors exist"), std::string::npos) << what;
  }
}

TEST(Assignment, PerCycleRejectsOutOfRangeProcessorNamingCycle) {
  try {
    Assignment::per_cycle({{0u, 1u}, {1u, 4u}}, 2);
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle 1"), std::string::npos) << what;
    EXPECT_NE(what.find("bucket 1"), std::string::npos) << what;
    EXPECT_NE(what.find("processor 4"), std::string::npos) << what;
  }
}

TEST(Assignment, InRangeMapsStillAccepted) {
  const auto fixed = Assignment::fixed({0u, 1u, 0u, 1u}, 2);
  EXPECT_EQ(fixed.proc_of(0, 2), 0u);
  const auto per_cycle = Assignment::per_cycle({{0u, 1u}}, 2);
  EXPECT_EQ(per_cycle.proc_of(5, 1), 1u);
}

/// A single-cycle trace whose second activation names `parent` as its
/// generating activation (the first activation has id 1).
Trace trace_with_parent_ref(std::uint64_t parent) {
  Trace t;
  t.name = "broken";
  t.num_buckets = 4;
  trace::TraceCycle cycle;
  cycle.wme_changes = 1;
  trace::TraceActivation root;
  root.id = ActivationId{1};
  root.parent = ActivationId::invalid();
  root.bucket = 0;
  root.successors = 1;
  trace::TraceActivation child;
  child.id = ActivationId{2};
  child.parent = ActivationId{parent};
  child.side = Side::Left;
  child.bucket = 1;
  cycle.activations.push_back(root);
  cycle.activations.push_back(child);
  t.cycles.push_back(std::move(cycle));
  return t;
}

// Regression: a child naming a parent id absent from its cycle used to
// die with an uncaught std::out_of_range from the index's map lookup.
// Now a RuntimeError names the cycle and both activation ids.
TEST(Simulator, MissingParentRaisesDescriptiveError) {
  const Trace t = trace_with_parent_ref(99);
  SimConfig config;
  config.match_processors = 1;
  config.costs = CostModel::zero_overhead();
  try {
    simulate(t, config, Assignment::round_robin(4, 1));
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle 0"), std::string::npos) << what;
    EXPECT_NE(what.find("activation 2"), std::string::npos) << what;
    EXPECT_NE(what.find("parent 99"), std::string::npos) << what;
    EXPECT_NE(what.find("does not exist"), std::string::npos) << what;
  }
}

// Regression: a parent declared AFTER its child (or an activation naming
// itself) indexed uninitialized children state.  The trace contract is
// generation order, so this is now a descriptive error too.
TEST(Simulator, ForwardDeclaredParentRaisesDescriptiveError) {
  Trace t = trace_with_parent_ref(2);  // activation 2 names itself
  SimConfig config;
  config.match_processors = 1;
  config.costs = CostModel::zero_overhead();
  try {
    simulate(t, config, Assignment::round_robin(4, 1));
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("parents must precede"), std::string::npos) << what;
  }

  // Same for a genuine forward reference: swap so the child precedes its
  // parent in the cycle.
  std::swap(t.cycles[0].activations[0], t.cycles[0].activations[1]);
  t.cycles[0].activations[0].parent = ActivationId{1};
  try {
    simulate(t, config, Assignment::round_robin(4, 1));
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle 0"), std::string::npos) << what;
    EXPECT_NE(what.find("parents must precede"), std::string::npos) << what;
  }
}

// The cached baseline must agree with the always-recompute form and
// dedup structurally identical traces (including copies).
TEST(Simulator, BaselineCacheMatchesBaselineTime) {
  const Trace t = chain_trace();
  const Trace copy = t;
  BaselineCache cache;
  const std::size_t size_before = cache.size();
  EXPECT_EQ(cache.baseline(t), baseline_time(t));
  EXPECT_EQ(cache.baseline(copy), baseline_time(t));
  EXPECT_EQ(cache.size(), size_before + 1);
  const Trace other = trace::make_weaver_section(32, 3);
  EXPECT_EQ(cache.baseline(other), baseline_time(other));
  EXPECT_EQ(cache.size(), size_before + 2);
}

// Regression: a fingerprint collision must NOT hand one trace another
// trace's baseline (that would silently corrupt every speedup computed
// from the shared cache).  A constant fingerprint forces every lookup
// into the same hash bucket; the structural verification has to keep the
// colliding traces apart.
TEST(Simulator, BaselineCacheSurvivesFingerprintCollisions) {
  const Trace a = chain_trace();
  const Trace b = trace::make_weaver_section(32, 3);
  ASSERT_NE(baseline_time(a), baseline_time(b));

  BaselineCache cache(
      [](const trace::Trace&) -> std::uint64_t { return 42; });
  EXPECT_EQ(cache.baseline(a), baseline_time(a));
  // Same fingerprint, different structure: must simulate b, not reuse a.
  EXPECT_EQ(cache.baseline(b), baseline_time(b));
  EXPECT_EQ(cache.size(), 2u);
  // Hits keep resolving to the right entry in either order.
  EXPECT_EQ(cache.baseline(b), baseline_time(b));
  EXPECT_EQ(cache.baseline(a), baseline_time(a));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Simulator, BaselineCacheFingerprintSeparatesContent) {
  // The default fingerprint distinguishes traces that differ in a single
  // field, but is stable across copies.
  const Trace t = chain_trace();
  const Trace copy = t;
  EXPECT_EQ(BaselineCache::fingerprint(t), BaselineCache::fingerprint(copy));
  Trace tweaked = t;
  tweaked.cycles[0].activations[0].bucket ^= 1u;
  EXPECT_NE(BaselineCache::fingerprint(t),
            BaselineCache::fingerprint(tweaked));
}

TEST(Simulator, SpeedupUsesSharedBaselineCache) {
  const Trace t = trace::make_rubik_section(64, 11);
  SimConfig config;
  config.match_processors = 4;
  config.costs = CostModel::zero_overhead();
  const double direct =
      static_cast<double>(baseline_time(t).nanos()) /
      static_cast<double>(
          simulate(t, config, Assignment::round_robin(64, 4)).makespan.nanos());
  EXPECT_DOUBLE_EQ(speedup(t, config, Assignment::round_robin(64, 4)),
                   direct);
}

}  // namespace
}  // namespace mpps::sim
