// Parameterized property sweeps: simulator laws and transformation
// invariants checked across randomly generated workloads.  Each seed is a
// distinct trace shape.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/distribution.hpp"
#include "src/core/sweep.hpp"
#include "src/core/xform.hpp"
#include "src/sim/refsim.hpp"
#include "src/sim/sharedbus.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/io.hpp"
#include "src/trace/synth.hpp"

namespace mpps {
namespace {

using sim::Assignment;
using sim::CostModel;
using sim::SimConfig;
using trace::RandomTraceSpec;
using trace::Trace;

RandomTraceSpec spec_for(std::uint64_t seed) {
  RandomTraceSpec spec;
  // Vary the shape with the seed: hot keys, deep chains, left-heavy mixes.
  spec.cycles = static_cast<std::uint32_t>(2 + seed % 4);
  spec.roots_per_cycle = static_cast<std::uint32_t>(20 + (seed * 7) % 60);
  spec.right_fraction = 0.2 + 0.1 * static_cast<double>(seed % 7);
  spec.fanout = 0.5 + 0.35 * static_cast<double>(seed % 5);
  spec.chain_prob = 0.1 * static_cast<double>(seed % 8);
  spec.key_classes = static_cast<std::uint32_t>(1 + (seed * 13) % 96);
  spec.instantiation_prob = 0.05;
  return spec;
}

class TraceProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Trace trace_ = trace::make_random_trace(spec_for(GetParam()), GetParam());
};

TEST_P(TraceProperty, GeneratorProducesValidTraces) {
  EXPECT_NO_THROW(trace::validate(trace_));
  EXPECT_GT(trace_.total_activations(), 0u);
}

TEST_P(TraceProperty, IoRoundTripIsExact) {
  const Trace round = trace::from_string(trace::to_string(trace_));
  EXPECT_EQ(trace::to_string(round), trace::to_string(trace_));
}

TEST_P(TraceProperty, BaselineEqualsCostSum) {
  std::int64_t expected_us = 0;
  for (const auto& cycle : trace_.cycles) {
    expected_us += 30;
    for (const auto& act : cycle.activations) {
      expected_us += act.side == trace::Side::Left ? 32 : 16;
      expected_us += 16 * (act.successors + act.instantiations);
    }
  }
  EXPECT_EQ(sim::baseline_time(trace_), SimTime::us(expected_us));
}

TEST_P(TraceProperty, SpeedupLawsHold) {
  for (std::uint32_t procs : {2u, 8u, 32u}) {
    SimConfig config;
    config.match_processors = procs;
    config.costs = CostModel::zero_overhead();
    const auto assignment =
        Assignment::round_robin(trace_.num_buckets, procs);
    const double s = sim::speedup(trace_, config, assignment);
    EXPECT_GT(s, 0.99);
    EXPECT_LE(s, static_cast<double>(procs) + 1e-9);
    // Overheads are monotone.
    SimTime prev{};
    for (int run = 1; run <= 4; ++run) {
      config.costs = CostModel::paper_run(run);
      const SimTime t = sim::simulate(trace_, config, assignment).makespan;
      EXPECT_GE(t, prev) << "procs " << procs << " run " << run;
      prev = t;
    }
  }
}

TEST_P(TraceProperty, TokenConservation) {
  // Every join-generated token is either delivered locally or messaged;
  // with instantiation charging off, messages + local == child count.
  std::uint64_t children = 0;
  for (const auto& cycle : trace_.cycles) {
    for (const auto& act : cycle.activations) {
      if (act.parent.valid()) ++children;
    }
  }
  SimConfig config;
  config.match_processors = 8;
  config.costs = CostModel::paper_run(3);
  config.charge_instantiation_messages = false;
  const auto result = sim::simulate(
      trace_, config, Assignment::round_robin(trace_.num_buckets, 8));
  EXPECT_EQ(result.messages + result.local_deliveries, children);
}

TEST_P(TraceProperty, MetricsAccountEveryActivation) {
  SimConfig config;
  config.match_processors = 16;
  config.costs = CostModel::paper_run(2);
  const auto result = sim::simulate(
      trace_, config, Assignment::round_robin(trace_.num_buckets, 16));
  std::uint64_t counted = 0;
  for (const auto& cycle : result.cycles) {
    for (const auto& proc : cycle.procs) counted += proc.activations;
  }
  EXPECT_EQ(counted, trace_.total_activations());
}

TEST_P(TraceProperty, PairMappingCountsEachActivationOnce) {
  // An activation splits into a store half and a generate half, but it is
  // attributed once — to the processor that stores the token.
  SimConfig config;
  config.match_processors = 8;
  config.mapping = sim::MappingMode::ProcessorPairs;
  config.costs = CostModel::paper_run(2);
  const auto result = sim::simulate(
      trace_, config, Assignment::round_robin(trace_.num_buckets, 4));
  std::uint64_t counted = 0;
  for (const auto& cycle : result.cycles) {
    for (const auto& proc : cycle.procs) counted += proc.activations;
  }
  EXPECT_EQ(counted, trace_.total_activations());
}

TEST_P(TraceProperty, GreedyNeverWorseThanRoundRobinImbalance) {
  const auto costs = CostModel::zero_overhead();
  const auto greedy = core::greedy_assignment(trace_, 8, costs);
  const auto rr = Assignment::round_robin(trace_.num_buckets, 8);
  for (std::size_t c = 0; c < trace_.cycles.size(); ++c) {
    EXPECT_LE(core::load_imbalance(trace_, c, greedy, costs),
              core::load_imbalance(trace_, c, rr, costs) + 1e-9);
  }
}

TEST_P(TraceProperty, SharedBusOneProcMatchesBaseline) {
  sim::SharedBusConfig bus;
  bus.processors = 1;
  bus.queue_access = SimTime::us(0);
  bus.costs = CostModel::zero_overhead();
  EXPECT_EQ(sim::simulate_shared_bus(trace_, bus).makespan,
            sim::baseline_time(trace_));
}

TEST_P(TraceProperty, TransformsPreserveStructureAndSemanticWork) {
  // Apply each transformation to the busiest node and check invariants.
  std::uint64_t best_count = 0;
  NodeId busiest;
  std::unordered_map<std::uint32_t, std::uint64_t> per_node;
  for (const auto& cycle : trace_.cycles) {
    for (const auto& act : cycle.activations) {
      if (++per_node[act.node.value()] > best_count) {
        best_count = per_node[act.node.value()];
        busiest = act.node;
      }
    }
  }
  const trace::TraceStats before = trace::compute_stats(trace_);

  const Trace unshared = core::unshare_node(trace_, busiest);
  EXPECT_NO_THROW(trace::validate(unshared));
  EXPECT_GE(unshared.total_activations(), trace_.total_activations());
  EXPECT_EQ(trace::compute_stats(unshared).instantiations,
            before.instantiations);

  const Trace constrained = core::copy_constrain_node(trace_, busiest, 4);
  EXPECT_NO_THROW(trace::validate(constrained));
  EXPECT_EQ(trace::compute_stats(constrained).instantiations,
            before.instantiations);

  const Trace dummies = core::insert_dummy_nodes(trace_, busiest, 3, 2);
  EXPECT_NO_THROW(trace::validate(dummies));
  EXPECT_GE(dummies.total_activations(), trace_.total_activations());
  EXPECT_EQ(trace::compute_stats(dummies).instantiations,
            before.instantiations);
}

TEST_P(TraceProperty, ReferenceSimulatorAgrees) {
  // The naive reference engine and the optimized engine agree bit for bit
  // on every random shape (the acceptance grid on the paper's sections
  // lives in sim_refsim_test.cpp).
  SimConfig config;
  config.match_processors = 1 + static_cast<std::uint32_t>(GetParam() % 8);
  config.costs = CostModel::paper_run(1 + static_cast<int>(GetParam() % 4));
  const auto assignment = Assignment::round_robin(
      trace_.num_buckets, config.partitions());
  EXPECT_EQ(sim::describe_divergence(
                sim::simulate(trace_, config, assignment),
                sim::ref_simulate(trace_, config, assignment)),
            "");
}

TEST_P(TraceProperty, SweepBitIdenticalAcrossJobs) {
  // The full sweep pipeline — outcomes, merged metrics (including the
  // invariant-law counters) — is byte-identical for every --jobs value.
  std::vector<core::SweepScenario> scenarios;
  for (const std::uint32_t procs : {1u, 4u, 16u}) {
    for (const int run : {1, 3}) {
      core::SweepScenario scenario;
      scenario.label =
          "p" + std::to_string(procs) + "/r" + std::to_string(run);
      scenario.trace = &trace_;
      scenario.config.match_processors = procs;
      scenario.config.costs = CostModel::paper_run(run);
      scenario.assignment =
          Assignment::round_robin(trace_.num_buckets, procs);
      scenarios.push_back(std::move(scenario));
    }
  }

  std::string first_csv;
  std::vector<core::SweepOutcome> first;
  for (const unsigned jobs : {1u, 3u, 8u}) {
    obs::Registry registry;
    core::SweepOptions options;
    options.jobs = jobs;
    options.metrics = &registry;
    options.check_invariants = true;
    const std::vector<core::SweepOutcome> outcomes =
        core::SweepRunner(options).run(scenarios);
    std::ostringstream csv;
    registry.write_csv(csv);
    if (jobs == 1u) {
      first_csv = csv.str();
      first = outcomes;
      // The law counters actually landed in the merged registry.
      EXPECT_NE(first_csv.find("sim.invariants.checked"), std::string::npos);
      EXPECT_EQ(first_csv.find("sim.invariants.violated{"),
                std::string::npos);
      continue;
    }
    EXPECT_EQ(csv.str(), first_csv) << "jobs " << jobs;
    ASSERT_EQ(outcomes.size(), first.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      EXPECT_EQ(outcomes[i].label, first[i].label);
      EXPECT_EQ(outcomes[i].result.makespan, first[i].result.makespan);
      EXPECT_EQ(outcomes[i].result.messages, first[i].result.messages);
      EXPECT_EQ(outcomes[i].speedup, first[i].speedup);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, TraceProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace mpps
