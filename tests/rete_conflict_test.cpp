#include "src/rete/conflict.hpp"

#include <gtest/gtest.h>

namespace mpps::rete {
namespace {

Instantiation inst(std::uint32_t pid, std::vector<std::uint64_t> tags) {
  Token t;
  for (auto tag : tags) t.wmes.push_back(WmeId{tag});
  return Instantiation{ProductionId{pid}, std::move(t)};
}

ConflictSet make_cs(std::size_t spec0 = 3, std::size_t spec1 = 5) {
  return ConflictSet([spec0, spec1](ProductionId p) {
    return p.value() == 0 ? spec0 : spec1;
  });
}

TEST(ConflictSet, EmptySelectsNothing) {
  ConflictSet cs = make_cs();
  EXPECT_FALSE(cs.select(Strategy::Lex).has_value());
}

TEST(ConflictSet, LexPrefersMostRecent) {
  ConflictSet cs = make_cs();
  cs.add(inst(0, {1, 2}));
  cs.add(inst(0, {1, 5}));
  const auto sel = cs.select(Strategy::Lex);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->token.wmes[1], WmeId{5});
}

TEST(ConflictSet, LexComparesSortedDescending) {
  ConflictSet cs = make_cs();
  // {9, 1} vs {8, 7}: sorted desc 9>8 → first wins despite smaller second.
  cs.add(inst(0, {9, 1}));
  cs.add(inst(0, {8, 7}));
  const auto sel = cs.select(Strategy::Lex);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->token.wmes[0], WmeId{9});
}

TEST(ConflictSet, LexLongerWinsOnPrefixTie) {
  ConflictSet cs = make_cs();
  cs.add(inst(0, {9, 5}));
  cs.add(inst(0, {9, 5, 2}));
  const auto sel = cs.select(Strategy::Lex);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->token.wmes.size(), 3u);
}

TEST(ConflictSet, SpecificityBreaksRecencyTies) {
  ConflictSet cs = make_cs(3, 5);
  cs.add(inst(0, {4}));
  cs.add(inst(1, {4}));
  const auto sel = cs.select(Strategy::Lex);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->production, ProductionId{1});  // higher specificity
}

TEST(ConflictSet, MeaPrefersFirstCeRecency) {
  ConflictSet cs = make_cs();
  // LEX would prefer {3, 9} (9 most recent); MEA looks at first-CE wme.
  cs.add(inst(0, {3, 9}));
  cs.add(inst(0, {5, 2}));
  const auto lex = cs.select(Strategy::Lex);
  ASSERT_TRUE(lex.has_value());
  EXPECT_EQ(lex->token.wmes[0], WmeId{3});
  const auto mea = cs.select(Strategy::Mea);
  ASSERT_TRUE(mea.has_value());
  EXPECT_EQ(mea->token.wmes[0], WmeId{5});
}

TEST(ConflictSet, MeaFallsBackToLex) {
  ConflictSet cs = make_cs();
  cs.add(inst(0, {5, 2}));
  cs.add(inst(0, {5, 7}));
  const auto mea = cs.select(Strategy::Mea);
  ASSERT_TRUE(mea.has_value());
  EXPECT_EQ(mea->token.wmes[1], WmeId{7});
}

TEST(ConflictSet, RefractionExcludesFired) {
  ConflictSet cs = make_cs();
  cs.add(inst(0, {9}));
  cs.add(inst(0, {4}));
  auto first = cs.select(Strategy::Lex);
  ASSERT_TRUE(first.has_value());
  cs.mark_fired(*first);
  auto second = cs.select(Strategy::Lex);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->token.wmes[0], second->token.wmes[0]);
  cs.mark_fired(*second);
  EXPECT_FALSE(cs.select(Strategy::Lex).has_value());
  EXPECT_EQ(cs.size(), 2u);  // still present, just refracted
}

TEST(ConflictSet, RemoveForgetsRefraction) {
  ConflictSet cs = make_cs();
  const Instantiation i = inst(0, {9});
  cs.add(i);
  cs.mark_fired(i);
  EXPECT_TRUE(cs.remove(i));
  cs.add(i);  // re-derived: may fire again
  EXPECT_TRUE(cs.select(Strategy::Lex).has_value());
}

TEST(ConflictSet, RemoveAbsentReturnsFalse) {
  ConflictSet cs = make_cs();
  EXPECT_FALSE(cs.remove(inst(0, {1})));
}

TEST(ConflictSet, DeterministicFinalTiebreak) {
  ConflictSet cs = make_cs(4, 4);
  cs.add(inst(1, {4}));
  cs.add(inst(0, {4}));
  const auto sel = cs.select(Strategy::Lex);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->production, ProductionId{0});
}

TEST(ConflictSet, AllListsEverything) {
  ConflictSet cs = make_cs();
  cs.add(inst(0, {1}));
  cs.add(inst(1, {2}));
  EXPECT_EQ(cs.all().size(), 2u);
}

}  // namespace
}  // namespace mpps::rete
