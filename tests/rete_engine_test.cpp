#include "src/rete/engine.hpp"

#include <gtest/gtest.h>

#include "src/ops5/parser.hpp"
#include "src/rete/network.hpp"

namespace mpps::rete {
namespace {

using ops5::Value;
using ops5::Wme;
using ops5::WmeChange;
using ops5::WorkingMemory;

struct Fixture {
  ops5::Program program;
  Network net;
  Engine engine;
  WorkingMemory wm;

  explicit Fixture(std::string_view src, EngineOptions opts = {})
      : program(ops5::parse_program(src)),
        net(Network::compile(program)),
        engine(net, opts) {}

  WmeId add(std::string_view wme_text) {
    const WmeId id = wm.add(ops5::parse_wme(wme_text));
    flush();
    return id;
  }
  void remove(WmeId id) {
    ASSERT_TRUE(wm.remove(id));
    flush();
  }
  void flush() {
    for (const auto& change : wm.drain_changes()) {
      engine.process_change(change);
    }
  }
  [[nodiscard]] std::size_t cs_size() const {
    return engine.conflict_set().size();
  }
};

TEST(Engine, SimpleJoinMatches) {
  Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  EXPECT_EQ(f.cs_size(), 0u);
  f.add("(b ^v 1)");
  EXPECT_EQ(f.cs_size(), 1u);
  f.add("(b ^v 2)");
  EXPECT_EQ(f.cs_size(), 1u);  // no consistent binding for v 2
  f.add("(a ^v 2)");
  EXPECT_EQ(f.cs_size(), 2u);
}

TEST(Engine, DeletionRetractsInstantiations) {
  Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  const WmeId a = f.add("(a ^v 1)");
  f.add("(b ^v 1)");
  ASSERT_EQ(f.cs_size(), 1u);
  f.remove(a);
  EXPECT_EQ(f.cs_size(), 0u);
  EXPECT_EQ(f.engine.left_memory().total_tokens(), 0u);
}

TEST(Engine, RightDeletionRetracts) {
  Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  const WmeId b = f.add("(b ^v 1)");
  ASSERT_EQ(f.cs_size(), 1u);
  f.remove(b);
  EXPECT_EQ(f.cs_size(), 0u);
  EXPECT_EQ(f.engine.right_memory().total_tokens(), 0u);
}

TEST(Engine, CrossProductGeneratesAllPairs) {
  // No common variable: every (a, b) pair matches.
  Fixture f("(p all (a ^v <x>) (b ^w <y>) --> (halt))");
  for (int i = 0; i < 3; ++i) {
    f.add("(a ^v " + std::to_string(i) + ")");
  }
  for (int i = 0; i < 4; ++i) {
    f.add("(b ^w " + std::to_string(i) + ")");
  }
  EXPECT_EQ(f.cs_size(), 12u);
}

TEST(Engine, ThreeWayJoin) {
  Fixture f(R"(
    (p chain (a ^v <x>) (b ^v <x> ^w <y>) (c ^w <y>) --> (halt)))");
  f.add("(a ^v 1)");
  f.add("(b ^v 1 ^w 7)");
  EXPECT_EQ(f.cs_size(), 0u);
  f.add("(c ^w 7)");
  EXPECT_EQ(f.cs_size(), 1u);
  f.add("(c ^w 8)");
  EXPECT_EQ(f.cs_size(), 1u);
}

TEST(Engine, NegationBlocksWhileMatcherExists) {
  Fixture f("(p lonely (a ^v <x>) -(b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  EXPECT_EQ(f.cs_size(), 1u);
  const WmeId b = f.add("(b ^v 1)");
  EXPECT_EQ(f.cs_size(), 0u);
  f.remove(b);
  EXPECT_EQ(f.cs_size(), 1u);
}

TEST(Engine, NegationCountsMultipleBlockers) {
  Fixture f("(p lonely (a ^v <x>) -(b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  const WmeId b1 = f.add("(b ^v 1)");
  const WmeId b2 = f.add("(b ^v 1)");
  EXPECT_EQ(f.cs_size(), 0u);
  f.remove(b1);
  EXPECT_EQ(f.cs_size(), 0u);  // b2 still blocks
  f.remove(b2);
  EXPECT_EQ(f.cs_size(), 1u);
}

TEST(Engine, NegationArrivingBeforePositive) {
  Fixture f("(p lonely (a ^v <x>) -(b ^v <x>) --> (halt))");
  f.add("(b ^v 1)");
  f.add("(a ^v 1)");
  EXPECT_EQ(f.cs_size(), 0u);
  f.add("(a ^v 2)");
  EXPECT_EQ(f.cs_size(), 1u);
}

TEST(Engine, NegationWithOnlyConstantTests) {
  Fixture f("(p nofree (goal ^t 1) -(hand ^state free) --> (halt))");
  f.add("(goal ^t 1)");
  EXPECT_EQ(f.cs_size(), 1u);
  const WmeId h = f.add("(hand ^state free)");
  EXPECT_EQ(f.cs_size(), 0u);
  f.remove(h);
  EXPECT_EQ(f.cs_size(), 1u);
}

TEST(Engine, PredicateJoinTest) {
  Fixture f("(p bigger (a ^v <x>) (b ^v > <x>) --> (halt))");
  f.add("(a ^v 5)");
  f.add("(b ^v 3)");
  EXPECT_EQ(f.cs_size(), 0u);
  f.add("(b ^v 9)");
  EXPECT_EQ(f.cs_size(), 1u);
}

TEST(Engine, HashedMemoryPartitionsByValue) {
  Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  // Tokens with different values should land in (almost surely) different
  // buckets; comparisons only scan the matching bucket.
  for (int i = 0; i < 16; ++i) {
    f.add("(a ^v k" + std::to_string(i) + ")");
  }
  const auto before = f.engine.stats().comparisons;
  f.add("(b ^v k3)");
  const auto scanned = f.engine.stats().comparisons - before;
  // A linear-list memory would scan all 16; hashing scans the one bucket
  // (collisions allowed, but far fewer than 16).
  EXPECT_LE(scanned, 3u);
  EXPECT_EQ(f.cs_size(), 1u);
}

TEST(Engine, ListenerSeesActivations) {
  struct Recorder : ActivationListener {
    std::vector<ActivationRecord> records;
    int changes = 0;
    void on_wme_change(const WmeChange&) override { ++changes; }
    void on_activation(const ActivationRecord& r) override {
      records.push_back(r);
    }
  };
  Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  Recorder rec;
  f.engine.set_listener(&rec);
  f.add("(a ^v 1)");
  f.add("(b ^v 1)");
  EXPECT_EQ(rec.changes, 2);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[0].side, Side::Left);   // a is CE 1 → left input
  EXPECT_EQ(rec.records[1].side, Side::Right);  // b is CE 2 → right input
  EXPECT_EQ(rec.records[1].instantiations, 1u);
  EXPECT_FALSE(rec.records[0].parent.valid());
}

TEST(Engine, ListenerSeesChildParentLink) {
  struct Recorder : ActivationListener {
    std::vector<ActivationRecord> records;
    void on_activation(const ActivationRecord& r) override {
      records.push_back(r);
    }
  };
  Fixture f(R"(
    (p chain (a ^v <x>) (b ^v <x>) (c ^w 1) --> (halt)))");
  Recorder rec;
  f.engine.set_listener(&rec);
  f.add("(a ^v 1)");
  f.add("(b ^v 1)");  // join 1 fires → token to join 2's left
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(rec.records[1].successors, 1u);
  EXPECT_EQ(rec.records[2].parent, rec.records[1].id);
  EXPECT_EQ(rec.records[2].side, Side::Left);
}

TEST(Engine, StatsCountSides) {
  Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  f.add("(a ^v 2)");
  f.add("(b ^v 1)");
  EXPECT_EQ(f.engine.stats().left_activations, 2u);
  EXPECT_EQ(f.engine.stats().right_activations, 1u);
  EXPECT_EQ(f.engine.stats().tokens_generated, 1u);
}

TEST(Engine, SharedJoinFeedsBothProductions) {
  Fixture f(R"(
    (p p1 (a ^v <x>) (b ^v <x>) (c ^k 1) --> (halt))
    (p p2 (a ^v <x>) (b ^v <x>) (d ^k 2) --> (halt)))");
  f.add("(a ^v 1)");
  f.add("(b ^v 1)");
  f.add("(c ^k 1)");
  f.add("(d ^k 2)");
  EXPECT_EQ(f.cs_size(), 2u);
}

TEST(Engine, ModifySequenceDeleteThenAdd) {
  // The multiple-modify effect: delete + re-add of the same wme content
  // flows a minus then a plus token through the same bucket.
  Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  const WmeId b = f.add("(b ^v 1)");
  ASSERT_EQ(f.cs_size(), 1u);
  f.remove(b);
  f.add("(b ^v 1)");
  EXPECT_EQ(f.cs_size(), 1u);
  EXPECT_EQ(f.engine.stats().stale_deletes, 0u);
}

TEST(Engine, DuplicateWmeContentsAreDistinctMatches) {
  Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  f.add("(a ^v 1)");
  f.add("(b ^v 1)");
  EXPECT_EQ(f.cs_size(), 2u);
}

TEST(Engine, AbsentAttributeNeverMatchesConstant) {
  Fixture f("(p x (a ^v 1) --> (halt))");
  f.add("(a ^w 1)");
  EXPECT_EQ(f.cs_size(), 0u);
}

TEST(Engine, HashingCutsEntriesScanned) {
  // The Section 3.1 rationale: with one bucket per side, every lookup
  // scans the node's whole memory; real bucket counts cut that by orders
  // of magnitude.
  auto scanned_with = [](std::uint32_t buckets) {
    EngineOptions opts;
    opts.num_buckets = buckets;
    Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))", opts);
    for (int i = 0; i < 64; ++i) {
      f.add("(a ^v k" + std::to_string(i) + ")");
      f.add("(b ^v k" + std::to_string(i) + ")");
    }
    return f.engine.left_memory().entries_scanned() +
           f.engine.right_memory().entries_scanned();
  };
  const auto hashed = scanned_with(256);
  const auto linear = scanned_with(1);
  EXPECT_GT(linear, 10 * hashed);
}

TEST(Engine, SingleBucketStressWithFewBuckets) {
  // With one bucket, everything collides; results must be identical.
  EngineOptions opts;
  opts.num_buckets = 1;
  Fixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))", opts);
  f.add("(a ^v 1)");
  f.add("(a ^v 2)");
  f.add("(b ^v 1)");
  f.add("(b ^v 2)");
  f.add("(b ^v 3)");
  EXPECT_EQ(f.cs_size(), 2u);
}

}  // namespace
}  // namespace mpps::rete
