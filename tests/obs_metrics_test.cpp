// Tests for the metrics registry (src/obs/metrics.hpp): instrument
// semantics, histogram bucket edges, deterministic CSV export, and the
// zero-cost guarantee — attaching sinks to the simulator must not change
// the simulated results.
#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"
#include "src/obs/tracer.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/synth.hpp"

namespace mpps::obs {
namespace {

TEST(Counter, AccumulatesMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, MovesBothWays) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1, 10});
  // v <= 1 → bucket 0; 1 < v <= 10 → bucket 1; v > 10 → overflow.
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(10);
  h.observe(11);
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 24);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 11);
  EXPECT_DOUBLE_EQ(h.mean(), 24.0 / 5.0);
}

TEST(Histogram, DefaultIsSingleCatchAllBucket) {
  Histogram h;
  h.observe(-5);
  h.observe(1000000);
  ASSERT_EQ(h.counts().size(), 1u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, QuantileBoundNearestRank) {
  Histogram h({1, 2, 4, 8});
  for (int i = 0; i < 10; ++i) h.observe(1);  // bucket 0
  h.observe(8);                               // bucket 3
  // 10 of 11 samples are <= 1: p50 must report bucket edge 1.
  EXPECT_EQ(h.quantile_bound(0.5), 1);
  EXPECT_EQ(h.quantile_bound(1.0), 8);
}

TEST(Histogram, QuantileBoundOverflowReportsMax) {
  Histogram h({1});
  h.observe(100);
  h.observe(200);
  EXPECT_EQ(h.quantile_bound(0.5), 200);  // overflow bucket → observed max
}

TEST(Histogram, LinearBoundsEvenlySpaced) {
  const auto b = Histogram::linear_bounds(5, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 5);
  EXPECT_EQ(b[1], 10);
  EXPECT_EQ(b[2], 15);
}

TEST(Histogram, ExponentialBoundsStrictlyIncreasing) {
  // factor close to 1 would produce duplicate rounded edges without the
  // strictly-increasing fixup.
  const auto b = Histogram::exponential_bounds(1, 1.1, 20);
  ASSERT_EQ(b.size(), 20u);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_LT(b[i - 1], b[i]) << "edge " << i;
  }
}

TEST(Registry, SameNameAndLabelsReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x", {{"side", "left"}});
  a.add(3);
  Counter& b = reg.counter("x", {{"side", "left"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  // A different label set is a different instrument.
  Counter& c = reg.counter("x", {{"side", "right"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, TypeMismatchThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), RuntimeError);
  EXPECT_THROW(reg.histogram("x", {}), RuntimeError);
}

TEST(Registry, HistogramBoundsOnlyConsultedOnCreation) {
  Registry reg;
  Histogram& h = reg.histogram("h", {1, 2});
  Histogram& again = reg.histogram("h", {99});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(Registry, CsvExportIsDeterministicAndSorted) {
  const auto fill = [](Registry& reg) {
    reg.counter("zeta").add(1);
    reg.gauge("alpha").set(-7);
    reg.histogram("mid", {10, 20}).observe(15);
    reg.counter("mid2", {{"k", "v"}}).add(2);
  };
  Registry a;
  Registry b;
  fill(a);
  fill(b);
  std::ostringstream csv_a;
  std::ostringstream csv_b;
  a.write_csv(csv_a);
  b.write_csv(csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  const std::string csv = csv_a.str();
  EXPECT_NE(csv.find("metric,type,field,value"), std::string::npos);
  // Sorted by key: alpha before mid before zeta.
  EXPECT_LT(csv.find("alpha"), csv.find("mid"));
  EXPECT_LT(csv.find("mid"), csv.find("zeta"));
  EXPECT_NE(csv.find("mid2{k=v}"), std::string::npos);
  EXPECT_NE(csv.find("le_inf"), std::string::npos);
}

// The zero-cost guarantee: a run with metrics + tracer attached must
// produce bit-for-bit identical simulated results to a run without.
TEST(ZeroCost, AttachedSinksDoNotChangeSimResults) {
  const trace::Trace t = trace::make_rubik_section();
  const auto assignment = sim::Assignment::round_robin(t.num_buckets, 8);

  sim::SimConfig plain;
  plain.match_processors = 8;
  plain.costs = sim::CostModel::paper_run(4);
  const auto base = sim::simulate(t, plain, assignment);

  Registry registry;
  Tracer tracer;
  sim::SimConfig observed = plain;
  observed.metrics = &registry;
  observed.tracer = &tracer;
  const auto obs = sim::simulate(t, observed, assignment);

  EXPECT_EQ(base.makespan, obs.makespan);
  EXPECT_EQ(base.messages, obs.messages);
  EXPECT_EQ(base.local_deliveries, obs.local_deliveries);
  EXPECT_EQ(base.network_busy, obs.network_busy);
  EXPECT_EQ(base.termination_overhead, obs.termination_overhead);
  ASSERT_EQ(base.cycles.size(), obs.cycles.size());
  for (std::size_t c = 0; c < base.cycles.size(); ++c) {
    EXPECT_EQ(base.cycles[c].start, obs.cycles[c].start);
    EXPECT_EQ(base.cycles[c].end, obs.cycles[c].end);
    EXPECT_EQ(base.cycles[c].messages, obs.cycles[c].messages);
    ASSERT_EQ(base.cycles[c].procs.size(), obs.cycles[c].procs.size());
    for (std::size_t p = 0; p < base.cycles[c].procs.size(); ++p) {
      EXPECT_EQ(base.cycles[c].procs[p].busy, obs.cycles[c].procs[p].busy);
      EXPECT_EQ(base.cycles[c].procs[p].activations,
                obs.cycles[c].procs[p].activations);
    }
  }
  // And the attached run actually recorded something.
  EXPECT_GT(registry.size(), 0u);
  EXPECT_FALSE(tracer.empty());
}

// The simulator's recorded counters agree with the results struct.
TEST(SimMetrics, CountersMatchSimResult) {
  const trace::Trace t = trace::make_rubik_section();
  Registry registry;
  sim::SimConfig config;
  config.match_processors = 16;
  config.costs = sim::CostModel::paper_run(4);
  config.metrics = &registry;
  const auto result = sim::simulate(
      t, config, sim::Assignment::round_robin(t.num_buckets, 16));

  EXPECT_EQ(registry.counter("sim.messages").value(), result.messages);
  EXPECT_EQ(registry.counter("sim.local_deliveries").value(),
            result.local_deliveries);
  EXPECT_EQ(registry.counter("sim.cycles").value(), result.cycles.size());
  EXPECT_EQ(registry.gauge("sim.makespan_ns").value(),
            result.makespan.nanos());
  std::uint64_t left = 0;
  std::uint64_t total = 0;
  for (const auto& cycle : result.cycles) {
    for (const auto& proc : cycle.procs) {
      left += proc.left_activations;
      total += proc.activations;
    }
  }
  EXPECT_EQ(registry.counter("sim.activations", {{"side", "left"}}).value(),
            left);
  EXPECT_EQ(registry.counter("sim.activations", {{"side", "right"}}).value(),
            total - left);
}

}  // namespace
}  // namespace mpps::obs
