// Robustness: arbitrary and mutated inputs must produce structured errors
// (ParseError / TraceFormatError), never crashes or hangs.  Deterministic
// pseudo-random fuzzing, one seed per parameterized case.
#include <gtest/gtest.h>

#include <string>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/ops5/lexer.hpp"
#include "src/ops5/parser.hpp"
#include "src/trace/io.hpp"

namespace mpps {
namespace {

/// Characters the OPS5 grammar cares about, plus noise.
constexpr char kAlphabet[] =
    "()+-<>{}^=| \n\tabcxyz0123456789.;\\/*pmw";

std::string random_text(Rng& rng, std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

constexpr const char* kValidProgram = R"(
  (make counter ^value 0)
  (p count
    (counter ^value <v> ^value < 5)
    -(stop ^flag << yes maybe >>)
    -->
    (modify 1 ^value (compute <v> + 1))
    (write <v> (crlf))))";

constexpr const char* kValidTrace =
    "# mpps-trace v1\n"
    "trace fuzz buckets 16\n"
    "cycle 1\n"
    "wmechange 2\n"
    "act 1 R node 3 bucket 5 parent - succ 1 inst 0 key 2 tag +\n"
    "act 2 L node 4 bucket 7 parent 1 succ 0 inst 1 key 0 tag +\n"
    "endcycle\n";

class FuzzCase : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCase, LexerNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const std::string text = random_text(rng, 1 + rng.below(120));
    try {
      (void)ops5::lex(text);
    } catch (const ParseError&) {
      // structured failure is fine
    }
  }
}

TEST_P(FuzzCase, ParserNeverCrashesOnRandomText) {
  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 50; ++i) {
    const std::string text = random_text(rng, 1 + rng.below(200));
    try {
      (void)ops5::parse_program(text);
    } catch (const ParseError&) {
    } catch (const RuntimeError&) {
      // semantic validation of an accidentally-parseable program
    }
  }
}

TEST_P(FuzzCase, ParserNeverCrashesOnMutatedPrograms) {
  Rng rng(GetParam() * 131 + 13);
  for (int i = 0; i < 50; ++i) {
    std::string text = kValidProgram;
    const std::uint64_t mutations = 1 + rng.below(6);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(text.size());
      switch (rng.below(3)) {
        case 0:  // replace
          text[pos] = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
          break;
        case 1:  // delete
          text.erase(pos, 1);
          break;
        default:  // insert
          text.insert(pos, 1, kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
          break;
      }
    }
    try {
      (void)ops5::parse_program(text);
    } catch (const ParseError&) {
    } catch (const RuntimeError&) {
    }
  }
}

TEST_P(FuzzCase, TraceReaderNeverCrashesOnMutatedTraces) {
  Rng rng(GetParam() * 733 + 3);
  for (int i = 0; i < 50; ++i) {
    std::string text = kValidTrace;
    const std::uint64_t mutations = 1 + rng.below(5);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(text.size());
      switch (rng.below(3)) {
        case 0:
          text[pos] = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
          break;
      }
    }
    try {
      (void)trace::from_string(text);
    } catch (const TraceFormatError&) {
    }
  }
}

TEST_P(FuzzCase, ValidInputsStillAccepted) {
  // Anchors the fuzzers: unmutated inputs parse.
  EXPECT_NO_THROW((void)ops5::parse_program(kValidProgram));
  EXPECT_NO_THROW((void)trace::from_string(kValidTrace));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCase,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mpps
