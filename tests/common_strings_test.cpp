#include "src/common/strings.hpp"

#include <gtest/gtest.h>

namespace mpps {
namespace {

TEST(SplitWs, BasicSplit) {
  const auto fields = split_ws("act 12 L node 3");
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "act");
  EXPECT_EQ(fields[4], "3");
}

TEST(SplitWs, CollapsesRuns) {
  const auto fields = split_ws("  a \t b\n  c  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");
}

TEST(SplitWs, EmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(ParseInt, Valid) {
  long v = 0;
  EXPECT_TRUE(parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(parse_int("0", v));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt, RejectsPartialAndJunk) {
  long v = 0;
  EXPECT_FALSE(parse_int("42x", v));
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("4.2", v));
  EXPECT_FALSE(parse_int("abc", v));
}

TEST(ParseDouble, Valid) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(parse_double("-0.5", v));
  EXPECT_DOUBLE_EQ(v, -0.5);
  EXPECT_TRUE(parse_double("12", v));
  EXPECT_DOUBLE_EQ(v, 12.0);
}

TEST(ParseDouble, RejectsJunk) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("1.2.3", v));
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("x", v));
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 1), "2.0");
  EXPECT_EQ(format_fixed(-1.005, 0), "-1");
}

}  // namespace
}  // namespace mpps
