// The shared-bus baseline: centralized task queues + shared hash tables.
#include "src/sim/sharedbus.hpp"

#include <gtest/gtest.h>

#include "src/sim/simulator.hpp"
#include "src/trace/synth.hpp"

namespace mpps::sim {
namespace {

using trace::SectionBuilder;
using trace::Side;
using trace::Trace;

Trace chain_trace() {
  SectionBuilder b("chain", 4);
  b.begin_cycle(1);
  const auto root = b.root_at(Side::Right, NodeId{1}, 0, 0);
  const auto child = b.child_at(root, NodeId{2}, 1, 0);
  b.add_instantiations(child);
  return b.take();
}

SharedBusConfig config_of(std::uint32_t procs, SimTime queue_access) {
  SharedBusConfig config;
  config.processors = procs;
  config.queue_access = queue_access;
  config.costs = CostModel::zero_overhead();
  return config;
}

TEST(SharedBus, OneProcZeroQueueEqualsBaseline) {
  for (const Trace& t :
       {chain_trace(), trace::make_weaver_section(64, 51)}) {
    const auto result =
        simulate_shared_bus(t, config_of(1, SimTime::us(0)));
    EXPECT_EQ(result.makespan, baseline_time(t));
  }
}

TEST(SharedBus, ChainMatchesHandComputation) {
  // t0 = 30; pop (3 us) -> root starts 33; right 16 -> 49; successor 16 +
  // push 3 -> 68; pop 3 -> child at 71; left 32 -> 103; instantiation
  // 16 + CS lock 3 -> 122.
  SharedBusConfig config = config_of(2, SimTime::us(3));
  const auto result = simulate_shared_bus(chain_trace(), config);
  EXPECT_EQ(result.makespan, SimTime::us(122));
  EXPECT_EQ(result.tasks, 2u);
  EXPECT_EQ(result.queue_busy, SimTime::us(6));
}

TEST(SharedBus, SpeedupBounded) {
  const Trace t = trace::make_rubik_section(128, 53);
  for (std::uint32_t procs : {2u, 8u, 32u}) {
    const double s = shared_bus_speedup(t, config_of(procs, SimTime::us(3)));
    EXPECT_GT(s, 1.0);
    EXPECT_LE(s, static_cast<double>(procs) + 1e-9);
  }
}

TEST(SharedBus, QueueOverheadSlowsThingsDown) {
  const Trace t = trace::make_rubik_section(128, 55);
  const auto cheap =
      simulate_shared_bus(t, config_of(16, SimTime::us(0)));
  const auto pricey =
      simulate_shared_bus(t, config_of(16, SimTime::us(10)));
  EXPECT_LT(cheap.makespan, pricey.makespan);
  EXPECT_GT(pricey.queue_utilization(), cheap.queue_utilization());
}

TEST(SharedBus, CentralQueueBecomesBottleneck) {
  // Section 5.2.2: the centralized task queue is the shared-memory
  // design's potential bottleneck.  With many processors and expensive
  // queue access, queue utilization approaches 1.
  const Trace t = trace::make_rubik_section(256, 57);
  const auto result =
      simulate_shared_bus(t, config_of(64, SimTime::us(10)));
  EXPECT_GT(result.queue_utilization(), 0.8);
}

TEST(SharedBus, BucketExclusivitySerializesCrossProduct) {
  // The Tourney cross-product hurts the shared-memory design too: tokens
  // hashed to one bucket execute sequentially (the bucket is accessed
  // exclusively), regardless of processor count.
  const Trace t = trace::make_tourney_section();
  const double s8 = shared_bus_speedup(t, config_of(8, SimTime::us(1)));
  const double s64 = shared_bus_speedup(t, config_of(64, SimTime::us(1)));
  EXPECT_LT(s64, 1.6 * s8);  // adding processors barely helps
  const auto result = simulate_shared_bus(t, config_of(64, SimTime::us(1)));
  EXPECT_GT(result.bucket_wait, SimTime::us(0));
}

TEST(SharedBus, ComparableSpeedupsToMpcAtModerateScale) {
  // The paper: "For a number of processors comparable to our shared-bus
  // implementation, the MPCs provide a comparable speedup in the
  // simulated sections."  Compare at 16 processors.
  const auto sections = std::vector<Trace>{
      trace::make_rubik_section(), trace::make_weaver_section()};
  for (const Trace& t : sections) {
    SimConfig mpc;
    mpc.match_processors = 16;
    mpc.costs = CostModel::paper_run(2);
    const double s_mpc = speedup(
        t, mpc, Assignment::round_robin(t.num_buckets, 16));
    const double s_bus = shared_bus_speedup(t, config_of(16, SimTime::us(3)));
    EXPECT_GT(s_bus, 0.5 * s_mpc);
    EXPECT_LT(s_bus, 2.0 * s_mpc);
  }
}

TEST(SharedBus, Deterministic) {
  const Trace t = trace::make_weaver_section(64, 59);
  const auto a = simulate_shared_bus(t, config_of(8, SimTime::us(3)));
  const auto b = simulate_shared_bus(t, config_of(8, SimTime::us(3)));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.queue_busy, b.queue_busy);
}

TEST(SharedBus, CycleSpansSumToMakespan) {
  const Trace t = trace::make_weaver_section(64, 61);
  const auto result = simulate_shared_bus(t, config_of(8, SimTime::us(3)));
  SimTime total{};
  for (SimTime span : result.cycle_spans) total += span;
  EXPECT_EQ(total, result.makespan);
}

}  // namespace
}  // namespace mpps::sim
