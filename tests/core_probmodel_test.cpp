// The Section 5.2.2 probabilistic model: verify its three published
// conclusions, and check Monte Carlo against the exact computation.
#include "src/core/probmodel.hpp"

#include <gtest/gtest.h>

namespace mpps::core {
namespace {

constexpr std::uint32_t kTrials = 20000;

TEST(ProbModel, Conclusion1_ExtremesAreRare) {
  // 256 buckets, 25% active, 16 processors.
  const auto r = probmodel_monte_carlo(256, 0.25, 16,
                                       BucketPlacement::IndependentUniform,
                                       kTrials, 1);
  EXPECT_LT(r.p_even, 0.01);
  EXPECT_LT(r.p_totally_uneven, 0.01);
}

TEST(ProbModel, Conclusion2_MoreActiveBucketsMoreEven) {
  // With a bigger active fraction the relative imbalance shrinks — the
  // paper's explanation for why right buckets distribute well.
  double prev_ratio = 1e9;
  for (double f : {0.1, 0.3, 0.6, 0.9}) {
    const auto r = probmodel_monte_carlo(
        256, f, 16, BucketPlacement::IndependentUniform, kTrials, 2);
    const double mean = f * 256.0 / 16.0;
    const double ratio = r.expected_max_load / mean;
    EXPECT_LT(ratio, prev_ratio) << "fraction " << f;
    prev_ratio = ratio;
  }
}

TEST(ProbModel, Conclusion3_MoreProcessorsMoreUneven) {
  // With more processors the permitted speedup falls further below linear.
  double prev_efficiency = 1.1;
  for (std::uint32_t procs : {2u, 8u, 32u, 64u}) {
    const auto r = probmodel_monte_carlo(
        256, 0.4, procs, BucketPlacement::IndependentUniform, kTrials, 3);
    const double efficiency =
        r.expected_speedup / static_cast<double>(procs);
    EXPECT_LT(efficiency, prev_efficiency) << "procs " << procs;
    prev_efficiency = efficiency;
  }
}

TEST(ProbModel, ExactMatchesMonteCarlo) {
  const auto exact = probmodel_exact(24, 4);
  const auto mc = probmodel_monte_carlo(
      1024, 24.0 / 1024.0, 4, BucketPlacement::IndependentUniform, 200000, 4);
  EXPECT_NEAR(exact.p_even, mc.p_even, 0.01);
  EXPECT_NEAR(exact.expected_max_load, mc.expected_max_load, 0.05);
}

TEST(ProbModel, ExactSingleProcessorDegenerate) {
  const auto r = probmodel_exact(10, 1);
  EXPECT_DOUBLE_EQ(r.p_even, 1.0);
  EXPECT_DOUBLE_EQ(r.p_totally_uneven, 1.0);  // both are "all on one proc"
  EXPECT_DOUBLE_EQ(r.expected_max_load, 10.0);
  EXPECT_DOUBLE_EQ(r.expected_speedup, 1.0);
}

TEST(ProbModel, ExactTwoBallsTwoProcs) {
  // Max load: P(1)=1/2 (split), P(2)=1/2 (together).
  const auto r = probmodel_exact(2, 2);
  EXPECT_NEAR(r.p_even, 0.5, 1e-9);
  EXPECT_NEAR(r.p_totally_uneven, 0.5, 1e-9);
  EXPECT_NEAR(r.expected_max_load, 1.5, 1e-9);
}

TEST(ProbModel, FixedPartitionIsMoreEvenThanIndependent) {
  // Dealing buckets round-robin caps each processor at B/P buckets, which
  // can only reduce the tail versus fully independent placement.
  const auto fixed = probmodel_monte_carlo(
      128, 0.5, 8, BucketPlacement::FixedPartition, kTrials, 5);
  const auto indep = probmodel_monte_carlo(
      128, 0.5, 8, BucketPlacement::IndependentUniform, kTrials, 5);
  EXPECT_LE(fixed.expected_max_load, indep.expected_max_load + 0.05);
}

TEST(ProbModel, DegenerateInputs) {
  const auto zero = probmodel_monte_carlo(
      64, 0.0, 8, BucketPlacement::IndependentUniform, 100, 6);
  EXPECT_DOUBLE_EQ(zero.expected_max_load, 0.0);
  const auto no_trials = probmodel_monte_carlo(
      64, 0.5, 8, BucketPlacement::IndependentUniform, 0, 7);
  EXPECT_DOUBLE_EQ(no_trials.p_even, 0.0);
}

TEST(ProbModel, MonteCarloDeterministicPerSeed) {
  const auto a = probmodel_monte_carlo(
      128, 0.3, 8, BucketPlacement::IndependentUniform, 1000, 42);
  const auto b = probmodel_monte_carlo(
      128, 0.3, 8, BucketPlacement::IndependentUniform, 1000, 42);
  EXPECT_DOUBLE_EQ(a.expected_max_load, b.expected_max_load);
}

}  // namespace
}  // namespace mpps::core
