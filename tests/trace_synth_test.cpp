// The synthetic sections must reproduce the paper's Table 5-2 exactly and
// carry the structural phenomena the analysis depends on.
#include "src/trace/synth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mpps::trace {
namespace {

TEST(SynthRubik, Table52CountsExact) {
  const TraceStats s = compute_stats(make_rubik_section());
  EXPECT_EQ(s.left, 2388u);
  EXPECT_EQ(s.right, 6114u);
  EXPECT_EQ(s.total(), 8502u);
}

TEST(SynthRubik, FourCycles) {
  EXPECT_EQ(make_rubik_section().cycles.size(), 4u);
}

TEST(SynthRubik, LeftShareIsRoughly28Percent) {
  const TraceStats s = compute_stats(make_rubik_section());
  EXPECT_NEAR(s.left_pct(), 28.0, 1.0);
}

TEST(SynthRubik, PerCycleActiveBucketsAreComplementary) {
  // Fig 5-5: the left-activation bucket sets of consecutive cycles barely
  // overlap — busy processors in one cycle go idle in the next.
  const Trace t = make_rubik_section();
  std::vector<std::set<std::uint32_t>> left_buckets(t.cycles.size());
  for (std::size_t c = 0; c < t.cycles.size(); ++c) {
    for (const auto& act : t.cycles[c].activations) {
      if (act.side == Side::Left) left_buckets[c].insert(act.bucket);
    }
  }
  for (std::size_t c = 0; c + 1 < t.cycles.size(); ++c) {
    std::vector<std::uint32_t> overlap;
    std::set_intersection(left_buckets[c].begin(), left_buckets[c].end(),
                          left_buckets[c + 1].begin(),
                          left_buckets[c + 1].end(),
                          std::back_inserter(overlap));
    const double frac = static_cast<double>(overlap.size()) /
                        static_cast<double>(left_buckets[c].size());
    EXPECT_LT(frac, 0.35) << "cycles " << c << " and " << c + 1;
  }
}

TEST(SynthRubik, DifferentSeedsDifferentTraces) {
  const Trace a = make_rubik_section(256, 1);
  const Trace b = make_rubik_section(256, 2);
  // Same aggregate counts...
  EXPECT_EQ(compute_stats(a).total(), compute_stats(b).total());
  // ...different bucket layout.
  EXPECT_NE(bucket_activity(a), bucket_activity(b));
}

TEST(SynthRubik, DeterministicForSeed) {
  const Trace a = make_rubik_section(256, 7);
  const Trace b = make_rubik_section(256, 7);
  EXPECT_EQ(bucket_activity(a), bucket_activity(b));
}

TEST(SynthWeaver, Table52CountsExact) {
  const TraceStats s = compute_stats(make_weaver_section());
  EXPECT_EQ(s.left, 338u);
  EXPECT_EQ(s.right, 78u);
  EXPECT_EQ(s.total(), 416u);
}

TEST(SynthWeaver, LeftShareIsRoughly81Percent) {
  const TraceStats s = compute_stats(make_weaver_section());
  EXPECT_NEAR(s.left_pct(), 81.0, 1.0);
}

TEST(SynthWeaver, BottleneckCycleShape) {
  // "only three left-activations ... generate a majority (120 out of about
  // 150) of the activations in one of the cycles"
  const Trace t = make_weaver_section();
  ASSERT_EQ(t.cycles.size(), 4u);
  const auto& cycle = t.cycles.back();
  EXPECT_EQ(cycle.activations.size(), 150u);
  std::size_t hot = 0;
  std::uint64_t hot_successors = 0;
  for (const auto& act : cycle.activations) {
    if (act.node == weaver_bottleneck_node()) {
      ++hot;
      hot_successors += act.successors;
    }
  }
  EXPECT_EQ(hot, 3u);
  EXPECT_EQ(hot_successors, 120u);
}

TEST(SynthWeaver, BottleneckHasMultipleOutputNodes) {
  // The bottleneck node is shared: its successors land on several distinct
  // nodes (what unsharing splits apart).
  const Trace t = make_weaver_section();
  std::set<std::uint32_t> outputs;
  for (const auto& cycle : t.cycles) {
    std::set<std::uint64_t> hot_ids;
    for (const auto& act : cycle.activations) {
      if (act.node == weaver_bottleneck_node()) hot_ids.insert(act.id.value());
      if (act.parent.valid() && hot_ids.contains(act.parent.value())) {
        outputs.insert(act.node.value());
      }
    }
  }
  EXPECT_EQ(outputs.size(), 4u);
}

TEST(SynthTourney, Table52CountsExact) {
  const TraceStats s = compute_stats(make_tourney_section());
  EXPECT_EQ(s.left, 10667u);
  EXPECT_EQ(s.right, 83u);
  EXPECT_EQ(s.total(), 10750u);
}

TEST(SynthTourney, LeftShareIsRoughly99Percent) {
  const TraceStats s = compute_stats(make_tourney_section());
  EXPECT_NEAR(s.left_pct(), 99.0, 0.5);
}

TEST(SynthTourney, FiveCyclesWithHeavyMiddle) {
  const Trace t = make_tourney_section();
  ASSERT_EQ(t.cycles.size(), 5u);
  EXPECT_GT(t.cycles[2].activations.size(), 10000u);
  for (std::size_t c : {0u, 1u, 3u, 4u}) {
    EXPECT_LT(t.cycles[c].activations.size(), 100u);
  }
}

TEST(SynthTourney, CrossProductNodeUsesOneBucket) {
  // The two-input node has no equality test: the hash cannot discriminate,
  // every activation at it lands in the same bucket.
  const Trace t = make_tourney_section();
  std::set<std::uint32_t> buckets;
  std::size_t count = 0;
  for (const auto& act : t.cycles[2].activations) {
    if (act.node == tourney_cross_node()) {
      buckets.insert(act.bucket);
      ++count;
    }
  }
  EXPECT_EQ(buckets.size(), 1u);
  EXPECT_EQ(count, 150u);
}

TEST(SynthTourney, LocalSuccessorsShareTheCrossBucket) {
  // The "non-randomized" successors hash to the cross node's bucket too:
  // they are processed locally and exchange no messages.
  const Trace t = make_tourney_section();
  std::uint32_t cross_bucket = 0;
  for (const auto& act : t.cycles[2].activations) {
    if (act.node == tourney_cross_node()) {
      cross_bucket = act.bucket;
      break;
    }
  }
  std::size_t local = 0;
  for (const auto& act : t.cycles[2].activations) {
    if (act.node == tourney_cross_local_node()) {
      EXPECT_EQ(act.bucket, cross_bucket);
      ++local;
    }
  }
  EXPECT_EQ(local, 1500u);  // 20% of 7500 successors
}

TEST(SynthTourney, CrossProductTokensCarryDistinctKeys) {
  // The tokens DO carry distinct values (key classes) — the hash just
  // ignores them.  Copy-and-constraint exploits exactly this.
  const Trace t = make_tourney_section();
  std::set<std::uint32_t> keys;
  for (const auto& act : t.cycles[2].activations) {
    if (act.node == tourney_cross_node()) keys.insert(act.key_class);
  }
  EXPECT_GT(keys.size(), 1u);
}

TEST(BucketFor, StableAndInRange) {
  for (std::uint32_t n = 0; n < 64; ++n) {
    for (std::uint32_t k = 0; k < 8; ++k) {
      const auto b = bucket_for(NodeId{n}, k, 128);
      EXPECT_LT(b, 128u);
      EXPECT_EQ(b, bucket_for(NodeId{n}, k, 128));
    }
  }
}

TEST(BucketFor, SpreadsAcrossBuckets) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t k = 0; k < 64; ++k) {
    seen.insert(bucket_for(NodeId{7}, k, 256));
  }
  EXPECT_GT(seen.size(), 48u);  // near-injective for small key sets
}

}  // namespace
}  // namespace mpps::trace
