// TREAT: correctness against Rete and the naive matcher, plus the classic
// TREAT-vs-Rete state-size trade.
#include "src/rete/treat.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.hpp"

#include "src/ops5/parser.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/naive.hpp"
#include "src/rete/network.hpp"

namespace mpps::rete {
namespace {

using ops5::WorkingMemory;

struct TreatFixture {
  ops5::Program program;
  TreatEngine engine;
  WorkingMemory wm;

  explicit TreatFixture(std::string_view src)
      : program(ops5::parse_program(src)), engine(program) {}

  WmeId add(std::string_view wme_text) {
    const WmeId id = wm.add(ops5::parse_wme(wme_text));
    flush();
    return id;
  }
  void remove(WmeId id) {
    wm.remove(id);
    flush();
  }
  void flush() {
    for (const auto& change : wm.drain_changes()) {
      engine.process_change(change);
    }
  }
  [[nodiscard]] std::size_t cs_size() const {
    return engine.conflict_set().size();
  }
};

TEST(Treat, SimpleJoin) {
  TreatFixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  EXPECT_EQ(f.cs_size(), 0u);
  f.add("(b ^v 1)");
  EXPECT_EQ(f.cs_size(), 1u);
  f.add("(b ^v 2)");
  EXPECT_EQ(f.cs_size(), 1u);
  f.add("(a ^v 2)");
  EXPECT_EQ(f.cs_size(), 2u);
}

TEST(Treat, DeleteDropsInstantiationsWithoutTokenFlood) {
  TreatFixture f("(p pair (a ^v <x>) (b ^v <x>) --> (halt))");
  const WmeId a = f.add("(a ^v 1)");
  f.add("(b ^v 1)");
  ASSERT_EQ(f.cs_size(), 1u);
  const auto joins_before = f.engine.stats().join_attempts;
  f.remove(a);
  EXPECT_EQ(f.cs_size(), 0u);
  // TREAT's point: a positive delete does no join work at all.
  EXPECT_EQ(f.engine.stats().join_attempts, joins_before);
}

TEST(Treat, SelfJoinNoDuplicates) {
  // One wme matching two CEs must produce exactly the cross pairs, not
  // duplicated instantiations.
  TreatFixture f("(p twin (item ^v <x>) (item ^v <x>) --> (halt))");
  f.add("(item ^v 1)");
  EXPECT_EQ(f.cs_size(), 1u);  // (w1, w1)
  f.add("(item ^v 1)");
  EXPECT_EQ(f.cs_size(), 4u);  // all ordered pairs of {w1, w2}
}

TEST(Treat, NegationBlocksAndUnblocks) {
  TreatFixture f("(p lonely (a ^v <x>) -(b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  EXPECT_EQ(f.cs_size(), 1u);
  const WmeId b = f.add("(b ^v 1)");
  EXPECT_EQ(f.cs_size(), 0u);
  f.remove(b);
  EXPECT_EQ(f.cs_size(), 1u);
}

TEST(Treat, NegationCountsMultipleBlockers) {
  TreatFixture f("(p lonely (a ^v <x>) -(b ^v <x>) --> (halt))");
  f.add("(a ^v 1)");
  const WmeId b1 = f.add("(b ^v 1)");
  const WmeId b2 = f.add("(b ^v 1)");
  f.remove(b1);
  EXPECT_EQ(f.cs_size(), 0u);  // b2 still blocks
  f.remove(b2);
  EXPECT_EQ(f.cs_size(), 1u);
}

TEST(Treat, KeepsNoBetaState) {
  // Rete's beta memories hold partial matches; TREAT holds only alpha
  // references.  Load a join-heavy WM and compare state sizes.
  const char* src = "(p chain (a ^v <x>) (b ^v <x> ^w <y>) (c ^w <y>) --> (halt))";
  TreatFixture treat(src);
  const ops5::Program program = ops5::parse_program(src);
  const Network net = Network::compile(program);
  Engine rete(net);
  WorkingMemory wm;
  for (int i = 0; i < 8; ++i) {
    const std::string n = std::to_string(i % 2);
    for (const std::string& text : std::vector<std::string>{
             "(a ^v " + n + ")", "(b ^v " + n + " ^w k)", "(c ^w k)"}) {
      treat.add(text);
      wm.add(ops5::parse_wme(text));
    }
  }
  for (const auto& change : wm.drain_changes()) rete.process_change(change);
  ASSERT_EQ(treat.cs_size(), rete.conflict_set().size());
  const std::size_t beta_tokens = rete.left_memory().total_tokens() +
                                  rete.right_memory().total_tokens();
  EXPECT_GT(beta_tokens, 0u);
  // TREAT stores one alpha reference per (wme, matching CE) and nothing
  // else — no partial join results.
  EXPECT_EQ(treat.engine.alpha_memory_size(), 24u);
}

// ---- the differential triangle: naive == Rete == TREAT -------------------

using Key = std::pair<std::uint32_t, std::vector<std::uint64_t>>;

std::vector<Key> normalize(const std::vector<Instantiation>& insts) {
  std::vector<Key> out;
  for (const auto& inst : insts) {
    Key k;
    k.first = inst.production.value();
    for (WmeId w : inst.token.wmes) k.second.push_back(w.value());
    out.push_back(std::move(k));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class TreatTriangle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreatTriangle, AgreesWithReteAndNaive) {
  // Reuses the oracle generator's vocabulary through hand-rolled programs
  // with joins, negation, predicates and disjunctions.
  const char* programs[] = {
      R"((p p1 (a ^p <x>) (b ^p <x>) --> (halt))
         (p p2 (a ^p <x>) -(c ^q <x>) --> (halt)))",
      R"((p p1 (a ^p <x> ^q <y>) (b ^p <x>) (c ^q <y>) --> (halt)))",
      R"((p p1 (a ^p > 0) -(b ^p <> 1) --> (halt))
         (p p2 (b ^p << 0 1 >>) (a ^p <x>) --> (halt)))",
      R"((p p1 (a ^p <x>) (a ^p <x>) --> (halt)))",
  };
  Rng rng(GetParam());
  const std::string src = programs[GetParam() % 4];
  const ops5::Program program = ops5::parse_program(src);
  const Network net = Network::compile(program);
  Engine rete(net);
  TreatEngine treat(program);
  WorkingMemory wm;
  std::vector<WmeId> live;

  const char* classes[] = {"a", "b", "c"};
  const char* attrs[] = {"p", "q"};
  for (int step = 0; step < 30; ++step) {
    const bool do_remove = !live.empty() && rng.below(3) == 0;
    if (do_remove) {
      const std::uint64_t pick = rng.below(live.size());
      wm.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      std::vector<std::pair<Symbol, ops5::Value>> attrs_list;
      const std::uint64_t n = 1 + rng.below(2);
      for (std::uint64_t i = 0; i < n; ++i) {
        attrs_list.emplace_back(Symbol::intern(attrs[rng.below(2)]),
                                ops5::Value(static_cast<long>(rng.below(3))));
      }
      live.push_back(
          wm.add(ops5::Wme(Symbol::intern(classes[rng.below(3)]),
                           std::move(attrs_list))));
    }
    for (const auto& change : wm.drain_changes()) {
      rete.process_change(change);
      treat.process_change(change);
    }
    const auto expected = normalize(naive_match(program, wm.all()));
    ASSERT_EQ(normalize(rete.conflict_set().all()), expected)
        << "Rete diverged at step " << step;
    ASSERT_EQ(normalize(treat.conflict_set().all()), expected)
        << "TREAT diverged at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreatTriangle,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace mpps::rete
