// End-to-end integration: the shipped example programs run through the
// full stack — parse → Rete → MRA loop → trace → MPC simulation — and
// reach their documented outcomes.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

#include "src/core/pipeline.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/interp.hpp"
#include "src/sim/sharedbus.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/io.hpp"

#ifndef MPPS_PROGRAMS_DIR
#define MPPS_PROGRAMS_DIR "examples/programs"
#endif

namespace mpps {
namespace {

std::string load_program(const std::string& name) {
  const std::string path = std::string(MPPS_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "cannot open " << path;
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

rete::Interpreter run_program(const std::string& name,
                              rete::InterpreterOptions options = {}) {
  rete::Interpreter interp(ops5::parse_program(load_program(name)), options);
  interp.load_initial_wmes();
  interp.run();
  return interp;
}

TEST(IntegrationPrograms, CounterCountsToTen) {
  auto interp = run_program("counter.ops");
  EXPECT_TRUE(interp.halted());
  EXPECT_EQ(interp.firings().size(), 11u);
  const auto all = interp.wm().all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0]->get(Symbol::intern("value")).equals(ops5::Value(10L)));
}

TEST(IntegrationPrograms, BlocksWorldAchievesGoal) {
  auto interp = run_program("blocks.ops");
  EXPECT_TRUE(interp.halted());
  bool a_on_b = false;
  for (const auto* wme : interp.wm().all()) {
    if (wme->wme_class() == Symbol::intern("block") &&
        wme->get(Symbol::intern("name")).equals(ops5::Value::sym("a"))) {
      a_on_b = wme->get(Symbol::intern("on")).equals(ops5::Value::sym("b"));
    }
  }
  EXPECT_TRUE(a_on_b);
}

TEST(IntegrationPrograms, MonkeyGetsTheBananas) {
  std::ostringstream narration;
  rete::InterpreterOptions options;
  options.out = &narration;
  auto interp = run_program("monkey_bananas.ops", options);
  EXPECT_TRUE(interp.halted());
  // The plan fires in the canonical order.
  const std::vector<std::string> expected = {
      "walk-to-ladder", "grab-ladder",   "carry-ladder",  "drop-ladder",
      "climb-ladder",   "grasp-bananas", "goal-satisfied"};
  ASSERT_EQ(interp.firings().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(interp.firings()[i].production, expected[i]) << "step " << i;
  }
  bool holds_bananas = false;
  for (const auto* wme : interp.wm().all()) {
    if (wme->wme_class() == Symbol::intern("monkey")) {
      holds_bananas =
          wme->get(Symbol::intern("holds")).equals(ops5::Value::sym("bananas"));
      EXPECT_TRUE(
          wme->get(Symbol::intern("on")).equals(ops5::Value::sym("ladder")));
    }
  }
  EXPECT_TRUE(holds_bananas);
  EXPECT_NE(narration.str().find("monkey grasps the bananas"),
            std::string::npos);
}

TEST(IntegrationPrograms, PairingsGenerateFullCrossProduct) {
  auto interp = run_program("pairings.ops");
  EXPECT_FALSE(interp.halted());  // quiescent
  EXPECT_EQ(interp.firings().size(), 30u);  // 6 teams × 5 opponents
  std::size_t pairings = 0;
  for (const auto* wme : interp.wm().all()) {
    if (wme->wme_class() == Symbol::intern("pairing")) ++pairings;
  }
  EXPECT_EQ(pairings, 30u);
}

TEST(IntegrationPrograms, EveryProgramSurvivesTheFullPipeline) {
  for (const char* name : {"counter.ops", "blocks.ops",
                           "monkey_bananas.ops", "pairings.ops"}) {
    SCOPED_TRACE(name);
    const core::PipelineResult piped =
        core::record_trace_from_source(load_program(name), name);
    EXPECT_NO_THROW(trace::validate(piped.trace));
    // Serialization round-trip.
    const trace::Trace round =
        trace::from_string(trace::to_string(piped.trace));
    EXPECT_EQ(round.total_activations(), piped.trace.total_activations());
    // MPC simulation laws.
    for (std::uint32_t procs : {1u, 4u, 16u}) {
      sim::SimConfig config;
      config.match_processors = procs;
      config.costs = sim::CostModel::paper_run(4);
      const double s = sim::speedup(
          piped.trace, config,
          sim::Assignment::round_robin(piped.trace.num_buckets, procs));
      EXPECT_GT(s, 0.0);
      EXPECT_LE(s, static_cast<double>(procs) + 1e-9);
    }
    // Shared-bus baseline agrees with the serial baseline at one proc.
    sim::SharedBusConfig bus;
    bus.processors = 1;
    bus.queue_access = SimTime::us(0);
    bus.costs = sim::CostModel::zero_overhead();
    EXPECT_EQ(sim::simulate_shared_bus(piped.trace, bus).makespan,
              sim::baseline_time(piped.trace));
  }
}

// ---- the cube workload (the paper's Rubik program, in spirit) -----------

/// Replaces the demo move sequence of cube.ops with `turns` and runs it.
rete::Interpreter run_cube(const std::vector<std::string>& turns) {
  ops5::Program program = ops5::parse_program(load_program("cube.ops"));
  std::erase_if(program.initial_wmes, [](const ops5::MakeAction& make) {
    return make.wme_class == Symbol::intern("move");
  });
  long seq = 1;
  for (const auto& turn : turns) {
    ops5::MakeAction move;
    move.wme_class = Symbol::intern("move");
    move.slots.emplace_back(Symbol::intern("seq"),
                            ops5::Term::make_const(ops5::Value(seq++)));
    move.slots.emplace_back(Symbol::intern("turn"),
                            ops5::Term::make_const(ops5::Value::sym(turn)));
    program.initial_wmes.push_back(std::move(move));
  }
  rete::Interpreter interp(program, {});
  interp.load_initial_wmes();
  interp.run();
  return interp;
}

/// True when every face is uniformly its original color.
bool cube_is_solved(rete::Interpreter& interp) {
  const std::map<std::string, std::string> home = {
      {"u", "white"}, {"d", "yellow"}, {"f", "green"},
      {"b", "blue"},  {"l", "orange"}, {"r", "red"}};
  for (const auto* wme : interp.wm().all()) {
    if (wme->wme_class() != Symbol::intern("sticker")) continue;
    const std::string face(
        wme->get(Symbol::intern("face")).as_symbol().text());
    const std::string color(
        wme->get(Symbol::intern("color")).as_symbol().text());
    if (home.at(face) != color) return false;
  }
  return true;
}

TEST(IntegrationCube, DemoSequenceReturnsToIdentity) {
  auto interp = run_program("cube.ops");
  EXPECT_TRUE(interp.halted());
  EXPECT_EQ(interp.firings().size(), 7u);  // 6 moves + halt
  EXPECT_TRUE(cube_is_solved(interp));
}

TEST(IntegrationCube, EveryQuarterTurnHasOrderFour) {
  for (const char* turn : {"u", "u-inv", "d", "d-inv"}) {
    SCOPED_TRACE(turn);
    auto once = run_cube({turn});
    EXPECT_TRUE(once.halted());
    EXPECT_FALSE(cube_is_solved(once)) << "a quarter turn must scramble";
    auto four = run_cube({turn, turn, turn, turn});
    EXPECT_TRUE(four.halted());
    EXPECT_TRUE(cube_is_solved(four));
  }
}

TEST(IntegrationCube, InversesCancel) {
  for (auto [a, b] : std::vector<std::pair<const char*, const char*>>{
           {"u", "u-inv"}, {"d", "d-inv"}}) {
    auto interp = run_cube({a, b});
    EXPECT_TRUE(cube_is_solved(interp));
    auto reversed = run_cube({b, a});
    EXPECT_TRUE(cube_is_solved(reversed));
  }
}

TEST(IntegrationCube, DisjointLayersCommute) {
  auto interp = run_cube({"u", "d", "u-inv", "d-inv"});
  EXPECT_TRUE(cube_is_solved(interp));
}

TEST(IntegrationCube, FloodsTheMatchNetworkEveryFiring) {
  // Each firing modifies 13 wmes.  The right activations hit every join
  // whose right input mentions a changed sticker, and — because the
  // productions are deep 13-join chains — each change near the top of a
  // chain also regenerates the left tokens below it.  The result is a
  // heavy, mixed activation load per MRA cycle.
  ops5::Program program = ops5::parse_program(load_program("cube.ops"));
  const core::PipelineResult piped = core::record_trace(program, "cube");
  const trace::TraceStats stats = trace::compute_stats(piped.trace);
  EXPECT_GT(stats.total(), 500u);
  EXPECT_GT(stats.left_pct(), 10.0);
  EXPECT_GT(100.0 - stats.left_pct(), 10.0);
  // Deep chains mean real parallelism is available per cycle.
  sim::SimConfig config;
  config.match_processors = 8;
  config.costs = sim::CostModel::zero_overhead();
  const double s = sim::speedup(
      piped.trace, config,
      sim::Assignment::round_robin(piped.trace.num_buckets, 8));
  EXPECT_GT(s, 1.2);
}

// ---- tic-tac-toe self-play ------------------------------------------------

TEST(IntegrationTicTacToe, SelfPlayEndsInDraw) {
  // Both sides share a win > block > center > corner > side heuristic;
  // competent play from both means a draw.
  std::ostringstream narration;
  rete::InterpreterOptions options;
  options.out = &narration;
  options.max_cycles = 2000;
  auto interp = run_program("tictactoe.ops", options);
  EXPECT_TRUE(interp.halted());
  EXPECT_NE(narration.str().find("draw"), std::string::npos);
  EXPECT_EQ(narration.str().find("wins"), std::string::npos);
}

TEST(IntegrationTicTacToe, BoardEndsLegal) {
  rete::InterpreterOptions options;
  options.max_cycles = 2000;
  auto interp = run_program("tictactoe.ops", options);
  int x_marks = 0;
  int o_marks = 0;
  int empties = 0;
  for (const auto* wme : interp.wm().all()) {
    if (wme->wme_class() != Symbol::intern("cell")) continue;
    const auto mark = wme->get(Symbol::intern("mark"));
    if (mark.equals(ops5::Value::sym("x"))) ++x_marks;
    else if (mark.equals(ops5::Value::sym("o"))) ++o_marks;
    else ++empties;
  }
  EXPECT_EQ(x_marks + o_marks + empties, 9);
  // x moves first: either equal counts or one extra x.
  EXPECT_TRUE(x_marks == o_marks || x_marks == o_marks + 1)
      << "x=" << x_marks << " o=" << o_marks;
  EXPECT_EQ(empties, 0);  // draw fills the board
}

TEST(IntegrationTicTacToe, OpensInTheCenter) {
  std::ostringstream narration;
  rete::InterpreterOptions options;
  options.out = &narration;
  options.max_cycles = 2000;
  run_program("tictactoe.ops", options);
  // The first placement takes the highest-scoring opening square.
  EXPECT_EQ(narration.str().rfind("x plays 5", 0), 0u);
}

TEST(IntegrationTicTacToe, DeterministicGame) {
  std::ostringstream a;
  std::ostringstream b;
  for (auto* sink : {&a, &b}) {
    rete::InterpreterOptions options;
    options.out = sink;
    options.max_cycles = 2000;
    run_program("tictactoe.ops", options);
  }
  EXPECT_EQ(a.str(), b.str());
}

TEST(IntegrationTicTacToe, BlocksAnImminentWin) {
  // Start mid-game: o is about to complete 1-2-3; x (to move) must block.
  ops5::Program program = ops5::parse_program(load_program("tictactoe.ops"));
  std::erase_if(program.initial_wmes, [](const ops5::MakeAction& make) {
    return make.wme_class == Symbol::intern("cell");
  });
  auto add_cell = [&](int pos, const char* mark) {
    ops5::MakeAction cell;
    cell.wme_class = Symbol::intern("cell");
    cell.slots.emplace_back(Symbol::intern("pos"),
                            ops5::Term::make_const(ops5::Value(long{pos})));
    cell.slots.emplace_back(Symbol::intern("mark"),
                            ops5::Term::make_const(ops5::Value::sym(mark)));
    program.initial_wmes.push_back(std::move(cell));
  };
  add_cell(1, "o");
  add_cell(2, "o");
  add_cell(5, "x");
  add_cell(9, "x");
  for (int pos : {3, 4, 6, 7, 8}) add_cell(pos, "empty");
  std::ostringstream narration;
  rete::InterpreterOptions options;
  options.out = &narration;
  options.max_cycles = 2000;
  rete::Interpreter interp(program, options);
  interp.load_initial_wmes();
  interp.run();
  EXPECT_EQ(narration.str().rfind("x plays 3", 0), 0u) << narration.str();
}

TEST(IntegrationPrograms, MeaAndLexAgreeOnDeterministicPlans) {
  for (auto strategy : {rete::Strategy::Lex, rete::Strategy::Mea}) {
    rete::InterpreterOptions options;
    options.strategy = strategy;
    auto interp = run_program("monkey_bananas.ops", options);
    EXPECT_TRUE(interp.halted());
    EXPECT_EQ(interp.firings().size(), 7u);
  }
}

}  // namespace
}  // namespace mpps
