// Golden-file tests pinning the CLI's `--json` schema
// ("schema_version": 2): the stats/simulate/sweep JSON for the synthetic
// weaver section must match tests/golden/*.json byte for byte.  The
// section generator and the simulator are deterministic, so any diff
// here is a real schema or semantics change — regenerate with
//   build/tools/mpps sections -o /tmp/g
//   build/tools/mpps stats /tmp/g/weaver.trace --json --procs 4 --top 3
//     > tests/golden/stats_weaver.json
//   build/tools/mpps simulate /tmp/g/weaver.trace --json --procs 2,4
//     --run 2 --jobs 1 > tests/golden/simulate_weaver.json
//   build/tools/mpps sweep /tmp/g/weaver.trace --json --procs 2,4
//     --runs 0,2 --jobs 1 > tests/golden/sweep_weaver.json
// and review the diff like any other observable behavior change
// (downstream tooling parses these objects).
#include "src/core/cli.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

namespace mpps::core {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class GoldenJson : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(
        (std::filesystem::path(::testing::TempDir()) /
         ("golden_json." + std::to_string(::getpid())))
            .string());
    std::filesystem::create_directories(*dir_);
    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(run_cli({"sections", "-o", *dir_}, out, err), 0) << err.str();
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  static std::string weaver() { return *dir_ + "/weaver.trace"; }

  static void expect_golden(std::vector<std::string> args,
                            const std::string& golden_name) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = run_cli(args, out, err);
    ASSERT_EQ(code, 0) << err.str();
    const std::string expected =
        read_file(std::string(MPPS_GOLDEN_DIR) + "/" + golden_name);
    ASSERT_FALSE(expected.empty()) << golden_name << " is empty";
    EXPECT_EQ(out.str(), expected)
        << "--json output no longer matches tests/golden/" << golden_name
        << "; regenerate (header comment) and review the schema diff";
  }

  static std::string* dir_;
};

std::string* GoldenJson::dir_ = nullptr;

TEST_F(GoldenJson, StatsSchema) {
  expect_golden({"stats", weaver(), "--json", "--procs", "4", "--top", "3"},
                "stats_weaver.json");
}

TEST_F(GoldenJson, SimulateSchema) {
  expect_golden({"simulate", weaver(), "--json", "--procs", "2,4", "--run",
                 "2", "--jobs", "1"},
                "simulate_weaver.json");
}

TEST_F(GoldenJson, SweepSchema) {
  expect_golden({"sweep", weaver(), "--json", "--procs", "2,4", "--runs",
                 "0,2", "--jobs", "1"},
                "sweep_weaver.json");
}

TEST_F(GoldenJson, SchemaVersionIsDeclared) {
  // Belt and braces on top of the byte comparison: every --json mode
  // leads with the version marker tooling keys on.
  for (const char* cmd : {"stats", "simulate", "sweep"}) {
    std::ostringstream out;
    std::ostringstream err;
    std::vector<std::string> args{cmd, weaver(), "--json", "--procs", "2"};
    if (std::string(cmd) == "sweep") {
      args.insert(args.end(), {"--runs", "1"});
    }
    ASSERT_EQ(run_cli(args, out, err), 0) << err.str();
    EXPECT_NE(out.str().find("\"schema_version\": 2"), std::string::npos)
        << cmd << ":\n" << out.str();
    EXPECT_EQ(out.str().front(), '{') << cmd;
  }
}

TEST_F(GoldenJson, ServeSchemaVersionAndObjects) {
  // `serve` timings are wall-clock so there is no byte-golden file; pin
  // the v2 markers instead: the version stamp and the two objects the
  // version bump added ("serve" counters, "latency" percentiles).
  const std::string program = *dir_ + "/serve_golden.ops";
  {
    std::ofstream ops(program);
    ops << "(make job ^id 1)\n"
           "(p assign (job ^id <i>) (worker ^id <i>) --> (halt))\n";
  }
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(run_cli({"serve", program, "--json", "--sessions", "2",
                     "--transactions", "4"},
                    out, err),
            0)
      << err.str();
  EXPECT_NE(out.str().find("\"schema_version\": 2"), std::string::npos)
      << out.str();
  for (const char* key :
       {"\"serve\": {", "\"latency\": {", "\"p50_us\":", "\"p95_us\":",
        "\"p99_us\":", "\"activations_per_s\":",
        "\"cross_session_deltas\":"}) {
    EXPECT_NE(out.str().find(key), std::string::npos)
        << key << " missing:\n"
        << out.str();
  }
}

}  // namespace
}  // namespace mpps::core
