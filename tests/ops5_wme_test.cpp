#include "src/ops5/wme.hpp"

#include <gtest/gtest.h>

namespace mpps::ops5 {
namespace {

Wme block(std::string_view name, std::string_view color) {
  return Wme(Symbol::intern("block"),
             {{Symbol::intern("name"), Value::sym(name)},
              {Symbol::intern("color"), Value::sym(color)}});
}

TEST(Wme, GetByAttribute) {
  Wme w = block("b1", "blue");
  EXPECT_TRUE(w.get(Symbol::intern("color")).equals(Value::sym("blue")));
  EXPECT_TRUE(w.get(Symbol::intern("missing")).absent());
}

TEST(Wme, SetReplacesAndInserts) {
  Wme w = block("b1", "blue");
  w.set(Symbol::intern("color"), Value::sym("red"));
  EXPECT_TRUE(w.get(Symbol::intern("color")).equals(Value::sym("red")));
  w.set(Symbol::intern("size"), Value(3L));
  EXPECT_TRUE(w.get(Symbol::intern("size")).equals(Value(3L)));
  EXPECT_EQ(w.attrs().size(), 3u);
}

TEST(Wme, SameContentIgnoresTimetag) {
  WorkingMemory wm;
  const WmeId a = wm.add(block("b1", "blue"));
  const WmeId b = wm.add(block("b1", "blue"));
  EXPECT_NE(a, b);
  EXPECT_TRUE(wm.find(a)->same_content(*wm.find(b)));
}

TEST(Wme, SameContentDetectsDifferences) {
  EXPECT_FALSE(block("b1", "blue").same_content(block("b1", "red")));
  EXPECT_FALSE(block("b1", "blue")
                   .same_content(Wme(Symbol::intern("hand"),
                                     {{Symbol::intern("name"),
                                       Value::sym("b1")}})));
}

TEST(Wme, ToStringShowsClassAndAttrs) {
  const std::string s = block("b1", "blue").to_string();
  EXPECT_NE(s.find("(block"), std::string::npos);
  EXPECT_NE(s.find("^color blue"), std::string::npos);
}

TEST(WorkingMemory, TimetagsIncrease) {
  WorkingMemory wm;
  const WmeId a = wm.add(block("b1", "blue"));
  const WmeId b = wm.add(block("b2", "red"));
  EXPECT_LT(a, b);
}

TEST(WorkingMemory, RemoveLiveWme) {
  WorkingMemory wm;
  const WmeId a = wm.add(block("b1", "blue"));
  EXPECT_EQ(wm.size(), 1u);
  EXPECT_TRUE(wm.remove(a));
  EXPECT_EQ(wm.size(), 0u);
  EXPECT_EQ(wm.find(a), nullptr);
  EXPECT_FALSE(wm.remove(a));  // already gone
}

TEST(WorkingMemory, DrainChangesInOrder) {
  WorkingMemory wm;
  const WmeId a = wm.add(block("b1", "blue"));
  wm.add(block("b2", "red"));
  wm.remove(a);
  const auto changes = wm.drain_changes();
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0].kind, WmeChange::Kind::Add);
  EXPECT_EQ(changes[1].kind, WmeChange::Kind::Add);
  EXPECT_EQ(changes[2].kind, WmeChange::Kind::Delete);
  EXPECT_EQ(changes[2].wme.id(), a);
  EXPECT_TRUE(wm.drain_changes().empty());  // drained
}

TEST(WorkingMemory, DeleteChangeCarriesContent) {
  WorkingMemory wm;
  const WmeId a = wm.add(block("b1", "blue"));
  (void)wm.drain_changes();
  wm.remove(a);
  const auto changes = wm.drain_changes();
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_TRUE(
      changes[0].wme.get(Symbol::intern("color")).equals(Value::sym("blue")));
}

TEST(WorkingMemory, AllReturnsLiveInOrder) {
  WorkingMemory wm;
  wm.add(block("b1", "blue"));
  const WmeId b = wm.add(block("b2", "red"));
  wm.add(block("b3", "green"));
  wm.remove(b);
  const auto all = wm.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(
      all[0]->get(Symbol::intern("name")).equals(Value::sym("b1")));
  EXPECT_TRUE(
      all[1]->get(Symbol::intern("name")).equals(Value::sym("b3")));
}

}  // namespace
}  // namespace mpps::ops5
