#include "src/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mpps {
namespace {

TEST(TextTable, AlignsAndBoxes) {
  TextTable t({"name", "count"});
  t.row().cell("rubik").cell(8502L);
  t.row().cell("weaver").cell(416L);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name   |"), std::string::npos);
  EXPECT_NE(s.find("|  8502 |"), std::string::npos);   // right-aligned number
  EXPECT_NE(s.find("| rubik  |"), std::string::npos);  // left-aligned text
  EXPECT_NE(s.find("+--------+"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"p", "speedup"});
  t.row().cell(8L).cell(5.25, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "p,speedup\n8,5.25\n");
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.row().cell("only");
  std::ostringstream os;
  t.print(os);
  // No crash and three separators per data row.
  const std::string s = os.str();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(TextTable, DoubleFormatting) {
  TextTable t({"x"});
  t.row().cell(1.0 / 3.0, 3);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x\n0.333\n");
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell(1L);
  t.row().cell(2L);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 5-1");
  EXPECT_NE(os.str().find("Figure 5-1"), std::string::npos);
}

}  // namespace
}  // namespace mpps
