#include "src/core/distribution.hpp"

#include <gtest/gtest.h>

#include "src/sim/simulator.hpp"
#include "src/trace/synth.hpp"

namespace mpps::core {
namespace {

using trace::Trace;

TEST(BucketCosts, MatchesCostModel) {
  trace::SectionBuilder b("costs", 8);
  b.begin_cycle(1);
  const auto r = b.root_at(trace::Side::Right, NodeId{1}, 2, 0);
  b.child_at(r, NodeId{2}, 5, 0);
  const Trace t = b.take();
  const auto costs = bucket_costs(t, 0, sim::CostModel{});
  ASSERT_EQ(costs.size(), 8u);
  EXPECT_EQ(costs[2], 32000u);  // right 16 us + one successor 16 us
  EXPECT_EQ(costs[5], 32000u);  // left 32 us
  EXPECT_EQ(costs[0], 0u);
}

TEST(Greedy, ProducesOneMapPerCycle) {
  const Trace t = trace::make_rubik_section(128, 31);
  const auto greedy = greedy_assignment(t, 8, sim::CostModel{});
  // Per-cycle maps: the same bucket may move between cycles.
  bool any_difference = false;
  for (std::uint32_t b = 0; b < 128; ++b) {
    if (greedy.proc_of(0, b) != greedy.proc_of(1, b)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Greedy, LowersImbalanceVsRoundRobin) {
  const Trace t = trace::make_rubik_section(256, 33);
  const auto rr = sim::Assignment::round_robin(256, 16);
  const auto greedy = greedy_assignment(t, 16, sim::CostModel{});
  for (std::size_t c = 0; c < t.cycles.size(); ++c) {
    EXPECT_LE(load_imbalance(t, c, greedy, sim::CostModel{}),
              load_imbalance(t, c, rr, sim::CostModel{}) + 1e-9)
        << "cycle " << c;
  }
}

TEST(Greedy, ImprovesSimulatedTime) {
  // Section 5.2.2: the greedy distribution improved speedups (paper: ~1.4x
  // on its traces).
  const Trace t = trace::make_rubik_section(256, 1);
  sim::SimConfig config;
  config.match_processors = 32;
  config.costs = sim::CostModel::zero_overhead();
  const auto t_rr =
      simulate(t, config, sim::Assignment::round_robin(256, 32)).makespan;
  const auto t_greedy =
      simulate(t, config, greedy_assignment(t, 32, config.costs)).makespan;
  EXPECT_LT(t_greedy, t_rr);
}

TEST(Greedy, RandomDoesNotBeatGreedy) {
  const Trace t = trace::make_rubik_section(256, 1);
  sim::SimConfig config;
  config.match_processors = 32;
  config.costs = sim::CostModel::zero_overhead();
  const auto t_greedy =
      simulate(t, config, greedy_assignment(t, 32, config.costs)).makespan;
  const auto t_random =
      simulate(t, config, sim::Assignment::random(256, 32, 99)).makespan;
  EXPECT_LE(t_greedy, t_random);
}

TEST(ResidentTokens, TracksPlusAndMinusTags) {
  trace::SectionBuilder b("resident", 4);
  b.begin_cycle(1);
  b.root_at(trace::Side::Right, NodeId{1}, 0, 0);        // + bucket 0
  b.root_at(trace::Side::Right, NodeId{1}, 0, 1);        // + bucket 0
  b.root_at(trace::Side::Left, NodeId{2}, 1, 0);         // + bucket 1
  b.begin_cycle(1);
  b.root_at(trace::Side::Right, NodeId{1}, 0, 0);
  Trace t = b.take();
  t.cycles[1].activations[0].tag = trace::Tag::Minus;  // - bucket 0
  const auto resident = core::resident_tokens_per_cycle(t);
  ASSERT_EQ(resident.size(), 2u);
  EXPECT_EQ(resident[0][0], 2u);
  EXPECT_EQ(resident[0][1], 1u);
  EXPECT_EQ(resident[1][0], 1u);  // one deleted
  EXPECT_EQ(resident[1][1], 1u);
}

TEST(MigrationOverhead, ZeroForStaticAssignment) {
  const Trace t = trace::make_rubik_section(64, 63);
  const auto rr = sim::Assignment::round_robin(64, 8);
  EXPECT_EQ(core::migration_overhead(t, rr, SimTime::us(33)), SimTime::us(0));
}

TEST(MigrationOverhead, ChargesMovedBucketsByResidency) {
  trace::SectionBuilder b("move", 2);
  b.begin_cycle(1);
  b.root_at(trace::Side::Right, NodeId{1}, 0, 0);
  b.root_at(trace::Side::Right, NodeId{1}, 0, 1);
  b.begin_cycle(1);
  b.root_at(trace::Side::Right, NodeId{1}, 1, 0);
  const Trace t = b.take();
  // Bucket 0 (2 resident tokens) moves between cycles; bucket 1 stays.
  const auto moving = sim::Assignment::per_cycle({{0u, 1u}, {1u, 1u}}, 2);
  EXPECT_EQ(core::migration_overhead(t, moving, SimTime::us(10)),
            SimTime::us(20));
}

TEST(CoalesceSmallCycles, SmallCyclesLandOnOneProcessor) {
  const Trace t = trace::make_weaver_section();
  const auto base = sim::Assignment::round_robin(t.num_buckets, 16);
  const auto coalesced = core::coalesce_small_cycles(t, base, 16, 100);
  // Cycles 1-3 have ~89 activations: coalesced.  Cycle 4 has 150: kept.
  for (std::size_t c = 0; c < 3; ++c) {
    const std::uint32_t proc = coalesced.proc_of(c, 0);
    for (std::uint32_t b = 0; b < t.num_buckets; ++b) {
      EXPECT_EQ(coalesced.proc_of(c, b), proc) << "cycle " << c;
    }
  }
  bool any_spread = false;
  for (std::uint32_t b = 1; b < t.num_buckets; ++b) {
    any_spread |= coalesced.proc_of(3, b) != coalesced.proc_of(3, 0);
  }
  EXPECT_TRUE(any_spread);
}

TEST(CoalesceSmallCycles, RotatesAcrossProcessors) {
  const Trace t = trace::make_weaver_section();
  const auto base = sim::Assignment::round_robin(t.num_buckets, 16);
  const auto coalesced = core::coalesce_small_cycles(t, base, 16, 100);
  // Consecutive coalesced cycles use different processors.
  EXPECT_NE(coalesced.proc_of(0, 0), coalesced.proc_of(1, 0));
}

TEST(CoalesceSmallCycles, EliminatesMessagesInSmallCycles) {
  const Trace t = trace::make_weaver_section();
  sim::SimConfig config;
  config.match_processors = 16;
  config.costs = sim::CostModel::paper_run(4);
  config.charge_instantiation_messages = false;
  const auto base = sim::Assignment::round_robin(t.num_buckets, 16);
  const auto result = sim::simulate(
      t, config, core::coalesce_small_cycles(t, base, 16, 100));
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(result.cycles[c].messages, 0u) << "cycle " << c;
  }
}

TEST(CoalesceSmallCycles, WinsUnderExtremeOverheads) {
  // The paper's motivation: useful "especially for systems with high
  // communication overheads" (first-generation MPCs).
  const Trace t = trace::make_weaver_section();
  sim::SimConfig config;
  config.match_processors = 16;
  config.costs.send_overhead = SimTime::us(150);
  config.costs.recv_overhead = SimTime::us(150);
  config.costs.wire_latency = SimTime::us(2000);
  const auto base = sim::Assignment::round_robin(t.num_buckets, 16);
  const auto distributed = sim::simulate(t, config, base).makespan;
  const auto coalesced =
      sim::simulate(t, config, core::coalesce_small_cycles(t, base, 16, 200))
          .makespan;
  EXPECT_LT(coalesced, distributed);
}

TEST(LoadImbalance, PerfectlyEvenIsOne) {
  trace::SectionBuilder b("even", 4);
  b.begin_cycle(1);
  for (std::uint32_t i = 0; i < 4; ++i) {
    b.root_at(trace::Side::Right, NodeId{1}, i, i);
  }
  const Trace t = b.take();
  EXPECT_DOUBLE_EQ(
      load_imbalance(t, 0, sim::Assignment::round_robin(4, 4),
                     sim::CostModel{}),
      1.0);
}

TEST(LoadImbalance, AllOnOneProcIsP) {
  trace::SectionBuilder b("skew", 4);
  b.begin_cycle(1);
  for (std::uint32_t i = 0; i < 4; ++i) {
    b.root_at(trace::Side::Right, NodeId{1}, 0, i);  // all bucket 0
  }
  const Trace t = b.take();
  EXPECT_DOUBLE_EQ(
      load_imbalance(t, 0, sim::Assignment::round_robin(4, 4),
                     sim::CostModel{}),
      4.0);
}

}  // namespace
}  // namespace mpps::core
