#include "src/common/symbol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

namespace mpps {
namespace {

TEST(Symbol, InterningIsIdempotent) {
  Symbol a = Symbol::intern("block");
  Symbol b = Symbol::intern("block");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
}

TEST(Symbol, DistinctTextsGetDistinctSymbols) {
  EXPECT_NE(Symbol::intern("color"), Symbol::intern("colour"));
}

TEST(Symbol, TextRoundTrips) {
  Symbol s = Symbol::intern("goal-achieved");
  EXPECT_EQ(s.text(), "goal-achieved");
}

TEST(Symbol, DefaultIsEmpty) {
  Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.text(), "");
  EXPECT_EQ(s, Symbol::intern(""));
}

TEST(Symbol, CaseSensitive) {
  EXPECT_NE(Symbol::intern("Block"), Symbol::intern("block"));
}

TEST(Symbol, TextViewSurvivesFurtherInterning) {
  Symbol s = Symbol::intern("stable-text");
  std::string_view view = s.text();
  // Force rehash/growth of the intern table.
  for (int i = 0; i < 2000; ++i) {
    Symbol::intern("filler-" + std::to_string(i));
  }
  EXPECT_EQ(view, "stable-text");
  EXPECT_EQ(s.text(), "stable-text");
}

TEST(Symbol, HashableInUnorderedSet) {
  std::unordered_set<Symbol> set;
  set.insert(Symbol::intern("a"));
  set.insert(Symbol::intern("b"));
  set.insert(Symbol::intern("a"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Symbol::intern("b")));
}

TEST(Symbol, OrderingIsStableWithinProcess) {
  Symbol first = Symbol::intern("zzz-made-first");
  Symbol second = Symbol::intern("aaa-made-second");
  // Intern order, not lexicographic.
  EXPECT_LT(first, second);
}

TEST(Symbol, TableSizeGrowsMonotonically) {
  const std::size_t before = symbol_table_size();
  Symbol::intern("definitely-a-new-symbol-for-this-test");
  EXPECT_GT(symbol_table_size(), before);
  const std::size_t after = symbol_table_size();
  Symbol::intern("definitely-a-new-symbol-for-this-test");
  EXPECT_EQ(symbol_table_size(), after);
}

TEST(Symbol, EmbeddedWhitespaceAllowed) {
  Symbol s = Symbol::intern("hello world");
  EXPECT_EQ(s.text(), "hello world");
}

}  // namespace
}  // namespace mpps
