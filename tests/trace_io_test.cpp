#include "src/trace/io.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/trace/synth.hpp"

namespace mpps::trace {
namespace {

Trace sample() {
  SectionBuilder b("sample", 32);
  b.begin_cycle(2);
  const auto r1 = b.root(Side::Right, NodeId{1}, 5);
  const auto l1 = b.child(r1, NodeId{2}, 7);
  b.add_instantiations(l1, 2);
  b.begin_cycle(1);
  b.root(Side::Left, NodeId{3}, 0);
  return b.take();
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = sample();
  const Trace parsed = from_string(to_string(original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.num_buckets, original.num_buckets);
  ASSERT_EQ(parsed.cycles.size(), original.cycles.size());
  for (std::size_t c = 0; c < original.cycles.size(); ++c) {
    const auto& oc = original.cycles[c];
    const auto& pc = parsed.cycles[c];
    EXPECT_EQ(pc.wme_changes, oc.wme_changes);
    ASSERT_EQ(pc.activations.size(), oc.activations.size());
    for (std::size_t i = 0; i < oc.activations.size(); ++i) {
      const auto& oa = oc.activations[i];
      const auto& pa = pc.activations[i];
      EXPECT_EQ(pa.id, oa.id);
      EXPECT_EQ(pa.parent, oa.parent);
      EXPECT_EQ(pa.node, oa.node);
      EXPECT_EQ(pa.side, oa.side);
      EXPECT_EQ(pa.tag, oa.tag);
      EXPECT_EQ(pa.bucket, oa.bucket);
      EXPECT_EQ(pa.successors, oa.successors);
      EXPECT_EQ(pa.instantiations, oa.instantiations);
      EXPECT_EQ(pa.key_class, oa.key_class);
    }
  }
}

TEST(TraceIo, RoundTripOfSyntheticSections) {
  for (const Trace& t :
       {make_weaver_section(64, 3), make_rubik_section(64, 3)}) {
    const Trace parsed = from_string(to_string(t));
    EXPECT_EQ(parsed.total_activations(), t.total_activations());
    const TraceStats a = compute_stats(parsed);
    const TraceStats b = compute_stats(t);
    EXPECT_EQ(a.left, b.left);
    EXPECT_EQ(a.right, b.right);
    EXPECT_EQ(a.instantiations, b.instantiations);
  }
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  const Trace t = from_string(R"(
# a comment
trace demo buckets 8

cycle 1
wmechange 1
# another comment
act 1 R node 0 bucket 2 parent - succ 0 inst 0 key 0 tag +
endcycle
)");
  EXPECT_EQ(t.name, "demo");
  EXPECT_EQ(t.cycles.size(), 1u);
}

TEST(TraceIoErrors, MissingHeader) {
  EXPECT_THROW(from_string("cycle 1\nendcycle\n"), TraceFormatError);
}

TEST(TraceIoErrors, MissingEndcycle) {
  EXPECT_THROW(from_string("trace t buckets 4\ncycle 1\n"), TraceFormatError);
}

TEST(TraceIoErrors, MalformedAct) {
  EXPECT_THROW(from_string("trace t buckets 4\ncycle 1\nact 1 R\nendcycle\n"),
               TraceFormatError);
}

TEST(TraceIoErrors, BadSide) {
  EXPECT_THROW(
      from_string("trace t buckets 4\ncycle 1\n"
                  "act 1 X node 0 bucket 0 parent - succ 0 inst 0 key 0 tag +\n"
                  "endcycle\n"),
      TraceFormatError);
}

TEST(TraceIoErrors, NegativeNumbersRejected) {
  EXPECT_THROW(
      from_string("trace t buckets 4\ncycle 1\n"
                  "act -1 R node 0 bucket 0 parent - succ 0 inst 0 key 0 tag +\n"
                  "endcycle\n"),
      TraceFormatError);
}

TEST(TraceIoErrors, ZeroBuckets) {
  EXPECT_THROW(from_string("trace t buckets 0\n"), TraceFormatError);
}

TEST(TraceIoErrors, ActOutsideCycle) {
  EXPECT_THROW(
      from_string("trace t buckets 4\n"
                  "act 1 R node 0 bucket 0 parent - succ 0 inst 0 key 0 tag +\n"),
      TraceFormatError);
}

TEST(TraceIoErrors, ValidationRunsOnParse) {
  // Structurally parseable but semantically invalid (bucket out of range).
  EXPECT_THROW(
      from_string("trace t buckets 4\ncycle 1\n"
                  "act 1 R node 0 bucket 9 parent - succ 0 inst 0 key 0 tag +\n"
                  "endcycle\n"),
      TraceFormatError);
}

TEST(TraceIo, WriteReadWriteIsByteIdentical) {
  // to_string is a canonical form: serializing, parsing and serializing
  // again reproduces the exact bytes.  Randomized traces cover field
  // combinations the handwritten samples miss.
  RandomTraceSpec spec;
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1989ull, 20260806ull}) {
    spec.cycles = 3 + static_cast<std::uint32_t>(seed % 4);
    spec.num_buckets = 16u << (seed % 3);
    spec.right_fraction = 0.3 + 0.1 * static_cast<double>(seed % 5);
    spec.instantiation_prob = 0.05;
    const Trace t = make_random_trace(spec, seed);
    const std::string first = to_string(t);
    const Trace parsed = from_string(first);
    const std::string second = to_string(parsed);
    EXPECT_EQ(first, second) << "seed " << seed;
  }
  for (const Trace& t : {make_weaver_section(64, 3), make_rubik_section(64, 3),
                         make_tourney_section(64, 3)}) {
    const std::string first = to_string(t);
    EXPECT_EQ(first, to_string(from_string(first))) << t.name;
  }
}

TEST(TraceIoErrors, TruncatedInputsThrowInsteadOfCrashing) {
  // Any prefix of a valid serialization either parses (only when it
  // happens to end on a cycle boundary) or raises TraceFormatError — a
  // std::runtime_error, never UB (the ASan/UBSan tree runs this too).
  const std::string full = to_string(sample());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    try {
      const Trace t = from_string(prefix);
      EXPECT_NO_THROW(validate(t)) << "cut at byte " << cut;
    } catch (const TraceFormatError&) {
      // expected for most cut points
    } catch (const std::exception& e) {
      FAIL() << "cut at byte " << cut << " threw non-TraceFormatError: "
             << e.what();
    }
  }
}

TEST(TraceIoErrors, TraceFormatErrorIsARuntimeError) {
  // Callers that only know std::runtime_error still catch IO failures.
  EXPECT_THROW(from_string("garbage\n"), std::runtime_error);
  try {
    from_string("trace t buckets 4\ncycle 1\nact bogus\nendcycle\n");
    FAIL() << "malformed act line parsed";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trace line"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIoErrors, CorruptHeaderVariants) {
  const char* corrupt[] = {
      "tracer t buckets 4\n",            // misspelled keyword
      "trace t bucket 4\n",              // misspelled buckets
      "trace t buckets\n",               // missing count
      "trace t buckets four\n",          // non-numeric count
      "trace t buckets 4 extra\n",       // trailing token
      "trace buckets 4\n",               // missing name
      "buckets 4 trace t\n",             // reordered
      "trace t buckets -4\n",            // negative count
      "trace t buckets 4294967296000\n"  // overflows uint32
  };
  for (const char* header : corrupt) {
    EXPECT_THROW(from_string(std::string(header) +
                             "cycle 1\n"
                             "act 1 R node 0 bucket 0 parent - succ 0 inst 0 "
                             "key 0 tag +\n"
                             "endcycle\n"),
                 TraceFormatError)
        << header;
  }
}

TEST(TraceIo, MinusTagRoundTrips) {
  const Trace t = from_string(
      "trace t buckets 4\ncycle 1\n"
      "act 1 L node 0 bucket 0 parent - succ 0 inst 0 key 0 tag -\n"
      "endcycle\n");
  EXPECT_EQ(t.cycles[0].activations[0].tag, Tag::Minus);
  const Trace again = from_string(to_string(t));
  EXPECT_EQ(again.cycles[0].activations[0].tag, Tag::Minus);
}

}  // namespace
}  // namespace mpps::trace
