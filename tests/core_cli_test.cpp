#include "src/core/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

namespace mpps::core {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

class TempFile {
 public:
  TempFile(const std::string& name, const std::string& contents)
      : path_(std::string(::testing::TempDir()) + name) {
    std::ofstream f(path_);
    f << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A per-process scratch directory under gtest's TempDir.  ctest runs each
/// test case as its own process, all sharing TempDir() — tests that write
/// fixed filenames (`sections` emits rubik/tourney/weaver.trace) race with
/// each other under `ctest -j`, so every such test gets its own subdir.
std::string unique_temp_dir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      (tag + "." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir.string();
}

constexpr const char* kProgram = R"(
  (make machine ^state s1)
  (p step1 (machine ^state s1) --> (modify 1 ^state s2))
  (p step2 (machine ^state s2) --> (halt)))";

TEST(Cli, NoArgsPrintsUsage) {
  const CliRun r = cli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliRun r = cli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("simulate"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, RunExecutesProgram) {
  TempFile prog("cli_run.ops", kProgram);
  const CliRun r = cli({"run", prog.path()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("outcome: halted"), std::string::npos);
  EXPECT_NE(r.out.find("firings: 2"), std::string::npos);
  EXPECT_NE(r.out.find("step1"), std::string::npos);
}

TEST(Cli, RunWatchTracesWmeChanges) {
  TempFile prog("cli_watch.ops", kProgram);
  const CliRun r = cli({"run", prog.path(), "--watch", "2"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("=>WM: 1: (machine ^state s1)"), std::string::npos);
  EXPECT_NE(r.out.find("1. step1"), std::string::npos);
}

TEST(Cli, RunQuietSuppressesFirings) {
  TempFile prog("cli_quiet.ops", kProgram);
  const CliRun r = cli({"run", prog.path(), "--quiet"});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.out.find("step1"), std::string::npos);
}

TEST(Cli, RunMissingFileFails) {
  const CliRun r = cli({"run", "/nonexistent/file.ops"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, RunParseErrorReported) {
  TempFile prog("cli_bad.ops", "(p broken");
  const CliRun r = cli({"run", prog.path()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, TraceToStdout) {
  TempFile prog("cli_trace.ops", kProgram);
  const CliRun r = cli({"trace", prog.path()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("# mpps-trace v1"), std::string::npos);
}

TEST(Cli, TraceStatsSimulatePipeline) {
  TempFile prog("cli_pipe.ops", kProgram);
  const std::string trace_path =
      std::string(::testing::TempDir()) + "cli_pipe.trace";
  const CliRun t = cli({"trace", prog.path(), "-o", trace_path});
  EXPECT_EQ(t.code, 0);
  EXPECT_NE(t.out.find("wrote"), std::string::npos);

  const CliRun s = cli({"stats", trace_path});
  EXPECT_EQ(s.code, 0);
  EXPECT_NE(s.out.find("total"), std::string::npos);

  const CliRun m = cli({"simulate", trace_path, "--procs", "4", "--run", "2"});
  EXPECT_EQ(m.code, 0);
  EXPECT_NE(m.out.find("speedup"), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(Cli, SimulateGreedyAndPairs) {
  TempFile prog("cli_pairs.ops", kProgram);
  const std::string trace_path =
      std::string(::testing::TempDir()) + "cli_pairs.trace";
  cli({"trace", prog.path(), "-o", trace_path});
  const CliRun greedy =
      cli({"simulate", trace_path, "--procs", "4", "--assign", "greedy"});
  EXPECT_EQ(greedy.code, 0);
  const CliRun pairs = cli({"simulate", trace_path, "--procs", "4",
                            "--mapping", "pairs", "--termination", "poll"});
  EXPECT_EQ(pairs.code, 0);
  const CliRun odd_pairs =
      cli({"simulate", trace_path, "--procs", "3", "--mapping", "pairs"});
  EXPECT_EQ(odd_pairs.code, 1);  // invalid configuration is an error
  std::remove(trace_path.c_str());
}

TEST(Cli, SectionsWritesThreeTraces) {
  const std::string dir = unique_temp_dir("cli_sections");
  const CliRun r = cli({"sections", "-o", dir});
  EXPECT_EQ(r.code, 0);
  for (const char* name : {"rubik", "tourney", "weaver"}) {
    const std::string path = dir + "/" + name + ".trace";
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
  }
  std::filesystem::remove_all(dir);
}

TEST(Cli, SliceExtractsCycles) {
  const std::string dir = unique_temp_dir("cli_slice");
  cli({"sections", "-o", dir});
  const std::string src = dir + "/weaver.trace";
  const std::string dst = dir + "/weaver_slice.trace";
  const CliRun r =
      cli({"slice", src, "--from", "1", "--cycles", "2", "-o", dst});
  EXPECT_EQ(r.code, 0);
  const CliRun s = cli({"stats", dst});
  EXPECT_EQ(s.code, 0);
  const CliRun bad = cli({"slice", src, "--from", "9", "--cycles", "2"});
  EXPECT_EQ(bad.code, 1);
  std::filesystem::remove_all(dir);
}

TEST(Cli, StatsOnMalformedTraceFails) {
  TempFile bad("cli_bad.trace", "not a trace\n");
  const CliRun r = cli({"stats", bad.path()});
  EXPECT_EQ(r.code, 1);
}

/// Writes the weaver section to a private temp dir and returns its path.
std::string weaver_trace_path(const char* name) {
  const std::string dir = unique_temp_dir(std::string("cli_") + name);
  cli({"sections", "-o", dir});
  for (const char* other : {"rubik.trace", "tourney.trace"}) {
    std::remove((dir + "/" + other).c_str());
  }
  const std::string path = dir + "/" + name + ".weaver.trace";
  std::rename((dir + "/weaver.trace").c_str(), path.c_str());
  return path;
}

TEST(Cli, ExplicitJobsZeroIsUsageError) {
  const std::string path = weaver_trace_path("jobs0");
  const CliRun r = cli({"sweep", path, "--jobs", "0"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--jobs"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("usage error"), std::string::npos) << r.err;
  const CliRun garbage = cli({"sweep", path, "--jobs", "many"});
  EXPECT_EQ(garbage.code, 2);
  const CliRun negative = cli({"simulate", path, "--procs", "1,2",
                               "--jobs", "-3"});
  EXPECT_EQ(negative.code, 2);
  // Absent --jobs still auto-detects.
  const CliRun ok = cli({"sweep", path, "--procs", "2", "--runs", "1"});
  EXPECT_EQ(ok.code, 0) << ok.err;
  std::remove(path.c_str());
}

TEST(Cli, MalformedProcsListIsUsageError) {
  const std::string path = weaver_trace_path("procs");
  for (const char* bad : {"2,,8", "0", "-4", "a,b", "2,8x", ""}) {
    const CliRun r = cli({"simulate", path, "--procs", bad});
    EXPECT_EQ(r.code, 2) << "--procs '" << bad << "': " << r.err;
    EXPECT_NE(r.err.find("--procs"), std::string::npos) << r.err;
  }
  const CliRun sweep_bad = cli({"sweep", path, "--procs", "4,nope"});
  EXPECT_EQ(sweep_bad.code, 2);
  std::remove(path.c_str());
}

TEST(Cli, SweepChecksInvariants) {
  const std::string path = weaver_trace_path("inv");
  const std::string metrics_path =
      std::string(::testing::TempDir()) + "inv.metrics.csv";
  const CliRun r = cli({"sweep", path, "--procs", "2,4", "--runs", "1,2",
                        "--metrics-out", metrics_path});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream csv(metrics_path);
  std::ostringstream contents;
  contents << csv.rdbuf();
  EXPECT_NE(contents.str().find("sim.invariants.checked"), std::string::npos);
  std::remove(path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(Cli, SelfCheckCleanExitsZero) {
  const std::string metrics_path =
      std::string(::testing::TempDir()) + "selfcheck.metrics.csv";
  const CliRun r = cli({"selfcheck", "--rounds", "3", "--seed", "5",
                        "--metrics-out", metrics_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("0 failure(s)"), std::string::npos) << r.out;
  std::ifstream csv(metrics_path);
  std::ostringstream contents;
  contents << csv.rdbuf();
  EXPECT_NE(contents.str().find("selfcheck.rounds"), std::string::npos);
  std::remove(metrics_path.c_str());
}

TEST(Cli, SelfCheckInjectedFaultExitsNonzero) {
  const CliRun r = cli({"selfcheck", "--rounds", "5", "--seed", "1",
                        "--fault", "left-token-undercharge"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("failure"), std::string::npos) << r.err;
  EXPECT_NE(r.out.find("minimal repro"), std::string::npos) << r.out;
}

TEST(Cli, SelfCheckBadFlagsAreUsageErrors) {
  const CliRun rounds = cli({"selfcheck", "--rounds", "0"});
  EXPECT_EQ(rounds.code, 2);
  EXPECT_NE(rounds.err.find("--rounds"), std::string::npos);
  const CliRun fault = cli({"selfcheck", "--fault", "bogus"});
  EXPECT_EQ(fault.code, 2);
  EXPECT_NE(fault.err.find("--fault"), std::string::npos);
}

TEST(Cli, CheckExhaustiveCorpusExitsZero) {
  const std::string metrics_path =
      std::string(::testing::TempDir()) + "check.metrics.csv";
  const CliRun r = cli({"check", "--exhaustive", "--metrics-out",
                        metrics_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("fused-add-delete"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("explored"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("OK"), std::string::npos) << r.out;
  std::ifstream csv(metrics_path);
  std::ostringstream contents;
  contents << csv.rdbuf();
  EXPECT_NE(contents.str().find("mc.schedules_explored"), std::string::npos);
  std::remove(metrics_path.c_str());
}

TEST(Cli, CheckPlantedFaultExitsNonzeroWithReplayHint) {
  const CliRun r = cli({"check", "--exhaustive", "--fault", "merge-order"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("FAILED"), std::string::npos) << r.err;
  EXPECT_NE(r.out.find("FAIL"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("replay: mpps check"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("expected outcome"), std::string::npos) << r.out;
}

TEST(Cli, CheckReplaySingleSchedule) {
  const CliRun r = cli({"check", "--scenario", "fused-add-delete",
                        "--replay", "-"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("replaying schedule - on fused-add-delete"),
            std::string::npos)
      << r.out;
}

TEST(Cli, CheckListEnumeratesCorpus) {
  const CliRun r = cli({"check", "--list"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("fused-add-delete"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("two-keys"), std::string::npos) << r.out;
}

TEST(Cli, CheckBadFlagsAreUsageErrors) {
  const CliRun modes = cli({"check", "--exhaustive", "--schedules", "4"});
  EXPECT_EQ(modes.code, 2);
  EXPECT_NE(modes.err.find("--exhaustive"), std::string::npos) << modes.err;
  const CliRun replay = cli({"check", "--replay", "0"});
  EXPECT_EQ(replay.code, 2);
  EXPECT_NE(replay.err.find("--scenario"), std::string::npos) << replay.err;
  const CliRun scenario = cli({"check", "--scenario", "no-such-scenario"});
  EXPECT_EQ(scenario.code, 2);
  const CliRun fault = cli({"check", "--fault", "bogus"});
  EXPECT_EQ(fault.code, 2);
  const CliRun id = cli({"check", "--scenario", "send-send", "--replay",
                         "not.a.number"});
  EXPECT_EQ(id.code, 2);
  EXPECT_NE(id.err.find("malformed"), std::string::npos) << id.err;
}

}  // namespace
}  // namespace mpps::core
