#include "src/core/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace mpps::core {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun cli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

class TempFile {
 public:
  TempFile(const std::string& name, const std::string& contents)
      : path_(std::string(::testing::TempDir()) + name) {
    std::ofstream f(path_);
    f << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

constexpr const char* kProgram = R"(
  (make machine ^state s1)
  (p step1 (machine ^state s1) --> (modify 1 ^state s2))
  (p step2 (machine ^state s2) --> (halt)))";

TEST(Cli, NoArgsPrintsUsage) {
  const CliRun r = cli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliRun r = cli({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("simulate"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, RunExecutesProgram) {
  TempFile prog("cli_run.ops", kProgram);
  const CliRun r = cli({"run", prog.path()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("outcome: halted"), std::string::npos);
  EXPECT_NE(r.out.find("firings: 2"), std::string::npos);
  EXPECT_NE(r.out.find("step1"), std::string::npos);
}

TEST(Cli, RunWatchTracesWmeChanges) {
  TempFile prog("cli_watch.ops", kProgram);
  const CliRun r = cli({"run", prog.path(), "--watch", "2"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("=>WM: 1: (machine ^state s1)"), std::string::npos);
  EXPECT_NE(r.out.find("1. step1"), std::string::npos);
}

TEST(Cli, RunQuietSuppressesFirings) {
  TempFile prog("cli_quiet.ops", kProgram);
  const CliRun r = cli({"run", prog.path(), "--quiet"});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.out.find("step1"), std::string::npos);
}

TEST(Cli, RunMissingFileFails) {
  const CliRun r = cli({"run", "/nonexistent/file.ops"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, RunParseErrorReported) {
  TempFile prog("cli_bad.ops", "(p broken");
  const CliRun r = cli({"run", prog.path()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, TraceToStdout) {
  TempFile prog("cli_trace.ops", kProgram);
  const CliRun r = cli({"trace", prog.path()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("# mpps-trace v1"), std::string::npos);
}

TEST(Cli, TraceStatsSimulatePipeline) {
  TempFile prog("cli_pipe.ops", kProgram);
  const std::string trace_path =
      std::string(::testing::TempDir()) + "cli_pipe.trace";
  const CliRun t = cli({"trace", prog.path(), "-o", trace_path});
  EXPECT_EQ(t.code, 0);
  EXPECT_NE(t.out.find("wrote"), std::string::npos);

  const CliRun s = cli({"stats", trace_path});
  EXPECT_EQ(s.code, 0);
  EXPECT_NE(s.out.find("total"), std::string::npos);

  const CliRun m = cli({"simulate", trace_path, "--procs", "4", "--run", "2"});
  EXPECT_EQ(m.code, 0);
  EXPECT_NE(m.out.find("speedup"), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(Cli, SimulateGreedyAndPairs) {
  TempFile prog("cli_pairs.ops", kProgram);
  const std::string trace_path =
      std::string(::testing::TempDir()) + "cli_pairs.trace";
  cli({"trace", prog.path(), "-o", trace_path});
  const CliRun greedy =
      cli({"simulate", trace_path, "--procs", "4", "--assign", "greedy"});
  EXPECT_EQ(greedy.code, 0);
  const CliRun pairs = cli({"simulate", trace_path, "--procs", "4",
                            "--mapping", "pairs", "--termination", "poll"});
  EXPECT_EQ(pairs.code, 0);
  const CliRun odd_pairs =
      cli({"simulate", trace_path, "--procs", "3", "--mapping", "pairs"});
  EXPECT_EQ(odd_pairs.code, 1);  // invalid configuration is an error
  std::remove(trace_path.c_str());
}

TEST(Cli, SectionsWritesThreeTraces) {
  const std::string dir = ::testing::TempDir();
  const CliRun r = cli({"sections", "-o", dir});
  EXPECT_EQ(r.code, 0);
  for (const char* name : {"rubik", "tourney", "weaver"}) {
    const std::string path = dir + "/" + name + ".trace";
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    std::remove(path.c_str());
  }
}

TEST(Cli, SliceExtractsCycles) {
  const std::string dir = ::testing::TempDir();
  cli({"sections", "-o", dir});
  const std::string src = dir + "/weaver.trace";
  const std::string dst = dir + "/weaver_slice.trace";
  const CliRun r =
      cli({"slice", src, "--from", "1", "--cycles", "2", "-o", dst});
  EXPECT_EQ(r.code, 0);
  const CliRun s = cli({"stats", dst});
  EXPECT_EQ(s.code, 0);
  const CliRun bad = cli({"slice", src, "--from", "9", "--cycles", "2"});
  EXPECT_EQ(bad.code, 1);
  for (const char* name : {"rubik.trace", "tourney.trace", "weaver.trace",
                           "weaver_slice.trace"}) {
    std::remove((dir + "/" + name).c_str());
  }
}

TEST(Cli, StatsOnMalformedTraceFails) {
  TempFile bad("cli_bad.trace", "not a trace\n");
  const CliRun r = cli({"stats", bad.path()});
  EXPECT_EQ(r.code, 1);
}

}  // namespace
}  // namespace mpps::core
