// The metamorphic law checker: real simulations satisfy every law;
// corrupted results are caught and named; checks are counted into the
// metrics registry.
#include "src/sim/invariants.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"
#include "src/trace/synth.hpp"

namespace mpps::sim {
namespace {

using trace::Trace;

SimConfig merged_config(std::uint32_t procs, int run) {
  SimConfig config;
  config.match_processors = procs;
  config.costs = CostModel::paper_run(run);
  return config;
}

Assignment rr(const Trace& trace, const SimConfig& config) {
  return Assignment::round_robin(trace.num_buckets, config.partitions());
}

TEST(Invariants, RealRunsSatisfyEveryLaw) {
  for (const Trace& trace :
       {trace::make_rubik_section(), trace::make_weaver_section()}) {
    for (const std::uint32_t procs : {1u, 2u, 8u, 32u}) {
      for (int run = 1; run <= 4; ++run) {
        const SimConfig config = merged_config(procs, run);
        const SimResult result = simulate(trace, config, rr(trace, config));
        const InvariantReport report =
            check_run_invariants(trace, config, result);
        EXPECT_TRUE(report.ok())
            << trace.name << " x " << procs << " procs, run " << run << ": "
            << report.summary();
        EXPECT_GT(report.checked, 0u);
      }
    }
  }
}

TEST(Invariants, ZeroOverheadLawsApply) {
  const Trace trace = trace::make_weaver_section();
  SimConfig config;
  config.match_processors = 1;
  config.costs = CostModel::zero_overhead();
  const SimResult one = simulate(trace, config, rr(trace, config));
  InvariantReport report = check_run_invariants(trace, config, one);
  EXPECT_TRUE(report.ok()) << report.summary();
  // serial-sum only fires for one processor at zero overhead; its
  // evaluation shows up in the count (8 shared laws + 3 zero-overhead).
  EXPECT_EQ(report.checked, 11u);

  config.match_processors = 8;
  const SimResult eight = simulate(trace, config, rr(trace, config));
  report = check_run_invariants(trace, config, eight);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.checked, 10u);  // no serial-sum
}

TEST(Invariants, PairMappingSkipsMergedOnlyLaws) {
  const Trace trace = trace::make_weaver_section();
  SimConfig config = merged_config(4, 2);
  config.mapping = MappingMode::ProcessorPairs;
  const SimResult result = simulate(trace, config, rr(trace, config));
  const InvariantReport report = check_run_invariants(trace, config, result);
  EXPECT_TRUE(report.ok()) << report.summary();
  // tiling, span, attribution + the three network-accounting laws; the
  // merged-only conservation laws are skipped.
  EXPECT_EQ(report.checked, 6u);
}

TEST(Invariants, CorruptedResultsAreCaughtByName) {
  const Trace trace = trace::make_weaver_section();
  const SimConfig config = merged_config(4, 2);
  const SimResult clean = simulate(trace, config, rr(trace, config));

  struct Corruption {
    const char* law;
    void (*apply)(SimResult&);
  };
  const Corruption corruptions[] = {
      {"cycle-tiling",
       [](SimResult& r) { r.cycles.back().end += SimTime::us(1); }},
      {"busy-within-span",
       [](SimResult& r) {
         r.cycles[0].procs[0].busy = r.cycles[0].span() + SimTime::us(1);
       }},
      {"activation-attribution",
       [](SimResult& r) { ++r.cycles[0].procs[0].activations; }},
      {"token-conservation", [](SimResult& r) { ++r.messages; }},
      {"busy-conservation",
       [](SimResult& r) { r.cycles[0].procs[1].busy += SimTime::us(1); }},
  };
  for (const Corruption& corruption : corruptions) {
    SimResult bad = clean;
    corruption.apply(bad);
    const InvariantReport report = check_run_invariants(trace, config, bad);
    ASSERT_FALSE(report.ok()) << corruption.law << " not caught";
    bool named = false;
    for (const InvariantViolation& violation : report.violations) {
      if (violation.invariant == corruption.law) named = true;
    }
    EXPECT_TRUE(named) << corruption.law << " missing from: "
                       << report.summary();
  }
}

TEST(Invariants, SerialSumViolationCaught) {
  const Trace trace = trace::make_weaver_section();
  SimConfig config;
  config.match_processors = 1;
  config.costs = CostModel::zero_overhead();
  SimResult result = simulate(trace, config, rr(trace, config));
  result.makespan += SimTime::us(1);
  result.cycles.back().end = result.makespan;
  const InvariantReport report = check_run_invariants(trace, config, result);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("serial-sum"), std::string::npos)
      << report.summary();
}

TEST(Invariants, CrossRunLawsHoldOnTheOverheadGrid) {
  const Trace trace = trace::make_rubik_section();
  std::vector<SimConfig> configs;
  std::vector<SimResult> results;
  for (int run = 1; run <= 4; ++run) {
    for (const std::uint32_t procs : {2u, 8u}) {
      configs.push_back(merged_config(procs, run));
      results.push_back(
          simulate(trace, configs.back(), rr(trace, configs.back())));
    }
  }
  std::vector<ObservedRun> runs;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    runs.push_back({configs[i], &results[i]});
  }
  const InvariantReport report = check_cross_run_invariants(trace, runs);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checked, 0u);
}

TEST(Invariants, CrossRunEventConservationViolationCaught) {
  const Trace trace = trace::make_weaver_section();
  const SimConfig run1 = merged_config(4, 1);
  const SimConfig run3 = merged_config(4, 3);
  const SimResult result1 = simulate(trace, run1, rr(trace, run1));
  SimResult result3 = simulate(trace, run3, rr(trace, run3));
  ASSERT_EQ(result1.events, result3.events);  // the law itself
  ++result3.events;  // a cost knob that leaked into routing
  const std::vector<ObservedRun> runs = {{run1, &result1}, {run3, &result3}};
  const InvariantReport report = check_cross_run_invariants(trace, runs);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("cross-run-event-conservation"),
            std::string::npos)
      << report.summary();
}

TEST(Invariants, CrossRunMonotonicityViolationCaught) {
  const Trace trace = trace::make_weaver_section();
  const SimConfig cheap = merged_config(4, 1);
  const SimConfig costly = merged_config(4, 4);
  const SimResult cheap_result = simulate(trace, cheap, rr(trace, cheap));
  SimResult costly_result = simulate(trace, costly, rr(trace, costly));
  // Pretend the costly run finished faster than the free one.
  costly_result.makespan = cheap_result.makespan - SimTime::us(1);
  const std::vector<ObservedRun> runs = {{cheap, &cheap_result},
                                         {costly, &costly_result}};
  const InvariantReport report = check_cross_run_invariants(trace, runs);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("overhead-monotonicity"), std::string::npos)
      << report.summary();
}

TEST(Invariants, ChecksAreCountedIntoTheRegistry) {
  const Trace trace = trace::make_weaver_section();
  const SimConfig config = merged_config(2, 2);
  SimResult result = simulate(trace, config, rr(trace, config));
  obs::Registry metrics;
  const InvariantReport clean =
      check_run_invariants(trace, config, result, &metrics);
  EXPECT_EQ(metrics.counter("sim.invariants.checked").value(), clean.checked);
  EXPECT_EQ(metrics.counter("sim.invariants.violated").value(), 0u);

  ++result.messages;
  check_run_invariants(trace, config, result, &metrics);
  EXPECT_GT(metrics.counter("sim.invariants.violated").value(), 0u);
  EXPECT_GT(metrics
                .counter("sim.invariants.violated",
                         {{"invariant", "token-conservation"}})
                .value(),
            0u);
}

TEST(Invariants, ReportMergeAccumulates) {
  InvariantReport a;
  a.checked = 3;
  a.violations.push_back({"x", "d1"});
  InvariantReport b;
  b.checked = 4;
  b.violations.push_back({"y", "d2"});
  a.merge_from(b);
  EXPECT_EQ(a.checked, 7u);
  ASSERT_EQ(a.violations.size(), 2u);
  EXPECT_EQ(a.summary(), "x: d1\ny: d2");
}

}  // namespace
}  // namespace mpps::sim
