// The public facade (src/mpps.hpp) end to end: everything a downstream
// user is promised — parse, compile, serial and parallel matching, trace
// collection, simulation, sweeps — reached ONLY through the facade's
// re-exported names and builders.  If a rename inside a sub-namespace
// breaks this suite, the facade (the public contract) regressed.
#include "src/mpps.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

// Two-CE productions so matching exercises the beta network (and thus
// the ActivationListener the Collector hangs off — single-CE productions
// take the direct alpha path and record no trace activations).
constexpr const char* kProgram = R"(
  (make job ^id 1)
  (make job ^id 2)
  (make worker ^id 1)
  (make worker ^id 2)
  (p assign (job ^id <i>) (worker ^id <i>) --> (remove 1))
)";

TEST(Facade, ParseCompileRun) {
  const mpps::Program program = mpps::parse_program(kProgram);
  const mpps::Network net = mpps::Network::compile(program);
  EXPECT_FALSE(net.productions().empty());

  mpps::InterpreterOptions options;
  options.engine = mpps::EngineOptionsBuilder().num_buckets(64).build();
  mpps::Interpreter interp(program, options);
  interp.load_initial_wmes();
  const auto result = interp.run();
  EXPECT_EQ(result.firings, 2u);
}

TEST(Facade, ParallelEngineThroughBuilder) {
  mpps::Registry registry;
  const mpps::ParallelOptions popts = mpps::ParallelOptionsBuilder()
                                          .threads(2)
                                          .random_partition(7)
                                          .mailbox_capacity(64)
                                          .metrics(&registry)
                                          .build();
  EXPECT_EQ(popts.threads, 2u);
  mpps::InterpreterOptions options;
  options.engine_factory = mpps::parallel_engine_factory(popts);
  mpps::Interpreter interp(mpps::parse_program(kProgram), options);
  interp.load_initial_wmes();
  const auto result = interp.run();
  EXPECT_EQ(result.firings, 2u);
  const auto& engine =
      dynamic_cast<const mpps::ParallelEngine&>(interp.match_engine());
  EXPECT_EQ(engine.threads(), 2u);
  EXPECT_EQ(engine.worker_stats().size(), 2u);
}

TEST(Facade, BatchedParallelEngineThroughBuilder) {
  const mpps::ParallelOptions popts = mpps::ParallelOptionsBuilder()
                                          .threads(2)
                                          .max_batch(16)
                                          .mailbox_capacity(64)
                                          .build();
  EXPECT_EQ(popts.max_batch, 16u);
  mpps::InterpreterOptions options;
  options.engine_factory = mpps::parallel_engine_factory(popts);
  mpps::Interpreter interp(mpps::parse_program(kProgram), options);
  interp.load_initial_wmes();
  const auto result = interp.run();
  EXPECT_EQ(result.firings, 2u);
  const auto& engine =
      dynamic_cast<const mpps::ParallelEngine&>(interp.match_engine());
  // Batching fuses phases, so the engine ran no more phases than changes.
  EXPECT_LE(engine.phases(), engine.changes());
}

TEST(Facade, BatchMisuseThrowsDocumentedErrors) {
  // The begin_batch()/flush() contract holds at the facade layer too:
  // flush without an open batch and a double begin_batch both raise
  // mpps::RuntimeError, and the engine stays usable after the throw.
  const mpps::Program program = mpps::parse_program(kProgram);
  const mpps::Network net = mpps::Network::compile(program);
  const mpps::ParallelOptions popts =
      mpps::ParallelOptionsBuilder().threads(2).build();
  mpps::ParallelEngine engine(net, popts);
  EXPECT_THROW(engine.flush(), mpps::RuntimeError);
  engine.begin_batch();
  EXPECT_THROW(engine.begin_batch(), mpps::RuntimeError);
  // Still inside the (single) open batch: flushing works and the engine
  // processes changes normally afterwards.
  engine.flush();
  EXPECT_FALSE(engine.batching());
  mpps::WorkingMemory wm;
  wm.add(mpps::Wme(mpps::Symbol::intern("job"),
                   {{mpps::Symbol::intern("id"), mpps::Value(9L)}}));
  for (const mpps::WmeChange& change : wm.drain_changes()) {
    engine.process_change(change);
  }
  EXPECT_EQ(engine.changes(), 1u);
}

TEST(Facade, ModelCheckerIsReachable) {
  // The model checker's supported surface: corpus, exhaustive check,
  // schedule IDs and single-schedule replay.
  const std::vector<mpps::Scenario> corpus = mpps::builtin_corpus();
  ASSERT_FALSE(corpus.empty());
  mpps::CheckOptions options;
  const mpps::ScenarioReport report =
      mpps::check_scenario(corpus.front(), options);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(
      mpps::run_schedule(corpus.front(), mpps::ScheduleId::parse("-"))
          .has_value());
}

TEST(Facade, BuilderRejectsZeroMailboxCapacity) {
  // The Mailbox(0) silent-coercion bug is now a loud configuration error
  // at every layer, starting with the public builder.
  EXPECT_THROW(mpps::ParallelOptionsBuilder().mailbox_capacity(0),
               mpps::UsageError);
}

TEST(Facade, EveryBuilderSetterRejectsInvalidInputNamingTheField) {
  // The unified builder error contract: every setter validates in the
  // setter itself, throws mpps::UsageError, and the message names the
  // offending field — no builder defers validation to build() or coerces
  // silently.  One table row per reject path.
  struct RejectCase {
    const char* field;                 // must appear in the message
    std::function<void()> poke;       // invokes the setter with bad input
  };
  const std::vector<RejectCase> cases = {
      {"match_processors",
       [] { mpps::SimConfigBuilder().match_processors(0); }},
      {"run", [] { mpps::SimConfigBuilder().run(-1); }},
      {"run", [] { mpps::SimConfigBuilder().run(5); }},
      {"num_buckets", [] { mpps::EngineOptionsBuilder().num_buckets(0); }},
      {"threads", [] { mpps::ParallelOptionsBuilder().threads(0); }},
      {"num_buckets",
       [] { mpps::ParallelOptionsBuilder().num_buckets(0); }},
      {"mailbox_capacity",
       [] { mpps::ParallelOptionsBuilder().mailbox_capacity(0); }},
      {"threads", [] { mpps::ServeOptionsBuilder().threads(0); }},
      {"num_buckets", [] { mpps::ServeOptionsBuilder().num_buckets(0); }},
      {"mailbox_capacity",
       [] { mpps::ServeOptionsBuilder().mailbox_capacity(0); }},
      {"admission_batch",
       [] { mpps::ServeOptionsBuilder().admission_batch(0); }},
      {"queue_capacity",
       [] { mpps::ServeOptionsBuilder().queue_capacity(0); }},
      {"max_sessions",
       [] { mpps::ServeOptionsBuilder().max_sessions(0); }},
      {"latency_bounds_us",
       [] { mpps::ServeOptionsBuilder().latency_bounds_us({}); }},
      {"latency_bounds_us",
       [] { mpps::ServeOptionsBuilder().latency_bounds_us({4, 2, 8}); }},
  };
  for (const RejectCase& c : cases) {
    try {
      c.poke();
      ADD_FAILURE() << c.field << ": invalid input was accepted";
    } catch (const mpps::UsageError& e) {
      EXPECT_NE(std::string(e.what()).find(c.field), std::string::npos)
          << "message does not name the field: " << e.what();
    }
  }
  // The happy paths still configure what they say.
  EXPECT_EQ(mpps::ParallelOptionsBuilder().threads(3).build().threads, 3u);
  EXPECT_EQ(
      mpps::ServeOptionsBuilder().admission_batch(9).build().admission_batch,
      9u);
  EXPECT_EQ(mpps::SimConfigBuilder().match_processors(5).build()
                .match_processors,
            5u);
}

TEST(Facade, CollectTraceSimulateAndSweep) {
  // Record a trace through the facade's Collector...
  const mpps::Program program = mpps::parse_program(kProgram);
  mpps::InterpreterOptions options;
  mpps::Interpreter interp(program, options);
  mpps::Collector collector(options.engine.num_buckets);
  interp.match_engine().set_listener(&collector);
  interp.load_initial_wmes();
  bool running = true;
  while (running) {
    collector.begin_cycle();
    running = interp.step();
  }
  const mpps::Trace trace = collector.take("facade");
  EXPECT_GT(trace.total_activations(), 0u);

  // ...replay it on the simulated machine via the SimConfig builder...
  const mpps::SimConfig config = mpps::SimConfigBuilder()
                                     .match_processors(4)
                                     .run(2)
                                     .termination(
                                         mpps::TerminationModel::AckCounting)
                                     .build();
  const mpps::SimResult result = mpps::simulate(
      trace, config,
      mpps::Assignment::round_robin(trace.num_buckets, config.partitions()));
  EXPECT_GT(result.makespan.nanos(), 0);

  // ...and sweep two processor counts through SweepRunner.
  mpps::SweepOptions sweep_options;
  sweep_options.jobs = 1;
  std::vector<mpps::SweepScenario> scenarios;
  for (const std::uint32_t procs : {2u, 4u}) {
    mpps::SweepScenario scenario;
    scenario.label = "p" + std::to_string(procs);
    scenario.trace = &trace;
    scenario.config = mpps::SimConfigBuilder().match_processors(procs).build();
    scenario.assignment =
        mpps::Assignment::round_robin(trace.num_buckets, procs);
    scenarios.push_back(std::move(scenario));
  }
  const auto outcomes = mpps::SweepRunner(sweep_options).run(scenarios);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_GT(outcomes[0].speedup, 0.0);
}

TEST(Facade, TraceRoundTripAndPipeline) {
  const mpps::PipelineResult piped =
      mpps::record_trace_from_source(kProgram, "facade");
  std::ostringstream os;
  mpps::write_trace(os, piped.trace);
  std::istringstream is(os.str());
  const mpps::Trace back = mpps::read_trace(is);
  EXPECT_EQ(back.total_activations(), piped.trace.total_activations());
}

TEST(Facade, CliIsReachable) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(mpps::run_cli({"help"}, out, err), 0);
  EXPECT_NE(out.str().find("simulate"), std::string::npos);
}

TEST(Facade, ProfilerThroughBuilder) {
  // The whole profiling surface through facade names only: Profiler
  // wired via the builder, the report types, the category names, and
  // the text renderer.
  mpps::Profiler profiler;
  const mpps::ParallelOptions popts = mpps::ParallelOptionsBuilder()
                                          .threads(2)
                                          .profiler(&profiler)
                                          .build();
  ASSERT_EQ(popts.profiler, &profiler);
  mpps::InterpreterOptions options;
  options.engine_factory = mpps::parallel_engine_factory(popts);
  mpps::Interpreter interp(mpps::parse_program(kProgram), options);
  interp.load_initial_wmes();
  interp.run();

  EXPECT_TRUE(profiler.attached());
  const mpps::ProfileReport report = profiler.report();
  ASSERT_EQ(report.workers.size(), 2u);
  EXPECT_GE(report.min_attributed_pct(), 0.0);
  EXPECT_GT(report.phases, 0u);
  EXPECT_STREQ(mpps::prof_category_name(mpps::ProfCategory::BarrierWait),
               "barrier_wait");
  std::ostringstream os;
  mpps::print_profile_report(os, report);
  EXPECT_NE(os.str().find("wall-clock phase attribution"), std::string::npos);

  // Measured lanes export through the facade's Tracer.
  mpps::Tracer tracer;
  profiler.export_chrome_trace(tracer);
  std::ostringstream trace_json;
  tracer.write_chrome_json(trace_json);
  EXPECT_NE(trace_json.str().find("measured worker 0"), std::string::npos);
}

TEST(Facade, ServeSessionTransactionSurface) {
  // The serving surface through facade names only: ServeOptionsBuilder,
  // ServeEngine, Session/Transaction, TxResult, stats and the latency
  // report.
  const mpps::ServeOptions sopts =
      mpps::ServeOptionsBuilder().threads(2).admission_batch(4).build();
  mpps::ServeEngine engine(
      mpps::parse_program("(p assign (job ^id <i>) (worker ^id <i>) "
                          "--> (remove 1))"),
      sopts);
  mpps::Session session = engine.open_session();
  mpps::Transaction tx;
  tx.add(mpps::ops5::parse_wme("(job ^id 1)"))
      .add(mpps::ops5::parse_wme("(worker ^id 1)"));
  const mpps::TxResult result = session.transact(std::move(tx));
  EXPECT_EQ(result.added.size(), 2u);
  EXPECT_EQ(result.fired.size(), 1u);
  const mpps::ServeStats stats = engine.stats();
  EXPECT_EQ(stats.transactions, 1u);
  EXPECT_EQ(stats.cross_session_deltas, 0u);
  const mpps::LatencyReport report = engine.latency_report();
  EXPECT_EQ(report.transactions, 1u);
  EXPECT_LE(report.p50_us, report.p99_us);
  session.close();
}

TEST(Facade, ProcessChangesShimMatchesTransactionPath) {
  // `ParallelEngine::process_changes` is deprecated as a direct entry
  // point and now rides the begin_batch()/flush() transaction path as a
  // thin shim.  Differential proof at the facade layer: the same change
  // stream through the shim and through explicit transactions lands the
  // identical conflict set, for batch sizes that chunk evenly and not.
  const mpps::Program program = mpps::parse_program(kProgram);
  const mpps::Network net = mpps::Network::compile(program);

  std::vector<mpps::WmeChange> changes;
  std::uint64_t next_id = 1;
  for (const char* text :
       {"(job ^id 1)", "(job ^id 2)", "(job ^id 3)", "(worker ^id 1)",
        "(worker ^id 2)", "(worker ^id 4)", "(job ^id 4)"}) {
    mpps::Wme w = mpps::ops5::parse_wme(text);
    w.rebind_id(mpps::WmeId{next_id++});
    changes.push_back({mpps::WmeChange::Kind::Add, w});
  }
  changes.push_back({mpps::WmeChange::Kind::Delete, changes[0].wme});

  auto flatten = [](mpps::ParallelEngine& engine) {
    std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>> out;
    for (const auto& inst : engine.conflict_set().all()) {
      std::vector<std::uint64_t> wmes;
      for (mpps::WmeId w : inst.token.wmes) wmes.push_back(w.value());
      out.emplace_back(inst.production.value(), std::move(wmes));
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  for (const std::uint32_t batch : {1u, 3u, 0u}) {
    const mpps::ParallelOptions popts = mpps::ParallelOptionsBuilder()
                                            .threads(2)
                                            .max_batch(batch)
                                            .build();
    mpps::ParallelEngine shim(net, popts);
    shim.process_changes(changes);

    mpps::ParallelEngine transacted(net, popts);
    const std::size_t chunk = batch == 0 ? changes.size() : batch;
    for (std::size_t i = 0; i < changes.size(); i += chunk) {
      transacted.begin_batch();
      for (std::size_t j = i; j < std::min(i + chunk, changes.size()); ++j) {
        transacted.process_change(changes[j]);
      }
      transacted.flush();
    }

    EXPECT_EQ(flatten(shim), flatten(transacted)) << "batch " << batch;
    EXPECT_EQ(shim.phases(), transacted.phases()) << "batch " << batch;
  }
}

}  // namespace
