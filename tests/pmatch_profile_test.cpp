// The profiler's engine integration and the zero-overhead guard:
// profiling must never change match results (conflict sets and firings
// byte-identical to an uninstrumented run), the disabled path must stay a
// single pointer test (asserted structurally and with a loose A/B timing
// check), the attribution must explain >= 95% of every worker's wall
// time on the committed bench workloads (the PR's acceptance number,
// checked end to end through `mpps run --profile --json`), and the
// measured Chrome-trace lanes must ride the --trace-out plumbing.
// scripts/ci.sh runs this suite under TSan (it is part of pmatch_tests).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "src/core/cli.hpp"
#include "src/obs/profiler.hpp"
#include "src/ops5/parser.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/interp.hpp"
#include "tests/pmatch_test_util.hpp"

namespace mpps {
namespace {

using pmatch_test::FlatConflictSet;
using pmatch_test::flatten;
using pmatch_test::load_program;

// The null-sink contract: profiling rides a plain nullable pointer in the
// options (one pointer test per recording site), not a polymorphic sink.
static_assert(std::is_same_v<decltype(pmatch::ParallelOptions::profiler),
                             obs::Profiler*>);

TEST(ProfilerOptions, ProfilingIsOffByDefault) {
  EXPECT_EQ(pmatch::ParallelOptions{}.profiler, nullptr);
}

struct RunOutcome {
  rete::RunResult result;
  std::vector<std::string> firings;
  FlatConflictSet conflict;
  double wall_ms = 0.0;
};

RunOutcome run_workload(const std::string& source, std::uint32_t threads,
                        obs::Profiler* profiler) {
  rete::InterpreterOptions options;
  options.max_cycles = 2000;
  pmatch::ParallelOptions popts;
  popts.threads = threads;
  popts.profiler = profiler;
  options.engine_factory = pmatch::parallel_engine_factory(popts);
  rete::Interpreter interp(ops5::parse_program(source), options);
  interp.load_initial_wmes();
  const auto start = std::chrono::steady_clock::now();
  RunOutcome out;
  out.result = interp.run();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const auto& f : interp.firings()) out.firings.push_back(f.production);
  out.conflict = flatten(interp.match_engine().conflict_set());
  return out;
}

class ProfiledWorkload : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfiledWorkload, ProfilingDoesNotChangeMatchResults) {
  const std::string source = load_program(GetParam());
  ASSERT_FALSE(source.empty());
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    obs::Profiler profiler;
    const RunOutcome plain = run_workload(source, threads, nullptr);
    const RunOutcome profiled = run_workload(source, threads, &profiler);
    EXPECT_EQ(plain.result.cycles, profiled.result.cycles);
    EXPECT_EQ(plain.firings, profiled.firings);
    EXPECT_EQ(plain.conflict, profiled.conflict)
        << "profiling changed the conflict set at " << threads << " threads";
    EXPECT_TRUE(profiler.attached());
  }
}

TEST_P(ProfiledWorkload, AttributesAtLeast95PercentOfWorkerWall) {
  const std::string source = load_program(GetParam());
  ASSERT_FALSE(source.empty());
  for (const std::uint32_t threads : {2u, 4u}) {
    obs::Profiler profiler;
    run_workload(source, threads, &profiler);
    const obs::ProfileReport report = profiler.report();
    ASSERT_EQ(report.workers.size(), threads);
    EXPECT_GE(report.min_attributed_pct(), 95.0)
        << GetParam() << " at " << threads << " threads";
    EXPECT_GT(report.phases, 0u);
    EXPECT_GE(report.rounds, report.phases);
    for (const obs::ProfileReport::Worker& w : report.workers) {
      EXPECT_GT(w.wall_ns, 0u);
    }
  }
}

TEST_P(ProfiledWorkload, DisabledPathIsNotSlowerThanProfiled) {
  // A/B guard, deliberately loose for noisy CI hosts: the uninstrumented
  // run does strictly less work than the profiled one (no clock reads, no
  // span appends), so its median wall time must not exceed the profiled
  // median by more than generous jitter slack.  A real hot-path cost on
  // the disabled branch (e.g. an unconditional clock read) shows up as a
  // consistent violation, not jitter.
  const std::string source = load_program(GetParam());
  ASSERT_FALSE(source.empty());
  const auto median_of = [&](bool with_profiler) {
    std::vector<double> walls;
    for (int i = 0; i < 5; ++i) {
      obs::Profiler profiler;
      walls.push_back(
          run_workload(source, 2, with_profiler ? &profiler : nullptr)
              .wall_ms);
    }
    std::sort(walls.begin(), walls.end());
    return walls[walls.size() / 2];
  };
  const double disabled = median_of(false);
  const double profiled = median_of(true);
  EXPECT_LE(disabled, profiled * 1.5 + 10.0)
      << "disabled " << disabled << " ms vs profiled " << profiled << " ms";
}

INSTANTIATE_TEST_SUITE_P(BenchWorkloads, ProfiledWorkload,
                         ::testing::Values("bench_fanout.ops",
                                           "bench_chain.ops"));

double json_number_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    ADD_FAILURE() << "missing key " << key << " in: " << json;
    return -1.0;
  }
  return std::stod(json.substr(pos + needle.size()));
}

TEST(ProfileCli, RunProfileJsonMeetsAcceptanceOnBenchWorkloads) {
  // The acceptance criterion end to end: `mpps run --profile --json` on
  // both committed workloads attributes >= 95% of each worker's wall
  // time to named categories.
  for (const char* program : {"bench_fanout.ops", "bench_chain.ops"}) {
    const std::string path =
        std::string(MPPS_PROGRAMS_DIR) + "/" + program;
    std::ostringstream out;
    std::ostringstream err;
    const int code =
        core::run_cli({"run", path, "--match-threads", "2", "--profile",
                       "--json", "--quiet"},
                      out, err);
    ASSERT_EQ(code, 0) << err.str();
    const std::string json = out.str();
    EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"profile\""), std::string::npos);
    EXPECT_NE(json.find("\"category_totals_ns\""), std::string::npos);
    EXPECT_GE(json_number_field(json, "min_attributed_pct"), 95.0)
        << program;
    EXPECT_GT(json_number_field(json, "phases"), 0.0) << program;
  }
}

TEST(ProfileCli, ProfileRequiresMatchThreads) {
  const std::string path =
      std::string(MPPS_PROGRAMS_DIR) + "/bench_fanout.ops";
  std::ostringstream out;
  std::ostringstream err;
  const int code = core::run_cli({"run", path, "--profile"}, out, err);
  EXPECT_EQ(code, 2);
  EXPECT_NE(err.str().find("--match-threads"), std::string::npos);
}

TEST(ProfileCli, TraceOutCarriesMeasuredWorkerLanes) {
  const std::string path =
      std::string(MPPS_PROGRAMS_DIR) + "/bench_fanout.ops";
  const std::string trace_path =
      std::string(::testing::TempDir()) + "profile_lanes.trace.json";
  std::ostringstream out;
  std::ostringstream err;
  const int code =
      core::run_cli({"run", path, "--match-threads", "2", "--profile",
                     "--quiet", "--trace-out", trace_path},
                    out, err);
  ASSERT_EQ(code, 0) << err.str();
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  // Both timelines share the file: the profiler's measured lanes and the
  // simulated replay's processor lanes.
  EXPECT_NE(json.find("measured worker 0"), std::string::npos);
  EXPECT_NE(json.find("measured worker 1"), std::string::npos);
  EXPECT_NE(json.find("measured control"), std::string::npos);
  EXPECT_NE(json.find("\"barrier_wait\""), std::string::npos);
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace mpps
