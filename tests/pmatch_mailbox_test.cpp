// Unit tests for the sharded MPSC mailbox: constructor validation (zero
// capacity / zero producers are configuration errors), the non-blocking
// overflow contract, peak-depth tracking, FIFO-within-a-slot draining,
// and the capacity-release behaviour after oversized drains (counted in
// Stats::shrinks — the fix for drain_into never returning spike memory).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/error.hpp"
#include "src/pmatch/mailbox.hpp"

namespace mpps {
namespace {

TEST(Mailbox, ZeroCapacityThrows) {
  EXPECT_THROW(pmatch::Mailbox<int> box(0), RuntimeError);
  EXPECT_THROW(pmatch::Mailbox<int> box(0, 4), RuntimeError);
}

TEST(Mailbox, ZeroProducersThrows) {
  EXPECT_THROW(pmatch::Mailbox<int> box(8, 0), RuntimeError);
}

TEST(Mailbox, CapacityOneIsHonoured) {
  // The old mailbox silently coerced capacity 0 to 1; the new one rejects
  // 0 outright, and an explicit 1 behaves as a real threshold.
  pmatch::Mailbox<int> box(1);
  EXPECT_EQ(box.capacity(), 1u);
  box.push(0, 10);
  box.push(0, 11);  // second push exceeds the threshold
  const auto stats = box.stats();
  EXPECT_EQ(stats.pushes, 2u);
  EXPECT_EQ(stats.overflows, 1u);
  EXPECT_EQ(stats.max_depth, 2u);
}

TEST(Mailbox, DrainPreservesSlotFifoOrder) {
  pmatch::Mailbox<int> box(16);
  for (int i = 0; i < 5; ++i) box.push(0, i);
  std::vector<int> out;
  EXPECT_EQ(box.drain_into(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  // Drained box is empty; a second drain moves nothing.
  EXPECT_EQ(box.drain_into(out), 0u);
  EXPECT_EQ(out.size(), 5u);
}

TEST(Mailbox, PerProducerSlotsDoNotInterleave) {
  pmatch::Mailbox<int> box(16, 2);
  box.push(0, 1);
  box.push(1, 100);
  box.push(0, 2);
  box.push(1, 200);
  std::vector<int> out;
  box.drain_into(out);
  // Slot-major: producer 0's items first (FIFO), then producer 1's.
  EXPECT_EQ(out, (std::vector<int>{1, 2, 100, 200}));
}

TEST(Mailbox, OverflowCountsPushesBeyondCapacity) {
  pmatch::Mailbox<int> box(4, 2);
  for (int i = 0; i < 10; ++i) box.push(static_cast<std::uint32_t>(i % 2), i);
  const auto stats = box.stats();
  EXPECT_EQ(stats.pushes, 10u);
  EXPECT_EQ(stats.overflows, 6u);  // pushes 5..10 found depth > 4
  EXPECT_EQ(stats.max_depth, 10u);
  std::vector<int> out;
  EXPECT_EQ(box.drain_into(out), 10u);
}

TEST(Mailbox, OversizedDrainReleasesCapacity) {
  // Slot reserve is capacity/producers = 8.  A spike of 100 items grows
  // the slot buffer far past 2x the reserve, so the drain shrinks it
  // back and counts the release.
  pmatch::Mailbox<int> box(8);
  for (int i = 0; i < 100; ++i) box.push(0, i);
  std::vector<int> out;
  EXPECT_EQ(box.drain_into(out), 100u);
  EXPECT_EQ(box.stats().shrinks, 1u);

  // A small drain leaves the right-sized buffer alone.
  box.push(0, 1);
  out.clear();
  box.drain_into(out);
  EXPECT_EQ(box.stats().shrinks, 1u);
}

TEST(Mailbox, PermutedDrainHoldsFifoUnderEveryOrder) {
  // Property (satellite of the model-checker PR): for EVERY slot
  // permutation the scheduler seam can request, the drain yields all
  // items grouped by the requested slot order with per-producer FIFO
  // intact, and leaves the box empty.
  std::vector<std::uint32_t> perm{0, 1, 2};
  std::sort(perm.begin(), perm.end());
  do {
    pmatch::Mailbox<int> box(16, 3);
    for (std::uint32_t s = 0; s < 3; ++s) {
      for (int i = 0; i < 3; ++i) {
        box.push(s, static_cast<int>(s) * 100 + i);
      }
    }
    std::vector<int> out;
    EXPECT_EQ(box.drain_into(out, perm), 9u);
    std::vector<int> expected;
    for (std::uint32_t s : perm) {
      for (int i = 0; i < 3; ++i) {
        expected.push_back(static_cast<int>(s) * 100 + i);
      }
    }
    EXPECT_EQ(out, expected) << "slot order " << perm[0] << perm[1] << perm[2];
    out.clear();
    EXPECT_EQ(box.drain_into(out), 0u);  // drained and depth reset
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(Mailbox, PermutedDrainRejectsNonPermutations) {
  pmatch::Mailbox<int> box(16, 3);
  box.push(0, 1);
  std::vector<int> out;
  const std::vector<std::uint32_t> too_short{0, 1};
  const std::vector<std::uint32_t> duplicate{0, 1, 1};
  const std::vector<std::uint32_t> out_of_range{0, 1, 3};
  EXPECT_THROW(box.drain_into(out, too_short), RuntimeError);
  EXPECT_THROW(box.drain_into(out, duplicate), RuntimeError);
  EXPECT_THROW(box.drain_into(out, out_of_range), RuntimeError);
  // The box is untouched by the rejected drains.
  EXPECT_EQ(box.drain_into(out), 1u);
}

TEST(Mailbox, ShrinkAccountingHoldsUnderEveryPermutation) {
  // The oversized-drain release logic is per slot, so the shrink count
  // must not depend on which order the slots are visited in.
  std::vector<std::uint32_t> perm{0, 1};
  std::sort(perm.begin(), perm.end());
  do {
    pmatch::Mailbox<int> box(8, 2);  // reserve 4 per slot
    for (int i = 0; i < 100; ++i) box.push(1, i);  // slot 1 spikes
    box.push(0, -1);
    std::vector<int> out;
    EXPECT_EQ(box.drain_into(out, perm), 101u);
    EXPECT_EQ(box.stats().shrinks, 1u)
        << "slot order " << perm[0] << perm[1];
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(Mailbox, ConcurrentProducersLoseNothing) {
  // Two producers hammer their own slots while no drain runs (the BSP
  // contract: drains happen at barriers).  Every item must come out.
  pmatch::Mailbox<std::uint64_t> box(64, 2);
  const std::uint64_t per_producer = 5000;
  std::thread a([&] {
    for (std::uint64_t i = 0; i < per_producer; ++i) box.push(0, i);
  });
  std::thread b([&] {
    for (std::uint64_t i = 0; i < per_producer; ++i) box.push(1, i);
  });
  a.join();
  b.join();
  std::vector<std::uint64_t> out;
  EXPECT_EQ(box.drain_into(out), 2 * per_producer);
  const auto stats = box.stats();
  EXPECT_EQ(stats.pushes, 2 * per_producer);
  EXPECT_EQ(stats.max_depth, 2 * per_producer);
}

}  // namespace
}  // namespace mpps
