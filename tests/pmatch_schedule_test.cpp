// Tests for the ParallelEngine's schedule-control seam: a controlled
// (cooperative, thread-free) engine driven by an identity controller must
// agree with the serial engine cycle for cycle, the engine validates
// every permutation a controller hands back, and the incompatible
// profiler+schedule combination is rejected at construction.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"
#include "src/pmatch/engine.hpp"
#include "src/pmatch/schedule.hpp"
#include "src/rete/interp.hpp"
#include "src/obs/profiler.hpp"
#include "tests/pmatch_test_util.hpp"

namespace mpps {
namespace {

using pmatch_test::flatten;
using pmatch_test::load_program;
using pmatch_test::random_program;

/// Keeps every ordering exactly as the engine presents it (a valid
/// FIFO-respecting schedule; with no controller the engine would instead
/// sort rounds by (sender, seq)).
struct IdentityControl : pmatch::ScheduleControl {
  void order_round(std::uint32_t, std::uint32_t,
                   std::span<const pmatch::ScheduledOp> ops,
                   std::vector<std::uint32_t>& order) override {
    order.resize(ops.size());
    std::iota(order.begin(), order.end(), 0u);
  }
  void order_merge(std::uint32_t, std::span<const pmatch::ScheduledOp> ops,
                   std::vector<std::uint32_t>& order) override {
    order.resize(ops.size());
    std::iota(order.begin(), order.end(), 0u);
  }
};

/// Serial vs controlled-parallel lockstep over a full interpreter run.
void run_controlled_lockstep(const std::string& source, std::uint32_t threads,
                             pmatch::ScheduleControl& control) {
  rete::InterpreterOptions serial_opts;
  serial_opts.max_cycles = 2000;
  rete::Interpreter serial(ops5::parse_program(source), serial_opts);

  pmatch::ParallelOptions popts;
  popts.threads = threads;
  popts.num_buckets = 8;
  popts.schedule = &control;
  rete::InterpreterOptions parallel_opts = serial_opts;
  parallel_opts.engine_factory = pmatch::parallel_engine_factory(popts);
  rete::Interpreter parallel(ops5::parse_program(source), parallel_opts);

  serial.load_initial_wmes();
  parallel.load_initial_wmes();
  bool running = true;
  std::size_t cycle = 0;
  while (running && cycle < serial_opts.max_cycles) {
    ++cycle;
    running = serial.step();
    ASSERT_EQ(running, parallel.step()) << "cycle " << cycle;
    ASSERT_EQ(flatten(serial.engine().conflict_set()),
              flatten(parallel.match_engine().conflict_set()))
        << "conflict sets diverge at cycle " << cycle;
  }
  EXPECT_EQ(serial.halted(), parallel.halted());
}

TEST(PmatchSchedule, ControlledIdentityMatchesSerial) {
  for (const char* program : {"counter.ops", "blocks.ops", "pairings.ops"}) {
    for (std::uint32_t threads : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string(program) + " threads " +
                   std::to_string(threads));
      IdentityControl control;
      run_controlled_lockstep(load_program(program), threads, control);
    }
  }
}

TEST(PmatchSchedule, ControlledIdentityMatchesSerialOnRandomPrograms) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    IdentityControl control;
    run_controlled_lockstep(random_program(seed), 2, control);
  }
}

/// Drives one fused phase with enough join traffic to reach round 1 (a
/// two-CE production's single join emits conflict deltas directly in
/// round 0, so three CEs are needed for round-ordered work items).
template <typename Control>
void run_join_phase(Control& control) {
  const ops5::Program program = ops5::parse_program(
      "(p pair (a ^k <x>) (b ^k <x>) (ctx ^tag on) --> (remove 1))\n");
  const rete::Network net = rete::Network::compile(program);
  pmatch::ParallelOptions popts;
  popts.threads = 2;
  popts.num_buckets = 4;
  popts.max_batch = 0;
  popts.schedule = &control;
  pmatch::ParallelEngine engine(net, popts);
  ops5::WorkingMemory wm;
  wm.add(ops5::Wme(Symbol::intern("ctx"),
                   {{Symbol::intern("tag"), ops5::Value::sym("on")}}));
  for (long k = 1; k <= 3; ++k) {
    wm.add(ops5::Wme(Symbol::intern("a"),
                     {{Symbol::intern("k"), ops5::Value(k)}}));
    wm.add(ops5::Wme(Symbol::intern("b"),
                     {{Symbol::intern("k"), ops5::Value(k)}}));
  }
  const std::vector<ops5::WmeChange> changes = wm.drain_changes();
  engine.process_changes(changes);
}

TEST(PmatchSchedule, TruncatedRoundOrderThrows) {
  struct Truncating final : IdentityControl {
    void order_round(std::uint32_t, std::uint32_t,
                     std::span<const pmatch::ScheduledOp> ops,
                     std::vector<std::uint32_t>& order) override {
      order.assign(ops.empty() ? 0 : ops.size() - 1, 0u);
    }
  } control;
  EXPECT_THROW(run_join_phase(control), RuntimeError);
}

TEST(PmatchSchedule, DuplicateIndexInOrderThrows) {
  struct Duplicating final : IdentityControl {
    void order_round(std::uint32_t, std::uint32_t,
                     std::span<const pmatch::ScheduledOp> ops,
                     std::vector<std::uint32_t>& order) override {
      order.assign(ops.size(), 0u);  // right size, not a permutation
    }
  } control;
  EXPECT_THROW(run_join_phase(control), RuntimeError);
}

TEST(PmatchSchedule, BadDrainOrderThrows) {
  struct BadDrain final : IdentityControl {
    void drain_order(std::uint32_t, std::uint32_t, std::uint32_t,
                     std::vector<std::uint32_t>& order) override {
      order.clear();  // must cover every producer
    }
  } control;
  EXPECT_THROW(run_join_phase(control), RuntimeError);
}

TEST(PmatchSchedule, ReversedDrainOrderIsStillCorrect) {
  // Draining producer slots in reverse is a legal schedule: per-producer
  // FIFO is intact, so the conflict set must not change.
  struct ReversedDrain final : IdentityControl {
    void drain_order(std::uint32_t, std::uint32_t, std::uint32_t producers,
                     std::vector<std::uint32_t>& order) override {
      order.resize(producers);
      std::iota(order.rbegin(), order.rend(), 0u);
    }
  } control;
  run_controlled_lockstep(load_program("pairings.ops"), 2, control);
}

TEST(PmatchSchedule, ProfilerPlusScheduleThrowsAtConstruction) {
  const ops5::Program program = ops5::parse_program(
      "(p pair (a ^k <x>) (b ^k <x>) --> (remove 1))\n");
  const rete::Network net = rete::Network::compile(program);
  IdentityControl control;
  obs::Profiler profiler;
  pmatch::ParallelOptions popts;
  popts.threads = 2;
  popts.schedule = &control;
  popts.profiler = &profiler;
  EXPECT_THROW(pmatch::ParallelEngine engine(net, popts), RuntimeError);
}

TEST(PmatchSchedule, ControlledEngineSpawnsNoThreads) {
  // The controlled engine runs phases cooperatively on the calling
  // thread; worker stats exist but accumulate no barrier wait time from
  // free-running threads.  Mostly this asserts construction/destruction
  // is clean without ever starting the thread pool.
  IdentityControl control;
  run_join_phase(control);
}

}  // namespace
}  // namespace mpps
