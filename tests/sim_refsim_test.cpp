// Differential tests: the naive reference engine (ref_simulate) and the
// optimized engine (simulate) must agree bit-for-bit — makespan, message
// counts, network time, every per-processor per-cycle metric — across the
// Table 5-1 overhead grid, the paper's processor counts, every assignment
// strategy, every mapping variation, and randomized workloads.
#include "src/sim/refsim.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/distribution.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"
#include "src/trace/synth.hpp"

namespace mpps::sim {
namespace {

using trace::Trace;

/// Rotated round-robin, one map per cycle (a cost-independent per-cycle
/// assignment, unlike the greedy distribution).
Assignment rotated_per_cycle(const Trace& trace, std::uint32_t procs) {
  const std::size_t cycles = trace.cycles.empty() ? 1 : trace.cycles.size();
  std::vector<std::vector<std::uint32_t>> maps(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    maps[c].resize(trace.num_buckets);
    for (std::uint32_t b = 0; b < trace.num_buckets; ++b) {
      maps[c][b] = (b + static_cast<std::uint32_t>(c)) % procs;
    }
  }
  return Assignment::per_cycle(std::move(maps), procs);
}

/// Asserts exact agreement and reports the first diverging field.
void expect_agreement(const Trace& trace, const SimConfig& config,
                      const Assignment& assignment, const std::string& what) {
  const SimResult fast = simulate(trace, config, assignment);
  const SimResult ref = ref_simulate(trace, config, assignment);
  EXPECT_EQ(describe_divergence(fast, ref), "") << what;
}

/// The acceptance grid of ISSUE.md: 4 Table 5-1 runs x {1,2,4,8,16,32}
/// processors x {fixed, per-cycle, greedy} assignments, per section.
void run_acceptance_grid(const Trace& trace, const std::string& section) {
  for (int run = 1; run <= 4; ++run) {
    for (const std::uint32_t procs : {1u, 2u, 4u, 8u, 16u, 32u}) {
      SimConfig config;
      config.match_processors = procs;
      config.costs = CostModel::paper_run(run);
      const std::string at = section + " run " + std::to_string(run) + " x " +
                             std::to_string(procs) + " procs";
      expect_agreement(trace, config,
                       Assignment::round_robin(trace.num_buckets, procs),
                       at + " (fixed)");
      expect_agreement(trace, config, rotated_per_cycle(trace, procs),
                       at + " (per-cycle)");
      expect_agreement(
          trace, config,
          core::greedy_assignment(trace, procs, config.costs),
          at + " (greedy)");
    }
  }
}

TEST(RefSim, AcceptanceGridRubik) {
  run_acceptance_grid(trace::make_rubik_section(), "rubik");
}

TEST(RefSim, AcceptanceGridTourney) {
  run_acceptance_grid(trace::make_tourney_section(), "tourney");
}

TEST(RefSim, AcceptanceGridWeaver) {
  run_acceptance_grid(trace::make_weaver_section(), "weaver");
}

/// Every mapping variation the simulator supports, over random workloads.
TEST(RefSim, VariationsAgreeOnRandomTraces) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    trace::RandomTraceSpec spec;
    spec.cycles = 3;
    spec.num_buckets = 32;
    spec.roots_per_cycle = 24;
    spec.instantiation_prob = 0.1;
    const Trace trace = trace::make_random_trace(spec, seed);
    const std::string at = "seed " + std::to_string(seed);

    {
      SimConfig config;
      config.match_processors = 8;
      config.mapping = MappingMode::ProcessorPairs;
      config.costs = CostModel::paper_run(3);
      expect_agreement(trace, config,
                       Assignment::round_robin(trace.num_buckets, 4),
                       at + " pairs");
    }
    {
      SimConfig config;
      config.match_processors = 6;
      config.constant_test_processors = 2;
      config.costs = CostModel::paper_run(2);
      expect_agreement(trace, config,
                       Assignment::round_robin(trace.num_buckets, 6),
                       at + " constant-test procs");
    }
    {
      SimConfig config;
      config.match_processors = 5;
      config.conflict_set_processors = 2;
      config.conflict_select_cost = SimTime::us(3);
      config.costs = CostModel::paper_run(4);
      expect_agreement(trace, config,
                       Assignment::random(trace.num_buckets, 5, seed),
                       at + " conflict-set procs");
    }
    {
      SimConfig config;
      config.match_processors = 4;
      config.termination = TerminationModel::AckCounting;
      config.costs = CostModel::paper_run(2);
      expect_agreement(trace, config,
                       Assignment::round_robin(trace.num_buckets, 4),
                       at + " ack counting");
    }
    {
      SimConfig config;
      config.match_processors = 4;
      config.termination = TerminationModel::BarrierPoll;
      config.costs = CostModel::paper_run(3);
      config.costs.hardware_broadcast = false;
      expect_agreement(trace, config,
                       Assignment::round_robin(trace.num_buckets, 4),
                       at + " barrier poll, serialized broadcast");
    }
    {
      SimConfig config;
      config.match_processors = 7;
      config.charge_instantiation_messages = false;
      config.costs = CostModel::paper_run(2);
      config.costs.resolve_cost = SimTime::us(11);
      expect_agreement(trace, config,
                       Assignment::round_robin(trace.num_buckets, 7),
                       at + " uncharged instantiations + resolve cost");
    }
  }
}

TEST(RefSim, RejectsOddProcessorCountInPairMode) {
  SimConfig config;
  config.match_processors = 3;
  config.mapping = MappingMode::ProcessorPairs;
  EXPECT_THROW(ref_simulate(trace::make_weaver_section(), config,
                            Assignment::round_robin(256, 1)),
               RuntimeError);
}

TEST(RefSim, RejectsMismatchedAssignment) {
  SimConfig config;
  config.match_processors = 4;
  EXPECT_THROW(ref_simulate(trace::make_weaver_section(), config,
                            Assignment::round_robin(256, 3)),
               RuntimeError);
}

TEST(RefSim, DescribeDivergenceReportsFirstDifference) {
  const Trace trace = trace::make_weaver_section();
  SimConfig config;
  config.match_processors = 4;
  const Assignment assignment = Assignment::round_robin(trace.num_buckets, 4);
  SimResult a = simulate(trace, config, assignment);
  SimResult b = a;
  EXPECT_EQ(describe_divergence(a, b), "");

  b.makespan += SimTime::us(1);
  EXPECT_NE(describe_divergence(a, b).find("makespan"), std::string::npos);

  b = a;
  b.cycles.at(1).procs.at(2).busy += SimTime::us(1);
  const std::string diff = describe_divergence(a, b);
  EXPECT_NE(diff.find("cycle 1"), std::string::npos) << diff;
  EXPECT_NE(diff.find("proc 2"), std::string::npos) << diff;

  b = a;
  b.messages += 1;
  EXPECT_NE(describe_divergence(a, b).find("messages"), std::string::npos);
}

}  // namespace
}  // namespace mpps::sim
