// The parallel-match differential oracle: a ParallelEngine interpreter
// runs in lockstep with a serial rete::Engine interpreter over the
// example-program corpus and the random consumable corpus, and after
// every MRA cycle the two conflict sets must be identical (as sets),
// the firing sequences equal, and the final working memories equal —
// at 1, 2, 4 and 8 worker threads.  scripts/ci.sh runs this suite under
// TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/ops5/parser.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/interp.hpp"
#include "src/sim/costs.hpp"
#include "src/core/pipeline.hpp"
#include "tests/pmatch_test_util.hpp"

namespace mpps {
namespace {

using pmatch_test::flatten;
using pmatch_test::load_program;
using pmatch_test::random_program;

struct LockstepOptions {
  std::uint32_t threads = 2;
  std::size_t max_cycles = 2000;
  rete::Strategy strategy = rete::Strategy::Lex;
  pmatch::ParallelOptions parallel;  // threads overwritten from `threads`
};

/// Steps a serial and a parallel interpreter over `source` in lockstep,
/// comparing conflict sets after every cycle and firings after the run.
void run_lockstep(const std::string& source, const LockstepOptions& opts) {
  rete::InterpreterOptions serial_opts;
  serial_opts.strategy = opts.strategy;
  serial_opts.max_cycles = opts.max_cycles;
  rete::Interpreter serial(ops5::parse_program(source), serial_opts);

  rete::InterpreterOptions parallel_opts = serial_opts;
  pmatch::ParallelOptions popts = opts.parallel;
  popts.threads = opts.threads;
  parallel_opts.engine_factory = pmatch::parallel_engine_factory(popts);
  rete::Interpreter parallel(ops5::parse_program(source), parallel_opts);

  serial.load_initial_wmes();
  parallel.load_initial_wmes();

  bool serial_running = true;
  bool parallel_running = true;
  std::size_t cycle = 0;
  while (serial_running && cycle < opts.max_cycles) {
    ++cycle;
    serial_running = serial.step();
    parallel_running = parallel.step();
    ASSERT_EQ(serial_running, parallel_running) << "cycle " << cycle;
    ASSERT_EQ(flatten(serial.engine().conflict_set()),
              flatten(parallel.match_engine().conflict_set()))
        << "conflict sets diverge at cycle " << cycle;
    ASSERT_EQ(serial.firings().size(), parallel.firings().size())
        << "cycle " << cycle;
    if (!serial.firings().empty()) {
      const auto& sf = serial.firings().back();
      const auto& pf = parallel.firings().back();
      ASSERT_EQ(sf.production, pf.production) << "cycle " << cycle;
      ASSERT_EQ(sf.wmes, pf.wmes) << "cycle " << cycle;
    }
  }
  EXPECT_EQ(serial.halted(), parallel.halted());
  // Final working memories: firings were identical, so timetags line up.
  auto dump = [](rete::Interpreter& interp) {
    std::vector<std::pair<std::uint64_t, std::string>> out;
    for (const auto* wme : interp.wm().all()) {
      out.emplace_back(wme->id().value(), wme->to_string());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(dump(serial), dump(parallel));
}

class PmatchOracleExamples
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint32_t>> {
};

TEST_P(PmatchOracleExamples, ConflictSetsMatchSerialEngine) {
  const auto [program, threads] = GetParam();
  LockstepOptions opts;
  opts.threads = threads;
  run_lockstep(load_program(program), opts);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PmatchOracleExamples,
    ::testing::Combine(::testing::Values("counter.ops", "blocks.ops",
                                         "monkey_bananas.ops", "pairings.ops",
                                         "cube.ops"),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& param_info) {
      std::string name = std::get<0>(param_info.param);
      name = name.substr(0, name.find('.'));
      for (char& c : name) {
        if (c == '_') c = 'X';
      }
      return name + "T" + std::to_string(std::get<1>(param_info.param));
    });

TEST(PmatchOracle, TicTacToeSelfPlay) {
  // The heaviest example: full self-play at 2 and 4 threads.
  for (std::uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    LockstepOptions opts;
    opts.threads = threads;
    run_lockstep(load_program("tictactoe.ops"), opts);
  }
}

TEST(PmatchOracle, MeaStrategyAgrees) {
  LockstepOptions opts;
  opts.threads = 4;
  opts.strategy = rete::Strategy::Mea;
  run_lockstep(load_program("blocks.ops"), opts);
  run_lockstep(load_program("monkey_bananas.ops"), opts);
}

TEST(PmatchOracle, RandomConsumableCorpus) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (std::uint32_t threads : {2u, 4u}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                   std::to_string(threads));
      LockstepOptions opts;
      opts.threads = threads;
      run_lockstep(random_program(seed), opts);
    }
  }
}

TEST(PmatchOracle, RandomPartitionAgrees) {
  LockstepOptions opts;
  opts.threads = 4;
  opts.parallel.partition = pmatch::ParallelOptions::Partition::Random;
  opts.parallel.seed = 7;
  run_lockstep(load_program("pairings.ops"), opts);
  run_lockstep(random_program(3), opts);
}

TEST(PmatchOracle, GreedyStaticAssignmentAgrees) {
  // Record a trace, derive the whole-trace LPT partition, and replay the
  // same program live under that partition.
  const std::string source = load_program("blocks.ops");
  const core::PipelineResult piped =
      core::record_trace_from_source(source, "blocks");
  LockstepOptions opts;
  opts.threads = 3;
  opts.parallel.assignment =
      pmatch::greedy_static(piped.trace, 3, sim::CostModel{});
  run_lockstep(source, opts);
}

TEST(PmatchOracle, FewBucketsManyThreads) {
  // More workers than buckets: some workers own nothing and only barrier.
  LockstepOptions opts;
  opts.threads = 8;
  opts.parallel.num_buckets = 4;
  run_lockstep(load_program("counter.ops"), opts);
  run_lockstep(random_program(5), opts);
}

TEST(PmatchOracle, TinyMailboxStillCorrect) {
  // Capacity 1 forces the overflow path on every multi-push round.
  LockstepOptions opts;
  opts.threads = 4;
  opts.parallel.mailbox_capacity = 1;
  run_lockstep(load_program("pairings.ops"), opts);
}

}  // namespace
}  // namespace mpps
