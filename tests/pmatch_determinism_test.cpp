// Determinism guarantees of the parallel match engine:
//   - same program + seed + thread count ⇒ identical conflict-set
//     sequences and an identical collected Trace (byte-for-byte);
//   - 1-thread ParallelEngine ⇒ byte-identical trace, equal EngineStats
//     and equal firing sequence versus the serial rete::Engine, over the
//     OPS5 example corpus;
//   - parallel-recorded traces satisfy trace::validate (parents precede
//     children in every cycle) at any thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/pipeline.hpp"
#include "src/obs/metrics.hpp"
#include "src/ops5/parser.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/interp.hpp"
#include "src/trace/io.hpp"
#include "tests/pmatch_test_util.hpp"

namespace mpps {
namespace {

using pmatch_test::load_program;
using pmatch_test::random_program;

pmatch::ParallelOptions threaded(std::uint32_t threads) {
  pmatch::ParallelOptions popts;
  popts.threads = threads;
  return popts;
}

const char* const kCorpus[] = {"counter.ops", "blocks.ops",
                               "monkey_bananas.ops", "pairings.ops",
                               "cube.ops"};

std::string record_with_threads(const std::string& source,
                                std::uint32_t threads,
                                pmatch::ParallelOptions popts = {}) {
  core::PipelineOptions options;
  options.interpreter.max_cycles = 2000;
  if (threads > 0) {
    popts.threads = threads;
    options.interpreter.engine_factory = pmatch::parallel_engine_factory(popts);
  }
  const core::PipelineResult piped =
      core::record_trace_from_source(source, "t", options);
  return trace::to_string(piped.trace);
}

TEST(PmatchDeterminism, SameSeedSameThreadsSameTrace) {
  for (const char* program : {"blocks.ops", "pairings.ops"}) {
    const std::string source = load_program(program);
    for (std::uint32_t threads : {2u, 4u}) {
      SCOPED_TRACE(std::string(program) + " threads " +
                   std::to_string(threads));
      EXPECT_EQ(record_with_threads(source, threads),
                record_with_threads(source, threads));
    }
  }
  // Random partition: determinism includes the partition seed.
  pmatch::ParallelOptions popts;
  popts.partition = pmatch::ParallelOptions::Partition::Random;
  popts.seed = 42;
  const std::string source = load_program("blocks.ops");
  EXPECT_EQ(record_with_threads(source, 4, popts),
            record_with_threads(source, 4, popts));
}

TEST(PmatchDeterminism, OneThreadByteIdenticalToSerialEngine) {
  for (const char* program : kCorpus) {
    SCOPED_TRACE(program);
    const std::string source = load_program(program);
    EXPECT_EQ(record_with_threads(source, 0),  // serial rete::Engine
              record_with_threads(source, 1));
  }
}

TEST(PmatchDeterminism, OneThreadStatsAndFiringsEqualSerial) {
  for (const char* program : kCorpus) {
    SCOPED_TRACE(program);
    const std::string source = load_program(program);
    rete::InterpreterOptions serial_opts;
    serial_opts.max_cycles = 2000;
    rete::Interpreter serial(ops5::parse_program(source), serial_opts);

    rete::InterpreterOptions parallel_opts = serial_opts;
    parallel_opts.engine_factory =
        pmatch::parallel_engine_factory(threaded(1));
    rete::Interpreter parallel(ops5::parse_program(source), parallel_opts);

    serial.load_initial_wmes();
    parallel.load_initial_wmes();
    serial.run();
    parallel.run();

    EXPECT_EQ(serial.engine().stats(), parallel.match_engine().stats());
    ASSERT_EQ(serial.firings().size(), parallel.firings().size());
    for (std::size_t i = 0; i < serial.firings().size(); ++i) {
      EXPECT_EQ(serial.firings()[i].production,
                parallel.firings()[i].production);
      EXPECT_EQ(serial.firings()[i].wmes, parallel.firings()[i].wmes);
    }
  }
}

TEST(PmatchDeterminism, ParallelTracesValidate) {
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    core::PipelineOptions options;
    options.interpreter.engine_factory =
        pmatch::parallel_engine_factory(threaded(threads));
    const core::PipelineResult piped = core::record_trace_from_source(
        load_program("pairings.ops"), "pairings", options);
    EXPECT_NO_THROW(trace::validate(piped.trace));
    EXPECT_GT(piped.trace.total_activations(), 0u);
  }
}

TEST(PmatchDeterminism, MeasuredCountersAreConsistent) {
  rete::InterpreterOptions options;
  options.engine_factory = pmatch::parallel_engine_factory(threaded(4));
  rete::Interpreter interp(
      ops5::parse_program(load_program("pairings.ops")), options);
  interp.load_initial_wmes();
  interp.run();
  auto& engine =
      dynamic_cast<pmatch::ParallelEngine&>(interp.match_engine());
  EXPECT_EQ(engine.threads(), 4u);
  EXPECT_GT(engine.rounds(), 0u);
  const auto workers = engine.worker_stats();
  ASSERT_EQ(workers.size(), 4u);
  std::uint64_t activations = 0;
  std::uint64_t messages = 0;
  std::uint64_t received = 0;
  for (const auto& w : workers) {
    activations += w.activations;
    messages += w.messages_sent;
    received += w.max_mailbox_depth;  // depth>0 implies traffic arrived
  }
  EXPECT_EQ(activations, engine.stats().left_activations +
                             engine.stats().right_activations);
  // Cross-worker traffic and received-side depth move together.
  EXPECT_EQ(messages > 0, received > 0);
}

TEST(PmatchDeterminism, MetricsRegistryGetsMeasuredSkew) {
  obs::Registry registry;
  rete::InterpreterOptions options;
  options.engine.metrics = &registry;
  options.engine_factory = pmatch::parallel_engine_factory(threaded(2));
  rete::Interpreter interp(
      ops5::parse_program(load_program("blocks.ops")), options);
  interp.load_initial_wmes();
  interp.run();
  std::ostringstream os;
  registry.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("pmatch.phases"), std::string::npos);
  EXPECT_NE(csv.find("pmatch.rounds"), std::string::npos);
  EXPECT_NE(csv.find("pmatch.worker_busy_ns"), std::string::npos);
  EXPECT_NE(csv.find("pmatch.mailbox_depth"), std::string::npos);
  EXPECT_NE(csv.find("rete.activations"), std::string::npos);
}

TEST(PmatchDeterminism, RejectsMismatchedAssignment) {
  const ops5::Program program =
      ops5::parse_program(load_program("counter.ops"));
  const rete::Network net = rete::Network::compile(program);
  pmatch::ParallelOptions popts;
  popts.threads = 2;
  popts.assignment = sim::Assignment::round_robin(64, 3);  // 3 procs != 2
  EXPECT_THROW(pmatch::ParallelEngine(net, popts), RuntimeError);
}

TEST(PmatchDeterminism, SerialAccessorThrowsOnParallelInterpreter) {
  rete::InterpreterOptions options;
  options.engine_factory = pmatch::parallel_engine_factory(threaded(2));
  rete::Interpreter interp(
      ops5::parse_program(load_program("counter.ops")), options);
  EXPECT_THROW({ auto& e = interp.engine(); (void)e; }, RuntimeError);
  EXPECT_NO_THROW({ auto& m = interp.match_engine(); (void)m; });
}

TEST(PmatchDeterminism, GreedyStaticBalancesLoad) {
  const core::PipelineResult piped = core::record_trace_from_source(
      load_program("pairings.ops"), "pairings");
  const sim::Assignment lpt =
      pmatch::greedy_static(piped.trace, 4, sim::CostModel{});
  EXPECT_EQ(lpt.num_procs(), 4u);
  EXPECT_EQ(lpt.num_buckets(), piped.trace.num_buckets);
  // Every worker owns at least one bucket under LPT + round-robin fill.
  std::vector<bool> seen(4, false);
  for (std::uint32_t b = 0; b < lpt.num_buckets(); ++b) {
    seen[lpt.proc_of(0, b)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace mpps
