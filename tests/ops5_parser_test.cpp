#include "src/ops5/parser.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"

namespace mpps::ops5 {
namespace {

// The paper's Figure 2-1 production.
constexpr const char* kClearBlueBlock = R"(
(p clear-the-blue-block
  (block ^name <block1> ^color blue)
  (block ^name <block2> ^on <block1>)
  (hand ^state free)
  -->
  (remove 2))
)";

TEST(Parser, PaperFigure21Production) {
  const Program prog = parse_program(kClearBlueBlock);
  ASSERT_EQ(prog.productions.size(), 1u);
  const Production& p = prog.productions[0];
  EXPECT_EQ(p.name, "clear-the-blue-block");
  ASSERT_EQ(p.lhs.size(), 3u);
  EXPECT_EQ(p.lhs[0].ce_class, Symbol::intern("block"));
  EXPECT_EQ(p.lhs[2].ce_class, Symbol::intern("hand"));
  ASSERT_EQ(p.rhs.size(), 1u);
  const auto* rm = std::get_if<RemoveAction>(&p.rhs[0]);
  ASSERT_NE(rm, nullptr);
  EXPECT_EQ(rm->ce_index, 2);
}

TEST(Parser, VariableBindingAndConstants) {
  const Program prog = parse_program(kClearBlueBlock);
  const auto& ce0 = prog.productions[0].lhs[0];
  ASSERT_EQ(ce0.attr_tests.size(), 2u);
  EXPECT_EQ(ce0.attr_tests[0].attr, Symbol::intern("name"));
  EXPECT_TRUE(ce0.attr_tests[0].tests[0].operand.is_var());
  EXPECT_EQ(ce0.attr_tests[1].attr, Symbol::intern("color"));
  EXPECT_TRUE(
      ce0.attr_tests[1].tests[0].operand.constant.equals(Value::sym("blue")));
}

TEST(Parser, NegatedConditionElement) {
  const Program prog = parse_program(R"(
    (p has-no-goal
      (state ^name s1)
      -(goal ^status active)
      -->
      (halt)))");
  ASSERT_EQ(prog.productions[0].lhs.size(), 2u);
  EXPECT_FALSE(prog.productions[0].lhs[0].negated);
  EXPECT_TRUE(prog.productions[0].lhs[1].negated);
}

TEST(Parser, PredicateTests) {
  const Program prog = parse_program(R"(
    (p big (item ^size > 10 ^weight <= 5 ^kind <> junk) --> (halt)))");
  const auto& tests = prog.productions[0].lhs[0].attr_tests;
  ASSERT_EQ(tests.size(), 3u);
  EXPECT_EQ(tests[0].tests[0].pred, Predicate::Gt);
  EXPECT_EQ(tests[1].tests[0].pred, Predicate::Le);
  EXPECT_EQ(tests[2].tests[0].pred, Predicate::Ne);
}

TEST(Parser, ConjunctiveBraceTests) {
  const Program prog = parse_program(R"(
    (p mid (item ^size { > 2 < 10 }) --> (halt)))");
  const auto& at = prog.productions[0].lhs[0].attr_tests[0];
  ASSERT_EQ(at.tests.size(), 2u);
  EXPECT_EQ(at.tests[0].pred, Predicate::Gt);
  EXPECT_EQ(at.tests[1].pred, Predicate::Lt);
}

TEST(Parser, Disjunction) {
  const Program prog = parse_program(R"(
    (p primary (item ^color << red green blue >>) --> (halt)))");
  const auto& test = prog.productions[0].lhs[0].attr_tests[0].tests[0];
  ASSERT_EQ(test.disjunction.size(), 3u);
  EXPECT_TRUE(test.disjunction[1].equals(Value::sym("green")));
}

TEST(Parser, MakeModifyWriteBind) {
  const Program prog = parse_program(R"(
    (p act (a ^v <x>)
      -->
      (make b ^v <x> ^w 2)
      (modify 1 ^v done)
      (bind <y> 7)
      (write <x> <y> (crlf))))");
  const auto& rhs = prog.productions[0].rhs;
  ASSERT_EQ(rhs.size(), 4u);
  EXPECT_NE(std::get_if<MakeAction>(&rhs[0]), nullptr);
  const auto* mo = std::get_if<ModifyAction>(&rhs[1]);
  ASSERT_NE(mo, nullptr);
  EXPECT_EQ(mo->ce_index, 1);
  EXPECT_NE(std::get_if<BindAction>(&rhs[2]), nullptr);
  const auto* w = std::get_if<WriteAction>(&rhs[3]);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->terms.size(), 3u);  // <x>, <y>, newline
}

TEST(Parser, RemoveWithMultipleIndices) {
  const Program prog = parse_program(R"(
    (p r2 (a ^v 1) (b ^v 2) --> (remove 1 2)))");
  const auto& rhs = prog.productions[0].rhs;
  ASSERT_EQ(rhs.size(), 2u);
  EXPECT_EQ(std::get<RemoveAction>(rhs[0]).ce_index, 1);
  EXPECT_EQ(std::get<RemoveAction>(rhs[1]).ce_index, 2);
}

TEST(Parser, TopLevelMakeBecomesInitialWme) {
  const Program prog = parse_program(R"(
    (make counter ^value 0)
    (p done (counter ^value 10) --> (halt)))");
  ASSERT_EQ(prog.initial_wmes.size(), 1u);
  EXPECT_EQ(prog.initial_wmes[0].wme_class, Symbol::intern("counter"));
  ASSERT_EQ(prog.productions.size(), 1u);
}

TEST(Parser, LiteralizeIgnored) {
  const Program prog = parse_program(R"(
    (literalize block name color on)
    (p x (block ^name b) --> (halt)))");
  EXPECT_EQ(prog.productions.size(), 1u);
}

TEST(Parser, SpecificityCountsTests) {
  const Program prog = parse_program(kClearBlueBlock);
  // class tests: 3, attr tests: name, color, name, on, state = 5 → 8.
  EXPECT_EQ(prog.productions[0].specificity(), 8u);
}

TEST(Parser, PositiveCeIndices) {
  const Program prog = parse_program(R"(
    (p x (a ^v 1) -(b ^v 2) (c ^v 3) --> (halt)))");
  const auto idx = prog.productions[0].positive_ce_indices();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 2u);
}

TEST(Parser, FindProduction) {
  const Program prog = parse_program(kClearBlueBlock);
  EXPECT_NE(prog.find("clear-the-blue-block"), nullptr);
  EXPECT_EQ(prog.find("nonexistent"), nullptr);
}

TEST(Parser, ElementVariableOnCe) {
  const Program prog = parse_program(R"(
    (p clean
      (goal ^kind tidy)
      { <junk> (item ^state trash) }
      -->
      (remove <junk>)))");
  const auto& ce = prog.productions[0].lhs[1];
  EXPECT_EQ(ce.elem_var, Symbol::intern("junk"));
  const auto* r = std::get_if<RemoveAction>(&prog.productions[0].rhs[0]);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->elem_var, Symbol::intern("junk"));
}

TEST(Parser, ModifyByElementVariable) {
  const Program prog = parse_program(R"(
    (p touch { <it> (item ^state raw) } --> (modify <it> ^state done)))");
  const auto* m = std::get_if<ModifyAction>(&prog.productions[0].rhs[0]);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->elem_var, Symbol::intern("it"));
}

TEST(ParserErrors, ElementVariableOnNegatedCe) {
  EXPECT_THROW(parse_program(R"(
    (p x (a ^v 1) -{ <w> (b ^v 1) } --> (halt)))"),
               ParseError);
}

TEST(ParserErrors, ElementVariableMissingBrace) {
  EXPECT_THROW(parse_program(R"(
    (p x { <w> (a ^v 1) --> (halt)))"),
               ParseError);
}

TEST(Parser, WmeLiteral) {
  const Wme w = parse_wme("(block ^name b1 ^color blue ^size 3)");
  EXPECT_EQ(w.wme_class(), Symbol::intern("block"));
  EXPECT_TRUE(w.get(Symbol::intern("size")).equals(Value(3L)));
}

// ---- error cases --------------------------------------------------------

TEST(ParserErrors, MissingArrow) {
  EXPECT_THROW(parse_program("(p x (a ^v 1) (halt))"), ParseError);
}

TEST(ParserErrors, EmptyLhs) {
  EXPECT_THROW(parse_program("(p x --> (halt))"), ParseError);
}

TEST(ParserErrors, NegatedFirstCe) {
  EXPECT_THROW(parse_program("(p x -(a ^v 1) --> (halt))"), ParseError);
}

TEST(ParserErrors, UnknownAction) {
  EXPECT_THROW(parse_program("(p x (a ^v 1) --> (explode))"), ParseError);
}

TEST(ParserErrors, UnknownTopLevelForm) {
  EXPECT_THROW(parse_program("(q x)"), ParseError);
}

TEST(ParserErrors, VariablesInWmeLiteral) {
  EXPECT_THROW(parse_wme("(block ^name <x>)"), ParseError);
}

TEST(ParserErrors, EmptyDisjunction) {
  EXPECT_THROW(parse_program("(p x (a ^v << >>) --> (halt))"), ParseError);
}

TEST(ParserErrors, VariableInsideDisjunction) {
  EXPECT_THROW(parse_program("(p x (a ^v << <y> >>) --> (halt))"), ParseError);
}

TEST(ParserErrors, EmptyBraceGroup) {
  EXPECT_THROW(parse_program("(p x (a ^v { }) --> (halt))"), ParseError);
}

TEST(ParserErrors, RemoveWithoutIndex) {
  EXPECT_THROW(parse_program("(p x (a ^v 1) --> (remove))"), ParseError);
}

TEST(ParserErrors, BindWithoutVariable) {
  EXPECT_THROW(parse_program("(p x (a ^v 1) --> (bind 7 7))"), ParseError);
}

TEST(ParserErrors, PositionalValuesRejected) {
  // We require attribute form; a bare value where ^attr is expected fails.
  EXPECT_THROW(parse_program("(p x (a blue) --> (halt))"), ParseError);
}

TEST(ParserErrors, ReportsLineNumbers) {
  try {
    parse_program("(p x\n  (a ^v 1)\n  (halt))");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.line(), 2);
  }
}

TEST(ParserErrors, UnterminatedProduction) {
  EXPECT_THROW(parse_program("(p x (a ^v 1) --> (halt)"), ParseError);
}

}  // namespace
}  // namespace mpps::ops5
