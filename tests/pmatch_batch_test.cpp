// Round-batched BSP matching: the oracle and API tests for
// `ParallelOptions::max_batch` and the explicit `begin_batch()`/`flush()`
// transaction.  The core claim is set-equality: a batched phase fuses
// several WM changes but must leave the engine with exactly the conflict
// set the serial engine reaches after processing the same changes one at
// a time — at every thread count, for every batch size, including fused
// add+delete pairs whose transient sub-instantiations short-circuit.
// scripts/ci.sh runs this suite under TSan (it is part of pmatch_tests).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"
#include "src/ops5/wme.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/interp.hpp"
#include "src/rete/network.hpp"
#include "tests/pmatch_test_util.hpp"

namespace mpps {
namespace {

using pmatch_test::FlatConflictSet;
using pmatch_test::flatten;
using pmatch_test::load_program;
using pmatch_test::random_program;

// --- Lockstep oracle under batching ---------------------------------------
// Mirrors pmatch_oracle_test's harness: a batched parallel interpreter in
// lockstep with the serial engine, conflict sets compared every cycle.
// The interpreter feeds each act's drained changes via process_changes,
// so max_batch > 1 genuinely fuses phases here.

void run_lockstep(const std::string& source, std::uint32_t threads,
                  std::uint32_t max_batch,
                  rete::Strategy strategy = rete::Strategy::Lex) {
  rete::InterpreterOptions serial_opts;
  serial_opts.strategy = strategy;
  serial_opts.max_cycles = 2000;
  rete::Interpreter serial(ops5::parse_program(source), serial_opts);

  rete::InterpreterOptions parallel_opts = serial_opts;
  pmatch::ParallelOptions popts;
  popts.threads = threads;
  popts.max_batch = max_batch;
  parallel_opts.engine_factory = pmatch::parallel_engine_factory(popts);
  rete::Interpreter parallel(ops5::parse_program(source), parallel_opts);

  serial.load_initial_wmes();
  parallel.load_initial_wmes();

  bool serial_running = true;
  std::size_t cycle = 0;
  while (serial_running && cycle < serial_opts.max_cycles) {
    ++cycle;
    serial_running = serial.step();
    const bool parallel_running = parallel.step();
    ASSERT_EQ(serial_running, parallel_running) << "cycle " << cycle;
    ASSERT_EQ(flatten(serial.engine().conflict_set()),
              flatten(parallel.match_engine().conflict_set()))
        << "conflict sets diverge at cycle " << cycle;
    if (!serial.firings().empty() && !parallel.firings().empty()) {
      ASSERT_EQ(serial.firings().back().production,
                parallel.firings().back().production)
          << "cycle " << cycle;
      ASSERT_EQ(serial.firings().back().wmes, parallel.firings().back().wmes)
          << "cycle " << cycle;
    }
  }
  EXPECT_EQ(serial.halted(), parallel.halted());
}

class BatchedOracle
    : public ::testing::TestWithParam<
          std::tuple<const char*, std::uint32_t, std::uint32_t>> {};

TEST_P(BatchedOracle, ConflictSetsMatchSerialEngine) {
  const auto [program, threads, batch] = GetParam();
  run_lockstep(load_program(program), threads, batch);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BatchedOracle,
    ::testing::Combine(::testing::Values("counter.ops", "blocks.ops",
                                         "pairings.ops"),
                       ::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(4u, 64u)),
    [](const auto& param_info) {
      std::string name = std::get<0>(param_info.param);
      name = name.substr(0, name.find('.'));
      return name + "T" + std::to_string(std::get<1>(param_info.param)) +
             "B" + std::to_string(std::get<2>(param_info.param));
    });

TEST(BatchedOracleExtra, UnboundedBatchAgrees) {
  // max_batch == 0: each act's whole change set is one fused phase.
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE(threads);
    run_lockstep(load_program("monkey_bananas.ops"), threads, 0);
    run_lockstep(load_program("blocks.ops"), threads, 0);
  }
}

TEST(BatchedOracleExtra, RandomConsumableCorpus) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const std::uint32_t threads : {2u, 4u}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                   std::to_string(threads));
      run_lockstep(random_program(seed), threads, 64);
    }
  }
}

TEST(BatchedOracleExtra, MeaStrategyAgrees) {
  run_lockstep(load_program("blocks.ops"), 4, 16, rete::Strategy::Mea);
}

// --- Direct engine API -----------------------------------------------------

constexpr const char* kJoinSource =
    "(p pair (left ^k <x>) (right ^k <x>) --> (halt))\n";

std::vector<ops5::WmeChange> make_adds(ops5::WorkingMemory& wm, int pairs) {
  for (int i = 0; i < pairs; ++i) {
    wm.add(ops5::parse_wme("(left ^k " + std::to_string(i % 3) + ")"));
    wm.add(ops5::parse_wme("(right ^k " + std::to_string(i % 3) + ")"));
  }
  return wm.drain_changes();
}

TEST(BatchApi, ProcessChangesChunksByMaxBatch) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(kJoinSource));
  pmatch::ParallelOptions popts;
  popts.threads = 2;
  popts.max_batch = 4;
  pmatch::ParallelEngine engine(net, popts);
  ops5::WorkingMemory wm;
  const std::vector<ops5::WmeChange> changes = make_adds(wm, 5);  // 10 changes
  engine.process_changes(changes);
  EXPECT_EQ(engine.changes(), 10u);
  EXPECT_EQ(engine.phases(), 3u);  // 4 + 4 + 2
}

TEST(BatchApi, UnboundedBatchRunsOnePhase) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(kJoinSource));
  pmatch::ParallelOptions popts;
  popts.threads = 2;
  popts.max_batch = 0;
  pmatch::ParallelEngine engine(net, popts);
  ops5::WorkingMemory wm;
  engine.process_changes(make_adds(wm, 5));
  EXPECT_EQ(engine.changes(), 10u);
  EXPECT_EQ(engine.phases(), 1u);
}

TEST(BatchApi, DefaultIsOnePhasePerChange) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(kJoinSource));
  pmatch::ParallelOptions popts;
  popts.threads = 2;
  pmatch::ParallelEngine engine(net, popts);
  ops5::WorkingMemory wm;
  engine.process_changes(make_adds(wm, 5));
  EXPECT_EQ(engine.changes(), 10u);
  EXPECT_EQ(engine.phases(), 10u);
}

TEST(BatchApi, BeginBatchDefersUntilFlush) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(kJoinSource));
  pmatch::ParallelOptions popts;
  popts.threads = 2;
  pmatch::ParallelEngine engine(net, popts);
  ops5::WorkingMemory wm;
  const std::vector<ops5::WmeChange> changes = make_adds(wm, 4);

  engine.begin_batch();
  EXPECT_TRUE(engine.batching());
  for (const ops5::WmeChange& change : changes) engine.process_change(change);
  // Nothing ran yet: no phase, no conflict-set entries.
  EXPECT_EQ(engine.phases(), 0u);
  EXPECT_TRUE(flatten(engine.conflict_set()).empty());

  engine.flush();
  EXPECT_FALSE(engine.batching());
  EXPECT_EQ(engine.phases(), 1u);  // everything fused into one phase
  EXPECT_EQ(engine.changes(), changes.size());

  rete::Engine serial(net, rete::EngineOptions{});
  for (const ops5::WmeChange& change : changes) serial.process_change(change);
  EXPECT_EQ(flatten(engine.conflict_set()), flatten(serial.conflict_set()));
}

TEST(BatchApi, DoubleBeginBatchThrows) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(kJoinSource));
  pmatch::ParallelOptions popts;
  popts.threads = 1;
  pmatch::ParallelEngine engine(net, popts);
  engine.begin_batch();
  EXPECT_THROW(engine.begin_batch(), RuntimeError);
}

TEST(BatchApi, FlushWithoutOpenBatchThrows) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(kJoinSource));
  pmatch::ParallelOptions popts;
  popts.threads = 1;
  pmatch::ParallelEngine engine(net, popts);
  EXPECT_THROW(engine.flush(), RuntimeError);
}

TEST(BatchApi, EmptyFlushIsANoOp) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(kJoinSource));
  pmatch::ParallelOptions popts;
  popts.threads = 1;
  pmatch::ParallelEngine engine(net, popts);
  engine.begin_batch();
  engine.flush();
  EXPECT_EQ(engine.phases(), 0u);
  EXPECT_FALSE(engine.batching());
}

TEST(BatchApi, ZeroMailboxCapacityRejected) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(kJoinSource));
  pmatch::ParallelOptions popts;
  popts.threads = 2;
  popts.mailbox_capacity = 0;
  EXPECT_THROW(pmatch::ParallelEngine engine(net, popts), RuntimeError);
}

// --- Set-equality on a direct add+delete stream ----------------------------
// A 3-CE chain where every wme is added and then deleted: fusing the add
// and delete of the same wme into one phase short-circuits the transient
// chain instantiations (the multiple-modify saving), but the *final*
// conflict set and working memory must still equal the serial engine's.

constexpr const char* kChainSource =
    "(p chain (a ^k <x>) (b ^k <x>) (c ^k <x>) --> (halt))\n";

std::vector<ops5::WmeChange> add_delete_stream(int generations) {
  ops5::WorkingMemory wm;
  for (int g = 0; g < generations; ++g) {
    std::vector<WmeId> ids;
    for (const char* cls : {"a", "b", "c"}) {
      ids.push_back(wm.add(ops5::parse_wme(
          "(" + std::string(cls) + " ^k " + std::to_string(g % 2) + ")")));
    }
    // Keep one generation resident so the final conflict set is nonempty.
    if (g % 3 != 0) {
      for (const WmeId id : ids) wm.remove(id);
    }
  }
  return wm.drain_changes();
}

TEST(BatchedStream, FusedAddDeleteMatchesSerial) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(kChainSource));
  const std::vector<ops5::WmeChange> stream = add_delete_stream(12);

  rete::Engine serial(net, rete::EngineOptions{});
  serial.process_changes(stream);
  const FlatConflictSet expected = flatten(serial.conflict_set());
  ASSERT_FALSE(expected.empty());

  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    for (const std::uint32_t batch : {1u, 4u, 64u, 0u}) {
      SCOPED_TRACE("threads " + std::to_string(threads) + " batch " +
                   std::to_string(batch));
      pmatch::ParallelOptions popts;
      popts.threads = threads;
      popts.max_batch = batch;
      pmatch::ParallelEngine engine(net, popts);
      engine.process_changes(stream);
      EXPECT_EQ(flatten(engine.conflict_set()), expected);
    }
  }
}

}  // namespace
}  // namespace mpps
