// The central correctness property: after ANY sequence of working-memory
// changes, the Rete engine's conflict set equals the brute-force matcher's
// output on the same working memory.  Programs and change sequences are
// generated pseudo-randomly; each seed is one parameterized test case.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ops5/ast.hpp"
#include "src/ops5/wme.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/naive.hpp"
#include "src/rete/network.hpp"

namespace mpps::rete {
namespace {

using ops5::ConditionElement;
using ops5::Predicate;
using ops5::Production;
using ops5::Program;
using ops5::Term;
using ops5::Value;
using ops5::Wme;
using ops5::WmeChange;
using ops5::WorkingMemory;

// Small vocabularies keep the collision rate high — the interesting regime.
const char* kClasses[] = {"a", "b", "c"};
const char* kAttrs[] = {"p", "q", "r"};

Value random_value(Rng& rng) {
  if (rng.below(2) == 0) {
    return Value(static_cast<long>(rng.below(3)));
  }
  return Value::sym(std::string("v") + std::to_string(rng.below(3)));
}

Symbol random_var(Rng& rng) {
  return Symbol::intern(std::string("x") + std::to_string(rng.below(3)));
}

ConditionElement random_ce(Rng& rng, bool may_negate) {
  ConditionElement ce;
  ce.ce_class = Symbol::intern(kClasses[rng.below(3)]);
  ce.negated = may_negate && rng.below(4) == 0;
  const std::uint64_t n_tests = 1 + rng.below(2);
  for (std::uint64_t i = 0; i < n_tests; ++i) {
    ops5::AttrTest at;
    at.attr = Symbol::intern(kAttrs[rng.below(3)]);
    ops5::AtomicTest test;
    switch (rng.below(5)) {
      case 0:  // constant equality
        test.pred = Predicate::Eq;
        test.operand = Term::make_const(random_value(rng));
        break;
      case 1:  // numeric predicate against a constant
        test.pred = rng.below(2) == 0 ? Predicate::Lt : Predicate::Ge;
        test.operand = Term::make_const(Value(static_cast<long>(rng.below(3))));
        break;
      case 2:  // disjunction
        test.pred = Predicate::Eq;
        test.disjunction = {random_value(rng), random_value(rng)};
        break;
      default:  // variable (bind or consistency test)
        test.pred = Predicate::Eq;
        test.operand = Term::make_var(random_var(rng));
        break;
    }
    at.tests.push_back(std::move(test));
    ce.attr_tests.push_back(std::move(at));
  }
  return ce;
}

Program random_program(Rng& rng) {
  Program prog;
  const std::uint64_t n_prods = 1 + rng.below(3);
  for (std::uint64_t p = 0; p < n_prods; ++p) {
    Production prod;
    prod.name = "r" + std::to_string(p);
    const std::uint64_t n_ces = 1 + rng.below(3);
    for (std::uint64_t c = 0; c < n_ces; ++c) {
      prod.lhs.push_back(random_ce(rng, c > 0));
    }
    prod.rhs.emplace_back(ops5::HaltAction{});
    // Predicates on unbound variables are compile errors; scrub them by
    // tracking binding occurrences in order (same rule as the compiler).
    std::vector<Symbol> bound;
    for (auto& ce : prod.lhs) {
      std::vector<Symbol> local = bound;
      for (auto& at : ce.attr_tests) {
        for (auto& test : at.tests) {
          if (!test.operand.is_var() || !test.disjunction.empty()) continue;
          const Symbol var = test.operand.variable;
          const bool known =
              std::find(local.begin(), local.end(), var) != local.end();
          if (!known) {
            test.pred = Predicate::Eq;  // first occurrence must bind
            local.push_back(var);
          }
        }
      }
      if (!ce.negated) bound = std::move(local);
    }
    prog.productions.push_back(std::move(prod));
  }
  return prog;
}

Wme random_wme(Rng& rng) {
  std::vector<std::pair<Symbol, Value>> attrs;
  const std::uint64_t n = 1 + rng.below(3);
  for (std::uint64_t i = 0; i < n; ++i) {
    attrs.emplace_back(Symbol::intern(kAttrs[rng.below(3)]),
                       random_value(rng));
  }
  return Wme(Symbol::intern(kClasses[rng.below(3)]), std::move(attrs));
}

using Key = std::pair<std::uint32_t, std::vector<std::uint64_t>>;

std::vector<Key> normalize(const std::vector<Instantiation>& insts) {
  std::vector<Key> out;
  out.reserve(insts.size());
  for (const auto& inst : insts) {
    Key k;
    k.first = inst.production.value();
    for (WmeId w : inst.token.wmes) k.second.push_back(w.value());
    out.push_back(std::move(k));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class OracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleProperty, ReteMatchesBruteForceAfterEveryChange) {
  Rng rng(GetParam());
  const Program program = random_program(rng);
  const Network net = Network::compile(program);
  EngineOptions opts;
  opts.num_buckets = 1 + static_cast<std::uint32_t>(rng.below(32));
  Engine engine(net, opts);
  WorkingMemory wm;
  std::vector<WmeId> live;

  for (int step = 0; step < 40; ++step) {
    const bool do_remove = !live.empty() && rng.below(3) == 0;
    if (do_remove) {
      const std::uint64_t pick = rng.below(live.size());
      wm.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      live.push_back(wm.add(random_wme(rng)));
    }
    for (const auto& change : wm.drain_changes()) {
      engine.process_change(change);
    }
    const auto expected = normalize(naive_match(program, wm.all()));
    const auto actual = normalize(engine.conflict_set().all());
    ASSERT_EQ(actual, expected)
        << "divergence at step " << step << " (seed " << GetParam() << ")";
  }
  EXPECT_EQ(engine.stats().stale_deletes, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, OracleProperty,
                         ::testing::Range<std::uint64_t>(1, 61));

}  // namespace
}  // namespace mpps::rete
