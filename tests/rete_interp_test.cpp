#include "src/rete/interp.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"

namespace mpps::rete {
namespace {

Interpreter make(std::string_view src, InterpreterOptions opts = {}) {
  return Interpreter(ops5::parse_program(src), opts);
}

TEST(Interpreter, StateMachineRunsToHalt) {
  auto interp = make(R"(
    (make machine ^state s1)
    (p step1 (machine ^state s1) --> (modify 1 ^state s2))
    (p step2 (machine ^state s2) --> (modify 1 ^state s3))
    (p step3 (machine ^state s3) --> (halt)))");
  interp.load_initial_wmes();
  const RunResult result = interp.run();
  EXPECT_EQ(result.outcome, RunResult::Outcome::Halted);
  EXPECT_EQ(result.firings, 3u);
}

TEST(Interpreter, QuiescenceWhenNothingMatches) {
  auto interp = make(R"(
    (p never (ghost ^v 1) --> (halt)))");
  interp.load_initial_wmes();
  const RunResult result = interp.run();
  EXPECT_EQ(result.outcome, RunResult::Outcome::Quiescent);
  EXPECT_EQ(result.firings, 0u);
}

TEST(Interpreter, CycleLimitStopsRunaway) {
  InterpreterOptions opts;
  opts.max_cycles = 10;
  auto interp = make(R"(
    (make tick)
    (p forever (tick) --> (make tick)))",
                     opts);
  interp.load_initial_wmes();
  const RunResult result = interp.run();
  EXPECT_EQ(result.outcome, RunResult::Outcome::CycleLimit);
  EXPECT_EQ(result.cycles, 10u);
}

TEST(Interpreter, MakeAddsWmeWithBindings) {
  auto interp = make(R"(
    (make src ^v 42)
    (p copy (src ^v <x>) --> (make dst ^v <x>) (halt)))");
  interp.load_initial_wmes();
  interp.run();
  bool found = false;
  for (const auto* w : interp.wm().all()) {
    if (w->wme_class() == Symbol::intern("dst")) {
      EXPECT_TRUE(w->get(Symbol::intern("v")).equals(ops5::Value(42L)));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Interpreter, RemoveDeletesMatchedWme) {
  auto interp = make(R"(
    (make junk ^v 1)
    (p clean (junk ^v <x>) --> (remove 1)))");
  interp.load_initial_wmes();
  const RunResult result = interp.run();
  EXPECT_EQ(result.outcome, RunResult::Outcome::Quiescent);
  EXPECT_EQ(result.firings, 1u);
  EXPECT_EQ(interp.wm().size(), 0u);
}

TEST(Interpreter, ModifyPreservesOtherAttributes) {
  auto interp = make(R"(
    (make item ^name widget ^state raw)
    (p process (item ^state raw) --> (modify 1 ^state done) (halt)))");
  interp.load_initial_wmes();
  interp.run();
  const auto all = interp.wm().all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(
      all[0]->get(Symbol::intern("name")).equals(ops5::Value::sym("widget")));
  EXPECT_TRUE(
      all[0]->get(Symbol::intern("state")).equals(ops5::Value::sym("done")));
}

TEST(Interpreter, ModifyCountsAsDeleteThenAdd) {
  // The modified wme must get a NEW timetag (the multiple-modify effect
  // depends on this delete+add behavior).
  auto interp = make(R"(
    (make item ^state raw)
    (p process (item ^state raw) --> (modify 1 ^state done) (halt)))");
  interp.load_initial_wmes();
  interp.run();
  const auto all = interp.wm().all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_GT(all[0]->id().value(), 1u);
}

TEST(Interpreter, WriteGoesToConfiguredStream) {
  std::ostringstream out;
  InterpreterOptions opts;
  opts.out = &out;
  auto interp = make(R"(
    (make greeting ^text hello)
    (p greet (greeting ^text <t>) --> (write <t> world) (halt)))",
                     opts);
  interp.load_initial_wmes();
  interp.run();
  EXPECT_NE(out.str().find("hello world"), std::string::npos);
}

TEST(Interpreter, BindThenUse) {
  auto interp = make(R"(
    (make n ^v 1)
    (p go (n ^v <x>) --> (bind <y> fixed) (make out ^a <x> ^b <y>) (halt)))");
  interp.load_initial_wmes();
  interp.run();
  bool found = false;
  for (const auto* w : interp.wm().all()) {
    if (w->wme_class() == Symbol::intern("out")) {
      EXPECT_TRUE(w->get(Symbol::intern("b")).equals(ops5::Value::sym("fixed")));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Interpreter, RefractionPreventsInfiniteRefire) {
  // `keep` matches but never changes WM: it must fire once, then the
  // system is quiescent (OPS5 refraction).
  auto interp = make(R"(
    (make thing ^v 1)
    (p keep (thing ^v 1) --> (write seen)))");
  interp.load_initial_wmes();
  const RunResult result = interp.run();
  EXPECT_EQ(result.outcome, RunResult::Outcome::Quiescent);
  EXPECT_EQ(result.firings, 1u);
}

TEST(Interpreter, FiringsRecorded) {
  auto interp = make(R"(
    (make step ^n 1)
    (p one (step ^n 1) --> (modify 1 ^n 2))
    (p two (step ^n 2) --> (halt)))");
  interp.load_initial_wmes();
  interp.run();
  ASSERT_EQ(interp.firings().size(), 2u);
  EXPECT_EQ(interp.firings()[0].production, "one");
  EXPECT_EQ(interp.firings()[1].production, "two");
}

TEST(Interpreter, RemoveNumbersCountNegatedCes) {
  // (remove 3) refers to the third CE counting negated ones too.
  auto interp = make(R"(
    (make a ^v 1)
    (make c ^v 1)
    (p x (a ^v <n>) -(b ^v <n>) (c ^v <n>) --> (remove 3) (halt)))");
  interp.load_initial_wmes();
  interp.run();
  for (const auto* w : interp.wm().all()) {
    EXPECT_NE(w->wme_class(), Symbol::intern("c"));
  }
  EXPECT_EQ(interp.wm().size(), 1u);
}

TEST(Interpreter, RemoveByElementVariable) {
  auto interp = make(R"(
    (make goal ^kind tidy)
    (make item ^state trash ^name cup)
    (make item ^state ok ^name plate)
    (p clean
      (goal ^kind tidy)
      { <junk> (item ^state trash) }
      -->
      (remove <junk>)))");
  interp.load_initial_wmes();
  interp.run();
  for (const auto* w : interp.wm().all()) {
    if (w->wme_class() == Symbol::intern("item")) {
      EXPECT_TRUE(
          w->get(Symbol::intern("state")).equals(ops5::Value::sym("ok")));
    }
  }
  EXPECT_EQ(interp.wm().size(), 2u);  // goal + the ok item
}

TEST(Interpreter, ModifyByElementVariable) {
  auto interp = make(R"(
    (make item ^state raw)
    (p touch
      { <it> (item ^state raw) }
      -->
      (modify <it> ^state done)
      (halt)))");
  interp.load_initial_wmes();
  interp.run();
  const auto all = interp.wm().all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(
      all[0]->get(Symbol::intern("state")).equals(ops5::Value::sym("done")));
}

TEST(Interpreter, ElementVariableWithNegatedCesBetween) {
  // The element variable must track the POSITIVE-CE token position even
  // when negated CEs sit between positive ones.
  auto interp = make(R"(
    (make a ^v 1)
    (make c ^v 1 ^name target)
    (p x
      (a ^v <n>)
      -(b ^v <n>)
      { <hit> (c ^v <n>) }
      -->
      (remove <hit>)
      (halt)))");
  interp.load_initial_wmes();
  interp.run();
  for (const auto* w : interp.wm().all()) {
    EXPECT_NE(w->wme_class(), Symbol::intern("c"));
  }
}

TEST(InterpreterErrors, UnknownElementVariableRejectedAtCompile) {
  EXPECT_THROW(make("(p x (a ^v 1) --> (remove <nope>))"),
               mpps::RuntimeError);
}

TEST(Interpreter, WatchLevelOnePrintsFirings) {
  std::ostringstream out;
  InterpreterOptions opts;
  opts.out = &out;
  opts.watch = 1;
  auto interp = make(R"(
    (make machine ^state s1)
    (p step1 (machine ^state s1) --> (modify 1 ^state s2))
    (p step2 (machine ^state s2) --> (halt)))",
                     opts);
  interp.load_initial_wmes();
  interp.run();
  EXPECT_NE(out.str().find("1. step1"), std::string::npos);
  EXPECT_NE(out.str().find("2. step2"), std::string::npos);
  EXPECT_EQ(out.str().find("=>WM"), std::string::npos);  // level 2 only
}

TEST(Interpreter, WatchLevelTwoPrintsWmeChanges) {
  std::ostringstream out;
  InterpreterOptions opts;
  opts.out = &out;
  opts.watch = 2;
  // No halt: the delete must flow through a subsequent match phase to be
  // traced before the run reaches quiescence.
  auto interp = make(R"(
    (make machine ^state s1)
    (p step1 (machine ^state s1) --> (remove 1)))",
                     opts);
  interp.load_initial_wmes();
  interp.run();
  EXPECT_NE(out.str().find("=>WM: 1: (machine ^state s1)"), std::string::npos);
  EXPECT_NE(out.str().find("<=WM: 1: (machine ^state s1)"), std::string::npos);
}

TEST(Interpreter, MeaStrategySelectable) {
  InterpreterOptions opts;
  opts.strategy = Strategy::Mea;
  auto interp = make(R"(
    (make goal ^id g1)
    (make goal ^id g2)
    (p pick (goal ^id <g>) --> (remove 1)))",
                     opts);
  interp.load_initial_wmes();
  interp.run();
  ASSERT_GE(interp.firings().size(), 1u);
  // MEA fires on the most recent first-CE wme first: g2 (timetag 2).
  EXPECT_EQ(interp.firings()[0].wmes[0], WmeId{2});
}

TEST(Interpreter, NegationDrivenLoop) {
  // Generate items until the guard wme appears.
  auto interp = make(R"(
    (make gen ^count 0)
    (p generate
      (gen ^count <c> ^count < 3)
      -(stop)
      -->
      (bind <n> 1)
      (make item ^n <c>)
      (modify 1 ^count 3))
    (p finish
      (gen ^count 3)
      -->
      (make stop)
      (halt)))");
  interp.load_initial_wmes();
  const RunResult result = interp.run();
  EXPECT_EQ(result.outcome, RunResult::Outcome::Halted);
  EXPECT_EQ(result.firings, 2u);
}

}  // namespace
}  // namespace mpps::rete
