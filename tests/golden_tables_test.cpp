// Golden-file regression tests: the paper-table bench binaries must
// reproduce their committed outputs byte for byte.  Any cost-model or
// simulator change that shifts a published number shows up as a diff
// against tests/golden/ — regenerate with
//   build/bench/table5_1_overheads > tests/golden/table5_1.txt
//   build/bench/table5_2_activations > tests/golden/table5_2.txt
// and review the change like any other observable behavior change.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string run_binary(const std::string& path) {
  FILE* pipe = ::popen((path + " 2>/dev/null").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot run " << path;
  if (pipe == nullptr) return {};
  std::string out;
  char chunk[4096];
  std::size_t n = 0;
  while ((n = ::fread(chunk, 1, sizeof(chunk), pipe)) > 0) {
    out.append(chunk, n);
  }
  const int status = ::pclose(pipe);
  EXPECT_EQ(status, 0) << path << " exited with status " << status;
  return out;
}

void expect_golden(const std::string& binary, const std::string& golden) {
  const std::string actual = run_binary(binary);
  const std::string expected = read_file(golden);
  ASSERT_FALSE(expected.empty()) << golden << " is empty";
  EXPECT_EQ(actual, expected)
      << "output of " << binary << " no longer matches " << golden
      << "; regenerate and review the diff if the change is intended";
}

TEST(GoldenTables, Table51OverheadGrid) {
  expect_golden(MPPS_TABLE5_1_BIN, std::string(MPPS_GOLDEN_DIR) +
                                       "/table5_1.txt");
}

TEST(GoldenTables, Table52SectionActivations) {
  expect_golden(MPPS_TABLE5_2_BIN, std::string(MPPS_GOLDEN_DIR) +
                                       "/table5_2.txt");
}

}  // namespace
