// Negative-input corpus for the OPS5 parser: every malformed production
// here must be rejected with a ParseError carrying a descriptive,
// position-bearing diagnostic — and must not crash (the ASan/UBSan tree
// runs this file too, so an out-of-bounds read on malformed input fails
// loudly instead of silently).  Complements the targeted error tests in
// ops5_parser_test.cpp with broad coverage of the grammar's failure
// surface: top-level forms, condition elements, test groups,
// disjunctions, and every RHS action.
#include <gtest/gtest.h>

#include <string>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"

namespace mpps::ops5 {
namespace {

struct BadProgram {
  const char* label;
  const char* source;
  const char* diagnostic;  // required substring of the ParseError message
};

const BadProgram kCorpus[] = {
    {"naked symbol at top level", "p x", "expected '(' at top level"},
    {"unknown top-level form", "(frobnicate x)", "unknown top-level form"},
    {"production without a name", "(p)", "expected production name"},
    {"production cut off after name", "(p x",
     "expected '(' to open condition element"},
    {"missing arrow", "(p x (a ^v 1) (halt))",
     "expected '(' to open condition element"},
    {"empty condition element", "(p x () --> (halt))",
     "expected class name in condition element"},
    {"empty LHS", "(p x --> (halt))", "has no LHS"},
    {"leading negated CE", "(p x -(a ^v 1) --> (halt))",
     "must not be negated"},
    {"element variable missing", "(p x { (a ^v 1) } --> (halt))",
     "expected element variable after '{'"},
    {"negated element variable", "(p x (b ^v 1) -{ <e> (a ^v 1) } --> (halt))",
     "negated condition element cannot bind an element variable"},
    {"value without ^attribute", "(p x (a blue) --> (halt))",
     "expected ^attribute"},
    {"empty test group", "(p x (a ^v { }) --> (halt))",
     "empty '{}' test group"},
    {"arrow inside test group", "(p x (a ^v { > 1 --> (halt))",
     "expected test value"},
    {"unterminated test group", "(p x (a ^v { > 1",
     "unterminated '{' test group"},
    {"predicate without operand", "(p x (a ^v >) --> (halt))",
     "expected operand after predicate"},
    {"empty disjunction", "(p x (a ^v << >>) --> (halt))",
     "empty '<< >>' disjunction"},
    {"variable inside disjunction", "(p x (a ^v << <y> >>) --> (halt))",
     "variables are not allowed inside << >>"},
    {"paren closing a disjunction", "(p x (a ^v << blue) --> (halt))",
     "expected constant in << >> disjunction"},
    {"unterminated disjunction", "(p x (a ^v << blue",
     "unterminated '<<' disjunction"},
    {"unterminated RHS", "(p x (a ^v 1) --> (halt)", "unexpected end of input"},
    {"unknown RHS action", "(p x (a ^v 1) --> (explode 1))",
     "unknown RHS action"},
    {"remove without argument", "(p x (a ^v 1) --> (remove))",
     "remove requires a CE number or element variable"},
    {"remove with junk argument", "(p x (a ^v 1) --> (remove 1 blue))",
     "expected ')' after remove"},
    {"modify without argument", "(p x (a ^v 1) --> (modify))",
     "modify requires a CE number or element variable"},
    {"modify value without attribute", "(p x (a ^v 1) --> (modify 1 v))",
     "expected ^attribute in modify"},
    {"modify attribute without value", "(p x (a ^v 1) --> (modify 1 ^attr))",
     "expected value in modify"},
    {"make without class", "(p x (a ^v 1) --> (make))",
     "expected class name in make"},
    {"make attribute without value", "(p x (a ^v 1) --> (make b ^v))",
     "expected value in make"},
    {"bind without variable", "(p x (a ^v 1) --> (bind 7 7))",
     "bind requires a variable"},
    {"halt with arguments", "(p x (a ^v 1) --> (halt now))",
     "expected ')' after halt"},
    {"compute missing operand", "(p x (a ^v 1) --> (bind <y> (compute 1 +)))",
     "expected compute operand"},
    {"compute unknown operator",
     "(p x (a ^v 1) --> (bind <y> (compute 1 ? 2)))",
     "unknown compute operator"},
    {"unterminated compute", "(p x (a ^v 1) --> (bind <y> (compute 1 + 2",
     "unterminated compute"},
};

TEST(ParserErrorCorpus, EveryMalformedProductionIsDiagnosed) {
  for (const BadProgram& bad : kCorpus) {
    try {
      parse_program(bad.source);
      FAIL() << bad.label << ": parsed without error";
    } catch (const ParseError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(bad.diagnostic), std::string::npos)
          << bad.label << ": diagnostic \"" << what
          << "\" missing expected substring \"" << bad.diagnostic << '"';
      EXPECT_NE(what.find("parse error at"), std::string::npos)
          << bad.label << ": diagnostic lacks source position: " << what;
    } catch (const std::exception& e) {
      FAIL() << bad.label << ": threw non-ParseError: " << e.what();
    }
  }
}

TEST(ParserErrorCorpus, DiagnosticsCarrySourcePositions) {
  try {
    parse_program("(p x\n  (a blue)\n  --> (halt))");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2) << e.what();
    EXPECT_GT(e.column(), 0) << e.what();
  }
}

}  // namespace
}  // namespace mpps::ops5
