// ConstantNet fixpoint regression: routing the simulator's every message
// charge through the pluggable network layer must leave the flat-wire
// behaviour bit-identical to the pre-topology engine.  The table below
// pins the three synthetic paper sections x the four overhead runs x
// both broadcast modes x two machine sizes, captured from the engine
// BEFORE the network layer existed.
//
// One deliberate divergence is folded in below instead of re-pinned
// silently: the old engine charged a hardware broadcast's wire latency
// once PER DESTINATION, double-counting a single flood of the dedicated
// broadcast channel.  The network layer charges one flood per broadcast,
// so in hardware mode the expected network_busy is the pinned value
// minus (destinations - 1) x cycles x wire_latency.  Everything else —
// makespans, message counts, event counts — is unchanged, which is the
// proof that the fix touched accounting only, never timing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/sim/network.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"
#include "src/trace/synth.hpp"

namespace mpps::sim {
namespace {

struct PinnedRun {
  const char* section;
  int run;             // paper overhead run 1..4
  bool hardware;       // costs.hardware_broadcast
  std::uint32_t procs;
  std::int64_t makespan_ns;
  std::uint64_t messages;
  std::uint64_t local_deliveries;
  std::uint64_t events;
  std::int64_t network_busy_ns;  // pre-fix value; hw rows adjusted below
  std::int64_t termination_ns;
};

constexpr PinnedRun kPinned[] = {
    {"rubik", 1, false, 2, 107690000, 1065, 1103, 4312, 536500, 0},
    {"rubik", 1, false, 8, 32683000, 1903, 265, 4360, 967500, 0},
    {"rubik", 1, true, 2, 107690000, 1065, 1103, 4312, 536500, 0},
    {"rubik", 1, true, 8, 32683000, 1903, 265, 4360, 967500, 0},
    {"rubik", 2, false, 2, 111992000, 1065, 1103, 4312, 536500, 0},
    {"rubik", 2, false, 8, 35202000, 1903, 265, 4360, 967500, 0},
    {"rubik", 2, true, 2, 111977000, 1065, 1103, 4312, 536500, 0},
    {"rubik", 2, true, 8, 35097000, 1903, 265, 4360, 967500, 0},
    {"rubik", 3, false, 2, 116294000, 1065, 1103, 4312, 536500, 0},
    {"rubik", 3, false, 8, 37721000, 1903, 265, 4360, 967500, 0},
    {"rubik", 3, true, 2, 116264000, 1065, 1103, 4312, 536500, 0},
    {"rubik", 3, true, 8, 37511000, 1903, 265, 4360, 967500, 0},
    {"rubik", 4, false, 2, 124898000, 1065, 1103, 4312, 536500, 0},
    {"rubik", 4, false, 8, 42759000, 1903, 265, 4360, 967500, 0},
    {"rubik", 4, true, 2, 124838000, 1065, 1103, 4312, 536500, 0},
    {"rubik", 4, true, 8, 42339000, 1903, 265, 4360, 967500, 0},
    {"tourney", 1, false, 2, 268233500, 6692, 3966, 21274, 3351000, 0},
    {"tourney", 1, false, 8, 204827000, 8523, 2135, 21334, 4281500, 0},
    {"tourney", 1, true, 2, 268233500, 6692, 3966, 21274, 3351000, 0},
    {"tourney", 1, true, 8, 204827000, 8523, 2135, 21334, 4281500, 0},
    {"tourney", 2, false, 2, 299609500, 6692, 3966, 21274, 3351000, 0},
    {"tourney", 2, false, 8, 238130000, 8523, 2135, 21334, 4281500, 0},
    {"tourney", 2, true, 2, 299589500, 6692, 3966, 21274, 3351000, 0},
    {"tourney", 2, true, 8, 238005500, 8523, 2135, 21334, 4281500, 0},
    {"tourney", 3, false, 2, 330985500, 6692, 3966, 21274, 3351000, 0},
    {"tourney", 3, false, 8, 271434500, 8523, 2135, 21334, 4281500, 0},
    {"tourney", 3, true, 2, 330945500, 6692, 3966, 21274, 3351000, 0},
    {"tourney", 3, true, 8, 271184500, 8523, 2135, 21334, 4281500, 0},
    {"tourney", 4, false, 2, 393737500, 6692, 3966, 21274, 3351000, 0},
    {"tourney", 4, false, 8, 338013000, 8523, 2135, 21334, 4281500, 0},
    {"tourney", 4, true, 2, 393657500, 6692, 3966, 21274, 3351000, 0},
    {"tourney", 4, true, 8, 337542500, 8523, 2135, 21334, 4281500, 0},
    {"weaver", 1, false, 2, 9290000, 167, 129, 598, 87500, 0},
    {"weaver", 1, false, 8, 3691500, 263, 33, 646, 147500, 0},
    {"weaver", 1, true, 2, 9290000, 167, 129, 598, 87500, 0},
    {"weaver", 1, true, 8, 3691500, 263, 33, 646, 147500, 0},
    {"weaver", 2, false, 2, 10015000, 167, 129, 598, 87500, 0},
    {"weaver", 2, false, 8, 4370500, 263, 33, 646, 147500, 0},
    {"weaver", 2, true, 2, 10005000, 167, 129, 598, 87500, 0},
    {"weaver", 2, true, 8, 4250500, 263, 33, 646, 147500, 0},
    {"weaver", 3, false, 2, 10740000, 167, 129, 598, 87500, 0},
    {"weaver", 3, false, 8, 5018500, 263, 33, 646, 147500, 0},
    {"weaver", 3, true, 2, 10720000, 167, 129, 598, 87500, 0},
    {"weaver", 3, true, 8, 4778500, 263, 33, 646, 147500, 0},
    {"weaver", 4, false, 2, 12222000, 167, 129, 598, 87500, 0},
    {"weaver", 4, false, 8, 6327000, 263, 33, 646, 147500, 0},
    {"weaver", 4, true, 2, 12162000, 167, 129, 598, 87500, 0},
    {"weaver", 4, true, 8, 5834500, 263, 33, 646, 147500, 0},
};

trace::Trace section_by_name(const std::string& name) {
  if (name == "rubik") return trace::make_rubik_section();
  if (name == "tourney") return trace::make_tourney_section();
  return trace::make_weaver_section();
}

TEST(NetworkFixpoint, ConstantNetMatchesThePreTopologyEngine) {
  std::string cached_name;
  trace::Trace trace;
  for (const PinnedRun& pin : kPinned) {
    if (cached_name != pin.section) {
      trace = section_by_name(pin.section);
      cached_name = pin.section;
    }
    SimConfig config;
    config.match_processors = pin.procs;
    config.costs = CostModel::paper_run(pin.run);
    config.costs.hardware_broadcast = pin.hardware;
    const Assignment assignment =
        Assignment::round_robin(trace.num_buckets, config.partitions());
    const SimResult result = simulate(trace, config, assignment);

    const std::string label = std::string(pin.section) + " run " +
                              std::to_string(pin.run) +
                              (pin.hardware ? " hw " : " serial ") +
                              std::to_string(pin.procs) + "p";
    EXPECT_EQ(result.makespan.nanos(), pin.makespan_ns) << label;
    EXPECT_EQ(result.messages, pin.messages) << label;
    EXPECT_EQ(result.local_deliveries, pin.local_deliveries) << label;
    EXPECT_EQ(result.events, pin.events) << label;
    EXPECT_EQ(result.termination_overhead.nanos(), pin.termination_ns)
        << label;

    // Hardware mode: the old engine charged the broadcast wire once per
    // destination; the network layer charges one flood per cycle.
    std::int64_t expected_busy = pin.network_busy_ns;
    if (pin.hardware) {
      expected_busy -=
          static_cast<std::int64_t>(pin.procs - 1) *
          static_cast<std::int64_t>(trace.cycles.size()) *
          config.costs.wire_latency.nanos();
    }
    EXPECT_EQ(result.network_busy.nanos(), expected_busy) << label;

    // The flat wire is the degenerate network model, and the two views
    // of the charged wire time must agree exactly.
    EXPECT_EQ(result.net.kind, NetKind::Constant) << label;
    EXPECT_EQ(result.net.total_latency, result.network_busy) << label;
    EXPECT_EQ(result.net.total_delay, SimTime{}) << label;
    EXPECT_EQ(result.net.max_hops(), 1u) << label;
  }
}

TEST(NetworkFixpoint, ExplicitConstantConfigIsTheDefault) {
  // A default-constructed NetworkConfig and a fully spelled-out constant
  // one are the same machine.
  const trace::Trace trace = trace::make_weaver_section();
  SimConfig config;
  config.match_processors = 4;
  config.costs = CostModel::paper_run(2);
  const Assignment assignment =
      Assignment::round_robin(trace.num_buckets, config.partitions());
  const SimResult implicit = simulate(trace, config, assignment);

  config.network.kind = NetKind::Constant;
  config.network.hop_latency = config.costs.wire_latency;
  const SimResult explicit_net = simulate(trace, config, assignment);
  EXPECT_EQ(implicit.makespan, explicit_net.makespan);
  EXPECT_EQ(implicit.network_busy, explicit_net.network_busy);
  EXPECT_EQ(implicit.net, explicit_net.net);
}

}  // namespace
}  // namespace mpps::sim
