// The serving engine's session/transaction contract: lifecycle and
// result contents, per-transaction validation (UsageError from the
// future, never a poisoned engine), close/evict semantics, admission
// fusing, and the replay-identity law — a single serve session replaying
// the interpreter's recorded WM-change stream ends with a conflict set
// identical to the `mpps run` path's.
#include "src/serve/serve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"
#include "src/ops5/wme.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/interp.hpp"
#include "pmatch_test_util.hpp"

namespace mpps::serve {
namespace {

constexpr const char* kPairProgram =
    "(p pair (item ^key <k>) (probe ^key <k>) --> (halt))\n";

ops5::Wme wme(const std::string& text) { return ops5::parse_wme(text); }

/// Order-free view of a conflict-set snapshot (production, wme ids).
std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>> flat(
    const std::vector<rete::Instantiation>& insts) {
  std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>> out;
  for (const rete::Instantiation& inst : insts) {
    std::vector<std::uint64_t> wmes;
    for (WmeId w : inst.token.wmes) wmes.push_back(w.value());
    out.emplace_back(inst.production.value(), std::move(wmes));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ServeEngine, TransactReportsAddedIdsAndFiredInstantiations) {
  ServeEngine engine(ops5::parse_program(kPairProgram));
  Session s = engine.open_session();

  Transaction setup;
  setup.add(wme("(item ^key a)")).add(wme("(item ^key b)"));
  const TxResult r1 = s.transact(std::move(setup));
  ASSERT_EQ(r1.added.size(), 2u);
  EXPECT_EQ(r1.added[0].value(), 1u);  // session-local ids, from 1
  EXPECT_EQ(r1.added[1].value(), 2u);
  EXPECT_TRUE(r1.fired.empty());

  Transaction probe;
  probe.add(wme("(probe ^key a)"));
  const TxResult r2 = s.transact(std::move(probe));
  ASSERT_EQ(r2.fired.size(), 1u);  // the (item a, probe a) pair
  EXPECT_EQ(r2.retracted, 0u);

  Transaction retract;
  retract.remove(r1.added[0]);
  const TxResult r3 = s.transact(std::move(retract));
  EXPECT_TRUE(r3.fired.empty());
  EXPECT_EQ(r3.retracted, 1u);
}

TEST(ServeEngine, CloseRetractsEverythingAndRejectsFurtherSubmits) {
  ServeEngine engine(ops5::parse_program(kPairProgram));
  Session s = engine.open_session();
  Transaction tx;
  tx.add(wme("(item ^key a)")).add(wme("(probe ^key a)"));
  const TxResult r = s.transact(std::move(tx));
  EXPECT_EQ(r.fired.size(), 1u);

  const TxResult closed = s.close();
  EXPECT_EQ(closed.retracted, 1u);  // the pair leaves the conflict set
  EXPECT_TRUE(engine.conflict_snapshot().empty());

  Transaction late;
  late.add(wme("(item ^key z)"));
  EXPECT_THROW(s.submit(std::move(late)), RuntimeError);

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
}

TEST(ServeEngine, EvictIsTheOwnerSideClose) {
  ServeEngine engine(ops5::parse_program(kPairProgram));
  Session s = engine.open_session();
  Transaction tx;
  tx.add(wme("(item ^key a)")).add(wme("(probe ^key a)"));
  s.transact(std::move(tx));

  const TxResult evicted = engine.evict(s.id()).get();
  EXPECT_EQ(evicted.retracted, 1u);
  EXPECT_TRUE(engine.conflict_snapshot().empty());
  // Double-close of an already-closing/closed session is rejected.
  EXPECT_THROW(engine.evict(s.id()), RuntimeError);
}

TEST(ServeEngine, ValidationFailuresSurfaceAsUsageErrorWithoutPoisoning) {
  ServeEngine engine(ops5::parse_program(kPairProgram));
  Session s = engine.open_session();

  // Removing an id that was never added.
  Transaction bad_remove;
  bad_remove.remove(WmeId{99});
  EXPECT_THROW(s.transact(std::move(bad_remove)), UsageError);

  // Remove-then-re-add of the same local id inside one transaction (the
  // engine id would be reused within the fused phase).
  Transaction tx;
  tx.add(wme("(item ^key a)"));
  const TxResult r = s.transact(std::move(tx));
  Transaction readd;
  readd.remove(r.added[0]);
  readd.add([&] {
    ops5::Wme w = wme("(item ^key a)");
    w.rebind_id(r.added[0]);
    return w;
  }());
  EXPECT_THROW(s.transact(std::move(readd)), UsageError);

  // A rejected transaction must not have mutated anything: the session
  // still works and its previous wme is still live.
  Transaction probe;
  probe.add(wme("(probe ^key a)"));
  const TxResult ok = s.transact(std::move(probe));
  EXPECT_EQ(ok.fired.size(), 1u);
  EXPECT_GE(engine.stats().rejected, 2u);
}

TEST(ServeEngine, MaxLiveWmesBoundsTheSession) {
  ServeEngine engine(ops5::parse_program(kPairProgram));
  Session s = engine.open_session({.label = "bounded", .max_live_wmes = 2});
  Transaction fill;
  fill.add(wme("(item ^key a)")).add(wme("(item ^key b)"));
  const TxResult r = s.transact(std::move(fill));

  Transaction over;
  over.add(wme("(item ^key c)"));
  EXPECT_THROW(s.transact(std::move(over)), UsageError);

  // Freeing a slot in the same transaction keeps it admissible.
  Transaction swap;
  swap.remove(r.added[0]);
  swap.add(wme("(item ^key c)"));
  EXPECT_NO_THROW(s.transact(std::move(swap)));
}

TEST(ServeEngine, BuilderStyleOptionValidation) {
  const ops5::Program program = ops5::parse_program(kPairProgram);
  ServeOptions zero_batch;
  zero_batch.admission_batch = 0;
  EXPECT_THROW(ServeEngine(program, zero_batch), UsageError);
  ServeOptions zero_queue;
  zero_queue.queue_capacity = 0;
  EXPECT_THROW(ServeEngine(program, zero_queue), UsageError);
  ServeOptions zero_sessions;
  zero_sessions.max_sessions = 0;
  EXPECT_THROW(ServeEngine(program, zero_sessions), UsageError);
}

TEST(ServeEngine, MaxSessionsBoundsOpensButClosedSlotsFree) {
  ServeOptions options;
  options.max_sessions = 2;
  ServeEngine engine(ops5::parse_program(kPairProgram), options);
  Session a = engine.open_session();
  Session b = engine.open_session();
  EXPECT_THROW(engine.open_session(), RuntimeError);
  a.close();
  EXPECT_NO_THROW(engine.open_session());
  b.close();
}

TEST(ServeEngine, ConcurrentSessionsFuseIntoSharedPhases) {
  // A deliberately slow first phase (one big transaction) so the later
  // single-change submits pile up in the admission queue behind it and
  // get fused when the dispatcher comes back around.
  ServeEngine engine(ops5::parse_program(kPairProgram));
  Session big = engine.open_session();
  Transaction slow;
  for (int i = 0; i < 400; ++i) {
    slow.add(wme("(item ^key k" + std::to_string(i) + ")"));
  }
  std::future<TxResult> first = big.submit(std::move(slow));

  constexpr int kSessions = 4;
  std::vector<Session> sessions;
  std::vector<std::future<TxResult>> futures;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(engine.open_session());
    Transaction tx;
    tx.add(wme("(probe ^key k1)"));
    futures.push_back(sessions.back().submit(std::move(tx)));
  }
  first.get();
  std::uint32_t max_fused = 1;
  for (std::future<TxResult>& f : futures) {
    max_fused = std::max(max_fused, f.get().fused_transactions);
  }
  EXPECT_GE(max_fused, 2u);
  EXPECT_EQ(engine.stats().max_fused, max_fused);
  // Fused or not, isolation holds: only the big session's items exist,
  // so no probe from another session may pair with them.
  EXPECT_TRUE(engine.conflict_snapshot().empty());
  EXPECT_EQ(engine.stats().cross_session_deltas, 0u);
}

// --- Replay identity against the `mpps run` path ---------------------------

/// A serial engine that records every act-phase batch the interpreter
/// pushes, so the same stream can be replayed through a serve session.
class RecordingEngine final : public rete::MatchEngine {
 public:
  RecordingEngine(const rete::Network& net, const rete::EngineOptions& options,
                  std::vector<std::vector<ops5::WmeChange>>* log)
      : inner_(net, options), log_(log) {}

  void set_listener(rete::ActivationListener* l) override {
    inner_.set_listener(l);
  }
  void process_change(const ops5::WmeChange& change) override {
    log_->push_back({change});
    inner_.process_change(change);
  }
  void process_changes(std::span<const ops5::WmeChange> changes) override {
    log_->emplace_back(changes.begin(), changes.end());
    inner_.process_changes(changes);
  }
  rete::ConflictSet& conflict_set() override { return inner_.conflict_set(); }
  [[nodiscard]] const ops5::Wme& wme(WmeId id) const override {
    return inner_.wme(id);
  }
  [[nodiscard]] const rete::EngineStats& stats() const override {
    return inner_.stats();
  }

 private:
  rete::Engine inner_;
  std::vector<std::vector<ops5::WmeChange>>* log_;
};

TEST(ServeEngine, SingleSessionReplayMatchesRunPathConflictSet) {
  // Drive the interpreter (the `mpps run` path) over a real program,
  // recording the act-phase change stream, then replay that stream as
  // one serve session's transactions.  Session 0 passes wme timetags
  // through unchanged, so the final conflict sets must be identical —
  // production ids AND token wme ids.
  for (const char* name : {"counter.ops", "blocks.ops"}) {
    const std::string source = pmatch_test::load_program(name);
    ASSERT_FALSE(source.empty());
    const ops5::Program program = ops5::parse_program(source);

    std::vector<std::vector<ops5::WmeChange>> log;
    rete::InterpreterOptions options;
    options.engine_factory = [&log](const rete::Network& net,
                                    const rete::EngineOptions& eopts) {
      return std::make_unique<RecordingEngine>(net, eopts, &log);
    };
    rete::Interpreter interp(program, options);
    interp.load_initial_wmes();
    interp.run();
    const auto expected =
        pmatch_test::flatten(interp.match_engine().conflict_set());

    ServeEngine engine(program);
    Session session = engine.open_session();
    for (const std::vector<ops5::WmeChange>& batch : log) {
      session.transact(std::span<const ops5::WmeChange>(batch));
    }
    EXPECT_EQ(flat(engine.conflict_snapshot()), expected) << name;
    EXPECT_EQ(engine.stats().cross_session_deltas, 0u) << name;
  }
}

TEST(ServeEngine, LatencyReportIsOrderedAndPopulated) {
  ServeEngine engine(ops5::parse_program(kPairProgram));
  Session s = engine.open_session();
  for (int i = 0; i < 32; ++i) {
    Transaction tx;
    tx.add(wme("(item ^key k" + std::to_string(i) + ")"));
    s.transact(std::move(tx));
  }
  const LatencyReport r = engine.latency_report();
  EXPECT_EQ(r.transactions, 32u);
  EXPECT_GT(r.p50_us, 0.0);
  EXPECT_LE(r.p50_us, r.p95_us);
  EXPECT_LE(r.p95_us, r.p99_us);
  EXPECT_GT(r.tx_per_s, 0.0);
  EXPECT_GT(r.wall_s, 0.0);
}

TEST(ServeEngine, ShutdownDrainsInFlightTransactions) {
  ServeEngine engine(ops5::parse_program(kPairProgram));
  Session s = engine.open_session();
  std::vector<std::future<TxResult>> futures;
  for (int i = 0; i < 8; ++i) {
    Transaction tx;
    tx.add(wme("(item ^key k" + std::to_string(i) + ")"));
    futures.push_back(s.submit(std::move(tx)));
  }
  engine.shutdown();
  for (std::future<TxResult>& f : futures) {
    EXPECT_NO_THROW(f.get());  // queued work completes, never vanishes
  }
  Transaction late;
  late.add(wme("(item ^key z)"));
  EXPECT_THROW(s.submit(std::move(late)), RuntimeError);
}

}  // namespace
}  // namespace mpps::serve
