// The randomized differential self-check: clean engines pass hundreds of
// rounds; an injected cost-model fault is caught and shrunk to a minimal
// scenario; everything is deterministic for a fixed seed.
#include "src/core/selfcheck.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/common/error.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/io.hpp"
#include "src/trace/synth.hpp"

namespace mpps::core {
namespace {

SelfCheckOptions quick_options() {
  SelfCheckOptions options;
  options.rounds = 12;
  options.seed = 7;
  return options;
}

TEST(SelfCheck, CleanEnginesPass) {
  obs::Registry metrics;
  SelfCheckOptions options = quick_options();
  options.metrics = &metrics;
  const SelfCheckResult result = run_selfcheck(options);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_EQ(result.rounds, 12u);
  // 4 overhead runs x 4 assignment strategies per round.
  EXPECT_EQ(result.comparisons, 12u * 16u);
  EXPECT_GT(result.invariant_checks, 0u);
  EXPECT_EQ(metrics.counter("selfcheck.rounds").value(), 12u);
  EXPECT_EQ(metrics.counter("selfcheck.comparisons").value(), 12u * 16u);
  EXPECT_NE(result.summary().find("0 failure(s)"), std::string::npos);
}

TEST(SelfCheck, DeterministicForFixedSeed) {
  const SelfCheckResult a = run_selfcheck(quick_options());
  const SelfCheckResult b = run_selfcheck(quick_options());
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.comparisons, b.comparisons);
  EXPECT_EQ(a.invariant_checks, b.invariant_checks);
}

TEST(SelfCheck, InjectedFaultIsCaughtAndShrunk) {
  SelfCheckOptions options = quick_options();
  options.fault = FaultInjection::LeftTokenUndercharge;
  options.max_failures = 1;
  std::ostringstream log;
  options.log = &log;
  const SelfCheckResult result = run_selfcheck(options);
  ASSERT_FALSE(result.ok());
  const SelfCheckFailure& failure = result.failures.front();
  // The acceptance bar: the shrinker reduces the repro to a handful of
  // activations (a single left token already exposes the undercharge).
  EXPECT_LE(failure.scenario.trace.total_activations(), 10u);
  EXPECT_GT(failure.shrink_steps, 0u);
  // The minimized scenario still fails, under the true shrink semantics.
  EXPECT_FALSE(check_scenario(failure.scenario, options.fault).empty());
  EXPECT_NE(failure.describe().find("minimal repro"), std::string::npos);
  EXPECT_NE(log.str().find("round"), std::string::npos);
}

TEST(SelfCheck, FreeRemoteSendFaultIsCaught) {
  SelfCheckOptions options = quick_options();
  options.rounds = 30;
  options.fault = FaultInjection::FreeRemoteSend;
  options.max_failures = 1;
  const SelfCheckResult result = run_selfcheck(options);
  ASSERT_FALSE(result.ok());
  EXPECT_LE(result.failures.front().scenario.trace.total_activations(), 64u);
}

TEST(SelfCheck, CheckScenarioAgreesOnHandBuiltWorkload) {
  Scenario scenario;
  scenario.trace = trace::make_weaver_section();
  scenario.config.match_processors = 4;
  scenario.config.costs = sim::CostModel::paper_run(3);
  for (const AssignKind kind :
       {AssignKind::RoundRobin, AssignKind::Random, AssignKind::PerCycle,
        AssignKind::Greedy}) {
    scenario.assign = kind;
    scenario.assign_seed = 99;
    EXPECT_EQ(check_scenario(scenario), "");
  }
  EXPECT_NE(check_scenario(scenario, FaultInjection::LeftTokenUndercharge),
            "");
}

TEST(SelfCheck, ShrinkKeepsScenarioValidAndMinimal) {
  Scenario scenario;
  scenario.trace = trace::make_weaver_section();
  scenario.config.match_processors = 16;
  scenario.config.termination = sim::TerminationModel::AckCounting;
  scenario.config.costs = sim::CostModel::paper_run(2);
  scenario.assign = AssignKind::PerCycle;
  ASSERT_NE(check_scenario(scenario, FaultInjection::LeftTokenUndercharge),
            "");
  std::uint64_t steps = 0;
  const Scenario minimal = shrink_scenario(
      scenario, FaultInjection::LeftTokenUndercharge, &steps);
  EXPECT_GT(steps, 0u);
  EXPECT_LE(minimal.trace.total_activations(), 10u);
  EXPECT_EQ(minimal.trace.cycles.size(), 1u);
  EXPECT_EQ(minimal.config.match_processors, 1u);
  EXPECT_EQ(minimal.config.termination, sim::TerminationModel::None);
  EXPECT_EQ(minimal.assign, AssignKind::RoundRobin);
  EXPECT_FALSE(
      check_scenario(minimal, FaultInjection::LeftTokenUndercharge).empty());
}

TEST(SelfCheck, ShrinkIsByteDeterministic) {
  // Two shrinks of the same failing scenario must agree byte for byte —
  // the repro a CI log prints today has to be the one a developer
  // reproduces tomorrow.
  Scenario scenario;
  scenario.trace = trace::make_weaver_section();
  scenario.config.match_processors = 16;
  scenario.config.termination = sim::TerminationModel::AckCounting;
  scenario.config.costs = sim::CostModel::paper_run(2);
  scenario.assign = AssignKind::PerCycle;
  ASSERT_NE(check_scenario(scenario, FaultInjection::LeftTokenUndercharge),
            "");
  const auto serialize = [](const Scenario& s) {
    std::ostringstream os;
    trace::write_trace(os, s.trace);
    os << s.describe() << " assign_seed=" << s.assign_seed;
    return os.str();
  };
  std::uint64_t steps_a = 0;
  std::uint64_t steps_b = 0;
  const Scenario a = shrink_scenario(
      scenario, FaultInjection::LeftTokenUndercharge, &steps_a);
  const Scenario b = shrink_scenario(
      scenario, FaultInjection::LeftTokenUndercharge, &steps_b);
  EXPECT_EQ(serialize(a), serialize(b));
  EXPECT_EQ(steps_a, steps_b);
}

TEST(SelfCheck, ParseFault) {
  EXPECT_EQ(parse_fault("none"), FaultInjection::None);
  EXPECT_EQ(parse_fault("left-token-undercharge"),
            FaultInjection::LeftTokenUndercharge);
  EXPECT_EQ(parse_fault("free-remote-send"), FaultInjection::FreeRemoteSend);
  EXPECT_THROW(parse_fault("bogus"), RuntimeError);
}

TEST(SelfCheck, DescribeNamesTheShape) {
  Scenario scenario;
  scenario.trace = trace::make_weaver_section();
  scenario.config.match_processors = 4;
  scenario.config.mapping = sim::MappingMode::ProcessorPairs;
  scenario.config.constant_test_processors = 2;
  scenario.assign = AssignKind::Greedy;
  const std::string description = scenario.describe();
  EXPECT_NE(description.find("4 proc(s)"), std::string::npos) << description;
  EXPECT_NE(description.find("pairs"), std::string::npos);
  EXPECT_NE(description.find("ct=2"), std::string::npos);
  EXPECT_NE(description.find("greedy"), std::string::npos);
}

}  // namespace
}  // namespace mpps::core
