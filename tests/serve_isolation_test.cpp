// Adversarial session-isolation suite: sessions insert wmes that WOULD
// cross-match if the partition ever leaked — identical classes, identical
// symbols, identical join-key values, forced into the SAME hash bucket
// (num_buckets = 1) so only exact key equality separates them.  The
// oracle is a per-session serial rete::Engine fed only that session's
// changes with no partition machinery at all: the serving engine's
// conflict set must equal the union of the oracles (with wme ids mapped
// into each session's namespace), its per-transaction `fired` results
// must attribute every instantiation to the causing session, and
// `cross_session_deltas` must be 0 — at 1, 2, 4 and 8 match threads,
// and under TSan (scripts/ci.sh runs this binary in the TSan build).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/ops5/parser.hpp"
#include "src/ops5/wme.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/network.hpp"
#include "src/serve/serve.hpp"

namespace mpps::serve {
namespace {

// Positive join + negative CE over the same shared symbols: a leak either
// manufactures `pair` instantiations across sessions or suppresses
// `lonely` ones (the probe-only session's probes would find the other
// session's items).
constexpr const char* kAdversarialProgram =
    "(p pair (item ^key <k>) (probe ^key <k>) --> (halt))\n"
    "(p lonely (probe ^key <k>) - (item ^key <k>) --> (halt))\n";

using FlatSet = std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>>;

FlatSet flat(const std::vector<rete::Instantiation>& insts) {
  FlatSet out;
  for (const rete::Instantiation& inst : insts) {
    std::vector<std::uint64_t> wmes;
    for (WmeId w : inst.token.wmes) wmes.push_back(w.value());
    out.emplace_back(inst.production.value(), std::move(wmes));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// One session's script: the wme texts it adds, in order.  Session-local
/// ids are assigned 1..n in that order on both sides of the differential.
struct Script {
  std::vector<std::string> adds;
};

/// The shared-symbol clash: session 0 holds items AND probes (pairs, no
/// lonelies), session 1 holds probes only (no pairs, all lonely), and
/// sessions 2+ repeat the pattern over the SAME keys.
std::vector<Script> adversarial_scripts(std::uint32_t sessions) {
  std::vector<Script> scripts(sessions);
  for (std::uint32_t s = 0; s < sessions; ++s) {
    for (int k = 0; k < 4; ++k) {
      const std::string key = "k" + std::to_string(k);
      if (s % 2 == 0) {
        scripts[s].adds.push_back("(item ^key " + key + ")");
      }
      scripts[s].adds.push_back("(probe ^key " + key + ")");
    }
  }
  return scripts;
}

/// What the session SHOULD see: a serial engine with no partitioning,
/// fed only this session's wmes, ids namespaced afterwards.
FlatSet oracle(const ops5::Program& program, const Script& script,
               std::uint32_t ordinal) {
  const rete::Network net = rete::Network::compile(program);
  rete::EngineOptions eopts;
  eopts.num_buckets = 1;
  rete::Engine engine(net, eopts);
  std::uint64_t next_id = 1;
  for (const std::string& text : script.adds) {
    ops5::Wme w = ops5::parse_wme(text);
    w.rebind_id(WmeId{next_id++});
    engine.process_change(
        ops5::WmeChange{ops5::WmeChange::Kind::Add, w});
  }
  FlatSet out = flat(engine.conflict_set().all());
  const std::uint64_t base = static_cast<std::uint64_t>(ordinal) << 40;
  for (auto& [production, wmes] : out) {
    for (std::uint64_t& id : wmes) id |= base;
  }
  return out;
}

class ServeIsolation : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ServeIsolation, NoCrossSessionMatchesUnderBucketCollisions) {
  const std::uint32_t threads = GetParam();
  const ops5::Program program = ops5::parse_program(kAdversarialProgram);
  constexpr std::uint32_t kSessions = 4;

  ServeOptions options;
  options.match.threads = threads;
  options.match.num_buckets = 1;  // every hash key shares one bucket
  ServeEngine engine(program, options);

  const std::vector<Script> scripts = adversarial_scripts(kSessions);
  std::vector<FlatSet> fired_by_session(kSessions);
  {
    // Concurrent clients, one wme per transaction: maximal interleaving
    // through the admission queue and maximal fused-phase mixing.
    std::vector<std::thread> clients;
    for (std::uint32_t c = 0; c < kSessions; ++c) {
      clients.emplace_back([&, c] {
        Session session = engine.open_session(
            {.label = "s" + std::to_string(c), .max_live_wmes = 0});
        std::vector<rete::Instantiation> fired;
        for (const std::string& text : scripts[c].adds) {
          Transaction tx;
          tx.add(ops5::parse_wme(text));
          TxResult r = session.transact(std::move(tx));
          fired.insert(fired.end(), r.fired.begin(), r.fired.end());
        }
        fired_by_session[c] = flat(fired);
      });
    }
    for (std::thread& t : clients) t.join();
  }

  // Sessions raced for ordinals; recover each session's ordinal from the
  // ids its own fired tokens carry (labels pin the mapping in stats()).
  const ServeStats stats = engine.stats();
  ASSERT_EQ(stats.sessions.size(), kSessions);
  EXPECT_EQ(stats.cross_session_deltas, 0u) << threads << " threads";

  // The engine's final conflict set is exactly the union of the
  // per-session oracles — nothing manufactured, nothing suppressed.
  FlatSet expected;
  for (const ServeStats::SessionInfo& info : stats.sessions) {
    const std::uint32_t client =
        static_cast<std::uint32_t>(std::stoul(info.label.substr(1)));
    const FlatSet per = oracle(program, scripts[client], info.id);
    expected.insert(expected.end(), per.begin(), per.end());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(flat(engine.conflict_snapshot()), expected)
      << threads << " threads";

  // Every fired instantiation a client observed belongs to its own
  // partition (subset check: per-transaction attribution can lag pure
  // conflict-set membership for lonely -> pair flips, but may never
  // cross sessions).
  for (const ServeStats::SessionInfo& info : stats.sessions) {
    const std::uint32_t client =
        static_cast<std::uint32_t>(std::stoul(info.label.substr(1)));
    for (const auto& [production, wmes] : fired_by_session[client]) {
      for (const std::uint64_t id : wmes) {
        EXPECT_EQ(id >> 40, info.id)
            << "instantiation of production " << production
            << " observed by client " << client
            << " holds a wme from session " << (id >> 40);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ServeIsolation,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace mpps::serve
