// The sweep engine's contract: outcomes equal the serial simulations, the
// merged observability sinks equal serial accumulation, and everything is
// bit-identical for every --jobs value (the determinism guarantee the CLI
// and benches rely on).  These tests are also the TSan workload in
// scripts/ci.sh.
#include "src/core/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/experiments.hpp"
#include "src/trace/synth.hpp"

namespace mpps::core {
namespace {

using trace::Trace;

/// A small (traces x processors x overhead-runs) grid: 12 scenarios over
/// two structurally different sections.
std::vector<SweepScenario> small_grid(const Trace& rubik,
                                      const Trace& weaver) {
  std::vector<SweepScenario> scenarios;
  for (const Trace* t : {&rubik, &weaver}) {
    for (std::uint32_t p : {1u, 2u, 4u}) {
      for (int run : {0, 2}) {
        SweepScenario scenario;
        scenario.label = t->name + "/p" + std::to_string(p) + "/r" +
                         std::to_string(run);
        scenario.trace = t;
        scenario.config.match_processors = p;
        scenario.config.costs = run == 0 ? sim::CostModel::zero_overhead()
                                         : sim::CostModel::paper_run(run);
        scenario.assignment =
            sim::Assignment::round_robin(t->num_buckets, p);
        scenarios.push_back(std::move(scenario));
      }
    }
  }
  return scenarios;
}

/// Every observable field of an outcome list, as one string — the
/// determinism tests compare these byte-for-byte.
std::string serialize(const std::vector<SweepOutcome>& outcomes) {
  std::ostringstream os;
  for (const SweepOutcome& o : outcomes) {
    os << o.label << ' ' << o.result.makespan.nanos() << ' '
       << o.result.messages << ' ' << o.result.local_deliveries << ' '
       << o.result.network_busy.nanos() << ' '
       << o.result.termination_overhead.nanos() << ' '
       << o.result.cycles.size() << ' ' << o.baseline.nanos() << ' '
       << o.speedup << '\n';
    for (const sim::CycleMetrics& c : o.result.cycles) {
      os << "  " << c.start.nanos() << ' ' << c.end.nanos() << ' '
         << c.messages;
      for (const sim::ProcCycleMetrics& p : c.procs) {
        os << " (" << p.busy.nanos() << ',' << p.activations << ','
           << p.left_activations << ')';
      }
      os << '\n';
    }
  }
  return os.str();
}

TEST(SweepRunner, OutcomesMatchSerialSimulate) {
  const Trace rubik = trace::make_rubik_section(32, 7);
  const Trace weaver = trace::make_weaver_section(32, 7);
  const auto scenarios = small_grid(rubik, weaver);
  const auto outcomes = run_sweep(scenarios, 3);
  ASSERT_EQ(outcomes.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const sim::SimResult direct = sim::simulate(
        *scenarios[i].trace, scenarios[i].config, scenarios[i].assignment);
    EXPECT_EQ(outcomes[i].label, scenarios[i].label);
    EXPECT_EQ(outcomes[i].result.makespan, direct.makespan) << i;
    EXPECT_EQ(outcomes[i].result.messages, direct.messages) << i;
    EXPECT_EQ(outcomes[i].baseline,
              sim::baseline_time(*scenarios[i].trace))
        << i;
    EXPECT_DOUBLE_EQ(outcomes[i].speedup,
                     static_cast<double>(outcomes[i].baseline.nanos()) /
                         static_cast<double>(direct.makespan.nanos()))
        << i;
  }
}

TEST(SweepRunner, BitIdenticalAcrossJobCounts) {
  const Trace rubik = trace::make_rubik_section(32, 3);
  const Trace weaver = trace::make_weaver_section(32, 3);
  const auto scenarios = small_grid(rubik, weaver);

  std::string serialized[3];
  std::string metrics_csv[3];
  std::string trace_json[3];
  const unsigned job_counts[3] = {1, 4, 9};
  for (int i = 0; i < 3; ++i) {
    obs::Registry registry;
    obs::Tracer tracer;
    SweepOptions options;
    options.jobs = job_counts[i];
    options.metrics = &registry;
    options.tracer = &tracer;
    const auto outcomes = SweepRunner(options).run(scenarios);
    serialized[i] = serialize(outcomes);
    std::ostringstream csv;
    registry.write_csv(csv);
    metrics_csv[i] = csv.str();
    std::ostringstream json;
    tracer.write_chrome_json(json);
    trace_json[i] = json.str();
  }
  EXPECT_FALSE(serialized[0].empty());
  EXPECT_FALSE(metrics_csv[0].empty());
  EXPECT_EQ(serialized[0], serialized[1]);
  EXPECT_EQ(serialized[0], serialized[2]);
  EXPECT_EQ(metrics_csv[0], metrics_csv[1]);
  EXPECT_EQ(metrics_csv[0], metrics_csv[2]);
  EXPECT_EQ(trace_json[0], trace_json[1]);
  EXPECT_EQ(trace_json[0], trace_json[2]);
}

TEST(SweepRunner, MergedRegistryEqualsSerialAccumulation) {
  const Trace rubik = trace::make_rubik_section(32, 5);
  const Trace weaver = trace::make_weaver_section(32, 5);
  const auto scenarios = small_grid(rubik, weaver);

  // Serial accumulation: every scenario records directly into one shared
  // registry, in order.
  obs::Registry serial;
  for (const SweepScenario& scenario : scenarios) {
    sim::SimConfig config = scenario.config;
    config.metrics = &serial;
    sim::simulate(*scenario.trace, config, scenario.assignment);
  }
  std::ostringstream serial_csv;
  serial.write_csv(serial_csv);

  obs::Registry merged;
  SweepOptions options;
  options.jobs = 4;
  options.metrics = &merged;
  SweepRunner(options).run(scenarios);
  std::ostringstream merged_csv;
  merged.write_csv(merged_csv);

  EXPECT_FALSE(serial_csv.str().empty());
  EXPECT_EQ(serial_csv.str(), merged_csv.str());
}

TEST(SweepRunner, CrossRunLawsCountedInMergedMetrics) {
  // small_grid replays each (trace, procs) machine shape under two cost
  // models with one shared round-robin assignment, so the invariant pass
  // groups them and the cross-run laws — including event conservation —
  // must fire and be accounted in the merged registry, bit-identically
  // for every jobs value.
  const Trace rubik = trace::make_rubik_section(32, 11);
  const Trace weaver = trace::make_weaver_section(32, 11);
  const auto scenarios = small_grid(rubik, weaver);

  std::string csv[2];
  const unsigned job_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    obs::Registry registry;
    SweepOptions options;
    options.jobs = job_counts[i];
    options.metrics = &registry;
    options.check_invariants = true;
    const auto outcomes = SweepRunner(options).run(scenarios);
    ASSERT_EQ(outcomes.size(), scenarios.size());
    EXPECT_GT(
        registry
            .counter("sim.invariants.checked",
                     {{"invariant", "cross-run-event-conservation"}})
            .value(),
        0u);
    EXPECT_GT(registry
                  .counter("sim.invariants.checked",
                           {{"invariant", "overhead-monotonicity"}})
                  .value(),
              0u);
    std::ostringstream os;
    registry.write_csv(os);
    csv[i] = os.str();
  }
  EXPECT_FALSE(csv[0].empty());
  EXPECT_EQ(csv[0], csv[1]);
}

TEST(SweepRunner, LowestIndexedFailureWins) {
  const Trace rubik = trace::make_rubik_section(32, 2);
  std::vector<SweepScenario> scenarios;
  for (std::uint32_t procs : {2u, 4u}) {
    SweepScenario good;
    good.label = "good/p" + std::to_string(procs);
    good.trace = &rubik;
    good.config.match_processors = procs;
    good.assignment = sim::Assignment::round_robin(rubik.num_buckets, procs);
    scenarios.push_back(std::move(good));
  }
  // Two failing scenarios with DISTINGUISHABLE errors: the assignment
  // partition counts (3 and 5) both disagree with the config.
  for (std::uint32_t wrong : {3u, 5u}) {
    SweepScenario bad;
    bad.label = "bad/" + std::to_string(wrong);
    bad.trace = &rubik;
    bad.config.match_processors = 8;
    bad.assignment = sim::Assignment::round_robin(rubik.num_buckets, wrong);
    scenarios.push_back(std::move(bad));
  }
  for (unsigned jobs : {1u, 4u}) {
    try {
      run_sweep(scenarios, jobs);
      FAIL() << "expected RuntimeError (jobs " << jobs << ")";
    } catch (const RuntimeError& e) {
      // Index 2 (the 3-partition assignment) is the lowest failure for
      // every jobs value.
      EXPECT_NE(std::string(e.what()).find("targets 3"), std::string::npos)
          << e.what();
    }
  }
}

TEST(SweepRunner, RejectsScenarioWithoutTrace) {
  std::vector<SweepScenario> scenarios(1);
  scenarios[0].label = "empty";
  try {
    run_sweep(scenarios, 2);
    FAIL() << "expected RuntimeError";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("'empty'"), std::string::npos)
        << e.what();
  }
}

TEST(SweepRunner, ExplicitBaselineTraceSetsDenominator) {
  const Trace rubik = trace::make_rubik_section(32, 4);
  const Trace weaver = trace::make_weaver_section(32, 4);
  SweepScenario scenario;
  scenario.label = "weaver-vs-rubik-baseline";
  scenario.trace = &weaver;
  scenario.baseline = &rubik;
  scenario.config.match_processors = 2;
  scenario.assignment = sim::Assignment::round_robin(weaver.num_buckets, 2);
  const auto outcomes = run_sweep({scenario}, 1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].baseline, sim::baseline_time(rubik));
}

TEST(SweepRunner, ResolvesJobCount) {
  SweepOptions four;
  four.jobs = 4;
  EXPECT_EQ(SweepRunner(four).jobs(), 4u);
  EXPECT_GE(SweepRunner(SweepOptions{}).jobs(), 1u);
}

TEST(Experiments, OverheadGridOrderAndLabels) {
  const Section section{"Toy", trace::make_rubik_section(32, 6)};
  const auto grid = overhead_grid(section, {2u, 4u}, {0, 1});
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].label, "Toy/p2/r0");
  EXPECT_EQ(grid[1].label, "Toy/p2/r1");
  EXPECT_EQ(grid[2].label, "Toy/p4/r0");
  EXPECT_EQ(grid[3].label, "Toy/p4/r1");
  EXPECT_EQ(grid[3].config.match_processors, 4u);
  for (const auto& scenario : grid) EXPECT_EQ(scenario.trace, &section.trace);
}

TEST(Experiments, OverheadSweepCoversSectionsInOrder) {
  const std::vector<Section> sections = {
      {"A", trace::make_rubik_section(32, 8)},
      {"B", trace::make_weaver_section(32, 8)}};
  const auto outcomes = overhead_sweep(sections, {1u, 2u}, {0}, 2);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].label, "A/p1/r0");
  EXPECT_EQ(outcomes[3].label, "B/p2/r0");
  // p=1 at zero overhead IS the baseline machine: speedup exactly 1.
  EXPECT_DOUBLE_EQ(outcomes[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(outcomes[2].speedup, 1.0);
}

}  // namespace
}  // namespace mpps::core
