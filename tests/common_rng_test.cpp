#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mpps {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsRoughlyHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 10.0, kN * 0.01);
  }
}

TEST(Rng, SplitMixExpandsSeeds) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  Rng rng;
  (void)rng();
}

}  // namespace
}  // namespace mpps
