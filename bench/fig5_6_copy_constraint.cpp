// Figure 5-6: Tourney speedups with copy-and-constraint applied to the
// cross-product production (8 copies).  The transformation re-introduces
// hash discrimination — tokens belong to different production copies,
// hence different node ids, hence different buckets.  Expected shape:
// a clear but moderate improvement (the paper notes the baseline was
// somewhat overestimated, so its published gain looks small).
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/core/xform.hpp"
#include "src/trace/synth.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  print_banner(std::cout,
               "Figure 5-6: Tourney speedups with copy-and-constraint");
  const trace::Trace before = trace::make_tourney_section();
  // The culprit production spans both non-discriminating nodes of the
  // cross-product cycle; splitting the production splits both.
  const trace::Trace after = core::copy_constrain_node(
      core::copy_constrain_node(before, trace::tourney_cross_node(), 8),
      trace::tourney_cross_local_node(), 8);

  TextTable table({"processors", "tourney", "tourney+copy&constraint"});
  for (std::uint32_t p : bench::sweep_procs()) {
    const auto config = bench::config_for(p, 0);
    table.row()
        .cell(static_cast<long>(p))
        .cell(bench::speedup_vs(before, before, config), 2)
        .cell(bench::speedup_vs(before, after, config), 2);
  }
  bench::emit_table(table, argc, argv, std::cout);

  // Concentration at the cross-product production's nodes: before the
  // transformation they share ONE bucket; after it they spread over the
  // copies' buckets.
  auto node_bucket_max = [](const trace::Trace& t, std::uint32_t min_node) {
    std::vector<std::uint64_t> per_bucket(t.num_buckets, 0);
    for (const auto& act : t.cycles[2].activations) {
      const std::uint32_t n = act.node.value();
      const bool at_cross =
          n == trace::tourney_cross_node().value() ||
          n == trace::tourney_cross_local_node().value() || n >= min_node;
      if (at_cross) ++per_bucket[act.bucket];
    }
    std::uint64_t max = 0;
    for (auto a : per_bucket) max = std::max(max, a);
    return max;
  };
  std::uint32_t max_node = 0;
  for (const auto& cycle : before.cycles) {
    for (const auto& act : cycle.activations) {
      max_node = std::max(max_node, act.node.value());
    }
  }
  std::cout << "\nCross-product production, hottest bucket in the heavy "
               "cycle:\n  "
            << node_bucket_max(before, 0xFFFFFFFF) << " activations -> "
            << node_bucket_max(after, max_node + 1) << " activations ("
            << "remaining concentration sits at downstream nodes the\n"
               "  transformation does not target — the paper's point that\n"
               "  even distribution cannot remove all precedence/bucket\n"
               "  constraints).\n";
  return 0;
}
