// Shared helpers for the paper-reproduction bench binaries.  The run-loop
// and reporting helpers live in src/obs/bench.hpp (the observability
// layer) so that benches, tools and tests share one implementation; this
// header keeps the historical mpps::bench names as aliases.
#pragma once

#include "src/core/experiments.hpp"  // core::standard_sections for benches
#include "src/obs/bench.hpp"

namespace mpps::bench {

using obs::config_for;
using obs::emit_table;
using obs::InstrumentedRun;
using obs::run_instrumented;
using obs::speedup_vs;
using obs::sweep_procs;

}  // namespace mpps::bench
