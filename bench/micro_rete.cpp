// Micro-benchmarks for the Rete substrate, including the ablation behind
// the paper's Section 3.1 claim that hashed memories cut token comparisons
// by up to ~10x versus linear memories (here: 256 buckets vs a single
// bucket, which degenerates to a linear scan of each node's memory).
#include <benchmark/benchmark.h>

#include <string>

#include "src/ops5/parser.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/memory.hpp"
#include "src/rete/network.hpp"

namespace {

using namespace mpps;

const char* kJoinProgram = R"(
  (p pair (a ^v <x>) (b ^v <x>) --> (halt)))";

void drive_engine(rete::Engine& engine, int n) {
  ops5::WorkingMemory wm;
  for (int i = 0; i < n; ++i) {
    wm.add(ops5::parse_wme("(a ^v k" + std::to_string(i) + ")"));
    wm.add(ops5::parse_wme("(b ^v k" + std::to_string(i) + ")"));
  }
  for (const auto& change : wm.drain_changes()) {
    engine.process_change(change);
  }
}

void BM_EngineHashedMemories(benchmark::State& state) {
  const auto program = ops5::parse_program(kJoinProgram);
  const auto net = rete::Network::compile(program);
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rete::EngineOptions opts;
    opts.num_buckets = 256;
    rete::Engine engine(net, opts);
    drive_engine(engine, n);
    benchmark::DoNotOptimize(engine.conflict_set().size());
    state.counters["entries_scanned"] = static_cast<double>(
        engine.left_memory().entries_scanned() +
        engine.right_memory().entries_scanned());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_EngineHashedMemories)->Arg(256)->Arg(2048);

void BM_EngineLinearMemories(benchmark::State& state) {
  // One bucket per side: every lookup scans the node's whole memory — the
  // pre-hashing Rete behaviour the paper's hash tables replace.
  const auto program = ops5::parse_program(kJoinProgram);
  const auto net = rete::Network::compile(program);
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rete::EngineOptions opts;
    opts.num_buckets = 1;
    rete::Engine engine(net, opts);
    drive_engine(engine, n);
    benchmark::DoNotOptimize(engine.conflict_set().size());
    state.counters["entries_scanned"] = static_cast<double>(
        engine.left_memory().entries_scanned() +
        engine.right_memory().entries_scanned());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_EngineLinearMemories)->Arg(256)->Arg(2048);

void BM_HashedMemoryInsertErase(benchmark::State& state) {
  rete::HashedMemory memory(256);
  std::vector<ops5::Value> key{ops5::Value(7L)};
  std::uint64_t i = 0;
  for (auto _ : state) {
    rete::Token t{{WmeId{i}, WmeId{i + 1}}};
    memory.insert(NodeId{3}, t, key);
    benchmark::DoNotOptimize(memory.find(NodeId{3}, key));
    memory.erase(NodeId{3}, t, key);
    ++i;
  }
}
BENCHMARK(BM_HashedMemoryInsertErase);

void BM_NetworkCompile(benchmark::State& state) {
  // A production system with shared prefixes — compile cost matters for
  // large rule bases.
  std::string source;
  for (int i = 0; i < 32; ++i) {
    source += "(p rule" + std::to_string(i) +
              " (a ^v <x>) (b ^v <x>) (c ^k " + std::to_string(i) +
              ") --> (halt))\n";
  }
  const auto program = ops5::parse_program(source);
  for (auto _ : state) {
    auto net = rete::Network::compile(program);
    benchmark::DoNotOptimize(net.betas().size());
  }
}
BENCHMARK(BM_NetworkCompile);

void BM_ParseProgram(benchmark::State& state) {
  std::string source;
  for (int i = 0; i < 16; ++i) {
    source += "(p rule" + std::to_string(i) +
              " (a ^v <x> ^w { > 2 <= 9 }) -(b ^v <x>) "
              "(c ^k << k1 k2 k3 >>) --> (make d ^v <x>) (remove 1))\n";
  }
  for (auto _ : state) {
    auto program = ops5::parse_program(source);
    benchmark::DoNotOptimize(program.productions.size());
  }
}
BENCHMARK(BM_ParseProgram);

}  // namespace
