// Section 5's methodological point: "concentrating on small sections
// allowed us to analyze the behavior of the production systems at a finer
// intra-cycle level."  This harness prints the per-cycle picture the
// aggregate speedup figures hide: per-cycle spans, per-cycle speedups and
// processor idle time — including §5.2.2's observation that "the average
// idle time of the processors increases with increasing number of
// processors".
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/obs/summary.hpp"

int main() {
  using namespace mpps;
  const auto sections = core::standard_sections();

  print_banner(std::cout, "Per-cycle spans and speedups (16 processors, zero overhead)");
  for (const auto& section : sections) {
    // Serial per-cycle spans.
    sim::SimConfig serial;
    serial.match_processors = 1;
    serial.costs = sim::CostModel::zero_overhead();
    const auto base = sim::simulate(
        section.trace, serial,
        sim::Assignment::round_robin(section.trace.num_buckets, 1));
    sim::SimConfig parallel = bench::config_for(16, 0);
    const auto result = sim::simulate(
        section.trace, parallel,
        sim::Assignment::round_robin(section.trace.num_buckets, 16));

    TextTable table({"cycle", "activations", "serial span (us)",
                     "16-proc span (us)", "cycle speedup"});
    for (std::size_t c = 0; c < section.trace.cycles.size(); ++c) {
      const double serial_span = base.cycles[c].span().micros();
      const double par_span = result.cycles[c].span().micros();
      table.row()
          .cell(static_cast<long>(c + 1))
          .cell(static_cast<unsigned long>(
              section.trace.cycles[c].activations.size()))
          .cell(serial_span, 1)
          .cell(par_span, 1)
          .cell(par_span > 0 ? serial_span / par_span : 0.0, 2);
    }
    std::cout << "\n" << section.label << ":\n";
    table.print(std::cout);
  }

  print_banner(std::cout,
               "Average processor utilization vs processor count "
               "(idle time grows with processors, Section 5.2.2)");
  TextTable util({"processors", "Rubik util %", "Tourney util %",
                  "Weaver util %"});
  for (std::uint32_t p : {2u, 4u, 8u, 16u, 32u, 64u}) {
    util.row().cell(static_cast<long>(p));
    for (const auto& section : sections) {
      // Utilization via the observability layer's run summary rather than
      // a hand-rolled aggregate over SimResult.
      const auto run =
          obs::run_instrumented(section.trace, bench::config_for(p, 0));
      const auto summary = obs::summarize_run(section.trace, run.result);
      util.cell(summary.avg_processor_utilization_pct, 1);
    }
  }
  util.print(std::cout);
  std::cout << "\nFalling utilization == rising idle time: with more\n"
               "processors the active buckets distribute less evenly and\n"
               "the precedence constraints bite harder.\n";
  return 0;
}
