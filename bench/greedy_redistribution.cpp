// Section 5.2.2 (text): the offline greedy bucket distribution — given the
// per-cycle bucket activity, which a real runtime would not have — improved
// speedups by a factor of ~1.4 over round-robin, while a random
// redistribution failed to provide a significant improvement.
//
// The (section x processors x assignment-policy) grid runs through the
// sweep engine (--jobs N); the load-imbalance analysis below it is not a
// simulation and stays serial.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  print_banner(std::cout,
               "Greedy offline bucket redistribution (Section 5.2.2)");
  const auto sections = core::standard_sections();
  const std::vector<std::uint32_t> procs = {4u, 8u, 16u, 32u};

  std::vector<core::SweepScenario> scenarios;
  for (const auto& section : sections) {
    for (std::uint32_t p : procs) {
      const auto config = bench::config_for(p, 0);
      for (const char* policy : {"rr", "random", "greedy"}) {
        core::SweepScenario scenario;
        scenario.label = section.label + "/p" + std::to_string(p) + "/" +
                         policy;
        scenario.trace = &section.trace;
        scenario.config = config;
        scenario.assignment =
            policy == std::string("rr")
                ? sim::Assignment::round_robin(section.trace.num_buckets, p)
            : policy == std::string("random")
                ? sim::Assignment::random(section.trace.num_buckets, p, 1989)
                : core::greedy_assignment(section.trace, p, config.costs);
        scenarios.push_back(std::move(scenario));
      }
    }
  }
  const std::vector<core::SweepOutcome> outcomes =
      core::run_sweep(scenarios, obs::jobs_arg(argc, argv));

  std::size_t index = 0;
  for (const auto& section : sections) {
    TextTable table({"processors", "round-robin", "random", "greedy (offline)",
                     "greedy/round-robin"});
    for (std::uint32_t p : procs) {
      const double rr = outcomes[index++].speedup;
      const double random = outcomes[index++].speedup;
      const double greedy = outcomes[index++].speedup;
      table.row()
          .cell(static_cast<long>(p))
          .cell(rr, 2)
          .cell(random, 2)
          .cell(greedy, 2)
          .cell(greedy / rr, 2);
    }
    std::cout << "\n" << section.label << ":\n";
    table.print(std::cout);
  }

  std::cout << "\nPer-cycle load imbalance (max/mean processor load) on "
               "Rubik, 16 processors:\n";
  const auto& rubik = sections[0].trace;
  const auto costs = sim::CostModel::zero_overhead();
  TextTable imb({"cycle", "round-robin", "random", "greedy"});
  const auto rr16 = sim::Assignment::round_robin(rubik.num_buckets, 16);
  const auto rnd16 = sim::Assignment::random(rubik.num_buckets, 16, 1989);
  const auto gr16 = core::greedy_assignment(rubik, 16, costs);
  for (std::size_t c = 0; c < rubik.cycles.size(); ++c) {
    imb.row()
        .cell(static_cast<long>(c + 1))
        .cell(core::load_imbalance(rubik, c, rr16, costs), 2)
        .cell(core::load_imbalance(rubik, c, rnd16, costs), 2)
        .cell(core::load_imbalance(rubik, c, gr16, costs), 2);
  }
  imb.print(std::cout);
  return 0;
}
