// Section 5.2.2 (text): the offline greedy bucket distribution — given the
// per-cycle bucket activity, which a real runtime would not have — improved
// speedups by a factor of ~1.4 over round-robin, while a random
// redistribution failed to provide a significant improvement.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"

int main() {
  using namespace mpps;
  print_banner(std::cout,
               "Greedy offline bucket redistribution (Section 5.2.2)");
  for (const auto& section : core::standard_sections()) {
    TextTable table({"processors", "round-robin", "random", "greedy (offline)",
                     "greedy/round-robin"});
    for (std::uint32_t p : {4u, 8u, 16u, 32u}) {
      const auto config = bench::config_for(p, 0);
      const double rr = sim::speedup(
          section.trace, config,
          sim::Assignment::round_robin(section.trace.num_buckets, p));
      const double random = sim::speedup(
          section.trace, config,
          sim::Assignment::random(section.trace.num_buckets, p, 1989));
      const double greedy = sim::speedup(
          section.trace, config,
          core::greedy_assignment(section.trace, p, config.costs));
      table.row()
          .cell(static_cast<long>(p))
          .cell(rr, 2)
          .cell(random, 2)
          .cell(greedy, 2)
          .cell(greedy / rr, 2);
    }
    std::cout << "\n" << section.label << ":\n";
    table.print(std::cout);
  }
  std::cout << "\nPer-cycle load imbalance (max/mean processor load) on "
               "Rubik, 16 processors:\n";
  const auto sections = core::standard_sections();
  const auto& rubik = sections[0].trace;
  const auto costs = sim::CostModel::zero_overhead();
  TextTable imb({"cycle", "round-robin", "random", "greedy"});
  const auto rr16 = sim::Assignment::round_robin(rubik.num_buckets, 16);
  const auto rnd16 = sim::Assignment::random(rubik.num_buckets, 16, 1989);
  const auto gr16 = core::greedy_assignment(rubik, 16, costs);
  for (std::size_t c = 0; c < rubik.cycles.size(); ++c) {
    imb.row()
        .cell(static_cast<long>(c + 1))
        .cell(core::load_imbalance(rubik, c, rr16, costs), 2)
        .cell(core::load_imbalance(rubik, c, rnd16, costs), 2)
        .cell(core::load_imbalance(rubik, c, gr16, costs), 2);
  }
  imb.print(std::cout);
  return 0;
}
