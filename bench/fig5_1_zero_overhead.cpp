// Figure 5-1: speedups for the three characteristic sections with zero
// interconnection-network latency and zero message-processing overhead,
// buckets dealt round-robin.  Expected shape: Rubik has the largest
// overall speedup; Tourney flattens early (cross-product concentration);
// Weaver is limited by its small cycles.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  print_banner(std::cout, "Figure 5-1: speedups with zero message-passing overheads");
  const auto sections = core::standard_sections();
  TextTable table({"processors", "Rubik", "Tourney", "Weaver"});
  for (std::uint32_t p : bench::sweep_procs()) {
    table.row().cell(static_cast<long>(p));
    for (const auto& [order, label] :
         std::vector<std::pair<int, const char*>>{{0, "Rubik"},
                                                  {1, "Tourney"},
                                                  {2, "Weaver"}}) {
      table.cell(bench::speedup_vs(sections[static_cast<std::size_t>(order)].trace,
                                   sections[static_cast<std::size_t>(order)].trace,
                                   bench::config_for(p, 0)),
                 2);
    }
  }
  bench::emit_table(table, argc, argv, std::cout);
  std::cout << "\nBase case: one match processor, zero communication "
               "overheads (speedup 1.00 by construction).\n";
  return 0;
}
