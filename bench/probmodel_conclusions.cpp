// Section 5.2.2 (text): the probabilistic model of active-bucket
// distribution and its three conclusions:
//   1. P(completely even) and P(totally uneven) are both very low (<1%).
//   2. More active buckets (same total) → more even distributions.
//   3. More processors → uneven distributions more likely; the speedup the
//      distribution permits falls further below linear.
#include <iostream>

#include "src/common/table.hpp"
#include "src/core/probmodel.hpp"

int main() {
  using namespace mpps;
  using core::BucketPlacement;
  constexpr std::uint32_t kTrials = 100000;

  print_banner(std::cout,
               "Conclusion 1: extreme distributions are rare "
               "(256 buckets, 25% active, 16 processors)");
  {
    const auto r = core::probmodel_monte_carlo(
        256, 0.25, 16, BucketPlacement::IndependentUniform, kTrials, 1);
    TextTable t({"P(completely even)", "P(totally uneven)",
                 "E[max load]", "permitted speedup"});
    t.row().cell(r.p_even, 4).cell(r.p_totally_uneven, 4)
        .cell(r.expected_max_load, 2).cell(r.expected_speedup, 2);
    t.print(std::cout);
  }

  print_banner(std::cout,
               "Conclusion 2: larger active fraction -> more even "
               "(256 buckets, 16 processors)");
  {
    TextTable t({"active fraction", "P(even)", "E[max]/mean",
                 "permitted speedup"});
    for (double f : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95}) {
      const auto r = core::probmodel_monte_carlo(
          256, f, 16, BucketPlacement::IndependentUniform, kTrials, 2);
      const double mean = f * 256.0 / 16.0;
      t.row().cell(f, 2).cell(r.p_even, 4)
          .cell(r.expected_max_load / mean, 3).cell(r.expected_speedup, 2);
    }
    t.print(std::cout);
    std::cout << "(right buckets: large active fraction -> distribute well;\n"
                 " left buckets: small active fraction -> distribute badly)\n";
  }

  print_banner(std::cout,
               "Conclusion 3: more processors -> more uneven "
               "(256 buckets, 40% active)");
  {
    TextTable t({"processors", "P(even)", "permitted speedup",
                 "efficiency (speedup/P)"});
    for (std::uint32_t procs : {2u, 4u, 8u, 16u, 32u, 64u}) {
      const auto r = core::probmodel_monte_carlo(
          256, 0.4, procs, BucketPlacement::IndependentUniform, kTrials, 3);
      t.row().cell(static_cast<long>(procs)).cell(r.p_even, 4)
          .cell(r.expected_speedup, 2)
          .cell(r.expected_speedup / procs, 3);
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "Exact vs Monte-Carlo cross-check (24 active, 4 processors)");
  {
    const auto exact = core::probmodel_exact(24, 4);
    const auto mc = core::probmodel_monte_carlo(
        1024, 24.0 / 1024.0, 4, BucketPlacement::IndependentUniform, kTrials,
        4);
    TextTable t({"method", "P(even)", "E[max load]"});
    t.row().cell("exact (multinomial DP)").cell(exact.p_even, 4)
        .cell(exact.expected_max_load, 3);
    t.row().cell("monte-carlo").cell(mc.p_even, 4)
        .cell(mc.expected_max_load, 3);
    t.print(std::cout);
  }
  return 0;
}
