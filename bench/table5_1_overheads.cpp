// Table 5-1: the send/receive message-processing overhead settings used in
// the overhead sweeps (wire latency fixed at 0.5 us, the Nectar value).
#include <iostream>

#include "src/common/table.hpp"
#include "src/sim/costs.hpp"

int main() {
  using namespace mpps;
  print_banner(std::cout,
               "Table 5-1: message-processing overheads (send + receive)");
  TextTable table({"Runs", "Send overhead (us)", "Receive overhead (us)",
                   "Total overhead (us)", "Wire latency (us)"});
  for (int run = 1; run <= 4; ++run) {
    const sim::CostModel m = sim::CostModel::paper_run(run);
    table.row()
        .cell(std::string("Run ") + std::to_string(run))
        .cell(m.send_overhead.micros(), 0)
        .cell(m.recv_overhead.micros(), 0)
        .cell((m.send_overhead + m.recv_overhead).micros(), 0)
        .cell(m.wire_latency.micros(), 1);
  }
  table.print(std::cout);
  std::cout << "\nNode-activation cost model (Section 4):\n"
            << "  constant-test evaluation per cycle : 30 us\n"
            << "  add/delete one left token          : 32 us\n"
            << "  add/delete one right token         : 16 us\n"
            << "  per successor token generated      : 16 us\n";
  return 0;
}
