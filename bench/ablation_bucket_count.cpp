// How many hash buckets should the global tables have?  The paper fixes a
// table and partitions its index range; this ablation varies the bucket
// count for a REAL traced program (the Manners-style seater, so bucket
// structure comes from actual rule joins).  Too few buckets ⇒ distinct
// keys collide into the same index and serialize on one processor; beyond
// a point, more buckets stop helping because genuine same-key collisions
// (and precedence) remain.
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/sweep.hpp"
#include "src/obs/bench.hpp"

namespace {

std::string seater_source(int guests) {
  std::string source = R"(
    (p seat-first-guest
      (context ^state start)
      (guest ^name <g>)
      -->
      (make seated ^name <g> ^seat 1)
      (make last ^name <g> ^seat 1)
      (modify 1 ^state assign))
    (p seat-next-guest
      (context ^state assign)
      (last ^name <n1> ^seat <s>)
      (guest ^name <n1> ^sex <sx> ^hobby <h>)
      (guest ^name { <n2> <> <n1> } ^sex <> <sx> ^hobby <h>)
      -(seated ^name <n2>)
      -->
      (make seated ^name <n2> ^seat (compute <s> + 1))
      (modify 2 ^name <n2> ^seat (compute <s> + 1)))
    (p everyone-seated
      (context ^state assign)
      (party ^guests <n>)
      (last ^seat <n>)
      -->
      (halt)))";
  source += "\n(make context ^state start)\n";
  source += "(make party ^guests " + std::to_string(guests) + ")\n";
  for (int i = 0; i < guests; ++i) {
    const char* sex = i % 2 == 0 ? "m" : "f";
    for (int h : {0, 1 + i % 3, 1 + (i + 1) % 3}) {
      source += "(make guest ^name g" + std::to_string(i) + " ^sex " + sex +
                " ^hobby h" + std::to_string(h) + ")\n";
    }
  }
  return source;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpps;
  print_banner(std::cout,
               "Bucket-count sensitivity (Manners seater, 24 guests, 16 "
               "processors, run 2)");
  // Re-recording the trace at each bucket count is serial (one interpreter
  // run apiece); the simulations then fan out across worker threads.
  const std::vector<std::uint32_t> bucket_counts = {4u, 16u, 64u, 256u,
                                                    1024u};
  std::vector<core::PipelineResult> piped;
  for (std::uint32_t buckets : bucket_counts) {
    core::PipelineOptions options;
    options.interpreter.engine.num_buckets = buckets;
    piped.push_back(core::record_trace_from_source(seater_source(24),
                                                   "seater", options));
  }
  std::vector<core::SweepScenario> scenarios;
  for (const auto& p : piped) {
    core::SweepScenario scenario;
    scenario.label =
        "seater/b" + std::to_string(p.trace.num_buckets);
    scenario.trace = &p.trace;
    scenario.config.match_processors = 16;
    scenario.config.costs = sim::CostModel::paper_run(2);
    scenario.assignment =
        sim::Assignment::round_robin(p.trace.num_buckets, 16);
    scenarios.push_back(std::move(scenario));
  }
  const auto outcomes =
      core::run_sweep(scenarios, obs::jobs_arg(argc, argv));
  TextTable table({"buckets", "activations", "speedup @16 procs"});
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    table.row()
        .cell(static_cast<long>(bucket_counts[i]))
        .cell(static_cast<unsigned long>(piped[i].trace.total_activations()))
        .cell(outcomes[i].speedup, 2);
  }
  table.print(std::cout);
  std::cout << "\nFew buckets serialize unrelated keys on shared indices;\n"
               "the curve saturates once genuine key collisions dominate.\n";
  return 0;
}
