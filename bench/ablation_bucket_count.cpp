// How many hash buckets should the global tables have?  The paper fixes a
// table and partitions its index range; this ablation varies the bucket
// count for a REAL traced program (the Manners-style seater, so bucket
// structure comes from actual rule joins).  Too few buckets ⇒ distinct
// keys collide into the same index and serialize on one processor; beyond
// a point, more buckets stop helping because genuine same-key collisions
// (and precedence) remain.
#include <iostream>
#include <string>

#include "src/common/table.hpp"
#include "src/core/pipeline.hpp"

namespace {

std::string seater_source(int guests) {
  std::string source = R"(
    (p seat-first-guest
      (context ^state start)
      (guest ^name <g>)
      -->
      (make seated ^name <g> ^seat 1)
      (make last ^name <g> ^seat 1)
      (modify 1 ^state assign))
    (p seat-next-guest
      (context ^state assign)
      (last ^name <n1> ^seat <s>)
      (guest ^name <n1> ^sex <sx> ^hobby <h>)
      (guest ^name { <n2> <> <n1> } ^sex <> <sx> ^hobby <h>)
      -(seated ^name <n2>)
      -->
      (make seated ^name <n2> ^seat (compute <s> + 1))
      (modify 2 ^name <n2> ^seat (compute <s> + 1)))
    (p everyone-seated
      (context ^state assign)
      (party ^guests <n>)
      (last ^seat <n>)
      -->
      (halt)))";
  source += "\n(make context ^state start)\n";
  source += "(make party ^guests " + std::to_string(guests) + ")\n";
  for (int i = 0; i < guests; ++i) {
    const char* sex = i % 2 == 0 ? "m" : "f";
    for (int h : {0, 1 + i % 3, 1 + (i + 1) % 3}) {
      source += "(make guest ^name g" + std::to_string(i) + " ^sex " + sex +
                " ^hobby h" + std::to_string(h) + ")\n";
    }
  }
  return source;
}

}  // namespace

int main() {
  using namespace mpps;
  print_banner(std::cout,
               "Bucket-count sensitivity (Manners seater, 24 guests, 16 "
               "processors, run 2)");
  TextTable table({"buckets", "activations", "speedup @16 procs"});
  for (std::uint32_t buckets : {4u, 16u, 64u, 256u, 1024u}) {
    core::PipelineOptions options;
    options.interpreter.engine.num_buckets = buckets;
    const core::PipelineResult piped = core::record_trace_from_source(
        seater_source(24), "seater", options);
    sim::SimConfig config;
    config.match_processors = 16;
    config.costs = sim::CostModel::paper_run(2);
    const double s = sim::speedup(
        piped.trace, config,
        sim::Assignment::round_robin(piped.trace.num_buckets, 16));
    table.row()
        .cell(static_cast<long>(buckets))
        .cell(static_cast<unsigned long>(piped.trace.total_activations()))
        .cell(s, 2);
  }
  table.print(std::cout);
  std::cout << "\nFew buckets serialize unrelated keys on shared indices;\n"
               "the curve saturates once genuine key collisions dominate.\n";
  return 0;
}
