// Table 5-2: left/right/total activation counts in the three sections.
// The synthetic sections reproduce the published counts exactly:
//   Rubik   2388 (28%) / 6114 (72%) / 8502
//   Tourney 10667 (99%) / 83 (1%) / 10750
//   Weaver  338 (81%) / 78 (19%) / 416
#include <cstdio>
#include <iostream>

#include "src/common/table.hpp"
#include "src/core/experiments.hpp"

int main() {
  using namespace mpps;
  print_banner(std::cout, "Table 5-2: tokens in the sections of the three programs");
  TextTable table({"Program", "Left activations", "Right activations",
                   "Total activations"});
  for (const auto& section : core::standard_sections()) {
    const trace::TraceStats s = trace::compute_stats(section.trace);
    char left[64];
    char right[64];
    std::snprintf(left, sizeof left, "%llu (%.0f%%)",
                  static_cast<unsigned long long>(s.left), s.left_pct());
    std::snprintf(right, sizeof right, "%llu (%.0f%%)",
                  static_cast<unsigned long long>(s.right),
                  100.0 - s.left_pct());
    table.row()
        .cell(section.label)
        .cell(left)
        .cell(right)
        .cell(static_cast<unsigned long>(s.total()));
  }
  table.print(std::cout);
  return 0;
}
