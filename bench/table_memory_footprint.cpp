// Section 3.1's memory arithmetic: in-line OPS83-style expansion needs
// 1-2 MB for ~1000-production systems, far beyond a message-passing
// node's 10-20 KB local memory; the paper's remedies are the packed
// 14-byte two-input-node encoding plus partitioning the nodes across
// processors (same-production nodes in different partitions).
#include <iostream>
#include <string>

#include "src/common/table.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/footprint.hpp"

namespace {

mpps::rete::Network synthetic_rule_base(int productions) {
  std::string source;
  for (int i = 0; i < productions; ++i) {
    const std::string id = std::to_string(i);
    source += "(p rule" + id + " (a" + id + " ^v <x>) (b" + id +
              " ^v <x> ^w <y>) (c" + id + " ^w <y>) (d" + id +
              " ^v <x>) --> (halt))\n";
  }
  return mpps::rete::Network::compile(mpps::ops5::parse_program(source));
}

}  // namespace

int main() {
  using namespace mpps;
  using rete::NodeEncoding;

  print_banner(std::cout,
               "Static memory footprint: in-line expansion vs the 14-byte "
               "node encoding");
  TextTable table({"productions", "two-input nodes", "inline (KB)",
                   "packed (KB)", "ratio"});
  for (int n : {100, 250, 500, 1000}) {
    const auto net = synthetic_rule_base(n);
    const auto inline_fp =
        rete::estimate_footprint(net, NodeEncoding::InlineExpanded);
    const auto packed_fp =
        rete::estimate_footprint(net, NodeEncoding::Packed14Byte);
    table.row()
        .cell(static_cast<long>(n))
        .cell(static_cast<unsigned long>(net.betas().size()))
        .cell(static_cast<double>(inline_fp.total()) / 1024.0, 1)
        .cell(static_cast<double>(packed_fp.total()) / 1024.0, 1)
        .cell(static_cast<double>(inline_fp.total()) /
                  static_cast<double>(packed_fp.total()),
              1);
  }
  table.print(std::cout);

  print_banner(std::cout,
               "Partitioned packed nodes vs a 10-20 KB local memory "
               "(1000 productions)");
  const auto net = synthetic_rule_base(1000);
  TextTable part({"partitions", "max partition (KB)",
                  "max same-production nodes per partition"});
  for (std::uint32_t k : {32u, 64u, 128u, 256u}) {
    const auto partition = rete::partition_nodes(net, k);
    std::size_t max_bytes = 0;
    for (std::size_t bytes : rete::partition_footprints(net, partition)) {
      max_bytes = std::max(max_bytes, bytes);
    }
    part.row()
        .cell(static_cast<long>(k))
        .cell(static_cast<double>(max_bytes) / 1024.0, 1)
        .cell(static_cast<unsigned long>(
            rete::max_production_collisions(net, partition)));
  }
  part.print(std::cout);
  std::cout << "\nWith >= 3 partitions, no two nodes of one production\n"
               "share a store (the paper's contention-avoidance rule), and\n"
               "every partition fits comfortably in 10-20 KB.\n";
  return 0;
}
