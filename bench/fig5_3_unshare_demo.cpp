// Figure 5-3: the unsharing transformation.  The paper's figure is a
// network diagram; this harness demonstrates the transformation at both
// levels:
//   1. Network level: compiling two productions with a common CE prefix
//      with and without beta-node sharing.
//   2. Trace level: splitting the Weaver bottleneck node per output.
#include <iostream>

#include "src/common/table.hpp"
#include "src/core/xform.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/network.hpp"
#include "src/trace/synth.hpp"

int main() {
  using namespace mpps;
  print_banner(std::cout, "Figure 5-3: unsharing Rete network nodes");

  // The paper's example: outputs O1 and O2 share the two-input node
  // joining conditions I1 and I2.
  const char* source = R"(
    (p o1 (i1 ^v <x>) (i2 ^v <x>) (o ^kind 1) --> (halt))
    (p o2 (i1 ^v <x>) (i2 ^v <x>) (o ^kind 2) --> (halt)))";
  const auto program = ops5::parse_program(source);

  rete::CompileOptions shared;
  rete::CompileOptions unshared;
  unshared.share_beta_nodes = false;

  const auto net_shared = rete::Network::compile(program, shared);
  const auto net_unshared = rete::Network::compile(program, unshared);

  TextTable table({"network", "two-input nodes", "nodes with >1 output"});
  table.row()
      .cell("shared (Rete default)")
      .cell(static_cast<unsigned long>(net_shared.betas().size()))
      .cell(static_cast<unsigned long>(net_shared.shared_beta_count()));
  table.row()
      .cell("unshared")
      .cell(static_cast<unsigned long>(net_unshared.betas().size()))
      .cell(static_cast<unsigned long>(net_unshared.shared_beta_count()));
  table.print(std::cout);

  print_banner(std::cout, "Trace level: Weaver bottleneck split per output");
  const trace::Trace before = trace::make_weaver_section();
  const trace::Trace after =
      core::unshare_node(before, trace::weaver_bottleneck_node());
  auto max_succ = [](const trace::Trace& t) {
    std::uint32_t m = 0;
    for (const auto& cycle : t.cycles) {
      for (const auto& act : cycle.activations) {
        m = std::max(m, act.successors);
      }
    }
    return m;
  };
  TextTable t2({"trace", "activations", "max successors per activation"});
  t2.row()
      .cell("weaver")
      .cell(static_cast<unsigned long>(before.total_activations()))
      .cell(static_cast<unsigned long>(max_succ(before)));
  t2.row()
      .cell("weaver+unshare")
      .cell(static_cast<unsigned long>(after.total_activations()))
      .cell(static_cast<unsigned long>(max_succ(after)));
  t2.print(std::cout);
  std::cout << "\nThe duplicated work (extra activations) buys parallel\n"
               "successor generation: the 40-successor site becomes four\n"
               "10-successor sites in different hash buckets.\n";
  return 0;
}
