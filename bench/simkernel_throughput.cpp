// Simulator-kernel throughput: how many trace activations and discrete
// kernel events per second `sim::simulate` sustains on the three
// paper-shaped synthetic workloads (Rubik / Tourney / Weaver sections,
// tiled to a benchable size) at {1, 8, 32} match processors under the
// Table 5-1 Run 2 cost model.  Writes BENCH_simkernel.json so successive
// PRs leave a tracked perf trajectory (docs/SIMULATOR.md explains how to
// read it).
//
// Usage:
//   simkernel_throughput [--smoke] [-o FILE]
//
// `--smoke` is the CI bit-rot guard: a tiny trace, 2 timed iterations per
// configuration — seconds, not minutes — still exercising every code path
// and emitting the same JSON schema (scripts/ci.sh runs it on every
// build and keeps the JSON as the run artifact).
//
// Methodology: each (workload, procs) pair is warmed once, then timed
// over enough iterations to pass a minimum wall-clock budget, and the
// simulated results of every iteration are required to be identical (the
// kernel is deterministic; a flaky reading here is a bug, not noise).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/assignment.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"
#include "src/trace/synth.hpp"

namespace {

using mpps::SimTime;

/// Concatenates `copies` repetitions of the trace's cycle list.  Cycles
/// are structurally self-contained, so the tiled trace is valid; it keeps
/// the section's shape (bucket skew, fanout, left/right mix) while giving
/// the timer enough work to measure.
mpps::trace::Trace tile(const mpps::trace::Trace& section,
                        std::size_t copies) {
  mpps::trace::Trace out;
  out.name = section.name + "-x" + std::to_string(copies);
  out.num_buckets = section.num_buckets;
  out.cycles.reserve(section.cycles.size() * copies);
  for (std::size_t i = 0; i < copies; ++i) {
    out.cycles.insert(out.cycles.end(), section.cycles.begin(),
                      section.cycles.end());
  }
  return out;
}

struct Measurement {
  std::string workload;
  std::uint32_t procs = 0;
  std::uint64_t iterations = 0;
  std::uint64_t activations = 0;   // per simulated run
  std::uint64_t events = 0;        // per simulated run (SimResult::events)
  double wall_ms = 0.0;
  double activations_per_sec = 0.0;
  double events_per_sec = 0.0;
};

Measurement measure(const std::string& name, const mpps::trace::Trace& trace,
                    std::uint32_t procs, bool smoke) {
  namespace sim = mpps::sim;
  sim::SimConfig config;
  config.match_processors = procs;
  config.costs = sim::CostModel::paper_run(2);
  const sim::Assignment assignment =
      sim::Assignment::round_robin(trace.num_buckets, config.partitions());

  const sim::SimResult first = sim::simulate(trace, config, assignment);

  Measurement m;
  m.workload = name;
  m.procs = procs;
  m.activations = trace.total_activations();
  m.events = first.events;

  const double min_budget_ms = smoke ? 0.0 : 300.0;
  std::uint64_t iterations = smoke ? 2 : 4;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
      const sim::SimResult result = sim::simulate(trace, config, assignment);
      if (result.makespan != first.makespan ||
          result.events != first.events) {
        std::cerr << "non-deterministic kernel result on " << name << " at "
                  << procs << " procs\n";
        std::exit(1);
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    m.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    m.iterations = iterations;
    if (m.wall_ms >= min_budget_ms || smoke) break;
    iterations *= 2;
  }

  const double secs = m.wall_ms / 1000.0;
  m.activations_per_sec =
      static_cast<double>(m.activations * m.iterations) / secs;
  m.events_per_sec = static_cast<double>(m.events * m.iterations) / secs;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_simkernel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: simkernel_throughput [--smoke] [-o FILE]\n";
      return 2;
    }
  }

  using mpps::trace::Trace;
  const std::size_t copies = smoke ? 1 : 16;
  const std::vector<std::pair<std::string, Trace>> workloads = {
      {"rubik", tile(mpps::trace::make_rubik_section(256, 1), copies)},
      {"tourney", tile(mpps::trace::make_tourney_section(256, 1),
                       smoke ? 1 : copies / 4)},
      {"weaver", tile(mpps::trace::make_weaver_section(256, 1),
                      smoke ? 1 : copies * 8)},
  };
  const std::vector<std::uint32_t> proc_counts = {1, 8, 32};

  std::vector<Measurement> measurements;
  for (const auto& [name, trace] : workloads) {
    for (const std::uint32_t procs : proc_counts) {
      Measurement m = measure(name, trace, procs, smoke);
      std::cout << m.workload << " @ " << m.procs << " procs: "
                << static_cast<std::uint64_t>(m.events_per_sec)
                << " events/s, "
                << static_cast<std::uint64_t>(m.activations_per_sec)
                << " activations/s (" << m.iterations << " iters, "
                << m.wall_ms << " ms)\n";
      measurements.push_back(std::move(m));
    }
  }

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "cannot write '" << out_path << "'\n";
    return 1;
  }
  file << "{\n"
       << "  \"benchmark\": \"simkernel_throughput\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"cost_model\": \"table5_1_run2\",\n"
       << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    file << "    {\"name\": \"" << m.workload << "\", \"procs\": " << m.procs
         << ", \"iterations\": " << m.iterations
         << ", \"activations\": " << m.activations
         << ", \"events\": " << m.events << ", \"wall_ms\": " << m.wall_ms
         << ", \"activations_per_sec\": " << m.activations_per_sec
         << ", \"events_per_sec\": " << m.events_per_sec << "}"
         << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  file << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
