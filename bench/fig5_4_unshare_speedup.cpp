// Figure 5-4: Weaver speedups before and after unsharing the bottleneck
// node.  Expected shape: substantial improvement at higher processor
// counts (the three 40-successor generation sites split into twelve
// 10-successor sites), at the cost of slightly more total work.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/core/xform.hpp"
#include "src/trace/synth.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  print_banner(std::cout, "Figure 5-4: Weaver speedups with unsharing");
  const trace::Trace before = trace::make_weaver_section();
  const trace::Trace after =
      core::unshare_node(before, trace::weaver_bottleneck_node());
  const trace::Trace dummies = core::insert_dummy_nodes(
      before, trace::weaver_bottleneck_node(), 4, 8);

  TextTable table(
      {"processors", "weaver", "weaver+unshare", "weaver+dummy-nodes"});
  for (std::uint32_t p : bench::sweep_procs()) {
    const auto config = bench::config_for(p, 0);
    table.row()
        .cell(static_cast<long>(p))
        .cell(bench::speedup_vs(before, before, config), 2)
        .cell(bench::speedup_vs(before, after, config), 2)
        .cell(bench::speedup_vs(before, dummies, config), 2);
  }
  bench::emit_table(table, argc, argv, std::cout);
  std::cout << "\nSpeedups are relative to the ORIGINAL section's serial\n"
               "baseline, so the transformed curves account for their own\n"
               "duplicated work.  Dummy nodes (Gupta ch.4) are the paper's\n"
               "second proposed fix for the same bottleneck.\n";
  return 0;
}
