// Wall-clock scaling of the sweep engine itself: runs the Figure 5-2
// scenario grid (sections x processor counts x overhead runs) once on a
// single worker and once on a pool, verifies the outcomes are identical
// (the engine's determinism guarantee), and writes BENCH_sweep.json with
// both timings.  `--jobs N` sets the parallel worker count (default:
// hardware concurrency); `-o file` overrides the output path.
//
// Interpreting the numbers: the speedup is bounded by the machine's core
// count, so the JSON records hardware_concurrency alongside the timings —
// on a single-core container the parallel run degenerates to the serial
// one (plus queue traffic) by design.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"

namespace {

template <typename Body>
double wall_ms(const Body& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpps;
  std::string out_path = "BENCH_sweep.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "-o") out_path = argv[i + 1];
  }
  unsigned jobs = obs::jobs_arg(argc, argv);
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());

  const auto sections = core::standard_sections();
  const std::vector<std::uint32_t> procs = bench::sweep_procs();
  const std::vector<int> runs = {1, 2, 3, 4};
  std::vector<core::SweepScenario> scenarios;
  for (const auto& section : sections) {
    auto grid = core::overhead_grid(section, procs, runs);
    for (auto& scenario : grid) scenarios.push_back(std::move(scenario));
  }
  std::cout << "sweeping " << scenarios.size() << " scenarios ("
            << sections.size() << " sections x " << procs.size()
            << " processor counts x " << runs.size() << " overhead runs)\n";

  // Warm the per-trace baseline cache so neither timed run pays for it.
  for (const auto& section : sections) {
    sim::BaselineCache::shared().baseline(section.trace);
  }

  std::vector<core::SweepOutcome> serial;
  std::vector<core::SweepOutcome> parallel;
  const double serial_ms =
      wall_ms([&] { serial = core::run_sweep(scenarios, 1); });
  const double parallel_ms =
      wall_ms([&] { parallel = core::run_sweep(scenarios, jobs); });

  // The determinism guarantee, checked on the full grid.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (serial[i].result.makespan != parallel[i].result.makespan ||
        serial[i].speedup != parallel[i].speedup) {
      std::cerr << "MISMATCH at scenario " << serial[i].label
                << ": serial and parallel sweeps disagree\n";
      return 1;
    }
  }

  const double scaling = serial_ms / parallel_ms;
  std::cout << "serial (1 worker):    " << serial_ms << " ms\n"
            << "parallel (" << jobs << " workers): " << parallel_ms
            << " ms\n"
            << "wall-clock speedup:   " << scaling << "x (on "
            << std::thread::hardware_concurrency()
            << " hardware threads)\n";

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "cannot write '" << out_path << "'\n";
    return 1;
  }
  file << "{\n"
       << "  \"benchmark\": \"sweep_scaling\",\n"
       << "  \"scenarios\": " << scenarios.size() << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"serial_ms\": " << serial_ms << ",\n"
       << "  \"parallel_ms\": " << parallel_ms << ",\n"
       << "  \"wall_clock_speedup\": " << scaling << ",\n"
       << "  \"outcomes_identical\": true\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
