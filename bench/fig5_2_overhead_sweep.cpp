// Figure 5-2: speedups with varying message-processing overheads (the
// Table 5-1 runs) for Rubik (top), Tourney (middle), Weaver (bottom).
// Expected shape: overheads cost Rubik ~30% of its speedup, Tourney ~45%,
// Weaver up to ~50% — the ordering follows each section's share of left
// activations (28% / 99% / 81%), since only left activations travel as
// messages.
//
// The (section x processors x run) grid is independent scenarios, so it
// fans out across worker threads (--jobs N) via core::overhead_sweep;
// outcomes come back in scenario order, so the tables are byte-identical
// for every jobs value.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  const auto sections = core::standard_sections();
  const std::vector<std::uint32_t> procs = bench::sweep_procs();
  const std::vector<int> runs = {1, 2, 3, 4};
  const std::vector<core::SweepOutcome> outcomes = core::overhead_sweep(
      sections, procs, runs, obs::jobs_arg(argc, argv));

  // Scenario order is section-major, then processor, then run.
  std::size_t index = 0;
  for (const auto& section : sections) {
    print_banner(std::cout, "Figure 5-2: " + section.label +
                                " speedups vs message-processing overhead");
    TextTable table({"processors", "0 us", "8 us", "16 us", "32 us"});
    const std::size_t section_start = index;
    for (std::uint32_t p : procs) {
      table.row().cell(static_cast<long>(p));
      for (std::size_t r = 0; r < runs.size(); ++r) {
        table.cell(outcomes[index++].speedup, 2);
      }
    }
    bench::emit_table(table, argc, argv, std::cout);
    // The headline comparison: fraction of the zero-overhead speedup lost
    // at the highest overhead setting.
    std::size_t p32 = 0;
    while (procs[p32] != 32) ++p32;
    const double zero = outcomes[section_start + p32 * runs.size()].speedup;
    const double heavy =
        outcomes[section_start + p32 * runs.size() + runs.size() - 1].speedup;
    std::cout << section.label << " @32 processors: speedup loss from 0 to "
              << "32 us total overhead = "
              << static_cast<int>(100.0 * (1.0 - heavy / zero) + 0.5)
              << "%\n";
  }
  return 0;
}
