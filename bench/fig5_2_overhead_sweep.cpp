// Figure 5-2: speedups with varying message-processing overheads (the
// Table 5-1 runs) for Rubik (top), Tourney (middle), Weaver (bottom).
// Expected shape: overheads cost Rubik ~30% of its speedup, Tourney ~45%,
// Weaver up to ~50% — the ordering follows each section's share of left
// activations (28% / 99% / 81%), since only left activations travel as
// messages.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  const auto sections = core::standard_sections();
  for (const auto& section : sections) {
    print_banner(std::cout, "Figure 5-2: " + section.label +
                                " speedups vs message-processing overhead");
    TextTable table({"processors", "0 us", "8 us", "16 us", "32 us"});
    for (std::uint32_t p : bench::sweep_procs()) {
      table.row().cell(static_cast<long>(p));
      for (int run = 1; run <= 4; ++run) {
        table.cell(bench::speedup_vs(section.trace, section.trace,
                                     bench::config_for(p, run)),
                   2);
      }
    }
    bench::emit_table(table, argc, argv, std::cout);
    // The headline comparison: fraction of the zero-overhead speedup lost
    // at the highest overhead setting.
    const double zero = bench::speedup_vs(section.trace, section.trace,
                                          bench::config_for(32, 1));
    const double heavy = bench::speedup_vs(section.trace, section.trace,
                                           bench::config_for(32, 4));
    std::cout << section.label << " @32 processors: speedup loss from 0 to "
              << "32 us total overhead = "
              << static_cast<int>(100.0 * (1.0 - heavy / zero) + 0.5)
              << "%\n";
  }
  return 0;
}
