// Section 5.1 (text): "the interconnection network was mostly (97-98%
// time) idle ... explained by the small delay (0.5 us) associated with the
// interconnection network.  Thus, for our mapping, the interconnection
// network is not a bottleneck."
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"

int main() {
  using namespace mpps;
  print_banner(std::cout,
               "Interconnection-network utilization (0.5 us latency, "
               "32 processors)");
  TextTable table({"section", "messages", "local deliveries",
                   "network busy (us)", "makespan (us)", "idle %"});
  for (const auto& section : core::standard_sections()) {
    const auto config = bench::config_for(32, 1);
    const auto result = sim::simulate(
        section.trace, config,
        sim::Assignment::round_robin(section.trace.num_buckets, 32));
    table.row()
        .cell(section.label)
        .cell(static_cast<unsigned long>(result.messages))
        .cell(static_cast<unsigned long>(result.local_deliveries))
        .cell(result.network_busy.micros(), 1)
        .cell(result.makespan.micros(), 1)
        .cell(100.0 * (1.0 - result.network_utilization()), 1);
  }
  table.print(std::cout);
  std::cout << "\nUtilization is measured against aggregate link capacity\n"
               "(processors x makespan).  Despite the large number of\n"
               "tokens, the network is not a bottleneck.\n";
  return 0;
}
