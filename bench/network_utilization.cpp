// Section 5.1 (text): "the interconnection network was mostly (97-98%
// time) idle ... explained by the small delay (0.5 us) associated with the
// interconnection network.  Thus, for our mapping, the interconnection
// network is not a bottleneck."
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"

int main() {
  using namespace mpps;
  print_banner(std::cout,
               "Interconnection-network utilization (0.5 us latency, "
               "32 processors)");
  TextTable table({"section", "messages", "local deliveries",
                   "network busy (us)", "makespan (us)", "idle %"});
  for (const auto& section : core::standard_sections()) {
    // Numbers come from the metrics registry the simulator records into
    // (src/obs), not from ad-hoc result fields.
    auto run = obs::run_instrumented(section.trace, bench::config_for(32, 1));
    obs::Registry& reg = run.registry;
    const auto network_busy_us =
        static_cast<double>(reg.counter("sim.network_busy_ns").value()) /
        1000.0;
    const auto makespan_us =
        static_cast<double>(reg.gauge("sim.makespan_ns").value()) / 1000.0;
    table.row()
        .cell(section.label)
        .cell(static_cast<unsigned long>(reg.counter("sim.messages").value()))
        .cell(static_cast<unsigned long>(
            reg.counter("sim.local_deliveries").value()))
        .cell(network_busy_us, 1)
        .cell(makespan_us, 1)
        .cell(100.0 * (1.0 - run.result.network_utilization()), 1);
  }
  table.print(std::cout);
  std::cout << "\nUtilization is measured against aggregate link capacity\n"
               "(processors x makespan).  Despite the large number of\n"
               "tokens, the network is not a bottleneck.\n";
  return 0;
}
