// Figure 5-5: distribution of left tokens across processors in two
// independent Rubik cycles (16 processors, round-robin buckets).
// Expected shape: within each cycle the distribution is quite uneven, and
// processors busy in one cycle are idle in the next (complementary
// activity), even though the aggregate over all four cycles is roughly
// even.
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/obs/summary.hpp"
#include "src/trace/synth.hpp"

int main() {
  using namespace mpps;
  constexpr std::uint32_t kProcs = 16;
  print_banner(std::cout,
               "Figure 5-5: left-token distribution per processor, two "
               "independent Rubik cycles");
  const trace::Trace t = trace::make_rubik_section();
  // Run with the observability layer attached: the per-processor counts
  // below come from the simulator's own metrics, and the skew/hot-bucket
  // summary at the end is obs::summarize_run — the paper's uneven-
  // distribution diagnosis, automated.
  const auto run = obs::run_instrumented(t, bench::config_for(kProcs, 0));
  const sim::SimResult& result = run.result;

  TextTable table({"processor", "cycle 1 left tokens", "cycle 2 left tokens",
                   "aggregate (4 cycles)"});
  std::vector<std::uint64_t> aggregate(kProcs, 0);
  for (const auto& cycle : result.cycles) {
    for (std::uint32_t p = 0; p < kProcs; ++p) {
      aggregate[p] += cycle.procs[p].left_activations;
    }
  }
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    table.row()
        .cell(static_cast<long>(p))
        .cell(static_cast<unsigned long>(result.cycles[0].procs[p].left_activations))
        .cell(static_cast<unsigned long>(result.cycles[1].procs[p].left_activations))
        .cell(static_cast<unsigned long>(aggregate[p]));
  }
  table.print(std::cout);

  // An ASCII rendering of the two distributions (the paper's bar chart).
  for (std::size_t c : {0u, 1u}) {
    std::cout << "\ncycle " << c + 1 << ":\n";
    for (std::uint32_t p = 0; p < kProcs; ++p) {
      const auto n = result.cycles[c].procs[p].left_activations;
      std::cout << (p < 10 ? " p" : "p") << p << " |"
                << std::string(static_cast<std::size_t>(n), '#') << " " << n
                << "\n";
    }
  }
  std::cout << "\nNote the complementary pattern: processors loaded in one\n"
               "cycle tend to be idle in the next (each cycle's active hash\n"
               "buckets are a different part of the table).\n\n";

  // The same diagnosis from the observability layer's run summary.
  obs::print_run_summary(std::cout, obs::summarize_run(t, result, 8));
  return 0;
}
