// Serving-engine latency under concurrent tenants: wall-clock
// per-transaction p50/p95/p99 of serve::ServeEngine as the session count
// grows (1..16 closed-loop clients through ONE shared engine) and as the
// match-thread count grows at a fixed 8 sessions, written to
// BENCH_serve.json.  docs/SERVING.md explains how to read the report;
// the companion throughput benchmark is bench/pmatch_throughput.
//
// Workload: a 16-slot trigger/item join base.  Each client session first
// installs its own item wmes (the per-tenant working set), then each
// timed transaction asserts a trigger into one slot and retracts its
// beyond-window triggers from earlier transactions — so every
// transaction does real beta-network work against the session's own
// partition, working-set size stays constant, and concurrent sessions'
// transactions fuse into shared BSP phases at the admission queue.
//
// Every row reports the engine's own LatencyReport (histogram-bucket
// percentiles; docs/OBSERVABILITY.md) plus the serve counters that
// explain it: fused-phase count, max transaction fan-in, max queue
// depth, and cross_session_deltas (always 0 — nonzero means partition
// isolation broke, and the adversarial suite in
// tests/serve_isolation_test.cpp pins that independently).
//
// Usage:
//   serve_latency [--smoke] [-o FILE]
//
// `--smoke` runs a tiny transaction count (seconds, not minutes) for CI
// bit-rot checking; absolute numbers from smoke mode are noise.  The
// JSON records hardware_concurrency: latency holding flat as sessions
// grow needs actual spare cores.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/core/jsonw.hpp"
#include "src/ops5/parser.hpp"
#include "src/ops5/wme.hpp"
#include "src/serve/serve.hpp"

namespace {

using namespace mpps;

constexpr int kSlots = 16;
constexpr int kItemsPerSlot = 2;

ops5::Program workload_program() {
  std::ostringstream src;
  for (int s = 0; s < kSlots; ++s) {
    src << "(p match" << s << " (trigger ^slot " << s
        << " ^g <g>) (item ^slot " << s << " ^g <g>) --> (halt))\n";
  }
  return ops5::parse_program(src.str());
}

struct Row {
  std::uint32_t sessions = 0;
  std::uint32_t threads = 0;
  serve::ServeStats stats;
  serve::LatencyReport latency;
};

/// One serving run: `sessions` closed-loop clients, each submitting
/// `transactions` timed trigger transactions with a live window of 8.
Row run_row(const ops5::Program& program, std::uint32_t sessions,
            std::uint32_t threads, std::uint64_t transactions) {
  serve::ServeOptions options;
  options.match.threads = threads;
  options.admission_batch = sessions;
  serve::ServeEngine engine(program, options);

  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (std::uint32_t c = 0; c < sessions; ++c) {
    clients.emplace_back([&engine, c, transactions] {
      serve::Session session = engine.open_session(
          {.label = "tenant" + std::to_string(c), .max_live_wmes = 0});
      // The tenant's working set, installed untimed relative to the row
      // (it still goes through the queue, but is a tiny fraction of the
      // timed transactions).
      serve::Transaction setup;
      for (int s = 0; s < kSlots; ++s) {
        for (int i = 0; i < kItemsPerSlot; ++i) {
          setup.add(ops5::parse_wme("(item ^slot " + std::to_string(s) +
                                    " ^g 0)"));
        }
      }
      session.transact(std::move(setup));

      constexpr std::size_t kWindow = 8;
      std::vector<WmeId> live;
      for (std::uint64_t t = 0; t < transactions; ++t) {
        serve::Transaction tx;
        if (live.size() >= kWindow) {
          tx.remove(live.front());
          live.erase(live.begin());
        }
        tx.add(ops5::parse_wme("(trigger ^slot " +
                               std::to_string(t % kSlots) + " ^g 0)"));
        const serve::TxResult r = session.transact(std::move(tx));
        live.insert(live.end(), r.added.begin(), r.added.end());
      }
      session.close();
    });
  }
  for (std::thread& t : clients) t.join();

  Row row;
  row.sessions = sessions;
  row.threads = threads;
  row.stats = engine.stats();
  row.latency = engine.latency_report();
  engine.shutdown();
  return row;
}

void emit_row(core::JsonWriter& j, const Row& row) {
  j.begin_object();
  j.field("sessions", row.sessions);
  j.field("threads", row.threads);
  j.field("transactions", row.stats.transactions);
  j.field("changes", row.stats.changes);
  j.field("batches", row.stats.batches);
  j.field("max_fused", row.stats.max_fused);
  j.field("max_queue_depth", row.stats.max_queue_depth);
  j.field("activations", row.stats.activations);
  j.field("retractions", row.stats.retractions);
  j.field("cross_session_deltas", row.stats.cross_session_deltas);
  j.key("latency");
  j.begin_object();
  j.field("wall_s", row.latency.wall_s);
  j.field("p50_us", row.latency.p50_us);
  j.field("p95_us", row.latency.p95_us);
  j.field("p99_us", row.latency.p99_us);
  j.field("mean_us", row.latency.mean_us);
  j.field("max_us", row.latency.max_us);
  j.field("tx_per_s", row.latency.tx_per_s);
  j.field("changes_per_s", row.latency.changes_per_s);
  j.field("activations_per_s", row.latency.activations_per_s);
  j.end_object();
  j.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: serve_latency [--smoke] [-o FILE]\n";
      return 2;
    }
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  const std::uint64_t transactions = smoke ? 25 : 500;
  const ops5::Program program = workload_program();

  std::vector<Row> rows;
  // Tenant scaling at a fixed engine: does p99 hold as 1 -> 16 sessions
  // share one rule base?  (The >= 8 sessions row is the acceptance bar.)
  for (const std::uint32_t sessions : {1u, 2u, 4u, 8u, 16u}) {
    rows.push_back(run_row(program, sessions, 4, transactions));
  }
  // Worker scaling at a fixed 8 tenants: what the match threads buy.
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    rows.push_back(run_row(program, 8, threads, transactions));
  }

  for (const Row& row : rows) {
    std::cout << row.sessions << " sessions @ " << row.threads
              << " threads: p50 " << row.latency.p50_us << " us, p95 "
              << row.latency.p95_us << " us, p99 " << row.latency.p99_us
              << " us, " << static_cast<std::uint64_t>(row.latency.tx_per_s)
              << " tx/s, " << row.stats.batches << " phases (max fan-in "
              << row.stats.max_fused << "), cross-session deltas "
              << row.stats.cross_session_deltas << "\n";
  }

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "cannot write '" << out_path << "'\n";
    return 1;
  }
  core::JsonWriter j(file);
  j.begin_object();
  j.field("benchmark", "serve_latency");
  j.field("smoke", smoke);
  j.field("hardware_concurrency", static_cast<std::uint64_t>(hardware));
  j.field("transactions_per_session", transactions);
  j.key("rows");
  j.begin_array();
  for (const Row& row : rows) emit_row(j, row);
  j.end_array();
  j.end_object();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
