// Parallel match-engine throughput: wall-clock activations per second of
// pmatch::ParallelEngine at 1/2/4/8 worker threads (plus the serial
// rete::Engine as the reference point) on two synthetic match workloads,
// written to BENCH_pmatch.json so the paper's *simulated* speedup curves
// (BENCH_simkernel.json, docs/EXPERIMENTS.md) sit next to *measured*
// ones (docs/PARALLEL_MATCH.md explains how to compare them).
//
//   fanout — one trigger wme joins P=48 productions' beta nodes spread
//            across the bucket space: the paper's good case, wide
//            activation rounds that partition across workers.
//   chain  — a single 8-CE production: every activation ripples down one
//            join chain, so rounds are deep and narrow — the paper's
//            bad case, and an honest lower bound for the engine.
//
// Usage:
//   pmatch_throughput [--smoke] [-o FILE]
//
// `--smoke` runs a tiny iteration count (seconds, not minutes) for CI
// bit-rot checking; absolute numbers from smoke mode are noise.
//
// The JSON records hardware_concurrency: thread-level speedup above 1.0
// is only reachable when the host actually has spare cores — on a 1-CPU
// container every extra worker only adds barrier overhead, and the
// numbers will honestly show that.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/core/jsonw.hpp"
#include "src/obs/profiler.hpp"
#include "src/ops5/parser.hpp"
#include "src/ops5/wme.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/network.hpp"

namespace {

using namespace mpps;

struct Workload {
  std::string name;
  std::string source;                  // productions only
  std::vector<std::string> setup;      // wmes added once, untimed
  // One timed iteration adds `per_iter(i)` wmes and then removes them
  // again (so working-set size stays constant across iterations).
  std::vector<std::string> (*per_iter)(std::uint64_t iter);
};

std::vector<std::string> fanout_iter(std::uint64_t) {
  return {"(trigger ^g 0)"};
}

std::vector<std::string> chain_iter(std::uint64_t iter) {
  std::vector<std::string> out;
  out.reserve(8);
  for (int c = 0; c < 8; ++c) {
    out.push_back("(c" + std::to_string(c) + " ^k " + std::to_string(iter % 17) +
                  ")");
  }
  return out;
}

Workload make_fanout() {
  Workload w;
  w.name = "fanout";
  std::ostringstream src;
  const int productions = 48;
  const int items_per_slot = 4;
  for (int p = 0; p < productions; ++p) {
    src << "(p fan" << p << " (trigger ^g <g>) (item ^slot " << p
        << " ^g <g>) --> (halt))\n";
  }
  w.source = src.str();
  for (int p = 0; p < productions; ++p) {
    for (int m = 0; m < items_per_slot; ++m) {
      w.setup.push_back("(item ^slot " + std::to_string(p) + " ^g 0)");
    }
  }
  w.per_iter = fanout_iter;
  return w;
}

Workload make_chain() {
  Workload w;
  w.name = "chain";
  std::ostringstream src;
  src << "(p chain";
  for (int c = 0; c < 8; ++c) src << " (c" << c << " ^k <x>)";
  src << " --> (halt))\n";
  w.source = src.str();
  w.per_iter = chain_iter;
  return w;
}

struct Measurement {
  std::string workload;
  std::uint32_t threads = 0;  // 0 = the serial rete::Engine
  std::uint64_t iterations = 0;
  std::uint64_t activations = 0;  // total across the timed iterations
  double wall_ms = 0.0;
  double activations_per_sec = 0.0;
  // Attribution pass (parallel rows only): a separate short profiled run
  // — the throughput numbers above stay uninstrumented.
  bool profiled = false;
  obs::ProfileReport profile;
};

std::uint64_t total_activations(const rete::MatchEngine& engine) {
  return engine.stats().left_activations + engine.stats().right_activations;
}

/// Runs `iterations` add+remove rounds through `engine` and returns the
/// wall-clock milliseconds spent (activation counts read via stats()).
double drive(rete::MatchEngine& engine, const Workload& w,
             std::uint64_t iterations) {
  ops5::WorkingMemory wm;
  const auto feed = [&] {
    for (const ops5::WmeChange& change : wm.drain_changes()) {
      engine.process_change(change);
    }
  };
  for (const std::string& wme : w.setup) {
    wm.add(ops5::parse_wme(wme));
  }
  feed();

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    std::vector<WmeId> added;
    for (const std::string& wme : w.per_iter(i)) {
      added.push_back(wm.add(ops5::parse_wme(wme)));
    }
    feed();
    for (const WmeId id : added) wm.remove(id);
    feed();
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

Measurement measure(const rete::Network& net, const Workload& w,
                    std::uint32_t threads, bool smoke) {
  Measurement m;
  m.workload = w.name;
  m.threads = threads;

  const double min_budget_ms = smoke ? 0.0 : 250.0;
  std::uint64_t iterations = smoke ? 20 : 64;
  for (;;) {
    std::unique_ptr<rete::MatchEngine> engine;
    if (threads == 0) {
      engine = std::make_unique<rete::Engine>(net, rete::EngineOptions{});
    } else {
      pmatch::ParallelOptions popts;
      popts.threads = threads;
      engine = std::make_unique<pmatch::ParallelEngine>(net, popts);
    }
    const std::uint64_t before = total_activations(*engine);
    m.wall_ms = drive(*engine, w, iterations);
    m.iterations = iterations;
    m.activations = total_activations(*engine) - before;
    if (m.wall_ms >= min_budget_ms || smoke) break;
    iterations *= 2;
  }
  m.activations_per_sec =
      static_cast<double>(m.activations) / (m.wall_ms / 1000.0);

  if (threads > 0) {
    obs::Profiler profiler;
    pmatch::ParallelOptions popts;
    popts.threads = threads;
    popts.profiler = &profiler;
    pmatch::ParallelEngine engine(net, popts);
    drive(engine, w, smoke ? 5 : 32);
    m.profile = profiler.report();
    m.profiled = true;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pmatch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: pmatch_throughput [--smoke] [-o FILE]\n";
      return 2;
    }
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  const std::vector<Workload> workloads = {make_fanout(), make_chain()};
  const std::vector<std::uint32_t> thread_counts = {0, 1, 2, 4, 8};

  std::vector<Measurement> measurements;
  for (const Workload& w : workloads) {
    const ops5::Program program = ops5::parse_program(w.source);
    const rete::Network net = rete::Network::compile(program);
    double base_aps = 0.0;  // the 1-thread parallel engine
    for (const std::uint32_t threads : thread_counts) {
      Measurement m = measure(net, w, threads, smoke);
      if (threads == 1) base_aps = m.activations_per_sec;
      std::cout << m.workload << " @ "
                << (m.threads == 0 ? "serial"
                                   : std::to_string(m.threads) + " threads")
                << ": "
                << static_cast<std::uint64_t>(m.activations_per_sec)
                << " activations/s (" << m.iterations << " iters, "
                << m.wall_ms << " ms)";
      if (m.threads > 1 && base_aps > 0.0) {
        std::cout << " speedup vs 1 thread "
                  << m.activations_per_sec / base_aps;
      }
      std::cout << "\n";
      measurements.push_back(std::move(m));
    }
  }

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "cannot write '" << out_path << "'\n";
    return 1;
  }
  core::JsonWriter j(file);
  j.begin_object();
  j.field("benchmark", "pmatch_throughput");
  j.field("smoke", smoke);
  j.field("hardware_concurrency", static_cast<std::uint64_t>(hardware));
  j.key("workloads");
  j.begin_array();
  double base_aps = 0.0;
  for (const Measurement& m : measurements) {
    if (m.threads == 1) base_aps = m.activations_per_sec;
    j.begin_object();
    j.field("name", m.workload);
    j.field("engine", m.threads == 0 ? "serial" : "parallel");
    j.field("threads", m.threads);
    j.field("iterations", m.iterations);
    j.field("activations", m.activations);
    j.field("wall_ms", m.wall_ms);
    j.field("activations_per_sec", m.activations_per_sec);
    if (m.threads >= 1 && base_aps > 0.0) {
      j.field("speedup_vs_1_thread", m.activations_per_sec / base_aps);
    }
    if (m.profiled) {
      // Where the wall time went (from the separate profiled pass): the
      // measured Table 5-1-style split, as % of summed worker wall time.
      const obs::ProfileReport& p = m.profile;
      const auto pct = [&](std::uint64_t ns) {
        return p.total_wall_ns == 0 ? 0.0
                                    : 100.0 * static_cast<double>(ns) /
                                          static_cast<double>(p.total_wall_ns);
      };
      j.key("attribution");
      j.begin_object();
      j.field("min_attributed_pct", p.min_attributed_pct());
      j.field("rounds_per_change", p.rounds_per_phase());
      j.field("match_skew", p.match_skew);
      for (std::size_t c = 0; c < obs::kProfCategories; ++c) {
        j.field(std::string(obs::prof_category_name(
                    static_cast<obs::ProfCategory>(c))) +
                    "_pct",
                pct(p.total_ns[c]));
      }
      j.field("unattributed_pct", pct(p.total_unattributed_ns));
      j.key("merge");
      j.begin_object();
      j.field("rounds", p.merge_rounds);
      j.field("merged_items", p.merged_items);
      j.field("max_round_items", p.max_merge_items);
      j.end_object();
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::cout << "wrote " << out_path << " (hardware_concurrency " << hardware
            << ")\n";
  return 0;
}
