// Parallel match-engine throughput: wall-clock activations per second of
// pmatch::ParallelEngine at 1/2/4/8 worker threads (plus the serial
// rete::Engine as the reference point) on two synthetic match workloads,
// written to BENCH_pmatch.json so the paper's *simulated* speedup curves
// (BENCH_simkernel.json, docs/EXPERIMENTS.md) sit next to *measured*
// ones (docs/PARALLEL_MATCH.md explains how to compare them).
//
//   fanout — one trigger wme joins P=48 productions' beta nodes spread
//            across the bucket space: the paper's good case, wide
//            activation rounds that partition across workers.
//   chain  — a single 8-CE production: every activation ripples down one
//            join chain, so rounds are deep and narrow — the paper's
//            bad case, and an honest lower bound for the engine.
//
// Every row feeds the *same* pre-generated WM-change stream through
// `process_changes`, so rows differ only in the engine and its
// `max_batch` (how many consecutive changes fuse into one BSP phase).
// Parallel rows run at batch 1 (one change = one phase, the pre-batching
// behaviour) and batch 16 (the round-batched mode), and each carries
// `relative_to_serial` — the acceptance number is parallel@1T >= 0.9x
// serial on both workloads.
//
// `relative_to_serial` compares *changes per second*, not activations
// per second: batching can fuse a wme's add and delete into one phase,
// where the transient sub-instantiations short-circuit and never ripple
// (the multiple-modify saving the paper describes), so a batched row can
// honestly do fewer activations for the same WM-change stream.  Both
// rates are recorded; only changes/s compares equal work.
//
// Usage:
//   pmatch_throughput [--smoke] [-o FILE]
//
// `--smoke` runs a tiny iteration count (seconds, not minutes) for CI
// bit-rot checking; absolute numbers from smoke mode are noise.
//
// The JSON records hardware_concurrency: thread-level speedup above 1.0
// is only reachable when the host actually has spare cores — on a 1-CPU
// container every extra worker only adds barrier overhead, and the
// numbers will honestly show that.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/core/jsonw.hpp"
#include "src/obs/profiler.hpp"
#include "src/ops5/parser.hpp"
#include "src/ops5/wme.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/network.hpp"

namespace {

using namespace mpps;

struct Workload {
  std::string name;
  std::string source;                  // productions only
  std::vector<std::string> setup;      // wmes added once, untimed
  // One iteration adds `per_iter(i)` wmes and then removes them again
  // (so working-set size stays constant across iterations).
  std::vector<std::string> (*per_iter)(std::uint64_t iter);
};

std::vector<std::string> fanout_iter(std::uint64_t) {
  return {"(trigger ^g 0)"};
}

std::vector<std::string> chain_iter(std::uint64_t iter) {
  std::vector<std::string> out;
  out.reserve(8);
  for (int c = 0; c < 8; ++c) {
    out.push_back("(c" + std::to_string(c) + " ^k " + std::to_string(iter % 17) +
                  ")");
  }
  return out;
}

Workload make_fanout() {
  Workload w;
  w.name = "fanout";
  std::ostringstream src;
  const int productions = 48;
  const int items_per_slot = 4;
  for (int p = 0; p < productions; ++p) {
    src << "(p fan" << p << " (trigger ^g <g>) (item ^slot " << p
        << " ^g <g>) --> (halt))\n";
  }
  w.source = src.str();
  for (int p = 0; p < productions; ++p) {
    for (int m = 0; m < items_per_slot; ++m) {
      w.setup.push_back("(item ^slot " + std::to_string(p) + " ^g 0)");
    }
  }
  w.per_iter = fanout_iter;
  return w;
}

Workload make_chain() {
  Workload w;
  w.name = "chain";
  std::ostringstream src;
  src << "(p chain";
  for (int c = 0; c < 8; ++c) src << " (c" << c << " ^k <x>)";
  src << " --> (halt))\n";
  w.source = src.str();
  w.per_iter = chain_iter;
  return w;
}

/// The pre-generated feed: `setup` is applied untimed, `timed` is the
/// add+remove stream the clock runs over.  Identical across every row of
/// a workload, so the engines are compared on the same work.
struct ChangeStream {
  std::vector<ops5::WmeChange> setup;
  std::vector<ops5::WmeChange> timed;
};

ChangeStream build_stream(const Workload& w, std::uint64_t iterations) {
  ChangeStream s;
  ops5::WorkingMemory wm;
  for (const std::string& wme : w.setup) {
    wm.add(ops5::parse_wme(wme));
  }
  s.setup = wm.drain_changes();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    std::vector<WmeId> added;
    for (const std::string& wme : w.per_iter(i)) {
      added.push_back(wm.add(ops5::parse_wme(wme)));
    }
    for (const WmeId id : added) wm.remove(id);
  }
  s.timed = wm.drain_changes();
  return s;
}

struct Measurement {
  std::string workload;
  std::uint32_t threads = 0;  // 0 = the serial rete::Engine
  std::uint32_t batch = 1;    // WM changes fused per BSP phase (parallel)
  std::uint64_t iterations = 0;
  std::uint64_t changes = 0;      // timed WM-change stream length
  std::uint64_t activations = 0;  // total across the timed stream
  double wall_ms = 0.0;
  double activations_per_sec = 0.0;
  double changes_per_sec = 0.0;  // the cross-row comparable rate
  // Attribution pass (parallel rows only): a separate short profiled run
  // — the throughput numbers above stay uninstrumented.
  bool profiled = false;
  obs::ProfileReport profile;
};

std::uint64_t total_activations(const rete::MatchEngine& engine) {
  return engine.stats().left_activations + engine.stats().right_activations;
}

std::unique_ptr<rete::MatchEngine> make_engine(const rete::Network& net,
                                               std::uint32_t threads,
                                               std::uint32_t batch,
                                               obs::Profiler* profiler) {
  if (threads == 0) {
    return std::make_unique<rete::Engine>(net, rete::EngineOptions{});
  }
  pmatch::ParallelOptions popts;
  popts.threads = threads;
  popts.max_batch = batch;
  popts.profiler = profiler;
  return std::make_unique<pmatch::ParallelEngine>(net, popts);
}

/// Feeds the timed stream through `process_changes` (the serial engine
/// loops per change; the parallel engine fuses `max_batch` changes per
/// BSP phase) and returns the wall-clock milliseconds spent.
double drive(rete::MatchEngine& engine, const ChangeStream& stream) {
  engine.process_changes(stream.setup);
  const auto start = std::chrono::steady_clock::now();
  engine.process_changes(stream.timed);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

Measurement measure(const rete::Network& net, const Workload& w,
                    std::uint32_t threads, std::uint32_t batch, bool smoke) {
  Measurement m;
  m.workload = w.name;
  m.threads = threads;
  m.batch = batch;

  const double min_budget_ms = smoke ? 0.0 : 250.0;
  std::uint64_t iterations = smoke ? 20 : 64;
  for (;;) {
    const ChangeStream stream = build_stream(w, iterations);
    std::unique_ptr<rete::MatchEngine> engine =
        make_engine(net, threads, batch, nullptr);
    const std::uint64_t before = total_activations(*engine);
    m.wall_ms = drive(*engine, stream);
    m.iterations = iterations;
    m.changes = stream.timed.size();
    m.activations = total_activations(*engine) - before;
    if (m.wall_ms >= min_budget_ms || smoke) break;
    iterations *= 2;
  }
  m.activations_per_sec =
      static_cast<double>(m.activations) / (m.wall_ms / 1000.0);
  m.changes_per_sec = static_cast<double>(m.changes) / (m.wall_ms / 1000.0);

  if (threads > 0) {
    obs::Profiler profiler;
    std::unique_ptr<rete::MatchEngine> engine =
        make_engine(net, threads, batch, &profiler);
    drive(*engine, build_stream(w, smoke ? 5 : 512));
    m.profile = profiler.report();
    m.profiled = true;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pmatch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: pmatch_throughput [--smoke] [-o FILE]\n";
      return 2;
    }
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  const std::vector<Workload> workloads = {make_fanout(), make_chain()};
  const std::vector<std::uint32_t> thread_counts = {1, 2, 4, 8};
  const std::vector<std::uint32_t> batches = {1, 16, 64};

  std::vector<Measurement> measurements;
  for (const Workload& w : workloads) {
    const ops5::Program program = ops5::parse_program(w.source);
    const rete::Network net = rete::Network::compile(program);

    Measurement serial = measure(net, w, 0, 1, smoke);
    const double serial_cps = serial.changes_per_sec;
    std::cout << serial.workload << " @ serial: "
              << static_cast<std::uint64_t>(serial.changes_per_sec)
              << " changes/s, "
              << static_cast<std::uint64_t>(serial.activations_per_sec)
              << " activations/s (" << serial.iterations << " iters, "
              << serial.wall_ms << " ms)\n";
    measurements.push_back(std::move(serial));

    for (const std::uint32_t batch : batches) {
      double base_cps = 0.0;  // the 1-thread parallel engine at this batch
      for (const std::uint32_t threads : thread_counts) {
        Measurement m = measure(net, w, threads, batch, smoke);
        if (threads == 1) base_cps = m.changes_per_sec;
        std::cout << m.workload << " @ " << m.threads << " threads, batch "
                  << m.batch << ": "
                  << static_cast<std::uint64_t>(m.changes_per_sec)
                  << " changes/s (" << m.iterations << " iters, "
                  << m.wall_ms << " ms)";
        if (serial_cps > 0.0) {
          std::cout << " vs serial " << m.changes_per_sec / serial_cps << "x";
        }
        if (m.threads > 1 && base_cps > 0.0) {
          std::cout << ", speedup vs 1 thread "
                    << m.changes_per_sec / base_cps;
        }
        std::cout << "\n";
        measurements.push_back(std::move(m));
      }
    }
  }

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "cannot write '" << out_path << "'\n";
    return 1;
  }
  core::JsonWriter j(file);
  j.begin_object();
  j.field("benchmark", "pmatch_throughput");
  j.field("smoke", smoke);
  j.field("hardware_concurrency", static_cast<std::uint64_t>(hardware));
  j.key("workloads");
  j.begin_array();
  double serial_cps = 0.0;
  double base_cps = 0.0;
  for (const Measurement& m : measurements) {
    if (m.threads == 0) serial_cps = m.changes_per_sec;
    if (m.threads == 1) base_cps = m.changes_per_sec;
    j.begin_object();
    j.field("name", m.workload);
    j.field("engine", m.threads == 0 ? "serial" : "parallel");
    j.field("threads", m.threads);
    if (m.threads > 0) j.field("batch", m.batch);
    j.field("iterations", m.iterations);
    j.field("changes", m.changes);
    j.field("activations", m.activations);
    j.field("wall_ms", m.wall_ms);
    j.field("activations_per_sec", m.activations_per_sec);
    j.field("changes_per_sec", m.changes_per_sec);
    if (m.threads > 0 && serial_cps > 0.0) {
      j.field("relative_to_serial", m.changes_per_sec / serial_cps);
    }
    if (m.threads >= 1 && base_cps > 0.0) {
      j.field("speedup_vs_1_thread", m.changes_per_sec / base_cps);
    }
    if (m.profiled) {
      // Where the wall time went (from the separate profiled pass): the
      // measured Table 5-1-style split.  Worker categories are % of
      // summed worker wall time; the control thread's conflict-set merge
      // is % of the *engine* wall (its own denominator — dividing it by
      // worker time is how the old >100% figures happened).  All
      // percentages go through obs::safe_pct, so they sit in [0, 100].
      const obs::ProfileReport& p = m.profile;
      j.key("attribution");
      j.begin_object();
      j.field("min_attributed_pct", p.min_attributed_pct());
      j.field("phases", p.phases);
      j.field("changes", p.changes);
      j.field("rounds_per_phase", p.rounds_per_phase());
      j.field("rounds_per_change", p.rounds_per_change());
      j.field("match_skew", p.match_skew);
      for (std::size_t c = 0; c < obs::kProfCategories; ++c) {
        const auto cat = static_cast<obs::ProfCategory>(c);
        if (cat == obs::ProfCategory::ConflictUpdate) continue;
        j.field(std::string(obs::prof_category_name(cat)) + "_pct",
                obs::safe_pct(p.total_ns[c], p.total_wall_ns));
      }
      j.field("unattributed_pct",
              obs::safe_pct(p.total_unattributed_ns, p.total_wall_ns));
      j.field("engine_wall_ms",
              static_cast<double>(p.engine_wall_ns) / 1e6);
      j.field("conflict_update_ms",
              static_cast<double>(p.conflict_update_ns) / 1e6);
      j.field("conflict_update_pct", p.conflict_update_pct());
      j.key("merge");
      j.begin_object();
      j.field("rounds", p.merge_rounds);
      j.field("merged_items", p.merged_items);
      j.field("max_round_items", p.max_merge_items);
      j.end_object();
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::cout << "wrote " << out_path << " (hardware_concurrency " << hardware
            << ")\n";
  return 0;
}
