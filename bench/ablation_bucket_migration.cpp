// Section 5.2.2's rejected alternative, quantified.  "A potential solution
// for this distribution problem is dynamic (run-time) load balancing.
// However ... a token cannot be sent to an arbitrary processor, as its
// target hash-bucket is present only on a particular processor.  Also,
// moving hash-buckets around to change the token distribution is too
// costly."
//
// This harness prices exactly that: switch to the per-cycle greedy maps at
// every cycle boundary and pay one token-transfer (send + receive + copy)
// for every resident token of every moved bucket.  The "ideal" column
// (greedy with free migration) is the offline bound the paper reports
// (~x1.4); the "dynamic" column shows what shipping the state eats.
//
// The (section x processors x policy) simulations fan out across worker
// threads (--jobs N); the migration-cost accounting is arithmetic over the
// trace and stays serial.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  print_banner(std::cout,
               "Dynamic bucket migration: greedy per-cycle maps with REAL "
               "transfer costs (run 4 overheads)");
  const auto sections = core::standard_sections();
  const std::vector<std::uint32_t> procs = {8u, 16u, 32u};

  std::vector<core::SweepScenario> scenarios;
  std::vector<sim::Assignment> greedy_maps;
  greedy_maps.reserve(sections.size() * procs.size());
  for (const auto& section : sections) {
    for (std::uint32_t p : procs) {
      const sim::SimConfig config = bench::config_for(p, 4);
      greedy_maps.push_back(
          core::greedy_assignment(section.trace, p, config.costs));
      core::SweepScenario rr;
      rr.label = section.label + "/p" + std::to_string(p) + "/rr";
      rr.trace = &section.trace;
      rr.config = config;
      rr.assignment =
          sim::Assignment::round_robin(section.trace.num_buckets, p);
      core::SweepScenario greedy;
      greedy.label = section.label + "/p" + std::to_string(p) + "/greedy";
      greedy.trace = &section.trace;
      greedy.config = config;
      greedy.assignment = greedy_maps.back();
      scenarios.push_back(std::move(rr));
      scenarios.push_back(std::move(greedy));
    }
  }
  const auto outcomes =
      core::run_sweep(scenarios, obs::jobs_arg(argc, argv));

  std::size_t index = 0;
  std::size_t greedy_index = 0;
  for (const auto& section : sections) {
    TextTable table({"processors", "static round-robin",
                     "greedy (free migration)", "greedy + migration cost",
                     "migration time (us)"});
    for (std::uint32_t p : procs) {
      const sim::SimConfig config = bench::config_for(p, 4);
      // Transfer one token: sender overhead + wire + receiver overhead +
      // re-insertion into the destination's hash table (a right add).
      const SimTime per_token = config.costs.send_overhead +
                                config.costs.wire_latency +
                                config.costs.recv_overhead +
                                config.costs.right_token;
      const core::SweepOutcome& rr = outcomes[index];
      const core::SweepOutcome& greedy = outcomes[index + 1];
      index += 2;
      const SimTime moving = core::migration_overhead(
          section.trace, greedy_maps[greedy_index++], per_token);
      const SimTime base = rr.baseline;
      auto speedup_of = [&](SimTime t) {
        return static_cast<double>(base.nanos()) /
               static_cast<double>(t.nanos());
      };
      table.row()
          .cell(static_cast<long>(p))
          .cell(rr.speedup, 2)
          .cell(greedy.speedup, 2)
          .cell(speedup_of(greedy.result.makespan + moving), 2)
          .cell(moving.micros(), 0);
    }
    std::cout << "\n" << section.label << ":\n";
    table.print(std::cout);
  }
  std::cout << "\nWhere migration erases the greedy gain, the paper's\n"
               "conclusion holds: \"possibly, better static load\n"
               "distribution by source-level transformation of the\n"
               "production systems may be the only method for improving\n"
               "the performance.\"\n";
  return 0;
}
