// Section 5.2.2's rejected alternative, quantified.  "A potential solution
// for this distribution problem is dynamic (run-time) load balancing.
// However ... a token cannot be sent to an arbitrary processor, as its
// target hash-bucket is present only on a particular processor.  Also,
// moving hash-buckets around to change the token distribution is too
// costly."
//
// This harness prices exactly that: switch to the per-cycle greedy maps at
// every cycle boundary and pay one token-transfer (send + receive + copy)
// for every resident token of every moved bucket.  The "ideal" column
// (greedy with free migration) is the offline bound the paper reports
// (~x1.4); the "dynamic" column shows what shipping the state eats.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"

int main() {
  using namespace mpps;
  print_banner(std::cout,
               "Dynamic bucket migration: greedy per-cycle maps with REAL "
               "transfer costs (run 4 overheads)");
  for (const auto& section : core::standard_sections()) {
    TextTable table({"processors", "static round-robin",
                     "greedy (free migration)", "greedy + migration cost",
                     "migration time (us)"});
    for (std::uint32_t p : {8u, 16u, 32u}) {
      sim::SimConfig config = bench::config_for(p, 4);
      // Transfer one token: sender overhead + wire + receiver overhead +
      // re-insertion into the destination's hash table (a right add).
      const SimTime per_token = config.costs.send_overhead +
                                config.costs.wire_latency +
                                config.costs.recv_overhead +
                                config.costs.right_token;
      const auto rr =
          sim::Assignment::round_robin(section.trace.num_buckets, p);
      const auto greedy =
          core::greedy_assignment(section.trace, p, config.costs);
      const SimTime base = sim::baseline_time(section.trace);
      const SimTime t_rr = sim::simulate(section.trace, config, rr).makespan;
      const SimTime t_greedy =
          sim::simulate(section.trace, config, greedy).makespan;
      const SimTime moving =
          core::migration_overhead(section.trace, greedy, per_token);
      auto speedup_of = [&](SimTime t) {
        return static_cast<double>(base.nanos()) /
               static_cast<double>(t.nanos());
      };
      table.row()
          .cell(static_cast<long>(p))
          .cell(speedup_of(t_rr), 2)
          .cell(speedup_of(t_greedy), 2)
          .cell(speedup_of(t_greedy + moving), 2)
          .cell(moving.micros(), 0);
    }
    std::cout << "\n" << section.label << ":\n";
    table.print(std::cout);
  }
  std::cout << "\nWhere migration erases the greedy gain, the paper's\n"
               "conclusion holds: \"possibly, better static load\n"
               "distribution by source-level transformation of the\n"
               "production systems may be the only method for improving\n"
               "the performance.\"\n";
  return 0;
}
