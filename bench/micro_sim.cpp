// Micro-benchmarks for the MPC simulator and the trace machinery: how fast
// the harness itself runs on a laptop (the paper's simulator took
// 0.5-6 hours per run on a SUN 3/260; one run here is milliseconds).
#include <benchmark/benchmark.h>

#include "src/core/distribution.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/tracer.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/synth.hpp"

namespace {

using namespace mpps;

// Baseline: observability disabled (SimConfig::metrics/tracer left null).
// Compare against BM_SimulateRubik32Observed below — the delta is the cost
// of full instrumentation; the disabled path itself is just null-pointer
// checks and should be indistinguishable from the pre-obs simulator.
void BM_SimulateRubik32(benchmark::State& state) {
  const trace::Trace t = trace::make_rubik_section();
  sim::SimConfig config;
  config.match_processors = 32;
  config.costs = sim::CostModel::paper_run(4);
  const auto assignment = sim::Assignment::round_robin(t.num_buckets, 32);
  for (auto _ : state) {
    auto result = sim::simulate(t, config, assignment);
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.total_activations()));
}
BENCHMARK(BM_SimulateRubik32);

// Same run with a metrics registry and trace sink attached.
void BM_SimulateRubik32Observed(benchmark::State& state) {
  const trace::Trace t = trace::make_rubik_section();
  const auto assignment = sim::Assignment::round_robin(t.num_buckets, 32);
  for (auto _ : state) {
    obs::Registry registry;
    obs::Tracer tracer;
    sim::SimConfig config;
    config.match_processors = 32;
    config.costs = sim::CostModel::paper_run(4);
    config.metrics = &registry;
    config.tracer = &tracer;
    auto result = sim::simulate(t, config, assignment);
    benchmark::DoNotOptimize(result.makespan);
    benchmark::DoNotOptimize(tracer.events().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.total_activations()));
}
BENCHMARK(BM_SimulateRubik32Observed);

void BM_SimulateTourney32(benchmark::State& state) {
  const trace::Trace t = trace::make_tourney_section();
  sim::SimConfig config;
  config.match_processors = 32;
  config.costs = sim::CostModel::paper_run(4);
  const auto assignment = sim::Assignment::round_robin(t.num_buckets, 32);
  for (auto _ : state) {
    auto result = sim::simulate(t, config, assignment);
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(t.total_activations()));
}
BENCHMARK(BM_SimulateTourney32);

void BM_GenerateRubikSection(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto t = trace::make_rubik_section(256, seed++);
    benchmark::DoNotOptimize(t.total_activations());
  }
}
BENCHMARK(BM_GenerateRubikSection);

void BM_GreedyAssignment32(benchmark::State& state) {
  const trace::Trace t = trace::make_rubik_section();
  const auto costs = sim::CostModel::zero_overhead();
  for (auto _ : state) {
    auto assignment = core::greedy_assignment(t, 32, costs);
    benchmark::DoNotOptimize(assignment.num_procs());
  }
}
BENCHMARK(BM_GreedyAssignment32);

}  // namespace
