// Section 5.2.1's other remedy for small cycles: "identify the productions
// affected in small cycles and process all the tokens associated with
// matching the production on a single processor.  Since such cycles do not
// possess much parallelism, avoiding the communication overheads seems to
// be a useful strategy."  This ablation measures exactly that trade: the
// coalesced cycles lose their (tiny) parallelism but pay no messages, so
// the benefit appears at high communication overheads and vanishes at low
// ones.
//
// Both grids run through the sweep engine (--jobs N worker threads).
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"
#include "src/trace/synth.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  const unsigned jobs = obs::jobs_arg(argc, argv);
  print_banner(std::cout,
               "Small-cycle coalescing (variable granularity), Weaver "
               "section, 16 processors");
  const trace::Trace weaver = trace::make_weaver_section();
  const auto base = sim::Assignment::round_robin(weaver.num_buckets, 16);

  std::vector<std::string> machines;
  std::vector<sim::CostModel> machine_costs;
  for (int run = 1; run <= 4; ++run) {
    machines.push_back("Nectar run " + std::to_string(run));
    machine_costs.push_back(sim::CostModel::paper_run(run));
  }
  // A first-generation message-passing computer (the paper's introduction:
  // Cosmic-Cube-class machines had ~2 ms network latency and ~300 us
  // message-handling overheads) — the regime the coalescing proposal
  // targets: "especially for systems with high communication overheads".
  sim::CostModel first_gen;
  first_gen.send_overhead = SimTime::us(150);
  first_gen.recv_overhead = SimTime::us(150);
  first_gen.wire_latency = SimTime::us(2000);
  machines.push_back("first-gen MPC");
  machine_costs.push_back(first_gen);

  std::vector<core::SweepScenario> scenarios;
  for (std::size_t m = 0; m < machines.size(); ++m) {
    sim::SimConfig config;
    config.match_processors = 16;
    config.costs = machine_costs[m];
    for (std::size_t threshold : {0u, 100u, 200u}) {
      core::SweepScenario scenario;
      scenario.label = machines[m] + "/t" + std::to_string(threshold);
      scenario.trace = &weaver;
      scenario.config = config;
      scenario.assignment =
          threshold == 0
              ? base
              : core::coalesce_small_cycles(weaver, base, 16, threshold);
      scenarios.push_back(std::move(scenario));
    }
  }
  const auto outcomes = core::run_sweep(scenarios, jobs);

  TextTable table({"machine", "distributed", "coalesce < 100 acts",
                   "coalesce < 200 acts"});
  std::size_t index = 0;
  for (const auto& machine : machines) {
    table.row().cell(machine);
    for (int t = 0; t < 3; ++t) {
      table.cell(outcomes[index++].speedup, 2);
    }
  }
  table.print(std::cout);

  print_banner(std::cout, "Same sweep on Rubik (no small cycles: a no-op)");
  const trace::Trace rubik = trace::make_rubik_section();
  const auto rubik_base = sim::Assignment::round_robin(rubik.num_buckets, 16);
  const auto rubik_coalesced =
      core::coalesce_small_cycles(rubik, rubik_base, 16, 100);
  std::vector<core::SweepScenario> rubik_scenarios;
  for (int run = 1; run <= 4; ++run) {
    for (bool coalesce : {false, true}) {
      core::SweepScenario scenario;
      scenario.label = "rubik/r" + std::to_string(run) +
                       (coalesce ? "/coalesced" : "/distributed");
      scenario.trace = &rubik;
      scenario.config = bench::config_for(16, run);
      scenario.assignment = coalesce ? rubik_coalesced : rubik_base;
      rubik_scenarios.push_back(std::move(scenario));
    }
  }
  const auto rubik_outcomes = core::run_sweep(rubik_scenarios, jobs);
  TextTable rt({"overhead run", "distributed", "coalesce < 100 acts"});
  index = 0;
  for (int run = 1; run <= 4; ++run) {
    rt.row()
        .cell(static_cast<long>(run))
        .cell(rubik_outcomes[index].speedup, 2)
        .cell(rubik_outcomes[index + 1].speedup, 2);
    index += 2;
  }
  rt.print(std::cout);
  std::cout << "\nCoalescing trades the small cycles' limited parallelism\n"
               "for zero message traffic: it pays off as overheads rise\n"
               "and is free where no cycle is small.\n";
  return 0;
}
