// Section 5.2.1's other remedy for small cycles: "identify the productions
// affected in small cycles and process all the tokens associated with
// matching the production on a single processor.  Since such cycles do not
// possess much parallelism, avoiding the communication overheads seems to
// be a useful strategy."  This ablation measures exactly that trade: the
// coalesced cycles lose their (tiny) parallelism but pay no messages, so
// the benefit appears at high communication overheads and vanishes at low
// ones.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"
#include "src/trace/synth.hpp"

int main() {
  using namespace mpps;
  print_banner(std::cout,
               "Small-cycle coalescing (variable granularity), Weaver "
               "section, 16 processors");
  const trace::Trace weaver = trace::make_weaver_section();
  const auto base = sim::Assignment::round_robin(weaver.num_buckets, 16);

  TextTable table({"machine", "distributed", "coalesce < 100 acts",
                   "coalesce < 200 acts"});
  auto sweep_row = [&](const std::string& label, const sim::CostModel& costs) {
    sim::SimConfig config;
    config.match_processors = 16;
    config.costs = costs;
    table.row().cell(label);
    table.cell(sim::speedup(weaver, config, base), 2);
    for (std::size_t threshold : {100u, 200u}) {
      const auto coalesced =
          core::coalesce_small_cycles(weaver, base, 16, threshold);
      table.cell(sim::speedup(weaver, config, coalesced), 2);
    }
  };
  for (int run = 1; run <= 4; ++run) {
    sweep_row("Nectar run " + std::to_string(run),
              sim::CostModel::paper_run(run));
  }
  // A first-generation message-passing computer (the paper's introduction:
  // Cosmic-Cube-class machines had ~2 ms network latency and ~300 us
  // message-handling overheads) — the regime the coalescing proposal
  // targets: "especially for systems with high communication overheads".
  sim::CostModel first_gen;
  first_gen.send_overhead = SimTime::us(150);
  first_gen.recv_overhead = SimTime::us(150);
  first_gen.wire_latency = SimTime::us(2000);
  sweep_row("first-gen MPC", first_gen);
  table.print(std::cout);

  print_banner(std::cout, "Same sweep on Rubik (no small cycles: a no-op)");
  const trace::Trace rubik = trace::make_rubik_section();
  const auto rubik_base = sim::Assignment::round_robin(rubik.num_buckets, 16);
  TextTable rt({"overhead run", "distributed", "coalesce < 100 acts"});
  for (int run = 1; run <= 4; ++run) {
    sim::SimConfig config = bench::config_for(16, run);
    const auto coalesced =
        core::coalesce_small_cycles(rubik, rubik_base, 16, 100);
    rt.row()
        .cell(static_cast<long>(run))
        .cell(sim::speedup(rubik, config, rubik_base), 2)
        .cell(sim::speedup(rubik, config, coalesced), 2);
  }
  rt.print(std::cout);
  std::cout << "\nCoalescing trades the small cycles' limited parallelism\n"
               "for zero message traffic: it pays off as overheads rise\n"
               "and is free where no cycle is small.\n";
  return 0;
}
