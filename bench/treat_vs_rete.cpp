// Rete vs TREAT (Miranker [30] in the paper's references) — the classic
// match-algorithm trade the production-system community debated:
//   * Rete stores beta tokens so additions never re-join old state, but
//     deletions flood minus tokens through the network and the state
//     costs memory;
//   * TREAT stores only alpha memories — deletions are nearly free, but
//     every addition re-joins against the alpha memories.
// The paper builds on Rete (hashed memories); this harness quantifies what
// that choice buys and costs on add-heavy vs delete-heavy workloads.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/network.hpp"
#include "src/rete/treat.hpp"

namespace {

using namespace mpps;

const char* kProgram = R"(
  (p chain (a ^v <x>) (b ^v <x> ^w <y>) (c ^w <y>) --> (halt))
  (p pair (a ^v <x>) (c ^w <x>) --> (halt)))";

std::vector<ops5::WmeChange> workload(int n, bool delete_heavy) {
  ops5::WorkingMemory wm;
  std::vector<WmeId> live;
  // Phase 1: build a stable base of n matching triples (distinct values,
  // so matches stay linear).
  for (int i = 0; i < n; ++i) {
    const std::string v = std::to_string(i);
    live.push_back(wm.add(ops5::parse_wme("(a ^v " + v + ")")));
    live.push_back(
        wm.add(ops5::parse_wme("(b ^v " + v + " ^w k" + v + ")")));
    live.push_back(wm.add(ops5::parse_wme("(c ^w k" + v + ")")));
  }
  if (delete_heavy) {
    // Phase 2: churn — delete and re-add each triple's `a` wme (the
    // modify pattern that floods Rete with minus tokens).
    for (int i = 0; i < n; ++i) {
      wm.remove(live[static_cast<std::size_t>(3 * i)]);
      wm.add(ops5::parse_wme("(a ^v " + std::to_string(i) + ")"));
    }
  }
  return wm.drain_changes();
}

struct RunResult {
  double millis = 0.0;
  std::size_t conflict_set = 0;
  std::size_t state = 0;  // beta tokens (Rete) / alpha refs (TREAT)
};

template <typename F>
double timed(F&& f) {
  const auto start = std::chrono::steady_clock::now();
  f();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

RunResult run_rete(const std::vector<ops5::WmeChange>& changes) {
  const auto program = ops5::parse_program(kProgram);
  const auto net = rete::Network::compile(program);
  rete::Engine engine(net);
  RunResult result;
  result.millis = timed([&] {
    for (const auto& change : changes) engine.process_change(change);
  });
  result.conflict_set = engine.conflict_set().size();
  result.state = engine.left_memory().total_tokens() +
                 engine.right_memory().total_tokens();
  return result;
}

RunResult run_treat(const std::vector<ops5::WmeChange>& changes) {
  const auto program = ops5::parse_program(kProgram);
  rete::TreatEngine engine(program);
  RunResult result;
  result.millis = timed([&] {
    for (const auto& change : changes) engine.process_change(change);
  });
  result.conflict_set = engine.conflict_set().size();
  result.state = engine.alpha_memory_size();
  return result;
}

}  // namespace

int main() {
  print_banner(std::cout, "Rete (hashed memories) vs TREAT");
  TextTable table({"workload", "algorithm", "time (ms)", "conflict set",
                   "match state (tokens/refs)"});
  for (bool delete_heavy : {false, true}) {
    const auto changes = workload(150, delete_heavy);
    const char* label = delete_heavy ? "delete-heavy (50% churn)"
                                     : "add-only";
    const RunResult rete = run_rete(changes);
    const RunResult treat = run_treat(changes);
    if (rete.conflict_set != treat.conflict_set) {
      std::cerr << "conflict sets diverge!\n";
      return 1;
    }
    table.row().cell(label).cell("rete").cell(rete.millis, 2)
        .cell(static_cast<unsigned long>(rete.conflict_set))
        .cell(static_cast<unsigned long>(rete.state));
    table.row().cell(label).cell("treat (unindexed)").cell(treat.millis, 2)
        .cell(static_cast<unsigned long>(treat.conflict_set))
        .cell(static_cast<unsigned long>(treat.state));
  }
  table.print(std::cout);
  std::cout
      << "\nRete carries beta state; TREAT re-joins on every add but\n"
         "deletes without join work (its per-delete join count is zero —\n"
         "see the unit tests).  This TREAT keeps UNINDEXED alpha memories,\n"
         "so the wall-clock gap largely shows what the paper's hashed\n"
         "memories buy; the state column shows what Rete pays for it.\n"
         "The paper's mapping distributes that state through the global\n"
         "hash tables instead of abandoning it.\n";
  return 0;
}
