// Section 5.2 / 6: the comparison with the paper's shared-bus (Encore
// Multimax) implementation.  "For a number of processors, comparable to
// our shared-bus implementation, the MPCs provide a comparable speedup in
// the simulated sections."  The section also lays out the tradeoff: the
// distributed mapping has no centralized task queues (the shared-memory
// bottleneck) but suffers static hash-table partitioning; the shared
// memory has no partitioning but serializes on the queue — and BOTH
// serialize on a non-discriminating cross-product bucket.
//
// The MPC column fans out across worker threads (--jobs N) via the sweep
// engine; the shared-bus model is a different simulator and stays serial.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"
#include "src/sim/sharedbus.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  print_banner(std::cout,
               "MPC (distributed hash table) vs shared-bus "
               "(centralized task queues)");
  const auto sections = core::standard_sections();
  const std::vector<std::uint32_t> procs = {2u, 4u, 8u, 16u, 32u, 64u};

  std::vector<core::SweepScenario> scenarios;
  for (const auto& section : sections) {
    for (std::uint32_t p : procs) {
      core::SweepScenario scenario;
      scenario.label = section.label + "/p" + std::to_string(p);
      scenario.trace = &section.trace;
      scenario.config = bench::config_for(p, 2);
      scenario.assignment =
          sim::Assignment::round_robin(section.trace.num_buckets, p);
      scenarios.push_back(std::move(scenario));
    }
  }
  const auto outcomes =
      core::run_sweep(scenarios, obs::jobs_arg(argc, argv));

  std::size_t index = 0;
  for (const auto& section : sections) {
    TextTable table({"processors", "MPC run 2 (8 us ovh)",
                     "shared-bus (3 us queue)", "shared-bus (10 us queue)",
                     "queue util @10 us"});
    for (std::uint32_t p : procs) {
      table.row().cell(static_cast<long>(p));
      table.cell(outcomes[index++].speedup, 2);
      for (auto access : {SimTime::us(3), SimTime::us(10)}) {
        sim::SharedBusConfig bus;
        bus.processors = p;
        bus.queue_access = access;
        bus.costs = sim::CostModel::zero_overhead();
        table.cell(sim::shared_bus_speedup(section.trace, bus), 2);
      }
      sim::SharedBusConfig bus;
      bus.processors = p;
      bus.queue_access = SimTime::us(10);
      bus.costs = sim::CostModel::zero_overhead();
      table.cell(
          sim::simulate_shared_bus(section.trace, bus).queue_utilization(),
          2);
    }
    std::cout << "\n" << section.label << ":\n";
    table.print(std::cout);
  }
  std::cout
      << "\nReading: at moderate scale the two designs track each other\n"
         "(the paper's observation).  As processors grow, the shared bus\n"
         "saturates its centralized queue (utilization -> 1) while the\n"
         "MPC mapping is limited by bucket distribution instead; the\n"
         "Tourney cross-product caps BOTH, since a single hash bucket\n"
         "must be accessed exclusively in either design.\n";
  return 0;
}
