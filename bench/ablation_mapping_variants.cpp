// Ablation over the paper's mapping design choices (Sections 3.1-3.2):
//
//  A. Processor pairs vs merged partitions at a fixed processor budget.
//     The pair overlaps token storage with opposite-bucket search, but
//     halves the partition count — the paper merges them on the 32-node
//     Nectar for exactly this utilization reason.
//  B. Broadcast-to-all vs dedicated constant-test processors.  With cheap
//     messages the dedicated processors are harmless; with expensive ones
//     they serialize root-token sends and become the bottleneck the paper
//     warns about.
//  C. Direct control-processor conflict set vs dedicated conflict-set
//     processors.
//  D. Termination-detection models (future work in the paper): what the
//     "free termination" assumption hides.
//
// Each block's grid fans out across worker threads (--jobs N) through the
// sweep engine; outcomes are consumed in scenario order, so the tables are
// identical for every jobs value.
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"

int main(int argc, char** argv) {
  using namespace mpps;
  const auto sections = core::standard_sections();
  const unsigned jobs = obs::jobs_arg(argc, argv);

  print_banner(std::cout,
               "A. Processor pairs vs merged, fixed processor budget "
               "(zero overheads)");
  {
    std::vector<core::SweepScenario> scenarios;
    for (const auto& section : sections) {
      for (std::uint32_t p : {8u, 16u, 32u}) {
        sim::SimConfig merged = bench::config_for(p, 0);
        sim::SimConfig paired = merged;
        paired.mapping = sim::MappingMode::ProcessorPairs;
        core::SweepScenario a;
        a.label = section.label + "/p" + std::to_string(p) + "/merged";
        a.trace = &section.trace;
        a.config = merged;
        a.assignment =
            sim::Assignment::round_robin(section.trace.num_buckets, p);
        core::SweepScenario b;
        b.label = section.label + "/p" + std::to_string(p) + "/pairs";
        b.trace = &section.trace;
        b.config = paired;
        b.assignment =
            sim::Assignment::round_robin(section.trace.num_buckets, p / 2);
        scenarios.push_back(std::move(a));
        scenarios.push_back(std::move(b));
      }
    }
    const auto outcomes = core::run_sweep(scenarios, jobs);
    TextTable table({"section", "procs", "merged", "pairs (procs/2 partitions)"});
    std::size_t index = 0;
    for (const auto& section : sections) {
      for (std::uint32_t p : {8u, 16u, 32u}) {
        table.row()
            .cell(section.label)
            .cell(static_cast<long>(p))
            .cell(outcomes[index].speedup, 2)
            .cell(outcomes[index + 1].speedup, 2);
        index += 2;
      }
    }
    table.print(std::cout);
  }

  print_banner(std::cout,
               "B. Constant-test processors vs broadcast-to-all "
               "(16 match processors)");
  {
    std::vector<core::SweepScenario> scenarios;
    for (const auto& section : sections) {
      for (int run : {1, 4}) {
        for (std::uint32_t ct : {0u, 1u, 2u, 4u}) {
          core::SweepScenario scenario;
          scenario.label = section.label + "/r" + std::to_string(run) +
                           "/ct" + std::to_string(ct);
          scenario.trace = &section.trace;
          scenario.config = bench::config_for(16, run);
          scenario.config.constant_test_processors = ct;
          scenario.assignment =
              sim::Assignment::round_robin(section.trace.num_buckets, 16);
          scenarios.push_back(std::move(scenario));
        }
      }
    }
    const auto outcomes = core::run_sweep(scenarios, jobs);
    TextTable table({"section", "overhead run", "broadcast", "1 CT proc",
                     "2 CT procs", "4 CT procs"});
    std::size_t index = 0;
    for (const auto& section : sections) {
      for (int run : {1, 4}) {
        table.row().cell(section.label).cell(static_cast<long>(run));
        for (int ct = 0; ct < 4; ++ct) {
          table.cell(outcomes[index++].speedup, 2);
        }
      }
    }
    table.print(std::cout);
  }

  print_banner(std::cout,
               "C. Conflict-set processors (16 match processors, run 4)");
  {
    std::vector<core::SweepScenario> scenarios;
    for (const auto& section : sections) {
      for (std::uint32_t cs : {0u, 2u, 4u}) {
        core::SweepScenario scenario;
        scenario.label = section.label + "/cs" + std::to_string(cs);
        scenario.trace = &section.trace;
        scenario.config = bench::config_for(16, 4);
        scenario.config.conflict_set_processors = cs;
        scenario.assignment =
            sim::Assignment::round_robin(section.trace.num_buckets, 16);
        scenarios.push_back(std::move(scenario));
      }
    }
    const auto outcomes = core::run_sweep(scenarios, jobs);
    TextTable table({"section", "control only", "2 CS procs", "4 CS procs"});
    std::size_t index = 0;
    for (const auto& section : sections) {
      table.row().cell(section.label);
      for (int cs = 0; cs < 3; ++cs) {
        table.cell(outcomes[index++].speedup, 2);
      }
    }
    table.print(std::cout);
  }

  print_banner(std::cout,
               "D. Termination detection models (16 processors, run 4)");
  {
    const auto models = {sim::TerminationModel::None,
                         sim::TerminationModel::AckCounting,
                         sim::TerminationModel::BarrierPoll};
    std::vector<core::SweepScenario> scenarios;
    for (const auto& section : sections) {
      for (auto model : models) {
        core::SweepScenario scenario;
        scenario.label = section.label + "/term" +
                         std::to_string(static_cast<int>(model));
        scenario.trace = &section.trace;
        scenario.config = bench::config_for(16, 4);
        scenario.config.termination = model;
        scenario.assignment =
            sim::Assignment::round_robin(section.trace.num_buckets, 16);
        scenarios.push_back(std::move(scenario));
      }
    }
    const auto outcomes = core::run_sweep(scenarios, jobs);
    TextTable table({"section", "free (paper)", "ack counting",
                     "barrier poll", "barrier overhead (us)"});
    std::size_t index = 0;
    for (const auto& section : sections) {
      table.row().cell(section.label);
      SimTime barrier_overhead{};
      for (auto model : models) {
        table.cell(outcomes[index].speedup, 2);
        if (model == sim::TerminationModel::BarrierPoll) {
          barrier_overhead = outcomes[index].result.termination_overhead;
        }
        ++index;
      }
      table.cell(barrier_overhead.micros(), 0);
    }
    table.print(std::cout);
  }
  return 0;
}
