// Ablation over the paper's mapping design choices (Sections 3.1-3.2):
//
//  A. Processor pairs vs merged partitions at a fixed processor budget.
//     The pair overlaps token storage with opposite-bucket search, but
//     halves the partition count — the paper merges them on the 32-node
//     Nectar for exactly this utilization reason.
//  B. Broadcast-to-all vs dedicated constant-test processors.  With cheap
//     messages the dedicated processors are harmless; with expensive ones
//     they serialize root-token sends and become the bottleneck the paper
//     warns about.
//  C. Direct control-processor conflict set vs dedicated conflict-set
//     processors.
//  D. Termination-detection models (future work in the paper): what the
//     "free termination" assumption hides.
#include <iostream>

#include "bench/bench_util.hpp"
#include "src/common/table.hpp"

int main() {
  using namespace mpps;
  const auto sections = core::standard_sections();

  print_banner(std::cout,
               "A. Processor pairs vs merged, fixed processor budget "
               "(zero overheads)");
  {
    TextTable table({"section", "procs", "merged", "pairs (procs/2 partitions)"});
    for (const auto& section : sections) {
      for (std::uint32_t p : {8u, 16u, 32u}) {
        sim::SimConfig merged = bench::config_for(p, 0);
        sim::SimConfig paired = merged;
        paired.mapping = sim::MappingMode::ProcessorPairs;
        table.row()
            .cell(section.label)
            .cell(static_cast<long>(p))
            .cell(sim::speedup(section.trace, merged,
                               sim::Assignment::round_robin(
                                   section.trace.num_buckets, p)),
                  2)
            .cell(sim::speedup(section.trace, paired,
                               sim::Assignment::round_robin(
                                   section.trace.num_buckets, p / 2)),
                  2);
      }
    }
    table.print(std::cout);
  }

  print_banner(std::cout,
               "B. Constant-test processors vs broadcast-to-all "
               "(16 match processors)");
  {
    TextTable table({"section", "overhead run", "broadcast", "1 CT proc",
                     "2 CT procs", "4 CT procs"});
    for (const auto& section : sections) {
      for (int run : {1, 4}) {
        table.row().cell(section.label).cell(static_cast<long>(run));
        for (std::uint32_t ct : {0u, 1u, 2u, 4u}) {
          sim::SimConfig config = bench::config_for(16, run);
          config.constant_test_processors = ct;
          table.cell(sim::speedup(section.trace, config,
                                  sim::Assignment::round_robin(
                                      section.trace.num_buckets, 16)),
                     2);
        }
      }
    }
    table.print(std::cout);
  }

  print_banner(std::cout,
               "C. Conflict-set processors (16 match processors, run 4)");
  {
    TextTable table({"section", "control only", "2 CS procs", "4 CS procs"});
    for (const auto& section : sections) {
      table.row().cell(section.label);
      for (std::uint32_t cs : {0u, 2u, 4u}) {
        sim::SimConfig config = bench::config_for(16, 4);
        config.conflict_set_processors = cs;
        table.cell(sim::speedup(section.trace, config,
                                sim::Assignment::round_robin(
                                    section.trace.num_buckets, 16)),
                   2);
      }
    }
    table.print(std::cout);
  }

  print_banner(std::cout,
               "D. Termination detection models (16 processors, run 4)");
  {
    TextTable table({"section", "free (paper)", "ack counting",
                     "barrier poll", "barrier overhead (us)"});
    for (const auto& section : sections) {
      table.row().cell(section.label);
      SimTime barrier_overhead{};
      for (auto model :
           {sim::TerminationModel::None, sim::TerminationModel::AckCounting,
            sim::TerminationModel::BarrierPoll}) {
        sim::SimConfig config = bench::config_for(16, 4);
        config.termination = model;
        const auto assignment =
            sim::Assignment::round_robin(section.trace.num_buckets, 16);
        table.cell(sim::speedup(section.trace, config, assignment), 2);
        if (model == sim::TerminationModel::BarrierPoll) {
          barrier_overhead =
              sim::simulate(section.trace, config, assignment)
                  .termination_overhead;
        }
      }
      table.cell(barrier_overhead.micros(), 0);
    }
    table.print(std::cout);
  }
  return 0;
}
