// The paper's speedup grid re-run per interconnection topology: the
// rubik / tourney / weaver sections under the Table 5-1 Run 2 cost model
// at {2, 8, 32} match processors, on the flat wire (the paper's
// machine), a 2-d mesh, a 2-d torus and a binary fat-tree, each with the
// per-hop latency set to the paper's 0.5 us wire latency.  This is the
// scenario axis the 1989 hardware could not explore: how much of the
// published speedup survives when remote messages pay hop-distance and
// uplink contention instead of one flat charge.
//
// Writes BENCH_topology.json so successive PRs leave a tracked
// trajectory (scripts/check_pct.py gates the *_pct and *_speedup fields).
//
// Usage:
//   topology_speedup [--smoke] [-o FILE]
//
// `--smoke` trims the processor grid; every configuration is still run
// (the numbers are simulated-model outputs, deterministic by
// construction, so there is nothing to warm up — but each configuration
// IS simulated twice and compared bit-for-bit as a determinism guard).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/assignment.hpp"
#include "src/sim/network.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"
#include "src/trace/synth.hpp"

namespace {

namespace sim = mpps::sim;

struct Row {
  std::string workload;
  std::string topology;
  std::string geometry;
  std::uint32_t procs = 0;
  double makespan_ms = 0.0;
  double speedup = 0.0;
  double network_busy_ms = 0.0;
  double contention_ms = 0.0;
  double avg_hops = 0.0;
  std::uint32_t max_hops = 0;
  double network_util_pct = 0.0;
};

std::string geometry_of(const sim::NetStats& net) {
  switch (net.kind) {
    case sim::NetKind::Constant:
      return "wire";
    case sim::NetKind::FatTree: {
      std::string out = "a";
      out += std::to_string(net.arity);
      out += " l";
      out += std::to_string(net.levels);
      return out;
    }
    default: {
      std::string out;
      for (const std::uint32_t d : net.dims) {
        if (!out.empty()) out += 'x';
        out += std::to_string(d);
      }
      return out;
    }
  }
}

Row measure(const std::string& workload, const mpps::trace::Trace& trace,
            std::uint32_t procs, const sim::NetworkConfig& net) {
  sim::SimConfig config;
  config.match_processors = procs;
  config.costs = sim::CostModel::paper_run(2);
  config.network = net;
  config.network.hop_latency = config.costs.wire_latency;
  const sim::Assignment assignment =
      sim::Assignment::round_robin(trace.num_buckets, config.partitions());

  const sim::SimResult result = sim::simulate(trace, config, assignment);
  const sim::SimResult again = sim::simulate(trace, config, assignment);
  if (result.makespan != again.makespan || !(result.net == again.net)) {
    std::cerr << "non-deterministic simulation on " << workload << " / "
              << config.network.describe() << " at " << procs << " procs\n";
    std::exit(1);
  }

  Row row;
  row.workload = workload;
  row.topology = sim::net_kind_name(result.net.kind);
  row.geometry = geometry_of(result.net);
  row.procs = procs;
  row.makespan_ms = static_cast<double>(result.makespan.nanos()) / 1e6;
  row.speedup = sim::speedup(trace, config, assignment);
  row.network_busy_ms = static_cast<double>(result.network_busy.nanos()) / 1e6;
  row.contention_ms = static_cast<double>(result.net.total_delay.nanos()) / 1e6;
  row.avg_hops = result.net.avg_hops();
  row.max_hops = result.net.max_hops();
  row.network_util_pct = 100.0 * result.network_utilization();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_topology.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: topology_speedup [--smoke] [-o FILE]\n";
      return 2;
    }
  }

  using mpps::trace::Trace;
  const std::vector<std::pair<std::string, Trace>> workloads = {
      {"rubik", mpps::trace::make_rubik_section(256, 1)},
      {"tourney", mpps::trace::make_tourney_section(256, 1)},
      {"weaver", mpps::trace::make_weaver_section(256, 1)},
  };
  const std::vector<std::uint32_t> proc_counts =
      smoke ? std::vector<std::uint32_t>{8}
            : std::vector<std::uint32_t>{2, 8, 32};

  std::vector<sim::NetworkConfig> topologies(4);
  topologies[0].kind = sim::NetKind::Constant;
  topologies[1].kind = sim::NetKind::Mesh;
  topologies[2].kind = sim::NetKind::Torus;
  topologies[3].kind = sim::NetKind::FatTree;  // auto geometry throughout

  std::vector<Row> rows;
  for (const auto& [name, trace] : workloads) {
    for (const std::uint32_t procs : proc_counts) {
      for (const sim::NetworkConfig& net : topologies) {
        Row row = measure(name, trace, procs, net);
        std::cout << row.workload << " @ " << row.procs << " procs on "
                  << row.topology << " (" << row.geometry
                  << "): speedup " << row.speedup << ", makespan "
                  << row.makespan_ms << " ms, contention "
                  << row.contention_ms << " ms\n";
        rows.push_back(std::move(row));
      }
    }
  }

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "cannot write '" << out_path << "'\n";
    return 1;
  }
  file << "{\n"
       << "  \"benchmark\": \"topology_speedup\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"cost_model\": \"table5_1_run2\",\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    file << "    {\"workload\": \"" << r.workload << "\", \"topology\": \""
         << r.topology << "\", \"geometry\": \"" << r.geometry
         << "\", \"procs\": " << r.procs
         << ", \"makespan_ms\": " << r.makespan_ms
         << ", \"net_speedup\": " << r.speedup
         << ", \"network_busy_ms\": " << r.network_busy_ms
         << ", \"contention_ms\": " << r.contention_ms
         << ", \"avg_hops\": " << r.avg_hops
         << ", \"max_hops\": " << r.max_hops
         << ", \"network_util_pct\": " << r.network_util_pct << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  file << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
