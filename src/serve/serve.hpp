// The multi-tenant serving engine: one long-lived Rete + ParallelEngine
// multiplexing many concurrent client sessions (docs/SERVING.md has the
// full execution model).
//
// Architecture, in one paragraph: every session is a tagged partition of
// working memory.  The engine compiles the rule base with
// `CompileOptions::partition_attr` set to a reserved attribute, stamps
// that attribute (= the session ordinal) onto every wme it admits, and
// namespaces wme timetags per session (engine id = ordinal << 40 |
// session-local id).  The implicit partition equality leads every beta
// node's hash key, so sessions shard across the paper's hashed-memory
// bucket space like tenants across a DHT — one session's tokens can
// never join another session's wmes, even for rules over shared symbols
// and even when bucket indices collide (`HashedMemory::find` compares
// full keys).  Clients talk to a bounded admission queue; a dispatcher
// thread coalesces queued transactions from DIFFERENT sessions into one
// fused BSP batch (`begin_batch`/`flush`), so concurrent tenants share
// each phase's barriers and merges the same way `max_batch` lets
// consecutive changes share them.  Conflict-set deltas are attributed
// back to the causing transaction through the session bits of their
// token wme ids — at most one transaction per session per batch keeps
// the attribution unambiguous.
//
// Threading: clients call Session::submit/transact from any thread; the
// dispatcher is the only thread that drives the ParallelEngine and the
// only writer of session/stat state (guarded by one mutex for the
// reader-facing parts).  Results travel back through per-transaction
// futures.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/ids.hpp"
#include "src/common/symbol.hpp"
#include "src/obs/metrics.hpp"
#include "src/ops5/ast.hpp"
#include "src/ops5/wme.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/conflict.hpp"
#include "src/rete/network.hpp"

namespace mpps::serve {

/// The reserved partition attribute the engine stamps on every admitted
/// wme.  Programs must not test or set it themselves.
[[nodiscard]] Symbol session_attr();

struct ServeOptions {
  /// The parallel match engine's knobs (threads, buckets, mailboxes,
  /// profiler...).  `schedule` must be null: serving is driven by real
  /// threads, not a model-checking controller.  `max_batch` is ignored —
  /// admission batching decides phase boundaries (one explicit
  /// transaction batch per fused phase).
  pmatch::ParallelOptions match;
  /// Rete compilation knobs; `partition_attr` is forced to
  /// `session_attr()` regardless of what it holds.
  rete::CompileOptions compile;
  /// Max transactions fused into one BSP phase (>= 1).  Only transactions
  /// from distinct sessions fuse; a session's own transactions always run
  /// in separate phases, in submission order.
  std::uint32_t admission_batch = 16;
  /// Bound on queued-but-unadmitted transactions; `submit` blocks (the
  /// closed-loop backpressure) while the queue is full.
  std::size_t queue_capacity = 256;
  /// Concurrently open sessions allowed (>= 1).
  std::uint32_t max_sessions = 1024;
  /// Optional metrics registry (not owned).  Adds the serve.* instruments
  /// (docs/SERVING.md) and, if `match.metrics` is unset, also routes the
  /// engine's rete.*/pmatch.* counters here.
  obs::Registry* metrics = nullptr;
  /// Upper bucket edges (microseconds) of the transaction-latency
  /// histogram; empty picks exponential 1us..~33s defaults.
  std::vector<std::int64_t> latency_bounds_us;
};

struct SessionOptions {
  /// Metrics label; "s<ordinal>" when empty.
  std::string label;
  /// Reject transactions that would push the session's live-wme count
  /// past this bound (0 = unbounded) — the lever soak setups use to keep
  /// RSS flat.
  std::size_t max_live_wmes = 0;
};

/// A buffered set of WM mutations submitted (and admitted) atomically:
/// all of a transaction's changes run in the same BSP phase.  Ids are
/// SESSION-LOCAL: `add` on a wme with an invalid id lets the engine
/// assign the next local id; a wme carrying an id keeps it (replay);
/// `remove` names a live local id.  Clients never see the namespaced
/// engine ids except inside `TxResult::fired` tokens.
class Transaction {
 public:
  Transaction& add(ops5::Wme wme) {
    ops_.push_back(Op{Op::Kind::Add, std::move(wme), 0});
    return *this;
  }
  Transaction& remove(WmeId local_id) {
    ops_.push_back(Op{Op::Kind::Remove, ops5::Wme{}, local_id.value()});
    return *this;
  }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

 private:
  friend class ServeEngine;
  struct Op {
    enum class Kind : std::uint8_t { Add, Remove };
    Kind kind = Kind::Add;
    ops5::Wme wme;           // Add
    std::uint64_t local = 0;  // Remove
  };
  std::vector<Op> ops_;
};

/// What one transaction did, as observed at its fused phase's merge.
struct TxResult {
  /// Session-local ids assigned to this transaction's adds, in op order.
  std::vector<WmeId> added;
  /// Instantiations this transaction's changes put INTO the conflict set
  /// (token wme ids are engine-namespaced; `ServeEngine::local_id`
  /// recovers the session-local timetags).
  std::vector<rete::Instantiation> fired;
  /// Instantiations it knocked OUT of the conflict set.
  std::uint64_t retracted = 0;
  /// Submit-to-completion wall latency.
  std::uint64_t latency_ns = 0;
  /// Engine phase the transaction ran in and how many transactions
  /// (across sessions) were fused into it.
  std::uint64_t phase = 0;
  std::uint32_t fused_transactions = 1;
};

class ServeEngine;

/// Client handle to one session.  Movable, not copyable; cheap.  Closing
/// is explicit — a dropped handle leaves the partition live (evictable
/// via `ServeEngine::evict`).
class Session {
 public:
  Session() = default;
  Session(Session&& o) noexcept : engine_(o.engine_), ordinal_(o.ordinal_) {
    o.engine_ = nullptr;
  }
  Session& operator=(Session&& o) noexcept {
    engine_ = o.engine_;
    ordinal_ = o.ordinal_;
    o.engine_ = nullptr;
    return *this;
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] std::uint32_t id() const { return ordinal_; }
  [[nodiscard]] bool valid() const { return engine_ != nullptr; }

  /// Queues a transaction; the future resolves when its phase completes.
  /// Blocks only for admission-queue space.  Throws mpps::RuntimeError if
  /// the session/engine is closed; per-transaction validation failures
  /// (unknown remove id, wm bound exceeded) surface as mpps::UsageError
  /// from the future.
  std::future<TxResult> submit(Transaction tx);
  /// submit + get: the closed-loop client call.
  TxResult transact(Transaction tx) { return submit(std::move(tx)).get(); }
  /// Replay convenience: a recorded WM-change stream (e.g. an act phase's
  /// `drain_changes`) as one transaction, ids preserved session-locally.
  TxResult transact(std::span<const ops5::WmeChange> changes);
  /// Retracts every live wme of the session and closes it (further
  /// submits throw).  Returns the retraction transaction's result.
  TxResult close();

 private:
  friend class ServeEngine;
  Session(ServeEngine* engine, std::uint32_t ordinal)
      : engine_(engine), ordinal_(ordinal) {}
  ServeEngine* engine_ = nullptr;
  std::uint32_t ordinal_ = 0;
};

/// Point-in-time serving counters (`ServeEngine::stats`).
struct ServeStats {
  std::uint64_t transactions = 0;  // completed (incl. rejected) txs
  std::uint64_t changes = 0;       // WM changes run through the engine
  std::uint64_t batches = 0;       // fused phases dispatched
  std::uint64_t activations = 0;   // conflict-set additions
  std::uint64_t retractions = 0;   // conflict-set removals
  std::uint64_t rejected = 0;      // txs failed validation at admission
  std::uint64_t max_queue_depth = 0;
  std::uint64_t max_fused = 0;     // largest transaction fan-in of a phase
  /// Conflict deltas whose token wmes named no admitted session, or more
  /// than one.  Any nonzero value means partition isolation broke; the
  /// adversarial suite pins this at 0.
  std::uint64_t cross_session_deltas = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;

  struct SessionInfo {
    std::uint32_t id = 0;
    std::string label;
    bool open = false;
    std::uint64_t live_wmes = 0;
    std::uint64_t transactions = 0;
    std::uint64_t activations = 0;
  };
  std::vector<SessionInfo> sessions;  // every session ever opened, by id
};

/// The latency/throughput summary of a serving run so far
/// (docs/SERVING.md, "Reading the latency report").
struct LatencyReport {
  std::uint64_t transactions = 0;
  std::uint64_t changes = 0;
  std::uint64_t activations = 0;
  double wall_s = 0.0;   // first submit -> last completion
  double p50_us = 0.0;   // histogram-bucket upper bounds
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
  double tx_per_s = 0.0;
  double changes_per_s = 0.0;
  double activations_per_s = 0.0;
};

/// The serving engine.  Owns the compiled network, the ParallelEngine and
/// the dispatcher thread; outlives every Session handle it issued.
class ServeEngine {
 public:
  /// Compiles `program` with partition isolation and starts serving.
  /// Throws mpps::UsageError on invalid options.
  explicit ServeEngine(const ops5::Program& program, ServeOptions options = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Opens a session (bounded by ServeOptions::max_sessions; throws
  /// mpps::RuntimeError at the bound or after shutdown).
  Session open_session(SessionOptions options = {});

  /// Owner-side forced close: the session stops accepting submits
  /// immediately; its live wmes are retracted when the eviction reaches
  /// the head of the queue.  `Session::close()` is the cooperative
  /// spelling of the same thing.
  std::future<TxResult> evict(std::uint32_t session_id);

  /// Drains the admission queue, stops the dispatcher and rejects further
  /// submits.  Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] LatencyReport latency_report() const;

  /// Snapshot of the engine's conflict set.  Only meaningful while no
  /// transaction is in flight (every issued future resolved): the
  /// dispatcher mutates the set outside the stats lock during a phase.
  [[nodiscard]] std::vector<rete::Instantiation> conflict_snapshot() const;

  [[nodiscard]] const rete::Network& network() const { return net_; }
  [[nodiscard]] std::uint32_t threads() const { return engine_->threads(); }

  /// Session/local split of a namespaced engine wme id.
  [[nodiscard]] static std::uint32_t session_of(WmeId id) {
    return static_cast<std::uint32_t>(id.value() >> kSessionShift);
  }
  [[nodiscard]] static WmeId local_id(WmeId id) {
    return WmeId{id.value() & ((std::uint64_t{1} << kSessionShift) - 1)};
  }

 private:
  friend class Session;
  static constexpr std::uint32_t kSessionShift = 40;
  static constexpr std::uint64_t kLocalMask =
      (std::uint64_t{1} << kSessionShift) - 1;

  struct SessionState {
    std::string label;
    bool open = true;
    bool closing = false;  // eviction queued; rejects new submits
    std::size_t max_live_wmes = 0;
    std::uint64_t next_local = 1;
    std::unordered_set<std::uint64_t> live;
    std::uint64_t transactions = 0;
    std::uint64_t activations = 0;
    obs::Gauge* wm_gauge = nullptr;
    obs::Counter* tx_counter = nullptr;
  };

  struct Pending {
    std::uint32_t ordinal = 0;
    bool close = false;
    Transaction tx;
    std::promise<TxResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// A Pending admitted into the current fused batch, resolved to engine
  /// changes.
  struct Admitted {
    Pending pending;
    TxResult result;
    std::size_t first_change = 0;  // offset into the fused change vector
    std::size_t change_count = 0;
  };

  std::future<TxResult> enqueue(std::uint32_t ordinal, Transaction tx,
                                bool close);
  void dispatcher_main();
  /// Pops <= admission_batch transactions, one per session, resolves them
  /// to stamped+namespaced changes (rejections settle their promise right
  /// here) and updates session liveness.  Caller holds mu_.
  std::vector<Admitted> admit(std::vector<ops5::WmeChange>& changes);
  /// Validates + builds one transaction's changes; throws UsageError.
  void resolve(SessionState& s, std::uint32_t ordinal, Pending& p,
               std::vector<ops5::WmeChange>& changes, Admitted& out);
  void complete(std::vector<Admitted>& batch, std::size_t change_count);

  ServeOptions options_;
  rete::Network net_;
  std::unique_ptr<pmatch::ParallelEngine> engine_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable space_cv_;
  std::deque<Pending> queue_;
  std::vector<SessionState> sessions_;
  bool stop_ = false;
  ServeStats counters_;  // sessions field unused; filled by stats()

  // Dispatcher-only (no lock): the delta hook appends here during flush.
  std::vector<std::pair<rete::Instantiation, bool>> phase_deltas_;

  obs::Histogram latency_hist_;
  bool saw_tx_ = false;
  std::chrono::steady_clock::time_point first_enqueue_;
  std::chrono::steady_clock::time_point last_complete_;

  obs::Histogram* latency_metric_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;
  obs::Gauge* sessions_gauge_ = nullptr;
  obs::Counter* tx_metric_ = nullptr;
  obs::Counter* activation_metric_ = nullptr;
  obs::Counter* retraction_metric_ = nullptr;
  obs::Counter* cross_metric_ = nullptr;

  std::thread dispatcher_;
};

}  // namespace mpps::serve
