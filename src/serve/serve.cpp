#include "src/serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace mpps::serve {

namespace {

constexpr char kSessionAttrText[] = "__mpps-session";

std::vector<std::int64_t> default_latency_bounds() {
  // 1us .. ~33.5s in powers of two: fine enough at the bottom for
  // in-memory matching, wide enough at the top for soak-length stalls.
  return obs::Histogram::exponential_bounds(1, 2.0, 26);
}

}  // namespace

Symbol session_attr() { return Symbol::intern(kSessionAttrText); }

ServeEngine::ServeEngine(const ops5::Program& program, ServeOptions options)
    : options_(std::move(options)),
      net_([&] {
        rete::CompileOptions copts = options_.compile;
        copts.partition_attr = session_attr();
        return rete::Network::compile(program, copts);
      }()),
      latency_hist_(options_.latency_bounds_us.empty()
                        ? default_latency_bounds()
                        : options_.latency_bounds_us) {
  if (options_.admission_batch == 0) {
    throw UsageError("ServeOptions: admission_batch must be positive");
  }
  if (options_.queue_capacity == 0) {
    throw UsageError("ServeOptions: queue_capacity must be positive");
  }
  if (options_.max_sessions == 0) {
    throw UsageError("ServeOptions: max_sessions must be positive");
  }
  if (options_.match.schedule != nullptr) {
    throw UsageError(
        "ServeOptions: match.schedule must be null (serving drives real "
        "threads, not a model-checking controller)");
  }
  // Phase boundaries are the admission batches; a max_batch chunk inside
  // one would split a transaction across phases.
  options_.match.max_batch = 0;
  if (options_.match.metrics == nullptr) {
    options_.match.metrics = options_.metrics;
  }
  engine_ =
      std::make_unique<pmatch::ParallelEngine>(net_, options_.match);
  engine_->conflict_set().set_delta_hook(
      [this](const rete::Instantiation& inst, bool added) {
        phase_deltas_.emplace_back(inst, added);
      });
  if (options_.metrics != nullptr) {
    obs::Registry& reg = *options_.metrics;
    latency_metric_ = &reg.histogram("serve.tx_latency_us",
                                     latency_hist_.bounds());
    queue_gauge_ = &reg.gauge("serve.queue_depth");
    sessions_gauge_ = &reg.gauge("serve.sessions_open");
    tx_metric_ = &reg.counter("serve.transactions");
    activation_metric_ = &reg.counter("serve.activations");
    retraction_metric_ = &reg.counter("serve.retractions");
    cross_metric_ = &reg.counter("serve.cross_session_deltas");
  }
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

ServeEngine::~ServeEngine() { shutdown(); }

void ServeEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Session ServeEngine::open_session(SessionOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) throw RuntimeError("ServeEngine: engine is shut down");
  std::uint64_t open_count = 0;
  for (const SessionState& s : sessions_) {
    if (s.open) ++open_count;
  }
  if (open_count >= options_.max_sessions) {
    throw RuntimeError("ServeEngine: session limit reached (" +
                       std::to_string(options_.max_sessions) +
                       " open; close or evict one first)");
  }
  const auto ordinal = static_cast<std::uint32_t>(sessions_.size());
  if (ordinal >= (std::uint32_t{1} << 24)) {
    throw RuntimeError("ServeEngine: session ordinal space exhausted");
  }
  SessionState state;
  state.label = options.label.empty() ? "s" + std::to_string(ordinal)
                                      : std::move(options.label);
  state.max_live_wmes = options.max_live_wmes;
  if (options_.metrics != nullptr) {
    obs::Registry& reg = *options_.metrics;
    state.wm_gauge =
        &reg.gauge("serve.session_wm", {{"session", state.label}});
    state.tx_counter =
        &reg.counter("serve.session_tx", {{"session", state.label}});
  }
  sessions_.push_back(std::move(state));
  ++counters_.sessions_opened;
  if (sessions_gauge_ != nullptr) sessions_gauge_->add(1);
  return Session(this, ordinal);
}

std::future<TxResult> ServeEngine::enqueue(std::uint32_t ordinal,
                                           Transaction tx, bool close) {
  Pending p;
  p.ordinal = ordinal;
  p.close = close;
  p.tx = std::move(tx);
  p.enqueued = std::chrono::steady_clock::now();
  std::future<TxResult> future = p.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (ordinal >= sessions_.size()) {
      throw RuntimeError("ServeEngine: unknown session " +
                         std::to_string(ordinal));
    }
    SessionState& s = sessions_[ordinal];
    if (stop_ || !s.open || (s.closing && !close)) {
      throw RuntimeError("ServeEngine: session " + std::to_string(ordinal) +
                         " is closed");
    }
    if (close) {
      if (s.closing) {
        throw RuntimeError("ServeEngine: session " + std::to_string(ordinal) +
                           " is already being closed");
      }
      s.closing = true;
    }
    space_cv_.wait(lock, [this] {
      return stop_ || queue_.size() < options_.queue_capacity;
    });
    if (stop_) {
      throw RuntimeError("ServeEngine: engine is shut down");
    }
    if (!saw_tx_) {
      saw_tx_ = true;
      first_enqueue_ = p.enqueued;
    }
    queue_.push_back(std::move(p));
    counters_.max_queue_depth =
        std::max(counters_.max_queue_depth,
                 static_cast<std::uint64_t>(queue_.size()));
    if (queue_gauge_ != nullptr) {
      queue_gauge_->set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  work_cv_.notify_one();
  return future;
}

std::future<TxResult> ServeEngine::evict(std::uint32_t session_id) {
  return enqueue(session_id, Transaction{}, /*close=*/true);
}

void ServeEngine::resolve(SessionState& s, std::uint32_t ordinal, Pending& p,
                          std::vector<ops5::WmeChange>& changes,
                          Admitted& out) {
  const std::string who = "session " + std::to_string(ordinal);
  // Pass 1: validate against the session's live set with this
  // transaction's own effects applied — add-then-remove inside one
  // transaction is legal, remove-then-remove is not.
  std::unordered_set<std::uint64_t> live = s.live;
  std::unordered_set<std::uint64_t> removed_in_tx;
  std::uint64_t next_local = s.next_local;
  std::vector<std::uint64_t> locals;  // per Add op, the id it gets
  if (p.close) {
    // Eviction: retract everything live, smallest timetag first (a
    // deterministic order so replays compare).
    std::vector<std::uint64_t> doomed(s.live.begin(), s.live.end());
    std::sort(doomed.begin(), doomed.end());
    Transaction retraction;
    for (std::uint64_t local : doomed) retraction.remove(WmeId{local});
    p.tx = std::move(retraction);
  }
  for (const Transaction::Op& op : p.tx.ops_) {
    if (op.kind == Transaction::Op::Kind::Add) {
      std::uint64_t local = 0;
      if (op.wme.id().valid()) {
        local = op.wme.id().value();
        if (local == 0 || local > kLocalMask) {
          throw UsageError("ServeEngine: " + who + ": wme id " +
                           std::to_string(local) +
                           " outside the 40-bit session-local id space");
        }
        if (live.contains(local)) {
          throw UsageError("ServeEngine: " + who + ": wme id " +
                           std::to_string(local) + " is already live");
        }
        if (removed_in_tx.contains(local)) {
          // The engine's per-phase wme table cannot hold two lifetimes of
          // one timetag in a single fused phase; OPS5 modify semantics
          // use a fresh timetag anyway.
          throw UsageError("ServeEngine: " + who + ": wme id " +
                           std::to_string(local) +
                           " re-added after a remove in the same "
                           "transaction (use a fresh id)");
        }
        next_local = std::max(next_local, local + 1);
      } else {
        local = next_local++;
      }
      live.insert(local);
      if (s.max_live_wmes != 0 && live.size() > s.max_live_wmes) {
        throw UsageError("ServeEngine: " + who + ": transaction exceeds the "
                         "session's max_live_wmes bound (" +
                         std::to_string(s.max_live_wmes) + ")");
      }
      locals.push_back(local);
    } else {
      if (op.local == 0 || op.local > kLocalMask ||
          !live.erase(op.local)) {
        throw UsageError("ServeEngine: " + who + ": remove of unknown wme id " +
                         std::to_string(op.local));
      }
      removed_in_tx.insert(op.local);
    }
  }
  // Pass 2: build the stamped, namespaced engine changes and commit the
  // liveness updates.
  const std::uint64_t base = std::uint64_t{ordinal} << kSessionShift;
  out.first_change = changes.size();
  // Local id -> index (into `changes`) of this transaction's own add, so
  // an add+remove pair fused into one phase carries matching content.
  std::unordered_map<std::uint64_t, std::size_t> tx_adds;
  std::size_t add_index = 0;
  for (const Transaction::Op& op : p.tx.ops_) {
    ops5::WmeChange change;
    if (op.kind == Transaction::Op::Kind::Add) {
      const std::uint64_t local = locals[add_index++];
      change.kind = ops5::WmeChange::Kind::Add;
      change.wme = op.wme;
      change.wme.set(session_attr(),
                     ops5::Value{static_cast<long>(ordinal)});
      change.wme.rebind_id(WmeId{base | local});
      out.result.added.push_back(WmeId{local});
      tx_adds[local] = changes.size();
    } else {
      change.kind = ops5::WmeChange::Kind::Delete;
      const WmeId engine_id{base | op.local};
      // Deletes carry full content: from this transaction's own add if
      // the wme never reached the engine, else from the engine's table.
      if (auto it = tx_adds.find(op.local); it != tx_adds.end()) {
        change.wme = changes[it->second].wme;
        tx_adds.erase(it);
      } else {
        change.wme = engine_->wme(engine_id);
        change.wme.rebind_id(engine_id);
      }
    }
    changes.push_back(std::move(change));
  }
  out.change_count = changes.size() - out.first_change;
  s.live = std::move(live);
  s.next_local = next_local;
  if (p.close) {
    s.open = false;
    ++counters_.sessions_closed;
    if (sessions_gauge_ != nullptr) sessions_gauge_->add(-1);
  }
}

std::vector<ServeEngine::Admitted> ServeEngine::admit(
    std::vector<ops5::WmeChange>& changes) {
  std::vector<Admitted> batch;
  std::unordered_set<std::uint32_t> taken;
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < options_.admission_batch;) {
    if (!taken.insert(it->ordinal).second) {
      ++it;  // one transaction per session per phase
      continue;
    }
    Admitted a;
    a.pending = std::move(*it);
    it = queue_.erase(it);
    SessionState& s = sessions_[a.pending.ordinal];
    try {
      resolve(s, a.pending.ordinal, a.pending, changes, a);
      batch.push_back(std::move(a));
    } catch (const UsageError&) {
      ++counters_.rejected;
      ++counters_.transactions;
      a.pending.promise.set_exception(std::current_exception());
    }
  }
  if (queue_gauge_ != nullptr) {
    queue_gauge_->set(static_cast<std::int64_t>(queue_.size()));
  }
  return batch;
}

void ServeEngine::dispatcher_main() {
  for (;;) {
    std::vector<ops5::WmeChange> changes;
    std::vector<Admitted> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      batch = admit(changes);
    }
    space_cv_.notify_all();
    if (batch.empty()) continue;

    // The fused BSP phase.  Only this thread drives the engine, so the
    // conflict-delta hook's appends to phase_deltas_ are unsynchronized
    // by design.
    phase_deltas_.clear();
    engine_->begin_batch();
    for (const ops5::WmeChange& change : changes) {
      engine_->process_change(change);
    }
    engine_->flush();

    {
      std::lock_guard<std::mutex> lock(mu_);
      complete(batch, changes.size());
    }
    const auto now = std::chrono::steady_clock::now();
    for (Admitted& a : batch) {
      a.result.latency_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - a.pending.enqueued)
              .count());
      latency_hist_.observe(
          static_cast<std::int64_t>(a.result.latency_ns / 1000));
      if (latency_metric_ != nullptr) {
        latency_metric_->observe(
            static_cast<std::int64_t>(a.result.latency_ns / 1000));
      }
      a.pending.promise.set_value(std::move(a.result));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      last_complete_ = now;
    }
  }
}

void ServeEngine::complete(std::vector<Admitted>& batch,
                           std::size_t change_count) {
  std::unordered_map<std::uint32_t, Admitted*> by_session;
  for (Admitted& a : batch) {
    by_session.emplace(a.pending.ordinal, &a);
    a.result.phase = engine_->phases();
    a.result.fused_transactions = static_cast<std::uint32_t>(batch.size());
  }
  for (auto& [inst, added] : phase_deltas_) {
    // Every wme of a token carries its session in the id's top bits; the
    // partition join test makes mixed tokens impossible, so any
    // disagreement (or a session outside this batch) is a leak.
    Admitted* owner = nullptr;
    bool leaked = inst.token.wmes.empty();
    for (std::size_t i = 0; i < inst.token.wmes.size(); ++i) {
      const std::uint32_t sid = session_of(inst.token.wmes[i]);
      if (i == 0) {
        auto it = by_session.find(sid);
        if (it == by_session.end()) {
          leaked = true;
          break;
        }
        owner = it->second;
      } else if (sid != session_of(inst.token.wmes[0])) {
        leaked = true;
        break;
      }
    }
    if (leaked || owner == nullptr) {
      ++counters_.cross_session_deltas;
      if (cross_metric_ != nullptr) cross_metric_->add(1);
      continue;
    }
    if (added) {
      owner->result.fired.push_back(inst);
      ++counters_.activations;
      sessions_[owner->pending.ordinal].activations += 1;
      if (activation_metric_ != nullptr) activation_metric_->add(1);
    } else {
      ++owner->result.retracted;
      ++counters_.retractions;
      if (retraction_metric_ != nullptr) retraction_metric_->add(1);
    }
  }
  phase_deltas_.clear();
  ++counters_.batches;
  counters_.changes += change_count;
  counters_.transactions += batch.size();
  counters_.max_fused =
      std::max(counters_.max_fused, static_cast<std::uint64_t>(batch.size()));
  if (tx_metric_ != nullptr) tx_metric_->add(batch.size());
  for (const Admitted& a : batch) {
    SessionState& s = sessions_[a.pending.ordinal];
    ++s.transactions;
    if (s.tx_counter != nullptr) s.tx_counter->add(1);
    if (s.wm_gauge != nullptr) {
      s.wm_gauge->set(static_cast<std::int64_t>(s.live.size()));
    }
  }
}

ServeStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats out = counters_;
  out.sessions.reserve(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const SessionState& s = sessions_[i];
    ServeStats::SessionInfo info;
    info.id = static_cast<std::uint32_t>(i);
    info.label = s.label;
    info.open = s.open;
    info.live_wmes = s.live.size();
    info.transactions = s.transactions;
    info.activations = s.activations;
    out.sessions.push_back(std::move(info));
  }
  return out;
}

LatencyReport ServeEngine::latency_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  LatencyReport r;
  r.transactions = counters_.transactions;
  r.changes = counters_.changes;
  r.activations = counters_.activations;
  if (latency_hist_.count() > 0) {
    r.p50_us = static_cast<double>(latency_hist_.quantile_bound(0.50));
    r.p95_us = static_cast<double>(latency_hist_.quantile_bound(0.95));
    r.p99_us = static_cast<double>(latency_hist_.quantile_bound(0.99));
    r.mean_us = latency_hist_.mean();
    r.max_us = static_cast<double>(latency_hist_.max());
  }
  if (saw_tx_ && last_complete_ > first_enqueue_) {
    r.wall_s = std::chrono::duration<double>(last_complete_ - first_enqueue_)
                   .count();
    r.tx_per_s = static_cast<double>(r.transactions) / r.wall_s;
    r.changes_per_s = static_cast<double>(r.changes) / r.wall_s;
    r.activations_per_s = static_cast<double>(r.activations) / r.wall_s;
  }
  return r;
}

std::vector<rete::Instantiation> ServeEngine::conflict_snapshot() const {
  return engine_->conflict_set().all();
}

std::future<TxResult> Session::submit(Transaction tx) {
  if (engine_ == nullptr) {
    throw RuntimeError("Session: handle is empty (moved-from or default)");
  }
  return engine_->enqueue(ordinal_, std::move(tx), /*close=*/false);
}

TxResult Session::transact(std::span<const ops5::WmeChange> changes) {
  Transaction tx;
  for (const ops5::WmeChange& change : changes) {
    if (change.kind == ops5::WmeChange::Kind::Add) {
      tx.add(change.wme);
    } else {
      tx.remove(change.wme.id());
    }
  }
  return transact(std::move(tx));
}

TxResult Session::close() {
  if (engine_ == nullptr) {
    throw RuntimeError("Session: handle is empty (moved-from or default)");
  }
  return engine_->evict(ordinal_).get();
}

}  // namespace mpps::serve
