#include "src/mc/schedule.hpp"

#include <charconv>

#include "src/common/error.hpp"

namespace mpps::mc {

std::string ScheduleId::to_string() const {
  if (choices.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i != 0) out += '.';
    out += std::to_string(choices[i]);
  }
  return out;
}

ScheduleId ScheduleId::parse(std::string_view text) {
  ScheduleId id;
  if (text == "-") return id;
  if (text.empty()) {
    throw RuntimeError(
        "malformed schedule ID '': expected dot-separated decimals (or '-' "
        "for the canonical schedule)");
  }
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view field =
        text.substr(start, dot == std::string_view::npos ? dot : dot - start);
    std::uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(field.data(), field.data() + field.size(), value);
    if (ec != std::errc{} || ptr != field.data() + field.size() ||
        field.empty()) {
      throw RuntimeError("malformed schedule ID '" + std::string(text) +
                         "': expected dot-separated decimals (or '-')");
    }
    id.choices.push_back(value);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return id;
}

std::uint32_t DfsChooser::choose(std::uint32_t n) {
  if (n <= 1) return 0;
  if (pos_ < stack_.size()) {
    Site& site = stack_[pos_];
    if (site.arity != n) {
      throw RuntimeError(
          "DfsChooser: the schedule tree is not deterministic (branch site " +
          std::to_string(pos_) + " had arity " + std::to_string(site.arity) +
          ", now " + std::to_string(n) + ")");
    }
    return stack_[pos_++].chosen;
  }
  stack_.push_back(Site{0, n});
  ++pos_;
  return 0;
}

ScheduleId DfsChooser::id() const {
  ScheduleId out;
  out.choices.reserve(stack_.size());
  for (const Site& site : stack_) out.choices.push_back(site.chosen);
  return out;
}

bool DfsChooser::advance() {
  while (!stack_.empty() && stack_.back().chosen + 1 >= stack_.back().arity) {
    stack_.pop_back();
  }
  if (stack_.empty()) return false;
  ++stack_.back().chosen;
  pos_ = 0;
  return true;
}

std::uint32_t RandomChooser::choose(std::uint32_t n) {
  if (n <= 1) return 0;
  std::uniform_int_distribution<std::uint32_t> dist(0, n - 1);
  const std::uint32_t pick = dist(rng_);
  taken_.choices.push_back(pick);
  return pick;
}

std::uint32_t ReplayChooser::choose(std::uint32_t n) {
  if (n <= 1) return 0;
  std::uint32_t pick = 0;
  if (pos_ < id_.choices.size()) {
    pick = id_.choices[pos_++];
    if (pick >= n) {
      throw RuntimeError("schedule ID " + id_.to_string() +
                         " does not fit this scenario: choice " +
                         std::to_string(pick) + " at a site with " +
                         std::to_string(n) + " alternatives");
    }
  }
  taken_.choices.push_back(pick);
  return pick;
}

}  // namespace mpps::mc
