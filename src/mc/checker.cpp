#include "src/mc/checker.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/common/error.hpp"
#include "src/ops5/parser.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/network.hpp"

namespace mpps::mc {

namespace {

/// Order-free conflict-set view: (production, wme ids), sorted.
using Flat = std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>>;

Flat flatten(const rete::ConflictSet& cs) {
  Flat out;
  for (const rete::Instantiation& inst : cs.all()) {
    std::vector<std::uint64_t> wmes;
    wmes.reserve(inst.token.wmes.size());
    for (WmeId w : inst.token.wmes) wmes.push_back(w.value());
    out.emplace_back(inst.production.value(), std::move(wmes));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string format_inst(const rete::Network& net, const Flat::value_type& e) {
  std::string out = net.production(ProductionId{e.first}).name + "(";
  for (std::size_t i = 0; i < e.second.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(e.second[i]);
  }
  out += ')';
  return out;
}

std::string describe_divergence(const rete::Network& net, const Flat& serial,
                                const Flat& parallel) {
  std::ostringstream os;
  os << "conflict set diverges from the serial engine:";
  int shown = 0;
  for (const auto& e : serial) {
    if (shown >= 4) break;
    if (!std::binary_search(parallel.begin(), parallel.end(), e)) {
      os << " missing " << format_inst(net, e);
      ++shown;
    }
  }
  for (const auto& e : parallel) {
    if (shown >= 4) break;
    if (!std::binary_search(serial.begin(), serial.end(), e)) {
      os << " extra " << format_inst(net, e);
      ++shown;
    }
  }
  os << " (serial " << serial.size() << " vs parallel " << parallel.size()
     << " instantiations)";
  return os.str();
}

/// Per-phase conflict sets of the serial oracle over the same script.
std::vector<Flat> serial_reference(const rete::Network& net,
                                   const Scenario& s) {
  rete::Engine engine(net);
  std::vector<Flat> ref;
  ref.reserve(s.phases.size());
  for (const auto& phase : s.phases) {
    for (const ops5::WmeChange& change : phase) engine.process_change(change);
    ref.push_back(flatten(engine.conflict_set()));
  }
  return ref;
}

/// One schedule-controlled run, compared phase by phase.
std::optional<Mismatch> run_one(const rete::Network& net, const Scenario& s,
                                std::span<const Flat> ref, Chooser& chooser,
                                Fault fault, PorStats* stats) {
  PorController controller(chooser, fault);
  pmatch::ParallelOptions popt;
  popt.threads = s.threads;
  popt.num_buckets = s.buckets;
  popt.max_batch = 0;  // one phase per script phase, however many changes
  popt.schedule = &controller;
  pmatch::ParallelEngine engine(net, popt);
  std::optional<Mismatch> mismatch;
  for (std::size_t p = 0; p < s.phases.size(); ++p) {
    engine.process_changes(s.phases[p]);
    const Flat flat = flatten(engine.conflict_set());
    if (flat != ref[p]) {
      mismatch = Mismatch{p, describe_divergence(net, ref[p], flat)};
      break;
    }
  }
  if (stats != nullptr) *stats = controller.stats();
  return mismatch;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t n) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (n + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

ScenarioReport check_scenario(const Scenario& scenario,
                              const CheckOptions& options) {
  ScenarioReport report;
  report.name = scenario.name;
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(scenario.program));
  const std::vector<Flat> ref = serial_reference(net, scenario);

  auto record = [&](const PorStats& stats) {
    ++report.explored;
    if (report.explored == 1) {
      report.naive = stats.naive_schedules;
      report.naive_saturated = stats.naive_saturated;
    }
    report.branch_sites += stats.branch_sites;
    report.sleep_skips += stats.sleep_skips;
  };

  switch (options.mode) {
    case CheckOptions::Mode::Exhaustive: {
      DfsChooser dfs;
      while (true) {
        PorStats stats;
        const auto mismatch =
            run_one(net, scenario, ref, dfs, options.fault, &stats);
        record(stats);
        if (mismatch.has_value()) {
          report.failures.push_back(ScheduleFailure{dfs.id(), *mismatch});
          break;
        }
        if (!dfs.advance()) break;
        if (report.explored >= options.max_schedules) {
          report.truncated = true;
          break;
        }
      }
      break;
    }
    case CheckOptions::Mode::Random: {
      for (std::uint64_t n = 0; n < options.schedules; ++n) {
        RandomChooser random(mix_seed(options.seed, n));
        PorStats stats;
        const auto mismatch =
            run_one(net, scenario, ref, random, options.fault, &stats);
        record(stats);
        if (mismatch.has_value()) {
          report.failures.push_back(ScheduleFailure{random.id(), *mismatch});
          break;
        }
      }
      break;
    }
    case CheckOptions::Mode::Replay: {
      ReplayChooser replay(options.replay);
      PorStats stats;
      const auto mismatch =
          run_one(net, scenario, ref, replay, options.fault, &stats);
      record(stats);
      if (mismatch.has_value()) {
        report.failures.push_back(ScheduleFailure{replay.id(), *mismatch});
      }
      break;
    }
  }

  if (!report.failures.empty() && options.shrink) {
    report.minimized = shrink(scenario, options, &report.shrink_steps);
  }
  return report;
}

CheckReport check_corpus(std::span<const Scenario> corpus,
                         const CheckOptions& options) {
  CheckReport report;
  report.scenarios.reserve(corpus.size());
  for (const Scenario& scenario : corpus) {
    report.scenarios.push_back(check_scenario(scenario, options));
  }
  if (options.metrics != nullptr) {
    obs::Registry& reg = *options.metrics;
    std::uint64_t explored = 0;
    std::uint64_t pruned = 0;
    std::uint64_t branch_sites = 0;
    std::uint64_t sleep_skips = 0;
    std::uint64_t failures = 0;
    for (const ScenarioReport& s : report.scenarios) {
      explored += s.explored;
      pruned += s.pruned();
      branch_sites += s.branch_sites;
      sleep_skips += s.sleep_skips;
      failures += s.failures.size();
    }
    reg.counter("mc.scenarios").add(report.scenarios.size());
    reg.counter("mc.schedules_explored").add(explored);
    reg.counter("mc.schedules_pruned").add(pruned);
    reg.counter("mc.branch_sites").add(branch_sites);
    reg.counter("mc.sleep_skips").add(sleep_skips);
    reg.counter("mc.failures").add(failures);
  }
  return report;
}

std::optional<Mismatch> run_schedule(const Scenario& scenario,
                                     const ScheduleId& id, Fault fault,
                                     ScheduleId* executed) {
  const rete::Network net =
      rete::Network::compile(ops5::parse_program(scenario.program));
  const std::vector<Flat> ref = serial_reference(net, scenario);
  ReplayChooser replay(id);
  const auto mismatch = run_one(net, scenario, ref, replay, fault, nullptr);
  if (executed != nullptr) *executed = replay.id();
  return mismatch;
}

Scenario shrink(const Scenario& failing, const CheckOptions& options,
                std::uint64_t* steps) {
  std::uint64_t tried = 0;
  auto still_fails = [&](const Scenario& candidate) {
    ++tried;
    if (candidate.change_count() == 0) return false;
    CheckOptions opt = options;
    opt.shrink = false;
    opt.metrics = nullptr;
    opt.max_schedules = std::min<std::uint64_t>(opt.max_schedules, 4096);
    try {
      return !check_scenario(candidate, opt).failures.empty();
    } catch (...) {
      // A candidate edit can orphan a delete (its add dropped) and make
      // the engines throw — that is not the failure being minimized.
      return false;
    }
  };

  Scenario best = failing;
  bool improved = true;
  while (improved) {
    improved = false;
    // Drop whole phases.
    for (std::size_t p = 0; p < best.phases.size();) {
      Scenario candidate = best;
      candidate.phases.erase(candidate.phases.begin() +
                             static_cast<std::ptrdiff_t>(p));
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
      } else {
        ++p;
      }
    }
    // Drop individual changes.
    for (std::size_t p = 0; p < best.phases.size(); ++p) {
      for (std::size_t c = 0; c < best.phases[p].size();) {
        Scenario candidate = best;
        candidate.phases[p].erase(candidate.phases[p].begin() +
                                  static_cast<std::ptrdiff_t>(c));
        if (still_fails(candidate)) {
          best = std::move(candidate);
          improved = true;
        } else {
          ++c;
        }
      }
    }
    // Phases emptied by change-dropping are no-ops; drop them outright.
    std::erase_if(best.phases,
                  [](const std::vector<ops5::WmeChange>& phase) {
                    return phase.empty();
                  });
    // Fewer workers, if the failure survives.
    while (best.threads > 1) {
      Scenario candidate = best;
      candidate.threads = best.threads - 1;
      if (!still_fails(candidate)) break;
      best = std::move(candidate);
      improved = true;
    }
  }
  if (steps != nullptr) *steps = tried;
  return best;
}

void print_report(const CheckReport& report, std::ostream& out) {
  std::uint64_t explored = 0;
  for (const ScenarioReport& s : report.scenarios) explored += s.explored;
  out << "model check: " << report.scenarios.size() << " scenario"
      << (report.scenarios.size() == 1 ? "" : "s") << ", " << explored
      << " schedule" << (explored == 1 ? "" : "s") << " explored\n";
  for (const ScenarioReport& s : report.scenarios) {
    out << "  " << s.name << ": explored " << s.explored << ", naive "
        << s.naive << (s.naive_saturated ? "+" : "") << ", pruned "
        << s.pruned() << ", branch sites " << s.branch_sites
        << ", sleep skips " << s.sleep_skips;
    if (!s.failures.empty()) {
      out << "  FAIL\n";
      for (const ScheduleFailure& f : s.failures) {
        out << "    schedule " << f.schedule.to_string() << " phase "
            << f.mismatch.phase << ": " << f.mismatch.detail << "\n";
        out << "    replay: mpps check --scenario " << s.name << " --replay "
            << f.schedule.to_string() << "\n";
      }
      if (s.minimized.has_value()) {
        out << "    minimized repro: " << s.minimized->phases.size()
            << " phase" << (s.minimized->phases.size() == 1 ? "" : "s")
            << " / " << s.minimized->change_count() << " change"
            << (s.minimized->change_count() == 1 ? "" : "s") << " at "
            << s.minimized->threads << " thread"
            << (s.minimized->threads == 1 ? "" : "s") << " ("
            << s.shrink_steps << " shrink candidates tried)\n";
      }
    } else if (s.truncated) {
      out << "  TRUNCATED (schedule space exceeds --max-schedules)\n";
    } else {
      out << "  OK\n";
    }
  }
}

}  // namespace mpps::mc
