// The partial-order-reducing schedule controller: the bridge between the
// engine's scheduler seam and a Chooser.
//
// Dependence relation.  Two operations of one round conflict only when
// they land in the same dependence class (`ScheduledOp::bucket`): a
// worker's per-bucket memories are disjoint, so cross-bucket operations
// commute and their relative order is never explored — classes are
// processed in ascending class id (the canonical representative of every
// Mazurkiewicz trace that only differs across classes).  Within a class,
// the controller enumerates the FIFO-respecting interleavings of the
// per-sender streams: per-sender order is load-bearing (a delete
// overtaking its own add is a genuinely different outcome), cross-sender
// order is the scheduler freedom being model-checked.
//
// Sleep-set pruning.  When two candidate streams head with operations of
// identical content (`op_hash`), running either first reaches the same
// state — the controller keeps only the first such candidate and counts
// the collapsed ones in `PorStats::sleep_skips`.
//
// Naive baseline.  For every decision span the controller also counts the
// schedules a reduction-free enumerator would visit — the full multinomial
// interleaving count of the per-sender streams, ignoring bucket
// independence — and accumulates their product (saturating at 2^64-1)
// into `PorStats::naive_schedules`.  explored-vs-naive is the measure of
// how much POR bought.
//
// Fault injection.  Mirroring the selfcheck driver's planted faults, the
// controller can deliberately return harmful orders so the checker can
// prove it detects real bugs: `Fault::DrainFifo` reverses every sender's
// round stream (deletes overtake adds), `Fault::MergeOrder` reverses
// every worker's conflict-delta stream inside the round merge (the
// remove of a fused add+delete pair applies before its add).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/mc/schedule.hpp"
#include "src/pmatch/schedule.hpp"

namespace mpps::mc {

enum class Fault : std::uint8_t { None, MergeOrder, DrainFifo };

/// Parses none|merge-order|drain-fifo; throws mpps::RuntimeError.
Fault parse_fault(std::string_view name);
[[nodiscard]] const char* to_string(Fault fault);

struct PorStats {
  std::uint64_t branch_sites = 0;     // choose() sites with >1 alternative
  std::uint64_t sleep_skips = 0;      // identical-head candidates collapsed
  std::uint64_t naive_schedules = 1;  // reduction-free count (saturating)
  bool naive_saturated = false;
};

class PorController final : public pmatch::ScheduleControl {
 public:
  explicit PorController(Chooser& chooser, Fault fault = Fault::None)
      : chooser_(chooser), fault_(fault) {}

  void order_round(std::uint32_t worker, std::uint32_t round,
                   std::span<const pmatch::ScheduledOp> ops,
                   std::vector<std::uint32_t>& order) override;
  void order_merge(std::uint32_t round,
                   std::span<const pmatch::ScheduledOp> ops,
                   std::vector<std::uint32_t>& order) override;

  [[nodiscard]] const PorStats& stats() const { return stats_; }

 private:
  void interleave(std::span<const pmatch::ScheduledOp> ops,
                  bool reverse_streams, std::vector<std::uint32_t>& order);

  Chooser& chooser_;
  Fault fault_;
  PorStats stats_;
};

}  // namespace mpps::mc
