// Schedule identities and decision sources for the pmatch model checker.
//
// A *schedule* is one complete resolution of every ordering decision the
// engine's scheduler seam exposes during a run (src/pmatch/schedule.hpp).
// The checker identifies a schedule by the choices taken at *branch
// sites* only — decision points that actually offered more than one
// alternative.  Sites with a single admissible alternative are not
// recorded: they carry no information, and leaving them out makes IDs
// stable under partial-order reduction (a pruned site simply never
// appears).  The printable form is dot-separated decimals ("0.2.1"), or
// "-" for the canonical schedule that never faced a branch.
//
// Replaying an ID whose recorded choices run out before the run does is
// legal and continues canonically (choice 0 everywhere) — DFS IDs are
// prefixes by construction.  A recorded choice that is out of range for
// its site is an error: the ID belongs to a different scenario.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

namespace mpps::mc {

/// A replayable schedule identity: the branch-site choices, in order.
struct ScheduleId {
  std::vector<std::uint32_t> choices;

  [[nodiscard]] std::string to_string() const;
  /// Parses the printable form; throws mpps::RuntimeError on junk.
  static ScheduleId parse(std::string_view text);

  friend bool operator==(const ScheduleId&, const ScheduleId&) = default;
};

/// A source of ordering decisions.  `choose(n)` picks one of n >= 1
/// alternatives; sites with n == 1 return 0 without recording anything.
class Chooser {
 public:
  virtual ~Chooser() = default;
  virtual std::uint32_t choose(std::uint32_t n) = 0;
  /// The branch choices taken so far — the (partial) schedule ID.
  [[nodiscard]] virtual ScheduleId id() const = 0;
};

/// Depth-first enumeration of the whole schedule tree.  Run a schedule,
/// call `advance()`, rerun from scratch: the chooser replays the common
/// prefix and takes the next untried alternative at the deepest
/// non-exhausted site.  `advance()` returns false once every schedule has
/// been explored.
class DfsChooser final : public Chooser {
 public:
  std::uint32_t choose(std::uint32_t n) override;
  [[nodiscard]] ScheduleId id() const override;
  bool advance();

 private:
  struct Site {
    std::uint32_t chosen = 0;
    std::uint32_t arity = 1;
  };
  std::vector<Site> stack_;
  std::size_t pos_ = 0;  // replay cursor within the current run
};

/// Uniformly random decisions from a fixed seed; the taken choices are
/// recorded so any fuzzed schedule prints a replayable ID.
class RandomChooser final : public Chooser {
 public:
  explicit RandomChooser(std::uint64_t seed) : rng_(seed) {}
  std::uint32_t choose(std::uint32_t n) override;
  [[nodiscard]] ScheduleId id() const override { return taken_; }

 private:
  std::mt19937_64 rng_;
  ScheduleId taken_;
};

/// Replays a recorded ScheduleId (see the header comment for the
/// exhaustion and range rules).
class ReplayChooser final : public Chooser {
 public:
  explicit ReplayChooser(ScheduleId id) : id_(std::move(id)) {}
  std::uint32_t choose(std::uint32_t n) override;
  [[nodiscard]] ScheduleId id() const override { return taken_; }

 private:
  ScheduleId id_;
  ScheduleId taken_;
  std::size_t pos_ = 0;
};

}  // namespace mpps::mc
