#include <utility>

#include "src/common/symbol.hpp"
#include "src/mc/scenario.hpp"
#include "src/ops5/value.hpp"

namespace mpps::mc {

namespace {

/// Script builder: stages adds/deletes through a real WorkingMemory so
/// the recorded WmeChanges carry proper timetags, then snapshots each
/// phase with `end_phase`.
class Script {
 public:
  WmeId add(std::string_view cls,
            std::vector<std::pair<std::string_view, ops5::Value>> attrs) {
    std::vector<std::pair<Symbol, ops5::Value>> named;
    named.reserve(attrs.size());
    for (auto& [attr, value] : attrs) {
      named.emplace_back(Symbol::intern(attr), value);
    }
    return wm_.add(ops5::Wme(Symbol::intern(cls), std::move(named)));
  }

  void del(WmeId id) { wm_.remove(id); }

  void end_phase(Scenario& s) { s.phases.push_back(wm_.drain_changes()); }

 private:
  ops5::WorkingMemory wm_;
};

ops5::Value num(long v) { return ops5::Value(v); }
ops5::Value sym(std::string_view s) { return ops5::Value::sym(s); }

/// Fused add+delete of the same wme inside one phase.  The +/- of the
/// instantiation it transiently creates travel as one sender's FIFO pair
/// into the second join and as an ordered delta pair into the round
/// merge — exactly what the drain-fifo and merge-order planted faults
/// break, so this is the entry the CI must-fail gate runs.
Scenario fused_add_delete() {
  Scenario s;
  s.name = "fused-add-delete";
  s.description =
      "add+delete of one wme fused into a single phase; the transient "
      "instantiation's +/- pair must stay in FIFO order";
  s.program =
      "(p pair (a ^k <x>) (b ^k <x>) (ctx ^tag on) --> (remove 1))\n";
  Script script;
  script.add("ctx", {{"tag", sym("on")}});
  script.end_phase(s);
  const WmeId a = script.add("a", {{"k", num(1)}});
  script.add("b", {{"k", num(1)}});
  script.del(a);
  script.end_phase(s);
  return s;
}

/// Two workers concurrently send fresh join children into one shared
/// second-level bucket (+/+): every interleaving must yield the same
/// three instantiations.
Scenario send_send() {
  Scenario s;
  s.name = "send-send";
  s.description =
      "two senders race +tokens into one second-level join bucket";
  s.program =
      "(p pair (a ^k <x>) (b ^k <x>) (ctx ^tag on) --> (remove 1))\n";
  Script script;
  script.add("ctx", {{"tag", sym("on")}});
  script.end_phase(s);
  for (long k = 1; k <= 3; ++k) {
    script.add("a", {{"k", num(k)}});
    script.add("b", {{"k", num(k)}});
  }
  script.end_phase(s);
  return s;
}

/// A -token from one worker races a +token from another into the same
/// bucket: the orders are NOT step-wise equivalent (one creates a
/// transient pair, the other does not) but must be confluent for the
/// final conflict set.
Scenario send_delete() {
  Scenario s;
  s.name = "send-delete";
  s.description =
      "a delete's -token races another worker's +token into one bucket";
  s.program =
      "(p pair (a ^k <x>) (b ^k <x>) (ctx ^tag on) --> (remove 1))\n";
  Script script;
  script.add("ctx", {{"tag", sym("on")}});
  const WmeId a1 = script.add("a", {{"k", num(1)}});
  script.add("b", {{"k", num(1)}});
  script.end_phase(s);
  script.del(a1);
  script.add("a", {{"k", num(2)}});
  script.add("b", {{"k", num(2)}});
  script.end_phase(s);
  return s;
}

/// Second-level join keyed on its own variable: round-1 items spread over
/// several destination buckets, so the naive interleaving count (which
/// ignores bucket independence) exceeds what POR explores.
Scenario two_keys() {
  Scenario s;
  s.name = "two-keys";
  s.description =
      "round-1 traffic split across independent buckets: POR prunes the "
      "cross-bucket orders";
  s.program =
      "(p chain (a ^k <x>) (b ^k <x> ^m <y>) (c ^m <y>) --> (remove 1))\n";
  Script script;
  script.add("c", {{"m", num(1)}});
  script.add("c", {{"m", num(2)}});
  script.end_phase(s);
  for (long k = 1; k <= 4; ++k) {
    script.add("a", {{"k", num(k)}});
    script.add("b", {{"k", num(k)}, {"m", num(1 + k % 2)}});
  }
  script.end_phase(s);
  return s;
}

/// Negated second CE with deletes flipping the negation count: covers the
/// negative-node paths under controlled execution (the races here are
/// sequenced by the round structure; the entry guards semantics, not
/// interleavings).
Scenario negated() {
  Scenario s;
  s.name = "negated";
  s.description =
      "negation count flips via deletes; exercises negative-node "
      "controlled execution";
  s.program =
      "(p lone (a ^k <x>) (ctx ^tag on) - (blocker ^v <x>) -->"
      " (remove 1))\n";
  Script script;
  script.add("ctx", {{"tag", sym("on")}});
  const WmeId blocker = script.add("blocker", {{"v", num(1)}});
  script.end_phase(s);
  script.add("a", {{"k", num(1)}});
  script.add("a", {{"k", num(2)}});
  script.end_phase(s);
  script.del(blocker);
  script.end_phase(s);
  return s;
}

}  // namespace

std::vector<Scenario> builtin_corpus() {
  std::vector<Scenario> corpus;
  corpus.push_back(fused_add_delete());
  corpus.push_back(send_send());
  corpus.push_back(send_delete());
  corpus.push_back(two_keys());
  corpus.push_back(negated());
  return corpus;
}

const Scenario* find_scenario(std::span<const Scenario> corpus,
                              std::string_view name) {
  for (const Scenario& s : corpus) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace mpps::mc
