#include "src/mc/controller.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <string>

#include "src/common/error.hpp"

namespace mpps::mc {

namespace {

constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b, bool* saturated) {
  if (a != 0 && b > kSat / a) {
    *saturated = true;
    return kSat;
  }
  return a * b;
}

/// Number of interleavings of streams with the given sizes that keep each
/// stream's internal order: the multinomial (sum n_i)! / prod(n_i!),
/// computed as a product of binomials, saturating.
std::uint64_t interleaving_count(const std::vector<std::uint64_t>& sizes,
                                 bool* saturated) {
  // After placing k items of the current stream among `placed` total, the
  // running product equals the multinomial of (done streams..., k) — an
  // integer at every step, so the division below is exact.
  std::uint64_t placed = 0;
  std::uint64_t count = 1;
  for (std::uint64_t n : sizes) {
    for (std::uint64_t k = 1; k <= n; ++k) {
      ++placed;
      if (count > kSat / placed) {
        *saturated = true;
        return kSat;
      }
      count = count * placed / k;
    }
  }
  return count;
}

}  // namespace

Fault parse_fault(std::string_view name) {
  if (name == "none") return Fault::None;
  if (name == "merge-order") return Fault::MergeOrder;
  if (name == "drain-fifo") return Fault::DrainFifo;
  throw RuntimeError("unknown fault '" + std::string(name) +
                     "' (expected none, merge-order or drain-fifo)");
}

const char* to_string(Fault fault) {
  switch (fault) {
    case Fault::MergeOrder:
      return "merge-order";
    case Fault::DrainFifo:
      return "drain-fifo";
    case Fault::None:
    default:
      return "none";
  }
}

void PorController::interleave(std::span<const pmatch::ScheduledOp> ops,
                               bool reverse_streams,
                               std::vector<std::uint32_t>& order) {
  order.clear();
  order.reserve(ops.size());

  // Naive baseline: FIFO-respecting interleavings of the per-sender
  // streams over the WHOLE span (no bucket independence).
  {
    std::map<std::uint32_t, std::uint64_t> sender_sizes;
    for (const pmatch::ScheduledOp& op : ops) ++sender_sizes[op.sender];
    std::vector<std::uint64_t> sizes;
    sizes.reserve(sender_sizes.size());
    for (const auto& [sender, n] : sender_sizes) sizes.push_back(n);
    bool saturated = false;
    const std::uint64_t naive = interleaving_count(sizes, &saturated);
    stats_.naive_schedules =
        sat_mul(stats_.naive_schedules, naive, &stats_.naive_saturated);
    if (saturated) stats_.naive_saturated = true;
  }

  // Dependence classes in ascending class id; within a class, per-sender
  // FIFO queues in ascending sender id.
  std::map<std::uint32_t, std::map<std::uint32_t, std::vector<std::uint32_t>>>
      classes;
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    classes[ops[i].bucket][ops[i].sender].push_back(i);
  }
  std::vector<std::uint32_t> heads;  // candidate senders at this step
  for (auto& [cls, streams] : classes) {
    if (reverse_streams) {
      for (auto& [sender, queue] : streams) {
        std::reverse(queue.begin(), queue.end());
      }
    }
    std::map<std::uint32_t, std::size_t> cursor;
    std::size_t remaining = 0;
    for (const auto& [sender, queue] : streams) remaining += queue.size();
    while (remaining > 0) {
      heads.clear();
      for (const auto& [sender, queue] : streams) {
        if (cursor[sender] >= queue.size()) continue;
        const std::uint64_t head_hash = ops[queue[cursor[sender]]].op_hash;
        bool duplicate = false;
        for (std::uint32_t other : heads) {
          if (ops[streams[other][cursor[other]]].op_hash == head_hash) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) {
          // Sleep-set pruning: an identical operation is pending on an
          // earlier candidate stream; taking this one first reaches the
          // same state, so the alternative is not offered.
          ++stats_.sleep_skips;
          continue;
        }
        heads.push_back(sender);
      }
      // The first non-empty stream is always accepted (it has no earlier
      // candidate to duplicate), so `heads` is never empty here.
      if (heads.size() > 1) ++stats_.branch_sites;
      const std::uint32_t pick =
          heads[chooser_.choose(static_cast<std::uint32_t>(heads.size()))];
      order.push_back(streams[pick][cursor[pick]++]);
      --remaining;
    }
  }
}

void PorController::order_round(std::uint32_t worker, std::uint32_t round,
                                std::span<const pmatch::ScheduledOp> ops,
                                std::vector<std::uint32_t>& order) {
  (void)worker;
  (void)round;
  interleave(ops, fault_ == Fault::DrainFifo, order);
}

void PorController::order_merge(std::uint32_t round,
                                std::span<const pmatch::ScheduledOp> ops,
                                std::vector<std::uint32_t>& order) {
  (void)round;
  interleave(ops, fault_ == Fault::MergeOrder, order);
}

}  // namespace mpps::mc
