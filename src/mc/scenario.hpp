// Model-checking scenarios: a tiny production system plus a scripted
// sequence of working-memory phases.  Each phase is fed to the engine
// under test as ONE fused batch (`max_batch = 0`), so every cross-sender
// race the script sets up actually lands inside a single BSP phase where
// the scheduler has freedom; the serial `rete::Engine` processes the same
// changes one at a time and its conflict set after each phase is the
// oracle.
//
// The built-in corpus is hand-minimized around the races the BSP engine
// can actually exhibit — cross-bucket send/send, send/delete, fused
// add+delete pairs, negated joins — with deliberately tiny bucket counts
// so traffic crosses workers (docs/TESTING.md walks through each entry).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/ops5/wme.hpp"

namespace mpps::mc {

struct Scenario {
  std::string name;
  std::string description;
  /// OPS5 source of the rule base (LHS matching is all that runs; the
  /// RHS never fires inside the checker).
  std::string program;
  /// WM-change phases; each inner vector runs as one fused BSP phase.
  std::vector<std::vector<ops5::WmeChange>> phases;
  std::uint32_t threads = 2;
  std::uint32_t buckets = 4;

  [[nodiscard]] std::size_t change_count() const {
    std::size_t n = 0;
    for (const auto& phase : phases) n += phase.size();
    return n;
  }
};

/// The hand-built race corpus (see the header comment).
[[nodiscard]] std::vector<Scenario> builtin_corpus();

/// Finds a scenario by name, or nullptr.
[[nodiscard]] const Scenario* find_scenario(std::span<const Scenario> corpus,
                                            std::string_view name);

}  // namespace mpps::mc
