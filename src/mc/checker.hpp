// The model checker: explores the parallel engine's schedule space over a
// scenario and asserts conflict-set equality against the serial rete
// engine after every phase of every explored schedule.
//
// Exploration modes:
//   * Exhaustive — DFS over every distinguishable schedule the
//     PorController exposes (partial-order reduced; see controller.hpp
//     for the argument that the pruned interleavings are equivalent).
//   * Random — `schedules` runs with seeded random choices; every run
//     prints a replayable ScheduleId.
//   * Replay — one run following a recorded ScheduleId.
//
// On a mismatch the checker reports the schedule ID, the failing phase
// and a conflict-set diff, then (unless disabled) greedily shrinks the
// scenario — dropping phases, then individual changes, then threads —
// to a minimal script that still fails, mirroring the PR 3 selfcheck
// shrinker.  Shrinking is deterministic: the same failing scenario always
// minimizes to the same repro (asserted in tests/mc_checker_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/mc/controller.hpp"
#include "src/mc/scenario.hpp"
#include "src/mc/schedule.hpp"
#include "src/obs/metrics.hpp"

namespace mpps::mc {

struct CheckOptions {
  enum class Mode : std::uint8_t { Exhaustive, Random, Replay };
  Mode mode = Mode::Exhaustive;
  /// Random mode: how many schedules to fuzz.
  std::uint64_t schedules = 64;
  std::uint64_t seed = 1;
  /// Exhaustive safety cap; hitting it marks the scenario `truncated`
  /// (and not OK — an unexplored space is not a verified one).
  std::uint64_t max_schedules = 1u << 20;
  /// Replay mode: the schedule to follow.
  ScheduleId replay;
  Fault fault = Fault::None;
  /// Shrink failing scenarios to minimal repros.
  bool shrink = true;
  /// Optional mc.* counters (not owned).
  obs::Registry* metrics = nullptr;
};

/// One conflict-set divergence.
struct Mismatch {
  std::size_t phase = 0;
  std::string detail;
};

struct ScheduleFailure {
  ScheduleId schedule;
  Mismatch mismatch;
};

struct ScenarioReport {
  std::string name;
  std::uint64_t explored = 0;
  /// Reduction-free schedule count of the canonical (first) schedule
  /// (saturating; schedules can differ in shape, so this is the baseline
  /// of the representative run).
  std::uint64_t naive = 0;
  bool naive_saturated = false;
  std::uint64_t branch_sites = 0;  // cumulative over explored schedules
  std::uint64_t sleep_skips = 0;   // cumulative over explored schedules
  bool truncated = false;          // exhaustive mode hit max_schedules
  std::vector<ScheduleFailure> failures;
  /// Shrunk repro for failures[0], when shrinking ran.
  std::optional<Scenario> minimized;
  std::uint64_t shrink_steps = 0;

  [[nodiscard]] std::uint64_t pruned() const {
    return naive > explored ? naive - explored : 0;
  }
  [[nodiscard]] bool ok() const { return failures.empty() && !truncated; }
};

struct CheckReport {
  std::vector<ScenarioReport> scenarios;

  [[nodiscard]] bool ok() const {
    for (const ScenarioReport& s : scenarios) {
      if (!s.ok()) return false;
    }
    return true;
  }
};

/// Runs one scenario under `options`.  Throws mpps::RuntimeError on a
/// malformed scenario (program errors, unreplayable schedule IDs).
ScenarioReport check_scenario(const Scenario& scenario,
                              const CheckOptions& options);

/// Runs every scenario; also flushes mc.* counters into
/// `options.metrics` when set.
CheckReport check_corpus(std::span<const Scenario> corpus,
                         const CheckOptions& options);

/// Runs exactly one schedule.  Returns the divergence, or nullopt when
/// every phase matched the serial oracle.  `executed`, when non-null,
/// receives the branch choices actually taken (useful when `id` is a
/// prefix).
std::optional<Mismatch> run_schedule(const Scenario& scenario,
                                     const ScheduleId& id,
                                     Fault fault = Fault::None,
                                     ScheduleId* executed = nullptr);

/// Greedy deterministic minimizer: returns the smallest derived scenario
/// that still fails under `options` (phases dropped, then single changes,
/// then thread count).  `steps`, when non-null, receives the number of
/// candidate scenarios tried.
Scenario shrink(const Scenario& failing, const CheckOptions& options,
                std::uint64_t* steps = nullptr);

/// Human-readable per-scenario lines plus failure details and replay
/// hints.
void print_report(const CheckReport& report, std::ostream& out);

}  // namespace mpps::mc
