// OPS5 attribute values: symbols, integers or floats.  Numbers compare
// across int/float as in OPS5 ("2" matches "2.0"); symbols compare by
// identity only.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/common/symbol.hpp"

namespace mpps::ops5 {

/// The six OPS5 predicate operators usable in attribute tests.
enum class Predicate : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

[[nodiscard]] std::string_view to_string(Predicate p);

/// A single OPS5 value.  Default-constructed value is "absent" and matches
/// nothing (an attribute not present in a wme).
class Value {
 public:
  enum class Kind : std::uint8_t { Absent, Sym, Int, Float };

  constexpr Value() = default;
  constexpr explicit Value(Symbol s) : kind_(Kind::Sym), sym_(s) {}
  constexpr explicit Value(long i) : kind_(Kind::Int), int_(i) {}
  constexpr explicit Value(double f) : kind_(Kind::Float), float_(f) {}

  static Value sym(std::string_view text) {
    return Value(Symbol::intern(text));
  }

  [[nodiscard]] constexpr Kind kind() const { return kind_; }
  [[nodiscard]] constexpr bool absent() const { return kind_ == Kind::Absent; }
  [[nodiscard]] constexpr bool numeric() const {
    return kind_ == Kind::Int || kind_ == Kind::Float;
  }
  [[nodiscard]] constexpr Symbol as_symbol() const { return sym_; }
  [[nodiscard]] constexpr long as_int() const { return int_; }
  [[nodiscard]] constexpr double as_double() const {
    return kind_ == Kind::Int ? static_cast<double>(int_) : float_;
  }

  /// OPS5 equality: symbols by identity, numbers by numeric value
  /// (int 2 == float 2.0).  Absent equals nothing, including absent.
  [[nodiscard]] bool equals(const Value& o) const;

  /// Applies an OPS5 predicate.  Ordering predicates (< <= > >=) are only
  /// satisfiable between two numbers; on anything else they fail.
  /// `Ne` is true whenever both are present and `equals` is false.
  [[nodiscard]] bool test(Predicate p, const Value& o) const;

  /// Hash consistent with `equals` (ints and equal-valued floats collide).
  [[nodiscard]] std::size_t hash() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) { return a.equals(b); }

 private:
  Kind kind_ = Kind::Absent;
  Symbol sym_;
  long int_ = 0;
  double float_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace mpps::ops5

namespace std {
template <>
struct hash<mpps::ops5::Value> {
  size_t operator()(const mpps::ops5::Value& v) const noexcept {
    return v.hash();
  }
};
}  // namespace std
