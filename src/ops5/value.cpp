#include "src/ops5/value.hpp"

#include <cmath>
#include <functional>
#include <ostream>

#include "src/common/strings.hpp"

namespace mpps::ops5 {

std::string_view to_string(Predicate p) {
  switch (p) {
    case Predicate::Eq: return "=";
    case Predicate::Ne: return "<>";
    case Predicate::Lt: return "<";
    case Predicate::Le: return "<=";
    case Predicate::Gt: return ">";
    case Predicate::Ge: return ">=";
  }
  return "?";
}

bool Value::equals(const Value& o) const {
  if (kind_ == Kind::Absent || o.kind_ == Kind::Absent) return false;
  if (kind_ == Kind::Sym || o.kind_ == Kind::Sym) {
    return kind_ == Kind::Sym && o.kind_ == Kind::Sym && sym_ == o.sym_;
  }
  if (kind_ == Kind::Int && o.kind_ == Kind::Int) return int_ == o.int_;
  return as_double() == o.as_double();
}

bool Value::test(Predicate p, const Value& o) const {
  switch (p) {
    case Predicate::Eq: return equals(o);
    case Predicate::Ne:
      return kind_ != Kind::Absent && o.kind_ != Kind::Absent && !equals(o);
    default: break;
  }
  if (!numeric() || !o.numeric()) return false;
  if (kind_ == Kind::Int && o.kind_ == Kind::Int) {
    switch (p) {
      case Predicate::Lt: return int_ < o.int_;
      case Predicate::Le: return int_ <= o.int_;
      case Predicate::Gt: return int_ > o.int_;
      case Predicate::Ge: return int_ >= o.int_;
      default: return false;
    }
  }
  const double a = as_double();
  const double b = o.as_double();
  switch (p) {
    case Predicate::Lt: return a < b;
    case Predicate::Le: return a <= b;
    case Predicate::Gt: return a > b;
    case Predicate::Ge: return a >= b;
    default: return false;
  }
}

std::size_t Value::hash() const {
  switch (kind_) {
    case Kind::Absent: return 0x5151'5151u;
    case Kind::Sym: return std::hash<Symbol>{}(sym_);
    case Kind::Int:
      // Ints hash like the equal-valued double so equals() ⇒ equal hashes.
      return std::hash<double>{}(static_cast<double>(int_));
    case Kind::Float: return std::hash<double>{}(float_);
  }
  return 0;
}

std::string Value::to_string() const {
  switch (kind_) {
    case Kind::Absent: return "<absent>";
    case Kind::Sym: return std::string(sym_.text());
    case Kind::Int: return std::to_string(int_);
    case Kind::Float: {
      // Print floats so they survive a parse round-trip.
      std::string s = format_fixed(float_, 6);
      while (s.size() > 1 && s.back() == '0') s.pop_back();
      if (!s.empty() && s.back() == '.') s.push_back('0');
      return s;
    }
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.to_string();
}

}  // namespace mpps::ops5
