// Abstract syntax of the OPS5 subset: productions, condition elements,
// attribute tests and RHS actions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/ids.hpp"
#include "src/common/symbol.hpp"
#include "src/ops5/value.hpp"

namespace mpps::ops5 {

/// Arithmetic operators usable inside `(compute ...)`.  `Div` is OPS5's
/// `//`, `Mod` is `\\`.
enum class ArithOp : std::uint8_t { Add, Sub, Mul, Div, Mod };

/// A term appearing as a test operand or in an RHS slot: a constant value,
/// a variable reference (`<x>`), or — on the RHS only — a `(compute ...)`
/// arithmetic expression.  As in OPS5, compute has no operator precedence
/// and evaluates right to left: `(compute 2 * 3 + 1)` is 2*(3+1) = 8.
struct Term {
  enum class Kind : std::uint8_t { Constant, Variable, Compute };
  Kind kind = Kind::Constant;
  Value constant;   // valid when kind == Constant
  Symbol variable;  // valid when kind == Variable
  // valid when kind == Compute: operands.size() == ops.size() + 1
  std::vector<Term> compute_operands;
  std::vector<ArithOp> compute_ops;

  static Term make_const(Value v) { return {Kind::Constant, v, {}, {}, {}}; }
  static Term make_var(Symbol v) { return {Kind::Variable, {}, v, {}, {}}; }
  static Term make_compute(std::vector<Term> operands,
                           std::vector<ArithOp> ops) {
    Term t;
    t.kind = Kind::Compute;
    t.compute_operands = std::move(operands);
    t.compute_ops = std::move(ops);
    return t;
  }
  [[nodiscard]] bool is_var() const { return kind == Kind::Variable; }
  [[nodiscard]] bool is_compute() const { return kind == Kind::Compute; }
};

/// Evaluates a compute expression over already-resolved operand values
/// (same order as `compute_operands`).  Integer arithmetic stays integral
/// (Div truncates); any float operand promotes the expression to float.
/// Throws mpps::RuntimeError on non-numeric operands, division by zero, or
/// Mod with float operands.
Value eval_compute(const std::vector<Value>& operands,
                   const std::vector<ArithOp>& ops);

/// One atomic test against an attribute: `<pred> <term>` or a disjunction
/// `<< a b c >>` (which is satisfied when the attribute equals any listed
/// constant).  A bare term means predicate `Eq`.
struct AtomicTest {
  Predicate pred = Predicate::Eq;
  Term operand;
  std::vector<Value> disjunction;  // non-empty ⇒ this is a << >> test

  [[nodiscard]] bool is_disjunction() const { return !disjunction.empty(); }
};

/// All tests on one attribute of a condition element.  `{ ... }` conjunctive
/// groups simply contribute several AtomicTests.
struct AttrTest {
  Symbol attr;
  std::vector<AtomicTest> tests;
};

/// One condition element: `(class ^a1 t1 ^a2 t2 ...)`, optionally negated.
/// `{ <w> (class ...) }` binds the matched wme to the element variable
/// `<w>`, usable in `(remove <w>)` / `(modify <w> ...)`.
struct ConditionElement {
  Symbol ce_class;
  bool negated = false;
  Symbol elem_var;  // empty symbol = no element variable
  std::vector<AttrTest> attr_tests;

  /// Number of tests in the CE (class test counts as one) — the OPS5
  /// "specificity" contribution used by conflict resolution.
  [[nodiscard]] std::size_t test_count() const;
};

/// RHS actions ---------------------------------------------------------

/// `(make class ^attr term ...)`
struct MakeAction {
  Symbol wme_class;
  std::vector<std::pair<Symbol, Term>> slots;
};

/// `(remove k)` or `(remove <w>)` — removes the wme matching the k-th
/// (1-based) condition element, or the one bound to element variable `<w>`.
struct RemoveAction {
  int ce_index = 0;   // used when elem_var is empty
  Symbol elem_var;    // non-empty ⇒ remove by element variable
};

/// `(modify k ^attr term ...)` / `(modify <w> ...)` — delete + re-add with
/// changed slots.
struct ModifyAction {
  int ce_index = 0;
  Symbol elem_var;
  std::vector<std::pair<Symbol, Term>> slots;
};

/// `(write term ... )` — prints terms; `(crlf)` inside is a newline constant.
struct WriteAction {
  std::vector<Term> terms;
};

/// `(halt)`
struct HaltAction {};

/// `(bind <x> term)` — binds a RHS-local variable.
struct BindAction {
  Symbol variable;
  Term term;
};

using Action = std::variant<MakeAction, RemoveAction, ModifyAction,
                            WriteAction, HaltAction, BindAction>;

/// A production: name, LHS condition elements, RHS actions.
struct Production {
  std::string name;
  std::vector<ConditionElement> lhs;
  std::vector<Action> rhs;

  /// Total number of tests on the LHS (conflict-resolution specificity).
  [[nodiscard]] std::size_t specificity() const;

  /// Indices into `lhs` of the non-negated CEs, in order.  `(remove k)`
  /// refers to the k-th entry of this list.
  [[nodiscard]] std::vector<std::size_t> positive_ce_indices() const;
};

/// A parsed program: the production memory plus optional initial wmes
/// given through top-level `(make ...)` forms.
struct Program {
  std::vector<Production> productions;
  std::vector<MakeAction> initial_wmes;

  [[nodiscard]] const Production* find(std::string_view name) const;
};

}  // namespace mpps::ops5
