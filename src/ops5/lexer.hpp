// Tokenizer for OPS5 source text.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mpps::ops5 {

enum class TokenKind : std::uint8_t {
  LParen,    // (
  RParen,    // )
  LBrace,    // {
  RBrace,    // }
  DoubleLt,  // <<
  DoubleGt,  // >>
  Arrow,     // -->
  Minus,     // -  (CE negation; "-5" lexes as an Integer)
  Pred,      // = <> < <= > >=
  Variable,  // <x>
  Atom,      // symbol or |quoted symbol|
  Integer,
  Float,
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;  // atom/variable name (without <>), predicate spelling
  long int_value = 0;
  double float_value = 0.0;
  int line = 1;
  int column = 1;
};

/// Tokenizes the whole input.  Comments run from ';' to end of line.
/// Throws ParseError on malformed input (unterminated |...|, bad number).
std::vector<Token> lex(std::string_view source);

}  // namespace mpps::ops5
