// Recursive-descent parser for the OPS5 subset.
//
// Supported grammar (attribute-form only; positional CE fields are not
// supported — write `^attr value` explicitly):
//
//   program   := { form }
//   form      := production | top-make | literalize
//   production:= '(' 'p' name ce+ '-->' action* ')'
//   ce        := ['-'] '(' class attr-test* ')'
//   attr-test := ^attr value-spec
//   value-spec:= term | pred term | '{' (pred? term)* '}' | '<<' const* '>>'
//   term      := atom | number | <variable>
//   action    := make | remove | modify | write | halt | bind
//   top-make  := '(' 'make' class slot* ')'       ; initial wme
//   literalize:= '(' 'literalize' ... ')'          ; accepted and ignored
#pragma once

#include <string_view>

#include "src/ops5/ast.hpp"
#include "src/ops5/wme.hpp"

namespace mpps::ops5 {

/// Parses a full program.  Throws ParseError with source position on any
/// syntax error.
Program parse_program(std::string_view source);

/// Parses a single wme literal `(class ^attr value ...)` with constant
/// values only (useful in tests and examples).
Wme parse_wme(std::string_view source);

}  // namespace mpps::ops5
