// Working-memory elements and the working memory itself.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/ids.hpp"
#include "src/common/symbol.hpp"
#include "src/ops5/value.hpp"

namespace mpps::ops5 {

/// One working-memory element: a class name plus attribute/value pairs.
/// The id doubles as the OPS5 "timetag" used by conflict resolution: larger
/// id == more recently created.
class Wme {
 public:
  Wme() = default;
  Wme(Symbol wme_class, std::vector<std::pair<Symbol, Value>> attrs);

  [[nodiscard]] Symbol wme_class() const { return class_; }
  [[nodiscard]] WmeId id() const { return id_; }

  /// Value of `attr`, or an absent Value if the wme does not carry it.
  [[nodiscard]] const Value& get(Symbol attr) const;

  /// Sets (or replaces) one attribute.
  void set(Symbol attr, Value v);

  [[nodiscard]] const std::vector<std::pair<Symbol, Value>>& attrs() const {
    return attrs_;
  }

  [[nodiscard]] std::string to_string() const;

  /// Structural equality ignoring the timetag (used by `remove`-by-value
  /// tests and by the naive matcher).
  [[nodiscard]] bool same_content(const Wme& o) const;

  /// Overwrites the timetag.  For engine-level drivers that manage their
  /// own id space instead of going through `WorkingMemory::add` — the
  /// serving layer namespaces ids per session this way (docs/SERVING.md).
  /// A wme already inside a match engine must never be re-tagged.
  void rebind_id(WmeId id) { id_ = id; }

 private:
  friend class WorkingMemory;
  Symbol class_;
  std::vector<std::pair<Symbol, Value>> attrs_;  // sorted by attr symbol id
  WmeId id_ = WmeId::invalid();
};

std::ostream& operator<<(std::ostream& os, const Wme& w);

/// One change to working memory, as recorded per MRA cycle and fed to the
/// match network.
struct WmeChange {
  enum class Kind : std::uint8_t { Add, Delete };
  Kind kind = Kind::Add;
  Wme wme;  // for Delete, the full wme content at the time of deletion
};

/// The working memory: the set of live wmes, keyed by timetag.
class WorkingMemory {
 public:
  /// Adds a wme, assigning it the next timetag.  Returns its id.
  WmeId add(Wme w);

  /// Removes the wme with `id`.  Returns false if no such wme is live.
  bool remove(WmeId id);

  [[nodiscard]] const Wme* find(WmeId id) const;
  [[nodiscard]] std::size_t size() const { return live_.size(); }

  /// All live wmes in timetag order.
  [[nodiscard]] std::vector<const Wme*> all() const;

  /// Changes recorded since the last `drain_changes` call, in order.
  std::vector<WmeChange> drain_changes();

 private:
  std::map<WmeId, Wme> live_;
  std::vector<WmeChange> pending_;
  std::uint64_t next_tag_ = 1;
};

}  // namespace mpps::ops5
