#include "src/ops5/ast.hpp"

#include "src/common/error.hpp"

namespace mpps::ops5 {

Value eval_compute(const std::vector<Value>& operands,
                   const std::vector<ArithOp>& ops) {
  if (operands.empty() || operands.size() != ops.size() + 1) {
    throw RuntimeError("compute: malformed expression");
  }
  for (const Value& v : operands) {
    if (!v.numeric()) {
      throw RuntimeError("compute: non-numeric operand " + v.to_string());
    }
  }
  // Right-to-left, no precedence (as in OPS5): fold from the rightmost
  // operand backwards.
  Value acc = operands.back();
  for (std::size_t i = ops.size(); i-- > 0;) {
    const Value& lhs = operands[i];
    const bool ints = lhs.kind() == Value::Kind::Int &&
                      acc.kind() == Value::Kind::Int;
    switch (ops[i]) {
      case ArithOp::Add:
        acc = ints ? Value(lhs.as_int() + acc.as_int())
                   : Value(lhs.as_double() + acc.as_double());
        break;
      case ArithOp::Sub:
        acc = ints ? Value(lhs.as_int() - acc.as_int())
                   : Value(lhs.as_double() - acc.as_double());
        break;
      case ArithOp::Mul:
        acc = ints ? Value(lhs.as_int() * acc.as_int())
                   : Value(lhs.as_double() * acc.as_double());
        break;
      case ArithOp::Div:
        if (ints) {
          if (acc.as_int() == 0) throw RuntimeError("compute: division by zero");
          acc = Value(lhs.as_int() / acc.as_int());
        } else {
          if (acc.as_double() == 0.0) {
            throw RuntimeError("compute: division by zero");
          }
          acc = Value(lhs.as_double() / acc.as_double());
        }
        break;
      case ArithOp::Mod:
        if (!ints) throw RuntimeError("compute: modulo requires integers");
        if (acc.as_int() == 0) throw RuntimeError("compute: modulo by zero");
        acc = Value(lhs.as_int() % acc.as_int());
        break;
    }
  }
  return acc;
}

std::size_t ConditionElement::test_count() const {
  std::size_t n = 1;  // the class test
  for (const auto& at : attr_tests) n += at.tests.size();
  return n;
}

std::size_t Production::specificity() const {
  std::size_t n = 0;
  for (const auto& ce : lhs) n += ce.test_count();
  return n;
}

std::vector<std::size_t> Production::positive_ce_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    if (!lhs[i].negated) out.push_back(i);
  }
  return out;
}

const Production* Program::find(std::string_view name) const {
  for (const auto& p : productions) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace mpps::ops5
