#include "src/ops5/parser.hpp"

#include <string>
#include <utility>

#include "src/common/error.hpp"
#include "src/ops5/lexer.hpp"
#include "src/ops5/wme.hpp"

namespace mpps::ops5 {
namespace {

Predicate parse_predicate(const std::string& spelling) {
  if (spelling == "=") return Predicate::Eq;
  if (spelling == "<>") return Predicate::Ne;
  if (spelling == "<") return Predicate::Lt;
  if (spelling == "<=") return Predicate::Le;
  if (spelling == ">") return Predicate::Gt;
  return Predicate::Ge;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  Program parse() {
    Program prog;
    while (!at(TokenKind::End)) {
      expect(TokenKind::LParen, "expected '(' at top level");
      const Token& head = peek();
      if (head.kind != TokenKind::Atom) {
        fail("expected 'p', 'make' or 'literalize' after '('");
      }
      if (head.text == "p") {
        advance();
        prog.productions.push_back(parse_production_body());
      } else if (head.text == "make") {
        advance();
        prog.initial_wmes.push_back(parse_make_body());
      } else if (head.text == "literalize" || head.text == "literal") {
        // Attribute declarations — we are schema-less, so skip to ')'.
        advance();
        while (!at(TokenKind::RParen)) advance();
        expect(TokenKind::RParen, "expected ')'");
      } else {
        fail("unknown top-level form '" + head.text + "'");
      }
    }
    return prog;
  }

  Wme parse_single_wme() {
    expect(TokenKind::LParen, "expected '('");
    MakeAction m = parse_make_class_and_slots();
    std::vector<std::pair<Symbol, Value>> attrs;
    for (const auto& [attr, term] : m.slots) {
      if (term.kind != Term::Kind::Constant) {
        fail("wme literal must contain constant values only");
      }
      attrs.emplace_back(attr, term.constant);
    }
    if (!at(TokenKind::End)) fail("trailing input after wme literal");
    return Wme(m.wme_class, std::move(attrs));
  }

 private:
  // -- token plumbing -----------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(TokenKind k) const { return peek().kind == k; }
  const Token& advance() { return tokens_[pos_++]; }
  void expect(TokenKind k, const char* message) {
    if (!at(k)) fail(message);
    advance();
  }
  [[noreturn]] void fail(const std::string& message) const {
    const Token& t = peek();
    throw ParseError(message, t.line, t.column);
  }

  // -- grammar ------------------------------------------------------------
  Production parse_production_body() {
    Production p;
    if (!at(TokenKind::Atom)) fail("expected production name");
    p.name = advance().text;
    while (!at(TokenKind::Arrow)) {
      p.lhs.push_back(parse_ce());
      if (at(TokenKind::End)) fail("unexpected end of input in production");
    }
    advance();  // -->
    while (!at(TokenKind::RParen)) {
      parse_action_into(p.rhs);
      if (at(TokenKind::End)) fail("unexpected end of input in RHS");
    }
    advance();  // )
    if (p.lhs.empty()) fail("production '" + p.name + "' has no LHS");
    if (p.lhs[0].negated) {
      fail("first condition element of '" + p.name + "' must not be negated");
    }
    return p;
  }

  ConditionElement parse_ce() {
    ConditionElement ce;
    if (at(TokenKind::Minus)) {
      advance();
      ce.negated = true;
    }
    // Element variable: { <w> (class ...) }
    bool has_elem_var = false;
    if (at(TokenKind::LBrace)) {
      advance();
      if (!at(TokenKind::Variable)) {
        fail("expected element variable after '{'");
      }
      ce.elem_var = Symbol::intern(advance().text);
      has_elem_var = true;
      if (ce.negated) {
        fail("a negated condition element cannot bind an element variable");
      }
    }
    expect(TokenKind::LParen, "expected '(' to open condition element");
    if (!at(TokenKind::Atom)) fail("expected class name in condition element");
    ce.ce_class = Symbol::intern(advance().text);
    while (!at(TokenKind::RParen)) {
      ce.attr_tests.push_back(parse_attr_test());
    }
    advance();  // )
    if (has_elem_var) {
      expect(TokenKind::RBrace, "expected '}' after element-variable CE");
    }
    return ce;
  }

  /// Parses `^attr value-spec`.  The lexer delivers "^attr" as one Atom.
  AttrTest parse_attr_test() {
    if (!at(TokenKind::Atom) || peek().text.empty() || peek().text[0] != '^') {
      fail("expected ^attribute");
    }
    AttrTest at_test;
    at_test.attr = Symbol::intern(advance().text.substr(1));
    if (at(TokenKind::LBrace)) {
      advance();
      while (!at(TokenKind::RBrace)) {
        at_test.tests.push_back(parse_atomic_test());
        if (at(TokenKind::End)) fail("unterminated '{' test group");
      }
      advance();  // }
      if (at_test.tests.empty()) fail("empty '{}' test group");
    } else {
      at_test.tests.push_back(parse_atomic_test());
    }
    return at_test;
  }

  AtomicTest parse_atomic_test() {
    AtomicTest t;
    if (at(TokenKind::Pred)) {
      t.pred = parse_predicate(advance().text);
      t.operand = parse_term("expected operand after predicate");
      return t;
    }
    if (at(TokenKind::DoubleLt)) {
      advance();
      t.pred = Predicate::Eq;
      while (!at(TokenKind::DoubleGt)) {
        Term term = parse_term("expected constant in << >> disjunction");
        if (term.is_var()) fail("variables are not allowed inside << >>");
        t.disjunction.push_back(term.constant);
        if (at(TokenKind::End)) fail("unterminated '<<' disjunction");
      }
      advance();  // >>
      if (t.disjunction.empty()) fail("empty '<< >>' disjunction");
      return t;
    }
    t.pred = Predicate::Eq;
    t.operand = parse_term("expected test value");
    return t;
  }

  Term parse_term(const char* what, bool allow_compute = false) {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::Atom:
        if (!t.text.empty() && t.text[0] == '^') {
          fail("unexpected ^attribute where a value was expected");
        }
        advance();
        return Term::make_const(Value::sym(t.text));
      case TokenKind::Integer:
        advance();
        return Term::make_const(Value(t.int_value));
      case TokenKind::Float:
        advance();
        return Term::make_const(Value(t.float_value));
      case TokenKind::Variable:
        advance();
        return Term::make_var(Symbol::intern(t.text));
      case TokenKind::LParen:
        if (allow_compute) return parse_compute();
        fail(what);
      default:
        fail(what);
    }
  }

  /// `(compute term op term op term ...)` — RHS arithmetic.  Operators are
  /// + - * // (divide) \\ (modulo); evaluation is right-to-left with no
  /// precedence, as in OPS5.
  Term parse_compute() {
    expect(TokenKind::LParen, "expected '('");
    if (!at(TokenKind::Atom) || peek().text != "compute") {
      fail("expected 'compute'");
    }
    advance();
    std::vector<Term> operands;
    std::vector<ArithOp> ops;
    operands.push_back(parse_term("expected compute operand", true));
    while (!at(TokenKind::RParen)) {
      ops.push_back(parse_arith_op());
      operands.push_back(parse_term("expected compute operand", true));
      if (at(TokenKind::End)) fail("unterminated compute");
    }
    advance();  // )
    return Term::make_compute(std::move(operands), std::move(ops));
  }

  ArithOp parse_arith_op() {
    if (at(TokenKind::Minus)) {
      advance();
      return ArithOp::Sub;
    }
    if (!at(TokenKind::Atom)) fail("expected compute operator");
    const std::string& op = advance().text;
    if (op == "+") return ArithOp::Add;
    if (op == "*") return ArithOp::Mul;
    if (op == "//") return ArithOp::Div;
    if (op == "\\\\" || op == "\\") return ArithOp::Mod;
    fail("unknown compute operator '" + op + "'");
  }

  MakeAction parse_make_class_and_slots() {
    MakeAction m;
    if (!at(TokenKind::Atom)) fail("expected class name in make");
    m.wme_class = Symbol::intern(advance().text);
    while (!at(TokenKind::RParen)) {
      if (!at(TokenKind::Atom) || peek().text.empty() ||
          peek().text[0] != '^') {
        fail("expected ^attribute in make");
      }
      Symbol attr = Symbol::intern(advance().text.substr(1));
      Term term = parse_term("expected value in make", /*allow_compute=*/true);
      m.slots.emplace_back(attr, term);
    }
    advance();  // )
    return m;
  }

  MakeAction parse_make_body() { return parse_make_class_and_slots(); }

  void parse_action_into(std::vector<Action>& out) {
    expect(TokenKind::LParen, "expected '(' to open RHS action");
    if (!at(TokenKind::Atom)) fail("expected action name");
    std::string name = advance().text;
    if (name == "make") {
      out.emplace_back(parse_make_body());
    } else if (name == "remove") {
      bool any = false;
      while (at(TokenKind::Integer) || at(TokenKind::Variable)) {
        RemoveAction r;
        if (at(TokenKind::Integer)) {
          r.ce_index = static_cast<int>(advance().int_value);
        } else {
          r.elem_var = Symbol::intern(advance().text);
        }
        out.emplace_back(std::move(r));
        any = true;
      }
      if (!any) fail("remove requires a CE number or element variable");
      expect(TokenKind::RParen, "expected ')' after remove");
    } else if (name == "modify") {
      ModifyAction m;
      if (at(TokenKind::Integer)) {
        m.ce_index = static_cast<int>(advance().int_value);
      } else if (at(TokenKind::Variable)) {
        m.elem_var = Symbol::intern(advance().text);
      } else {
        fail("modify requires a CE number or element variable");
      }
      while (!at(TokenKind::RParen)) {
        if (!at(TokenKind::Atom) || peek().text.empty() ||
            peek().text[0] != '^') {
          fail("expected ^attribute in modify");
        }
        Symbol attr = Symbol::intern(advance().text.substr(1));
        m.slots.emplace_back(
            attr, parse_term("expected value in modify", /*allow_compute=*/true));
      }
      advance();  // )
      out.emplace_back(std::move(m));
    } else if (name == "write") {
      WriteAction w;
      while (!at(TokenKind::RParen)) {
        if (at(TokenKind::LParen) &&
            !(peek(1).kind == TokenKind::Atom && peek(1).text == "compute")) {
          // (crlf) / (tabto n): emit a newline.
          advance();
          if (at(TokenKind::Atom)) advance();
          while (!at(TokenKind::RParen)) advance();
          advance();
          w.terms.push_back(Term::make_const(Value::sym("\n")));
          continue;
        }
        w.terms.push_back(
            parse_term("expected term in write", /*allow_compute=*/true));
      }
      advance();  // )
      out.emplace_back(std::move(w));
    } else if (name == "halt") {
      expect(TokenKind::RParen, "expected ')' after halt");
      out.emplace_back(HaltAction{});
    } else if (name == "bind") {
      BindAction b;
      if (!at(TokenKind::Variable)) fail("bind requires a variable");
      b.variable = Symbol::intern(advance().text);
      b.term = parse_term("expected term in bind", /*allow_compute=*/true);
      expect(TokenKind::RParen, "expected ')' after bind");
      out.emplace_back(std::move(b));
    } else {
      fail("unknown RHS action '" + name + "'");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view source) {
  return Parser(source).parse();
}

Wme parse_wme(std::string_view source) {
  return Parser(source).parse_single_wme();
}

}  // namespace mpps::ops5
