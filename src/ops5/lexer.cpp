#include "src/ops5/lexer.hpp"

#include <cctype>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace mpps::ops5 {
namespace {

bool is_atom_char(char c) {
  // Anything that is not whitespace or structural punctuation continues an
  // atom.  '^' is structural (attribute marker) and handled by the parser
  // as part of the Atom text when leading (see below).
  switch (c) {
    case '(':
    case ')':
    case '{':
    case '}':
    case ';':
      return false;
    default:
      return !std::isspace(static_cast<unsigned char>(c));
  }
}

class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  [[nodiscard]] bool done() const { return i_ >= s_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0';
  }
  char advance() {
    char c = s_[i_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }

 private:
  std::string_view s_;
  std::size_t i_ = 0;
  int line_ = 1;
  int col_ = 1;
};

/// Classifies a raw word into Atom / Integer / Float / Pred / Arrow / etc.
Token classify_word(std::string word, int line, int col) {
  Token t;
  t.line = line;
  t.column = col;
  if (word == "-->") {
    t.kind = TokenKind::Arrow;
    return t;
  }
  if (word == "=" || word == "<>" || word == "<=" || word == ">=" ||
      word == "<" || word == ">") {
    t.kind = TokenKind::Pred;
    t.text = std::move(word);
    return t;
  }
  if (word == "<<") {
    t.kind = TokenKind::DoubleLt;
    return t;
  }
  if (word == ">>") {
    t.kind = TokenKind::DoubleGt;
    return t;
  }
  if (word == "-") {
    t.kind = TokenKind::Minus;
    return t;
  }
  if (word.size() >= 3 && word.front() == '<' && word.back() == '>') {
    t.kind = TokenKind::Variable;
    t.text = word.substr(1, word.size() - 2);
    return t;
  }
  long iv = 0;
  if (parse_int(word, iv)) {
    t.kind = TokenKind::Integer;
    t.int_value = iv;
    return t;
  }
  double fv = 0.0;
  if (parse_double(word, fv)) {
    t.kind = TokenKind::Float;
    t.float_value = fv;
    return t;
  }
  t.kind = TokenKind::Atom;
  t.text = std::move(word);
  return t;
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  Cursor cur(source);
  while (!cur.done()) {
    char c = cur.peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    if (c == ';') {  // comment to end of line
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    const int line = cur.line();
    const int col = cur.col();
    auto push = [&](TokenKind k) {
      cur.advance();
      out.push_back({k, {}, 0, 0.0, line, col});
    };
    switch (c) {
      case '(': push(TokenKind::LParen); continue;
      case ')': push(TokenKind::RParen); continue;
      case '{': push(TokenKind::LBrace); continue;
      case '}': push(TokenKind::RBrace); continue;
      default: break;
    }
    if (c == '|') {  // quoted atom: |any text until next bar|
      cur.advance();
      std::string text;
      while (!cur.done() && cur.peek() != '|') text.push_back(cur.advance());
      if (cur.done()) throw ParseError("unterminated |...| atom", line, col);
      cur.advance();  // closing bar
      out.push_back({TokenKind::Atom, std::move(text), 0, 0.0, line, col});
      continue;
    }
    // General word: read a maximal run of atom characters, then classify.
    std::string word;
    while (!cur.done() && is_atom_char(cur.peek())) word.push_back(cur.advance());
    if (word.empty()) {
      throw ParseError(std::string("unexpected character '") + c + "'", line,
                       col);
    }
    out.push_back(classify_word(std::move(word), line, col));
  }
  out.push_back({TokenKind::End, {}, 0, 0.0, cur.line(), cur.col()});
  return out;
}

}  // namespace mpps::ops5
