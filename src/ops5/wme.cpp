#include "src/ops5/wme.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mpps::ops5 {

namespace {
const Value kAbsent{};
}

Wme::Wme(Symbol wme_class, std::vector<std::pair<Symbol, Value>> attrs)
    : class_(wme_class), attrs_(std::move(attrs)) {
  std::sort(attrs_.begin(), attrs_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

const Value& Wme::get(Symbol attr) const {
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), attr,
      [](const auto& pair, Symbol key) { return pair.first < key; });
  if (it != attrs_.end() && it->first == attr) return it->second;
  return kAbsent;
}

void Wme::set(Symbol attr, Value v) {
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), attr,
      [](const auto& pair, Symbol key) { return pair.first < key; });
  if (it != attrs_.end() && it->first == attr) {
    it->second = v;
  } else {
    attrs_.insert(it, {attr, v});
  }
}

std::string Wme::to_string() const {
  std::ostringstream os;
  os << '(' << class_.text();
  for (const auto& [attr, value] : attrs_) {
    os << " ^" << attr.text() << ' ' << value;
  }
  os << ')';
  return os.str();
}

bool Wme::same_content(const Wme& o) const {
  if (class_ != o.class_ || attrs_.size() != o.attrs_.size()) return false;
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].first != o.attrs_[i].first) return false;
    if (!attrs_[i].second.equals(o.attrs_[i].second)) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Wme& w) {
  return os << w.to_string();
}

WmeId WorkingMemory::add(Wme w) {
  w.id_ = WmeId{next_tag_++};
  WmeId id = w.id_;
  pending_.push_back({WmeChange::Kind::Add, w});
  live_.emplace(id, std::move(w));
  return id;
}

bool WorkingMemory::remove(WmeId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  pending_.push_back({WmeChange::Kind::Delete, it->second});
  live_.erase(it);
  return true;
}

const Wme* WorkingMemory::find(WmeId id) const {
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second;
}

std::vector<const Wme*> WorkingMemory::all() const {
  std::vector<const Wme*> out;
  out.reserve(live_.size());
  for (const auto& [id, wme] : live_) out.push_back(&wme);
  return out;
}

std::vector<WmeChange> WorkingMemory::drain_changes() {
  return std::exchange(pending_, {});
}

}  // namespace mpps::ops5
