// The paper's concurrent distributed hash-table data structure, in its
// serial form: two global token hash tables (one for all left memories,
// one for all right memories).  Tokens are keyed by the destination
// two-input node's id plus the values bound to the variables tested for
// equality at that node, so tokens with the same key land in the same
// bucket and a node activation touches exactly one left/right bucket pair.
//
// The *bucket index* (key hash mod bucket count) is what the MPC mapping
// partitions across processors; the engine additionally filters entries by
// exact key values because distinct keys may collide into one index.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/ids.hpp"
#include "src/ops5/value.hpp"
#include "src/rete/token.hpp"

namespace mpps::rete {

using ops5::Value;

/// Computes the global bucket index for a token headed to `node` with
/// equality-test values `key`.  A node with no equality tests maps all its
/// tokens to one bucket — the paper's non-discriminating cross-product case.
std::uint32_t bucket_index(NodeId node, std::span<const Value> key,
                           std::uint32_t num_buckets);

/// One side (left or right) of the global hash table.
class HashedMemory {
 public:
  explicit HashedMemory(std::uint32_t num_buckets)
      : num_buckets_(num_buckets) {}

  struct Entry {
    Token token;             // right entries hold a single-wme token
    std::vector<Value> key;  // equality-test values (the hash key)
    int neg_count = 0;       // negative nodes: matching right entries
  };

  [[nodiscard]] std::uint32_t num_buckets() const { return num_buckets_; }

  [[nodiscard]] std::uint32_t bucket_of(NodeId node,
                                        std::span<const Value> key) const {
    return bucket_index(node, key, num_buckets_);
  }

  /// Inserts a token.  Returns the bucket index it landed in.
  std::uint32_t insert(NodeId node, Token token, std::vector<Value> key);

  /// Removes the entry with an identical token.  Returns true if found.
  bool erase(NodeId node, const Token& token, std::span<const Value> key);

  /// All entries of `node` in the bucket addressed by `key` whose stored
  /// key equals `key` element-wise.  Pointers are invalidated by
  /// insert/erase on the same (node, bucket).
  [[nodiscard]] std::vector<Entry*> find(NodeId node,
                                         std::span<const Value> key);

  /// Entry matching exactly `token` (for negative-node count updates).
  [[nodiscard]] Entry* find_token(NodeId node, const Token& token,
                                  std::span<const Value> key);

  [[nodiscard]] std::size_t total_tokens() const { return total_; }

  /// Number of (node, bucket) cells currently non-empty.
  [[nodiscard]] std::size_t occupied_cells() const { return cells_.size(); }

  /// Entries currently in `node`'s cell for `bucket` (bucket-occupancy
  /// observability; see docs/OBSERVABILITY.md).
  [[nodiscard]] std::size_t cell_size(NodeId node, std::uint32_t bucket) const;

  /// Total entries examined by find/find_token/erase since construction —
  /// the "token comparisons" the paper's hashing cuts by up to ~10x
  /// versus linear memories (compare num_buckets == 1 against a real
  /// bucket count).
  [[nodiscard]] std::uint64_t entries_scanned() const { return scanned_; }

 private:
  using CellKey = std::uint64_t;  // node id << 32 | bucket index
  static CellKey cell_key(NodeId node, std::uint32_t bucket) {
    return (static_cast<std::uint64_t>(node.value()) << 32) | bucket;
  }
  static bool key_equals(std::span<const Value> a, std::span<const Value> b);

  std::uint32_t num_buckets_;
  std::unordered_map<CellKey, std::vector<Entry>> cells_;
  std::size_t total_ = 0;
  std::uint64_t scanned_ = 0;
};

}  // namespace mpps::rete
