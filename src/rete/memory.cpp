#include "src/rete/memory.hpp"

namespace mpps::rete {

std::uint32_t bucket_index(NodeId node, std::span<const Value> key,
                           std::uint32_t num_buckets) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull ^ node.value();
  h *= 0xFF51AFD7ED558CCDull;
  for (const Value& v : key) {
    h ^= v.hash() + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  // Final avalanche so low bits are well mixed before the modulo.
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ull;
  h ^= h >> 33;
  return static_cast<std::uint32_t>(h % num_buckets);
}

bool HashedMemory::key_equals(std::span<const Value> a,
                              std::span<const Value> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].equals(b[i])) return false;
  }
  return true;
}

std::uint32_t HashedMemory::insert(NodeId node, Token token,
                                   std::vector<Value> key) {
  const std::uint32_t bucket = bucket_of(node, key);
  cells_[cell_key(node, bucket)].push_back(
      Entry{std::move(token), std::move(key), 0});
  ++total_;
  return bucket;
}

std::size_t HashedMemory::cell_size(NodeId node, std::uint32_t bucket) const {
  const auto it = cells_.find(cell_key(node, bucket));
  return it == cells_.end() ? 0 : it->second.size();
}

bool HashedMemory::erase(NodeId node, const Token& token,
                         std::span<const Value> key) {
  const std::uint32_t bucket = bucket_of(node, key);
  auto it = cells_.find(cell_key(node, bucket));
  if (it == cells_.end()) return false;
  auto& entries = it->second;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    ++scanned_;
    if (entries[i].token == token) {
      entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
      --total_;
      if (entries.empty()) cells_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<HashedMemory::Entry*> HashedMemory::find(
    NodeId node, std::span<const Value> key) {
  std::vector<Entry*> out;
  auto it = cells_.find(cell_key(node, bucket_of(node, key)));
  if (it == cells_.end()) return out;
  for (auto& e : it->second) {
    ++scanned_;
    if (key_equals(e.key, key)) out.push_back(&e);
  }
  return out;
}

HashedMemory::Entry* HashedMemory::find_token(NodeId node, const Token& token,
                                              std::span<const Value> key) {
  auto it = cells_.find(cell_key(node, bucket_of(node, key)));
  if (it == cells_.end()) return nullptr;
  for (auto& e : it->second) {
    ++scanned_;
    if (e.token == token) return &e;
  }
  return nullptr;
}

}  // namespace mpps::rete
