// TREAT (Miranker 1987) — the paper's cited rival of Rete [30].  TREAT
// keeps only the alpha memories (per condition element) and the conflict
// set; it stores NO beta-level partial matches.  On a wme addition it runs
// a seeded join of the new wme against the other condition elements' alpha
// memories; on a deletion it drops the conflict-set entries containing the
// wme (no minus-token flood).  The classic trade: Rete pays memory and
// delete-propagation for never re-joining; TREAT re-joins on every add but
// deletes are nearly free.
//
// Used here as a differential-testing target (Rete, TREAT and the naive
// matcher must always agree) and for the Rete-vs-TREAT micro-benchmarks.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/ops5/ast.hpp"
#include "src/ops5/wme.hpp"
#include "src/rete/conflict.hpp"

namespace mpps::rete {

struct TreatStats {
  std::uint64_t alpha_insertions = 0;
  std::uint64_t join_attempts = 0;  // candidate wmes examined during seeds
  std::uint64_t negated_rechecks = 0;
};

class TreatEngine {
 public:
  explicit TreatEngine(const ops5::Program& program);

  /// Pushes one WM change (add or delete) through the matcher.
  void process_change(const ops5::WmeChange& change);

  /// Attaches a metrics registry (not owned); treat.* counters and the
  /// alpha-memory size gauge are updated after every change.  Null
  /// detaches.  See docs/OBSERVABILITY.md.
  void set_metrics(obs::Registry* registry);

  [[nodiscard]] ConflictSet& conflict_set() { return conflict_; }
  [[nodiscard]] const ConflictSet& conflict_set() const { return conflict_; }
  [[nodiscard]] const TreatStats& stats() const { return stats_; }

  /// Total wme references held in alpha memories (TREAT's entire match
  /// state; compare Rete's beta-token count).
  [[nodiscard]] std::size_t alpha_memory_size() const;

 private:
  struct ProductionState {
    const ops5::Production* production = nullptr;
    ProductionId id;
    // Alpha memory per CE: live wme ids passing the CE's single-wme tests.
    std::vector<std::vector<WmeId>> alpha;
  };

  void add_wme(const ops5::Wme& wme);
  void remove_wme(const ops5::Wme& wme);
  /// All instantiations of `prod` with CE `seed_ce` bound to `seed`.
  void seeded_join(ProductionState& prod, std::size_t seed_ce, WmeId seed,
                   std::vector<Instantiation>& out);
  /// Recomputes the full instantiation set of one production and
  /// reconciles the conflict set with it (negated-CE deletions).
  void recompute_production(ProductionState& prod);

  void flush_metrics();

  std::vector<ProductionState> productions_;
  ConflictSet conflict_;
  std::unordered_map<WmeId, ops5::Wme> wmes_;
  TreatStats stats_;
  struct Instruments {
    obs::Counter* alpha_insertions = nullptr;
    obs::Counter* join_attempts = nullptr;
    obs::Counter* negated_rechecks = nullptr;
    obs::Gauge* alpha_memory = nullptr;
  };
  Instruments instr_;
  TreatStats flushed_;
};

}  // namespace mpps::rete
