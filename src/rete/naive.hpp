// A brute-force matcher, independent of the Rete code paths, used as the
// test oracle: after any sequence of WM changes, Rete's conflict set must
// equal the naive matcher's output on the same working memory.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/ops5/ast.hpp"
#include "src/ops5/wme.hpp"
#include "src/rete/conflict.hpp"

namespace mpps::rete {

/// A variable environment during matching.
using MatchEnv = std::unordered_map<Symbol, ops5::Value>;

/// Matches one condition element against one wme under `env`: first
/// variable occurrences bind, later occurrences test.  On success returns
/// the extended environment.  Shared by the naive matcher and TREAT.
std::optional<MatchEnv> match_ce(const ops5::ConditionElement& ce,
                                 const ops5::Wme& wme, const MatchEnv& env);

/// Computes all instantiations of `program` against `wmes` by exhaustive
/// search.  Production ids are assigned by position in
/// `program.productions`, matching Network::compile's assignment.
std::vector<Instantiation> naive_match(
    const ops5::Program& program, const std::vector<const ops5::Wme*>& wmes);

}  // namespace mpps::rete
