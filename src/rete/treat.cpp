#include "src/rete/treat.hpp"

#include <algorithm>
#include <set>

#include "src/rete/naive.hpp"

namespace mpps::rete {

TreatEngine::TreatEngine(const ops5::Program& program)
    : conflict_([specs = [&] {
        std::vector<std::size_t> out;
        for (const auto& p : program.productions) {
          out.push_back(p.specificity());
        }
        return out;
      }()](ProductionId pid) { return specs[pid.value()]; }) {
  for (std::size_t i = 0; i < program.productions.size(); ++i) {
    ProductionState state;
    state.production = &program.productions[i];
    state.id = ProductionId{static_cast<std::uint32_t>(i)};
    state.alpha.resize(program.productions[i].lhs.size());
    productions_.push_back(std::move(state));
  }
}

std::size_t TreatEngine::alpha_memory_size() const {
  std::size_t total = 0;
  for (const auto& prod : productions_) {
    for (const auto& memory : prod.alpha) total += memory.size();
  }
  return total;
}

void TreatEngine::process_change(const ops5::WmeChange& change) {
  if (change.kind == ops5::WmeChange::Kind::Add) {
    wmes_.emplace(change.wme.id(), change.wme);
    add_wme(change.wme);
  } else {
    remove_wme(change.wme);
    wmes_.erase(change.wme.id());
  }
  flush_metrics();
}

void TreatEngine::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    instr_ = Instruments{};
    return;
  }
  instr_.alpha_insertions = &registry->counter("treat.alpha_insertions");
  instr_.join_attempts = &registry->counter("treat.join_attempts");
  instr_.negated_rechecks = &registry->counter("treat.negated_rechecks");
  instr_.alpha_memory = &registry->gauge("treat.alpha_memory");
  flushed_ = stats_;
}

void TreatEngine::flush_metrics() {
  if (instr_.alpha_insertions == nullptr) return;
  instr_.alpha_insertions->add(stats_.alpha_insertions -
                               flushed_.alpha_insertions);
  instr_.join_attempts->add(stats_.join_attempts - flushed_.join_attempts);
  instr_.negated_rechecks->add(stats_.negated_rechecks -
                               flushed_.negated_rechecks);
  instr_.alpha_memory->set(static_cast<std::int64_t>(alpha_memory_size()));
  flushed_ = stats_;
}

void TreatEngine::add_wme(const ops5::Wme& wme) {
  for (auto& prod : productions_) {
    bool recheck_instantiations = false;
    std::vector<std::size_t> positive_hits;
    // Pass 1: insert into every matching alpha memory (a wme may match
    // several CEs of one production — including the seed's own twin).
    for (std::size_t k = 0; k < prod.production->lhs.size(); ++k) {
      const auto& ce = prod.production->lhs[k];
      if (!match_ce(ce, wme, MatchEnv{}).has_value()) continue;
      prod.alpha[k].push_back(wme.id());
      ++stats_.alpha_insertions;
      if (ce.negated) {
        recheck_instantiations = true;  // a new blocker appeared
      } else {
        positive_hits.push_back(k);
      }
    }
    // Pass 2: seed the joins.
    std::vector<Instantiation> found;
    for (std::size_t k : positive_hits) {
      seeded_join(prod, k, wme.id(), found);
    }
    for (auto& inst : found) {
      conflict_.add(std::move(inst));
    }
    if (recheck_instantiations) {
      // Retract instantiations the new wme now blocks: rebuild each
      // instantiation's environment and test the negated CEs against it.
      ++stats_.negated_rechecks;
      for (const auto& inst : conflict_.all()) {
        if (inst.production != prod.id) continue;
        MatchEnv env;
        std::size_t pos = 0;
        for (const auto& ce : prod.production->lhs) {
          if (ce.negated) continue;
          env = *match_ce(ce, wmes_.at(inst.token.wmes[pos]), env);
          ++pos;
        }
        bool blocked = false;
        for (const auto& ce : prod.production->lhs) {
          if (ce.negated && match_ce(ce, wme, env).has_value()) {
            blocked = true;
            break;
          }
        }
        if (blocked) conflict_.remove(inst);
      }
    }
  }
}

void TreatEngine::remove_wme(const ops5::Wme& wme) {
  // Drop conflict-set entries that use the wme positively — this is
  // TREAT's cheap delete (no token flood).
  for (const auto& inst : conflict_.all()) {
    if (std::find(inst.token.wmes.begin(), inst.token.wmes.end(),
                  wme.id()) != inst.token.wmes.end()) {
      conflict_.remove(inst);
    }
  }
  for (auto& prod : productions_) {
    bool unblocked = false;
    for (std::size_t k = 0; k < prod.production->lhs.size(); ++k) {
      auto& memory = prod.alpha[k];
      const auto it = std::find(memory.begin(), memory.end(), wme.id());
      if (it == memory.end()) continue;
      memory.erase(it);
      if (prod.production->lhs[k].negated) unblocked = true;
    }
    if (unblocked) {
      ++stats_.negated_rechecks;
      recompute_production(prod);
    }
  }
}

void TreatEngine::seeded_join(ProductionState& prod, std::size_t seed_ce,
                              WmeId seed, std::vector<Instantiation>& out) {
  const ops5::Production& p = *prod.production;
  std::vector<WmeId> token;

  // Recursive descent over CEs; the seed occupies `seed_ce`, and earlier
  // CEs must not use the seed wme (instantiations whose FIRST seed
  // occurrence is earlier are found when seeding that position), which
  // dedups multi-position uses exactly.
  auto search = [&](auto&& self, std::size_t k, const MatchEnv& env) -> void {
    if (k == p.lhs.size()) {
      out.push_back(Instantiation{prod.id, Token{token}});
      return;
    }
    const auto& ce = p.lhs[k];
    if (ce.negated) {
      for (WmeId candidate : prod.alpha[k]) {
        ++stats_.join_attempts;
        if (match_ce(ce, wmes_.at(candidate), env).has_value()) return;
      }
      self(self, k + 1, env);
      return;
    }
    if (k == seed_ce) {
      if (auto extended = match_ce(ce, wmes_.at(seed), env)) {
        token.push_back(seed);
        self(self, k + 1, *extended);
        token.pop_back();
      }
      return;
    }
    for (WmeId candidate : prod.alpha[k]) {
      if (k < seed_ce && candidate == seed) continue;
      ++stats_.join_attempts;
      if (auto extended = match_ce(ce, wmes_.at(candidate), env)) {
        token.push_back(candidate);
        self(self, k + 1, *extended);
        token.pop_back();
      }
    }
  };
  search(search, 0, MatchEnv{});
}

void TreatEngine::recompute_production(ProductionState& prod) {
  const ops5::Production& p = *prod.production;
  std::vector<Instantiation> found;
  std::vector<WmeId> token;
  auto search = [&](auto&& self, std::size_t k, const MatchEnv& env) -> void {
    if (k == p.lhs.size()) {
      found.push_back(Instantiation{prod.id, Token{token}});
      return;
    }
    const auto& ce = p.lhs[k];
    if (ce.negated) {
      for (WmeId candidate : prod.alpha[k]) {
        ++stats_.join_attempts;
        if (match_ce(ce, wmes_.at(candidate), env).has_value()) return;
      }
      self(self, k + 1, env);
      return;
    }
    for (WmeId candidate : prod.alpha[k]) {
      ++stats_.join_attempts;
      if (auto extended = match_ce(ce, wmes_.at(candidate), env)) {
        token.push_back(candidate);
        self(self, k + 1, *extended);
        token.pop_back();
      }
    }
  };
  search(search, 0, MatchEnv{});

  // Add anything newly unblocked; existing entries stay (their refraction
  // marks survive, as in a real TREAT conflict set).
  std::set<std::vector<std::uint64_t>> existing;
  for (const auto& inst : conflict_.all()) {
    if (inst.production != prod.id) continue;
    std::vector<std::uint64_t> key;
    for (WmeId w : inst.token.wmes) key.push_back(w.value());
    existing.insert(std::move(key));
  }
  for (auto& inst : found) {
    std::vector<std::uint64_t> key;
    for (WmeId w : inst.token.wmes) key.push_back(w.value());
    if (!existing.contains(key)) {
      conflict_.add(std::move(inst));
    }
  }
}

}  // namespace mpps::rete
