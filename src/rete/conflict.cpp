#include "src/rete/conflict.hpp"

#include <algorithm>

namespace mpps::rete {

ConflictSet::ConflictSet(std::function<std::size_t(ProductionId)> specificity_of)
    : specificity_of_(std::move(specificity_of)) {}

void ConflictSet::add(Instantiation inst) {
  Entry e;
  e.recency = inst.token.wmes;
  std::sort(e.recency.begin(), e.recency.end(), std::greater<>());
  e.specificity = specificity_of_(inst.production);
  e.inst = std::move(inst);
  entries_.push_back(std::move(e));
  if (delta_hook_) delta_hook_(entries_.back().inst, true);
}

bool ConflictSet::remove(const Instantiation& inst) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].inst == inst) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      if (delta_hook_) delta_hook_(inst, false);
      return true;
    }
  }
  return false;
}

bool ConflictSet::dominates(const Entry& a, const Entry& b, Strategy strategy) {
  if (strategy == Strategy::Mea) {
    // MEA first compares the recency of the wme matching the first CE.
    const WmeId fa = a.inst.token.wmes.empty() ? WmeId{0} : a.inst.token.wmes[0];
    const WmeId fb = b.inst.token.wmes.empty() ? WmeId{0} : b.inst.token.wmes[0];
    if (fa != fb) return fa > fb;
  }
  // LEX: lexicographic comparison of descending timetag lists; a shorter
  // list that is a prefix of the longer loses (the longer is "more").
  const auto& ra = a.recency;
  const auto& rb = b.recency;
  const std::size_t n = std::min(ra.size(), rb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ra[i] != rb[i]) return ra[i] > rb[i];
  }
  if (ra.size() != rb.size()) return ra.size() > rb.size();
  if (a.specificity != b.specificity) return a.specificity > b.specificity;
  // Deterministic final tiebreaks: lower production id wins; between two
  // instantiations of the SAME production whose sorted recency lists tie,
  // order the raw wme lists positionally.  Without this last comparison the
  // winner would depend on conflict-set insertion order, which a parallel
  // match engine does not reproduce.
  if (a.inst.production != b.inst.production) {
    return a.inst.production < b.inst.production;
  }
  return a.inst.token.wmes > b.inst.token.wmes;
}

std::optional<Instantiation> ConflictSet::select(Strategy strategy) const {
  const Entry* best = nullptr;
  for (const auto& e : entries_) {
    if (e.fired) continue;
    if (best == nullptr || dominates(e, *best, strategy)) best = &e;
  }
  if (best == nullptr) return std::nullopt;
  return best->inst;
}

void ConflictSet::mark_fired(const Instantiation& inst) {
  for (auto& e : entries_) {
    if (e.inst == inst) {
      e.fired = true;
      return;
    }
  }
}

std::vector<Instantiation> ConflictSet::all() const {
  std::vector<Instantiation> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.inst);
  return out;
}

}  // namespace mpps::rete
