#include "src/rete/interp.hpp"

#include <ostream>

#include "src/common/error.hpp"

namespace mpps::rete {

Interpreter::Interpreter(ops5::Program program, InterpreterOptions options)
    : program_(std::move(program)), options_(options) {
  network_ = std::make_unique<Network>(
      Network::compile(program_, options_.compile));
  if (options_.engine_factory) {
    engine_ = options_.engine_factory(*network_, options_.engine);
  } else {
    engine_ = std::make_unique<Engine>(*network_, options_.engine);
  }
}

Engine& Interpreter::engine() {
  auto* serial = dynamic_cast<Engine*>(engine_.get());
  if (serial == nullptr) {
    throw RuntimeError(
        "Interpreter::engine(): the active match engine is not the serial "
        "rete::Engine; use match_engine()");
  }
  return *serial;
}

namespace {

/// Evaluates a term that must not reference variables (top-level makes).
ops5::Value const_term_value(const ops5::Term& term) {
  if (term.is_var()) {
    throw RuntimeError("top-level make must not contain variables");
  }
  if (term.is_compute()) {
    std::vector<ops5::Value> operands;
    operands.reserve(term.compute_operands.size());
    for (const auto& operand : term.compute_operands) {
      operands.push_back(const_term_value(operand));
    }
    return ops5::eval_compute(operands, term.compute_ops);
  }
  return term.constant;
}

}  // namespace

void Interpreter::load_initial_wmes() {
  for (const auto& make : program_.initial_wmes) {
    std::vector<std::pair<Symbol, ops5::Value>> attrs;
    for (const auto& [attr, term] : make.slots) {
      attrs.emplace_back(attr, const_term_value(term));
    }
    wm_.add(ops5::Wme(make.wme_class, std::move(attrs)));
  }
}

void Interpreter::match() {
  const std::vector<ops5::WmeChange> changes = wm_.drain_changes();
  if (options_.watch >= 2 && options_.out != nullptr) {
    for (const auto& change : changes) {
      *options_.out << (change.kind == ops5::WmeChange::Kind::Add ? "=>WM: "
                                                                  : "<=WM: ")
                    << change.wme.id().value() << ": "
                    << change.wme.to_string() << "\n";
    }
  }
  // The whole act-phase batch goes to the engine in one call so batching
  // engines (pmatch with max_batch > 1) can share BSP phases across it.
  engine_->process_changes(changes);
}

bool Interpreter::step() {
  if (halted_) return false;
  ++cycle_;
  match();
  auto selected = engine_->conflict_set().select(options_.strategy);
  if (!selected.has_value()) return false;
  engine_->conflict_set().mark_fired(*selected);
  const auto& pnode = network_->production_nodes()[selected->production.value()];
  if (options_.watch >= 1 && options_.out != nullptr) {
    *options_.out << cycle_ << ". " << pnode.name;
    for (WmeId w : selected->token.wmes) *options_.out << ' ' << w.value();
    *options_.out << "\n";
  }
  firings_.push_back(FireRecord{cycle_, pnode.name, selected->token.wmes});
  act(*selected);
  return !halted_;
}

RunResult Interpreter::run() {
  RunResult result;
  while (cycle_ < options_.max_cycles) {
    if (!step()) {
      result.outcome = halted_ ? RunResult::Outcome::Halted
                               : RunResult::Outcome::Quiescent;
      result.cycles = cycle_;
      result.firings = firings_.size();
      return result;
    }
  }
  result.outcome = RunResult::Outcome::CycleLimit;
  result.cycles = cycle_;
  result.firings = firings_.size();
  return result;
}

std::size_t Interpreter::token_pos(const ops5::Production& p,
                                   int ce_number) const {
  // Compile-time validation guaranteed 1 <= ce_number <= |lhs| and the
  // target CE is positive.  The token holds only positive CEs, in order.
  std::size_t pos = 0;
  for (int i = 0; i + 1 < ce_number; ++i) {
    if (!p.lhs[static_cast<std::size_t>(i)].negated) ++pos;
  }
  return pos;
}

std::size_t Interpreter::target_pos(const ops5::Production& p,
                                    const Instantiation& inst, int ce_number,
                                    Symbol elem_var) const {
  if (elem_var.empty()) return token_pos(p, ce_number);
  for (const auto& binding : network_->elem_bindings(inst.production)) {
    if (binding.var == elem_var) return binding.token_pos;
  }
  throw RuntimeError("unknown element variable <" +
                     std::string(elem_var.text()) + ">");
}

ops5::Value Interpreter::eval_term(
    const ops5::Term& term, const Instantiation& inst,
    const std::vector<std::pair<Symbol, ops5::Value>>& rhs_bindings) const {
  if (term.is_compute()) {
    std::vector<ops5::Value> operands;
    operands.reserve(term.compute_operands.size());
    for (const auto& operand : term.compute_operands) {
      operands.push_back(eval_term(operand, inst, rhs_bindings));
    }
    return ops5::eval_compute(operands, term.compute_ops);
  }
  if (!term.is_var()) return term.constant;
  for (const auto& [var, value] : rhs_bindings) {
    if (var == term.variable) return value;
  }
  for (const auto& binding : network_->bindings(inst.production)) {
    if (binding.var == term.variable) {
      return engine_->wme(inst.token.wmes[binding.token_pos])
          .get(binding.attr);
    }
  }
  throw RuntimeError("unbound RHS variable <" +
                     std::string(term.variable.text()) + ">");
}

void Interpreter::act(const Instantiation& inst) {
  const ops5::Production& prod = network_->production(inst.production);
  std::vector<std::pair<Symbol, ops5::Value>> rhs_bindings;

  for (const auto& action : prod.rhs) {
    if (const auto* m = std::get_if<ops5::MakeAction>(&action)) {
      std::vector<std::pair<Symbol, ops5::Value>> attrs;
      for (const auto& [attr, term] : m->slots) {
        attrs.emplace_back(attr, eval_term(term, inst, rhs_bindings));
      }
      wm_.add(ops5::Wme(m->wme_class, std::move(attrs)));
    } else if (const auto* r = std::get_if<ops5::RemoveAction>(&action)) {
      wm_.remove(
          inst.token.wmes[target_pos(prod, inst, r->ce_index, r->elem_var)]);
    } else if (const auto* mo = std::get_if<ops5::ModifyAction>(&action)) {
      const WmeId target =
          inst.token.wmes[target_pos(prod, inst, mo->ce_index, mo->elem_var)];
      const ops5::Wme* old = wm_.find(target);
      if (old == nullptr) {
        throw RuntimeError("modify: wme already removed in this firing");
      }
      ops5::Wme updated = *old;
      for (const auto& [attr, term] : mo->slots) {
        updated.set(attr, eval_term(term, inst, rhs_bindings));
      }
      wm_.remove(target);
      wm_.add(std::move(updated));
    } else if (const auto* w = std::get_if<ops5::WriteAction>(&action)) {
      if (options_.out != nullptr) {
        bool first = true;
        for (const auto& term : w->terms) {
          const ops5::Value v = eval_term(term, inst, rhs_bindings);
          const bool is_newline =
              v.kind() == ops5::Value::Kind::Sym && v.as_symbol().text() == "\n";
          if (is_newline) {
            *options_.out << '\n';
            first = true;
            continue;
          }
          if (!first) *options_.out << ' ';
          *options_.out << v;
          first = false;
        }
        // OPS5's write does not end lines; that is what (crlf) is for.
      }
    } else if (std::get_if<ops5::HaltAction>(&action) != nullptr) {
      halted_ = true;
    } else if (const auto* b = std::get_if<ops5::BindAction>(&action)) {
      rhs_bindings.emplace_back(b->variable,
                                eval_term(b->term, inst, rhs_bindings));
    }
  }
}

}  // namespace mpps::rete
