#include "src/rete/engine.hpp"

#include <utility>

namespace mpps::rete {

Engine::Engine(const Network& net, EngineOptions options)
    : net_(net),
      options_(options),
      left_(options.num_buckets),
      right_(options.num_buckets),
      conflict_([&net](ProductionId pid) {
        return net.production(pid).specificity();
      }) {
  if (options_.metrics != nullptr) {
    obs::Registry& reg = *options_.metrics;
    instr_.left = &reg.counter("rete.activations", {{"side", "left"}});
    instr_.right = &reg.counter("rete.activations", {{"side", "right"}});
    instr_.tokens = &reg.counter("rete.tokens_generated");
    instr_.comparisons = &reg.counter("rete.comparisons");
    instr_.stale = &reg.counter("rete.stale_deletes");
    instr_.probe_len = &reg.histogram(
        "rete.probe_len", obs::Histogram::exponential_bounds(1, 2.0, 16));
    instr_.occupancy = &reg.histogram(
        "rete.bucket_occupancy",
        obs::Histogram::exponential_bounds(1, 2.0, 16));
    instr_.live_tokens = &reg.gauge("rete.live_tokens");
  }
}

void Engine::flush_metrics() {
  if (instr_.left == nullptr) return;
  instr_.left->add(stats_.left_activations - flushed_.left_activations);
  instr_.right->add(stats_.right_activations - flushed_.right_activations);
  instr_.tokens->add(stats_.tokens_generated - flushed_.tokens_generated);
  instr_.comparisons->add(stats_.comparisons - flushed_.comparisons);
  instr_.stale->add(stats_.stale_deletes - flushed_.stale_deletes);
  instr_.live_tokens->set(
      static_cast<std::int64_t>(left_.total_tokens() + right_.total_tokens()));
  flushed_ = stats_;
}

void Engine::process_change(const ops5::WmeChange& change) {
  if (listener_ != nullptr) listener_->on_wme_change(change);
  const Tag tag =
      change.kind == ops5::WmeChange::Kind::Add ? Tag::Plus : Tag::Minus;
  const WmeId id = change.wme.id();
  if (tag == Tag::Plus) {
    wmes_.emplace(id, change.wme);
  }
  // Constant-test (alpha) phase: find every alpha node the wme satisfies
  // and seed activations at the attached two-input nodes.
  for (const AlphaNode& alpha : net_.alphas()) {
    if (!alpha.matches(change.wme)) continue;
    for (const AlphaSuccessor& succ : alpha.successors) {
      Pending p;
      p.parent = ActivationId::invalid();
      p.node = succ.beta;
      p.side = succ.side;
      p.tag = tag;
      if (succ.side == Side::Left) {
        p.token = Token{{id}};
      } else {
        p.wme = id;
      }
      queue_.push_back(std::move(p));
    }
    // Single-positive-CE productions: the wme itself is an instantiation.
    for (ProductionId pid : alpha.direct_productions) {
      update_conflict_set(pid, Token{{id}}, tag);
    }
  }
  drain();
  if (tag == Tag::Minus) {
    wmes_.erase(id);
  }
  flush_metrics();
}

void Engine::drain() {
  while (!queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    if (p.side == Side::Left) {
      process_left(p);
    } else {
      process_right(p);
    }
  }
}

std::vector<Value> Engine::left_key(const BetaNode& node,
                                    const Token& t) const {
  std::vector<Value> key;
  key.reserve(node.n_eq_tests);
  for (std::uint32_t i = 0; i < node.n_eq_tests; ++i) {
    const JoinTest& test = node.tests[i];
    key.push_back(wmes_.at(t.wmes[test.left_pos]).get(test.left_attr));
  }
  return key;
}

std::vector<Value> Engine::right_key(const BetaNode& node,
                                     const ops5::Wme& w) const {
  std::vector<Value> key;
  key.reserve(node.n_eq_tests);
  for (std::uint32_t i = 0; i < node.n_eq_tests; ++i) {
    key.push_back(w.get(node.tests[i].right_attr));
  }
  return key;
}

bool Engine::non_eq_tests_pass(const BetaNode& node, const Token& t,
                               const ops5::Wme& w) const {
  for (std::uint32_t i = node.n_eq_tests; i < node.tests.size(); ++i) {
    const JoinTest& test = node.tests[i];
    // The CE reads `^right_attr <pred> <var>`: the right wme's value is the
    // left operand of the predicate, the token's binding the right operand.
    const Value& lv = wmes_.at(t.wmes[test.left_pos]).get(test.left_attr);
    if (!w.get(test.right_attr).test(test.pred, lv)) return false;
  }
  return true;
}

void Engine::emit(const BetaNode& node, Token token, Tag tag,
                  ActivationId parent, std::uint32_t& successors,
                  std::uint32_t& instantiations) {
  for (const BetaSuccessor& succ : node.successors) {
    ++stats_.tokens_generated;
    if (succ.kind == BetaSuccessor::Kind::Production) {
      ++instantiations;
      update_conflict_set(succ.production, token, tag);
    } else {
      ++successors;
      Pending p;
      p.parent = parent;
      p.node = succ.beta;
      p.side = Side::Left;  // two-input node outputs feed left inputs only
      p.tag = tag;
      p.token = token;
      queue_.push_back(std::move(p));
    }
  }
}

void Engine::process_left(const Pending& p) {
  const BetaNode& node = net_.beta(p.node);
  ++stats_.left_activations;
  std::vector<Value> key = left_key(node, p.token);
  const std::uint32_t bucket = left_.bucket_of(node.id, key);

  ActivationRecord rec;
  rec.id = ActivationId{next_activation_++};
  rec.parent = p.parent;
  rec.node = node.id;
  rec.side = Side::Left;
  rec.tag = p.tag;
  rec.bucket = bucket;

  if (node.kind == BetaNode::Kind::Join) {
    if (p.tag == Tag::Plus) {
      observe_insert(left_, node.id, left_.insert(node.id, p.token, key));
    } else if (!left_.erase(node.id, p.token, key)) {
      ++stats_.stale_deletes;
    }
    const auto candidates = right_.find(node.id, key);
    observe_probe(candidates.size());
    for (HashedMemory::Entry* e : candidates) {
      ++stats_.comparisons;
      const ops5::Wme& w = wmes_.at(e->token.wmes[0]);
      if (!non_eq_tests_pass(node, p.token, w)) continue;
      Token child = p.token;
      child.wmes.push_back(e->token.wmes[0]);
      emit(node, std::move(child), p.tag, rec.id, rec.successors,
           rec.instantiations);
    }
  } else {  // Negative node
    if (p.tag == Tag::Plus) {
      int count = 0;
      const auto candidates = right_.find(node.id, key);
      observe_probe(candidates.size());
      for (HashedMemory::Entry* e : candidates) {
        ++stats_.comparisons;
        if (non_eq_tests_pass(node, p.token, wmes_.at(e->token.wmes[0]))) {
          ++count;
        }
      }
      observe_insert(left_, node.id, left_.insert(node.id, p.token, key));
      left_.find_token(node.id, p.token, key)->neg_count = count;
      if (count == 0) {
        emit(node, p.token, Tag::Plus, rec.id, rec.successors,
             rec.instantiations);
      }
    } else {
      HashedMemory::Entry* e = left_.find_token(node.id, p.token, key);
      if (e == nullptr) {
        ++stats_.stale_deletes;
      } else {
        const bool was_propagated = e->neg_count == 0;
        left_.erase(node.id, p.token, key);
        if (was_propagated) {
          emit(node, p.token, Tag::Minus, rec.id, rec.successors,
               rec.instantiations);
        }
      }
    }
  }
  if (listener_ != nullptr) listener_->on_activation(rec);
}

void Engine::process_right(const Pending& p) {
  const BetaNode& node = net_.beta(p.node);
  ++stats_.right_activations;
  const ops5::Wme& w = wmes_.at(p.wme);
  std::vector<Value> key = right_key(node, w);
  const std::uint32_t bucket = right_.bucket_of(node.id, key);
  const Token wme_token{{p.wme}};

  ActivationRecord rec;
  rec.id = ActivationId{next_activation_++};
  rec.parent = p.parent;
  rec.node = node.id;
  rec.side = Side::Right;
  rec.tag = p.tag;
  rec.bucket = bucket;

  if (node.kind == BetaNode::Kind::Join) {
    if (p.tag == Tag::Plus) {
      observe_insert(right_, node.id,
                     right_.insert(node.id, wme_token, key));
    } else if (!right_.erase(node.id, wme_token, key)) {
      ++stats_.stale_deletes;
    }
    const auto candidates = left_.find(node.id, key);
    observe_probe(candidates.size());
    for (HashedMemory::Entry* e : candidates) {
      ++stats_.comparisons;
      if (!non_eq_tests_pass(node, e->token, w)) continue;
      Token child = e->token;
      child.wmes.push_back(p.wme);
      emit(node, std::move(child), p.tag, rec.id, rec.successors,
           rec.instantiations);
    }
  } else {  // Negative node
    if (p.tag == Tag::Plus) {
      observe_insert(right_, node.id,
                     right_.insert(node.id, wme_token, key));
      const auto candidates = left_.find(node.id, key);
      observe_probe(candidates.size());
      for (HashedMemory::Entry* e : candidates) {
        ++stats_.comparisons;
        if (!non_eq_tests_pass(node, e->token, w)) continue;
        if (e->neg_count++ == 0) {
          emit(node, e->token, Tag::Minus, rec.id, rec.successors,
               rec.instantiations);
        }
      }
    } else {
      if (!right_.erase(node.id, wme_token, key)) {
        ++stats_.stale_deletes;
      } else {
        const auto candidates = left_.find(node.id, key);
        observe_probe(candidates.size());
        for (HashedMemory::Entry* e : candidates) {
          ++stats_.comparisons;
          if (!non_eq_tests_pass(node, e->token, w)) continue;
          if (--e->neg_count == 0) {
            emit(node, e->token, Tag::Plus, rec.id, rec.successors,
                 rec.instantiations);
          }
        }
      }
    }
  }
  if (listener_ != nullptr) listener_->on_activation(rec);
}

void Engine::update_conflict_set(ProductionId pid, const Token& token,
                                 Tag tag) {
  Instantiation inst{pid, token};
  if (tag == Tag::Plus) {
    conflict_.add(std::move(inst));
  } else {
    conflict_.remove(inst);
  }
}

}  // namespace mpps::rete
