// Section 3.1's memory problem: OPS83-style in-line code expansion needs
// 1-2 MB for ~1000-production systems, while a message-passing node may
// have only 10-20 KB of local memory.  The paper proposes two remedies,
// both implemented here:
//
//  1. Encode each two-input node as a compact 14-byte record indexed by
//     node id (instead of in-line expanded procedures), paying a small
//     register-load cost at activation start.
//  2. Partition the Rete nodes so each processor stores only one
//     partition — placing nodes of the same production in different
//     partitions to avoid contention.
#pragma once

#include <cstdint>
#include <vector>

#include "src/rete/network.hpp"

namespace mpps::rete {

/// How node code/data is represented on a processing node.
enum class NodeEncoding : std::uint8_t {
  /// In-line expanded match procedures (OPS83 software technology):
  /// fast, but hundreds of bytes of code per node.
  InlineExpanded,
  /// The paper's 14-byte packed two-input-node records plus shared
  /// interpreter code; a small fixed decode cost per activation.
  Packed14Byte,
};

struct FootprintEstimate {
  std::size_t alpha_bytes = 0;
  std::size_t beta_bytes = 0;
  std::size_t production_bytes = 0;
  std::size_t shared_runtime_bytes = 0;  // interpreter loop, hash code

  [[nodiscard]] std::size_t total() const {
    return alpha_bytes + beta_bytes + production_bytes +
           shared_runtime_bytes;
  }
};

/// Estimates the static memory footprint of a compiled network under the
/// chosen encoding.  The constants follow the paper's arithmetic: in-line
/// expansion averages ~1-2 KB per production (≈350 bytes per two-input
/// node plus constant-test code); the packed encoding stores 14 bytes per
/// two-input node plus one shared interpreter.
FootprintEstimate estimate_footprint(const Network& network,
                                     NodeEncoding encoding);

/// A partition of the network's node ids across `k` stores.
struct NodePartition {
  std::vector<std::vector<NodeId>> beta_nodes;  // per partition
  /// partition index per beta node id (index == NodeId value).
  std::vector<std::uint32_t> partition_of;
};

/// Partitions the two-input nodes across `k` stores such that nodes
/// belonging to a single production land in different partitions wherever
/// possible (the paper's contention-avoidance rule): each production's
/// chain is dealt round-robin starting at a rotating offset.  Throws
/// mpps::RuntimeError when k == 0.
NodePartition partition_nodes(const Network& network, std::uint32_t k);

/// Largest number of same-production nodes sharing one partition (1 is
/// ideal; only chains longer than `k` force collisions).
std::size_t max_production_collisions(const Network& network,
                                      const NodePartition& partition);

/// Per-partition packed footprint: 14 bytes per resident two-input node
/// plus the shared runtime.
std::vector<std::size_t> partition_footprints(const Network& network,
                                              const NodePartition& partition);

}  // namespace mpps::rete
