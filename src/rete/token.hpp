// Tokens: partial instantiations of productions flowing through the Rete
// network.  A token lists the wmes matching the positive condition elements
// matched so far (the paper's "list of wme IDs"); variable bindings are
// recovered from the wmes on demand, which is equivalent to carrying them.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/ids.hpp"

namespace mpps::rete {

/// Addition or deletion — the paper's +/- token tag.
enum class Tag : std::uint8_t { Plus, Minus };

/// Which input of a two-input node an activation arrives on.
enum class Side : std::uint8_t { Left, Right };

struct Token {
  std::vector<WmeId> wmes;  // one id per positive CE matched, in CE order

  friend bool operator==(const Token& a, const Token& b) = default;
};

struct TokenHash {
  std::size_t operator()(const Token& t) const noexcept {
    std::size_t h = 0x9E3779B97F4A7C15ull;
    for (WmeId w : t.wmes) {
      h ^= std::hash<WmeId>{}(w) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace mpps::rete
