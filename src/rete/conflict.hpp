// The conflict set and OPS5 conflict-resolution strategies (LEX and MEA),
// including refraction (an instantiation fires at most once while it stays
// in the conflict set).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "src/common/ids.hpp"
#include "src/rete/token.hpp"

namespace mpps::rete {

enum class Strategy : std::uint8_t { Lex, Mea };

/// A complete match of one production.
struct Instantiation {
  ProductionId production;
  Token token;  // wmes matching the positive CEs, in CE order

  friend bool operator==(const Instantiation&, const Instantiation&) = default;
};

/// The set of active instantiations, with LEX/MEA selection.
class ConflictSet {
 public:
  /// `specificity_of` returns the LHS test count of a production (the LEX
  /// tiebreaker).  Captured by reference semantics — keep it alive.
  explicit ConflictSet(
      std::function<std::size_t(ProductionId)> specificity_of);

  void add(Instantiation inst);
  /// Removes an instantiation (and forgets its refraction mark).
  /// Returns true if it was present.
  bool remove(const Instantiation& inst);

  /// Observer of conflict-set mutations: called once per successful add
  /// (`added == true`) and once per successful remove (`added == false`),
  /// from the thread doing the mutation (both engines mutate the conflict
  /// set only from their control thread).  The serving layer uses it to
  /// attribute each delta to the client transaction that caused it.
  using DeltaHook = std::function<void(const Instantiation&, bool added)>;
  void set_delta_hook(DeltaHook hook) { delta_hook_ = std::move(hook); }

  /// Picks the dominant unfired instantiation per `strategy`, or nullopt if
  /// every instantiation has already fired (or the set is empty).
  [[nodiscard]] std::optional<Instantiation> select(Strategy strategy) const;

  /// Marks an instantiation as fired (refraction).
  void mark_fired(const Instantiation& inst);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::vector<Instantiation> all() const;

 private:
  struct Entry {
    Instantiation inst;
    std::vector<WmeId> recency;  // timetags sorted descending
    std::size_t specificity = 0;
    bool fired = false;
  };

  /// True when `a` dominates `b` (should be preferred).
  static bool dominates(const Entry& a, const Entry& b, Strategy strategy);

  std::function<std::size_t(ProductionId)> specificity_of_;
  DeltaHook delta_hook_;
  std::vector<Entry> entries_;
};

}  // namespace mpps::rete
