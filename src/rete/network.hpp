// The compiled Rete network: alpha (constant-test) nodes, beta (two-input)
// nodes — joins and negative nodes — and production nodes.  Compilation
// shares alpha nodes with identical patterns and, optionally, beta-node
// chains across productions with common CE prefixes (the paper's "sharing").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ids.hpp"
#include "src/common/symbol.hpp"
#include "src/ops5/ast.hpp"
#include "src/ops5/wme.hpp"
#include "src/rete/token.hpp"

namespace mpps::rete {

using ops5::Predicate;
using ops5::Value;

/// One single-wme test evaluated in the alpha network.
struct AlphaTest {
  enum class Kind : std::uint8_t {
    Constant,     // wme.attr <pred> constant
    Disjunction,  // wme.attr ∈ {values}
    AttrCompare,  // wme.attr <pred> wme.other_attr   (intra-CE variable test)
  };
  Kind kind = Kind::Constant;
  Symbol attr;
  Predicate pred = Predicate::Eq;
  Value constant;             // Constant
  std::vector<Value> values;  // Disjunction
  Symbol other_attr;          // AttrCompare

  [[nodiscard]] bool matches(const ops5::Wme& w) const;
  friend bool operator==(const AlphaTest&, const AlphaTest&) = default;
};

/// Where an alpha node's output tokens go.
struct AlphaSuccessor {
  NodeId beta;  // destination beta node
  Side side = Side::Right;
};

/// An alpha node: the full constant-test pattern of one condition element.
/// Identical patterns across CEs/productions share one alpha node.
struct AlphaNode {
  NodeId id;
  Symbol wme_class;
  std::vector<AlphaTest> tests;
  std::vector<AlphaSuccessor> successors;
  std::vector<ProductionId> direct_productions;  // single-positive-CE rules

  [[nodiscard]] bool matches(const ops5::Wme& w) const;
};

/// One variable-consistency test at a two-input node: compare the value
/// bound at `left_pos`/`left_attr` in the left token against `right_attr`
/// of the right wme.
struct JoinTest {
  Predicate pred = Predicate::Eq;
  std::uint32_t left_pos = 0;  // index into the left token's wme list
  Symbol left_attr;
  Symbol right_attr;

  friend bool operator==(const JoinTest&, const JoinTest&) = default;
};

/// What a beta node feeds: either another beta node's left input or a
/// production node (terminal).
struct BetaSuccessor {
  enum class Kind : std::uint8_t { Beta, Production } kind = Kind::Beta;
  NodeId beta;              // valid when kind == Beta
  ProductionId production;  // valid when kind == Production
};

/// A two-input node: a join (positive CE) or a negative node (negated CE).
/// Equality-predicate tests come first in `tests`; their count is
/// `n_eq_tests` and their operand values form the hash key of the paper's
/// global token hash tables.
struct BetaNode {
  enum class Kind : std::uint8_t { Join, Negative } kind = Kind::Join;
  NodeId id;
  std::vector<JoinTest> tests;
  std::uint32_t n_eq_tests = 0;
  std::uint32_t left_arity = 0;  // wmes per incoming left token
  std::vector<BetaSuccessor> successors;

  // Identity of the inputs, used for chain sharing during compilation.
  NodeId left_source = NodeId::invalid();  // producing beta node, or invalid
  NodeId right_alpha = NodeId::invalid();  // alpha feeding the right input
  NodeId left_alpha = NodeId::invalid();   // alpha feeding the left input
                                           // (first beta level only)
};

/// A production node: receives complete instantiations.
struct ProductionNode {
  ProductionId id;
  std::string name;
  std::size_t production_index = 0;  // into Network's production list
};

/// Options controlling compilation.
struct CompileOptions {
  /// Share beta-node chains across productions with identical CE prefixes.
  /// Turning this off is the paper's "unsharing" transformation (Fig 5-3):
  /// every production owns private two-input nodes, so successor generation
  /// for different outputs lands in different hash buckets.
  bool share_beta_nodes = true;
  /// Share alpha nodes with identical patterns.
  bool share_alpha_nodes = true;
  /// Multi-tenant partition attribute (docs/SERVING.md).  When non-empty,
  /// every two-input node gets an implicit leading equality JoinTest on
  /// this attribute (left token position 0 vs. the right wme), so tokens
  /// only ever join wmes carrying the same partition value.  Because the
  /// test is an equality, the value becomes part of every node's hash key
  /// — partitions shard across the bucket space like the paper's DHT
  /// mapping, and `HashedMemory::find`'s exact key comparison keeps them
  /// disjoint even when bucket indices collide.  The attribute is
  /// reserved: the serving layer stamps it on every wme it admits.
  Symbol partition_attr;
};

/// The compiled network.  Immutable after `compile`.
class Network {
 public:
  /// Compiles a program.  Throws mpps::RuntimeError on semantic errors
  /// (e.g. a variable whose first occurrence is inside a negated CE being
  /// used in a later CE or in the RHS).
  static Network compile(const ops5::Program& program,
                         const CompileOptions& options = {});

  [[nodiscard]] const std::vector<AlphaNode>& alphas() const {
    return alphas_;
  }
  [[nodiscard]] const std::vector<BetaNode>& betas() const { return betas_; }
  [[nodiscard]] const BetaNode& beta(NodeId id) const {
    return betas_[id.value()];
  }
  [[nodiscard]] const std::vector<ProductionNode>& production_nodes() const {
    return pnodes_;
  }
  [[nodiscard]] const ops5::Production& production(ProductionId id) const {
    return productions_[pnodes_[id.value()].production_index];
  }
  [[nodiscard]] const std::vector<ops5::Production>& productions() const {
    return productions_;
  }

  /// For RHS/term evaluation: where each variable of production `id` was
  /// first bound: (position in the instantiation's wme list, attribute).
  struct VarBinding {
    Symbol var;
    std::uint32_t token_pos = 0;
    Symbol attr;
  };
  [[nodiscard]] const std::vector<VarBinding>& bindings(ProductionId id) const {
    return bindings_[id.value()];
  }

  /// Element-variable bindings (`{ <w> (ce) }`): variable → position of
  /// the bound wme in the instantiation's token.
  struct ElemBinding {
    Symbol var;
    std::uint32_t token_pos = 0;
  };
  [[nodiscard]] const std::vector<ElemBinding>& elem_bindings(
      ProductionId id) const {
    return elem_bindings_[id.value()];
  }

  /// Number of beta nodes whose successor list has >1 entry (diagnostics
  /// for the unsharing experiments).
  [[nodiscard]] std::size_t shared_beta_count() const;

 private:
  friend class NetworkBuilder;
  std::vector<AlphaNode> alphas_;
  std::vector<BetaNode> betas_;
  std::vector<ProductionNode> pnodes_;
  std::vector<ops5::Production> productions_;
  std::vector<std::vector<VarBinding>> bindings_;  // per production node
  std::vector<std::vector<ElemBinding>> elem_bindings_;
};

}  // namespace mpps::rete
