#include "src/rete/naive.hpp"

#include <optional>
#include <unordered_map>

namespace mpps::rete {

using ops5::Predicate;
using ops5::Value;
using Env = MatchEnv;

std::optional<Env> match_ce(const ops5::ConditionElement& ce,
                            const ops5::Wme& w, const Env& env) {
  if (w.wme_class() != ce.ce_class) return std::nullopt;
  Env out = env;
  for (const auto& attr_test : ce.attr_tests) {
    const Value& actual = w.get(attr_test.attr);
    for (const auto& atomic : attr_test.tests) {
      if (atomic.is_disjunction()) {
        bool any = false;
        for (const Value& v : atomic.disjunction) {
          if (actual.equals(v)) {
            any = true;
            break;
          }
        }
        if (!any) return std::nullopt;
        continue;
      }
      if (!atomic.operand.is_var()) {
        if (!actual.test(atomic.pred, atomic.operand.constant)) {
          return std::nullopt;
        }
        continue;
      }
      const Symbol var = atomic.operand.variable;
      if (auto it = out.find(var); it != out.end()) {
        if (!actual.test(atomic.pred, it->second)) return std::nullopt;
      } else if (atomic.pred == Predicate::Eq) {
        out.emplace(var, actual);
      } else {
        return std::nullopt;  // predicate on an unbound variable
      }
    }
  }
  return out;
}

namespace {

struct Searcher {
  const ops5::Production& prod;
  const std::vector<const ops5::Wme*>& wmes;
  ProductionId pid;
  std::vector<Instantiation>& out;

  void search(std::size_t ce_index, const Env& env,
              std::vector<WmeId>& token) {
    if (ce_index == prod.lhs.size()) {
      out.push_back(Instantiation{pid, Token{token}});
      return;
    }
    const auto& ce = prod.lhs[ce_index];
    if (ce.negated) {
      for (const ops5::Wme* w : wmes) {
        // Bindings inside a negated CE are local to it (existential).
        if (match_ce(ce, *w, env).has_value()) return;
      }
      search(ce_index + 1, env, token);
      return;
    }
    for (const ops5::Wme* w : wmes) {
      if (auto extended = match_ce(ce, *w, env)) {
        token.push_back(w->id());
        search(ce_index + 1, *extended, token);
        token.pop_back();
      }
    }
  }
};

}  // namespace

std::vector<Instantiation> naive_match(
    const ops5::Program& program, const std::vector<const ops5::Wme*>& wmes) {
  std::vector<Instantiation> out;
  for (std::size_t i = 0; i < program.productions.size(); ++i) {
    std::vector<WmeId> token;
    Searcher searcher{program.productions[i], wmes,
                      ProductionId{static_cast<std::uint32_t>(i)}, out};
    Env env;
    searcher.search(0, env, token);
  }
  return out;
}

}  // namespace mpps::rete
