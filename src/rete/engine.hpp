// The serial Rete match engine over hashed memories.  It propagates +/-
// tokens through the compiled network, maintains the conflict set, and
// reports every two-input node activation to an optional listener — that
// listener is how the trace module records the hash-table activity the MPC
// simulator replays (the paper's Figure 4-1 input).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/ids.hpp"
#include "src/obs/metrics.hpp"
#include "src/ops5/wme.hpp"
#include "src/rete/conflict.hpp"
#include "src/rete/memory.hpp"
#include "src/rete/network.hpp"
#include "src/rete/token.hpp"

namespace mpps::rete {

/// One two-input node activation, as the paper defines it: a token stored
/// into a memory plus the match against the opposite bucket.
struct ActivationRecord {
  ActivationId id;
  /// The activation whose match generated this token; invalid when the
  /// token came straight from the constant-test phase (a WM change).
  ActivationId parent;
  NodeId node;
  Side side = Side::Left;
  Tag tag = Tag::Plus;
  std::uint32_t bucket = 0;      // global hash bucket index
  std::uint32_t successors = 0;  // tokens generated toward beta successors
  std::uint32_t instantiations = 0;  // tokens sent to production nodes
};

/// Observer of engine activity; implemented by the trace collector.
class ActivationListener {
 public:
  virtual ~ActivationListener() = default;
  /// A WM change is about to be pushed through the constant-test layer.
  virtual void on_wme_change(const ops5::WmeChange& change) { (void)change; }
  /// A two-input node activation completed (successor counts are final).
  virtual void on_activation(const ActivationRecord& record) { (void)record; }
};

struct EngineOptions {
  /// Buckets per side of the global hash table — the unit the MPC mapping
  /// distributes across match processors.
  std::uint32_t num_buckets = 256;
  /// Optional metrics registry (not owned; see docs/OBSERVABILITY.md).
  /// Records rete.* counters, the hash-probe-length histogram and the
  /// bucket-occupancy histogram.  Null ⇒ zero recording cost.
  obs::Registry* metrics = nullptr;
};

struct EngineStats {
  std::uint64_t left_activations = 0;
  std::uint64_t right_activations = 0;
  std::uint64_t tokens_generated = 0;
  std::uint64_t comparisons = 0;  // opposite-bucket entries examined
  std::uint64_t stale_deletes = 0;

  friend bool operator==(const EngineStats&, const EngineStats&) = default;
};

/// The match-engine contract the Interpreter's MRA loop drives.  Both the
/// serial `Engine` below and `pmatch::ParallelEngine` implement it; all an
/// engine owes the loop is per-change propagation, the conflict set, and
/// access to the wmes currently live inside the network.
class MatchEngine {
 public:
  virtual ~MatchEngine() = default;

  /// Registers the activation observer (e.g. the trace collector).
  /// Implementations must deliver activations in a deterministic order
  /// consistent with `trace::validate` (parents precede children).
  virtual void set_listener(ActivationListener* listener) = 0;

  /// Pushes one WM change (add or delete) fully through the network.
  virtual void process_change(const ops5::WmeChange& change) = 0;

  /// Pushes a whole act-phase's worth of WM changes through the network,
  /// in order.  The default is the per-change loop; engines that can
  /// amortize work across changes (pmatch batched BSP phases) override
  /// it.  The resulting conflict set is identical either way.
  virtual void process_changes(std::span<const ops5::WmeChange> changes) {
    for (const ops5::WmeChange& change : changes) process_change(change);
  }

  [[nodiscard]] virtual ConflictSet& conflict_set() = 0;

  /// The wme with `id`, which must be live inside the network.
  [[nodiscard]] virtual const ops5::Wme& wme(WmeId id) const = 0;

  [[nodiscard]] virtual const EngineStats& stats() const = 0;
};

/// Builds a match engine over a compiled network.  InterpreterOptions
/// carries one of these so callers can swap in a parallel engine without
/// the interpreter depending on it.
using MatchEngineFactory = std::function<std::unique_ptr<MatchEngine>(
    const Network&, const EngineOptions&)>;

class Engine final : public MatchEngine {
 public:
  /// The network must outlive the engine.
  explicit Engine(const Network& net, EngineOptions options = {});

  void set_listener(ActivationListener* listener) override {
    listener_ = listener;
  }

  /// Pushes one WM change (add or delete) fully through the network.
  void process_change(const ops5::WmeChange& change) override;

  [[nodiscard]] ConflictSet& conflict_set() override { return conflict_; }
  [[nodiscard]] const ConflictSet& conflict_set() const { return conflict_; }

  [[nodiscard]] const EngineStats& stats() const override { return stats_; }
  [[nodiscard]] const HashedMemory& left_memory() const { return left_; }
  [[nodiscard]] const HashedMemory& right_memory() const { return right_; }

  /// The wme with `id`, which must be live inside the network.
  [[nodiscard]] const ops5::Wme& wme(WmeId id) const override {
    return wmes_.at(id);
  }

 private:
  struct Pending {
    ActivationId parent;
    NodeId node;
    Side side;
    Tag tag;
    Token token;  // left activations; right activations use `wme`
    WmeId wme;    // right activations
  };

  /// Instrument handles resolved once at construction (hot-path recording
  /// is one null check when no registry is attached).
  struct Instruments {
    obs::Counter* left = nullptr;
    obs::Counter* right = nullptr;
    obs::Counter* tokens = nullptr;
    obs::Counter* comparisons = nullptr;
    obs::Counter* stale = nullptr;
    obs::Histogram* probe_len = nullptr;
    obs::Histogram* occupancy = nullptr;
    obs::Gauge* live_tokens = nullptr;
  };

  void drain();
  /// Mirrors the EngineStats deltas since the last flush into the
  /// registry; called at the end of every process_change.
  void flush_metrics();
  void observe_probe(std::size_t candidates) {
    if (instr_.probe_len != nullptr) {
      instr_.probe_len->observe(static_cast<std::int64_t>(candidates));
    }
  }
  void observe_insert(const HashedMemory& mem, NodeId node,
                      std::uint32_t bucket) {
    if (instr_.occupancy != nullptr) {
      instr_.occupancy->observe(
          static_cast<std::int64_t>(mem.cell_size(node, bucket)));
    }
  }
  void process_left(const Pending& p);
  void process_right(const Pending& p);
  std::vector<Value> left_key(const BetaNode& node, const Token& t) const;
  std::vector<Value> right_key(const BetaNode& node,
                               const ops5::Wme& w) const;
  bool non_eq_tests_pass(const BetaNode& node, const Token& t,
                         const ops5::Wme& w) const;
  /// Routes a generated token to `node`'s successors; returns counts.
  void emit(const BetaNode& node, Token token, Tag tag, ActivationId parent,
            std::uint32_t& successors, std::uint32_t& instantiations);
  void update_conflict_set(ProductionId pid, const Token& token, Tag tag);

  const Network& net_;
  EngineOptions options_;
  ActivationListener* listener_ = nullptr;
  HashedMemory left_;
  HashedMemory right_;
  ConflictSet conflict_;
  std::unordered_map<WmeId, ops5::Wme> wmes_;
  std::deque<Pending> queue_;
  std::uint64_t next_activation_ = 1;
  EngineStats stats_;
  Instruments instr_;
  EngineStats flushed_;
};

}  // namespace mpps::rete
