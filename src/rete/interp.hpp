// The OPS5 interpreter: the match-resolve-act cycle over the Rete engine.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/ops5/ast.hpp"
#include "src/ops5/wme.hpp"
#include "src/rete/conflict.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/network.hpp"

namespace mpps::rete {

struct InterpreterOptions {
  Strategy strategy = Strategy::Lex;
  std::size_t max_cycles = 100000;
  CompileOptions compile;
  EngineOptions engine;
  /// Builds the match engine from the compiled network; null ⇒ the serial
  /// `rete::Engine`.  `pmatch::parallel_engine_factory` plugs the
  /// multithreaded engine in here.
  MatchEngineFactory engine_factory;
  /// Sink for `(write ...)` actions; null discards the output.
  std::ostream* out = nullptr;
  /// OPS5 `watch` level (needs `out`): 0 = silent, 1 = production firings,
  /// 2 = firings + working-memory changes.
  int watch = 0;
};

/// One production firing.
struct FireRecord {
  std::size_t cycle = 0;
  std::string production;
  std::vector<WmeId> wmes;
};

struct RunResult {
  enum class Outcome : std::uint8_t { Halted, Quiescent, CycleLimit };
  Outcome outcome = Outcome::Quiescent;
  std::size_t cycles = 0;
  std::size_t firings = 0;
};

class Interpreter {
 public:
  explicit Interpreter(ops5::Program program, InterpreterOptions options = {});

  /// Adds the program's top-level `(make ...)` wmes to working memory.
  /// They are matched on the first `step`/`run`.
  void load_initial_wmes();

  /// Convenience for driving working memory from code or tests.
  WmeId make_wme(ops5::Wme wme) { return wm_.add(std::move(wme)); }
  bool remove_wme(WmeId id) { return wm_.remove(id); }

  /// Runs one MRA cycle: match pending WM changes, resolve, act.
  /// Returns false when execution stops (halt, or no instantiation fires).
  bool step();

  /// Runs cycles until halt/quiescence/cycle-limit.
  RunResult run();

  [[nodiscard]] const Network& network() const { return *network_; }
  /// The active match engine, whatever its implementation.
  [[nodiscard]] MatchEngine& match_engine() { return *engine_; }
  /// The serial engine, for callers needing its extended surface (hash
  /// memories, bucket diagnostics).  Throws mpps::RuntimeError when the
  /// interpreter was built with a non-serial engine_factory.
  [[nodiscard]] Engine& engine();
  [[nodiscard]] ops5::WorkingMemory& wm() { return wm_; }
  [[nodiscard]] const std::vector<FireRecord>& firings() const {
    return firings_;
  }
  [[nodiscard]] std::size_t cycle() const { return cycle_; }
  [[nodiscard]] bool halted() const { return halted_; }

 private:
  void match();
  void act(const Instantiation& inst);
  ops5::Value eval_term(const ops5::Term& term, const Instantiation& inst,
                        const std::vector<std::pair<Symbol, ops5::Value>>&
                            rhs_bindings) const;
  /// Maps a 1-based CE number (over all CEs) to the token position.
  std::size_t token_pos(const ops5::Production& p, int ce_number) const;
  /// Resolves a remove/modify target: element variable, or CE number.
  std::size_t target_pos(const ops5::Production& p, const Instantiation& inst,
                         int ce_number, Symbol elem_var) const;

  ops5::Program program_;
  InterpreterOptions options_;
  std::unique_ptr<Network> network_;  // stable address for engine_
  std::unique_ptr<MatchEngine> engine_;
  ops5::WorkingMemory wm_;
  std::vector<FireRecord> firings_;
  std::size_t cycle_ = 0;
  bool halted_ = false;
};

}  // namespace mpps::rete
