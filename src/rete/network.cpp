#include "src/rete/network.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/error.hpp"

namespace mpps::rete {

bool AlphaTest::matches(const ops5::Wme& w) const {
  const Value& actual = w.get(attr);
  switch (kind) {
    case Kind::Constant:
      return actual.test(pred, constant);
    case Kind::Disjunction:
      return std::any_of(values.begin(), values.end(),
                         [&](const Value& v) { return actual.equals(v); });
    case Kind::AttrCompare:
      return actual.test(pred, w.get(other_attr));
  }
  return false;
}

bool AlphaNode::matches(const ops5::Wme& w) const {
  if (w.wme_class() != wme_class) return false;
  return std::all_of(tests.begin(), tests.end(),
                     [&](const AlphaTest& t) { return t.matches(w); });
}

std::size_t Network::shared_beta_count() const {
  std::size_t n = 0;
  for (const auto& b : betas_) {
    if (b.successors.size() > 1) ++n;
  }
  return n;
}

namespace {

/// Where a variable was first bound: token position + attribute.
struct BindingSite {
  std::uint32_t pos = 0;
  Symbol attr;
};

}  // namespace

class NetworkBuilder {
 public:
  explicit NetworkBuilder(const CompileOptions& options) : options_(options) {}

  Network build(const ops5::Program& program) {
    net_.productions_ = program.productions;
    for (std::size_t i = 0; i < program.productions.size(); ++i) {
      compile_production(program.productions[i], i);
    }
    return std::move(net_);
  }

 private:
  // -- alpha layer ---------------------------------------------------------

  /// The per-CE result of splitting tests into alpha tests and join tests.
  struct CeAnalysis {
    AlphaNode pattern;                 // id unset; tests filled
    std::vector<JoinTest> join_tests;  // vs earlier positive CEs
    std::vector<std::pair<Symbol, Symbol>> new_bindings;  // (var, attr)
  };

  CeAnalysis analyze_ce(const ops5::ConditionElement& ce,
                        const std::unordered_map<Symbol, BindingSite>& varmap,
                        const std::string& production_name) {
    CeAnalysis out;
    out.pattern.wme_class = ce.ce_class;
    std::unordered_map<Symbol, Symbol> local;  // var -> first attr in this CE
    for (const auto& attr_test : ce.attr_tests) {
      for (const auto& atomic : attr_test.tests) {
        if (atomic.is_disjunction()) {
          AlphaTest t;
          t.kind = AlphaTest::Kind::Disjunction;
          t.attr = attr_test.attr;
          t.values = atomic.disjunction;
          out.pattern.tests.push_back(std::move(t));
          continue;
        }
        if (!atomic.operand.is_var()) {
          AlphaTest t;
          t.kind = AlphaTest::Kind::Constant;
          t.attr = attr_test.attr;
          t.pred = atomic.pred;
          t.constant = atomic.operand.constant;
          out.pattern.tests.push_back(std::move(t));
          continue;
        }
        const Symbol var = atomic.operand.variable;
        if (auto it = local.find(var); it != local.end()) {
          // Same variable earlier in this CE: intra-CE attribute compare.
          AlphaTest t;
          t.kind = AlphaTest::Kind::AttrCompare;
          t.attr = attr_test.attr;
          t.pred = atomic.pred;
          t.other_attr = it->second;
          out.pattern.tests.push_back(std::move(t));
          continue;
        }
        if (auto it = varmap.find(var); it != varmap.end()) {
          // Bound in an earlier positive CE: inter-CE test at the join.
          out.join_tests.push_back(JoinTest{atomic.pred, it->second.pos,
                                            it->second.attr, attr_test.attr});
          continue;
        }
        // First occurrence anywhere.
        if (atomic.pred != Predicate::Eq) {
          throw RuntimeError("production '" + production_name +
                             "': predicate test on unbound variable <" +
                             std::string(var.text()) + ">");
        }
        local.emplace(var, attr_test.attr);
        out.new_bindings.emplace_back(var, attr_test.attr);
      }
    }
    // Equality tests first: their operands form the hash key.
    std::stable_partition(
        out.join_tests.begin(), out.join_tests.end(),
        [](const JoinTest& t) { return t.pred == Predicate::Eq; });
    return out;
  }

  NodeId intern_alpha(AlphaNode pattern) {
    if (options_.share_alpha_nodes) {
      for (const auto& a : net_.alphas_) {
        if (a.wme_class == pattern.wme_class && a.tests == pattern.tests) {
          return a.id;
        }
      }
    }
    pattern.id = NodeId{static_cast<std::uint32_t>(net_.alphas_.size())};
    NodeId id = pattern.id;
    net_.alphas_.push_back(std::move(pattern));
    return id;
  }

  // -- beta layer ----------------------------------------------------------

  /// Finds a shareable beta node with identical inputs and tests, or creates
  /// one and wires it to its alpha and left source.
  NodeId intern_beta(BetaNode::Kind kind, NodeId left_source, NodeId left_alpha,
                     NodeId right_alpha, std::vector<JoinTest> tests,
                     std::uint32_t left_arity) {
    if (!options_.partition_attr.empty()) {
      // Multi-tenant isolation (CompileOptions::partition_attr): prepend
      // the implicit partition equality so it leads the hash key.  Done
      // before the sharing lookup so shared and private nodes agree.
      tests.insert(tests.begin(),
                   JoinTest{Predicate::Eq, 0, options_.partition_attr,
                            options_.partition_attr});
    }
    if (options_.share_beta_nodes) {
      for (const auto& b : net_.betas_) {
        if (b.kind == kind && b.left_source == left_source &&
            b.left_alpha == left_alpha && b.right_alpha == right_alpha &&
            b.tests == tests) {
          return b.id;
        }
      }
    }
    BetaNode node;
    node.kind = kind;
    node.id = NodeId{static_cast<std::uint32_t>(net_.betas_.size())};
    node.tests = std::move(tests);
    node.n_eq_tests = static_cast<std::uint32_t>(std::count_if(
        node.tests.begin(), node.tests.end(),
        [](const JoinTest& t) { return t.pred == Predicate::Eq; }));
    node.left_arity = left_arity;
    node.left_source = left_source;
    node.left_alpha = left_alpha;
    node.right_alpha = right_alpha;
    NodeId id = node.id;
    net_.betas_.push_back(std::move(node));

    net_.alphas_[right_alpha.value()].successors.push_back(
        AlphaSuccessor{id, Side::Right});
    if (left_source.valid()) {
      net_.betas_[left_source.value()].successors.push_back(
          BetaSuccessor{BetaSuccessor::Kind::Beta, id, ProductionId::invalid()});
    } else {
      net_.alphas_[left_alpha.value()].successors.push_back(
          AlphaSuccessor{id, Side::Left});
    }
    return id;
  }

  // -- production ----------------------------------------------------------

  void compile_production(const ops5::Production& p, std::size_t index) {
    if (p.lhs.empty() || p.lhs[0].negated) {
      throw RuntimeError("production '" + p.name +
                         "': first condition element must be positive");
    }
    std::unordered_map<Symbol, BindingSite> varmap;
    std::vector<Network::ElemBinding> elem_bindings;
    NodeId cur_beta = NodeId::invalid();
    NodeId first_alpha = NodeId::invalid();
    std::uint32_t arity = 0;  // positive CEs folded into the token so far

    for (std::size_t k = 0; k < p.lhs.size(); ++k) {
      const auto& ce = p.lhs[k];
      if (!ce.elem_var.empty()) {
        if (ce.negated) {
          throw RuntimeError("production '" + p.name +
                             "': element variable on a negated CE");
        }
        elem_bindings.push_back(Network::ElemBinding{ce.elem_var, arity});
      }
      CeAnalysis analysis = analyze_ce(ce, varmap, p.name);
      NodeId alpha = intern_alpha(std::move(analysis.pattern));

      if (k == 0) {
        first_alpha = alpha;
        arity = 1;
        for (const auto& [var, attr] : analysis.new_bindings) {
          varmap.emplace(var, BindingSite{0, attr});
        }
        continue;
      }
      const auto kind =
          ce.negated ? BetaNode::Kind::Negative : BetaNode::Kind::Join;
      cur_beta = intern_beta(kind, cur_beta,
                             cur_beta.valid() ? NodeId::invalid() : first_alpha,
                             alpha, std::move(analysis.join_tests), arity);
      if (!ce.negated) {
        for (const auto& [var, attr] : analysis.new_bindings) {
          varmap.emplace(var, BindingSite{arity, attr});
        }
        ++arity;
      }
      // Bindings introduced inside a negated CE are existential-local and
      // are dropped here; later uses of such a variable re-bind it fresh.
    }

    ProductionId pid{static_cast<std::uint32_t>(net_.pnodes_.size())};
    net_.pnodes_.push_back(ProductionNode{pid, p.name, index});
    if (cur_beta.valid()) {
      net_.betas_[cur_beta.value()].successors.push_back(
          BetaSuccessor{BetaSuccessor::Kind::Production, NodeId::invalid(),
                        pid});
    } else {
      net_.alphas_[first_alpha.value()].direct_productions.push_back(pid);
    }

    std::vector<Network::VarBinding> bindings;
    bindings.reserve(varmap.size());
    for (const auto& [var, site] : varmap) {
      bindings.push_back(Network::VarBinding{var, site.pos, site.attr});
    }
    std::sort(bindings.begin(), bindings.end(),
              [](const auto& a, const auto& b) { return a.var < b.var; });
    net_.bindings_.push_back(std::move(bindings));
    net_.elem_bindings_.push_back(elem_bindings);

    validate_rhs(p, varmap, elem_bindings);
  }

  void validate_rhs(const ops5::Production& p,
                    const std::unordered_map<Symbol, BindingSite>& varmap,
                    const std::vector<Network::ElemBinding>& elem_bindings) {
    std::unordered_set<Symbol> rhs_bound;
    // Recursively walks a term (compute expressions nest terms).
    auto check_term = [&](const ops5::Term& term) {
      auto walk = [&](auto&& self, const ops5::Term& t) -> void {
        if (t.is_var() && !varmap.contains(t.variable) &&
            !rhs_bound.contains(t.variable)) {
          throw RuntimeError("production '" + p.name + "': RHS variable <" +
                             std::string(t.variable.text()) +
                             "> is not bound by a positive condition element");
        }
        for (const auto& operand : t.compute_operands) self(self, operand);
      };
      walk(walk, term);
    };
    auto check_ce_number = [&](int n, const char* action) {
      if (n < 1 || static_cast<std::size_t>(n) > p.lhs.size()) {
        throw RuntimeError("production '" + p.name + "': " + action +
                           " refers to condition element " + std::to_string(n) +
                           " of " + std::to_string(p.lhs.size()));
      }
      if (p.lhs[static_cast<std::size_t>(n) - 1].negated) {
        throw RuntimeError("production '" + p.name + "': " + action +
                           " refers to a negated condition element");
      }
    };
    auto check_elem_var = [&](Symbol var, const char* action) {
      for (const auto& binding : elem_bindings) {
        if (binding.var == var) return;
      }
      throw RuntimeError("production '" + p.name + "': " + action +
                         " refers to unknown element variable <" +
                         std::string(var.text()) + ">");
    };
    for (const auto& action : p.rhs) {
      if (const auto* m = std::get_if<ops5::MakeAction>(&action)) {
        for (const auto& [attr, term] : m->slots) check_term(term);
      } else if (const auto* r = std::get_if<ops5::RemoveAction>(&action)) {
        if (r->elem_var.empty()) {
          check_ce_number(r->ce_index, "remove");
        } else {
          check_elem_var(r->elem_var, "remove");
        }
      } else if (const auto* mo = std::get_if<ops5::ModifyAction>(&action)) {
        if (mo->elem_var.empty()) {
          check_ce_number(mo->ce_index, "modify");
        } else {
          check_elem_var(mo->elem_var, "modify");
        }
        for (const auto& [attr, term] : mo->slots) check_term(term);
      } else if (const auto* w = std::get_if<ops5::WriteAction>(&action)) {
        for (const auto& term : w->terms) check_term(term);
      } else if (const auto* b = std::get_if<ops5::BindAction>(&action)) {
        check_term(b->term);
        rhs_bound.insert(b->variable);
      }
    }
  }

  CompileOptions options_;
  Network net_;
};

Network Network::compile(const ops5::Program& program,
                         const CompileOptions& options) {
  return NetworkBuilder(options).build(program);
}

}  // namespace mpps::rete
