#include "src/rete/footprint.hpp"

#include <algorithm>
#include <unordered_map>

#include "src/common/error.hpp"

namespace mpps::rete {
namespace {

// Size constants.  The in-line numbers are calibrated to the paper's
// report that ~1000-production systems need 1-2 MB under OPS83-style
// expansion; the packed two-input record is the paper's 14 bytes.
constexpr std::size_t kInlineBetaBytes = 350;
constexpr std::size_t kInlineAlphaTestBytes = 60;
constexpr std::size_t kInlineProductionBytes = 400;  // RHS code
constexpr std::size_t kPackedBetaBytes = 14;
constexpr std::size_t kPackedAlphaTestBytes = 8;
constexpr std::size_t kPackedProductionBytes = 64;  // RHS action records
constexpr std::size_t kSharedRuntimeBytes = 6 * 1024;  // interpreter + hash

/// Walks each production's beta chain from its terminal node upward.
std::vector<std::vector<NodeId>> production_chains(const Network& network) {
  // Build a reverse map: which beta feeds which (left_source edges).
  std::vector<std::vector<NodeId>> chains;
  for (const auto& pnode : network.production_nodes()) {
    // Find the terminal beta: the one whose successors include pnode.
    NodeId terminal = NodeId::invalid();
    for (const auto& beta : network.betas()) {
      for (const auto& succ : beta.successors) {
        if (succ.kind == BetaSuccessor::Kind::Production &&
            succ.production == pnode.id) {
          terminal = beta.id;
        }
      }
    }
    std::vector<NodeId> chain;
    NodeId cursor = terminal;
    while (cursor.valid()) {
      chain.push_back(cursor);
      cursor = network.beta(cursor).left_source;
    }
    std::reverse(chain.begin(), chain.end());  // top-down
    chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace

FootprintEstimate estimate_footprint(const Network& network,
                                     NodeEncoding encoding) {
  FootprintEstimate out;
  std::size_t alpha_tests = 0;
  for (const auto& alpha : network.alphas()) {
    alpha_tests += 1 + alpha.tests.size();  // class test + attribute tests
  }
  const bool packed = encoding == NodeEncoding::Packed14Byte;
  out.alpha_bytes = alpha_tests * (packed ? kPackedAlphaTestBytes
                                          : kInlineAlphaTestBytes);
  out.beta_bytes = network.betas().size() *
                   (packed ? kPackedBetaBytes : kInlineBetaBytes);
  out.production_bytes =
      network.production_nodes().size() *
      (packed ? kPackedProductionBytes : kInlineProductionBytes);
  out.shared_runtime_bytes = packed ? kSharedRuntimeBytes : 0;
  return out;
}

NodePartition partition_nodes(const Network& network, std::uint32_t k) {
  if (k == 0) {
    throw RuntimeError("partition_nodes: need at least one partition");
  }
  NodePartition out;
  out.beta_nodes.resize(k);
  out.partition_of.assign(network.betas().size(), 0);
  std::vector<bool> placed(network.betas().size(), false);

  // Deal each production's chain round-robin, rotating the starting
  // partition per production so partitions fill evenly.  Shared nodes keep
  // their first placement.
  std::uint32_t rotation = 0;
  for (const auto& chain : production_chains(network)) {
    std::uint32_t slot = rotation++;
    for (NodeId node : chain) {
      if (placed[node.value()]) {
        ++slot;  // keep advancing so later nodes still spread
        continue;
      }
      const std::uint32_t partition = slot++ % k;
      placed[node.value()] = true;
      out.partition_of[node.value()] = partition;
      out.beta_nodes[partition].push_back(node);
    }
  }
  // Betas not reachable through any production chain (possible only for
  // malformed networks) go to partition 0 — keep the invariant total.
  for (std::size_t i = 0; i < placed.size(); ++i) {
    if (!placed[i]) {
      out.beta_nodes[0].push_back(NodeId{static_cast<std::uint32_t>(i)});
    }
  }
  return out;
}

std::size_t max_production_collisions(const Network& network,
                                      const NodePartition& partition) {
  std::size_t worst = 0;
  for (const auto& chain : production_chains(network)) {
    std::unordered_map<std::uint32_t, std::size_t> counts;
    for (NodeId node : chain) {
      worst = std::max(worst, ++counts[partition.partition_of[node.value()]]);
    }
  }
  return worst;
}

std::vector<std::size_t> partition_footprints(const Network& network,
                                              const NodePartition& partition) {
  (void)network;
  std::vector<std::size_t> out(partition.beta_nodes.size(),
                               kSharedRuntimeBytes);
  for (std::size_t p = 0; p < partition.beta_nodes.size(); ++p) {
    out[p] += partition.beta_nodes[p].size() * kPackedBetaBytes;
  }
  return out;
}

}  // namespace mpps::rete
