// The public API facade.  `#include "src/mpps.hpp"` is the one header a
// downstream user needs: it re-exports the supported surface into the
// top-level `mpps` namespace and adds fluent builders for the option
// structs.  Everything not re-exported here is internal — reachable, but
// subject to change without notice (docs/API.md is the contract).
//
// The supported surface, end to end:
//
//   using namespace mpps;
//   Program program = parse_program(source);          // OPS5 text → AST
//   Network net = Network::compile(program);          // → Rete network
//   Interpreter interp(program, ...);                 // match-resolve-act
//   ParallelEngine / parallel_engine_factory(...)     // threaded matcher
//   ServeEngine serve(program, opts);                 // multi-tenant server
//   Session s = serve.open_session();                 //   one WM partition
//   TxResult r = s.transact(tx);                      //   docs/SERVING.md
//   Collector                                         // records a Trace
//   SimResult r = simulate(trace, config, assign);    // simulated MPC
//   SweepRunner(opts).run(scenarios)                  // parallel sweeps
//   check_corpus(builtin_corpus(), CheckOptions{})    // model checker
//
// Mutating working memory: the Session/Transaction surface is THE way to
// stream WM changes into a live engine — batch replay is a single session
// replaying a recorded stream (`Session::transact(changes)`), and the
// interpreter's act phases ride the same `begin_batch`/`flush`
// transaction path underneath.  `ParallelEngine::process_changes` remains
// as a thin shim over that path for existing callers.
//
// Builders (each `build()` returns the plain options struct).  Shared
// error contract: every setter validates its argument immediately and
// throws mpps::UsageError naming the field — never a silent coercion at
// build() or later:
//
//   SimConfig config = SimConfigBuilder()
//       .match_processors(16).run(2).pairs_mapping()
//       .termination(TerminationModel::AckCounting).build();
//   EngineOptions eopts = EngineOptionsBuilder()
//       .num_buckets(128).metrics(&registry).build();
//   ParallelOptions popts = ParallelOptionsBuilder()
//       .threads(4).random_partition(7).build();
//   ServeOptions sopts = ServeOptionsBuilder()
//       .threads(4).admission_batch(16).queue_capacity(256).build();
#pragma once

#include "src/common/error.hpp"
#include "src/core/cli.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/sweep.hpp"
#include "src/mc/checker.hpp"
#include "src/mc/controller.hpp"
#include "src/mc/scenario.hpp"
#include "src/mc/schedule.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/tracer.hpp"
#include "src/ops5/parser.hpp"
#include "src/ops5/wme.hpp"
#include "src/pmatch/engine.hpp"
#include "src/rete/engine.hpp"
#include "src/rete/interp.hpp"
#include "src/rete/network.hpp"
#include "src/serve/serve.hpp"
#include "src/sim/assignment.hpp"
#include "src/sim/costs.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/collector.hpp"
#include "src/trace/io.hpp"
#include "src/trace/record.hpp"

namespace mpps {

// --- OPS5 front end --------------------------------------------------------
using ops5::parse_program;
using ops5::Program;
using ops5::Value;
using ops5::Wme;
using ops5::WmeChange;
using ops5::WorkingMemory;

// --- Match engines ---------------------------------------------------------
using rete::Engine;
using rete::EngineOptions;
using rete::EngineStats;
using rete::Interpreter;
using rete::InterpreterOptions;
using rete::MatchEngine;
using rete::MatchEngineFactory;
using rete::Network;
using rete::Strategy;
using pmatch::greedy_static;
using pmatch::parallel_engine_factory;
using pmatch::ParallelEngine;
using pmatch::ParallelOptions;
using pmatch::WorkerStats;

// --- Serving ---------------------------------------------------------------
using serve::LatencyReport;
using serve::ServeEngine;
using serve::ServeOptions;
using serve::ServeStats;
using serve::Session;
using serve::SessionOptions;
using serve::Transaction;
using serve::TxResult;

// --- Traces ----------------------------------------------------------------
using trace::Collector;
using trace::read_trace;
using trace::Trace;
using trace::write_trace;

// --- Simulated machine -----------------------------------------------------
using sim::Assignment;
using sim::baseline_time;
using sim::CostModel;
using sim::MappingMode;
using sim::simulate;
using sim::SimConfig;
using sim::SimResult;
using sim::TerminationModel;

// --- Orchestration ---------------------------------------------------------
using core::PipelineOptions;
using core::PipelineResult;
using core::record_trace_from_source;
using core::run_cli;
using core::SweepOptions;
using core::SweepOutcome;
using core::SweepRunner;
using core::SweepScenario;

// --- Model checker ---------------------------------------------------------
using mc::builtin_corpus;
using mc::check_corpus;
using mc::check_scenario;
using mc::CheckOptions;
using mc::CheckReport;
using mc::run_schedule;
using mc::Scenario;
using mc::ScenarioReport;
using mc::ScheduleId;

// --- Observability sinks ---------------------------------------------------
using obs::print_profile_report;
using obs::prof_category_name;
using obs::ProfCategory;
using obs::ProfileReport;
using obs::Profiler;
using obs::Registry;
using obs::Tracer;

/// Fluent builder for `SimConfig` (the simulated machine's shape).
class SimConfigBuilder {
 public:
  SimConfigBuilder& match_processors(std::uint32_t n) {
    if (n == 0) {
      throw UsageError(
          "SimConfigBuilder: match_processors must be positive");
    }
    config_.match_processors = n;
    return *this;
  }
  /// Overhead cost model: 0 = zero-overhead, 1..4 = the paper's runs.
  SimConfigBuilder& run(int paper_run) {
    if (paper_run < 0 || paper_run > 4) {
      throw UsageError("SimConfigBuilder: run must be in 0..4");
    }
    config_.costs = paper_run == 0 ? CostModel::zero_overhead()
                                   : CostModel::paper_run(paper_run);
    return *this;
  }
  SimConfigBuilder& costs(const CostModel& model) {
    config_.costs = model;
    return *this;
  }
  /// Map each bucket pair onto a left/right processor pair (default:
  /// merged — one processor serves both sides).
  SimConfigBuilder& pairs_mapping() {
    config_.mapping = MappingMode::ProcessorPairs;
    return *this;
  }
  SimConfigBuilder& constant_test_processors(std::uint32_t n) {
    config_.constant_test_processors = n;
    return *this;
  }
  SimConfigBuilder& conflict_set_processors(std::uint32_t n) {
    config_.conflict_set_processors = n;
    return *this;
  }
  SimConfigBuilder& termination(TerminationModel model) {
    config_.termination = model;
    return *this;
  }
  SimConfigBuilder& metrics(Registry* registry) {
    config_.metrics = registry;
    return *this;
  }
  SimConfigBuilder& tracer(Tracer* tracer) {
    config_.tracer = tracer;
    return *this;
  }
  [[nodiscard]] SimConfig build() const { return config_; }

 private:
  SimConfig config_;
};

/// Fluent builder for `EngineOptions` (the serial matcher's knobs).
class EngineOptionsBuilder {
 public:
  EngineOptionsBuilder& num_buckets(std::uint32_t n) {
    if (n == 0) {
      throw UsageError("EngineOptionsBuilder: num_buckets must be positive");
    }
    options_.num_buckets = n;
    return *this;
  }
  EngineOptionsBuilder& metrics(Registry* registry) {
    options_.metrics = registry;
    return *this;
  }
  [[nodiscard]] EngineOptions build() const { return options_; }

 private:
  EngineOptions options_;
};

/// Fluent builder for `ParallelOptions` (the threaded matcher's knobs).
class ParallelOptionsBuilder {
 public:
  ParallelOptionsBuilder& threads(std::uint32_t n) {
    if (n == 0) {
      throw UsageError("ParallelOptionsBuilder: threads must be positive");
    }
    options_.threads = n;
    return *this;
  }
  ParallelOptionsBuilder& num_buckets(std::uint32_t n) {
    if (n == 0) {
      throw UsageError(
          "ParallelOptionsBuilder: num_buckets must be positive");
    }
    options_.num_buckets = n;
    return *this;
  }
  ParallelOptionsBuilder& round_robin_partition() {
    options_.partition = ParallelOptions::Partition::RoundRobin;
    return *this;
  }
  ParallelOptionsBuilder& random_partition(std::uint64_t seed) {
    options_.partition = ParallelOptions::Partition::Random;
    options_.seed = seed;
    return *this;
  }
  /// Explicit bucket→worker map, e.g. from `greedy_static`.
  ParallelOptionsBuilder& assignment(Assignment map) {
    options_.assignment = std::move(map);
    return *this;
  }
  /// Mailbox backpressure threshold.  Zero is rejected here, at the
  /// builder layer, rather than silently coerced downstream.
  ParallelOptionsBuilder& mailbox_capacity(std::size_t n) {
    if (n == 0) {
      throw UsageError(
          "ParallelOptionsBuilder: mailbox_capacity must be positive");
    }
    options_.mailbox_capacity = n;
    return *this;
  }
  /// WM changes fused per BSP phase by `process_changes`: 1 (default)
  /// keeps one-change-one-phase; 0 means unbounded (one phase per act
  /// batch).  docs/PARALLEL_MATCH.md, "Batching WM changes".
  ParallelOptionsBuilder& max_batch(std::uint32_t n) {
    options_.max_batch = n;
    return *this;
  }
  ParallelOptionsBuilder& metrics(Registry* registry) {
    options_.metrics = registry;
    return *this;
  }
  /// Wall-clock phase-attribution profiler (not owned; must outlive the
  /// engine).  The engine attaches it at construction; pull
  /// `profiler->report()` after the run for the Table 5-1-style split.
  ParallelOptionsBuilder& profiler(Profiler* profiler) {
    options_.profiler = profiler;
    return *this;
  }
  [[nodiscard]] ParallelOptions build() const { return options_; }

 private:
  ParallelOptions options_;
};

/// Fluent builder for `ServeOptions` (the multi-tenant serving engine's
/// knobs).  The match-side setters mirror `ParallelOptionsBuilder`;
/// `max_batch`/`schedule` are deliberately absent — the admission batcher
/// owns phase boundaries (docs/SERVING.md, "Admission batching").
class ServeOptionsBuilder {
 public:
  /// Worker threads in the underlying `ParallelEngine`.
  ServeOptionsBuilder& threads(std::uint32_t n) {
    if (n == 0) {
      throw UsageError("ServeOptionsBuilder: threads must be positive");
    }
    options_.match.threads = n;
    return *this;
  }
  ServeOptionsBuilder& num_buckets(std::uint32_t n) {
    if (n == 0) {
      throw UsageError("ServeOptionsBuilder: num_buckets must be positive");
    }
    options_.match.num_buckets = n;
    return *this;
  }
  ServeOptionsBuilder& mailbox_capacity(std::size_t n) {
    if (n == 0) {
      throw UsageError(
          "ServeOptionsBuilder: mailbox_capacity must be positive");
    }
    options_.match.mailbox_capacity = n;
    return *this;
  }
  /// Most transactions (one per session) fused into a single BSP phase.
  ServeOptionsBuilder& admission_batch(std::uint32_t n) {
    if (n == 0) {
      throw UsageError(
          "ServeOptionsBuilder: admission_batch must be positive");
    }
    options_.admission_batch = n;
    return *this;
  }
  /// Bound on queued transactions before `submit` blocks (backpressure).
  ServeOptionsBuilder& queue_capacity(std::size_t n) {
    if (n == 0) {
      throw UsageError(
          "ServeOptionsBuilder: queue_capacity must be positive");
    }
    options_.queue_capacity = n;
    return *this;
  }
  ServeOptionsBuilder& max_sessions(std::uint32_t n) {
    if (n == 0) {
      throw UsageError("ServeOptionsBuilder: max_sessions must be positive");
    }
    options_.max_sessions = n;
    return *this;
  }
  ServeOptionsBuilder& metrics(Registry* registry) {
    options_.metrics = registry;
    return *this;
  }
  /// Explicit latency histogram bucket bounds, in microseconds, strictly
  /// increasing.  Default: exponential 1us..~33.5s.
  ServeOptionsBuilder& latency_bounds_us(std::vector<std::int64_t> bounds) {
    if (bounds.empty()) {
      throw UsageError(
          "ServeOptionsBuilder: latency_bounds_us must be non-empty");
    }
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      if (bounds[i] <= bounds[i - 1]) {
        throw UsageError(
            "ServeOptionsBuilder: latency_bounds_us must be strictly "
            "increasing");
      }
    }
    options_.latency_bounds_us = std::move(bounds);
    return *this;
  }
  [[nodiscard]] ServeOptions build() const { return options_; }

 private:
  ServeOptions options_;
};

}  // namespace mpps
