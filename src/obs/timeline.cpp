#include "src/obs/timeline.hpp"

namespace mpps::obs {

void write_cycle_csv(std::ostream& os, const sim::SimResult& result) {
  os << "cycle,proc,cycle_start_ns,cycle_end_ns,busy_ns,idle_ns,"
        "activations,left_activations,cycle_messages\n";
  for (std::size_t c = 0; c < result.cycles.size(); ++c) {
    const sim::CycleMetrics& cycle = result.cycles[c];
    for (std::size_t p = 0; p < cycle.procs.size(); ++p) {
      const sim::ProcCycleMetrics& proc = cycle.procs[p];
      const SimTime idle = cycle.span() - proc.busy;
      os << c << "," << p << "," << cycle.start.nanos() << ","
         << cycle.end.nanos() << "," << proc.busy.nanos() << ","
         << idle.nanos() << "," << proc.activations << ","
         << proc.left_activations << "," << cycle.messages << "\n";
    }
  }
}

void write_metrics_csv(std::ostream& os, const sim::SimResult& result,
                       const Registry* registry) {
  write_cycle_csv(os, result);
  if (registry != nullptr) {
    os << "\n";
    registry->write_csv(os);
  }
}

}  // namespace mpps::obs
