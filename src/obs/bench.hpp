// Shared run-loop and reporting helpers for the paper-reproduction bench
// binaries (hoisted out of bench/bench_util.hpp so benches, tools and
// tests share one copy), plus the one-call instrumented-run harness the
// migrated benches use to emit their numbers via the metrics registry.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "src/common/simtime.hpp"
#include "src/common/strings.hpp"
#include "src/common/table.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/tracer.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"

namespace mpps::obs {

/// Processor counts for the figure sweeps — finer than powers of two so
/// the paper's speedup "dips" (decreases with more processors) are
/// visible.
inline std::vector<std::uint32_t> sweep_procs() {
  return {1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 48, 64};
}

/// Speedup of `variant_trace` under `config`, measured against the serial
/// zero-overhead baseline of `baseline_trace` (transformed traces are
/// compared against the ORIGINAL section's baseline, since they perform
/// the same semantic work plus duplication).  The baseline comes from the
/// shared per-trace cache, so sweeping many configs pays for it once.
inline double speedup_vs(const trace::Trace& baseline_trace,
                         const trace::Trace& variant_trace,
                         const sim::SimConfig& config) {
  const SimTime base = sim::BaselineCache::shared().baseline(baseline_trace);
  const SimTime t =
      sim::simulate(variant_trace, config,
                    sim::Assignment::round_robin(variant_trace.num_buckets,
                                                 config.match_processors))
          .makespan;
  return static_cast<double>(base.nanos()) / static_cast<double>(t.nanos());
}

/// The `--jobs N` worker count passed to a bench binary; 0 (auto) when
/// the flag is absent or malformed.
inline unsigned jobs_arg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--jobs") {
      long v = 0;
      if (parse_int(argv[i + 1], v) && v > 0) {
        return static_cast<unsigned>(v);
      }
    }
  }
  return 0;
}

/// Prints a table as CSV when `--csv` was passed on the command line,
/// as a boxed ASCII table otherwise (for plotting vs reading).
inline void emit_table(const TextTable& table, int argc, char** argv,
                       std::ostream& os) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") {
      table.print_csv(os);
      return;
    }
  }
  table.print(os);
}

inline sim::SimConfig config_for(std::uint32_t procs, int run) {
  sim::SimConfig config;
  config.match_processors = procs;
  config.costs = run == 0 ? sim::CostModel::zero_overhead()
                          : sim::CostModel::paper_run(run);
  return config;
}

/// A simulation with the observability layer attached: the returned
/// registry and tracer hold the run's metrics and timeline.
struct InstrumentedRun {
  sim::SimResult result;
  Registry registry;
  Tracer tracer;
};

inline InstrumentedRun run_instrumented(const trace::Trace& trace,
                                        sim::SimConfig config,
                                        const sim::Assignment& assignment) {
  InstrumentedRun run;
  config.metrics = &run.registry;
  config.tracer = &run.tracer;
  run.result = sim::simulate(trace, config, assignment);
  return run;
}

inline InstrumentedRun run_instrumented(const trace::Trace& trace,
                                        sim::SimConfig config) {
  return run_instrumented(
      trace, config,
      sim::Assignment::round_robin(trace.num_buckets,
                                   config.partitions()));
}

}  // namespace mpps::obs
