#include "src/obs/tracer.hpp"

#include <cstdio>

namespace mpps::obs {
namespace {

/// Nanoseconds → "123.456" microseconds, exact (no floating point).
void write_micros(std::ostream& os, SimTime t) {
  const std::int64_t ns = t.nanos();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  os << buf;
}

/// Minimal JSON string escaping (names are ASCII identifiers in practice).
void write_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void write_args(std::ostream& os,
                const std::vector<std::pair<const char*, std::int64_t>>& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ",";
    os << '"' << args[i].first << "\":" << args[i].second;
  }
  os << "}";
}

}  // namespace

void Tracer::span(std::string name, const char* category, std::uint32_t tid,
                  SimTime ts, SimTime dur,
                  std::vector<std::pair<const char*, std::int64_t>> args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.phase = TraceEvent::Phase::Span;
  ev.tid = tid;
  ev.ts = ts;
  ev.dur = dur;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::instant(std::string name, const char* category, std::uint32_t tid,
                     SimTime ts,
                     std::vector<std::pair<const char*, std::int64_t>> args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.phase = TraceEvent::Phase::Instant;
  ev.tid = tid;
  ev.ts = ts;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::counter(std::string name, std::uint32_t tid, SimTime ts,
                     std::vector<std::pair<const char*, std::int64_t>> values) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = "counter";
  ev.phase = TraceEvent::Phase::Counter;
  ev.tid = tid;
  ev.ts = ts;
  ev.args = std::move(values);
  events_.push_back(std::move(ev));
}

void Tracer::merge_from(const Tracer& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  if (events_.size() == other.events_.size() && !other.events_.empty()) {
    process_name_ = other.process_name_;  // first non-trivial merge names us
  }
  for (const auto& [tid, name] : other.thread_names_) {
    thread_names_.emplace(tid, name);
  }
}

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  comma();
  os << R"({"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":)";
  write_string(os, process_name_);
  os << "}}";
  for (const auto& [tid, name] : thread_names_) {
    comma();
    os << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << tid
       << R"(,"args":{"name":)";
    write_string(os, name);
    os << "}}";
  }
  for (const TraceEvent& ev : events_) {
    comma();
    os << "{\"name\":";
    write_string(os, ev.name);
    os << ",\"cat\":\"" << ev.category << "\",\"ph\":\""
       << static_cast<char>(ev.phase) << "\",\"pid\":0,\"tid\":" << ev.tid
       << ",\"ts\":";
    write_micros(os, ev.ts);
    if (ev.phase == TraceEvent::Phase::Span) {
      os << ",\"dur\":";
      write_micros(os, ev.dur);
    }
    if (!ev.args.empty() || ev.phase == TraceEvent::Phase::Counter) {
      os << ",\"args\":";
      write_args(os, ev.args);
    }
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace mpps::obs
