// The metrics registry: named counters, gauges and histograms with labels,
// recorded by the Rete engine, the TREAT engine and the MPC simulator.
//
// Design constraints (see docs/OBSERVABILITY.md):
//   * Zero cost when absent.  Instrumented code holds a `Registry*` that
//     defaults to nullptr; every recording site is guarded by one pointer
//     test, and instrument handles are resolved once at setup, never on
//     the hot path.  With a null registry the simulator's results are
//     bit-for-bit identical to the uninstrumented build (asserted in
//     tests/obs_metrics_test.cpp) and the wall-clock overhead is below
//     measurement noise in bench/micro_sim.
//   * Deterministic export.  Instruments are kept in a sorted map and the
//     CSV writer emits them in (name, labels) order, so identical runs
//     produce byte-identical files.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mpps::obs {

/// Label set attached to an instrument, e.g. {{"side", "left"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (activations, messages, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A value that can move both ways (live token count, queue depth, ...).
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t delta) { value_ += delta; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram.  `bounds` are inclusive upper edges in
/// ascending order; an implicit +inf bucket catches the rest.  A sample v
/// lands in the first bucket with v <= bound (so bounds {1, 10} split
/// samples into v<=1, 1<v<=10, v>10 — asserted in obs_metrics_test).
class Histogram {
 public:
  /// A single catch-all bucket (useful as a default member).
  Histogram() : Histogram(std::vector<std::int64_t>{}) {}
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);

  /// Folds `other` in as if its samples had been observed here (counts,
  /// sum, min/max all combine exactly).  Throws mpps::RuntimeError when
  /// the bucket bounds differ.
  void merge_from(const Histogram& other);

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] double mean() const;

  /// Upper edge of the bucket holding the q-quantile sample (q in [0,1]);
  /// max() for the overflow bucket.  Exact for integer-valued metrics with
  /// unit-spaced edges, an upper bound otherwise.
  [[nodiscard]] std::int64_t quantile_bound(double q) const;

  /// Evenly spaced bucket edges: {width, 2*width, ..., n*width}.
  static std::vector<std::int64_t> linear_bounds(std::int64_t width, int n);
  /// Geometric edges: {start, start*factor, ...} (n edges).
  static std::vector<std::int64_t> exponential_bounds(std::int64_t start,
                                                      double factor, int n);

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Owns every instrument of one run.  Lookup is by (name, labels); the
/// first call creates the instrument, later calls return the same object,
/// so callers cache the pointer at setup time.
class Registry {
 public:
  Registry() = default;
  Registry(Registry&&) = default;
  Registry& operator=(Registry&&) = default;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` are only consulted on first creation.
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds,
                       const Labels& labels = {});

  /// Folds every instrument of `other` into this registry: counters add,
  /// histograms combine bucket-wise, gauges take `other`'s value (the
  /// same end state as re-recording `other`'s updates here, so merging
  /// per-worker registries in a fixed order reproduces the serial
  /// accumulation byte for byte — asserted in core_sweep_test).  Throws
  /// mpps::RuntimeError when a name is registered with different types or
  /// histogram bounds on the two sides.
  void merge_from(const Registry& other);

  /// CSV export, one row per instrument (histograms expand to one row per
  /// bucket plus count/sum/min/max rows).  Deterministic order:
  /// columns are `metric,type,field,value`.
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t size() const { return instruments_.size(); }

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  /// "name{k=v;k=v}" — also the form printed in the CSV `metric` column.
  static std::string key_of(const std::string& name, const Labels& labels);

  std::map<std::string, Instrument> instruments_;
};

}  // namespace mpps::obs
