#include "src/obs/profiler.hpp"

#include <algorithm>
#include <iomanip>

#include "src/common/error.hpp"
#include "src/common/simtime.hpp"
#include "src/common/table.hpp"
#include "src/obs/tracer.hpp"

namespace mpps::obs {

const char* prof_category_name(ProfCategory category) {
  switch (category) {
    case ProfCategory::Match:
      return "match";
    case ProfCategory::MailboxEnqueue:
      return "mailbox_enqueue";
    case ProfCategory::MailboxDequeue:
      return "mailbox_dequeue";
    case ProfCategory::BarrierWait:
      return "barrier_wait";
    case ProfCategory::RoundMerge:
      return "round_merge";
    case ProfCategory::ConflictUpdate:
      return "conflict_update";
  }
  return "unknown";
}

double safe_pct(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return 0.0;
  const double pct =
      100.0 * static_cast<double>(part) / static_cast<double>(whole);
  return std::clamp(pct, 0.0, 100.0);
}

double ProfileReport::conflict_update_pct() const {
  return safe_pct(conflict_update_ns, engine_wall_ns);
}

double ProfileReport::Worker::attributed_pct() const {
  if (wall_ns == 0) return 100.0;
  return 100.0 *
         static_cast<double>(wall_ns - std::min(unattributed_ns, wall_ns)) /
         static_cast<double>(wall_ns);
}

double ProfileReport::min_attributed_pct() const {
  double min_pct = 100.0;
  for (const Worker& w : workers) {
    min_pct = std::min(min_pct, w.attributed_pct());
  }
  return min_pct;
}

void Profiler::attach(std::uint32_t workers, std::uint32_t num_buckets) {
  if (attached()) {
    throw RuntimeError(
        "Profiler: already attached (one profiler profiles one engine)");
  }
  if (workers == 0) throw RuntimeError("Profiler: zero workers");
  epoch_ = ProfLane::Clock::now();
  lanes_.reserve(workers + 1);
  for (std::uint32_t i = 0; i < workers; ++i) {
    lanes_.emplace_back(new ProfLane(epoch_, num_buckets));
  }
  lanes_.emplace_back(new ProfLane(epoch_, 0));  // control: no buckets
}

ProfLane* Profiler::lane(std::uint32_t worker) {
  if (worker + 1 >= lanes_.size()) {
    throw RuntimeError("Profiler: lane " + std::to_string(worker) +
                       " out of range (attach first)");
  }
  return lanes_[worker].get();
}

ProfLane* Profiler::control_lane() {
  if (lanes_.empty()) throw RuntimeError("Profiler: not attached");
  return lanes_.back().get();
}

ProfileReport Profiler::report(std::size_t top_k_buckets) const {
  ProfileReport report;
  report.phases = phases_;
  report.rounds = rounds_;
  report.changes = changes_;
  if (lanes_.empty()) return report;

  const std::size_t n_workers = lanes_.size() - 1;
  report.workers.resize(n_workers);
  std::uint64_t total_activations = 0;
  for (std::size_t w = 0; w < n_workers; ++w) {
    const ProfLane& lane = *lanes_[w];
    ProfileReport::Worker& out = report.workers[w];
    for (std::uint64_t dur : lane.phase_durs()) out.wall_ns += dur;
    for (const ProfSpan& span : lane.spans()) {
      const auto cat = static_cast<std::size_t>(span.category);
      if (span.category == ProfCategory::Match) {
        // `aux` is the time spent inside cross-worker mailbox pushes,
        // nested in the match loop; re-attribute it so categories are
        // disjoint.
        const std::uint64_t enqueue = std::min(span.aux, span.dur_ns);
        out.category_ns[cat] += span.dur_ns - enqueue;
        out.category_ns[static_cast<std::size_t>(
            ProfCategory::MailboxEnqueue)] += enqueue;
      } else {
        out.category_ns[cat] += span.dur_ns;
      }
      if (span.category == ProfCategory::RoundMerge) {
        ++report.merge_rounds;
        report.merged_items += span.aux;
        report.max_merge_items = std::max(report.max_merge_items, span.aux);
      }
    }
    std::uint64_t attributed = 0;
    for (std::uint64_t ns : out.category_ns) attributed += ns;
    out.unattributed_ns =
        out.wall_ns > attributed ? out.wall_ns - attributed : 0;
    for (const ProfBucketLoad& b : lane.buckets()) {
      out.activations += b.activations;
    }
    total_activations += out.activations;
    for (std::size_t c = 0; c < kProfCategories; ++c) {
      report.total_ns[c] += out.category_ns[c];
    }
    report.total_wall_ns += out.wall_ns;
    report.total_unattributed_ns += out.unattributed_ns;
  }

  // Control lane: conflict-set merge time (runs while workers are parked,
  // so it is engine time on top of the worker walls, not inside them).
  // Its phase spans cover each whole BSP phase (handshake → merge end)
  // and sum to the engine wall — the only denominator the merge time may
  // be expressed as a percentage of.
  for (const ProfSpan& span : lanes_.back()->spans()) {
    report.total_ns[static_cast<std::size_t>(span.category)] += span.dur_ns;
    if (span.category == ProfCategory::ConflictUpdate) {
      report.conflict_update_ns += span.dur_ns;
    }
  }
  for (std::uint64_t dur : lanes_.back()->phase_durs()) {
    report.engine_wall_ns += dur;
  }

  // Measured match skew: max/mean of per-worker match-compute time.
  double match_sum = 0.0;
  double match_max = 0.0;
  for (const ProfileReport::Worker& w : report.workers) {
    const auto match = static_cast<double>(
        w.category_ns[static_cast<std::size_t>(ProfCategory::Match)]);
    match_sum += match;
    match_max = std::max(match_max, match);
  }
  const double match_mean =
      match_sum / static_cast<double>(n_workers == 0 ? 1 : n_workers);
  report.match_skew = match_mean > 0.0 ? match_max / match_mean : 1.0;

  // Hot buckets across all worker lanes (bucket ownership is per-worker,
  // so every bucket appears in exactly one lane).
  std::vector<ProfileReport::HotBucket> loads;
  for (std::size_t w = 0; w < n_workers; ++w) {
    const auto& buckets = lanes_[w]->buckets();
    for (std::uint32_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b].activations == 0) continue;
      ProfileReport::HotBucket hot;
      hot.bucket = b;
      hot.worker = static_cast<std::uint32_t>(w);
      hot.activations = buckets[b].activations;
      hot.tokens_touched = buckets[b].tokens_touched;
      hot.share_pct =
          total_activations == 0
              ? 0.0
              : 100.0 * static_cast<double>(buckets[b].activations) /
                    static_cast<double>(total_activations);
      loads.push_back(hot);
    }
  }
  std::sort(loads.begin(), loads.end(),
            [](const ProfileReport::HotBucket& a,
               const ProfileReport::HotBucket& b) {
              if (a.activations != b.activations) {
                return a.activations > b.activations;
              }
              return a.bucket < b.bucket;
            });
  if (loads.size() > top_k_buckets) loads.resize(top_k_buckets);
  report.hot_buckets = std::move(loads);
  return report;
}

void Profiler::export_chrome_trace(Tracer& tracer,
                                   std::uint32_t tid_base) const {
  if (lanes_.empty()) return;
  const std::size_t n_workers = lanes_.size() - 1;
  tracer.set_thread_name(tid_base, "measured control");
  for (std::size_t w = 0; w < n_workers; ++w) {
    tracer.set_thread_name(tid_base + 1 + static_cast<std::uint32_t>(w),
                           "measured worker " + std::to_string(w));
  }
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    const ProfLane& lane = *lanes_[l];
    const std::uint32_t tid =
        l == n_workers ? tid_base
                       : tid_base + 1 + static_cast<std::uint32_t>(l);
    const auto& starts = lane.phase_starts();
    const auto& durs = lane.phase_durs();
    for (std::size_t p = 0; p < starts.size(); ++p) {
      tracer.span("phase", "measured", tid,
                  SimTime::ns(static_cast<std::int64_t>(starts[p])),
                  SimTime::ns(static_cast<std::int64_t>(durs[p])),
                  {{"phase", static_cast<std::int64_t>(p)}});
    }
    for (const ProfSpan& span : lane.spans()) {
      tracer.span(prof_category_name(span.category), "measured", tid,
                  SimTime::ns(static_cast<std::int64_t>(span.start_ns)),
                  SimTime::ns(static_cast<std::int64_t>(span.dur_ns)),
                  {{"round", static_cast<std::int64_t>(span.round)},
                   {"aux", static_cast<std::int64_t>(span.aux)}});
    }
  }
}

void print_profile_report(std::ostream& os, const ProfileReport& report) {
  print_banner(os, "wall-clock phase attribution (measured, Table 5-1 style)");
  os << report.workers.size() << " workers, " << report.phases
     << " BSP phases covering " << report.changes << " WM changes, "
     << report.rounds << " BSP rounds (" << std::fixed
     << std::setprecision(2) << report.rounds_per_change()
     << std::defaultfloat << " rounds per change)\n";

  TextTable table({"worker", "wall ms", "match %", "enqueue %", "dequeue %",
                   "barrier %", "merge %", "unattr %", "activations"});
  const auto cat = [](const ProfileReport::Worker& w, ProfCategory c) {
    return w.category_ns[static_cast<std::size_t>(c)];
  };
  for (std::size_t i = 0; i < report.workers.size(); ++i) {
    const ProfileReport::Worker& w = report.workers[i];
    table.row()
        .cell(static_cast<unsigned long>(i))
        .cell(static_cast<double>(w.wall_ns) / 1e6, 3)
        .cell(safe_pct(cat(w, ProfCategory::Match), w.wall_ns), 1)
        .cell(safe_pct(cat(w, ProfCategory::MailboxEnqueue), w.wall_ns), 1)
        .cell(safe_pct(cat(w, ProfCategory::MailboxDequeue), w.wall_ns), 1)
        .cell(safe_pct(cat(w, ProfCategory::BarrierWait), w.wall_ns), 1)
        .cell(safe_pct(cat(w, ProfCategory::RoundMerge), w.wall_ns), 1)
        .cell(safe_pct(w.unattributed_ns, w.wall_ns), 1)
        .cell(static_cast<unsigned long>(w.activations));
  }
  table.print(os);

  os << "attributed: " << std::fixed << std::setprecision(1)
     << report.min_attributed_pct()
     << " % of worker wall time (worst worker); measured match skew "
     << std::setprecision(2) << report.match_skew
     << " (max/mean worker match time)\n";
  os << "conflict-set update (control thread): " << std::setprecision(3)
     << static_cast<double>(report.conflict_update_ns) / 1e6 << " ms across "
     << std::defaultfloat << report.phases << " phases";
  if (report.engine_wall_ns > 0) {
    os << " (" << std::fixed << std::setprecision(1)
       << report.conflict_update_pct() << std::defaultfloat
       << " % of engine wall)";
  }
  os << "\n";
  os << "round merges: " << report.merge_rounds << " rounds, "
     << report.merged_items << " items merged, largest round "
     << report.max_merge_items << " items\n";

  if (!report.hot_buckets.empty()) {
    print_banner(os, "hottest buckets (measured load accounting)");
    TextTable hot(
        {"bucket", "worker", "activations", "tokens touched", "share %"});
    for (const ProfileReport::HotBucket& b : report.hot_buckets) {
      hot.row()
          .cell(static_cast<unsigned long>(b.bucket))
          .cell(static_cast<unsigned long>(b.worker))
          .cell(static_cast<unsigned long>(b.activations))
          .cell(static_cast<unsigned long>(b.tokens_touched))
          .cell(b.share_pct, 1);
    }
    hot.print(os);
  }
}

}  // namespace mpps::obs
