#include "src/obs/metrics.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace mpps::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw RuntimeError("histogram bucket bounds must be ascending");
  }
}

void Histogram::observe(std::int64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw RuntimeError("cannot merge histograms with different bounds");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t Histogram::quantile_bound(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_) + 0.9999999999);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      return i < bounds_.size() ? bounds_[i] : max_;
    }
  }
  return max_;
}

std::vector<std::int64_t> Histogram::linear_bounds(std::int64_t width, int n) {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) out.push_back(width * i);
  return out;
}

std::vector<std::int64_t> Histogram::exponential_bounds(std::int64_t start,
                                                        double factor, int n) {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  double edge = static_cast<double>(start);
  for (int i = 0; i < n; ++i) {
    const auto rounded = static_cast<std::int64_t>(edge);
    // Keep edges strictly increasing even when rounding collapses them.
    out.push_back(out.empty() ? rounded : std::max(rounded, out.back() + 1));
    edge *= factor;
  }
  return out;
}

std::string Registry::key_of(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ";";  // ';' keeps the key CSV-safe
    key += labels[i].first + "=" + labels[i].second;
  }
  key += "}";
  return key;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  Instrument& slot = instruments_[key_of(name, labels)];
  if (!slot.counter) {
    if (slot.gauge || slot.histogram) {
      throw RuntimeError("metric '" + name + "' already registered with a "
                         "different type");
    }
    slot.counter = std::make_unique<Counter>();
  }
  return *slot.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  Instrument& slot = instruments_[key_of(name, labels)];
  if (!slot.gauge) {
    if (slot.counter || slot.histogram) {
      throw RuntimeError("metric '" + name + "' already registered with a "
                         "different type");
    }
    slot.gauge = std::make_unique<Gauge>();
  }
  return *slot.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::int64_t> bounds,
                               const Labels& labels) {
  Instrument& slot = instruments_[key_of(name, labels)];
  if (!slot.histogram) {
    if (slot.counter || slot.gauge) {
      throw RuntimeError("metric '" + name + "' already registered with a "
                         "different type");
    }
    slot.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot.histogram;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [key, theirs] : other.instruments_) {
    Instrument& slot = instruments_[key];
    const bool type_clash =
        (theirs.counter && (slot.gauge || slot.histogram)) ||
        (theirs.gauge && (slot.counter || slot.histogram)) ||
        (theirs.histogram && (slot.counter || slot.gauge));
    if (type_clash) {
      throw RuntimeError("metric '" + key +
                         "' merged with a different type");
    }
    if (theirs.counter) {
      if (!slot.counter) slot.counter = std::make_unique<Counter>();
      slot.counter->add(theirs.counter->value());
    } else if (theirs.gauge) {
      if (!slot.gauge) slot.gauge = std::make_unique<Gauge>();
      slot.gauge->set(theirs.gauge->value());
    } else if (theirs.histogram) {
      if (!slot.histogram) {
        slot.histogram = std::make_unique<Histogram>(
            theirs.histogram->bounds());
      }
      slot.histogram->merge_from(*theirs.histogram);
    }
  }
}

void Registry::write_csv(std::ostream& os) const {
  os << "metric,type,field,value\n";
  for (const auto& [key, instrument] : instruments_) {
    if (instrument.counter) {
      os << key << ",counter,value," << instrument.counter->value() << "\n";
    } else if (instrument.gauge) {
      os << key << ",gauge,value," << instrument.gauge->value() << "\n";
    } else if (instrument.histogram) {
      const Histogram& h = *instrument.histogram;
      os << key << ",histogram,count," << h.count() << "\n";
      os << key << ",histogram,sum," << h.sum() << "\n";
      os << key << ",histogram,min," << h.min() << "\n";
      os << key << ",histogram,max," << h.max() << "\n";
      for (std::size_t i = 0; i < h.counts().size(); ++i) {
        os << key << ",histogram,";
        if (i < h.bounds().size()) {
          os << "le_" << h.bounds()[i];
        } else {
          os << "le_inf";
        }
        os << "," << h.counts()[i] << "\n";
      }
    }
  }
}

}  // namespace mpps::obs
