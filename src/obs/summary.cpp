#include "src/obs/summary.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/table.hpp"

namespace mpps::obs {

Quantiles quantiles(std::vector<double> values) {
  Quantiles q;
  if (values.empty()) return q;
  std::sort(values.begin(), values.end());
  const auto rank = [&](double p) {
    const auto n = static_cast<double>(values.size());
    const auto index = static_cast<std::size_t>(std::ceil(p * n));
    return values[std::min(values.size() - 1, index == 0 ? 0 : index - 1)];
  };
  q.p50 = rank(0.50);
  q.p95 = rank(0.95);
  q.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  q.mean = sum / static_cast<double>(values.size());
  return q;
}

RunSummary summarize_run(const trace::Trace& trace,
                         const sim::SimResult& result, std::size_t top_k) {
  RunSummary s;
  s.messages = result.messages;
  s.local_deliveries = result.local_deliveries;
  s.avg_processor_utilization_pct =
      100.0 * result.avg_processor_utilization();

  std::vector<double> skews;
  std::vector<double> utilizations;
  Histogram msg_hist(Histogram::exponential_bounds(1, 2.0, 24));
  for (const sim::CycleMetrics& cycle : result.cycles) {
    msg_hist.observe(static_cast<std::int64_t>(cycle.messages));
    const double span = static_cast<double>(cycle.span().nanos());
    double busy_sum = 0.0;
    double busy_max = 0.0;
    for (const sim::ProcCycleMetrics& proc : cycle.procs) {
      const double busy = static_cast<double>(proc.busy.nanos());
      busy_sum += busy;
      busy_max = std::max(busy_max, busy);
      if (span > 0.0) utilizations.push_back(100.0 * busy / span);
    }
    const double busy_mean =
        busy_sum / std::max<double>(1.0, static_cast<double>(
                                             cycle.procs.size()));
    skews.push_back(busy_mean > 0.0 ? busy_max / busy_mean : 1.0);
  }
  s.busy_skew = quantiles(std::move(skews));
  s.proc_utilization_pct = quantiles(std::move(utilizations));
  s.cycle_messages = std::move(msg_hist);

  const std::vector<std::uint64_t> activity = trace::bucket_activity(trace);
  std::uint64_t total = 0;
  for (std::uint64_t a : activity) total += a;
  std::vector<std::uint32_t> order(activity.size());
  for (std::uint32_t b = 0; b < order.size(); ++b) order[b] = b;
  // Heaviest first; ties broken by bucket index for determinism.
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (activity[a] != activity[b]) return activity[a] > activity[b];
              return a < b;
            });
  for (std::uint32_t b : order) {
    if (s.hot_buckets.size() >= top_k || activity[b] == 0) break;
    HotBucket hot;
    hot.bucket = b;
    hot.activations = activity[b];
    hot.share_pct = total == 0 ? 0.0
                               : 100.0 * static_cast<double>(activity[b]) /
                                     static_cast<double>(total);
    s.hot_buckets.push_back(hot);
  }
  return s;
}

void print_run_summary(std::ostream& os, const RunSummary& summary) {
  print_banner(os, "busy skew per cycle (max proc busy / mean proc busy)");
  TextTable skew({"p50", "p95", "max", "mean", "avg proc util %"});
  skew.row()
      .cell(summary.busy_skew.p50, 2)
      .cell(summary.busy_skew.p95, 2)
      .cell(summary.busy_skew.max, 2)
      .cell(summary.busy_skew.mean, 2)
      .cell(summary.avg_processor_utilization_pct, 1);
  skew.print(os);

  print_banner(os, "messages per cycle");
  TextTable msgs({"le", "cycles"});
  const Histogram& h = summary.cycle_messages;
  for (std::size_t i = 0; i < h.counts().size(); ++i) {
    if (h.counts()[i] == 0) continue;
    msgs.row()
        .cell(i < h.bounds().size() ? std::to_string(h.bounds()[i])
                                    : std::string("inf"))
        .cell(static_cast<unsigned long>(h.counts()[i]));
  }
  msgs.row()
      .cell("total")
      .cell(static_cast<unsigned long>(summary.messages));
  msgs.print(os);

  print_banner(os, "hottest buckets (uneven token distribution)");
  TextTable hot({"bucket", "activations", "share %"});
  for (const HotBucket& b : summary.hot_buckets) {
    hot.row()
        .cell(static_cast<unsigned long>(b.bucket))
        .cell(static_cast<unsigned long>(b.activations))
        .cell(b.share_pct, 1);
  }
  hot.print(os);
}

}  // namespace mpps::obs
