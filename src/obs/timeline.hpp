// Deterministic per-cycle timeline export of a simulated run.  The CSV's
// busy/idle totals reconcile exactly with the simulator's makespan (and
// therefore its reported speedup): for every cycle,
//   sum over procs (busy_ns + idle_ns) == cycle span * match processors,
// and the last row's cycle_end_ns equals the makespan.  Asserted in
// tests/obs_export_test.cpp.
#pragma once

#include <ostream>

#include "src/obs/metrics.hpp"
#include "src/sim/simulator.hpp"

namespace mpps::obs {

/// One row per (cycle, match processor):
/// cycle,proc,cycle_start_ns,cycle_end_ns,busy_ns,idle_ns,activations,
/// left_activations,cycle_messages
void write_cycle_csv(std::ostream& os, const sim::SimResult& result);

/// The `--metrics-out` payload: the per-cycle table above, a blank line,
/// then the registry export (`metric,type,field,value`) when a registry
/// is provided.
void write_metrics_csv(std::ostream& os, const sim::SimResult& result,
                       const Registry* registry);

}  // namespace mpps::obs
