// The structured event tracer: per-processor simulated-time spans and
// instant events, exportable as Chrome trace_event JSON ("JSON Array
// Format") that loads directly in chrome://tracing and Perfetto.
//
// The simulator emits one span per processor task (root-activation group,
// merged activation, pair micro-task, constant-test group, conflict-set
// receive), control-processor phase spans (broadcast, instantiation
// receives, resolve, termination), and per-cycle counter samples.  All
// timestamps are simulated SimTime, so the exported timeline is exactly
// deterministic: the same trace and configuration produce byte-identical
// JSON (asserted in tests/obs_export_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/simtime.hpp"

namespace mpps::obs {

/// One timeline event.  `tid` is a lane on the timeline: the simulator
/// uses tid 0 for the control processor and tid p+1 for match processor p
/// (names are attached with `set_thread_name`).
struct TraceEvent {
  enum class Phase : char {
    Span = 'X',     // complete event: ts + dur
    Instant = 'i',  // point event
    Counter = 'C',  // sampled value series
  };

  std::string name;
  const char* category = "sim";
  Phase phase = Phase::Span;
  std::uint32_t tid = 0;
  SimTime ts{};
  SimTime dur{};  // spans only
  /// Numeric args, shown in the trace viewer's detail pane (for Counter
  /// events, the sampled series values).
  std::vector<std::pair<const char*, std::int64_t>> args;
};

class Tracer {
 public:
  void set_process_name(std::string name) { process_name_ = std::move(name); }
  void set_thread_name(std::uint32_t tid, std::string name) {
    thread_names_[tid] = std::move(name);
  }

  void span(std::string name, const char* category, std::uint32_t tid,
            SimTime ts, SimTime dur,
            std::vector<std::pair<const char*, std::int64_t>> args = {});
  void instant(std::string name, const char* category, std::uint32_t tid,
               SimTime ts,
               std::vector<std::pair<const char*, std::int64_t>> args = {});
  /// One sample of a counter track (stacked in the viewer).
  void counter(std::string name, std::uint32_t tid, SimTime ts,
               std::vector<std::pair<const char*, std::int64_t>> values);

  /// Appends `other`'s events after this tracer's and adopts its process
  /// and thread names for lanes this tracer has not named.  Merging
  /// per-worker tracers in a fixed order therefore yields the same
  /// timeline regardless of which thread recorded what.
  void merge_from(const Tracer& other);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Chrome trace_event JSON (object form with "traceEvents", metadata
  /// thread-name events first, then events in recording order).
  /// Timestamps are microseconds with nanosecond precision.
  void write_chrome_json(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
  std::string process_name_ = "mpps";
  std::map<std::uint32_t, std::string> thread_names_;
};

}  // namespace mpps::obs
