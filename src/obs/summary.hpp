// Run summaries: the paper's uneven-token-distribution diagnosis
// (Fig 5-5, Table 5-2, the idle-time analysis), automated.  Consumed by
// `mpps stats` and the bench harnesses.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"

namespace mpps::obs {

/// Nearest-rank quantiles over a sample set.
struct Quantiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

Quantiles quantiles(std::vector<double> values);

struct HotBucket {
  std::uint32_t bucket = 0;
  std::uint64_t activations = 0;
  double share_pct = 0.0;  // of all activations in the trace
};

/// Everything `mpps stats` prints about one simulated run.
struct RunSummary {
  /// Per-cycle busy skew: max processor busy / mean processor busy.  1.0
  /// is a perfectly balanced cycle; the paper's sections sit far above.
  Quantiles busy_skew;
  /// Per-(cycle, processor) utilization: busy / cycle span, in percent.
  Quantiles proc_utilization_pct;
  /// Messages per cycle (the paper's comms-overhead lever).
  Histogram cycle_messages;
  /// Top-k buckets by total activations — the hot spots an assignment
  /// must split or co-locate carefully.
  std::vector<HotBucket> hot_buckets;
  double avg_processor_utilization_pct = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t local_deliveries = 0;
};

RunSummary summarize_run(const trace::Trace& trace,
                         const sim::SimResult& result, std::size_t top_k = 8);

/// Prints the summary as the boxed tables `mpps stats` emits.
void print_run_summary(std::ostream& os, const RunSummary& summary);

}  // namespace mpps::obs
