// The wall-clock phase-attribution profiler for measured (threaded) match
// engines: where `Tracer` records *simulated* time, this subsystem
// attributes *real* nanoseconds of every BSP phase to a fixed category
// set — match compute, mailbox enqueue/dequeue, barrier wait, round
// merge/sort, conflict-set update — per worker and per round.  It is the
// measured-engine counterpart of the paper's Table 5-1 cost split
// (match / send / recv / overhead per processor), and the per-bucket load
// accounting it keeps is the prerequisite for online bucket rebalancing.
//
// Design constraints (the PR 1 zero-cost pattern, docs/OBSERVABILITY.md):
//   * Lanes are thread-local append-only buffers.  Each worker thread owns
//     one `ProfLane` and appends spans with `steady_clock` stamps; no
//     locks, no allocation beyond vector growth, no cross-thread writes.
//   * Null-sink guard.  Instrumented code holds a `ProfLane*` that is
//     nullptr when profiling is off; every recording site is one pointer
//     test and the disabled path takes no clock readings at all (asserted
//     in tests/pmatch_profile_test.cpp).
//   * Reading is quiescent-only.  `report()` / `export_chrome_trace()`
//     walk the lanes and must only run while no instrumented phase is in
//     flight (for pmatch: between `process_change` calls — worker writes
//     are sequenced before the control thread's reads by the engine's
//     phase handshake mutex).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace mpps::obs {

class Tracer;

/// The fixed attribution categories.  `Match` spans carry the nanoseconds
/// spent inside cross-worker mailbox pushes as `aux`; reports subtract
/// that out, so the six categories are disjoint and sum to at most the
/// measured wall time.
enum class ProfCategory : std::uint8_t {
  Match = 0,           // alpha scan + join work on owned buckets
  MailboxEnqueue,      // pushing children into other workers' mailboxes
  MailboxDequeue,      // draining the own mailbox at a round boundary
  BarrierWait,         // parked at the round / exchange barriers
  RoundMerge,          // (sender, seq) sort + local-child merge per round
  ConflictUpdate,      // control-thread deterministic merge + conflict set
};
inline constexpr std::size_t kProfCategories = 6;

/// Stable lower_snake_case name ("match", "barrier_wait", ...), used by
/// the text report, the JSON schema and the Chrome-trace export.
const char* prof_category_name(ProfCategory category);

/// 100 * part / whole, clamped to [0, 100] (0 when whole == 0).  Every
/// percentage the profiler, the CLI JSON and the bench attribution
/// objects emit goes through this, so no report can show the impossible
/// >100% figures the unclamped ratios once produced
/// (tests/obs_profiler_test.cpp asserts the range property).
[[nodiscard]] double safe_pct(std::uint64_t part, std::uint64_t whole);

/// One attributed wall-clock interval, relative to the profiler epoch.
struct ProfSpan {
  ProfCategory category = ProfCategory::Match;
  std::uint32_t round = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Category-specific payload: Match → ns inside mailbox pushes (to be
  /// re-attributed to MailboxEnqueue), MailboxDequeue → items drained,
  /// RoundMerge → merged round size, ConflictUpdate → records merged.
  std::uint64_t aux = 0;
};

/// Cumulative load of one hashed-memory bucket, owned by one lane.
struct ProfBucketLoad {
  std::uint64_t activations = 0;
  std::uint64_t tokens_touched = 0;  // opposite-memory candidates + self
};

/// One thread's append-only recording buffer.  Only the owning thread may
/// write; the profiler reads at report time (quiescent).
class ProfLane {
 public:
  using Clock = std::chrono::steady_clock;

  [[nodiscard]] static Clock::time_point now() { return Clock::now(); }

  /// Converts an absolute clock reading to epoch-relative nanoseconds.
  [[nodiscard]] std::uint64_t stamp(Clock::time_point t) const {
    return t <= epoch_ ? 0
                       : static_cast<std::uint64_t>(
                             std::chrono::duration_cast<
                                 std::chrono::nanoseconds>(t - epoch_)
                                 .count());
  }

  void span(ProfCategory category, std::uint32_t round, std::uint64_t start_ns,
            std::uint64_t end_ns, std::uint64_t aux = 0) {
    spans_.push_back(ProfSpan{category, round, start_ns,
                              end_ns > start_ns ? end_ns - start_ns : 0, aux});
  }

  /// One whole BSP phase as seen by this worker — the attribution
  /// denominator (wall time) for this lane.
  void phase_span(std::uint64_t start_ns, std::uint64_t end_ns) {
    phase_starts_.push_back(start_ns);
    phase_durs_.push_back(end_ns > start_ns ? end_ns - start_ns : 0);
  }

  /// Accounts one processed activation against its bucket.
  void bucket_load(std::uint32_t bucket, std::uint64_t tokens_touched) {
    ProfBucketLoad& b = buckets_[bucket];
    ++b.activations;
    b.tokens_touched += tokens_touched;
  }

  [[nodiscard]] const std::vector<ProfSpan>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<std::uint64_t>& phase_starts() const {
    return phase_starts_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& phase_durs() const {
    return phase_durs_;
  }
  [[nodiscard]] const std::vector<ProfBucketLoad>& buckets() const {
    return buckets_;
  }

 private:
  friend class Profiler;
  ProfLane(Clock::time_point epoch, std::uint32_t num_buckets)
      : epoch_(epoch), buckets_(num_buckets) {}

  Clock::time_point epoch_;
  std::vector<ProfSpan> spans_;
  std::vector<std::uint64_t> phase_starts_;
  std::vector<std::uint64_t> phase_durs_;
  std::vector<ProfBucketLoad> buckets_;
};

/// The aggregated Table 5-1-style breakdown `report()` computes.
struct ProfileReport {
  struct Worker {
    std::uint64_t wall_ns = 0;  // sum of this worker's phase spans
    std::array<std::uint64_t, kProfCategories> category_ns{};
    std::uint64_t unattributed_ns = 0;  // wall - sum(categories)
    std::uint64_t activations = 0;      // from the bucket-load accounting
    /// 100 * (wall - unattributed) / wall; 100 when wall == 0.
    [[nodiscard]] double attributed_pct() const;
  };
  struct HotBucket {
    std::uint32_t bucket = 0;
    std::uint32_t worker = 0;  // owning lane
    std::uint64_t activations = 0;
    std::uint64_t tokens_touched = 0;
    double share_pct = 0.0;  // of all recorded activations
  };

  std::vector<Worker> workers;
  /// Category totals across workers, MailboxEnqueue split out of Match;
  /// ConflictUpdate holds the control lane's merge time.
  std::array<std::uint64_t, kProfCategories> total_ns{};
  std::uint64_t total_wall_ns = 0;          // sum of worker walls
  std::uint64_t total_unattributed_ns = 0;  // sum of worker remainders
  std::uint64_t conflict_update_ns = 0;     // control lane (== ConflictUpdate)
  /// Sum of the control lane's phase spans: handshake start → merge end,
  /// one per BSP phase.  This is engine time (the merge is inside it), so
  /// it is the denominator conflict_update_pct() normalizes against —
  /// dividing the control-thread merge by a *worker* wall is how the
  /// >100% conflict_update_pct bug happened.
  std::uint64_t engine_wall_ns = 0;
  std::uint64_t phases = 0;                 // BSP phases profiled
  std::uint64_t changes = 0;                // WM changes covered (>= phases)
  std::uint64_t rounds = 0;                 // BSP rounds across all phases
  /// max worker Match time / mean worker Match time (1.0 = balanced) —
  /// the measured analogue of the simulated busy skew `mpps stats` prints.
  double match_skew = 1.0;
  /// Merge-size accounting from the RoundMerge spans.
  std::uint64_t merge_rounds = 0;
  std::uint64_t merged_items = 0;
  std::uint64_t max_merge_items = 0;

  std::vector<HotBucket> hot_buckets;

  [[nodiscard]] double rounds_per_phase() const {
    return phases == 0 ? 0.0
                       : static_cast<double>(rounds) /
                             static_cast<double>(phases);
  }
  /// Rounds per WM change — under batching this is the amortized figure
  /// (a fused phase's rounds are shared by all its changes).
  [[nodiscard]] double rounds_per_change() const {
    return changes == 0 ? 0.0
                        : static_cast<double>(rounds) /
                              static_cast<double>(changes);
  }
  /// Control-thread conflict-update share of the engine wall, in
  /// [0, 100] by construction (the merge is contained in the control
  /// phase spans).  0 when no control phase spans were recorded.
  [[nodiscard]] double conflict_update_pct() const;
  /// The worst worker's attribution — the acceptance number (>= 95
  /// means the profiler explains where the wall time went).
  [[nodiscard]] double min_attributed_pct() const;
};

/// Owns the lanes of one profiled engine run.  An engine attaches once
/// (fixing the worker count, bucket count and clock epoch), hands each
/// worker thread its lane pointer at setup, and the caller pulls
/// `report()` / `export_chrome_trace()` after (or between) runs.
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Creates `workers` worker lanes plus one control lane.  Throws
  /// mpps::RuntimeError if already attached — one profiler instance
  /// profiles one engine.
  void attach(std::uint32_t workers, std::uint32_t num_buckets);
  [[nodiscard]] bool attached() const { return !lanes_.empty(); }
  [[nodiscard]] std::uint32_t workers() const {
    return lanes_.empty() ? 0 : static_cast<std::uint32_t>(lanes_.size() - 1);
  }

  /// Worker lane `i` (0-based).  Pointers stay valid for the profiler's
  /// lifetime; resolve once at setup, never on the hot path.
  [[nodiscard]] ProfLane* lane(std::uint32_t worker);
  /// The control thread's lane (deterministic merge / conflict-set time).
  [[nodiscard]] ProfLane* control_lane();

  /// Called by the engine's control thread after each profiled phase.
  /// `changes_in_phase` is the number of WM changes the phase fused
  /// (1 without batching).
  void add_phase(std::uint64_t rounds_in_phase,
                 std::uint64_t changes_in_phase = 1) {
    ++phases_;
    rounds_ += rounds_in_phase;
    changes_ += changes_in_phase;
  }

  /// Aggregates every lane into the Table 5-1-style breakdown.
  /// Quiescent-only (see the class comment).
  [[nodiscard]] ProfileReport report(std::size_t top_k_buckets = 8) const;

  /// Exports every lane's spans as wall-clock Chrome-trace lanes so the
  /// measured timeline opens in the same viewer as the simulated one:
  /// tid `tid_base` is the control lane, `tid_base + 1 + w` is worker w
  /// (the default keeps clear of the simulator's tid 0..P lanes).
  void export_chrome_trace(Tracer& tracer, std::uint32_t tid_base = 100) const;

 private:
  ProfLane::Clock::time_point epoch_{};
  std::vector<std::unique_ptr<ProfLane>> lanes_;  // workers..., control
  std::uint64_t phases_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t changes_ = 0;
};

/// Renders the breakdown as the boxed tables `mpps run --profile` prints.
void print_profile_report(std::ostream& os, const ProfileReport& report);

}  // namespace mpps::obs
