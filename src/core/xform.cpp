#include "src/core/xform.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/common/error.hpp"
#include "src/trace/synth.hpp"

namespace mpps::core {
namespace {

using trace::Side;
using trace::Trace;
using trace::TraceActivation;

std::uint64_t max_activation_id(const Trace& t) {
  std::uint64_t m = 0;
  for (const auto& cycle : t.cycles) {
    for (const auto& act : cycle.activations) {
      m = std::max(m, act.id.value());
    }
  }
  return m;
}

std::uint32_t max_node_id(const Trace& t) {
  std::uint32_t m = 0;
  for (const auto& cycle : t.cycles) {
    for (const auto& act : cycle.activations) {
      m = std::max(m, act.node.value());
    }
  }
  return m;
}

/// Recomputes every activation's successor count from its actual children.
void recount_successors(Trace& t) {
  for (auto& cycle : t.cycles) {
    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    for (const auto& act : cycle.activations) {
      if (act.parent.valid()) ++counts[act.parent.value()];
    }
    for (auto& act : cycle.activations) {
      const auto it = counts.find(act.id.value());
      act.successors = it == counts.end() ? 0 : it->second;
    }
  }
}

}  // namespace

Trace unshare_node(const Trace& input, NodeId node) {
  // The unshared copies: one per distinct successor node observed below
  // the target node, anywhere in the trace (the node's static output set).
  std::map<std::uint32_t, std::uint32_t> output_index;  // child node -> copy
  for (const auto& cycle : input.cycles) {
    std::unordered_map<std::uint64_t, bool> at_target;
    for (const auto& act : cycle.activations) {
      at_target.emplace(act.id.value(), act.node == node);
      if (act.parent.valid()) {
        const auto it = at_target.find(act.parent.value());
        if (it != at_target.end() && it->second) {
          output_index.emplace(act.node.value(),
                               static_cast<std::uint32_t>(output_index.size()));
        }
      }
    }
  }
  // Re-number: emplace order in a std::map is sorted, so fix indices.
  {
    std::uint32_t i = 0;
    for (auto& [child_node, index] : output_index) index = i++;
  }
  if (output_index.empty()) return input;  // nothing generated: no-op

  const std::uint32_t fanout =
      static_cast<std::uint32_t>(output_index.size());
  const std::uint32_t node_base = max_node_id(input) + 1;
  std::uint64_t next_id = max_activation_id(input) + 1;

  Trace out;
  out.name = input.name + "+unshare";
  out.num_buckets = input.num_buckets;
  for (const auto& cycle : input.cycles) {
    trace::TraceCycle new_cycle;
    new_cycle.wme_changes = cycle.wme_changes;
    // For each split activation: copy index -> replacement id.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> replacement;
    for (const auto& act : cycle.activations) {
      TraceActivation a = act;
      if (a.parent.valid()) {
        const auto it = replacement.find(a.parent.value());
        if (it != replacement.end()) {
          // Parent was split: attach to the copy owning this output node.
          a.parent = ActivationId{it->second[output_index.at(a.node.value())]};
        }
      }
      if (a.node != node) {
        new_cycle.activations.push_back(a);
        continue;
      }
      // Split: the token now arrives at every unshared copy; each copy
      // stores it (duplicated work) and generates one output's successors.
      std::vector<std::uint64_t> ids;
      ids.reserve(fanout);
      for (std::uint32_t i = 0; i < fanout; ++i) {
        TraceActivation copy = a;
        copy.id = ActivationId{next_id++};
        copy.node = NodeId{node_base + i};
        copy.bucket =
            trace::bucket_for(copy.node, copy.key_class, out.num_buckets);
        copy.successors = 0;  // recounted below
        copy.instantiations = i == 0 ? a.instantiations : 0;
        ids.push_back(copy.id.value());
        new_cycle.activations.push_back(copy);
      }
      replacement.emplace(a.id.value(), std::move(ids));
    }
    out.cycles.push_back(std::move(new_cycle));
  }
  recount_successors(out);
  trace::validate(out);
  return out;
}

Trace copy_constrain_node(const Trace& input, NodeId node,
                          std::uint32_t copies) {
  if (copies == 0) {
    throw TraceFormatError("copy_constrain_node: copies must be >= 1");
  }
  const std::uint32_t node_base = max_node_id(input) + 1;
  std::uint64_t next_id = max_activation_id(input) + 1;

  Trace out;
  out.name = input.name + "+cc";
  out.num_buckets = input.num_buckets;
  for (const auto& cycle : input.cycles) {
    trace::TraceCycle new_cycle;
    new_cycle.wme_changes = cycle.wme_changes;
    // Right activations at the node are replicated; children re-parent to
    // the replica matching their key class.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> replicas;
    for (const auto& act : cycle.activations) {
      TraceActivation a = act;
      if (a.parent.valid()) {
        const auto it = replicas.find(a.parent.value());
        if (it != replicas.end()) {
          a.parent = ActivationId{it->second[a.key_class % copies]};
        }
      }
      if (a.node != node) {
        new_cycle.activations.push_back(a);
        continue;
      }
      if (a.side == Side::Left) {
        // The token belongs to exactly one copy — the production copy whose
        // added constraint its values satisfy.
        a.node = NodeId{node_base + a.key_class % copies};
        a.bucket = trace::bucket_for(a.node, 0, out.num_buckets);
        new_cycle.activations.push_back(a);
        continue;
      }
      // Right activation: the opposite memory must exist in every copy.
      std::vector<std::uint64_t> ids;
      ids.reserve(copies);
      for (std::uint32_t i = 0; i < copies; ++i) {
        TraceActivation copy = a;
        copy.id = ActivationId{next_id++};
        copy.node = NodeId{node_base + i};
        copy.bucket = trace::bucket_for(copy.node, 0, out.num_buckets);
        copy.successors = 0;  // recounted
        copy.instantiations = i == 0 ? a.instantiations : 0;
        ids.push_back(copy.id.value());
        new_cycle.activations.push_back(copy);
      }
      replicas.emplace(a.id.value(), std::move(ids));
    }
    out.cycles.push_back(std::move(new_cycle));
  }
  recount_successors(out);
  trace::validate(out);
  return out;
}

Trace insert_dummy_nodes(const Trace& input, NodeId node, std::uint32_t parts,
                         std::uint32_t min_successors) {
  if (parts == 0) {
    throw TraceFormatError("insert_dummy_nodes: parts must be >= 1");
  }
  const std::uint32_t node_base = max_node_id(input) + 1;
  std::uint64_t next_id = max_activation_id(input) + 1;

  Trace out;
  out.name = input.name + "+dummy";
  out.num_buckets = input.num_buckets;
  for (const auto& cycle : input.cycles) {
    // First pass: which activations get dummies (child count threshold).
    std::unordered_map<std::uint64_t, std::uint32_t> child_count;
    for (const auto& act : cycle.activations) {
      if (act.parent.valid()) ++child_count[act.parent.value()];
    }
    trace::TraceCycle new_cycle;
    new_cycle.wme_changes = cycle.wme_changes;
    // split id -> dummy ids; and a running child counter for distribution.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> dummies;
    std::unordered_map<std::uint64_t, std::uint32_t> next_child;
    for (const auto& act : cycle.activations) {
      TraceActivation a = act;
      if (a.parent.valid()) {
        const auto it = dummies.find(a.parent.value());
        if (it != dummies.end()) {
          const std::uint32_t slot = next_child[a.parent.value()]++ % parts;
          a.parent = ActivationId{it->second[slot]};
        }
      }
      const auto count_it = child_count.find(a.id.value());
      const bool split = a.node == node && count_it != child_count.end() &&
                         count_it->second >= min_successors;
      new_cycle.activations.push_back(a);
      if (!split) continue;
      std::vector<std::uint64_t> ids;
      ids.reserve(parts);
      for (std::uint32_t i = 0; i < parts; ++i) {
        TraceActivation dummy;
        dummy.id = ActivationId{next_id++};
        dummy.parent = a.id;
        dummy.node = NodeId{node_base + i};
        dummy.side = Side::Left;
        dummy.tag = a.tag;
        dummy.key_class = a.key_class;
        dummy.bucket =
            trace::bucket_for(dummy.node, dummy.key_class, out.num_buckets);
        ids.push_back(dummy.id.value());
        new_cycle.activations.push_back(dummy);
      }
      dummies.emplace(a.id.value(), std::move(ids));
    }
    out.cycles.push_back(std::move(new_cycle));
  }
  recount_successors(out);
  trace::validate(out);
  return out;
}

ops5::Program copy_and_constraint(
    const ops5::Program& program, std::string_view name, int ce_number,
    Symbol attr, const std::vector<std::vector<ops5::Value>>& partitions) {
  const ops5::Production* target = program.find(name);
  if (target == nullptr) {
    throw RuntimeError("copy_and_constraint: unknown production '" +
                       std::string(name) + "'");
  }
  if (ce_number < 1 ||
      static_cast<std::size_t>(ce_number) > target->lhs.size()) {
    throw RuntimeError("copy_and_constraint: condition element " +
                       std::to_string(ce_number) + " out of range");
  }
  if (partitions.empty()) {
    throw RuntimeError("copy_and_constraint: need at least one partition");
  }
  ops5::Program out;
  out.initial_wmes = program.initial_wmes;
  for (const auto& p : program.productions) {
    if (p.name != name) {
      out.productions.push_back(p);
      continue;
    }
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      ops5::Production copy = p;
      copy.name = p.name + "&&" + std::to_string(i);
      ops5::AtomicTest constraint;
      constraint.pred = ops5::Predicate::Eq;
      constraint.disjunction = partitions[i];
      ops5::AttrTest attr_test;
      attr_test.attr = attr;
      attr_test.tests.push_back(std::move(constraint));
      copy.lhs[static_cast<std::size_t>(ce_number) - 1].attr_tests.push_back(
          std::move(attr_test));
      out.productions.push_back(std::move(copy));
    }
  }
  return out;
}

}  // namespace mpps::core
