#include "src/core/probmodel.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/common/rng.hpp"

namespace mpps::core {

ProbModelResult probmodel_monte_carlo(std::uint32_t buckets,
                                      double active_fraction,
                                      std::uint32_t procs,
                                      BucketPlacement placement,
                                      std::uint32_t trials,
                                      std::uint64_t seed) {
  const auto active = static_cast<std::uint32_t>(
      std::lround(active_fraction * static_cast<double>(buckets)));
  ProbModelResult out;
  if (active == 0 || trials == 0 || procs == 0) return out;
  const std::uint32_t even_max = (active + procs - 1) / procs;

  Rng rng(seed);
  std::vector<std::uint32_t> bucket_ids(buckets);
  std::iota(bucket_ids.begin(), bucket_ids.end(), 0u);
  std::vector<std::uint32_t> load(procs);
  std::uint64_t even_hits = 0;
  std::uint64_t uneven_hits = 0;
  double max_sum = 0.0;

  for (std::uint32_t t = 0; t < trials; ++t) {
    std::fill(load.begin(), load.end(), 0u);
    if (placement == BucketPlacement::IndependentUniform) {
      for (std::uint32_t a = 0; a < active; ++a) {
        ++load[rng.below(procs)];
      }
    } else {
      // Partial Fisher-Yates: draw the active subset, map through the
      // round-robin deal (bucket b lives on processor b % procs).
      for (std::uint32_t a = 0; a < active; ++a) {
        const auto j =
            a + static_cast<std::uint32_t>(rng.below(buckets - a));
        std::swap(bucket_ids[a], bucket_ids[j]);
        ++load[bucket_ids[a] % procs];
      }
    }
    const std::uint32_t max = *std::max_element(load.begin(), load.end());
    if (max == even_max) ++even_hits;
    if (max == active) ++uneven_hits;
    max_sum += max;
  }
  out.p_even = static_cast<double>(even_hits) / trials;
  out.p_totally_uneven = static_cast<double>(uneven_hits) / trials;
  out.expected_max_load = max_sum / trials;
  out.expected_speedup = static_cast<double>(active) / out.expected_max_load;
  return out;
}

ProbModelResult probmodel_exact(std::uint32_t active, std::uint32_t procs) {
  ProbModelResult out;
  if (active == 0 || procs == 0) return out;
  // P(max <= m) via the truncated-multinomial DP: distribute `active`
  // distinguishable activations over `procs` processors with every load
  // <= m.  DP over processors on remaining activations, weights 1/k!,
  // multiplied by active! at the end; probabilities divide by procs^active.
  std::vector<double> log_fact(active + 1, 0.0);
  for (std::uint32_t i = 1; i <= active; ++i) {
    log_fact[i] = log_fact[i - 1] + std::log(static_cast<double>(i));
  }
  auto p_max_le = [&](std::uint32_t m) -> double {
    // dp[r]: sum over ways to fill processors so far leaving r activations,
    // of prod 1/k_i!.  Work in ordinary space; values stay moderate.
    std::vector<double> dp(active + 1, 0.0);
    dp[active] = 1.0;
    for (std::uint32_t p = 0; p < procs; ++p) {
      std::vector<double> next(active + 1, 0.0);
      for (std::uint32_t r = 0; r <= active; ++r) {
        if (dp[r] == 0.0) continue;
        const std::uint32_t limit = std::min(m, r);
        for (std::uint32_t k = 0; k <= limit; ++k) {
          next[r - k] += dp[r] * std::exp(-log_fact[k]);
        }
      }
      dp = std::move(next);
    }
    const double log_total =
        log_fact[active] -
        static_cast<double>(active) * std::log(static_cast<double>(procs));
    return dp[0] * std::exp(log_total);
  };

  const std::uint32_t even_max = (active + procs - 1) / procs;
  std::vector<double> cdf(active + 1, 0.0);
  for (std::uint32_t m = even_max; m <= active; ++m) cdf[m] = p_max_le(m);
  out.p_even = cdf[even_max];
  out.p_totally_uneven =
      cdf[active] - (active >= 1 ? cdf[active - 1] : 0.0);
  double expect = 0.0;
  for (std::uint32_t m = even_max; m <= active; ++m) {
    const double pm = cdf[m] - (m == even_max ? 0.0 : cdf[m - 1]);
    expect += pm * static_cast<double>(m);
  }
  out.expected_max_load = expect;
  out.expected_speedup =
      expect > 0.0 ? static_cast<double>(active) / expect : 0.0;
  return out;
}

}  // namespace mpps::core
