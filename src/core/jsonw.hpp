// A minimal streaming JSON writer for the CLI's `--json` output mode.
// Emits pretty-printed, key-ordered JSON with a stable number format
// (printf %.10g — no locale, no trailing noise) so the golden-file tests
// in tests/golden/ can pin the schema byte-for-byte.
//
// Usage:
//   JsonWriter w(out);
//   w.begin_object();
//   w.field("schema_version", 2);
//   w.key("results"); w.begin_array();
//   ... w.end_array();
//   w.end_object();  // writes the final newline
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mpps::core {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object() {
    open('{');
  }
  void end_object() {
    close('}');
  }
  void begin_array() {
    open('[');
  }
  void end_array() {
    close(']');
  }

  /// Writes `"name": ` — must be followed by a value or begin_*.
  void key(std::string_view name) {
    element();
    write_string(name);
    out_ << ": ";
    pending_key_ = true;
  }

  void value(std::string_view s) {
    element();
    write_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    element();
    out_ << (b ? "true" : "false");
  }
  void value(double d) {
    element();
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.10g", d);
    out_ << buffer;
  }
  void value(std::uint64_t v) {
    element();
    out_ << v;
  }
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
  void value(int v) {
    element();
    out_ << v;
  }

  template <typename T>
  void field(std::string_view name, T v) {
    key(name);
    value(v);
  }

 private:
  struct Scope {
    bool array = false;
    std::size_t count = 0;
  };

  void open(char c) {
    element();
    out_ << c;
    scopes_.push_back(Scope{c == '[', 0});
  }

  void close(char c) {
    const bool empty = scopes_.back().count == 0;
    scopes_.pop_back();
    if (!empty) {
      out_ << "\n";
      indent();
    }
    out_ << c;
    if (scopes_.empty()) out_ << "\n";
  }

  /// Comma/newline/indent bookkeeping before any element.
  void element() {
    if (pending_key_) {
      pending_key_ = false;
      return;  // value directly follows its key on the same line
    }
    if (scopes_.empty()) return;
    if (scopes_.back().count > 0) out_ << ",";
    out_ << "\n";
    ++scopes_.back().count;
    indent();
  }

  void indent() {
    for (std::size_t i = 0; i < scopes_.size(); ++i) out_ << "  ";
  }

  void write_string(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\t': out_ << "\\t"; break;
        case '\r': out_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof buffer, "\\u%04x",
                          static_cast<unsigned>(c));
            out_ << buffer;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<Scope> scopes_;
  bool pending_key_ = false;
};

}  // namespace mpps::core
