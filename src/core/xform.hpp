// The paper's transformations for increasing speedups (Section 5.2):
//
//  * Unsharing (Fig 5-3): split a two-input node shared by several outputs
//    so each output's successors are generated at a private node — and so
//    hash to different buckets/processors.
//  * Dummy nodes (Gupta's thesis, Ch. 4): interpose 2-4 dummy nodes that
//    split a large successor batch into parts generated in parallel.
//  * Copy-and-constraint (Stolfo): split the culprit production into k
//    copies each matching a partition of the data, giving the hash extra
//    discrimination (different node-ids ⇒ different buckets).
//
// Each exists at two levels: on the *network/source* (semantics-preserving
// program transformations, testable against the match oracle) and on the
// *trace* (re-mapping recorded activations, used for the paper's
// simulation experiments on the reconstructed sections).
#pragma once

#include <cstdint>

#include "src/common/symbol.hpp"
#include "src/ops5/ast.hpp"
#include "src/trace/record.hpp"

namespace mpps::core {

// ---- trace-level --------------------------------------------------------

/// Unshares `node`: each of its activations is split into one activation
/// per distinct successor node, placed at fresh node ids (hence fresh
/// buckets).  Each split activation pays its own token add/delete — the
/// duplicated work the paper accepts.  Activations with no successors are
/// kept whole.
trace::Trace unshare_node(const trace::Trace& input, NodeId node);

/// Copy-and-constraint on `node`: its activations are re-mapped to one of
/// `copies` fresh node ids chosen by the token's key equivalence class, so
/// tokens that the original hash could not discriminate spread over
/// `copies` buckets.  Right activations at the node are replicated into
/// every copy (the opposite memory must exist in each), with successors
/// partitioned by their key class.
trace::Trace copy_constrain_node(const trace::Trace& input, NodeId node,
                                 std::uint32_t copies);

/// Inserts dummy nodes below `node`: any of its activations generating at
/// least `min_successors` tokens instead generates `parts` dummy
/// activations (fresh nodes/buckets), each producing an equal share of the
/// original successors.
trace::Trace insert_dummy_nodes(const trace::Trace& input, NodeId node,
                                std::uint32_t parts,
                                std::uint32_t min_successors = 8);

// ---- source-level -------------------------------------------------------

/// Splits production `name` into one copy per partition; copy `i` adds the
/// constraint `^attr << partitions[i]... >>` to condition element
/// `ce_number` (1-based).  The union of the copies' instantiations equals
/// the original's on any working memory whose `attr` values all appear in
/// some partition.  Throws RuntimeError on an unknown production or CE.
ops5::Program copy_and_constraint(const ops5::Program& program,
                                  std::string_view name, int ce_number,
                                  Symbol attr,
                                  const std::vector<std::vector<ops5::Value>>&
                                      partitions);

}  // namespace mpps::core
