// End-to-end pipeline: OPS5 source → Rete compile → traced execution →
// MPC simulation.  This is the path a user takes to answer "how would MY
// rule program behave on a message-passing machine?"
#pragma once

#include <string>
#include <string_view>

#include "src/ops5/ast.hpp"
#include "src/rete/interp.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"

namespace mpps::core {

struct PipelineOptions {
  rete::InterpreterOptions interpreter;
  /// Stop recording after this many MRA cycles (0 = run to completion).
  std::size_t max_trace_cycles = 0;
};

struct PipelineResult {
  trace::Trace trace;
  rete::RunResult run;
  std::size_t firings = 0;
};

/// Runs `program` under the Rete interpreter, recording the hash-table
/// activity trace.
PipelineResult record_trace(const ops5::Program& program, std::string name,
                            const PipelineOptions& options = {});

/// Parses OPS5 source and records its trace.
PipelineResult record_trace_from_source(std::string_view source,
                                        std::string name,
                                        const PipelineOptions& options = {});

/// A full speedup curve for a trace: processors × overhead runs.
struct SpeedupPoint {
  std::uint32_t procs = 1;
  int run = 1;  // Table 5-1 run number; 0 = zero latency & overhead
  double speedup = 1.0;
};

std::vector<SpeedupPoint> speedup_curve(const trace::Trace& trace,
                                        const std::vector<std::uint32_t>& procs,
                                        const std::vector<int>& runs);

}  // namespace mpps::core
