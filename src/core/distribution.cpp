#include "src/core/distribution.hpp"

#include <algorithm>
#include <numeric>

namespace mpps::core {

std::vector<std::uint64_t> bucket_costs(const trace::Trace& trace,
                                        std::size_t cycle,
                                        const sim::CostModel& costs) {
  std::vector<std::uint64_t> out(trace.num_buckets, 0);
  for (const auto& act : trace.cycles[cycle].activations) {
    std::uint64_t cost = static_cast<std::uint64_t>(
        costs.token_cost(act.side == trace::Side::Left).nanos());
    cost += static_cast<std::uint64_t>(costs.per_successor.nanos()) *
            (act.successors + act.instantiations);
    out[act.bucket] += cost;
  }
  return out;
}

sim::Assignment greedy_assignment(const trace::Trace& trace,
                                  std::uint32_t num_procs,
                                  const sim::CostModel& costs) {
  return sim::Assignment::greedy(trace, num_procs, costs);
}

std::vector<std::vector<std::uint64_t>> resident_tokens_per_cycle(
    const trace::Trace& trace) {
  std::vector<std::vector<std::uint64_t>> out;
  std::vector<std::uint64_t> resident(trace.num_buckets, 0);
  for (const auto& cycle : trace.cycles) {
    for (const auto& act : cycle.activations) {
      if (act.tag == trace::Tag::Plus) {
        ++resident[act.bucket];
      } else if (resident[act.bucket] > 0) {
        --resident[act.bucket];
      }
    }
    out.push_back(resident);
  }
  return out;
}

SimTime migration_overhead(const trace::Trace& trace,
                           const sim::Assignment& assignment,
                           SimTime per_token_move) {
  const auto resident = resident_tokens_per_cycle(trace);
  SimTime total{};
  for (std::size_t c = 0; c + 1 < trace.cycles.size(); ++c) {
    for (std::uint32_t b = 0; b < trace.num_buckets; ++b) {
      if (assignment.proc_of(c, b) == assignment.proc_of(c + 1, b)) continue;
      total += per_token_move * static_cast<std::int64_t>(resident[c][b]);
    }
  }
  return total;
}

sim::Assignment coalesce_small_cycles(const trace::Trace& trace,
                                      const sim::Assignment& base,
                                      std::uint32_t num_procs,
                                      std::size_t small_cycle_threshold) {
  std::vector<std::vector<std::uint32_t>> maps;
  maps.reserve(trace.cycles.size());
  std::uint32_t rotation = 0;
  for (std::size_t c = 0; c < trace.cycles.size(); ++c) {
    std::vector<std::uint32_t> map(trace.num_buckets);
    if (trace.cycles[c].activations.size() < small_cycle_threshold) {
      // Everything on one processor: the whole cycle runs locally.
      const std::uint32_t proc = rotation++ % num_procs;
      std::fill(map.begin(), map.end(), proc);
    } else {
      for (std::uint32_t b = 0; b < trace.num_buckets; ++b) {
        map[b] = base.proc_of(c, b);
      }
    }
    maps.push_back(std::move(map));
  }
  return sim::Assignment::per_cycle(std::move(maps), num_procs);
}

double load_imbalance(const trace::Trace& trace, std::size_t cycle,
                      const sim::Assignment& assignment,
                      const sim::CostModel& costs) {
  const std::vector<std::uint64_t> weight = bucket_costs(trace, cycle, costs);
  std::vector<std::uint64_t> load(assignment.num_procs(), 0);
  for (std::uint32_t b = 0; b < trace.num_buckets; ++b) {
    load[assignment.proc_of(cycle, b)] += weight[b];
  }
  const std::uint64_t total = std::accumulate(load.begin(), load.end(), 0ull);
  if (total == 0) return 1.0;
  const std::uint64_t max = *std::max_element(load.begin(), load.end());
  const double mean =
      static_cast<double>(total) / static_cast<double>(load.size());
  return static_cast<double>(max) / mean;
}

}  // namespace mpps::core
