#include "src/core/selfcheck.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_set>
#include <utility>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/core/distribution.hpp"
#include "src/sim/invariants.hpp"
#include "src/sim/refsim.hpp"
#include "src/trace/synth.hpp"

namespace mpps::core {

namespace {

sim::CostModel apply_fault(sim::CostModel costs, FaultInjection fault) {
  switch (fault) {
    case FaultInjection::None:
      break;
    case FaultInjection::LeftTokenUndercharge:
      costs.left_token =
          std::max(SimTime{}, costs.left_token - SimTime::us(1));
      break;
    case FaultInjection::FreeRemoteSend:
      costs.send_overhead = SimTime{};
      break;
    case FaultInjection::FreeRemoteHop:
      break;  // applied to the network configuration, not the cost model
  }
  return costs;
}

const char* fault_name(FaultInjection fault) {
  switch (fault) {
    case FaultInjection::None: return "none";
    case FaultInjection::LeftTokenUndercharge:
      return "left-token-undercharge";
    case FaultInjection::FreeRemoteSend: return "free-remote-send";
    case FaultInjection::FreeRemoteHop: return "free-remote-hop";
  }
  return "?";
}

const char* assign_name(AssignKind kind) {
  switch (kind) {
    case AssignKind::RoundRobin: return "round-robin";
    case AssignKind::Random: return "random";
    case AssignKind::PerCycle: return "per-cycle";
    case AssignKind::Greedy: return "greedy";
  }
  return "?";
}

/// One differential run with full results (check_scenario wraps this;
/// run_selfcheck keeps the results for the cross-run laws).
struct OracleRun {
  sim::SimResult fast;
  sim::SimResult ref;
  std::string problem;          // empty == agreement + all laws hold
  std::uint64_t law_checks = 0;
};

OracleRun run_oracle(const Scenario& scenario, FaultInjection fault) {
  OracleRun out;
  const sim::Assignment assignment = make_assignment(scenario);
  sim::SimConfig clean = scenario.config;
  clean.metrics = nullptr;
  clean.tracer = nullptr;
  sim::SimConfig faulted = clean;
  faulted.costs = apply_fault(clean.costs, fault);
  if (fault == FaultInjection::FreeRemoteHop) {
    faulted.network.free_remote_hop_fault = true;
  }
  out.fast = sim::simulate(scenario.trace, faulted, assignment);
  out.ref = sim::ref_simulate(scenario.trace, clean, assignment);
  out.problem = sim::describe_divergence(out.fast, out.ref);
  // The laws judge the optimized engine against the TRUE cost model — the
  // second oracle layer, independent of the reference engine.
  const sim::InvariantReport laws =
      sim::check_run_invariants(scenario.trace, clean, out.fast);
  out.law_checks = laws.checked;
  if (out.problem.empty() && !laws.ok()) {
    out.problem = laws.violations.front().invariant + ": " +
                  laws.violations.front().detail;
  }
  return out;
}

/// Removes the activation at `index` and its whole descendant subtree,
/// keeping the cycle structurally valid (the parent's successor count is
/// decremented).
void drop_subtree(trace::TraceCycle& cycle, std::size_t index) {
  const trace::TraceActivation& target = cycle.activations[index];
  if (target.parent.valid()) {
    for (std::size_t j = 0; j < index; ++j) {
      if (cycle.activations[j].id == target.parent) {
        --cycle.activations[j].successors;
        break;
      }
    }
  }
  std::unordered_set<std::uint64_t> dropped;
  dropped.insert(target.id.value());
  std::vector<trace::TraceActivation> kept;
  kept.reserve(cycle.activations.size() - 1);
  for (std::size_t j = 0; j < cycle.activations.size(); ++j) {
    const trace::TraceActivation& act = cycle.activations[j];
    if (j == index ||
        (act.parent.valid() && dropped.count(act.parent.value()) != 0)) {
      dropped.insert(act.id.value());
      continue;
    }
    kept.push_back(act);
  }
  cycle.activations = std::move(kept);
}

}  // namespace

FaultInjection parse_fault(const std::string& name) {
  if (name == "none") return FaultInjection::None;
  if (name == "left-token-undercharge") {
    return FaultInjection::LeftTokenUndercharge;
  }
  if (name == "free-remote-send") return FaultInjection::FreeRemoteSend;
  if (name == "free-remote-hop") return FaultInjection::FreeRemoteHop;
  throw RuntimeError("unknown fault '" + name +
                     "' (expected none, left-token-undercharge, "
                     "free-remote-send or free-remote-hop)");
}

std::string Scenario::describe() const {
  std::string out = std::to_string(trace.cycles.size()) + " cycle(s), " +
                    std::to_string(trace.total_activations()) +
                    " activation(s), " +
                    std::to_string(config.match_processors) + " proc(s), ";
  out += config.mapping == sim::MappingMode::ProcessorPairs ? "pairs"
                                                            : "merged";
  if (config.constant_test_processors > 0) {
    out += ", ct=" + std::to_string(config.constant_test_processors);
  }
  if (config.conflict_set_processors > 0) {
    out += ", cs=" + std::to_string(config.conflict_set_processors);
  }
  switch (config.termination) {
    case sim::TerminationModel::None: break;
    case sim::TerminationModel::AckCounting: out += ", ack-counting"; break;
    case sim::TerminationModel::BarrierPoll: out += ", barrier-poll"; break;
  }
  if (config.network.kind != sim::NetKind::Constant) {
    out += ", net=" + config.network.describe();
  }
  out += std::string(", ") + assign_name(assign) + " assignment";
  out += ", send=" + std::to_string(config.costs.send_overhead.nanos()) +
         "ns recv=" + std::to_string(config.costs.recv_overhead.nanos()) +
         "ns";
  return out;
}

sim::Assignment make_assignment(const Scenario& scenario) {
  const std::uint32_t parts = scenario.config.partitions();
  const std::uint32_t buckets = scenario.trace.num_buckets;
  switch (scenario.assign) {
    case AssignKind::RoundRobin:
      return sim::Assignment::round_robin(buckets, parts);
    case AssignKind::Random:
      return sim::Assignment::random(buckets, parts, scenario.assign_seed);
    case AssignKind::PerCycle: {
      const std::size_t cycles =
          std::max<std::size_t>(1, scenario.trace.cycles.size());
      std::vector<std::vector<std::uint32_t>> maps(cycles);
      for (std::size_t c = 0; c < cycles; ++c) {
        maps[c].resize(buckets);
        for (std::uint32_t b = 0; b < buckets; ++b) {
          maps[c][b] = (b + static_cast<std::uint32_t>(c)) % parts;
        }
      }
      return sim::Assignment::per_cycle(std::move(maps), parts);
    }
    case AssignKind::Greedy:
      return greedy_assignment(scenario.trace, parts, scenario.config.costs);
  }
  return sim::Assignment::round_robin(buckets, parts);
}

std::string check_scenario(const Scenario& scenario, FaultInjection fault) {
  return run_oracle(scenario, fault).problem;
}

Scenario shrink_scenario(Scenario failing, FaultInjection fault,
                         std::uint64_t* steps) {
  std::uint64_t accepted = 0;
  const auto fails = [&](const Scenario& candidate) {
    try {
      return !check_scenario(candidate, fault).empty();
    } catch (const std::exception&) {
      return false;  // a malformed candidate is not a smaller repro
    }
  };

  bool progress = true;
  while (progress) {
    progress = false;

    // Whole cycles first — the cheapest large reduction.
    for (std::size_t c = 0; c < failing.trace.cycles.size() &&
                            failing.trace.cycles.size() > 1;) {
      Scenario candidate = failing;
      candidate.trace.cycles.erase(candidate.trace.cycles.begin() +
                                   static_cast<std::ptrdiff_t>(c));
      if (fails(candidate)) {
        failing = std::move(candidate);
        ++accepted;
        progress = true;
      } else {
        ++c;
      }
    }

    // Activation subtrees, last to first: a drop only removes indices at
    // or after the target (descendants follow their parent), so earlier
    // indices stay valid and one pass can accept many drops.
    for (std::size_t c = 0; c < failing.trace.cycles.size(); ++c) {
      for (std::size_t i = failing.trace.cycles[c].activations.size();
           i-- > 0;) {
        Scenario candidate = failing;
        drop_subtree(candidate.trace.cycles[c], i);
        if (fails(candidate)) {
          failing = std::move(candidate);
          ++accepted;
          progress = true;
        }
      }
    }

    // Instantiation counts.
    for (std::size_t c = 0; c < failing.trace.cycles.size(); ++c) {
      for (std::size_t i = 0; i < failing.trace.cycles[c].activations.size();
           ++i) {
        if (failing.trace.cycles[c].activations[i].instantiations == 0) {
          continue;
        }
        Scenario candidate = failing;
        candidate.trace.cycles[c].activations[i].instantiations = 0;
        if (fails(candidate)) {
          failing = std::move(candidate);
          ++accepted;
          progress = true;
        }
      }
    }

    // Machine size: the smallest processor count that still fails.
    for (const std::uint32_t procs : {1u, 2u, 3u, 4u, 8u}) {
      if (procs >= failing.config.match_processors) break;
      if (failing.config.mapping == sim::MappingMode::ProcessorPairs &&
          (procs < 2 || procs % 2 != 0)) {
        continue;
      }
      Scenario candidate = failing;
      candidate.config.match_processors = procs;
      if (fails(candidate)) {
        failing = std::move(candidate);
        ++accepted;
        progress = true;
        break;
      }
    }

    // Configuration simplifications, each kept only if still failing.
    const auto try_simplify = [&](const auto& mutate) {
      Scenario candidate = failing;
      mutate(candidate);
      if (fails(candidate)) {
        failing = std::move(candidate);
        ++accepted;
        progress = true;
      }
    };
    if (failing.config.mapping == sim::MappingMode::ProcessorPairs) {
      try_simplify([](Scenario& s) {
        s.config.mapping = sim::MappingMode::Merged;
      });
    }
    if (failing.config.termination != sim::TerminationModel::None) {
      try_simplify([](Scenario& s) {
        s.config.termination = sim::TerminationModel::None;
      });
    }
    if (failing.config.conflict_set_processors > 0) {
      try_simplify([](Scenario& s) {
        s.config.conflict_set_processors = 0;
        s.config.conflict_select_cost = SimTime{};
      });
    }
    if (failing.config.constant_test_processors > 0) {
      try_simplify([](Scenario& s) {
        s.config.constant_test_processors = 0;
      });
    }
    if (failing.config.network.kind != sim::NetKind::Constant) {
      try_simplify([](Scenario& s) {
        s.config.network = sim::NetworkConfig{};
      });
    }
    if (failing.assign != AssignKind::RoundRobin) {
      try_simplify([](Scenario& s) { s.assign = AssignKind::RoundRobin; });
    }
  }

  if (steps != nullptr) *steps = accepted;
  return failing;
}

std::string SelfCheckFailure::describe() const {
  std::string out = "round " + std::to_string(round) + ": " + detail;
  out += "\n  minimal repro: " + scenario.describe();
  if (shrink_steps > 0) {
    out += " (shrunk in " + std::to_string(shrink_steps) + " steps)";
  }
  return out;
}

std::string SelfCheckResult::summary() const {
  std::string out = "selfcheck: " + std::to_string(rounds) + " round(s), " +
                    std::to_string(comparisons) +
                    " differential comparison(s), " +
                    std::to_string(invariant_checks) +
                    " invariant evaluation(s), " +
                    std::to_string(failures.size()) + " failure(s)";
  for (const SelfCheckFailure& failure : failures) {
    out += '\n';
    out += failure.describe();
  }
  return out;
}

SelfCheckResult run_selfcheck(const SelfCheckOptions& options) {
  SelfCheckResult result;
  static constexpr std::uint32_t kProcChoices[] = {1, 2, 3, 4, 8, 16};
  static constexpr AssignKind kAssignKinds[] = {
      AssignKind::RoundRobin, AssignKind::Random, AssignKind::PerCycle,
      AssignKind::Greedy};

  for (std::uint64_t round = 0; round < options.rounds; ++round) {
    if (result.failures.size() >= options.max_failures) break;
    ++result.rounds;
    Rng rng(options.seed + 0x9E3779B97F4A7C15ull * (round + 1));

    trace::RandomTraceSpec spec;
    spec.cycles = 2 + static_cast<std::uint32_t>(rng.below(4));
    spec.num_buckets = 16u << rng.below(3);
    spec.nodes = 8 + static_cast<std::uint32_t>(rng.below(17));
    spec.roots_per_cycle = 4 + static_cast<std::uint32_t>(rng.below(37));
    spec.right_fraction = 0.3 + 0.6 * rng.uniform();
    spec.fanout = 0.5 + 2.0 * rng.uniform();
    spec.chain_prob = 0.5 * rng.uniform();
    spec.instantiation_prob = 0.1 * rng.uniform();
    spec.key_classes = 8 + static_cast<std::uint32_t>(rng.below(57));
    const trace::Trace trace = trace::make_random_trace(spec, rng());

    sim::SimConfig shape;
    shape.match_processors = kProcChoices[rng.below(6)];
    if (shape.match_processors % 2 == 0 && rng.below(4) == 0) {
      shape.mapping = sim::MappingMode::ProcessorPairs;
    }
    if (rng.below(5) == 0) {
      shape.constant_test_processors =
          1 + static_cast<std::uint32_t>(rng.below(2));
    }
    if (rng.below(5) == 0) {
      shape.conflict_set_processors =
          1 + static_cast<std::uint32_t>(rng.below(2));
      shape.conflict_select_cost =
          SimTime::us(static_cast<std::int64_t>(rng.below(5)));
    }
    shape.termination =
        static_cast<sim::TerminationModel>(rng.below(3));
    shape.charge_instantiation_messages = rng.below(4) != 0;
    // Three rounds in eight keep the flat wire; the rest run a routed
    // topology so the grid exercises multi-hop charging (and so the
    // free-remote-hop fault gate has hops to trip on).  Explicit
    // geometries are sized for the largest possible machine here
    // (1 control + 16 match + 2 ct + 2 cs = 21 nodes).
    switch (rng.below(8)) {
      case 0:
        shape.network.kind = sim::NetKind::Mesh;  // auto near-square dims
        break;
      case 1:
        shape.network.kind = sim::NetKind::Mesh;
        shape.network.dims = {4, 8};
        break;
      case 2:
        shape.network.kind = sim::NetKind::Torus;
        break;
      case 3:
        shape.network.kind = sim::NetKind::Torus;
        shape.network.dims = {3, 3, 4};
        break;
      case 4:
        shape.network.kind = sim::NetKind::FatTree;
        shape.network.arity = 2 + static_cast<std::uint32_t>(rng.below(2));
        break;
      default:
        break;  // flat constant-latency wire
    }
    if (shape.network.kind != sim::NetKind::Constant && rng.below(3) == 0) {
      shape.network.hop_latency = SimTime::ns(
          250 * (1 + static_cast<std::int64_t>(rng.below(4))));
    }
    const bool hardware_broadcast = rng.below(2) == 0;
    const std::uint64_t assign_seed = rng();

    // The Table 5-1 overhead grid x every assignment strategy.
    bool round_clean = true;
    std::vector<sim::SimResult> grid_results;  // round-robin runs, runs 1..4
    std::vector<sim::SimConfig> grid_configs;
    for (int run = 1; run <= 4 && round_clean; ++run) {
      for (const AssignKind kind : kAssignKinds) {
        Scenario scenario;
        scenario.trace = trace;
        scenario.config = shape;
        scenario.config.costs = sim::CostModel::paper_run(run);
        scenario.config.costs.hardware_broadcast = hardware_broadcast;
        scenario.assign = kind;
        scenario.assign_seed = assign_seed;

        OracleRun oracle = run_oracle(scenario, options.fault);
        ++result.comparisons;
        result.invariant_checks += oracle.law_checks;
        if (oracle.problem.empty()) {
          if (kind == AssignKind::RoundRobin) {
            grid_results.push_back(std::move(oracle.fast));
            grid_configs.push_back(scenario.config);
            if (options.fault == FaultInjection::None &&
                scenario.config.network.kind != sim::NetKind::Constant) {
              // Flat-wire twin of the same run: identical routing,
              // constant network — its presence in the grid feeds the
              // cross-run hop-monotonicity law.
              sim::SimConfig flat = scenario.config;
              flat.network = sim::NetworkConfig{};
              grid_results.push_back(
                  sim::simulate(trace, flat, make_assignment(scenario)));
              grid_configs.push_back(flat);
            }
          }
          continue;
        }

        SelfCheckFailure failure;
        failure.round = round;
        failure.detail = oracle.problem;
        if (options.shrink) {
          failure.scenario = shrink_scenario(
              std::move(scenario), options.fault, &failure.shrink_steps);
        } else {
          failure.scenario = std::move(scenario);
        }
        if (options.log != nullptr) {
          *options.log << failure.describe() << "\n";
        }
        result.failures.push_back(std::move(failure));
        round_clean = false;
        break;  // one failure per round; move on
      }
    }

    // Cross-run laws over the clean round-robin grid (same trace, same
    // assignment, only the message costs vary).
    if (round_clean && grid_results.size() > 1) {
      std::vector<sim::ObservedRun> observed;
      observed.reserve(grid_results.size());
      for (std::size_t i = 0; i < grid_results.size(); ++i) {
        observed.push_back({grid_configs[i], &grid_results[i]});
      }
      const sim::InvariantReport cross =
          sim::check_cross_run_invariants(trace, observed, options.metrics);
      result.invariant_checks += cross.checked;
      if (!cross.ok()) {
        SelfCheckFailure failure;
        failure.round = round;
        failure.detail = "cross-run: " + cross.violations.front().invariant +
                         ": " + cross.violations.front().detail;
        failure.scenario.trace = trace;
        failure.scenario.config = grid_configs.front();
        if (options.log != nullptr) {
          *options.log << failure.describe() << "\n";
        }
        result.failures.push_back(std::move(failure));
      }
    }

    if (options.log != nullptr && (round + 1) % 50 == 0) {
      *options.log << "selfcheck: " << (round + 1) << "/" << options.rounds
                   << " rounds, " << result.comparisons << " comparisons, "
                   << result.failures.size() << " failure(s)\n";
    }
  }

  if (options.metrics != nullptr) {
    options.metrics->counter("selfcheck.rounds").add(result.rounds);
    options.metrics->counter("selfcheck.comparisons")
        .add(result.comparisons);
    options.metrics
        ->counter("selfcheck.failures",
                  {{"fault", fault_name(options.fault)}})
        .add(result.failures.size());
  }
  return result;
}

}  // namespace mpps::core
