// Randomized differential self-check of the simulator: N seeded rounds,
// each generating a random workload and machine shape, running the
// optimized engine (sim::simulate) and the naive reference engine
// (sim::ref_simulate) side by side over the Table 5-1 overhead grid and
// every assignment strategy, and checking the metamorphic invariant laws
// on top.  Any disagreement or violated law is a failure; a failing
// scenario is greedily shrunk to a minimal reproduction before it is
// reported (docs/TESTING.md walks through the workflow).
//
// A test-only fault hook (FaultInjection) perturbs the configuration
// (cost model or network charging) handed to the OPTIMIZED engine only,
// so tests can prove the oracle actually catches cost-model bugs and
// that the shrinker reduces them to a handful of activations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/sim/assignment.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/record.hpp"

namespace mpps::core {

/// Deliberate cost-model corruption applied to the optimized engine only
/// (the reference engine and the invariant checker keep the true model).
enum class FaultInjection : std::uint8_t {
  None,
  /// The fast engine charges 1 us too little per left token.
  LeftTokenUndercharge,
  /// The fast engine forgets the send overhead on remote messages.
  FreeRemoteSend,
  /// The fast engine's network charges multi-hop routes as a single hop
  /// (sim::NetworkConfig::free_remote_hop_fault) — invisible on the flat
  /// network, caught by the net-hop-latency invariant law (and the
  /// reference engine) on every multi-hop topology.
  FreeRemoteHop,
};

/// Parses "none" / "left-token-undercharge" / "free-remote-send" /
/// "free-remote-hop"; throws mpps::RuntimeError on anything else.
FaultInjection parse_fault(const std::string& name);

/// How the bucket assignment of a scenario is derived.
enum class AssignKind : std::uint8_t {
  RoundRobin,
  Random,    // seeded by Scenario::assign_seed
  PerCycle,  // rotated round-robin, one map per cycle
  Greedy,    // the offline greedy distribution (cost-model dependent)
};

/// A self-contained reproduction unit: everything needed to rerun one
/// differential comparison.  The assignment is always re-derived from the
/// scenario (make_assignment), so shrinking the trace or the machine
/// keeps the triple consistent.
struct Scenario {
  trace::Trace trace;
  sim::SimConfig config;  // metrics/tracer are ignored (forced null)
  AssignKind assign = AssignKind::RoundRobin;
  std::uint64_t assign_seed = 0;

  /// One line: machine shape + assignment + workload size.
  [[nodiscard]] std::string describe() const;
};

/// The bucket assignment implied by the scenario.
sim::Assignment make_assignment(const Scenario& scenario);

/// Runs one differential + invariant comparison.  Returns an empty string
/// when the engines agree and every law holds, else a one-line diagnosis
/// (first divergence or first violated law).
std::string check_scenario(const Scenario& scenario,
                           FaultInjection fault = FaultInjection::None);

/// Greedily minimizes a failing scenario while it keeps failing: drops
/// cycles, activation subtrees and instantiations, then shrinks the
/// machine and simplifies the configuration.  `steps`, when non-null,
/// receives the number of accepted shrink steps.
Scenario shrink_scenario(Scenario failing,
                         FaultInjection fault = FaultInjection::None,
                         std::uint64_t* steps = nullptr);

struct SelfCheckFailure {
  std::uint64_t round = 0;
  std::string detail;    // first divergence / violated law
  Scenario scenario;     // minimized when shrinking was enabled
  std::uint64_t shrink_steps = 0;

  [[nodiscard]] std::string describe() const;
};

struct SelfCheckOptions {
  std::uint64_t rounds = 200;
  std::uint64_t seed = 1;
  FaultInjection fault = FaultInjection::None;
  bool shrink = true;
  /// Stop after this many failing rounds (each is shrunk, which reruns
  /// the oracle many times — a systematically broken engine would
  /// otherwise turn every round into a minimization).
  std::size_t max_failures = 3;
  obs::Registry* metrics = nullptr;  // not owned; may be null
  std::ostream* log = nullptr;       // progress lines; may be null
};

struct SelfCheckResult {
  std::uint64_t rounds = 0;
  std::uint64_t comparisons = 0;       // differential runs executed
  std::uint64_t invariant_checks = 0;  // individual law evaluations
  std::vector<SelfCheckFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// Multi-line report: totals plus one block per failure.
  [[nodiscard]] std::string summary() const;
};

/// Runs the whole self-check.  Deterministic for fixed options.
SelfCheckResult run_selfcheck(const SelfCheckOptions& options);

}  // namespace mpps::core
