#include "src/core/cli.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"
#include "src/common/table.hpp"
#include "src/core/distribution.hpp"
#include "src/core/pipeline.hpp"
#include "src/core/selfcheck.hpp"
#include "src/core/sweep.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/summary.hpp"
#include "src/obs/timeline.hpp"
#include "src/obs/tracer.hpp"
#include "src/ops5/parser.hpp"
#include "src/rete/interp.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/io.hpp"
#include "src/trace/synth.hpp"

namespace mpps::core {
namespace {

constexpr const char* kUsage = R"(usage: mpps <command> [options]

commands:
  run <file.ops>       run an OPS5 program (--strategy lex|mea,
                       --max-cycles N, --quiet, --watch 0|1|2); with
                       --trace-out t.json / --metrics-out m.csv the match
                       trace is replayed on the simulated MPC (--procs P,
                       --run 0..4) and the timeline/metrics are exported;
                       --procs accepts a comma list (the exports describe
                       the first entry; one summary line per entry,
                       fanned out over --jobs N worker threads)
  trace <file.ops>     record its match trace (-o out.trace, --buckets B)
  stats <file.trace>   print activation statistics and a simulated-run
                       summary: busy skew, message histogram, hottest
                       buckets (--procs P, --run 0..4, --top K)
  simulate <f.trace>   replay on the simulated MPC (--procs P, --run 0..4,
                       --mapping merged|pairs, --assign rr|random|greedy,
                       --ct K, --cs M, --termination none|ack|poll,
                       --trace-out t.json, --metrics-out m.csv); a comma
                       list --procs 1,2,4 sweeps the counts in parallel
                       (--jobs N; exports then hold the merged registry
                       and merged timeline)
  sweep <f.trace>      fan a (processors x overhead-runs) grid across
                       worker threads and print the speedup table
                       (--procs 2,4,8,16,32, --runs 1,2,3,4, --jobs N,
                       --mapping merged|pairs, --assign rr|random|greedy,
                       --metrics-out m.csv, --csv); results are
                       bit-identical for every --jobs value, and every
                       outcome is checked against the simulator's
                       invariant laws (docs/TESTING.md)
  selfcheck            differential self-test: N seeded random scenarios
                       through the optimized AND the naive reference
                       simulator plus the invariant laws (--rounds N,
                       --seed S, --metrics-out m.csv, --fault
                       none|left-token-undercharge|free-remote-send to
                       prove the oracle catches an injected bug; failing
                       scenarios are shrunk to a minimal repro).  Exits
                       0 when clean, 1 on any failure
  sections             write the synthetic Rubik/Tourney/Weaver sections
                       (-o directory, default '.')
  slice <file.trace>   extract consecutive cycles (--from N, --cycles K,
                       -o out.trace) — how the paper built its sections

`--trace-out` writes a Chrome trace_event JSON timeline (load it in
chrome://tracing or https://ui.perfetto.dev); `--metrics-out` writes the
per-cycle busy/idle CSV plus the metrics registry.  docs/OBSERVABILITY.md
documents both formats; docs/SIMULATOR.md documents the sweep engine.
)";

/// Tiny flag cursor over the argument vector.
class Args {
 public:
  explicit Args(const std::vector<std::string>& args) : args_(args) {}

  /// The next positional argument, or empty if none.
  std::string positional() {
    for (std::size_t i = next_; i < args_.size(); ++i) {
      if (!consumed_(i) && args_[i].rfind("--", 0) != 0 && args_[i] != "-o") {
        consumed_flags_.push_back(i);
        return args_[i];
      }
      // Skip a flag and, when it takes a value, its value.
      if (!consumed_(i) && flag_takes_value(args_[i])) ++i;
    }
    return {};
  }

  /// Value of `--name <value>` or `-o <value>`, or `fallback`.
  std::string value(const std::string& name, const std::string& fallback) {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) {
        consumed_flags_.push_back(i);
        consumed_flags_.push_back(i + 1);
        return args_[i + 1];
      }
    }
    return fallback;
  }

  bool flag(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i] == name) {
        consumed_flags_.push_back(i);
        return true;
      }
    }
    return false;
  }

  static bool flag_takes_value(const std::string& arg) {
    return arg == "-o" || arg == "--watch" || arg == "--strategy" ||
           arg == "--max-cycles" ||
           arg == "--buckets" || arg == "--procs" || arg == "--run" ||
           arg == "--mapping" || arg == "--assign" || arg == "--ct" ||
           arg == "--cs" || arg == "--termination" || arg == "--seed" ||
           arg == "--from" || arg == "--cycles" || arg == "--trace-out" ||
           arg == "--metrics-out" || arg == "--top" || arg == "--jobs" ||
           arg == "--runs" || arg == "--rounds" || arg == "--fault";
  }

 private:
  bool consumed_(std::size_t i) const {
    for (auto c : consumed_flags_) {
      if (c == i) return true;
    }
    return false;
  }
  const std::vector<std::string>& args_;
  std::size_t next_ = 0;
  std::vector<std::size_t> consumed_flags_;
};

/// Bad command-line input: reported with usage exit code 2, unlike
/// runtime failures (exit 1).
class UsageError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

long parse_long_or(const std::string& s, long fallback) {
  long v = 0;
  return parse_int(s, v) ? v : fallback;
}

/// "1,2,4" → {1, 2, 4}.  Every field must be a positive integer; a
/// malformed or non-positive field is a usage error naming the field (a
/// silently dropped entry would shrink the sweep grid unnoticed).
std::vector<std::uint32_t> parse_u32_list(const std::string& s,
                                          const std::string& flag) {
  std::vector<std::uint32_t> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t len =
        (comma == std::string::npos ? s.size() : comma) - start;
    const std::string field{trim(std::string_view(s).substr(start, len))};
    long v = 0;
    if (!parse_int(field, v) || v <= 0) {
      throw UsageError(flag + ": '" + field +
                       "' is not a positive integer (in '" + s + "')");
    }
    out.push_back(static_cast<std::uint32_t>(v));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) throw UsageError(flag + ": empty list");
  return out;
}

/// The `--jobs N` worker-thread count; 0 (auto) when absent.  An explicit
/// value must be a positive integer — `--jobs 0` and garbage are usage
/// errors, not a silent fallback to auto.
unsigned parse_jobs(Args& args) {
  const std::string raw = args.value("--jobs", "");
  if (raw.empty()) return 0;
  long v = 0;
  if (!parse_int(raw, v) || v <= 0) {
    throw UsageError("--jobs: '" + raw + "' is not a positive integer");
  }
  return static_cast<unsigned>(v);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The `--trace-out` / `--metrics-out` pair accepted by run and simulate.
struct ObsOutputs {
  std::string trace_path;
  std::string metrics_path;

  [[nodiscard]] bool any() const {
    return !trace_path.empty() || !metrics_path.empty();
  }

  static ObsOutputs from(Args& args) {
    return ObsOutputs{args.value("--trace-out", ""),
                      args.value("--metrics-out", "")};
  }

  /// Exports the attached tracer/registry of a finished simulation.
  void write(const obs::Tracer& tracer, const obs::Registry& registry,
             const sim::SimResult& result, std::ostream& out) const {
    if (!trace_path.empty()) {
      std::ofstream file(trace_path);
      if (!file) throw RuntimeError("cannot write '" + trace_path + "'");
      tracer.write_chrome_json(file);
      out << "wrote trace timeline to " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      std::ofstream file(metrics_path);
      if (!file) throw RuntimeError("cannot write '" + metrics_path + "'");
      obs::write_metrics_csv(file, result, &registry);
      out << "wrote metrics to " << metrics_path << "\n";
    }
  }
};

sim::SimConfig parse_basic_sim_config(Args& args, std::uint32_t default_procs,
                                      int default_run) {
  sim::SimConfig config;
  // --procs may be a comma list; the basic config takes the first entry.
  config.match_processors =
      parse_u32_list(args.value("--procs", std::to_string(default_procs)),
                     "--procs")
          .front();
  const int run = static_cast<int>(parse_long_or(
      args.value("--run", std::to_string(default_run)), default_run));
  config.costs = run == 0 ? sim::CostModel::zero_overhead()
                          : sim::CostModel::paper_run(run);
  return config;
}

int cmd_run(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "run: missing program file\n";
    return 2;
  }
  const ObsOutputs obs_out = ObsOutputs::from(args);
  obs::Registry registry;
  rete::InterpreterOptions options;
  options.strategy = args.value("--strategy", "lex") == "mea"
                         ? rete::Strategy::Mea
                         : rete::Strategy::Lex;
  options.max_cycles = static_cast<std::size_t>(
      parse_long_or(args.value("--max-cycles", "100000"), 100000));
  const bool quiet = args.flag("--quiet");
  options.out = quiet ? nullptr : &out;
  options.watch =
      static_cast<int>(parse_long_or(args.value("--watch", "0"), 0));
  if (obs_out.any()) options.engine.metrics = &registry;

  const std::string source = read_file(path);
  rete::Interpreter interp(ops5::parse_program(source), options);
  interp.load_initial_wmes();
  const rete::RunResult result = interp.run();
  out << "outcome: "
      << (result.outcome == rete::RunResult::Outcome::Halted ? "halted"
          : result.outcome == rete::RunResult::Outcome::Quiescent
              ? "quiescent"
              : "cycle-limit")
      << "\ncycles: " << result.cycles << "\nfirings: " << result.firings
      << "\n";
  if (!quiet) {
    for (const auto& firing : interp.firings()) {
      out << "  cycle " << firing.cycle << ": " << firing.production << "\n";
    }
  }
  const std::vector<std::uint32_t> procs_list =
      parse_u32_list(args.value("--procs", "8"), "--procs");
  if (obs_out.any() || procs_list.size() > 1) {
    // Replay the program's match trace on the simulated machine and export
    // the run's timeline + metrics (rete.* counters above were recorded by
    // the live engine; sim.* come from this replay).  With a --procs list
    // the entries fan out across --jobs worker threads; the exports
    // describe the first entry.
    PipelineOptions pipeline;
    pipeline.interpreter.strategy = options.strategy;
    pipeline.interpreter.max_cycles = options.max_cycles;
    const PipelineResult recorded = record_trace(
        ops5::parse_program(source), path, pipeline);
    const sim::SimConfig base_config = parse_basic_sim_config(args, 8, 1);
    obs::Tracer tracer;
    SweepOptions sweep_options;
    sweep_options.jobs = parse_jobs(args);
    if (obs_out.any()) {
      sweep_options.metrics = &registry;
      sweep_options.tracer = &tracer;
    }
    std::vector<SweepScenario> scenarios;
    for (std::uint32_t procs : procs_list) {
      SweepScenario scenario;
      scenario.label = "p" + std::to_string(procs);
      scenario.trace = &recorded.trace;
      scenario.config = base_config;
      scenario.config.match_processors = procs;
      scenario.assignment = sim::Assignment::round_robin(
          recorded.trace.num_buckets, scenario.config.partitions());
      scenarios.push_back(std::move(scenario));
    }
    const std::vector<SweepOutcome> outcomes =
        SweepRunner(sweep_options).run(scenarios);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      out << "simulated " << procs_list[i] << " match processors: "
          << "makespan " << outcomes[i].result.makespan.micros()
          << " us, speedup " << outcomes[i].speedup << "\n";
    }
    obs_out.write(tracer, registry, outcomes.front().result, out);
  }
  return 0;
}

int cmd_trace(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "trace: missing program file\n";
    return 2;
  }
  PipelineOptions options;
  options.interpreter.engine.num_buckets = static_cast<std::uint32_t>(
      parse_long_or(args.value("--buckets", "256"), 256));
  const PipelineResult result =
      record_trace_from_source(read_file(path), path, options);
  const std::string out_path = args.value("-o", "");
  if (out_path.empty()) {
    trace::write_trace(out, result.trace);
  } else {
    std::ofstream file(out_path);
    if (!file) throw RuntimeError("cannot write '" + out_path + "'");
    trace::write_trace(file, result.trace);
    out << "wrote " << result.trace.total_activations() << " activations ("
        << result.trace.cycles.size() << " cycles) to " << out_path << "\n";
  }
  return 0;
}

int cmd_stats(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "stats: missing trace file\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) throw RuntimeError("cannot open '" + path + "'");
  const trace::Trace t = trace::read_trace(file);
  const trace::TraceStats stats = trace::compute_stats(t);
  TextTable table({"trace", "cycles", "left", "right", "total",
                   "instantiations", "left %"});
  table.row()
      .cell(t.name)
      .cell(static_cast<unsigned long>(t.cycles.size()))
      .cell(static_cast<unsigned long>(stats.left))
      .cell(static_cast<unsigned long>(stats.right))
      .cell(static_cast<unsigned long>(stats.total()))
      .cell(static_cast<unsigned long>(stats.instantiations))
      .cell(stats.left_pct(), 1);
  table.print(out);

  // The paper's uneven-distribution diagnosis, automated: replay the trace
  // on the simulated machine and summarize skew, traffic and hot buckets.
  const sim::SimConfig config = parse_basic_sim_config(args, 16, 1);
  const auto top_k =
      static_cast<std::size_t>(parse_long_or(args.value("--top", "8"), 8));
  const sim::SimResult result = sim::simulate(
      t, config,
      sim::Assignment::round_robin(t.num_buckets, config.partitions()));
  out << "\nsimulated run summary (" << config.match_processors
      << " match processors):\n";
  const obs::RunSummary summary = obs::summarize_run(t, result, top_k);
  obs::print_run_summary(out, summary);
  return 0;
}

int cmd_simulate(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "simulate: missing trace file\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) throw RuntimeError("cannot open '" + path + "'");
  const trace::Trace t = trace::read_trace(file);

  const std::vector<std::uint32_t> procs_list =
      parse_u32_list(args.value("--procs", "8"), "--procs");

  sim::SimConfig config;
  config.match_processors = procs_list.front();
  const int run = static_cast<int>(parse_long_or(args.value("--run", "1"), 1));
  config.costs = run == 0 ? sim::CostModel::zero_overhead()
                          : sim::CostModel::paper_run(run);
  if (args.value("--mapping", "merged") == "pairs") {
    config.mapping = sim::MappingMode::ProcessorPairs;
  }
  config.constant_test_processors =
      static_cast<std::uint32_t>(parse_long_or(args.value("--ct", "0"), 0));
  config.conflict_set_processors =
      static_cast<std::uint32_t>(parse_long_or(args.value("--cs", "0"), 0));
  const std::string termination = args.value("--termination", "none");
  if (termination == "ack") {
    config.termination = sim::TerminationModel::AckCounting;
  } else if (termination == "poll") {
    config.termination = sim::TerminationModel::BarrierPoll;
  }

  const std::string assign = args.value("--assign", "rr");
  const auto seed = static_cast<std::uint64_t>(
      parse_long_or(args.value("--seed", "1"), 1));
  const auto assignment_for = [&](const sim::SimConfig& cfg) {
    return assign == "random"
               ? sim::Assignment::random(t.num_buckets, cfg.partitions(), seed)
           : assign == "greedy"
               ? greedy_assignment(t, cfg.partitions(), cfg.costs)
               : sim::Assignment::round_robin(t.num_buckets,
                                              cfg.partitions());
  };

  const ObsOutputs obs_out = ObsOutputs::from(args);
  obs::Registry registry;
  obs::Tracer tracer;

  if (procs_list.size() == 1) {
    if (obs_out.any()) {
      config.metrics = &registry;
      config.tracer = &tracer;
    }
    const sim::SimResult result =
        sim::simulate(t, config, assignment_for(config));
    const SimTime base = sim::baseline_time(t);
    TextTable table({"makespan (us)", "speedup", "messages", "local",
                     "network idle %", "avg proc util %"});
    table.row()
        .cell(result.makespan.micros(), 1)
        .cell(static_cast<double>(base.nanos()) /
                  static_cast<double>(result.makespan.nanos()),
              2)
        .cell(static_cast<unsigned long>(result.messages))
        .cell(static_cast<unsigned long>(result.local_deliveries))
        .cell(100.0 * (1.0 - result.network_utilization()), 1)
        .cell(100.0 * result.avg_processor_utilization(), 1);
    table.print(out);
    obs_out.write(tracer, registry, result, out);
    return 0;
  }

  // A comma list sweeps the processor counts across worker threads; the
  // exports then hold the merged registry / merged timeline.
  SweepOptions sweep_options;
  sweep_options.jobs = parse_jobs(args);
  if (obs_out.any()) {
    sweep_options.metrics = &registry;
    sweep_options.tracer = &tracer;
  }
  std::vector<SweepScenario> scenarios;
  for (std::uint32_t procs : procs_list) {
    SweepScenario scenario;
    scenario.label = "p" + std::to_string(procs);
    scenario.trace = &t;
    scenario.config = config;
    scenario.config.match_processors = procs;
    scenario.assignment = assignment_for(scenario.config);
    scenarios.push_back(std::move(scenario));
  }
  const SweepRunner runner(sweep_options);
  const std::vector<SweepOutcome> outcomes = runner.run(scenarios);

  TextTable table({"procs", "makespan (us)", "speedup", "messages", "local",
                   "network idle %", "avg proc util %"});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const sim::SimResult& result = outcomes[i].result;
    table.row()
        .cell(static_cast<unsigned long>(procs_list[i]))
        .cell(result.makespan.micros(), 1)
        .cell(outcomes[i].speedup, 2)
        .cell(static_cast<unsigned long>(result.messages))
        .cell(static_cast<unsigned long>(result.local_deliveries))
        .cell(100.0 * (1.0 - result.network_utilization()), 1)
        .cell(100.0 * result.avg_processor_utilization(), 1);
  }
  table.print(out);
  out << "swept " << outcomes.size() << " configurations on "
      << runner.jobs() << " worker thread(s)\n";
  if (!obs_out.trace_path.empty()) {
    std::ofstream sink(obs_out.trace_path);
    if (!sink) throw RuntimeError("cannot write '" + obs_out.trace_path + "'");
    tracer.write_chrome_json(sink);
    out << "wrote trace timeline to " << obs_out.trace_path << "\n";
  }
  if (!obs_out.metrics_path.empty()) {
    std::ofstream sink(obs_out.metrics_path);
    if (!sink) {
      throw RuntimeError("cannot write '" + obs_out.metrics_path + "'");
    }
    registry.write_csv(sink);
    out << "wrote metrics to " << obs_out.metrics_path << "\n";
  }
  return 0;
}

/// `sweep` — fan a (processors x overhead-runs) grid across worker
/// threads and print the per-run speedup columns.  Scenario order (and
/// thus every byte of the output) is fixed regardless of --jobs.
int cmd_sweep(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "sweep: missing trace file\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) throw RuntimeError("cannot open '" + path + "'");
  const trace::Trace t = trace::read_trace(file);

  const std::vector<std::uint32_t> procs =
      parse_u32_list(args.value("--procs", "2,4,8,16,32"), "--procs");
  // Overhead runs: 0 = zero-overhead cost model, 1..4 = the paper's runs.
  std::vector<int> runs;
  {
    const std::string spec = args.value("--runs", "1,2,3,4");
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::size_t len =
          (comma == std::string::npos ? spec.size() : comma) - start;
      long v = 0;
      if (parse_int(trim(std::string_view(spec).substr(start, len)), v) &&
          v >= 0 && v <= 4) {
        runs.push_back(static_cast<int>(v));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (runs.empty()) runs.push_back(1);
  }

  const bool pairs = args.value("--mapping", "merged") == "pairs";
  const std::string assign = args.value("--assign", "rr");
  const auto seed = static_cast<std::uint64_t>(
      parse_long_or(args.value("--seed", "1"), 1));

  std::vector<SweepScenario> scenarios;
  scenarios.reserve(procs.size() * runs.size());
  for (std::uint32_t p : procs) {
    for (int run : runs) {
      SweepScenario scenario;
      scenario.label =
          "p" + std::to_string(p) + "/r" + std::to_string(run);
      scenario.trace = &t;
      scenario.config.match_processors = p;
      if (pairs) scenario.config.mapping = sim::MappingMode::ProcessorPairs;
      scenario.config.costs = run == 0 ? sim::CostModel::zero_overhead()
                                       : sim::CostModel::paper_run(run);
      scenario.assignment =
          assign == "random"
              ? sim::Assignment::random(t.num_buckets,
                                        scenario.config.partitions(), seed)
          : assign == "greedy"
              ? greedy_assignment(t, scenario.config.partitions(),
                                  scenario.config.costs)
              : sim::Assignment::round_robin(t.num_buckets,
                                             scenario.config.partitions());
      scenarios.push_back(std::move(scenario));
    }
  }

  obs::Registry registry;
  SweepOptions options;
  options.jobs = parse_jobs(args);
  options.check_invariants = true;
  const std::string metrics_path = args.value("--metrics-out", "");
  if (!metrics_path.empty()) options.metrics = &registry;
  const SweepRunner runner(options);
  const std::vector<SweepOutcome> outcomes = runner.run(scenarios);

  std::vector<std::string> headers{"procs"};
  for (int run : runs) {
    headers.push_back("run " + std::to_string(run) + " speedup");
  }
  TextTable table(std::move(headers));
  std::size_t index = 0;
  for (std::uint32_t p : procs) {
    TextTable& row = table.row();
    row.cell(static_cast<unsigned long>(p));
    for (std::size_t r = 0; r < runs.size(); ++r) {
      row.cell(outcomes[index++].speedup, 2);
    }
  }
  if (args.flag("--csv")) {
    table.print_csv(out);
  } else {
    table.print(out);
  }
  out << "swept " << outcomes.size() << " configurations on "
      << runner.jobs() << " worker thread(s)\n";
  if (!metrics_path.empty()) {
    std::ofstream sink(metrics_path);
    if (!sink) throw RuntimeError("cannot write '" + metrics_path + "'");
    registry.write_csv(sink);
    out << "wrote metrics to " << metrics_path << "\n";
  }
  return 0;
}

/// `selfcheck` — the differential + metamorphic self-test of the
/// simulator (docs/TESTING.md).  Deterministic for a fixed --seed.
int cmd_selfcheck(Args& args, std::ostream& out, std::ostream& err) {
  SelfCheckOptions options;
  {
    const std::string raw = args.value("--rounds", "200");
    long v = 0;
    if (!parse_int(raw, v) || v <= 0) {
      throw UsageError("--rounds: '" + raw + "' is not a positive integer");
    }
    options.rounds = static_cast<std::uint64_t>(v);
  }
  options.seed = static_cast<std::uint64_t>(
      parse_long_or(args.value("--seed", "1"), 1));
  try {
    options.fault = parse_fault(args.value("--fault", "none"));
  } catch (const RuntimeError& e) {
    throw UsageError(std::string("--fault: ") + e.what());
  }
  obs::Registry registry;
  options.metrics = &registry;
  options.log = &out;

  const SelfCheckResult result = run_selfcheck(options);
  (result.ok() ? out : err) << result.summary() << "\n";

  const std::string metrics_path = args.value("--metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream sink(metrics_path);
    if (!sink) throw RuntimeError("cannot write '" + metrics_path + "'");
    registry.write_csv(sink);
    out << "wrote metrics to " << metrics_path << "\n";
  }
  return result.ok() ? 0 : 1;
}

int cmd_slice(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional();
  if (path.empty()) {
    err << "slice: missing trace file\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) throw RuntimeError("cannot open '" + path + "'");
  const trace::Trace t = trace::read_trace(file);
  const auto first = static_cast<std::size_t>(
      parse_long_or(args.value("--from", "0"), 0));
  const auto count = static_cast<std::size_t>(
      parse_long_or(args.value("--cycles", "4"), 4));
  const trace::Trace section = trace::slice(t, first, count);
  const std::string out_path = args.value("-o", "");
  if (out_path.empty()) {
    trace::write_trace(out, section);
  } else {
    std::ofstream sink(out_path);
    if (!sink) throw RuntimeError("cannot write '" + out_path + "'");
    trace::write_trace(sink, section);
    out << "wrote " << section.total_activations() << " activations ("
        << count << " cycles) to " << out_path << "\n";
  }
  return 0;
}

int cmd_sections(Args& args, std::ostream& out, std::ostream&) {
  const std::string dir = args.value("-o", ".");
  for (const auto& [name, section] :
       {std::pair<const char*, trace::Trace>{"rubik",
                                             trace::make_rubik_section()},
        {"tourney", trace::make_tourney_section()},
        {"weaver", trace::make_weaver_section()}}) {
    const std::string path = dir + "/" + name + ".trace";
    std::ofstream file(path);
    if (!file) throw RuntimeError("cannot write '" + path + "'");
    trace::write_trace(file, section);
    out << "wrote " << path << " (" << section.total_activations()
        << " activations)\n";
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::vector<std::string> tail(args.begin() + 1, args.end());
  Args cursor(tail);
  try {
    const std::string& command = args[0];
    if (command == "run") return cmd_run(cursor, out, err);
    if (command == "trace") return cmd_trace(cursor, out, err);
    if (command == "stats") return cmd_stats(cursor, out, err);
    if (command == "simulate") return cmd_simulate(cursor, out, err);
    if (command == "sweep") return cmd_sweep(cursor, out, err);
    if (command == "selfcheck") return cmd_selfcheck(cursor, out, err);
    if (command == "sections") return cmd_sections(cursor, out, err);
    if (command == "slice") return cmd_slice(cursor, out, err);
    if (command == "help" || command == "--help") {
      out << kUsage;
      return 0;
    }
    err << "unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const UsageError& e) {
    err << "usage error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mpps::core
